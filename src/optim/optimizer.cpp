#include "optim/optimizer.hpp"

#include <cmath>

#include "common/check.hpp"

namespace avgpipe::optim {

namespace {

/// Clone `src` onto the end of `state.slots`.
void append_slots(OptimizerState& state, const std::vector<Tensor>& src) {
  state.slots.reserve(state.slots.size() + src.size());
  for (const auto& t : src) state.slots.push_back(t.clone());
}

/// Copy `count` slots starting at `offset` into `dst` (shape-checked).
void restore_slots(const OptimizerState& state, std::size_t offset,
                   std::vector<Tensor>& dst) {
  AVGPIPE_CHECK(offset + dst.size() <= state.slots.size(),
                "optimizer state '" << state.name << "': expected at least "
                                    << offset + dst.size() << " slots, got "
                                    << state.slots.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const Tensor& src = state.slots[offset + i];
    AVGPIPE_CHECK(src.numel() == dst[i].numel(),
                  "optimizer state '" << state.name << "': slot " << offset + i
                                      << " numel " << src.numel()
                                      << " != " << dst[i].numel());
    dst[i].copy_from(src);
  }
}

}  // namespace

OptimizerState Optimizer::export_state() const {
  OptimizerState state;
  state.name = name();
  state.steps = steps_;
  return state;
}

void Optimizer::import_state(const OptimizerState& state) {
  AVGPIPE_CHECK(state.name == name(), "optimizer state kind mismatch: saved '"
                                          << state.name << "', importing into '"
                                          << name() << "'");
  steps_ = state.steps;
}

// -- SGD ------------------------------------------------------------------------

Sgd::Sgd(std::vector<Variable> params, Scalar lr, Scalar momentum,
         Scalar weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ != 0.0) {
    velocity_.reserve(params_.size());
    for (auto& p : params_) velocity_.emplace_back(p.value().shape());
  }
}

void Sgd::step() {
  // Single fused pass: no grad clone, and decay/velocity/weight updates all
  // happen in one sweep per parameter instead of up to four.
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const auto g = p.grad().data();
    auto w = p.value().data();
    const std::size_t n = w.size();
    if (momentum_ != 0.0) {
      auto v = velocity_[i].data();
      for (std::size_t j = 0; j < n; ++j) {
        Scalar gj = g[j];
        if (weight_decay_ != 0.0) gj += weight_decay_ * w[j];
        Scalar vj = v[j] * momentum_;
        vj += gj;
        v[j] = vj;
        w[j] += -lr_ * vj;
      }
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        Scalar gj = g[j];
        if (weight_decay_ != 0.0) gj += weight_decay_ * w[j];
        w[j] += -lr_ * gj;
      }
    }
  }
  ++steps_;
}

OptimizerState Sgd::export_state() const {
  OptimizerState state = Optimizer::export_state();
  append_slots(state, velocity_);  // empty when momentum == 0
  return state;
}

void Sgd::import_state(const OptimizerState& state) {
  Optimizer::import_state(state);
  AVGPIPE_CHECK(state.slots.size() == velocity_.size(),
                "SGD state: saved " << state.slots.size()
                                    << " velocity slots, optimizer has "
                                    << velocity_.size());
  restore_slots(state, 0, velocity_);
}

// -- Adam -----------------------------------------------------------------------

Adam::Adam(std::vector<Variable> params, Scalar lr, Scalar beta1, Scalar beta2,
           Scalar eps)
    : Optimizer(std::move(params), lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

void Adam::step() {
  ++steps_;
  const Scalar bc1 = 1.0 - std::pow(beta1_, static_cast<Scalar>(steps_));
  const Scalar bc2 = 1.0 - std::pow(beta2_, static_cast<Scalar>(steps_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const auto g = p.grad().data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    auto w = p.value().data();
    for (std::size_t j = 0; j < w.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      const Scalar mhat = m[j] / bc1;
      const Scalar vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

OptimizerState Adam::export_state() const {
  OptimizerState state = Optimizer::export_state();
  append_slots(state, m_);
  append_slots(state, v_);
  return state;
}

void Adam::import_state(const OptimizerState& state) {
  Optimizer::import_state(state);
  AVGPIPE_CHECK(state.slots.size() == m_.size() + v_.size(),
                "Adam state: saved " << state.slots.size() << " slots, expected "
                                     << m_.size() + v_.size());
  restore_slots(state, 0, m_);
  restore_slots(state, m_.size(), v_);
}

// -- Adagrad ----------------------------------------------------------------------

Adagrad::Adagrad(std::vector<Variable> params, Scalar lr, Scalar eps)
    : Optimizer(std::move(params), lr), eps_(eps) {
  accum_.reserve(params_.size());
  for (auto& p : params_) accum_.emplace_back(p.value().shape());
}

void Adagrad::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const auto g = p.grad().data();
    auto a = accum_[i].data();
    auto w = p.value().data();
    for (std::size_t j = 0; j < w.size(); ++j) {
      a[j] += g[j] * g[j];
      w[j] -= lr_ * g[j] / (std::sqrt(a[j]) + eps_);
    }
  }
  ++steps_;
}

OptimizerState Adagrad::export_state() const {
  OptimizerState state = Optimizer::export_state();
  append_slots(state, accum_);
  return state;
}

void Adagrad::import_state(const OptimizerState& state) {
  Optimizer::import_state(state);
  AVGPIPE_CHECK(state.slots.size() == accum_.size(),
                "Adagrad state: saved " << state.slots.size()
                                        << " slots, expected " << accum_.size());
  restore_slots(state, 0, accum_);
}

// -- ASGD -------------------------------------------------------------------------

Asgd::Asgd(std::vector<Variable> params, Scalar lr, std::size_t trigger,
           Scalar weight_decay)
    : Optimizer(std::move(params), lr),
      trigger_(trigger),
      weight_decay_(weight_decay) {
  average_.reserve(params_.size());
  for (auto& p : params_) average_.emplace_back(p.value().shape());
}

void Asgd::step() {
  // Fused as in Sgd::step: no grad clone, one sweep per parameter.
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const auto g = p.grad().data();
    auto w = p.value().data();
    const std::size_t n = w.size();
    for (std::size_t j = 0; j < n; ++j) {
      Scalar gj = g[j];
      if (weight_decay_ != 0.0) gj += weight_decay_ * w[j];
      w[j] += -lr_ * gj;
    }
  }
  ++steps_;
  if (steps_ > trigger_) {
    ++averaged_steps_;
    const Scalar t = 1.0 / static_cast<Scalar>(averaged_steps_);
    for (std::size_t i = 0; i < params_.size(); ++i) {
      // running mean: avg += (w - avg) / n
      average_[i].lerp_(params_[i].value(), t);
    }
  }
}

std::vector<Tensor> Asgd::averaged_params() const {
  std::vector<Tensor> result;
  result.reserve(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    result.push_back(averaged_steps_ > 0 ? average_[i].clone()
                                         : params_[i].value().clone());
  }
  return result;
}

void Asgd::swap_to_average() {
  if (averaged_steps_ == 0) return;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i].value().copy_from(average_[i]);
  }
}

OptimizerState Asgd::export_state() const {
  OptimizerState state = Optimizer::export_state();
  state.scalars.push_back(static_cast<Scalar>(averaged_steps_));
  append_slots(state, average_);
  return state;
}

void Asgd::import_state(const OptimizerState& state) {
  Optimizer::import_state(state);
  AVGPIPE_CHECK(state.scalars.size() == 1,
                "ASGD state: expected 1 scalar (averaged steps), got "
                    << state.scalars.size());
  AVGPIPE_CHECK(state.slots.size() == average_.size(),
                "ASGD state: saved " << state.slots.size()
                                     << " slots, expected " << average_.size());
  averaged_steps_ = static_cast<std::size_t>(state.scalars[0]);
  restore_slots(state, 0, average_);
}

// -- BlockMomentum (BMUF reference-side state) -------------------------------------

BlockMomentum::BlockMomentum(Scalar block_momentum, Scalar block_lr)
    : eta_(block_momentum), zeta_(block_lr) {
  AVGPIPE_CHECK(eta_ >= 0.0 && eta_ < 1.0,
                "BMUF block momentum must be in [0,1), got " << eta_);
  AVGPIPE_CHECK(zeta_ > 0.0, "BMUF block lr must be positive, got " << zeta_);
  // Classic CBM stability condition: the effective per-block rate
  // λ = ζ/(1−η) must not exceed 1 (tiny tolerance for the ζ = 1−η default
  // computed in floating point).
  const Scalar lambda = effective_lr(eta_, zeta_);
  AVGPIPE_CHECK(lambda <= 1.0 + 1e-9,
                "BMUF violates the CBM stability condition: effective lr "
                    << lambda << " = " << zeta_ << "/(1-" << eta_
                    << ") exceeds 1");
}

Scalar BlockMomentum::effective_lr(Scalar block_momentum, Scalar block_lr) {
  return block_lr / (1.0 - block_momentum);
}

void BlockMomentum::filter_apply(std::vector<Tensor>& global,
                                 const std::vector<Tensor>& block_mean) {
  AVGPIPE_CHECK(global.size() == block_mean.size(),
                "global/block-mean size mismatch");
  if (delta_.empty()) {
    delta_.reserve(global.size());
    for (const auto& g : global) delta_.emplace_back(g.shape());
  }
  // η = 0, ζ = 1 collapses to W(t) = mean(x_i); assign exactly (rather than
  // W += (mean − W), whose round-trip is not bit-exact) so the degenerate
  // configuration is bit-identical to plain model averaging.
  const bool degenerate = eta_ == 0.0 && zeta_ == 1.0;
  for (std::size_t i = 0; i < global.size(); ++i) {
    AVGPIPE_CHECK(global[i].numel() == block_mean[i].numel(),
                  "global/block-mean numel mismatch");
    auto wv = global[i].data();
    const auto mv = block_mean[i].data();
    auto dv = delta_[i].data();
    if (degenerate) {
      for (std::size_t j = 0; j < wv.size(); ++j) {
        dv[j] = mv[j] - wv[j];
        wv[j] = mv[j];
      }
    } else {
      for (std::size_t j = 0; j < wv.size(); ++j) {
        const Scalar d = eta_ * dv[j] + zeta_ * (mv[j] - wv[j]);
        dv[j] = d;
        wv[j] += d;
      }
    }
  }
}

void BlockMomentum::add_restart_offset(std::vector<Tensor>& broadcast) const {
  if (delta_.empty() || eta_ == 0.0) return;
  AVGPIPE_CHECK(broadcast.size() == delta_.size(),
                "broadcast/delta size mismatch");
  for (std::size_t i = 0; i < broadcast.size(); ++i) {
    broadcast[i].axpy_(eta_, delta_[i]);
  }
}

// -- factory ----------------------------------------------------------------------

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind,
                                          std::vector<Variable> params,
                                          Scalar lr) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<Sgd>(std::move(params), lr);
    case OptimizerKind::kMomentum:
      return std::make_unique<Sgd>(std::move(params), lr, 0.9);
    case OptimizerKind::kAdam:
      return std::make_unique<Adam>(std::move(params), lr);
    case OptimizerKind::kAdagrad:
      return std::make_unique<Adagrad>(std::move(params), lr);
    case OptimizerKind::kAsgd:
      return std::make_unique<Asgd>(std::move(params), lr);
  }
  AVGPIPE_THROW("unknown optimizer kind");
}

std::string to_string(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd: return "sgd";
    case OptimizerKind::kMomentum: return "momentum";
    case OptimizerKind::kAdam: return "adam";
    case OptimizerKind::kAdagrad: return "adagrad";
    case OptimizerKind::kAsgd: return "asgd";
  }
  return "?";
}

}  // namespace avgpipe::optim
