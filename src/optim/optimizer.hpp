#pragma once

/// \file optimizer.hpp
/// Optimizer interface plus the concrete optimizers the paper's experiments
/// use: SGD (with momentum / weight decay), Adam, Adagrad, and ASGD
/// (Polyak–Juditsky averaging, used by the AWD workload).
///
/// A core claim of the paper (§3.1–3.2) is that the elastic-averaging
/// framework is *decoupled* from the optimizer — unlike EASGD/Crossbow which
/// bake averaging into an extended SGD. Our `core::ElasticAveraging`
/// therefore operates on raw parameter tensors after `Optimizer::step()`,
/// and everything here is averaging-agnostic.

#include <memory>
#include <string>
#include <vector>

#include "tensor/autograd.hpp"

namespace avgpipe::optim {

using tensor::Scalar;
using tensor::Tensor;
using tensor::Variable;

/// Portable snapshot of an optimizer's mutable state, used by the checkpoint
/// layer (`src/ckpt`). `slots` is the optimizer's tensor-valued state in a
/// fixed per-optimizer order (e.g. Adam: all first moments then all second
/// moments); `scalars` carries any extra scalar state (e.g. ASGD's averaged
/// step count). Bit-exact: slots are cloned, never re-derived.
struct OptimizerState {
  std::string name;             ///< must match the importing optimizer
  std::size_t steps = 0;        ///< step_count() — Adam bias correction needs it
  std::vector<Scalar> scalars;  ///< optimizer-specific scalar state
  std::vector<Tensor> slots;    ///< optimizer-specific tensor slots
};

/// Base optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params, Scalar lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  /// Apply one update from the parameters' current gradients.
  virtual void step() = 0;

  virtual std::string name() const = 0;

  /// Snapshot all mutable state needed to resume bit-exactly. The base
  /// captures `name` and the step count; subclasses append their slots.
  virtual OptimizerState export_state() const;

  /// Restore a snapshot produced by `export_state` on a same-shaped
  /// optimizer. Throws avgpipe::Error on a name or shape mismatch.
  virtual void import_state(const OptimizerState& state);

  void zero_grad() {
    for (auto& p : params_) p.zero_grad();
  }

  Scalar lr() const { return lr_; }
  void set_lr(Scalar lr) { lr_ = lr; }
  const std::vector<Variable>& params() const { return params_; }
  std::size_t step_count() const { return steps_; }

 protected:
  std::vector<Variable> params_;
  Scalar lr_;
  std::size_t steps_ = 0;
};

/// SGD with optional momentum and L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, Scalar lr, Scalar momentum = 0.0,
      Scalar weight_decay = 0.0);
  void step() override;
  std::string name() const override { return "SGD"; }
  OptimizerState export_state() const override;
  void import_state(const OptimizerState& state) override;

 private:
  Scalar momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015), the optimizer the paper trains GNMT/BERT with.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Variable> params, Scalar lr, Scalar beta1 = 0.9,
       Scalar beta2 = 0.999, Scalar eps = 1e-8);
  void step() override;
  std::string name() const override { return "Adam"; }
  OptimizerState export_state() const override;
  void import_state(const OptimizerState& state) override;

 private:
  Scalar beta1_, beta2_, eps_;
  std::vector<Tensor> m_, v_;
};

/// Adagrad (Duchi et al. 2011).
class Adagrad : public Optimizer {
 public:
  Adagrad(std::vector<Variable> params, Scalar lr, Scalar eps = 1e-10);
  void step() override;
  std::string name() const override { return "Adagrad"; }
  OptimizerState export_state() const override;
  void import_state(const OptimizerState& state) override;

 private:
  Scalar eps_;
  std::vector<Tensor> accum_;
};

/// ASGD: SGD plus a running Polyak average of the iterates, started after
/// `trigger` steps. `averaged_params()` exposes the averaged weights the
/// AWD recipe evaluates with.
class Asgd : public Optimizer {
 public:
  Asgd(std::vector<Variable> params, Scalar lr, std::size_t trigger = 0,
       Scalar weight_decay = 0.0);
  void step() override;
  std::string name() const override { return "ASGD"; }
  OptimizerState export_state() const override;
  void import_state(const OptimizerState& state) override;

  /// Polyak-averaged weights (equals current weights before the trigger).
  std::vector<Tensor> averaged_params() const;
  /// Overwrite live weights with the averages (for final evaluation).
  void swap_to_average();

 private:
  std::size_t trigger_;
  Scalar weight_decay_;
  std::vector<Tensor> average_;
  std::size_t averaged_steps_ = 0;
};

/// Blockwise model-update filtering state (Chen & Huo 2016), the reference-
/// side momentum BMUF applies between training blocks. Where the optimizers
/// above smooth per-batch *gradients*, this smooths the per-block *model
/// delta* G(t) = mean(x_i) − W(t−1):
///
///   Δ(t) = η·Δ(t−1) + ζ·G(t)        (block momentum η, block lr ζ)
///   W(t) = W(t−1) + Δ(t)
///
/// The classic CBM stability condition requires the effective block learning
/// rate λ = ζ/(1−η) not to exceed 1 — λ > 1 systematically over-shoots the
/// block mean and diverges — and η < 1 so the filter is contractive. Both
/// are enforced at construction (a misconfigured sweep must fail loudly, not
/// produce NaNs three epochs in). In the degenerate configuration η = 0,
/// ζ = 1 the recursion collapses to W(t) = mean(x_i) and `filter_apply`
/// takes an exact-assignment fast path so the collapse is bit-exact, which
/// is what the sync-policy parity gate relies on.
class BlockMomentum {
 public:
  BlockMomentum(Scalar block_momentum, Scalar block_lr);

  /// λ = ζ/(1−η), the effective per-block learning rate.
  static Scalar effective_lr(Scalar block_momentum, Scalar block_lr);

  /// One block update: fold `block_mean` into `global` through the filter.
  /// Shapes must match pairwise; Δ is lazily initialised to zeros.
  void filter_apply(std::vector<Tensor>& global,
                    const std::vector<Tensor>& block_mean);

  /// Add the Nesterov restart offset η·Δ(t) into `broadcast` (no-op until
  /// the first filter_apply, or when η = 0).
  void add_restart_offset(std::vector<Tensor>& broadcast) const;

  bool initialized() const { return !delta_.empty(); }
  const std::vector<Tensor>& delta() const { return delta_; }
  /// Restore Δ(t) from a checkpoint (empty = back to uninitialised; the
  /// next `filter_apply` re-validates shapes against the global model).
  void set_delta(std::vector<Tensor> delta) { delta_ = std::move(delta); }
  Scalar block_momentum() const { return eta_; }
  Scalar block_lr() const { return zeta_; }

 private:
  Scalar eta_, zeta_;
  std::vector<Tensor> delta_;  ///< Δ(t), lazily shaped like the global model
};

/// Optimizer kinds for factory construction (used by configs and benches).
enum class OptimizerKind { kSgd, kMomentum, kAdam, kAdagrad, kAsgd };

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind,
                                          std::vector<Variable> params,
                                          Scalar lr);
std::string to_string(OptimizerKind kind);

}  // namespace avgpipe::optim
