#include "common/log.hpp"

#include <atomic>
#include <cstdio>

#include "common/annotations.hpp"

namespace avgpipe {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
common::Mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_write(LogLevel level, const std::string& msg) {
  common::MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace avgpipe
