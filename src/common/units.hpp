#pragma once

/// \file units.hpp
/// Physical units used by the cluster simulator and cost models.
///
/// We keep units as plain doubles with descriptive aliases (the simulator's
/// arithmetic crosses unit boundaries constantly; strong types would add
/// noise without catching real bugs here), but centralise the conversion
/// constants and human-readable formatting in one place.

#include <cstdint>
#include <string>

namespace avgpipe {

using Seconds = double;  ///< wall/virtual time in seconds
using Bytes = double;    ///< data volume in bytes
using Flops = double;    ///< floating point operations

// -- conversion constants ----------------------------------------------------

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;

inline constexpr double kKFLOP = 1e3;
inline constexpr double kMFLOP = 1e6;
inline constexpr double kGFLOP = 1e9;
inline constexpr double kTFLOP = 1e12;

inline constexpr Seconds kMicrosecond = 1e-6;
inline constexpr Seconds kMillisecond = 1e-3;
inline constexpr Seconds kMinute = 60.0;
inline constexpr Seconds kHour = 3600.0;

/// 1 Gbps Ethernet payload bandwidth in bytes/second.
inline constexpr double kGigabitPerSecond = 1e9 / 8.0;

// -- formatting ---------------------------------------------------------------

/// "1.50 GiB", "312.0 MiB", ...
std::string format_bytes(Bytes bytes);

/// "2.5 h", "13.2 min", "42.1 s", "3.1 ms", ...
std::string format_seconds(Seconds s);

/// "15.7 TFLOP", ...
std::string format_flops(Flops f);

/// "87.3%"
std::string format_percent(double fraction);

}  // namespace avgpipe
