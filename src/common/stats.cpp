#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace avgpipe {

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  AVGPIPE_CHECK(hi > lo, "histogram range must be non-empty");
  AVGPIPE_CHECK(bins >= 1, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  AVGPIPE_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) return 0.5 * (bin_lo(i) + bin_hi(i));
  }
  return hi_;
}

double relative_difference(double a, double b, double eps) {
  const double denom = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / denom;
}

}  // namespace avgpipe
