#include "common/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>

namespace avgpipe {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  tasks_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  bool ok = tasks_.send(std::move(task));
  AVGPIPE_CHECK(ok, "submit on a destroyed thread pool");
}

void ThreadPool::worker_loop() {
  while (auto task = tasks_.recv()) {
    (*task)();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  // Caller counts as an execution slot, so even a 0-worker pool or a
  // parallel_for issued from inside a pool task makes progress. Cap at the
  // CPU count: chunks beyond it cannot run concurrently, so splitting only
  // buys cross-thread handoffs (on a uniprocessor, a condvar round trip per
  // call for zero parallelism).
  static const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  const std::size_t max_chunks = std::min(workers_.size() + 1, hw);
  const std::size_t chunks =
      std::min(max_chunks, (n + grain - 1) / grain);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t remaining = chunks - 1;

  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    submit([&, lo, hi] {
      if (lo < hi) fn(lo, hi);
      std::lock_guard<std::mutex> lock(mutex);
      if (--remaining == 0) done_cv.notify_one();
    });
  }

  fn(begin, std::min(end, begin + chunk_size));

  std::unique_lock<std::mutex> lock(mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(configured_num_threads());
  return pool;
}

std::size_t parse_num_threads(const char* value, std::size_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

std::size_t configured_num_threads() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  // Read before the pool spawns its workers; nothing calls setenv.
  return parse_num_threads(std::getenv("AVGPIPE_NUM_THREADS"), hw);  // NOLINT(concurrency-mt-unsafe)
}

}  // namespace avgpipe
