#include "common/thread_pool.hpp"

#include <atomic>
#include <cstdlib>

#include "common/annotations.hpp"
#include "common/env.hpp"

namespace avgpipe {

namespace {

// 0 = unpartitioned; set/restored by PartitionGuard on the owning thread.
thread_local std::size_t tls_partition_workers = 0;

}  // namespace

PartitionGuard::PartitionGuard(std::size_t workers)
    : saved_(tls_partition_workers) {
  tls_partition_workers = std::max<std::size_t>(1, workers);
}

PartitionGuard::~PartitionGuard() { tls_partition_workers = saved_; }

std::size_t current_partition() { return tls_partition_workers; }

std::size_t default_stage_workers(std::size_t stages) {
  stages = std::max<std::size_t>(1, stages);
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t budget = std::min(configured_num_threads(), hw);
  return std::max<std::size_t>(1, budget / stages);
}

std::size_t stage_workers_from_env(std::size_t stages) {
  // Read before the runtime spawns its stage threads; nothing calls setenv.
  return parse_num_threads(common::env_raw("AVGPIPE_STAGE_THREADS"),
                           default_stage_workers(stages));
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  tasks_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  bool ok = tasks_.send(std::move(task));
  AVGPIPE_CHECK(ok, "submit on a destroyed thread pool");
}

void ThreadPool::worker_loop() {
  while (auto task = tasks_.recv()) {
    (*task)();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  // Caller counts as an execution slot, so even a 0-worker pool or a
  // parallel_for issued from inside a pool task makes progress. An
  // unpartitioned caller caps at the CPU count: chunks beyond it cannot run
  // concurrently, so splitting only buys cross-thread handoffs (on a
  // uniprocessor, a condvar round trip per call for zero parallelism). A
  // partitioned caller is trusted to its installed share instead — even past
  // the CPU count, so tests can force real cross-thread fan-out on small
  // machines; the provisioning helpers keep production shares within budget.
  static const std::size_t hw =
      std::max(1u, std::thread::hardware_concurrency());
  const std::size_t partition = tls_partition_workers;
  const std::size_t max_chunks =
      partition == 0 ? std::min(workers_.size() + 1, hw)
                     : std::min(workers_.size() + 1, partition);
  const std::size_t chunks =
      std::min(max_chunks, (n + grain - 1) / grain);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }

  common::Mutex mutex;
  common::CondVar done_cv;
  std::size_t remaining = chunks - 1;

  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    submit([&, lo, hi] {
      // Worker-side chunk high-water mark. The decrement lands *before* the
      // completion notify, so by the time a caller's parallel_for returns
      // every one of its chunks has left the count — K partitioned callers
      // can therefore never observe a peak above the sum of their
      // worker-side shares (the oversubscription regression probe).
      const std::size_t running =
          active_.fetch_add(1, std::memory_order_relaxed) + 1;
      std::size_t peak = peak_active_.load(std::memory_order_relaxed);
      while (running > peak &&
             !peak_active_.compare_exchange_weak(peak, running,
                                                 std::memory_order_relaxed)) {
      }
      if (lo < hi) fn(lo, hi);
      active_.fetch_sub(1, std::memory_order_relaxed);
      common::MutexLock lock(mutex);
      if (--remaining == 0) done_cv.notify_one();
    });
  }

  fn(begin, std::min(end, begin + chunk_size));

  common::MutexLock lock(mutex);
  while (remaining != 0) done_cv.wait(mutex, lock);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(configured_num_threads());
  return pool;
}

std::size_t parse_num_threads(const char* value, std::size_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

std::size_t configured_num_threads() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  // Read before the pool spawns its workers; nothing calls setenv.
  return parse_num_threads(common::env_raw("AVGPIPE_NUM_THREADS"), hw);
}

}  // namespace avgpipe
