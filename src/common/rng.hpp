#pragma once

/// \file rng.hpp
/// Deterministic random number generation. All stochastic behaviour in the
/// library flows through `Rng` instances seeded explicitly, so that every
/// experiment, test and trace is reproducible bit-for-bit.

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace avgpipe {

/// Seeded pseudo-random generator with the helpers the library needs.
/// Thin wrapper over std::mt19937_64; cheap to copy (fork) for per-worker
/// deterministic streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal.
  double normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

  /// Normal with explicit mean/stddev.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Derive an independent child stream; deterministic in (this, salt).
  Rng fork(std::uint64_t salt) {
    // SplitMix-style mixing so forks with nearby salts decorrelate.
    std::uint64_t z = engine_() + 0x9E3779B97F4A7C15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return Rng(z ^ (z >> 31));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  // -- durable state ---------------------------------------------------------
  //
  // Every distribution helper above constructs its std::*_distribution fresh
  // per call, so the generator carries no hidden distribution state: the
  // mt19937_64 engine state alone determines every future draw. That is what
  // makes these accessors sufficient for bit-exact resume from a checkpoint.

  /// Portable textual snapshot of the engine state (the standard's
  /// stream-insertion format: 312 decimal integers + position).
  std::string save_state() const {
    std::ostringstream os;
    os << engine_;
    return os.str();
  }

  /// Restore a state previously produced by `save_state`. After this call
  /// the draw sequence continues exactly where the saved generator left off.
  /// Throws avgpipe::Error on a malformed snapshot.
  void restore_state(const std::string& state) {
    std::istringstream is(state);
    is >> engine_;
    AVGPIPE_CHECK(!is.fail(), "Rng::restore_state: malformed engine snapshot");
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace avgpipe
