#pragma once

/// \file annotations.hpp
/// Clang Thread Safety annotations + annotated mutex/condvar wrappers.
///
/// The repo's concurrency contracts (DESIGN.md §13/§17) — "the reference
/// thread alone mutates averaged state", "an SPSC endpoint belongs to exactly
/// one thread per role", "replica-side policy hooks are const and concurrent"
/// — live here as *capabilities* the compiler checks. Under clang with
/// -Wthread-safety, touching guarded state without holding its capability is
/// a compile error; under gcc every macro expands to nothing and the wrappers
/// are zero-cost veneers over the std primitives.
///
/// Three kinds of capability appear in the repo:
///  - `common::Mutex`: a real lock (wraps std::mutex). Guards data via
///    GUARDED_BY; acquired via `MutexLock` (scoped) or `lock()/unlock()`.
///  - `common::Role`: a *phantom* capability — no runtime state at all. It
///    names a structural exclusivity the design already provides (the single
///    producer of an SPSC channel, the one reference thread). `RoleGuard`
///    "acquires" it so the analysis can prove cross-role calls never happen.
///  - Negative contracts: EXCLUDES(m) on a function documents (and checks)
///    that callers must NOT hold m — the tool for "replica-side paths never
///    run under the reference lock".
///
/// Raw std::mutex/std::lock_guard/std::condition_variable are banned outside
/// this header by tools/avgpipe_lint (rule `raw-mutex`).

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define AVGPIPE_TSA(x) __attribute__((x))
#else
#define AVGPIPE_TSA(x)  // no-op off clang
#endif

#define CAPABILITY(x) AVGPIPE_TSA(capability(x))
#define SCOPED_CAPABILITY AVGPIPE_TSA(scoped_lockable)
#define GUARDED_BY(x) AVGPIPE_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) AVGPIPE_TSA(pt_guarded_by(x))
#define ACQUIRE(...) AVGPIPE_TSA(acquire_capability(__VA_ARGS__))
#define RELEASE(...) AVGPIPE_TSA(release_capability(__VA_ARGS__))
#define REQUIRES(...) AVGPIPE_TSA(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) AVGPIPE_TSA(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) AVGPIPE_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS AVGPIPE_TSA(no_thread_safety_analysis)

/// Marker consumed by tools/avgpipe_lint (rule `hot-path-alloc`): place on
/// the line immediately before a function *definition* to ban heap
/// allocation (new/make_unique/make_shared/malloc) and `Tensor::clone()`
/// inside its body. Expands to nothing; it exists so the per-iteration
/// steady-state paths (run_instr, reference_loop, the sync-worker mains)
/// cannot silently grow an allocation.
#define AVGPIPE_HOT_PATH

namespace avgpipe::common {

/// Annotated mutex. Same cost and semantics as std::mutex; the annotation
/// makes it a capability the analysis can track.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() AVGPIPE_TSA(try_acquire_capability(true)) {
    return mutex_.try_lock();
  }

  /// Escape hatch for CondVar, which must hand the raw handle to the std
  /// wait machinery. Not for general use.
  std::mutex& native_handle() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// Scoped lock over `Mutex` (std::unique_lock underneath, so CondVar can
/// wait on it). Supports early `unlock()` for the unlock-before-notify
/// idiom; destruction releases only if still held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex)
      : mutex_(mutex), lock_(mutex.native_handle()) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release before end of scope (unlock-before-notify). The analysis treats
  /// the capability as gone from this point on.
  void unlock() RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  Mutex& mutex_;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to `MutexLock`.
///
/// Deliberately has no predicate overloads: clang analyses a predicate
/// lambda as a separate function that does not hold the caller's capability,
/// so `cv.wait(lock, [&]{ return guarded_; })` would warn on every guarded
/// read. Callers write the explicit loop instead:
///
///     while (!condition) cv.wait(mutex_, lock);  // capability provably held
///
/// The waits take the Mutex alongside the MutexLock because the analysis
/// matches capabilities by spelling at the call site: REQUIRES(mu) against
/// the caller's held `mutex_` unifies, whereas REQUIRES(lock.mutex_) would
/// not. The pair must name the same mutex the lock holds.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// The capability is released while parked and re-held on return — the
  /// standard condvar contract, which REQUIRES models exactly (held before,
  /// held after; the gap is invisible to callers).
  void wait(Mutex& mu, MutexLock& lock) REQUIRES(mu) {
    static_cast<void>(mu);
    cv_.wait(lock.lock_);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu, MutexLock& lock,
                            const std::chrono::time_point<Clock, Duration>& tp)
      REQUIRES(mu) {
    static_cast<void>(mu);
    return cv_.wait_until(lock.lock_, tp);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu, MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& d)
      REQUIRES(mu) {
    static_cast<void>(mu);
    return cv_.wait_for(lock.lock_, d);
  }

 private:
  std::condition_variable cv_;
};

/// Phantom capability: a named role with no runtime state. acquire/release
/// compile to nothing; holding one is purely a statement the analysis
/// checks. Used for the SPSC producer/consumer split and the elastic
/// reference-side serialization contract.
class CAPABILITY("role") Role {
 public:
  Role() = default;
  Role(const Role&) = delete;
  Role& operator=(const Role&) = delete;

  void acquire() ACQUIRE() {}
  void release() RELEASE() {}
};

/// Scoped assertion that the current thread plays `role` for this region.
/// Zero-cost: it exists so REQUIRES(role) call sites type-check. Taking a
/// RoleGuard is a claim the surrounding design must justify (one producer
/// thread, the reference mutex held, a single-threaded phase, ...) — the
/// justification belongs in a comment at the guard site.
class SCOPED_CAPABILITY RoleGuard {
 public:
  explicit RoleGuard(Role& role) ACQUIRE(role) : role_(role) {
    role_.acquire();
  }
  ~RoleGuard() RELEASE() { role_.release(); }

  RoleGuard(const RoleGuard&) = delete;
  RoleGuard& operator=(const RoleGuard&) = delete;

 private:
  Role& role_;
};

}  // namespace avgpipe::common
