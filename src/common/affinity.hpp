#pragma once

/// \file affinity.hpp
/// Optional core pinning for stage threads and elastic-sync workers.
///
/// The threaded runtime gives every pipeline stage its own thread plus one
/// replica worker per pipeline and one reference-process thread. Left to the
/// OS scheduler these migrate freely, which costs cache warmth on the
/// compute-bound calibrated workloads. AVGPIPE_PIN_THREADS opts into a
/// static thread→core layout:
///
///   - unset / "" / "0" / "off"  no pinning (the default)
///   - "compact" / "1"           slot i on core i (dense, shares caches)
///   - "scatter"                 slots spread evenly across the core list
///                               (one slot per physical region on SMT
///                               machines enumerated core-major)
///
/// Pinning is strictly best-effort: it is a silent no-op (returning false)
/// when the policy is off, when the layout is oversubscribed (more slots
/// than cores — pinning would stack threads on one core and serialize the
/// pipe), or on platforms without pthread affinity. Correctness never
/// depends on it.

#include <cstddef>
#include <cstdint>

namespace avgpipe {

enum class PinPolicy : std::uint8_t { kNone = 0, kCompact, kScatter };

const char* to_string(PinPolicy policy);

/// Parse an AVGPIPE_PIN_THREADS-style value. "compact" and "1" select
/// kCompact, "scatter" selects kScatter; anything else (null, empty, "0",
/// "off", junk) keeps pinning off — the knob is strictly opt-in.
PinPolicy parse_pin_policy(const char* value);

/// Process-wide policy from AVGPIPE_PIN_THREADS, read once on first use.
PinPolicy pin_policy_from_env();

/// Cores available for pinning: hardware_concurrency, min 1.
std::size_t num_cores();

/// The core a slot maps to under `policy` given `cores` cores. Compact packs
/// slots onto consecutive cores; scatter places slot i on
/// floor(i * cores / total_slots), spreading the slots evenly. Pure layout
/// math (no syscalls) so tests can pin down both layouts on any machine.
std::size_t pin_core_for_slot(PinPolicy policy, std::size_t slot,
                              std::size_t total_slots, std::size_t cores);

/// Pin the calling thread to its slot's core. Returns false without touching
/// the affinity mask when the policy is kNone, the slot is out of range,
/// total_slots exceeds num_cores() (oversubscribed layout), or the platform
/// or syscall does not cooperate.
bool pin_current_thread(PinPolicy policy, std::size_t slot,
                        std::size_t total_slots);

}  // namespace avgpipe
