#pragma once

/// \file queue.hpp
/// Bounded, closable channels: an MPMC `Channel` and an SPSC specialization.
///
/// These are the message-passing primitives AvgPipe's runtime is built on:
/// stage workers exchange activations/gradients through channels, and
/// parallel pipelines ship local updates to the reference-model process
/// through them (paper §3.2, steps ❸–❹). The design mirrors MPI-style
/// cooperative send/recv: a bounded buffer provides back-pressure, and
/// `close()` gives a clean end-of-stream so pipelines can drain and join
/// deterministically.
///
/// Latency model: a condvar wakeup costs ~5–20µs — comparable to an entire
/// micro-batch forward on the small stages the runtime drives, so parking on
/// every recv would serialise the pipeline on scheduler latency. Both
/// channels therefore spin briefly before parking (`detail::SpinPolicy`, a
/// bounded budget that adapts to whether spinning has been paying off), and
/// the stage-to-stage links use `SpscChannel`, whose fast path is two atomic
/// loads and one store — no mutex, no syscall.
///
/// Concurrency contracts are compiler-checked (DESIGN.md §17): `Channel`'s
/// buffer is GUARDED_BY its mutex, and `SpscChannel`'s single-producer /
/// single-consumer split is expressed as two phantom `common::Role`
/// capabilities, so calling a send-side op from the consumer thread (or vice
/// versa) is a compile error under clang -Wthread-safety.

#include <atomic>
#include <chrono>
#include <deque>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/check.hpp"
#include "common/units.hpp"

namespace avgpipe {

/// Outcome of a timed channel operation (recv_for / send_for).
enum class ChannelStatus {
  kOk,       ///< item transferred
  kTimeout,  ///< deadline elapsed; channel still open
  kClosed,   ///< channel closed (and, for recv, drained)
};

namespace detail {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

/// Whether busy-waiting can ever pay off: on a uniprocessor the peer cannot
/// run while we pause-spin, so every iteration only delays it (the same SMP
/// gate adaptive mutexes use). Uniprocessors instead yield — donating the
/// quantum lets the peer publish, and because the waiter never registers on
/// the condvar the peer's notify syscall is skipped too.
inline bool spin_profitable() {
  static const bool multi = std::thread::hardware_concurrency() > 1;
  return multi;
}

/// A timed wait's absolute deadline, from a relative budget in seconds.
inline std::chrono::steady_clock::time_point deadline_after(Seconds timeout) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(timeout));
}

/// Bounded adaptive spin: the budget doubles (up to a cap) when the awaited
/// condition turns true inside the spin window and halves when the waiter
/// ends up parking anyway, so a channel whose peer responds in
/// sub-microsecond time converges to spinning and a genuinely idle channel
/// converges to parking almost immediately.
class SpinPolicy {
 public:
  /// Spin until `pred()` holds or the budget runs out; returns the final
  /// `pred()` value and adapts the budget for the next wait.
  template <typename Pred>
  bool spin(Pred&& pred) {
    const bool smp = spin_profitable();
    std::uint32_t budget = budget_.load(std::memory_order_relaxed);
    // A yield donates a whole scheduler quantum, so a handful suffices where
    // thousands of pause iterations would on SMP.
    if (!smp) budget = std::min(budget, kMaxYield);
    for (std::uint32_t i = 0; i < budget; ++i) {
      if (pred()) {
        budget_.store(std::min(kMaxSpin, budget * 2 + 16),
                      std::memory_order_relaxed);
        return true;
      }
      if (smp) {
        cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
    budget_.store(budget / 2, std::memory_order_relaxed);
    return pred();
  }

 private:
  static constexpr std::uint32_t kMaxSpin = 4096;
  static constexpr std::uint32_t kMaxYield = 32;
  std::atomic<std::uint32_t> budget_{256};
};

}  // namespace detail

/// Bounded MPMC channel. All methods are thread-safe.
///
/// Semantics:
///  * `send` blocks while full; returns false if the channel is closed.
///  * `recv` blocks while empty; returns nullopt once closed *and* drained.
///  * `close` wakes *all* blocked producers and consumers; a `send` issued
///    after close returns false immediately instead of blocking, and pending
///    items remain receivable (clean end-of-stream).
///  * `recv_for` / `send_for` are the bounded variants used by the fault-
///    tolerant runtime: they give the caller back control after a timeout so
///    a worker can back off, record a health signal, and eventually declare
///    a silent peer dead rather than blocking forever.
///
/// Blocking ops spin briefly on lock-free occupancy hints before taking the
/// mutex + condvar slow path, so a peer that responds quickly is observed
/// without a scheduler round-trip.
template <typename T>
class Channel {
 public:
  /// \param capacity maximum buffered items; must be >= 1.
  explicit Channel(std::size_t capacity = 64) : capacity_(capacity) {
    AVGPIPE_CHECK(capacity >= 1, "channel capacity must be positive");
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocking send. Returns false (and drops `value`) if closed.
  bool send(T value) {
    spin_not_full_.spin([&] {
      return closed_hint_.load(std::memory_order_acquire) ||
             size_hint_.load(std::memory_order_acquire) < capacity_;
    });
    common::MutexLock lock(mutex_);
    while (!closed_ && items_.size() >= capacity_) {
      not_full_.wait(mutex_, lock);
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    size_hint_.store(items_.size(), std::memory_order_release);
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Timed send: blocks up to `timeout` seconds for space. On kTimeout and
  /// kClosed the value is dropped (matching `send`'s closed behaviour).
  ChannelStatus send_for(T value, Seconds timeout) {
    const auto deadline = detail::deadline_after(timeout);
    common::MutexLock lock(mutex_);
    while (!closed_ && items_.size() >= capacity_) {
      if (not_full_.wait_until(mutex_, lock, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    if (closed_) return ChannelStatus::kClosed;
    if (items_.size() >= capacity_) return ChannelStatus::kTimeout;
    items_.push_back(std::move(value));
    size_hint_.store(items_.size(), std::memory_order_release);
    lock.unlock();
    not_empty_.notify_one();
    return ChannelStatus::kOk;
  }

  /// Non-blocking send. Returns false if full or closed.
  bool try_send(T value) {
    {
      common::MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
      size_hint_.store(items_.size(), std::memory_order_release);
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking receive. Returns nullopt when the channel is closed and empty.
  std::optional<T> recv() {
    spin_not_empty_.spin([&] {
      return closed_hint_.load(std::memory_order_acquire) ||
             size_hint_.load(std::memory_order_acquire) > 0;
    });
    common::MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      not_empty_.wait(mutex_, lock);
    }
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    size_hint_.store(items_.size(), std::memory_order_release);
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Timed receive: blocks up to `timeout` seconds for an item. Pending
  /// items are still delivered after close (kOk), mirroring `recv`.
  ChannelStatus recv_for(T* out, Seconds timeout) {
    const auto deadline = detail::deadline_after(timeout);
    common::MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      if (not_empty_.wait_until(mutex_, lock, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    if (items_.empty()) {
      return closed_ ? ChannelStatus::kClosed : ChannelStatus::kTimeout;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    size_hint_.store(items_.size(), std::memory_order_release);
    lock.unlock();
    not_full_.notify_one();
    return ChannelStatus::kOk;
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    common::MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    size_hint_.store(items_.size(), std::memory_order_release);
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Close the channel; wakes all blocked senders/receivers. Idempotent.
  ///
  /// The notifies happen *while holding the mutex*: if they were issued
  /// after releasing it, a waiter woken spuriously could observe `closed_`,
  /// return, and let the owner destroy the channel before close() touched
  /// the condition variables — a use-after-free on shutdown of a full
  /// queue with a blocked producer. Holding the lock closes that window:
  /// no waiter can complete its predicate check until close() has finished.
  void close() {
    common::MutexLock lock(mutex_);
    if (closed_) return;
    closed_ = true;
    closed_hint_.store(true, std::memory_order_release);
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    common::MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    common::MutexLock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable common::Mutex mutex_;
  common::CondVar not_full_;
  common::CondVar not_empty_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
  // Lock-free occupancy hints driving the pre-park spin. Written only under
  // the mutex; the slow path re-checks the authoritative state, so a stale
  // hint costs at most one wasted spin window, never correctness.
  std::atomic<std::size_t> size_hint_{0};
  std::atomic<bool> closed_hint_{false};
  detail::SpinPolicy spin_not_full_;
  detail::SpinPolicy spin_not_empty_;
};

/// Bounded single-producer/single-consumer channel.
///
/// The stage-to-stage links of the pipeline runtime are strictly SPSC (one
/// upstream producer, one downstream consumer), so the MPMC mutex is pure
/// overhead there. This ring buffer transfers an item with two atomic loads
/// and one store on the fast path; waiters spin briefly (SpinPolicy) and
/// then park on a shared condvar. The parking handshake is the classic
/// Dekker store-buffer pattern — publish index then load the peer's waiter
/// count, versus increment waiter count then load the index, all seq_cst —
/// so a wakeup can never be missed.
///
/// Contract: exactly one thread performs send-side ops and one thread
/// recv-side ops. The roles are phantom capabilities: a thread asserts its
/// role with `common::RoleGuard prod(ch.producer_role())` (resp.
/// `consumer_role()`) and the compiler rejects cross-role calls — the guard
/// costs nothing at runtime, it only makes the structural claim checkable.
/// `close()`/`closed()`/`size()` may be called from any thread. As with
/// `Channel`, items pending at close() remain receivable.
/// One deliberate difference: a send *racing* with close() may be dropped
/// even though it returned true — close is a shutdown/failure signal here,
/// and every runtime path that closes a live link also abandons the batch,
/// so both ends already treat the stream as dead. Producers that need clean
/// drain semantics must quiesce before close (the runtime's normal
/// end-of-batch barrier guarantees exactly that).
///
/// The mirror-image guarantee on the receive side: once any recv-side op has
/// reported closed-and-drained (kClosed / nullopt), every later recv-side op
/// reports the same — even if a send that raced close() publishes its slot
/// *after* the consumer observed the drain. Without this, a recovery drain
/// loop could see kClosed, tear down, and a retry could then surface a
/// resurrected item, making the end-of-stream point scheduling-dependent.
/// The flag is consumer-owned (GUARDED_BY the consumer role: only recv-side
/// ops touch it), so it needs no synchronisation under the SPSC contract.
template <typename T>
class SpscChannel {
 public:
  /// \param capacity maximum buffered items; must be >= 1. `T` must be
  /// default-constructible (ring slots) and movable.
  explicit SpscChannel(std::size_t capacity)
      : capacity_(capacity), slots_(capacity) {
    AVGPIPE_CHECK(capacity >= 1, "channel capacity must be positive");
  }

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  /// The phantom capability a thread must hold (via RoleGuard) to perform
  /// send-side ops. Holding it is a structural claim — "I am the one
  /// producer of this link" — that the surrounding design must justify.
  common::Role& producer_role() const RETURN_CAPABILITY(producer_role_) {
    return producer_role_;
  }
  /// Recv-side counterpart of `producer_role()`.
  common::Role& consumer_role() const RETURN_CAPABILITY(consumer_role_) {
    return consumer_role_;
  }

  /// Blocking send. Returns false (and drops `value`) if closed.
  bool send(T value) REQUIRES(producer_role_) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (wait_for_space(t, kForever) != ChannelStatus::kOk) return false;
    slots_[t % capacity_] = std::move(value);
    publish_tail(t);
    return true;
  }

  /// Timed send: blocks up to `timeout` seconds for space. On kTimeout and
  /// kClosed the value is dropped.
  ChannelStatus send_for(T value, Seconds timeout) REQUIRES(producer_role_) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const ChannelStatus st = wait_for_space(t, timeout);
    if (st != ChannelStatus::kOk) return st;
    slots_[t % capacity_] = std::move(value);
    publish_tail(t);
    return ChannelStatus::kOk;
  }

  /// Non-blocking send. Returns false if full or closed.
  bool try_send(T value) REQUIRES(producer_role_) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (closed_.load(std::memory_order_acquire) || !have_space(t)) {
      return false;
    }
    slots_[t % capacity_] = std::move(value);
    publish_tail(t);
    return true;
  }

  /// Blocking receive. Returns nullopt when the channel is closed and
  /// drained; once it has, every later recv-side op agrees (see class
  /// comment).
  std::optional<T> recv() REQUIRES(consumer_role_) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (wait_for_item(h, kForever) != ChannelStatus::kOk) return std::nullopt;
    T value = std::move(slots_[h % capacity_]);
    consume_head(h);
    return value;
  }

  /// Timed receive: pending items are still delivered after close (kOk),
  /// and kClosed is terminal — after the first kClosed the channel never
  /// reports kOk or kTimeout again.
  ChannelStatus recv_for(T* out, Seconds timeout) REQUIRES(consumer_role_) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    const ChannelStatus st = wait_for_item(h, timeout);
    if (st != ChannelStatus::kOk) return st;
    *out = std::move(slots_[h % capacity_]);
    consume_head(h);
    return ChannelStatus::kOk;
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() REQUIRES(consumer_role_) {
    if (drained_) return std::nullopt;
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (!item_ready(h)) return std::nullopt;
    T value = std::move(slots_[h % capacity_]);
    consume_head(h);
    return value;
  }

  /// Close the channel; wakes all parked waiters. Idempotent. See the class
  /// comment for the in-flight-send caveat.
  void close() {
    common::MutexLock lock(park_mutex_);
    closed_.store(true, std::memory_order_seq_cst);
    park_cv_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Buffered item count. Exact when the channel is quiesced; during
  /// concurrent traffic it is a consistent snapshot of one end's progress.
  std::size_t size() const {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return t >= h ? t - h : 0;
  }

  std::size_t capacity() const { return capacity_; }

  /// Cumulative slow-path statistics, both sides combined: `spin_waits()`
  /// counts spin-window entries (an op that missed the two-atomic fast path),
  /// `parks()` counts condvar parks (an op whose spin window also missed).
  /// Relaxed and monotone — a cheap contention probe the runtime samples as
  /// per-batch deltas, never a synchronisation point.
  std::uint64_t spin_waits() const {
    return spin_waits_.load(std::memory_order_relaxed);
  }
  std::uint64_t parks() const {
    return parks_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr Seconds kForever = -1.0;

  bool have_space(std::size_t t) const {
    return t - head_.load(std::memory_order_acquire) < capacity_;
  }
  bool item_ready(std::size_t h) const {
    return tail_.load(std::memory_order_acquire) != h;
  }

  void publish_tail(std::size_t t) REQUIRES(producer_role_) {
    tail_.store(t + 1, std::memory_order_seq_cst);
    if (recv_waiters_.load(std::memory_order_seq_cst) != 0) {
      common::MutexLock lock(park_mutex_);
      park_cv_.notify_all();
    }
  }

  void consume_head(std::size_t h) REQUIRES(consumer_role_) {
    head_.store(h + 1, std::memory_order_seq_cst);
    if (send_waiters_.load(std::memory_order_seq_cst) != 0) {
      common::MutexLock lock(park_mutex_);
      park_cv_.notify_all();
    }
  }

  ChannelStatus wait_for_space(std::size_t t, Seconds timeout)
      REQUIRES(producer_role_) {
    if (closed_.load(std::memory_order_acquire)) return ChannelStatus::kClosed;
    if (have_space(t)) return ChannelStatus::kOk;
    spin_waits_.fetch_add(1, std::memory_order_relaxed);
    spin_send_.spin([&] {
      return have_space(t) || closed_.load(std::memory_order_acquire);
    });
    if (closed_.load(std::memory_order_acquire)) return ChannelStatus::kClosed;
    if (have_space(t)) return ChannelStatus::kOk;
    const ChannelStatus st = park(send_waiters_, timeout, [&] {
      // seq_cst head load: pairs with consume_head's store for the Dekker
      // handshake (see class comment).
      return t - head_.load(std::memory_order_seq_cst) < capacity_;
    });
    // Close wins over freed-up space: a send must fail once closed even if
    // the consumer drained while we were parked (mirrors Channel::send).
    if (closed_.load(std::memory_order_acquire)) return ChannelStatus::kClosed;
    return st;
  }

  /// Consumer-side wait wrapper: makes the closed-and-drained outcome
  /// sticky. A publish_tail racing close() can land *after* the consumer
  /// already observed the drain; without the latch the stream would
  /// "resurrect" and the end-of-stream point would depend on thread timing.
  ChannelStatus wait_for_item(std::size_t h, Seconds timeout)
      REQUIRES(consumer_role_) {
    if (drained_) return ChannelStatus::kClosed;
    const ChannelStatus st = wait_for_item_once(h, timeout);
    if (st == ChannelStatus::kClosed) drained_ = true;
    return st;
  }

  ChannelStatus wait_for_item_once(std::size_t h, Seconds timeout)
      REQUIRES(consumer_role_) {
    if (item_ready(h)) return ChannelStatus::kOk;
    if (closed_.load(std::memory_order_acquire)) {
      // Re-check after the closed read: pending items drain after close.
      return item_ready(h) ? ChannelStatus::kOk : ChannelStatus::kClosed;
    }
    spin_waits_.fetch_add(1, std::memory_order_relaxed);
    spin_recv_.spin([&] {
      return item_ready(h) || closed_.load(std::memory_order_acquire);
    });
    if (item_ready(h)) return ChannelStatus::kOk;
    if (closed_.load(std::memory_order_acquire)) return ChannelStatus::kClosed;
    const ChannelStatus st = park(recv_waiters_, timeout, [&] {
      return tail_.load(std::memory_order_seq_cst) != h;
    });
    // A close that raced the park still delivers a ready item first.
    if (item_ready(h)) return ChannelStatus::kOk;
    return st;
  }

  /// Shared park slow path: register as a waiter, wait on the condvar until
  /// `ready()` or closed (or the timeout elapses), and report the outcome.
  /// `ready` reads only the channel's atomics, never role-guarded state, so
  /// it is safe to evaluate from either role.
  template <typename Ready>
  ChannelStatus park(std::atomic<std::uint32_t>& waiters, Seconds timeout,
                     Ready&& ready) {
    parks_.fetch_add(1, std::memory_order_relaxed);
    common::MutexLock lock(park_mutex_);
    waiters.fetch_add(1, std::memory_order_seq_cst);
    const auto pred = [&] {
      return ready() || closed_.load(std::memory_order_seq_cst);
    };
    if (timeout < 0) {
      while (!pred()) park_cv_.wait(park_mutex_, lock);
    } else {
      const auto deadline = detail::deadline_after(timeout);
      while (!pred()) {
        if (park_cv_.wait_until(park_mutex_, lock, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
    }
    waiters.fetch_sub(1, std::memory_order_relaxed);
    if (ready()) return ChannelStatus::kOk;
    return closed_.load(std::memory_order_acquire) ? ChannelStatus::kClosed
                                                   : ChannelStatus::kTimeout;
  }

  const std::size_t capacity_;
  std::vector<T> slots_;
  // Monotone positions; slot index = position % capacity. tail_ written only
  // by the producer, head_ only by the consumer.
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
  std::atomic<bool> closed_{false};
  // Phantom role capabilities (no runtime state; mutable so const accessors
  // can hand them to RoleGuard).
  mutable common::Role producer_role_;
  mutable common::Role consumer_role_;
  // Consumer-owned end-of-stream latch (recv-side ops only).
  bool drained_ GUARDED_BY(consumer_role_) = false;
  std::atomic<std::uint32_t> send_waiters_{0};
  std::atomic<std::uint32_t> recv_waiters_{0};
  std::atomic<std::uint64_t> spin_waits_{0};
  std::atomic<std::uint64_t> parks_{0};
  common::Mutex park_mutex_;
  common::CondVar park_cv_;
  detail::SpinPolicy spin_send_;
  detail::SpinPolicy spin_recv_;
};

}  // namespace avgpipe
