#pragma once

/// \file queue.hpp
/// Bounded, closable multi-producer/multi-consumer channel.
///
/// This is the message-passing primitive AvgPipe's runtime is built on: stage
/// workers exchange activations/gradients through channels, and parallel
/// pipelines ship local updates to the reference-model process through them
/// (paper §3.2, steps ❸–❹). The design mirrors MPI-style cooperative
/// send/recv: a bounded buffer provides back-pressure, and `close()` gives a
/// clean end-of-stream so pipelines can drain and join deterministically.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/check.hpp"

namespace avgpipe {

/// Bounded MPMC channel. All methods are thread-safe.
///
/// Semantics:
///  * `send` blocks while full; returns false if the channel is closed.
///  * `recv` blocks while empty; returns nullopt once closed *and* drained.
///  * `close` wakes all waiters; pending items remain receivable.
template <typename T>
class Channel {
 public:
  /// \param capacity maximum buffered items; must be >= 1.
  explicit Channel(std::size_t capacity = 64) : capacity_(capacity) {
    AVGPIPE_CHECK(capacity >= 1, "channel capacity must be positive");
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocking send. Returns false (and drops `value`) if closed.
  bool send(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking send. Returns false if full or closed.
  bool try_send(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking receive. Returns nullopt when the channel is closed and empty.
  std::optional<T> recv() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Close the channel; wakes all blocked senders/receivers.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace avgpipe
