#pragma once

/// \file queue.hpp
/// Bounded, closable multi-producer/multi-consumer channel.
///
/// This is the message-passing primitive AvgPipe's runtime is built on: stage
/// workers exchange activations/gradients through channels, and parallel
/// pipelines ship local updates to the reference-model process through them
/// (paper §3.2, steps ❸–❹). The design mirrors MPI-style cooperative
/// send/recv: a bounded buffer provides back-pressure, and `close()` gives a
/// clean end-of-stream so pipelines can drain and join deterministically.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/check.hpp"
#include "common/units.hpp"

namespace avgpipe {

/// Outcome of a timed channel operation (recv_for / send_for).
enum class ChannelStatus {
  kOk,       ///< item transferred
  kTimeout,  ///< deadline elapsed; channel still open
  kClosed,   ///< channel closed (and, for recv, drained)
};

/// Bounded MPMC channel. All methods are thread-safe.
///
/// Semantics:
///  * `send` blocks while full; returns false if the channel is closed.
///  * `recv` blocks while empty; returns nullopt once closed *and* drained.
///  * `close` wakes *all* blocked producers and consumers; a `send` issued
///    after close returns false immediately instead of blocking, and pending
///    items remain receivable (clean end-of-stream).
///  * `recv_for` / `send_for` are the bounded variants used by the fault-
///    tolerant runtime: they give the caller back control after a timeout so
///    a worker can back off, record a health signal, and eventually declare
///    a silent peer dead rather than blocking forever.
template <typename T>
class Channel {
 public:
  /// \param capacity maximum buffered items; must be >= 1.
  explicit Channel(std::size_t capacity = 64) : capacity_(capacity) {
    AVGPIPE_CHECK(capacity >= 1, "channel capacity must be positive");
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocking send. Returns false (and drops `value`) if closed.
  bool send(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Timed send: blocks up to `timeout` seconds for space. On kTimeout and
  /// kClosed the value is dropped (matching `send`'s closed behaviour).
  ChannelStatus send_for(T value, Seconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool ready = not_full_.wait_for(
        lock, std::chrono::duration<double>(timeout),
        [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return ChannelStatus::kClosed;
    if (!ready) return ChannelStatus::kTimeout;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return ChannelStatus::kOk;
  }

  /// Non-blocking send. Returns false if full or closed.
  bool try_send(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking receive. Returns nullopt when the channel is closed and empty.
  std::optional<T> recv() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Timed receive: blocks up to `timeout` seconds for an item. Pending
  /// items are still delivered after close (kOk), mirroring `recv`.
  ChannelStatus recv_for(T* out, Seconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_for(lock, std::chrono::duration<double>(timeout),
                        [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return closed_ ? ChannelStatus::kClosed : ChannelStatus::kTimeout;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return ChannelStatus::kOk;
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Close the channel; wakes all blocked senders/receivers. Idempotent.
  ///
  /// The notifies happen *while holding the mutex*: if they were issued
  /// after releasing it, a waiter woken spuriously could observe `closed_`,
  /// return, and let the owner destroy the channel before close() touched
  /// the condition variables — a use-after-free on shutdown of a full
  /// queue with a blocked producer. Holding the lock closes that window:
  /// no waiter can complete its predicate check until close() has finished.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace avgpipe
