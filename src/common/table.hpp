#pragma once

/// \file table.hpp
/// Aligned plain-text table printer used by the figure-reproduction benches
/// to emit the paper's rows/series in a diff-friendly format.

#include <iosfwd>
#include <string>
#include <vector>

namespace avgpipe {

/// Column-aligned table. Cells are strings; numeric helpers format in place.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Begin a new row; subsequent add_* calls fill it left to right.
  Table& row();
  Table& cell(std::string text);
  Table& cell(double value, int precision = 3);
  Table& cell_int(long long value);

  /// Render with a header rule; every row padded to the widest cell.
  std::string to_string() const;
  void print(std::ostream& os) const;
  /// Print to stdout.
  void print() const;

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace avgpipe
