#pragma once

/// \file env.hpp
/// Typed environment-variable helpers — the one sanctioned `std::getenv`
/// call site in the repo (lint rule `raw-getenv` bans it everywhere else).
///
/// `getenv` is not thread-safe against a concurrent `setenv`; the repo's
/// contract is that every knob is read at construction or static-init time,
/// before any worker thread exists, and nothing calls `setenv` after
/// threads start. Centralising the reads here makes that contract auditable
/// (one grep) instead of a clang-tidy suppression at every call site.
///
/// Parse semantics, shared by every knob:
///  - unset or empty        → the caller's fallback (a knob explicitly set
///                            to "" behaves like an unset knob)
///  - env_flag: "0", "false", "off", "no" (any case) → false; any other
///    non-empty value → true
///  - env_int / env_int_opt: strict integer parse; trailing junk or a
///    non-numeric value throws via AVGPIPE_CHECK — a mistyped knob fails
///    loudly instead of silently training with a default.

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/check.hpp"

namespace avgpipe::common {

/// Raw read. Prefer the typed helpers; this exists for call sites with
/// bespoke parsers (pin policies, thread-count expressions) that want the
/// untouched C string.
inline const char* env_raw(const char* name) {
  return std::getenv(name);  // LINT_ALLOW(raw-getenv): the sanctioned wrapper
}

/// Boolean knob. Unset/empty → `fallback`.
inline bool env_flag(const char* name, bool fallback) {
  const char* v = env_raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::string lower;
  for (const char* p = v; *p != '\0'; ++p) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  return !(lower == "0" || lower == "false" || lower == "off" ||
           lower == "no");
}

/// Integer knob that distinguishes "unset" from any set value. Throws on a
/// malformed value.
inline std::optional<long> env_int_opt(const char* name) {
  const char* v = env_raw(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  AVGPIPE_CHECK(end != v && end != nullptr && *end == '\0',
                "environment variable " << name << " is not an integer: '"
                                        << v << "'");
  return parsed;
}

/// Integer knob. Unset/empty → `fallback`; malformed → throws.
inline long env_int(const char* name, long fallback) {
  const auto v = env_int_opt(name);
  return v.has_value() ? *v : fallback;
}

/// String knob. Unset/empty → `fallback`.
inline std::string env_string(const char* name, const std::string& fallback) {
  const char* v = env_raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

}  // namespace avgpipe::common
