#include "common/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/check.hpp"

namespace avgpipe {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  AVGPIPE_CHECK(!header_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  AVGPIPE_CHECK(!rows_.empty(), "call row() before cell()");
  AVGPIPE_CHECK(rows_.back().size() < header_.size(),
                "row has more cells than header columns");
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return cell(std::string(buf));
}

Table& Table::cell_int(long long value) {
  return cell(std::to_string(value));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      os << text << std::string(widths[c] - text.size(), ' ');
      os << (c + 1 < header_.size() ? "  " : "");
    }
    os << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }
void Table::print() const { print(std::cout); }

}  // namespace avgpipe
