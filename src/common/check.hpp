#pragma once

/// \file check.hpp
/// Error-handling primitives used across the AvgPipe codebase.
///
/// Following the C++ Core Guidelines (I.6/I.8) we express preconditions and
/// postconditions explicitly. Violations throw `avgpipe::Error`, which carries
/// the failing expression and source location so tests can assert on it.

#include <sstream>
#include <stdexcept>
#include <string>

namespace avgpipe {

/// Exception thrown by AVGPIPE_CHECK / AVGPIPE_THROW on contract violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed";
  if (expr != nullptr && expr[0] != '\0') os << ": (" << expr << ")";
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

/// Tiny lazy message builder so `AVGPIPE_CHECK(x, "a" << b)` works.
class MessageStream {
 public:
  template <typename T>
  MessageStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace avgpipe

/// Check `cond`; on failure throw avgpipe::Error with optional streamed
/// message: AVGPIPE_CHECK(n > 0, "n was " << n).
#define AVGPIPE_CHECK(cond, ...)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::avgpipe::detail::throw_error(                                        \
          #cond, __FILE__, __LINE__,                                         \
          (::avgpipe::detail::MessageStream{} __VA_OPT__(<< __VA_ARGS__))    \
              .str());                                                       \
    }                                                                        \
  } while (false)

/// Unconditional failure with streamed message.
#define AVGPIPE_THROW(...)                                                   \
  ::avgpipe::detail::throw_error(                                            \
      "", __FILE__, __LINE__,                                                \
      (::avgpipe::detail::MessageStream{} __VA_OPT__(<< __VA_ARGS__)).str())
