#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace avgpipe {

namespace {
std::string format_scaled(double value, const char* const* suffixes,
                          int n_suffixes, double base) {
  int idx = 0;
  double v = value;
  while (std::fabs(v) >= base && idx + 1 < n_suffixes) {
    v /= base;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, suffixes[idx]);
  return buf;
}
}  // namespace

std::string format_bytes(Bytes bytes) {
  static const char* suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  return format_scaled(bytes, suffixes, 5, 1024.0);
}

std::string format_flops(Flops f) {
  static const char* suffixes[] = {"FLOP", "KFLOP", "MFLOP", "GFLOP", "TFLOP",
                                   "PFLOP"};
  return format_scaled(f, suffixes, 6, 1000.0);
}

std::string format_seconds(Seconds s) {
  char buf[64];
  double a = std::fabs(s);
  if (a >= kHour) {
    std::snprintf(buf, sizeof(buf), "%.2f h", s / kHour);
  } else if (a >= kMinute) {
    std::snprintf(buf, sizeof(buf), "%.2f min", s / kMinute);
  } else if (a >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", s);
  } else if (a >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f us", s / kMicrosecond);
  }
  return buf;
}

std::string format_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace avgpipe
