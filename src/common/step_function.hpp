#pragma once

/// \file step_function.hpp
/// Piecewise-constant function of time.
///
/// The profiling-based tuner (paper §5.2) reasons about the GPU-utilization
/// curve φ^k(t): Equation (2) scales it by m·n*/(m*·n) and integrates the
/// part that exceeds 100 %. `StepFunction` is that curve: a sorted list of
/// breakpoints with constant values between them, plus the handful of
/// operations the predictor needs (scale, clamp-excess integral).

#include <vector>

#include "common/units.hpp"

namespace avgpipe {

/// Piecewise-constant f(t) on [start, end); value is `values[i]` on
/// [times[i], times[i+1]).
class StepFunction {
 public:
  StepFunction() = default;

  /// Append a segment [t_begin, t_end) with constant `value`. Segments must
  /// be appended in non-decreasing time order; zero-length segments are
  /// dropped; adjacent equal values are merged.
  void append(Seconds t_begin, Seconds t_end, double value);

  bool empty() const { return segments_.empty(); }
  std::size_t size() const { return segments_.size(); }

  Seconds start() const;
  Seconds end() const;
  /// Total covered duration (gaps between appended segments count as value 0
  /// only through `integral`-style queries; duration() excludes gaps).
  Seconds duration() const;

  /// f(t); 0 outside all segments.
  double value_at(Seconds t) const;

  /// ∫ f(t) dt over all segments.
  double integral() const;

  /// ∫ max(scale·f(t) − cap, 0) dt — the "overflow" term of Equation (2).
  double excess_integral(double scale, double cap) const;

  /// max over segments of f(t).
  double max_value() const;

  /// Time-weighted mean of f over [start, end] including gaps (gaps count
  /// as 0): integral() / (end() − start()).
  double mean_over_span() const;

  struct Segment {
    Seconds begin;
    Seconds end;
    double value;
  };
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  std::vector<Segment> segments_;
};

}  // namespace avgpipe
