#include "common/step_function.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace avgpipe {

void StepFunction::append(Seconds t_begin, Seconds t_end, double value) {
  if (t_end <= t_begin) return;
  if (!segments_.empty()) {
    AVGPIPE_CHECK(t_begin >= segments_.back().end - 1e-12,
                  "segments must be appended in time order: "
                      << t_begin << " < " << segments_.back().end);
    auto& back = segments_.back();
    if (std::fabs(back.end - t_begin) < 1e-12 && back.value == value) {
      back.end = t_end;
      return;
    }
  }
  segments_.push_back({t_begin, t_end, value});
}

Seconds StepFunction::start() const {
  AVGPIPE_CHECK(!segments_.empty(), "empty step function has no start");
  return segments_.front().begin;
}

Seconds StepFunction::end() const {
  AVGPIPE_CHECK(!segments_.empty(), "empty step function has no end");
  return segments_.back().end;
}

Seconds StepFunction::duration() const {
  Seconds total = 0.0;
  for (const auto& s : segments_) total += s.end - s.begin;
  return total;
}

double StepFunction::value_at(Seconds t) const {
  for (const auto& s : segments_) {
    if (t >= s.begin && t < s.end) return s.value;
  }
  return 0.0;
}

double StepFunction::integral() const {
  double total = 0.0;
  for (const auto& s : segments_) total += s.value * (s.end - s.begin);
  return total;
}

double StepFunction::excess_integral(double scale, double cap) const {
  double total = 0.0;
  for (const auto& s : segments_) {
    total += std::max(scale * s.value - cap, 0.0) * (s.end - s.begin);
  }
  return total;
}

double StepFunction::max_value() const {
  double m = 0.0;
  for (const auto& s : segments_) m = std::max(m, s.value);
  return m;
}

double StepFunction::mean_over_span() const {
  if (segments_.empty()) return 0.0;
  const Seconds span = end() - start();
  return span > 0.0 ? integral() / span : 0.0;
}

}  // namespace avgpipe
