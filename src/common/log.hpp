#pragma once

/// \file log.hpp
/// Minimal leveled logger. Thread-safe (a single global mutex serialises
/// writes). Intended for coarse progress reporting, not hot paths.

#include <sstream>
#include <string>

namespace avgpipe {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_write(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace avgpipe

#define AVGPIPE_LOG(level)                                   \
  if (::avgpipe::LogLevel::level < ::avgpipe::log_level()) { \
  } else                                                     \
    ::avgpipe::detail::LogLine(::avgpipe::LogLevel::level)

#define LOG_DEBUG AVGPIPE_LOG(kDebug)
#define LOG_INFO AVGPIPE_LOG(kInfo)
#define LOG_WARN AVGPIPE_LOG(kWarn)
#define LOG_ERROR AVGPIPE_LOG(kError)
