#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool with a parallel_for helper.
///
/// The tensor kernels use `parallel_for` OpenMP-style: a half-open index
/// range is split into contiguous chunks with a minimum grain size. The
/// calling thread always executes the first chunk itself (caller-runs), so
/// a parallel_for issued from inside a pool task cannot deadlock and small
/// ranges never pay a wake-up. On a single-core host the pool degenerates
/// to inline execution with zero overhead, which keeps unit tests fast and
/// deterministic.
///
/// The process-wide pool (`ThreadPool::global()`) is sized by the
/// AVGPIPE_NUM_THREADS environment variable (falling back to
/// hardware_concurrency), giving benches and the pipeline runtime one knob
/// for intra-op parallelism.

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/queue.hpp"

namespace avgpipe {

/// Fixed set of worker threads consuming a shared task channel.
class ThreadPool {
 public:
  /// \param num_threads 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; runs asynchronously on some worker.
  void submit(std::function<void()> task);

  /// Run fn(lo, hi) over [begin, end) split into contiguous chunks of at
  /// least `grain` indices each (at most one chunk per worker plus the
  /// caller); blocks until all chunks finish. The caller executes the first
  /// chunk itself. Exceptions inside `fn` terminate (tensor kernels are
  /// noexcept in spirit); keep bodies simple.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Process-wide shared pool, lazily created with `configured_num_threads()`
  /// workers.
  static ThreadPool& global();

 private:
  void worker_loop();

  Channel<std::function<void()>> tasks_{1024};
  std::vector<std::thread> workers_;
};

/// Parse an AVGPIPE_NUM_THREADS-style value: a positive integer wins,
/// anything else (null, empty, junk, zero) yields `fallback`.
std::size_t parse_num_threads(const char* value, std::size_t fallback);

/// Thread count the global pool is created with: AVGPIPE_NUM_THREADS if set
/// to a positive integer, else hardware_concurrency (min 1).
std::size_t configured_num_threads();

}  // namespace avgpipe
