#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool with a parallel_for helper.
///
/// The tensor kernels use `parallel_for` OpenMP-style: a half-open index
/// range is split into contiguous chunks with a minimum grain size. The
/// calling thread always executes the first chunk itself (caller-runs), so
/// a parallel_for issued from inside a pool task cannot deadlock and small
/// ranges never pay a wake-up. On a single-core host the pool degenerates
/// to inline execution with zero overhead, which keeps unit tests fast and
/// deterministic.
///
/// The process-wide pool (`ThreadPool::global()`) is sized by the
/// AVGPIPE_NUM_THREADS environment variable (falling back to
/// hardware_concurrency), giving benches and the pipeline runtime one knob
/// for intra-op parallelism.
///
/// When several threads share the pool — the pipeline runtime runs K stage
/// threads that all issue tensor kernels — an unrestricted fan-out
/// oversubscribes the machine K-fold: every caller chunks across the whole
/// pool. A `PartitionGuard` installs a per-caller worker share (counting the
/// caller itself), so K stage threads holding shares that sum to the pool
/// budget fan out without stepping on each other. The share is thread-local
/// and purely a chunking limit: workers are not reserved, so an idle stage's
/// share is still usable by a busy one.

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/queue.hpp"

namespace avgpipe {

/// Fixed set of worker threads consuming a shared task channel.
class ThreadPool {
 public:
  /// \param num_threads 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; runs asynchronously on some worker.
  void submit(std::function<void()> task);

  /// Highest number of parallel_for chunks observed running simultaneously
  /// on this pool's workers since the last `reset_peak_active()` (the
  /// caller-runs chunk and plain submit() tasks are not counted). The
  /// oversubscription regression probe: with K partitioned callers the peak
  /// must stay within the sum of their worker-side shares.
  std::size_t peak_active_workers() const {
    return peak_active_.load(std::memory_order_relaxed);
  }
  void reset_peak_active() {
    peak_active_.store(0, std::memory_order_relaxed);
  }

  /// Run fn(lo, hi) over [begin, end) split into contiguous chunks of at
  /// least `grain` indices each (at most one chunk per worker plus the
  /// caller); blocks until all chunks finish. The caller executes the first
  /// chunk itself. Exceptions inside `fn` terminate (tensor kernels are
  /// noexcept in spirit); keep bodies simple.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Process-wide shared pool, lazily created with `configured_num_threads()`
  /// workers.
  static ThreadPool& global();

 private:
  void worker_loop();

  Channel<std::function<void()>> tasks_{1024};
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> active_{0};
  std::atomic<std::size_t> peak_active_{0};
};

/// RAII worker partition for the calling thread: while alive, a parallel_for
/// issued from this thread splits into at most `workers` chunks (the caller
/// counts as one of them, so `workers == 1` means fully inline). Guards nest
/// — the constructor saves the previous share and the destructor restores
/// it. An explicit share is trusted past the hardware-concurrency cap so
/// tests can exercise real cross-thread fan-out on small machines; the
/// provisioning helpers below never hand out shares that sum past the
/// budget.
class PartitionGuard {
 public:
  explicit PartitionGuard(std::size_t workers);
  ~PartitionGuard();

  PartitionGuard(const PartitionGuard&) = delete;
  PartitionGuard& operator=(const PartitionGuard&) = delete;

 private:
  std::size_t saved_;
};

/// The calling thread's installed partition share; 0 = unpartitioned
/// (parallel_for falls back to the CPU-count cap).
std::size_t current_partition();

/// Fair per-stage share when `stages` threads issue kernels concurrently:
/// min(configured pool budget, hardware_concurrency) / stages, floored at 1.
/// K stages * default_stage_workers(K) never exceeds the budget (beyond the
/// caller-runs floor of one chunk per stage).
std::size_t default_stage_workers(std::size_t stages);

/// Per-stage worker share from AVGPIPE_STAGE_THREADS: a positive integer
/// wins, anything else yields `default_stage_workers(stages)`.
std::size_t stage_workers_from_env(std::size_t stages);

/// Parse an AVGPIPE_NUM_THREADS-style value: a positive integer wins,
/// anything else (null, empty, junk, zero) yields `fallback`.
std::size_t parse_num_threads(const char* value, std::size_t fallback);

/// Thread count the global pool is created with: AVGPIPE_NUM_THREADS if set
/// to a positive integer, else hardware_concurrency (min 1).
std::size_t configured_num_threads();

}  // namespace avgpipe
