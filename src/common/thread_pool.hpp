#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool with a parallel_for helper.
///
/// The tensor kernels use `parallel_for` OpenMP-style: a half-open index
/// range is split into contiguous chunks, one per worker. On a single-core
/// host the pool degenerates to inline execution with zero overhead, which
/// keeps unit tests fast and deterministic.

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/queue.hpp"

namespace avgpipe {

/// Fixed set of worker threads consuming a shared task channel.
class ThreadPool {
 public:
  /// \param num_threads 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; runs asynchronously on some worker.
  void submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end), split into one contiguous chunk per
  /// worker; blocks until all chunks finish. Exceptions inside `fn`
  /// terminate (tensor kernels are noexcept in spirit); keep bodies simple.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide shared pool (lazily created, sized to the machine).
  static ThreadPool& global();

 private:
  void worker_loop();

  Channel<std::function<void()>> tasks_{1024};
  std::vector<std::thread> workers_;
};

}  // namespace avgpipe
