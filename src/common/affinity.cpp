#include "common/affinity.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/env.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace avgpipe {

const char* to_string(PinPolicy policy) {
  switch (policy) {
    case PinPolicy::kCompact: return "compact";
    case PinPolicy::kScatter: return "scatter";
    case PinPolicy::kNone: break;
  }
  return "none";
}

PinPolicy parse_pin_policy(const char* value) {
  if (value == nullptr || *value == '\0') return PinPolicy::kNone;
  if (std::strcmp(value, "compact") == 0 || std::strcmp(value, "1") == 0) {
    return PinPolicy::kCompact;
  }
  if (std::strcmp(value, "scatter") == 0) return PinPolicy::kScatter;
  return PinPolicy::kNone;
}

PinPolicy pin_policy_from_env() {
  // Read once, before the runtime spawns its threads; nothing calls setenv.
  static const PinPolicy policy =
      parse_pin_policy(common::env_raw("AVGPIPE_PIN_THREADS"));
  return policy;
}

std::size_t num_cores() {
  return std::max(1u, std::thread::hardware_concurrency());
}

std::size_t pin_core_for_slot(PinPolicy policy, std::size_t slot,
                              std::size_t total_slots, std::size_t cores) {
  cores = std::max<std::size_t>(1, cores);
  if (policy == PinPolicy::kScatter && total_slots > 0) {
    return (slot * cores) / total_slots;
  }
  return slot % cores;
}

bool pin_current_thread(PinPolicy policy, std::size_t slot,
                        std::size_t total_slots) {
  if (policy == PinPolicy::kNone) return false;
  if (total_slots == 0 || slot >= total_slots) return false;
  const std::size_t cores = num_cores();
  if (total_slots > cores) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(pin_core_for_slot(policy, slot, total_slots, cores)),
          &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace avgpipe
