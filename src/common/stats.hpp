#pragma once

/// \file stats.hpp
/// Streaming statistics and small numeric helpers shared by the profiler,
/// trace analysis and benches.

#include <cstddef>
#include <limits>
#include <vector>

namespace avgpipe {

/// Welford-style streaming mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// boundary bins. Used for utilization distributions in traces.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  /// Value below which `q` (in [0,1]) of the mass lies (bin midpoint interp).
  double quantile(double q) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exponential moving average; used by Algorithm 1's is_faster() test to
/// smooth per-iteration batch times.
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}
  void add(double x) {
    value_ = initialized_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    initialized_ = true;
  }
  bool initialized() const { return initialized_; }
  double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Relative difference |a-b| / max(|a|,|b|,eps).
double relative_difference(double a, double b, double eps = 1e-12);

}  // namespace avgpipe
