#pragma once

/// \file simulator.hpp
/// Executes pipeline schedules against the simulated cluster.
///
/// The simulator places pipeline stage k on GPU k (node-major), spawns one
/// instruction stream per (pipeline, stage) — parallel pipelines are
/// separate processes sharing the GPU, exactly as AvgPipe launches them
/// (paper §3.2) — and honours every stream's instruction order strictly.
/// Forward/backward dependencies travel over simulated links, so overlap
/// of communication with computation (or the lack of it, for 1F1B) is an
/// emergent property of the schedule, not a modelling flag.
///
/// Substitution note (see DESIGN.md): this module is the stand-in for the
/// paper's 6x V100 / 1 GbE testbed. All timing/memory figures (Figs 11-13,
/// 15-19) are produced here; statistical-efficiency figures use the real
/// threaded runtime instead.

#include <vector>

#include "common/step_function.hpp"
#include "schedule/schedule.hpp"
#include "workloads/cluster.hpp"
#include "workloads/profile.hpp"
#include "partition/partitioner.hpp"

namespace avgpipe::trace {
class Tracer;
}

namespace avgpipe::fault {
class FaultPlan;
}

namespace avgpipe::sim {

/// Per-stage costs fed to the simulator (one entry per GPU).
struct SimStage {
  Flops fwd_flops_per_sample = 0;
  Bytes boundary_act_bytes_per_sample = 0;  ///< output boundary tensor
  Bytes stash_bytes_per_sample = 0;
  Bytes param_bytes = 0;
  Bytes dense_state_bytes = 0;  ///< basis for gradient/optimizer memory
};

/// A complete simulation job: cluster + per-stage costs + system config.
struct SimJob {
  workloads::ClusterSpec cluster;
  std::vector<SimStage> stages;  ///< K entries; stage k runs on GPU k

  double eff_half_batch = 2.0;         ///< kernel efficiency half-saturation
  /// Achievable GPU utilization <= concurrency_gain x single-kernel
  /// efficiency: co-scheduled pipelines raise utilization, but the overlap
  /// is not perfectly additive (paper §5.1: "diminishing marginal utility of
  /// GPU utilization when increasing the parallel pipeline number").
  double concurrency_gain = 2.5;
  double optimizer_state_factor = 2.0; ///< bytes of state per weight byte

  schedule::Kind kind = schedule::Kind::kOneFOneB;
  std::size_t num_pipelines = 1;  ///< N parallel pipelines
  bool elastic_averaging = false; ///< reference model + averaging costs
  std::size_t micro_batches = 1;  ///< M per batch (per pipeline)
  std::size_t batch_size = 1;     ///< samples per batch (per pipeline)
  std::size_t num_batches = 4;    ///< batches to simulate
  std::size_t advance_num = 0;    ///< AFP advance count; 0 -> K-1 (=1F1B)

  /// Activation recomputation (gradient checkpointing): stash only the
  /// stage's boundary input and replay the forward during backward. Trades
  /// ~fwd_flops of extra backward work for an M-independent stash. The
  /// paper's evaluation disables it for all systems (§7.1); it is provided
  /// as an option for exploring the memory/compute trade.
  bool activation_recompute = false;

  Bytes memory_limit = 0;  ///< per-GPU cap; 0 = cluster GPU memory

  /// Optional event sink (non-owning; may outlive the job struct but must
  /// outlive simulate()). When set, the simulator records compute, comm and
  /// stall spans with simulated timestamps plus per-GPU φ(t) counter
  /// segments — see trace/trace.hpp.
  trace::Tracer* tracer = nullptr;

  /// Optional fault scenario (non-owning; must outlive simulate()). The
  /// simulator consumes the virtual-time windows: straggler factors scale
  /// submitted work, link-degradation windows rescale bandwidth/latency as
  /// scheduled events, message drops delay transfers by a deterministic
  /// retry penalty, and pipeline crashes kill/rejoin whole instruction
  /// streams. nullptr and an empty plan behave identically (no fault code
  /// on any hot path). Note: fault windows beyond the natural makespan
  /// extend the run (the engine drains every scheduled event).
  const fault::FaultPlan* faults = nullptr;
};

/// Per-GPU outcome.
struct GpuStats {
  Seconds busy = 0;        ///< time with >= 1 active kernel
  Seconds comm_block = 0;  ///< stream waits attributable to in-flight comm
  Seconds bubble = 0;      ///< stream waits on upstream/downstream compute
  Seconds total_comm = 0;  ///< total communication time touching this GPU (𝕋^k x batches)
  StepFunction utilization;  ///< φ^k(t)
  Bytes static_memory = 0;   ///< weights + optimizer + grads + reference
  Bytes peak_memory = 0;
  Bytes peak_activations = 0;
  bool oom = false;
};

struct SimResult {
  Seconds makespan = 0;
  Seconds time_per_batch = 0;  ///< makespan / num_batches
  std::vector<GpuStats> gpus;
  bool oom = false;
  double mean_utilization = 0;  ///< mean over GPUs of ∫φ / makespan
  double peak_utilization = 0;  ///< max over GPUs of max φ
  /// Measured stage-link channel high-water marks, max over pipelines: the
  /// most messages simultaneously sent-but-not-yet-consumed on the k -> k+1
  /// activation link / the k+1 -> k gradient link (index k, size K-1; empty
  /// for data parallelism). One realized interleaving's occupancy — always
  /// <= the verify:: model checker's proved peak over all interleavings,
  /// which is how the property tests cross-validate the two.
  std::vector<std::size_t> act_link_high_water;
  std::vector<std::size_t> grad_link_high_water;
};

/// Run one job to completion.
SimResult simulate(const SimJob& job);

/// System identities used by the figure benches.
struct SystemConfig {
  schedule::Kind kind = schedule::Kind::kOneFOneB;
  std::size_t num_pipelines = 1;
  bool elastic_averaging = false;
  std::size_t micro_batches = 1;
  std::size_t advance_num = 0;  ///< AFP only; 0 -> derived
};

/// Assemble a SimJob from a workload profile, a cluster, a partition and a
/// system config. For kDataParallel the partition is ignored: every GPU
/// hosts the full model and the per-GPU batch is batch_size / num_gpus.
SimJob build_job(const workloads::WorkloadProfile& w,
                 const workloads::ClusterSpec& cluster,
                 const partition::Partition& partition,
                 const SystemConfig& system, std::size_t batch_size,
                 std::size_t num_batches);

/// Algorithm 1 (paper §4.2): start from 1F1B (advance = K-1) and raise the
/// advance count while the simulated batch time keeps improving and peak
/// memory stays under the limit. Returns the chosen advance_num.
std::size_t adaptive_advance(SimJob job, double min_speedup = 1.005);

/// Epoch time implied by a simulated per-batch time: samples-per-iteration
/// is batch_size per pipeline times N pipelines.
Seconds epoch_time(const SimResult& result, const SimJob& job,
                   std::size_t dataset_samples);

}  // namespace avgpipe::sim
