#pragma once

/// \file engine.hpp
/// Deterministic discrete-event engine (virtual clock).
///
/// Events at equal timestamps fire in scheduling order (a monotone sequence
/// number breaks ties), so a given job always produces bit-identical traces.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace avgpipe::sim {

class Engine {
 public:
  Seconds now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `t >= now()`.
  void schedule_at(Seconds t, std::function<void()> fn) {
    AVGPIPE_CHECK(t >= now_ - 1e-12, "scheduling into the past: " << t
                                                                  << " < "
                                                                  << now_);
    queue_.push(Event{std::max(t, now_), next_seq_++, std::move(fn)});
  }

  /// Schedule `fn` after a non-negative delay.
  void schedule_after(Seconds delay, std::function<void()> fn) {
    schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
  }

  /// Run to quiescence. Returns the final virtual time.
  Seconds run() {
    while (!queue_.empty()) {
      // Moving out of a priority_queue requires a const_cast; the element is
      // popped immediately after.
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.time;
      ++events_processed_;
#ifdef AVGPIPE_SIM_DEBUG
      if (events_processed_ % 1000000 == 0) {
        std::fprintf(stderr, "[engine] %zu events, t=%g, queue=%zu\n",
                     events_processed_, now_, queue_.size());
      }
#endif
      ev.fn();
    }
    return now_;
  }

  std::size_t events_processed() const { return events_processed_; }
  bool idle() const { return queue_.empty(); }

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t events_processed_ = 0;
};

}  // namespace avgpipe::sim
