#pragma once

/// \file resources.hpp
/// Simulated cluster resources.
///
/// `ComputeResource` models a GPU as a processor-sharing server: every
/// active kernel demands a utilization fraction (its arithmetic intensity,
/// a function of micro-batch size); while total demand <= 1 each kernel runs
/// at its demanded rate, beyond that rates scale down proportionally. This
/// is exactly the φ(t)-curve abstraction the paper's predictor builds on
/// (Eq. 2 scales the curve and integrates the part above 100 %), and it is
/// what lets N parallel pipelines raise utilization "for free" until the
/// GPU saturates.
///
/// `LinkResource` is a full-duplex-capable point-to-point link direction:
/// FIFO, store-and-forward, bandwidth plus fixed latency. Transfers occupy
/// the link for bytes/bandwidth; delivery lands one latency later.
///
/// `MemoryTracker` does categorised alloc/free accounting with a capacity;
/// exceeding it sets a sticky OOM flag (the simulator keeps running so
/// benches can report "OOM" rows like the paper does for PipeDream+BERT).

#include <deque>
#include <functional>

#include "common/step_function.hpp"
#include "sim/engine.hpp"

namespace avgpipe::sim {

/// Processor-sharing compute server with a utilization trace.
class ComputeResource {
 public:
  /// \param peak_rate work units per second at 100 % utilization (FLOP/s).
  /// \param concurrency_gain co-scheduling small kernels raises utilization,
  ///        but only so far: the achievable utilization is capped at
  ///        concurrency_gain x the largest single-kernel demand (MPS-style
  ///        overlap is not perfectly additive). Pass a large value to
  ///        disable the cap.
  ComputeResource(Engine& engine, double peak_rate,
                  double concurrency_gain = 1e9);

  /// Start an op needing `work` units with utilization demand in (0, 1].
  /// `on_done` fires when the op completes.
  void submit(double work, double demand, std::function<void()> on_done);

  std::size_t active_ops() const { return ops_.size(); }
  bool idle() const { return ops_.empty(); }

  /// Wall time with at least one active op.
  Seconds busy_time() const;
  /// The utilization curve φ(t) = min(1, total demand). Finalised lazily —
  /// call after the engine has quiesced.
  const StepFunction& utilization() const;

 private:
  void advance_to_now();
  void reschedule();
  void on_timer(std::uint64_t epoch);

  double capacity() const;

  Engine& engine_;
  double peak_;
  double concurrency_gain_;

  struct Op {
    double remaining;
    double demand;
    std::function<void()> on_done;
  };
  std::vector<Op> ops_;
  double total_demand_ = 0.0;
  Seconds last_ = 0.0;
  std::uint64_t epoch_ = 0;

  mutable StepFunction util_;
  mutable Seconds busy_ = 0.0;
};

/// One direction of a point-to-point link.
class LinkResource {
 public:
  LinkResource(Engine& engine, double bandwidth_bytes_per_s, Seconds latency);

  /// Queue a transfer; `on_delivered` fires at arrival. Returns the
  /// wire time (bytes/bandwidth + latency), excluding queueing.
  Seconds transfer(Bytes bytes, std::function<void()> on_delivered);

  /// Transient degradation (fault injection): effective bandwidth becomes
  /// bandwidth x `bandwidth_factor` and every message pays `extra_latency`
  /// more, until the next call. Sampled per transfer at wire start, so a
  /// window change mid-queue affects only subsequent messages.
  void set_degradation(double bandwidth_factor, Seconds extra_latency);

  Seconds busy_time() const { return busy_; }
  double bandwidth() const { return bandwidth_ * bandwidth_factor_; }
  Seconds latency() const { return latency_ + extra_latency_; }

 private:
  void start_next();

  Engine& engine_;
  double bandwidth_;
  Seconds latency_;
  double bandwidth_factor_ = 1.0;
  Seconds extra_latency_ = 0.0;

  struct Pending {
    Bytes bytes;
    std::function<void()> on_delivered;
  };
  std::deque<Pending> queue_;
  bool sending_ = false;
  Seconds busy_ = 0.0;
};

/// Memory accounting categories (paper §5.2.3 splits F into F_mod & F_dat).
enum class MemCategory : std::size_t {
  kWeights = 0,    ///< model parameter copies (all versions / replicas)
  kOptimizer = 1,  ///< optimizer state (Adam moments etc.)
  kGradients = 2,  ///< gradient buffers
  kReference = 3,  ///< elastic-averaging reference model + accumulators
  kActivations = 4,  ///< stashed activations awaiting backward
  kBuffers = 5,    ///< in-flight boundary tensors
  kCount = 6,
};

class MemoryTracker {
 public:
  explicit MemoryTracker(Bytes capacity);

  void alloc(Bytes bytes, MemCategory cat);
  void free(Bytes bytes, MemCategory cat);

  Bytes current() const { return current_; }
  Bytes peak() const { return peak_; }
  Bytes capacity() const { return capacity_; }
  Bytes current_by(MemCategory cat) const;
  Bytes peak_by(MemCategory cat) const;
  bool oom() const { return oom_; }

  /// F_mod in the paper's terms: weights + optimizer + gradients + reference.
  Bytes model_bytes() const;
  /// F_dat: activations + buffers, at peak.
  Bytes data_bytes_peak() const;

 private:
  Bytes capacity_;
  Bytes current_ = 0;
  Bytes peak_ = 0;
  bool oom_ = false;
  Bytes by_cat_[static_cast<std::size_t>(MemCategory::kCount)] = {};
  Bytes peak_by_cat_[static_cast<std::size_t>(MemCategory::kCount)] = {};
};

}  // namespace avgpipe::sim
