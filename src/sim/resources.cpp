#include "sim/resources.hpp"

#include <algorithm>
#include <limits>

namespace avgpipe::sim {

namespace {
/// Ops whose remaining time at current rate is below this are complete.
/// One nanosecond is far below the physics being modelled (microsecond link
/// latencies, millisecond kernels) but far above the double-precision ULP of
/// any plausible virtual timestamp, which guarantees the clock always moves.
constexpr Seconds kTimeEpsilon = 1e-9;
}

// -- ComputeResource --------------------------------------------------------------

ComputeResource::ComputeResource(Engine& engine, double peak_rate,
                                 double concurrency_gain)
    : engine_(engine), peak_(peak_rate), concurrency_gain_(concurrency_gain) {
  AVGPIPE_CHECK(peak_rate > 0.0, "peak rate must be positive");
  AVGPIPE_CHECK(concurrency_gain > 0.0, "concurrency gain must be positive");
}

double ComputeResource::capacity() const {
  // Achievable utilization: concurrent kernels overlap, but the gain over
  // the single largest kernel is bounded.
  double max_demand = 0.0;
  for (const auto& op : ops_) max_demand = std::max(max_demand, op.demand);
  return std::min(1.0, concurrency_gain_ * max_demand);
}

void ComputeResource::advance_to_now() {
  const Seconds now = engine_.now();
  const Seconds dt = now - last_;
  if (dt > 0.0) {
    if (!ops_.empty()) {
      const double cap = capacity();
      const double scale = total_demand_ > cap ? cap / total_demand_ : 1.0;
      for (auto& op : ops_) {
        op.remaining -= dt * peak_ * op.demand * scale;
      }
      util_.append(last_, now, std::min(cap, total_demand_));
      busy_ += dt;
    }
    last_ = now;
  }
}

void ComputeResource::reschedule() {
  ++epoch_;
  if (ops_.empty()) return;
  const double cap = capacity();
  const double scale = total_demand_ > cap ? cap / total_demand_ : 1.0;
  double min_dt = std::numeric_limits<double>::infinity();
  for (const auto& op : ops_) {
    const double rate = peak_ * op.demand * scale;
    min_dt = std::min(min_dt, std::max(op.remaining, 0.0) / rate);
  }
  const std::uint64_t epoch = epoch_;
  engine_.schedule_after(min_dt, [this, epoch] { on_timer(epoch); });
}

void ComputeResource::on_timer(std::uint64_t epoch) {
  if (epoch != epoch_) return;  // superseded by a newer configuration
  advance_to_now();

  // Complete every op whose remaining time (at its current rate) is within
  // the clock tolerance.
  const double cap = capacity();
  const double scale = total_demand_ > cap ? cap / total_demand_ : 1.0;
  std::vector<std::function<void()>> done;
  for (auto it = ops_.begin(); it != ops_.end();) {
    const double rate = peak_ * it->demand * scale;
    if (it->remaining / rate <= kTimeEpsilon) {
      done.push_back(std::move(it->on_done));
      total_demand_ -= it->demand;
      it = ops_.erase(it);
    } else {
      ++it;
    }
  }
  if (total_demand_ < 1e-12) total_demand_ = 0.0;
  reschedule();
  for (auto& fn : done) fn();
}

void ComputeResource::submit(double work, double demand,
                             std::function<void()> on_done) {
  AVGPIPE_CHECK(demand > 0.0 && demand <= 1.0,
                "demand must be in (0,1], got " << demand);
  AVGPIPE_CHECK(work >= 0.0, "negative work");
  advance_to_now();
  ops_.push_back(Op{std::max(work, 1.0), demand, std::move(on_done)});
  total_demand_ += demand;
  reschedule();
}

Seconds ComputeResource::busy_time() const {
  const_cast<ComputeResource*>(this)->advance_to_now();
  return busy_;
}

const StepFunction& ComputeResource::utilization() const {
  const_cast<ComputeResource*>(this)->advance_to_now();
  return util_;
}

// -- LinkResource -------------------------------------------------------------------

LinkResource::LinkResource(Engine& engine, double bandwidth_bytes_per_s,
                           Seconds latency)
    : engine_(engine), bandwidth_(bandwidth_bytes_per_s), latency_(latency) {
  AVGPIPE_CHECK(bandwidth_ > 0.0, "bandwidth must be positive");
}

Seconds LinkResource::transfer(Bytes bytes,
                               std::function<void()> on_delivered) {
  AVGPIPE_CHECK(bytes >= 0.0, "negative transfer size");
  queue_.push_back(Pending{bytes, std::move(on_delivered)});
  if (!sending_) start_next();
  return bytes / bandwidth() + latency();
}

void LinkResource::set_degradation(double bandwidth_factor,
                                   Seconds extra_latency) {
  AVGPIPE_CHECK(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
                "bandwidth factor must be in (0,1], got " << bandwidth_factor);
  AVGPIPE_CHECK(extra_latency >= 0.0, "negative extra latency");
  bandwidth_factor_ = bandwidth_factor;
  extra_latency_ = extra_latency;
}

void LinkResource::start_next() {
  if (queue_.empty()) {
    sending_ = false;
    return;
  }
  sending_ = true;
  Pending item = std::move(queue_.front());
  queue_.pop_front();
  const Seconds wire = item.bytes / bandwidth();
  busy_ += wire;
  // Link frees after the wire time; delivery lands one latency later.
  engine_.schedule_after(wire, [this] { start_next(); });
  engine_.schedule_after(wire + latency(),
                         [fn = std::move(item.on_delivered)] { fn(); });
}

// -- MemoryTracker ---------------------------------------------------------------------

MemoryTracker::MemoryTracker(Bytes capacity) : capacity_(capacity) {}

void MemoryTracker::alloc(Bytes bytes, MemCategory cat) {
  AVGPIPE_CHECK(bytes >= 0.0, "negative allocation");
  current_ += bytes;
  auto& c = by_cat_[static_cast<std::size_t>(cat)];
  c += bytes;
  peak_by_cat_[static_cast<std::size_t>(cat)] =
      std::max(peak_by_cat_[static_cast<std::size_t>(cat)], c);
  peak_ = std::max(peak_, current_);
  if (capacity_ > 0.0 && current_ > capacity_) oom_ = true;
}

void MemoryTracker::free(Bytes bytes, MemCategory cat) {
  auto& c = by_cat_[static_cast<std::size_t>(cat)];
  AVGPIPE_CHECK(bytes <= c + 1e-6,
                "freeing more than allocated in category "
                    << static_cast<int>(cat));
  c -= bytes;
  current_ -= bytes;
}

Bytes MemoryTracker::current_by(MemCategory cat) const {
  return by_cat_[static_cast<std::size_t>(cat)];
}

Bytes MemoryTracker::peak_by(MemCategory cat) const {
  return peak_by_cat_[static_cast<std::size_t>(cat)];
}

Bytes MemoryTracker::model_bytes() const {
  return current_by(MemCategory::kWeights) +
         current_by(MemCategory::kOptimizer) +
         current_by(MemCategory::kGradients) +
         current_by(MemCategory::kReference);
}

Bytes MemoryTracker::data_bytes_peak() const {
  return peak_by(MemCategory::kActivations) + peak_by(MemCategory::kBuffers);
}

}  // namespace avgpipe::sim
