#include "sim/simulator.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "fault/fault_plan.hpp"
#include "sim/resources.hpp"
#include "trace/trace.hpp"

namespace avgpipe::sim {

namespace {

using schedule::Instr;
using schedule::Kind;
using schedule::OpKind;

constexpr double kBytesPerParam = 4.0;

/// Hierarchical all-reduce estimate: gradients are reduced inside each node
/// over the fast intra-node link (negligible next to Ethernet), then a ring
/// all-reduce runs between node leaders over the slow link, on fp16-
/// compressed gradients (standard DDP practice on commodity Ethernet).
Seconds allreduce_seconds(Bytes bytes, const workloads::ClusterSpec& cluster,
                          std::size_t gpus) {
  const std::size_t nodes =
      std::max<std::size_t>(1, (gpus + cluster.gpus_per_node - 1) /
                                   cluster.gpus_per_node);
  if (nodes <= 1 && gpus <= 1) return 0.0;
  const Bytes wire_bytes = bytes / 2.0;  // fp16 gradient compression
  Seconds total = 0;
  if (gpus > 1) {  // intra-node reduce+broadcast
    const auto& fast = cluster.intra_node;
    total += 2.0 * wire_bytes / fast.bandwidth_bytes_per_s + 2.0 * fast.latency;
  }
  if (nodes > 1) {  // inter-node ring over node leaders
    const auto& slow = cluster.inter_node;
    const double steps = 2.0 * static_cast<double>(nodes - 1);
    total += steps * (wire_bytes / static_cast<double>(nodes)) /
                 slow.bandwidth_bytes_per_s +
             steps * slow.latency;
  }
  return total;
}

class Execution {
 public:
  explicit Execution(const SimJob& job) : job_(job) {
    K_ = job.stages.size();
    AVGPIPE_CHECK(K_ >= 1, "job has no stages");
    AVGPIPE_CHECK(K_ <= job.cluster.num_gpus(),
                  "more stages (" << K_ << ") than GPUs ("
                                  << job.cluster.num_gpus() << ")");
    is_dp_ = job.kind == Kind::kDataParallel;
    AVGPIPE_CHECK(!is_dp_ || job.num_pipelines == 1,
                  "data parallelism does not use parallel pipelines");
    mb_samples_ = static_cast<double>(job.batch_size) /
                  static_cast<double>(job.micro_batches);
    AVGPIPE_CHECK(mb_samples_ > 0.0, "empty micro-batches");

    const Bytes capacity =
        job.memory_limit > 0.0 ? job.memory_limit : job.cluster.gpu.memory;

    for (std::size_t k = 0; k < K_; ++k) {
      gpus_.push_back(std::make_unique<ComputeResource>(
          engine_, job.cluster.gpu.peak_flops, job.concurrency_gain));
      memory_.push_back(std::make_unique<MemoryTracker>(capacity));
    }
    // One shared link per adjacent GPU pair. Forward activations and
    // backward gradients contend for the same wire: over TCP on 1 GbE with
    // pipeline-sized messages the medium behaves far closer to half duplex
    // than to two independent directions, and this is what lets AFAB (which
    // phases the two directions) beat 1F1B (which interleaves them), as the
    // paper observes in Figure 7/17.
    for (std::size_t k = 0; k + 1 < K_; ++k) {
      const auto& spec = job.cluster.link_between(k, k + 1);
      links_.push_back(std::make_unique<LinkResource>(
          engine_, spec.bandwidth_bytes_per_s, spec.latency));
    }

    if (!is_dp_ && K_ > 1) {
      const std::size_t n_links = job.num_pipelines * (K_ - 1);
      act_link_occ_.assign(n_links, 0);
      grad_link_occ_.assign(n_links, 0);
      act_link_hw_.assign(n_links, 0);
      grad_link_hw_.assign(n_links, 0);
    }

    allocate_static_memory();
    build_streams();
    if (job.tracer != nullptr) tb_ = job.tracer->create_buffer();
    // An empty plan and a null plan are the same thing: no fault branch is
    // ever taken and no extra event is scheduled (zero-cost shim).
    if (job.faults != nullptr && !job.faults->empty()) faults_ = job.faults;
    schedule_fault_events();
  }

  SimResult run() {
    pump();
    const Seconds makespan = engine_.run();
    for (const auto& s : streams_) {
      // A crashed pipeline that never rejoined legitimately stops mid-stream.
      if (s.dead) continue;
      AVGPIPE_CHECK(s.idx == s.instrs.size(),
                    "deadlock: stream (pipeline " << s.pipeline << ", stage "
                                                  << s.stage << ") stuck at "
                                                  << s.idx << "/"
                                                  << s.instrs.size());
    }
    emit_degradation_windows(makespan);
    return collect(makespan);
  }

 private:
  struct Stream {
    std::size_t pipeline = 0;
    std::size_t stage = 0;
    std::vector<Instr> instrs;
    std::size_t idx = 0;
    bool running = false;
    bool blocked = false;
    bool dead = false;  ///< pipeline crashed; stream issues nothing
    /// Bumped by a crash so completion callbacks of in-flight ops can tell
    /// they were superseded and must not touch the stream.
    std::uint64_t gen = 0;
    Seconds blocked_since = 0;
    Seconds comm_wait = 0;
    Seconds bubble_wait = 0;
  };

  std::uint64_t key(std::size_t p, int batch, int mb, std::size_t stage) const {
    return ((p * static_cast<std::uint64_t>(job_.num_batches + 1) +
             static_cast<std::uint64_t>(batch)) *
                job_.micro_batches +
            static_cast<std::uint64_t>(mb)) *
               K_ +
           stage;
  }

  void allocate_static_memory() {
    const std::size_t n = job_.num_pipelines;
    for (std::size_t k = 0; k < K_; ++k) {
      const Bytes params = job_.stages[k].param_bytes;
      const Bytes state = job_.stages[k].dense_state_bytes;
      const std::size_t versions = schedule::weight_versions(job_.kind, k, K_);
      auto& mem = *memory_[k];
      mem.alloc(params * static_cast<double>(versions * n),
                MemCategory::kWeights);
      mem.alloc(state * job_.optimizer_state_factor * static_cast<double>(n),
                MemCategory::kOptimizer);
      mem.alloc(state * static_cast<double>(n), MemCategory::kGradients);
      if (job_.elastic_averaging) {
        // Reference weights live on-GPU (needed for the elastic pull); the
        // update accumulators (steps ❸-❹) belong to the host-side message
        // queue process and are not charged to GPU memory.
        mem.alloc(params, MemCategory::kReference);
      }
    }
  }

  void build_streams() {
    schedule::ScheduleParams params;
    params.kind = job_.kind;
    params.num_stages = K_;
    params.micro_batches = job_.micro_batches;
    params.num_batches = job_.num_batches;
    params.advance_num =
        job_.advance_num > 0 ? job_.advance_num : (K_ > 0 ? K_ - 1 : 0);
    const auto sched = schedule::make_schedule(params);
    for (std::size_t p = 0; p < job_.num_pipelines; ++p) {
      for (std::size_t k = 0; k < K_; ++k) {
        Stream s;
        s.pipeline = p;
        s.stage = k;
        s.instrs = sched.stages[k].instrs;
        streams_.push_back(std::move(s));
      }
    }
  }

  double demand() const { return job_.eff_half_batch <= 0.0
                                     ? 1.0
                                     : mb_samples_ /
                                           (mb_samples_ + job_.eff_half_batch); }

  bool is_ready(const Stream& s, const Instr& in) const {
    switch (in.kind) {
      case OpKind::kForward:
        if (s.stage == 0 || is_dp_) return true;
        return act_ready_.count(key(s.pipeline, in.batch, in.micro_batch,
                                    s.stage)) > 0;
      case OpKind::kBackward:
        return grad_ready_.count(key(s.pipeline, in.batch, in.micro_batch,
                                     s.stage)) > 0;
      case OpKind::kUpdate:
      case OpKind::kAllReduce:
        return true;
    }
    return false;
  }

  /// Record a span into the trace buffer, if tracing is on.
  void emit(trace::EventKind kind, std::size_t pipeline, std::size_t stage,
            const Instr& in, Seconds t_begin, Seconds t_end,
            Bytes bytes = 0) {
    if (tb_ == nullptr || t_end <= t_begin) return;
    trace::TraceEvent ev;
    ev.kind = kind;
    ev.pipeline = static_cast<std::uint32_t>(pipeline);
    ev.stage = static_cast<std::uint32_t>(stage);
    ev.batch = in.batch;
    ev.micro_batch = in.micro_batch;
    ev.t_begin = t_begin;
    ev.t_end = t_end;
    ev.bytes = bytes;
    tb_->record(ev);
  }

  /// Fault/recovery events carry no instruction identity and may be
  /// instantaneous (crash markers), so they bypass the span filter above.
  void emit_fault(trace::EventKind kind, std::size_t pipeline,
                  std::size_t stage, Seconds t_begin, Seconds t_end,
                  double value = 0) {
    if (tb_ == nullptr) return;
    trace::TraceEvent ev;
    ev.kind = kind;
    ev.pipeline = static_cast<std::uint32_t>(pipeline);
    ev.stage = static_cast<std::uint32_t>(stage);
    ev.t_begin = t_begin;
    ev.t_end = t_end;
    ev.value = value;
    tb_->record(ev);
  }

  // -- fault injection (src/fault) ------------------------------------------

  /// Straggler slowdown for an op issued on (pipeline, stage) right now.
  double fault_scale(const Stream& s) const {
    return faults_ == nullptr
               ? 1.0
               : faults_->compute_factor(static_cast<int>(s.pipeline),
                                         static_cast<int>(s.stage),
                                         engine_.now());
  }

  /// Attribute the injected share of a finished op as a straggler span: of
  /// the [t0, t1] duration, (1 - 1/factor) would not exist without the
  /// fault.
  void emit_straggler(const Stream& s, const Instr& in, Seconds t0,
                      Seconds t1, double factor) {
    if (factor <= 1.0) return;
    const Seconds extra = (t1 - t0) * (1.0 - 1.0 / factor);
    emit(trace::EventKind::kFaultStraggler, s.pipeline, s.stage, in,
         t1 - extra, t1);
  }

  /// Turn the plan's time-windowed faults into engine events: link windows
  /// schedule a refresh at each edge, crashes/rejoins fire at their virtual
  /// times. Called once at construction (engine time 0).
  void schedule_fault_events() {
    if (faults_ == nullptr) return;
    AVGPIPE_CHECK(!is_dp_ || faults_->crashes.empty(),
                  "pipeline crashes are undefined under data parallelism "
                  "(the all-reduce barrier would hang)");
    if (!faults_->link_degradations.empty()) {
      refresh_links();  // windows starting at t=0 apply from the first send
      for (const auto& ld : faults_->link_degradations) {
        engine_.schedule_at(ld.t_begin, [this] { refresh_links(); });
        if (ld.t_end != fault::kForever) {
          engine_.schedule_at(ld.t_end, [this] { refresh_links(); });
        }
      }
    }
    for (const auto& c : faults_->crashes) {
      if (c.t_crash == fault::kForever) continue;
      const int p = c.pipeline;
      engine_.schedule_at(c.t_crash, [this, p] { crash_pipeline(p); });
      if (c.t_rejoin != fault::kForever) {
        const Seconds resync = c.resync_seconds;
        engine_.schedule_at(c.t_rejoin,
                            [this, p, resync] { rejoin_pipeline(p, resync); });
      }
    }
  }

  /// Recompute every link's effective bandwidth/latency from the windows
  /// active right now (overlapping windows compose multiplicatively).
  void refresh_links() {
    const Seconds now = engine_.now();
    for (std::size_t l = 0; l < links_.size(); ++l) {
      double factor = 1.0;
      Seconds extra = 0.0;
      for (const auto& ld : faults_->link_degradations) {
        if ((ld.link == fault::kAny || ld.link == static_cast<int>(l)) &&
            now >= ld.t_begin && now < ld.t_end) {
          factor *= ld.bandwidth_factor;
          extra += ld.extra_latency;
        }
      }
      links_[l]->set_degradation(factor, extra);
    }
  }

  void crash_pipeline(int p) {
    bool any = false;
    for (auto& s : streams_) {
      if (static_cast<int>(s.pipeline) != p || s.dead) continue;
      any = true;
      s.dead = true;
      s.running = false;
      s.blocked = false;  // the pending wait dies with the process
      ++s.gen;            // in-flight completions are now stale
    }
    if (any) {
      emit_fault(trace::EventKind::kPipelineCrash,
                 static_cast<std::size_t>(p), 0, engine_.now(), engine_.now());
    }
  }

  /// Resume the pipeline at the next whole batch. Work on batches that were
  /// in flight at the crash is lost, exactly as for a real process restart:
  /// the replica re-pulls the reference model (resync) and continues with
  /// fresh data rather than replaying.
  void rejoin_pipeline(int p, Seconds resync) {
    int resume_batch = 0;
    for (const auto& s : streams_) {
      if (static_cast<int>(s.pipeline) != p) continue;
      for (std::size_t i = 0; i < s.idx; ++i) {
        resume_batch = std::max(resume_batch, s.instrs[i].batch + 1);
      }
    }
    bool any = false;
    for (auto& s : streams_) {
      if (static_cast<int>(s.pipeline) != p || !s.dead) continue;
      any = true;
      while (s.idx < s.instrs.size() && s.instrs[s.idx].batch < resume_batch) {
        ++s.idx;
      }
      s.dead = false;
      s.running = false;
      s.blocked = false;
    }
    if (!any) return;
    emit_fault(trace::EventKind::kPipelineRejoin, static_cast<std::size_t>(p),
               0, engine_.now(), engine_.now() + resync);
    engine_.schedule_after(resync, [this] { pump(); });
  }

  /// After the run: record each degradation window clamped to the makespan,
  /// so the trace shows when the wire was impaired.
  void emit_degradation_windows(Seconds makespan) {
    if (faults_ == nullptr || tb_ == nullptr) return;
    for (const auto& ld : faults_->link_degradations) {
      const Seconds end = std::min(ld.t_end, makespan);
      if (end <= ld.t_begin) continue;
      const std::size_t link = ld.link == fault::kAny
                                   ? 0
                                   : static_cast<std::size_t>(ld.link);
      emit_fault(trace::EventKind::kLinkDegraded, 0, link, ld.t_begin, end,
                 ld.bandwidth_factor);
    }
  }

  /// Ship one boundary tensor from stage `from` to stage `to` over
  /// `links_[link]`, delayed by the plan's deterministic drop penalty when a
  /// drop record matches. Delivery marks the dependency key ready.
  void send(std::size_t pipeline, std::size_t from, std::size_t to,
            std::size_t link, std::uint64_t dst, Bytes bytes, Instr in,
            fault::LinkDir dir) {
    Seconds delay = 0;
    if (faults_ != nullptr) {
      Seconds penalty = 0;
      const std::size_t lost = faults_->drop_count(
          static_cast<int>(pipeline), static_cast<int>(from), in.batch,
          in.micro_batch, dir, &penalty);
      if (lost > 0) {
        delay = static_cast<double>(lost) * penalty;
        emit(trace::EventKind::kFaultDrop, pipeline, from, in, engine_.now(),
             engine_.now() + delay, bytes);
      }
    }
    auto start = [this, pipeline, from, to, link, dst, bytes, in, dir] {
      const Seconds t_enq = engine_.now();
      const bool act = dir == fault::LinkDir::kActivation;
      (act ? act_enqueued_ : grad_enqueued_)[dst] = t_enq;
      bump_link_occupancy(pipeline, link, act);
      const Seconds wire = links_[link]->transfer(
          bytes, [this, dst, to, bytes, pipeline, in, t_enq, act] {
            if (act) {
              memory_[to]->alloc(bytes, MemCategory::kBuffers);
              act_ready_.insert(dst);
              emit(trace::EventKind::kCommActivation, pipeline, to, in, t_enq,
                   engine_.now(), bytes);
            } else {
              grad_ready_.insert(dst);
              emit(trace::EventKind::kCommGradient, pipeline, to, in, t_enq,
                   engine_.now(), bytes);
            }
            pump();
          });
      stats_comm_[from] += wire;
      stats_comm_[to] += wire;
    };
    if (delay > 0) {
      engine_.schedule_after(delay, start);
    } else {
      start();
    }
  }

  /// Channel-occupancy accounting mirroring the runtime's bounded SPSC
  /// links: a message occupies its link from send-enqueue until the
  /// consuming instruction issues (the runtime recvs at instruction start).
  /// The high-water marks are the measured counterpart of the verify::
  /// model checker's proved per-link peaks.
  void bump_link_occupancy(std::size_t pipeline, std::size_t link, bool act) {
    if (act_link_occ_.empty()) return;
    const std::size_t i = pipeline * (K_ - 1) + link;
    auto& occ = act ? act_link_occ_ : grad_link_occ_;
    auto& hw = act ? act_link_hw_ : grad_link_hw_;
    hw[i] = std::max(hw[i], ++occ[i]);
  }

  void drop_link_occupancy(std::size_t pipeline, std::size_t link, bool act) {
    if (act_link_occ_.empty()) return;
    const std::size_t i = pipeline * (K_ - 1) + link;
    auto& occ = act ? act_link_occ_ : grad_link_occ_;
    // Saturating: a crash fast-forward marks dependencies ready without a
    // matching send, so a rejoined stream can consume an unsent message.
    if (occ[i] > 0) --occ[i];
  }

  /// Attribute the just-finished wait of `s` to comm vs bubble using the
  /// dependency's transfer-enqueue timestamp.
  void settle_wait(Stream& s, const Instr& in) {
    if (!s.blocked) return;
    const Seconds wait = engine_.now() - s.blocked_since;
    s.blocked = false;
    if (wait <= 0.0) return;
    const auto& enq =
        in.kind == OpKind::kForward ? act_enqueued_ : grad_enqueued_;
    const auto it =
        enq.find(key(s.pipeline, in.batch, in.micro_batch, s.stage));
    if (it == enq.end()) {
      s.bubble_wait += wait;
      emit(trace::EventKind::kWaitBubble, s.pipeline, s.stage, in,
           s.blocked_since, engine_.now());
      return;
    }
    const Seconds transfer_begin = std::max(it->second, s.blocked_since);
    s.comm_wait += engine_.now() - transfer_begin;
    s.bubble_wait += transfer_begin - s.blocked_since;
    emit(trace::EventKind::kWaitBubble, s.pipeline, s.stage, in,
         s.blocked_since, transfer_begin);
    emit(trace::EventKind::kWaitComm, s.pipeline, s.stage, in, transfer_begin,
         engine_.now());
  }

  void pump() {
    for (auto& s : streams_) {
      if (s.dead || s.running || s.idx >= s.instrs.size()) continue;
      const Instr& in = s.instrs[s.idx];
      if (!is_ready(s, in)) {
        if (!s.blocked) {
          s.blocked = true;
          s.blocked_since = engine_.now();
        }
        continue;
      }
      settle_wait(s, in);
      issue(s, in);
    }
  }

  void issue(Stream& s, const Instr& in) {
    s.running = true;
    switch (in.kind) {
      case OpKind::kForward: issue_forward(s, in); break;
      case OpKind::kBackward: issue_backward(s, in); break;
      case OpKind::kUpdate: issue_update(s, in); break;
      case OpKind::kAllReduce: issue_allreduce(s, in); break;
    }
  }

  void complete(Stream& s) {
    s.running = false;
    ++s.idx;
    pump();
  }

  Bytes stash_bytes(std::size_t stage) const {
    const auto& st = job_.stages[stage];
    // With recomputation only the boundary input survives until backward.
    const Bytes per_sample = job_.activation_recompute
                                 ? st.boundary_act_bytes_per_sample
                                 : st.stash_bytes_per_sample;
    return per_sample * mb_samples_;
  }

  void issue_forward(Stream& s, Instr in) {
    if (!is_dp_ && s.stage > 0) {
      drop_link_occupancy(s.pipeline, s.stage - 1, /*act=*/true);
    }
    const auto& st = job_.stages[s.stage];
    memory_[s.stage]->alloc(stash_bytes(s.stage), MemCategory::kActivations);
    const Seconds t0 = engine_.now();
    const double slow = fault_scale(s);
    gpus_[s.stage]->submit(
        slow * st.fwd_flops_per_sample * mb_samples_, demand(),
        [this, &s, in, t0, slow, gen = s.gen] {
          if (s.gen != gen) return;  // superseded by a crash
          emit(trace::EventKind::kForward, s.pipeline, s.stage, in, t0,
               engine_.now());
          emit_straggler(s, in, t0, engine_.now(), slow);
          on_forward_done(s, in);
        });
  }

  void on_forward_done(Stream& s, Instr in) {
    if (is_dp_ || s.stage == K_ - 1) {
      // Loss gradient is local: own backward may start.
      grad_ready_.insert(key(s.pipeline, in.batch, in.micro_batch, s.stage));
    } else {
      const Bytes bytes =
          job_.stages[s.stage].boundary_act_bytes_per_sample * mb_samples_;
      send(s.pipeline, s.stage, s.stage + 1, s.stage,
           key(s.pipeline, in.batch, in.micro_batch, s.stage + 1), bytes, in,
           fault::LinkDir::kActivation);
    }
    complete(s);
  }

  void issue_backward(Stream& s, Instr in) {
    if (!is_dp_ && s.stage + 1 < K_) {
      drop_link_occupancy(s.pipeline, s.stage, /*act=*/false);
    }
    const auto& st = job_.stages[s.stage];
    // Recomputation replays the forward before the backward (+1x fwd work).
    const double factor = job_.activation_recompute ? 3.0 : 2.0;
    const Seconds t0 = engine_.now();
    const double slow = fault_scale(s);
    gpus_[s.stage]->submit(
        slow * factor * st.fwd_flops_per_sample * mb_samples_, demand(),
        [this, &s, in, t0, slow, gen = s.gen] {
          if (s.gen != gen) return;  // superseded by a crash
          emit(trace::EventKind::kBackward, s.pipeline, s.stage, in, t0,
               engine_.now());
          emit_straggler(s, in, t0, engine_.now(), slow);
          on_backward_done(s, in);
        });
  }

  void on_backward_done(Stream& s, Instr in) {
    memory_[s.stage]->free(stash_bytes(s.stage), MemCategory::kActivations);
    if (!is_dp_ && s.stage > 0) {
      const Bytes inbound =
          job_.stages[s.stage - 1].boundary_act_bytes_per_sample * mb_samples_;
      memory_[s.stage]->free(inbound, MemCategory::kBuffers);
      send(s.pipeline, s.stage, s.stage - 1, s.stage - 1,
           key(s.pipeline, in.batch, in.micro_batch, s.stage - 1), inbound,
           in, fault::LinkDir::kGradient);
    }
    complete(s);
  }

  void issue_update(Stream& s, Instr in) {
    const double param_count =
        job_.stages[s.stage].param_bytes / kBytesPerParam;
    // Optimizer apply (~2 reads + write per weight) plus the elastic pull
    // and reference send (paper §3.2 ❷-❸) when averaging is on.
    double work = 8.0 * param_count;
    if (job_.elastic_averaging) work += 8.0 * param_count;
    const Seconds t0 = engine_.now();
    const double slow = fault_scale(s);
    gpus_[s.stage]->submit(slow * work, 1.0,
                           [this, &s, in, t0, slow, gen = s.gen] {
      if (s.gen != gen) return;  // superseded by a crash
      emit(trace::EventKind::kUpdate, s.pipeline, s.stage, in, t0,
           engine_.now());
      emit_straggler(s, in, t0, engine_.now(), slow);
      complete(s);
    });
  }

  void issue_allreduce(Stream& s, Instr in) {
    auto& barrier = allreduce_barrier_[in.batch];
    barrier.push_back(&s);
    if (barrier.size() < K_) return;  // wait for the others

    // Only densely-trained parameters ship full gradients; sparse embedding
    // gradients sync a negligible slice per iteration.
    const Bytes grad_bytes = job_.stages[0].dense_state_bytes;
    const Seconds dur = allreduce_seconds(grad_bytes, job_.cluster, K_);
    const Seconds t0 = engine_.now();
    for (Stream* member : barrier) {
      member->comm_wait += dur;
      stats_comm_[member->stage] += dur;
      emit(trace::EventKind::kCommAllReduce, member->pipeline, member->stage,
           in, t0, t0 + dur, grad_bytes);
      engine_.schedule_after(dur, [this, member] { complete(*member); });
    }
    barrier.clear();
  }

  SimResult collect(Seconds makespan) {
    SimResult r;
    r.makespan = makespan;
    r.time_per_batch = makespan / static_cast<double>(job_.num_batches);
    r.gpus.resize(K_);
    double util_sum = 0.0;
    for (std::size_t k = 0; k < K_; ++k) {
      GpuStats& g = r.gpus[k];
      g.busy = gpus_[k]->busy_time();
      g.utilization = gpus_[k]->utilization();
      g.total_comm = stats_comm_[k];
      g.static_memory = memory_[k]->model_bytes();
      g.peak_memory = memory_[k]->peak();
      g.peak_activations = memory_[k]->peak_by(MemCategory::kActivations) +
                           memory_[k]->peak_by(MemCategory::kBuffers);
      g.oom = memory_[k]->oom();
      r.oom = r.oom || g.oom;
      for (const auto& s : streams_) {
        if (s.stage == k) {
          g.comm_block += s.comm_wait;
          g.bubble += s.bubble_wait;
        }
      }
      const double integral = g.utilization.integral();
      util_sum += makespan > 0 ? integral / makespan : 0.0;
      r.peak_utilization = std::max(r.peak_utilization,
                                    g.utilization.max_value());
      if (tb_ != nullptr) {
        // φ^k(t) as counter segments, so TraceAnalysis can rebuild the
        // exact utilization curve (fig13/fig16 consume the trace, not this
        // result struct).
        for (const auto& seg : g.utilization.segments()) {
          trace::TraceEvent ev;
          ev.kind = trace::EventKind::kCounter;
          ev.counter = trace::CounterId::kUtilization;
          ev.stage = static_cast<std::uint32_t>(k);
          ev.t_begin = seg.begin;
          ev.t_end = seg.end;
          ev.value = seg.value;
          tb_->record(ev);
        }
      }
    }
    r.mean_utilization = util_sum / static_cast<double>(K_);
    if (!act_link_hw_.empty()) {
      r.act_link_high_water.assign(K_ - 1, 0);
      r.grad_link_high_water.assign(K_ - 1, 0);
      for (std::size_t p = 0; p < job_.num_pipelines; ++p) {
        for (std::size_t l = 0; l + 1 < K_; ++l) {
          const std::size_t i = p * (K_ - 1) + l;
          r.act_link_high_water[l] =
              std::max(r.act_link_high_water[l], act_link_hw_[i]);
          r.grad_link_high_water[l] =
              std::max(r.grad_link_high_water[l], grad_link_hw_[i]);
        }
      }
    }
    return r;
  }

  const SimJob& job_;
  std::size_t K_ = 0;
  bool is_dp_ = false;
  double mb_samples_ = 1.0;

  Engine engine_;
  std::vector<std::unique_ptr<ComputeResource>> gpus_;
  std::vector<std::unique_ptr<MemoryTracker>> memory_;
  std::vector<std::unique_ptr<LinkResource>> links_;

  std::vector<Stream> streams_;
  std::unordered_set<std::uint64_t> act_ready_;
  std::unordered_set<std::uint64_t> grad_ready_;
  std::unordered_map<std::uint64_t, Seconds> act_enqueued_;
  std::unordered_map<std::uint64_t, Seconds> grad_enqueued_;
  // Per (pipeline, link) sent-but-unconsumed message counts and their highs
  // (index p * (K-1) + link); empty under data parallelism.
  std::vector<std::size_t> act_link_occ_;
  std::vector<std::size_t> grad_link_occ_;
  std::vector<std::size_t> act_link_hw_;
  std::vector<std::size_t> grad_link_hw_;
  std::unordered_map<int, std::vector<Stream*>> allreduce_barrier_;
  std::unordered_map<std::size_t, Seconds> stats_comm_;
  trace::TraceBuffer* tb_ = nullptr;  ///< owned by job_.tracer
  /// Non-null only when the job carries a non-empty plan (zero-cost shim).
  const fault::FaultPlan* faults_ = nullptr;
};

}  // namespace

SimResult simulate(const SimJob& job) {
  Execution exec(job);
  return exec.run();
}

SimJob build_job(const workloads::WorkloadProfile& w,
                 const workloads::ClusterSpec& cluster,
                 const partition::Partition& partition,
                 const SystemConfig& system, std::size_t batch_size,
                 std::size_t num_batches) {
  SimJob job;
  job.cluster = cluster;
  job.eff_half_batch = w.eff_half_batch;
  job.optimizer_state_factor = w.optimizer_state_factor;
  job.kind = system.kind;
  job.num_pipelines = system.num_pipelines;
  job.elastic_averaging = system.elastic_averaging;
  job.advance_num = system.advance_num;
  job.num_batches = num_batches;

  if (system.kind == schedule::Kind::kDataParallel) {
    // Every GPU hosts the full model and computes its share of the batch.
    SimStage full;
    full.fwd_flops_per_sample = w.total_fwd_flops_per_sample();
    full.stash_bytes_per_sample = w.total_stash_bytes_per_sample();
    full.param_bytes = w.total_param_bytes();
    full.dense_state_bytes = 0;
    for (const auto& l : w.layers) {
      full.dense_state_bytes += l.param_bytes * l.dense_state_fraction;
    }
    full.boundary_act_bytes_per_sample = 0;
    const std::size_t gpus = cluster.num_gpus();
    job.stages.assign(gpus, full);
    job.micro_batches = 1;
    job.batch_size = std::max<std::size_t>(1, batch_size / gpus);
  } else {
    const auto costs = partition::stage_costs(w, partition);
    for (const auto& c : costs) {
      job.stages.push_back(SimStage{c.fwd_flops_per_sample,
                                    c.boundary_act_bytes_per_sample,
                                    c.stash_bytes_per_sample, c.param_bytes,
                                    c.dense_state_bytes});
    }
    job.micro_batches = std::max<std::size_t>(1, system.micro_batches);
    job.batch_size = batch_size;
    AVGPIPE_CHECK(job.micro_batches <= job.batch_size,
                  "more micro-batches (" << job.micro_batches
                                         << ") than samples (" << batch_size
                                         << ")");
  }
  return job;
}

std::size_t adaptive_advance(SimJob job, double min_speedup) {
  const std::size_t k = job.stages.size();
  job.kind = schedule::Kind::kAdvanceForward;
  job.tracer = nullptr;  // probe runs are not the trace of record
  job.faults = nullptr;  // the advance count is chosen for the healthy system
  std::size_t best = k - 1;  // Algorithm 1 line 1: start at 1F1B
  job.advance_num = best;
  SimResult prev = simulate(job);
  if (prev.oom) return best;
  Seconds best_time = prev.time_per_batch;
  // Algorithm 1 raises advance_num one micro-batch per training iteration;
  // over a long run it walks the whole range, which a geometric sweep with
  // patience condenses here.
  std::size_t stale = 0;
  std::size_t step = 1;
  for (std::size_t a = k; a <= job.micro_batches + k; a += step) {
    job.advance_num = a;
    const SimResult r = simulate(job);
    if (r.oom) break;  // is_mem_available() failed
    if (best_time / r.time_per_batch >= min_speedup) {
      best = a;  // is_faster() held
      best_time = r.time_per_batch;
      stale = 0;
      step = std::min<std::size_t>(step * 2, job.micro_batches / 4 + 1);
    } else if (++stale >= 3) {
      break;
    }
  }
  return best;
}

Seconds epoch_time(const SimResult& result, const SimJob& job,
                   std::size_t dataset_samples) {
  const double samples_per_iter =
      static_cast<double>(job.batch_size) *
      static_cast<double>(job.kind == schedule::Kind::kDataParallel
                              ? job.stages.size()
                              : job.num_pipelines);
  const double iters =
      static_cast<double>(dataset_samples) / samples_per_iter;
  return result.time_per_batch * iters;
}

}  // namespace avgpipe::sim
