#include "sim/simulator.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "sim/resources.hpp"
#include "trace/trace.hpp"

namespace avgpipe::sim {

namespace {

using schedule::Instr;
using schedule::Kind;
using schedule::OpKind;

constexpr double kBytesPerParam = 4.0;

/// Hierarchical all-reduce estimate: gradients are reduced inside each node
/// over the fast intra-node link (negligible next to Ethernet), then a ring
/// all-reduce runs between node leaders over the slow link, on fp16-
/// compressed gradients (standard DDP practice on commodity Ethernet).
Seconds allreduce_seconds(Bytes bytes, const workloads::ClusterSpec& cluster,
                          std::size_t gpus) {
  const std::size_t nodes =
      std::max<std::size_t>(1, (gpus + cluster.gpus_per_node - 1) /
                                   cluster.gpus_per_node);
  if (nodes <= 1 && gpus <= 1) return 0.0;
  const Bytes wire_bytes = bytes / 2.0;  // fp16 gradient compression
  Seconds total = 0;
  if (gpus > 1) {  // intra-node reduce+broadcast
    const auto& fast = cluster.intra_node;
    total += 2.0 * wire_bytes / fast.bandwidth_bytes_per_s + 2.0 * fast.latency;
  }
  if (nodes > 1) {  // inter-node ring over node leaders
    const auto& slow = cluster.inter_node;
    const double steps = 2.0 * static_cast<double>(nodes - 1);
    total += steps * (wire_bytes / static_cast<double>(nodes)) /
                 slow.bandwidth_bytes_per_s +
             steps * slow.latency;
  }
  return total;
}

class Execution {
 public:
  explicit Execution(const SimJob& job) : job_(job) {
    K_ = job.stages.size();
    AVGPIPE_CHECK(K_ >= 1, "job has no stages");
    AVGPIPE_CHECK(K_ <= job.cluster.num_gpus(),
                  "more stages (" << K_ << ") than GPUs ("
                                  << job.cluster.num_gpus() << ")");
    is_dp_ = job.kind == Kind::kDataParallel;
    AVGPIPE_CHECK(!is_dp_ || job.num_pipelines == 1,
                  "data parallelism does not use parallel pipelines");
    mb_samples_ = static_cast<double>(job.batch_size) /
                  static_cast<double>(job.micro_batches);
    AVGPIPE_CHECK(mb_samples_ > 0.0, "empty micro-batches");

    const Bytes capacity =
        job.memory_limit > 0.0 ? job.memory_limit : job.cluster.gpu.memory;

    for (std::size_t k = 0; k < K_; ++k) {
      gpus_.push_back(std::make_unique<ComputeResource>(
          engine_, job.cluster.gpu.peak_flops, job.concurrency_gain));
      memory_.push_back(std::make_unique<MemoryTracker>(capacity));
    }
    // One shared link per adjacent GPU pair. Forward activations and
    // backward gradients contend for the same wire: over TCP on 1 GbE with
    // pipeline-sized messages the medium behaves far closer to half duplex
    // than to two independent directions, and this is what lets AFAB (which
    // phases the two directions) beat 1F1B (which interleaves them), as the
    // paper observes in Figure 7/17.
    for (std::size_t k = 0; k + 1 < K_; ++k) {
      const auto& spec = job.cluster.link_between(k, k + 1);
      links_.push_back(std::make_unique<LinkResource>(
          engine_, spec.bandwidth_bytes_per_s, spec.latency));
    }

    allocate_static_memory();
    build_streams();
    if (job.tracer != nullptr) tb_ = job.tracer->create_buffer();
  }

  SimResult run() {
    pump();
    const Seconds makespan = engine_.run();
    for (const auto& s : streams_) {
      AVGPIPE_CHECK(s.idx == s.instrs.size(),
                    "deadlock: stream (pipeline " << s.pipeline << ", stage "
                                                  << s.stage << ") stuck at "
                                                  << s.idx << "/"
                                                  << s.instrs.size());
    }
    return collect(makespan);
  }

 private:
  struct Stream {
    std::size_t pipeline = 0;
    std::size_t stage = 0;
    std::vector<Instr> instrs;
    std::size_t idx = 0;
    bool running = false;
    bool blocked = false;
    Seconds blocked_since = 0;
    Seconds comm_wait = 0;
    Seconds bubble_wait = 0;
  };

  std::uint64_t key(std::size_t p, int batch, int mb, std::size_t stage) const {
    return ((p * static_cast<std::uint64_t>(job_.num_batches + 1) +
             static_cast<std::uint64_t>(batch)) *
                job_.micro_batches +
            static_cast<std::uint64_t>(mb)) *
               K_ +
           stage;
  }

  void allocate_static_memory() {
    const std::size_t n = job_.num_pipelines;
    for (std::size_t k = 0; k < K_; ++k) {
      const Bytes params = job_.stages[k].param_bytes;
      const Bytes state = job_.stages[k].dense_state_bytes;
      const std::size_t versions = schedule::weight_versions(job_.kind, k, K_);
      auto& mem = *memory_[k];
      mem.alloc(params * static_cast<double>(versions * n),
                MemCategory::kWeights);
      mem.alloc(state * job_.optimizer_state_factor * static_cast<double>(n),
                MemCategory::kOptimizer);
      mem.alloc(state * static_cast<double>(n), MemCategory::kGradients);
      if (job_.elastic_averaging) {
        // Reference weights live on-GPU (needed for the elastic pull); the
        // update accumulators (steps ❸-❹) belong to the host-side message
        // queue process and are not charged to GPU memory.
        mem.alloc(params, MemCategory::kReference);
      }
    }
  }

  void build_streams() {
    schedule::ScheduleParams params;
    params.kind = job_.kind;
    params.num_stages = K_;
    params.micro_batches = job_.micro_batches;
    params.num_batches = job_.num_batches;
    params.advance_num =
        job_.advance_num > 0 ? job_.advance_num : (K_ > 0 ? K_ - 1 : 0);
    const auto sched = schedule::make_schedule(params);
    for (std::size_t p = 0; p < job_.num_pipelines; ++p) {
      for (std::size_t k = 0; k < K_; ++k) {
        Stream s;
        s.pipeline = p;
        s.stage = k;
        s.instrs = sched.stages[k].instrs;
        streams_.push_back(std::move(s));
      }
    }
  }

  double demand() const { return job_.eff_half_batch <= 0.0
                                     ? 1.0
                                     : mb_samples_ /
                                           (mb_samples_ + job_.eff_half_batch); }

  bool is_ready(const Stream& s, const Instr& in) const {
    switch (in.kind) {
      case OpKind::kForward:
        if (s.stage == 0 || is_dp_) return true;
        return act_ready_.count(key(s.pipeline, in.batch, in.micro_batch,
                                    s.stage)) > 0;
      case OpKind::kBackward:
        return grad_ready_.count(key(s.pipeline, in.batch, in.micro_batch,
                                     s.stage)) > 0;
      case OpKind::kUpdate:
      case OpKind::kAllReduce:
        return true;
    }
    return false;
  }

  /// Record a span into the trace buffer, if tracing is on.
  void emit(trace::EventKind kind, std::size_t pipeline, std::size_t stage,
            const Instr& in, Seconds t_begin, Seconds t_end,
            Bytes bytes = 0) {
    if (tb_ == nullptr || t_end <= t_begin) return;
    trace::TraceEvent ev;
    ev.kind = kind;
    ev.pipeline = static_cast<std::uint32_t>(pipeline);
    ev.stage = static_cast<std::uint32_t>(stage);
    ev.batch = in.batch;
    ev.micro_batch = in.micro_batch;
    ev.t_begin = t_begin;
    ev.t_end = t_end;
    ev.bytes = bytes;
    tb_->record(ev);
  }

  /// Attribute the just-finished wait of `s` to comm vs bubble using the
  /// dependency's transfer-enqueue timestamp.
  void settle_wait(Stream& s, const Instr& in) {
    if (!s.blocked) return;
    const Seconds wait = engine_.now() - s.blocked_since;
    s.blocked = false;
    if (wait <= 0.0) return;
    const auto& enq =
        in.kind == OpKind::kForward ? act_enqueued_ : grad_enqueued_;
    const auto it =
        enq.find(key(s.pipeline, in.batch, in.micro_batch, s.stage));
    if (it == enq.end()) {
      s.bubble_wait += wait;
      emit(trace::EventKind::kWaitBubble, s.pipeline, s.stage, in,
           s.blocked_since, engine_.now());
      return;
    }
    const Seconds transfer_begin = std::max(it->second, s.blocked_since);
    s.comm_wait += engine_.now() - transfer_begin;
    s.bubble_wait += transfer_begin - s.blocked_since;
    emit(trace::EventKind::kWaitBubble, s.pipeline, s.stage, in,
         s.blocked_since, transfer_begin);
    emit(trace::EventKind::kWaitComm, s.pipeline, s.stage, in, transfer_begin,
         engine_.now());
  }

  void pump() {
    for (auto& s : streams_) {
      if (s.running || s.idx >= s.instrs.size()) continue;
      const Instr& in = s.instrs[s.idx];
      if (!is_ready(s, in)) {
        if (!s.blocked) {
          s.blocked = true;
          s.blocked_since = engine_.now();
        }
        continue;
      }
      settle_wait(s, in);
      issue(s, in);
    }
  }

  void issue(Stream& s, const Instr& in) {
    s.running = true;
    switch (in.kind) {
      case OpKind::kForward: issue_forward(s, in); break;
      case OpKind::kBackward: issue_backward(s, in); break;
      case OpKind::kUpdate: issue_update(s, in); break;
      case OpKind::kAllReduce: issue_allreduce(s, in); break;
    }
  }

  void complete(Stream& s) {
    s.running = false;
    ++s.idx;
    pump();
  }

  Bytes stash_bytes(std::size_t stage) const {
    const auto& st = job_.stages[stage];
    // With recomputation only the boundary input survives until backward.
    const Bytes per_sample = job_.activation_recompute
                                 ? st.boundary_act_bytes_per_sample
                                 : st.stash_bytes_per_sample;
    return per_sample * mb_samples_;
  }

  void issue_forward(Stream& s, Instr in) {
    const auto& st = job_.stages[s.stage];
    memory_[s.stage]->alloc(stash_bytes(s.stage), MemCategory::kActivations);
    const Seconds t0 = engine_.now();
    gpus_[s.stage]->submit(
        st.fwd_flops_per_sample * mb_samples_, demand(),
        [this, &s, in, t0] {
          emit(trace::EventKind::kForward, s.pipeline, s.stage, in, t0,
               engine_.now());
          on_forward_done(s, in);
        });
  }

  void on_forward_done(Stream& s, Instr in) {
    if (is_dp_ || s.stage == K_ - 1) {
      // Loss gradient is local: own backward may start.
      grad_ready_.insert(key(s.pipeline, in.batch, in.micro_batch, s.stage));
    } else {
      const Bytes bytes =
          job_.stages[s.stage].boundary_act_bytes_per_sample * mb_samples_;
      const std::uint64_t dst =
          key(s.pipeline, in.batch, in.micro_batch, s.stage + 1);
      const Seconds t_enq = engine_.now();
      act_enqueued_[dst] = t_enq;
      const std::size_t to = s.stage + 1;
      const std::size_t pipeline = s.pipeline;
      const Seconds wire = links_[s.stage]->transfer(
          bytes, [this, dst, to, bytes, pipeline, in, t_enq] {
            memory_[to]->alloc(bytes, MemCategory::kBuffers);
            act_ready_.insert(dst);
            emit(trace::EventKind::kCommActivation, pipeline, to, in, t_enq,
                 engine_.now(), bytes);
            pump();
          });
      stats_comm_[s.stage] += wire;
      stats_comm_[to] += wire;
    }
    complete(s);
  }

  void issue_backward(Stream& s, Instr in) {
    const auto& st = job_.stages[s.stage];
    // Recomputation replays the forward before the backward (+1x fwd work).
    const double factor = job_.activation_recompute ? 3.0 : 2.0;
    const Seconds t0 = engine_.now();
    gpus_[s.stage]->submit(
        factor * st.fwd_flops_per_sample * mb_samples_, demand(),
        [this, &s, in, t0] {
          emit(trace::EventKind::kBackward, s.pipeline, s.stage, in, t0,
               engine_.now());
          on_backward_done(s, in);
        });
  }

  void on_backward_done(Stream& s, Instr in) {
    memory_[s.stage]->free(stash_bytes(s.stage), MemCategory::kActivations);
    if (!is_dp_ && s.stage > 0) {
      const Bytes inbound =
          job_.stages[s.stage - 1].boundary_act_bytes_per_sample * mb_samples_;
      memory_[s.stage]->free(inbound, MemCategory::kBuffers);
      const std::uint64_t dst =
          key(s.pipeline, in.batch, in.micro_batch, s.stage - 1);
      const Seconds t_enq = engine_.now();
      grad_enqueued_[dst] = t_enq;
      const std::size_t to = s.stage - 1;
      const std::size_t pipeline = s.pipeline;
      const Seconds wire = links_[s.stage - 1]->transfer(
          inbound, [this, dst, to, inbound, pipeline, in, t_enq] {
            grad_ready_.insert(dst);
            emit(trace::EventKind::kCommGradient, pipeline, to, in, t_enq,
                 engine_.now(), inbound);
            pump();
          });
      stats_comm_[s.stage] += wire;
      stats_comm_[s.stage - 1] += wire;
    }
    complete(s);
  }

  void issue_update(Stream& s, Instr in) {
    const double param_count =
        job_.stages[s.stage].param_bytes / kBytesPerParam;
    // Optimizer apply (~2 reads + write per weight) plus the elastic pull
    // and reference send (paper §3.2 ❷-❸) when averaging is on.
    double work = 8.0 * param_count;
    if (job_.elastic_averaging) work += 8.0 * param_count;
    const Seconds t0 = engine_.now();
    gpus_[s.stage]->submit(work, 1.0, [this, &s, in, t0] {
      emit(trace::EventKind::kUpdate, s.pipeline, s.stage, in, t0,
           engine_.now());
      complete(s);
    });
  }

  void issue_allreduce(Stream& s, Instr in) {
    auto& barrier = allreduce_barrier_[in.batch];
    barrier.push_back(&s);
    if (barrier.size() < K_) return;  // wait for the others

    // Only densely-trained parameters ship full gradients; sparse embedding
    // gradients sync a negligible slice per iteration.
    const Bytes grad_bytes = job_.stages[0].dense_state_bytes;
    const Seconds dur = allreduce_seconds(grad_bytes, job_.cluster, K_);
    const Seconds t0 = engine_.now();
    for (Stream* member : barrier) {
      member->comm_wait += dur;
      stats_comm_[member->stage] += dur;
      emit(trace::EventKind::kCommAllReduce, member->pipeline, member->stage,
           in, t0, t0 + dur, grad_bytes);
      engine_.schedule_after(dur, [this, member] { complete(*member); });
    }
    barrier.clear();
  }

  SimResult collect(Seconds makespan) {
    SimResult r;
    r.makespan = makespan;
    r.time_per_batch = makespan / static_cast<double>(job_.num_batches);
    r.gpus.resize(K_);
    double util_sum = 0.0;
    for (std::size_t k = 0; k < K_; ++k) {
      GpuStats& g = r.gpus[k];
      g.busy = gpus_[k]->busy_time();
      g.utilization = gpus_[k]->utilization();
      g.total_comm = stats_comm_[k];
      g.static_memory = memory_[k]->model_bytes();
      g.peak_memory = memory_[k]->peak();
      g.peak_activations = memory_[k]->peak_by(MemCategory::kActivations) +
                           memory_[k]->peak_by(MemCategory::kBuffers);
      g.oom = memory_[k]->oom();
      r.oom = r.oom || g.oom;
      for (const auto& s : streams_) {
        if (s.stage == k) {
          g.comm_block += s.comm_wait;
          g.bubble += s.bubble_wait;
        }
      }
      const double integral = g.utilization.integral();
      util_sum += makespan > 0 ? integral / makespan : 0.0;
      r.peak_utilization = std::max(r.peak_utilization,
                                    g.utilization.max_value());
      if (tb_ != nullptr) {
        // φ^k(t) as counter segments, so TraceAnalysis can rebuild the
        // exact utilization curve (fig13/fig16 consume the trace, not this
        // result struct).
        for (const auto& seg : g.utilization.segments()) {
          trace::TraceEvent ev;
          ev.kind = trace::EventKind::kCounter;
          ev.counter = trace::CounterId::kUtilization;
          ev.stage = static_cast<std::uint32_t>(k);
          ev.t_begin = seg.begin;
          ev.t_end = seg.end;
          ev.value = seg.value;
          tb_->record(ev);
        }
      }
    }
    r.mean_utilization = util_sum / static_cast<double>(K_);
    return r;
  }

  const SimJob& job_;
  std::size_t K_ = 0;
  bool is_dp_ = false;
  double mb_samples_ = 1.0;

  Engine engine_;
  std::vector<std::unique_ptr<ComputeResource>> gpus_;
  std::vector<std::unique_ptr<MemoryTracker>> memory_;
  std::vector<std::unique_ptr<LinkResource>> links_;

  std::vector<Stream> streams_;
  std::unordered_set<std::uint64_t> act_ready_;
  std::unordered_set<std::uint64_t> grad_ready_;
  std::unordered_map<std::uint64_t, Seconds> act_enqueued_;
  std::unordered_map<std::uint64_t, Seconds> grad_enqueued_;
  std::unordered_map<int, std::vector<Stream*>> allreduce_barrier_;
  std::unordered_map<std::size_t, Seconds> stats_comm_;
  trace::TraceBuffer* tb_ = nullptr;  ///< owned by job_.tracer
};

}  // namespace

SimResult simulate(const SimJob& job) {
  Execution exec(job);
  return exec.run();
}

SimJob build_job(const workloads::WorkloadProfile& w,
                 const workloads::ClusterSpec& cluster,
                 const partition::Partition& partition,
                 const SystemConfig& system, std::size_t batch_size,
                 std::size_t num_batches) {
  SimJob job;
  job.cluster = cluster;
  job.eff_half_batch = w.eff_half_batch;
  job.optimizer_state_factor = w.optimizer_state_factor;
  job.kind = system.kind;
  job.num_pipelines = system.num_pipelines;
  job.elastic_averaging = system.elastic_averaging;
  job.advance_num = system.advance_num;
  job.num_batches = num_batches;

  if (system.kind == schedule::Kind::kDataParallel) {
    // Every GPU hosts the full model and computes its share of the batch.
    SimStage full;
    full.fwd_flops_per_sample = w.total_fwd_flops_per_sample();
    full.stash_bytes_per_sample = w.total_stash_bytes_per_sample();
    full.param_bytes = w.total_param_bytes();
    full.dense_state_bytes = 0;
    for (const auto& l : w.layers) {
      full.dense_state_bytes += l.param_bytes * l.dense_state_fraction;
    }
    full.boundary_act_bytes_per_sample = 0;
    const std::size_t gpus = cluster.num_gpus();
    job.stages.assign(gpus, full);
    job.micro_batches = 1;
    job.batch_size = std::max<std::size_t>(1, batch_size / gpus);
  } else {
    const auto costs = partition::stage_costs(w, partition);
    for (const auto& c : costs) {
      job.stages.push_back(SimStage{c.fwd_flops_per_sample,
                                    c.boundary_act_bytes_per_sample,
                                    c.stash_bytes_per_sample, c.param_bytes,
                                    c.dense_state_bytes});
    }
    job.micro_batches = std::max<std::size_t>(1, system.micro_batches);
    job.batch_size = batch_size;
    AVGPIPE_CHECK(job.micro_batches <= job.batch_size,
                  "more micro-batches (" << job.micro_batches
                                         << ") than samples (" << batch_size
                                         << ")");
  }
  return job;
}

std::size_t adaptive_advance(SimJob job, double min_speedup) {
  const std::size_t k = job.stages.size();
  job.kind = schedule::Kind::kAdvanceForward;
  job.tracer = nullptr;  // probe runs are not the trace of record
  std::size_t best = k - 1;  // Algorithm 1 line 1: start at 1F1B
  job.advance_num = best;
  SimResult prev = simulate(job);
  if (prev.oom) return best;
  Seconds best_time = prev.time_per_batch;
  // Algorithm 1 raises advance_num one micro-batch per training iteration;
  // over a long run it walks the whole range, which a geometric sweep with
  // patience condenses here.
  std::size_t stale = 0;
  std::size_t step = 1;
  for (std::size_t a = k; a <= job.micro_batches + k; a += step) {
    job.advance_num = a;
    const SimResult r = simulate(job);
    if (r.oom) break;  // is_mem_available() failed
    if (best_time / r.time_per_batch >= min_speedup) {
      best = a;  // is_faster() held
      best_time = r.time_per_batch;
      stale = 0;
      step = std::min<std::size_t>(step * 2, job.micro_batches / 4 + 1);
    } else if (++stale >= 3) {
      break;
    }
  }
  return best;
}

Seconds epoch_time(const SimResult& result, const SimJob& job,
                   std::size_t dataset_samples) {
  const double samples_per_iter =
      static_cast<double>(job.batch_size) *
      static_cast<double>(job.kind == schedule::Kind::kDataParallel
                              ? job.stages.size()
                              : job.num_pipelines);
  const double iters =
      static_cast<double>(dataset_samples) / samples_per_iter;
  return result.time_per_batch * iters;
}

}  // namespace avgpipe::sim
