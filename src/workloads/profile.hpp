#pragma once

/// \file profile.hpp
/// Layer-level cost profiles of the paper's three workloads.
///
/// The cluster simulator and the PipeDream-style partitioner consume only
/// per-layer compute/activation/parameter figures, mirroring how PipeDream's
/// own profiler feeds its partitioner. The constants below are derived from
/// the published architectures (GNMT-16, BERT-large, AWD-LSTM) at the batch
/// sizes the paper trains with; see workloads.cpp for the formulas.

#include <string>
#include <vector>

#include "common/units.hpp"

namespace avgpipe::workloads {

/// Cost profile of one model layer.
struct LayerProfile {
  std::string name;
  Flops fwd_flops_per_sample = 0;  ///< forward cost; backward costs 2x this
  Bytes activation_bytes_per_sample = 0;  ///< boundary output activation
  Bytes stash_bytes_per_sample = 0;  ///< internal state kept for backward
  Bytes param_bytes = 0;             ///< trainable parameter bytes
  /// Fraction of parameters with dense gradients/optimizer state. Embedding
  /// tables train with sparse gradients in the reference implementations,
  /// so only a sliver of their state is ever materialised.
  double dense_state_fraction = 1.0;
};

/// Cost profile of a whole workload plus the training configuration the
/// paper uses for it.
struct WorkloadProfile {
  std::string name;
  std::vector<LayerProfile> layers;

  std::size_t batch_size = 0;          ///< paper's per-pipeline batch size
  Bytes input_bytes_per_sample = 0;    ///< raw micro-batch input data
  std::size_t num_gpus = 0;            ///< GPUs used in the paper's runs
  std::size_t dataset_samples = 0;     ///< samples per epoch

  /// Kernel-efficiency half-saturation constant, in samples: a kernel over a
  /// micro-batch of s samples sustains s/(s + eff_half_batch) of GPU peak.
  /// This is the "arithmetic intensity" model behind the paper's Eq. (2).
  double eff_half_batch = 2.0;

  /// Optimizer state bytes per parameter byte (Adam keeps m and v -> 2.0).
  double optimizer_state_factor = 2.0;

  // -- derived ---------------------------------------------------------------

  Flops total_fwd_flops_per_sample() const;
  Bytes total_param_bytes() const;
  Bytes total_stash_bytes_per_sample() const;
  std::size_t num_layers() const { return layers.size(); }

  /// Kernel efficiency in (0,1] for a micro-batch of `samples` samples.
  double efficiency(double samples) const {
    return samples / (samples + eff_half_batch);
  }
};

/// GNMT-16 stand-in: 16 stacked LSTM layers of hidden 1024, vocab 32k,
/// sequence length 50, batch 128, Adam, WMT16-sized epoch. 6 GPUs.
WorkloadProfile gnmt_profile();

/// BERT-large stand-in: 24 Transformer encoder layers of hidden 1024,
/// sequence length 128, batch 32, Adam, QQP-sized epoch. 6 GPUs.
WorkloadProfile bert_profile();

/// AWD-LSTM stand-in: 3 LSTM layers (1150 hidden, 400 embed), vocab 10k,
/// sequence length 70, batch 40, SGD/ASGD, PTB-sized epoch. 4 GPUs.
WorkloadProfile awd_profile();

/// Tiny 2-stage profile matching the proportions of the paper's Figure 7
/// walkthrough (2 GPUs, 4 micro-batches, visible comm gaps).
WorkloadProfile toy_two_stage_profile();

/// All three paper workloads in evaluation order.
std::vector<WorkloadProfile> paper_workloads();

}  // namespace avgpipe::workloads
