#include "workloads/cluster.hpp"

namespace avgpipe::workloads {

ClusterSpec v100_cluster(std::size_t num_gpus) {
  ClusterSpec c;
  AVGPIPE_CHECK(num_gpus >= 1, "need at least one GPU");
  AVGPIPE_CHECK(num_gpus % c.gpus_per_node == 0 || num_gpus == 1,
                "cluster preset uses whole 2-GPU nodes");
  c.num_nodes = (num_gpus + c.gpus_per_node - 1) / c.gpus_per_node;
  return c;
}

}  // namespace avgpipe::workloads
