#pragma once

/// \file cluster.hpp
/// Cluster hardware description consumed by the simulator.
///
/// The default preset mirrors the paper's testbed: 3 nodes x 2 Tesla
/// V100-SXM2 (32 GB), NVLink-class links inside a node, 1 Gbps Ethernet
/// between nodes. Pipeline stage k is mapped to GPU k in node-major order,
/// so the stage-(k,k+1) link alternates intra/inter node exactly as on the
/// real machines.

#include <cstddef>

#include "common/check.hpp"
#include "common/units.hpp"

namespace avgpipe::workloads {

struct GpuSpec {
  Flops peak_flops = 15.7 * kTFLOP;  ///< V100 fp32 peak
  Bytes memory = 32.0 * kGiB;
};

struct LinkSpec {
  double bandwidth_bytes_per_s = kGigabitPerSecond;
  Seconds latency = 50.0 * kMicrosecond;

  Seconds transfer_time(Bytes bytes) const {
    return latency + bytes / bandwidth_bytes_per_s;
  }
};

struct ClusterSpec {
  std::size_t num_nodes = 3;
  std::size_t gpus_per_node = 2;
  GpuSpec gpu;
  LinkSpec intra_node{25.0 * kGiB, 5.0 * kMicrosecond};  // NVLink-class
  /// 1 Gbps Ethernet at ~84 % TCP goodput (what PyTorch's gloo/NCCL-socket
  /// transports sustain with pipeline-sized tensors).
  LinkSpec inter_node{0.84 * kGigabitPerSecond, 50.0 * kMicrosecond};

  std::size_t num_gpus() const { return num_nodes * gpus_per_node; }

  std::size_t node_of(std::size_t gpu_index) const {
    AVGPIPE_CHECK(gpu_index < num_gpus(), "gpu index out of range");
    return gpu_index / gpus_per_node;
  }

  /// Link used between two GPUs (node-major placement).
  const LinkSpec& link_between(std::size_t a, std::size_t b) const {
    return node_of(a) == node_of(b) ? intra_node : inter_node;
  }

  /// Slowest link on the all-reduce ring over `n` GPUs (data parallelism).
  const LinkSpec& bottleneck_link(std::size_t n) const {
    return n > gpus_per_node ? inter_node : intra_node;
  }
};

/// The paper's testbed, optionally truncated to `num_gpus` devices
/// (AWD uses 4 GPUs on two nodes).
ClusterSpec v100_cluster(std::size_t num_gpus = 6);

}  // namespace avgpipe::workloads
