#include "workloads/profile.hpp"

namespace avgpipe::workloads {

namespace {

constexpr double kBytesPerParam = 4.0;
/// Boundary activations are *transferred* at half precision (mixed-precision
/// training), which is what keeps inter-node communication hideable under
/// compute on the paper's 1 Gbps testbed. Autograd *stashes* keep full
/// precision (kStash multiplies the fp16 boundary size by 2 on top of the
/// per-layer intermediate-tensor multiplier).
constexpr double kBytesPerAct = 2.0;
constexpr double kStashFp32 = 2.0;

/// Forward FLOPs of one LSTM layer over a sequence: 8 matmul-sized gate
/// products per step, 2 FLOPs per MAC.
Flops lstm_layer_flops(double seq, double in, double hidden) {
  return 2.0 * seq * (4.0 * in * hidden + 4.0 * hidden * hidden);
}

Bytes lstm_layer_params(double in, double hidden) {
  return (4.0 * in * hidden + 4.0 * hidden * hidden + 8.0 * hidden) *
         kBytesPerParam;
}

/// Forward FLOPs of one Transformer encoder layer: QKV+output projections
/// (4 h^2 per token), attention scores/context (2 s h per token), and the
/// 4x FFN (8 h^2 per token).
Flops transformer_layer_flops(double seq, double h) {
  return 2.0 * seq * (4.0 * h * h + 2.0 * seq * h + 8.0 * h * h);
}

Bytes transformer_layer_params(double h) {
  return (12.0 * h * h + 13.0 * h) * kBytesPerParam;
}

}  // namespace

Flops WorkloadProfile::total_fwd_flops_per_sample() const {
  Flops total = 0;
  for (const auto& l : layers) total += l.fwd_flops_per_sample;
  return total;
}

Bytes WorkloadProfile::total_param_bytes() const {
  Bytes total = 0;
  for (const auto& l : layers) total += l.param_bytes;
  return total;
}

Bytes WorkloadProfile::total_stash_bytes_per_sample() const {
  Bytes total = 0;
  for (const auto& l : layers) total += l.stash_bytes_per_sample;
  return total;
}

WorkloadProfile gnmt_profile() {
  WorkloadProfile w;
  w.name = "GNMT";
  const double seq = 50, hidden = 1024, embed = 1024, vocab = 32000;
  // Boundary payloads: fp16 plus ~2:1 from GNMT's length-bucketed batching
  // (the 50-token window is a maximum, not the mean sentence length).
  // Stashes stay sized for the full window at fp32 (see kStashFp32).
  const Bytes act = seq * hidden * kBytesPerAct / 2.0;
  const Bytes stash_act = seq * hidden * kBytesPerAct;

  // Sparse embedding gradients (the PipeDream/GNMT recipe).
  w.layers.push_back({"embed", 2.0 * seq * embed, act,
                      kStashFp32 * 2.0 * stash_act,
                      vocab * embed * kBytesPerParam, 0.1});
  for (int i = 0; i < 16; ++i) {
    // LSTM stashes gates (4H), pre-activations, cell and hidden per step
    // plus dropout masks: ~16x the boundary tensor.
    w.layers.push_back({"lstm" + std::to_string(i),
                        lstm_layer_flops(seq, hidden, hidden), act,
                        kStashFp32 * 16.0 * stash_act,
                        lstm_layer_params(hidden, hidden)});
  }
  // The output projection is tied to the embedding table (shared weights),
  // so it adds compute and activations but no parameters of its own.
  w.layers.push_back({"softmax", 2.0 * seq * hidden * vocab,
                      seq * vocab * kBytesPerAct / 2.0,
                      kStashFp32 * seq * vocab * kBytesPerAct, 0.0});

  w.batch_size = 128;
  w.input_bytes_per_sample = seq * kBytesPerParam;
  w.num_gpus = 6;
  w.dataset_samples = 400000;  // WMT16-scale epoch (subsampled)
  w.eff_half_batch = 3.0;      // ~2-sample micro-batches reach 40% of peak
  w.optimizer_state_factor = 2.0;  // Adam
  return w;
}

WorkloadProfile bert_profile() {
  WorkloadProfile w;
  w.name = "BERT";
  const double seq = 128, h = 1024, vocab = 30000;
  const Bytes act = seq * h * kBytesPerAct;

  w.layers.push_back({"embed", 2.0 * seq * h, act, kStashFp32 * 2.0 * act,
                      vocab * h * kBytesPerParam});
  for (int i = 0; i < 24; ++i) {
    // Encoder stashes QKV (3x), attention probabilities (heads x S^2, which
    // is ~2 S h here), the FFN hidden (4x) and residual/LN intermediates:
    // ~32x the boundary tensor for S=128, h=1024, 16 heads.
    w.layers.push_back({"encoder" + std::to_string(i),
                        transformer_layer_flops(seq, h), act,
                        kStashFp32 * 32.0 * act,
                        transformer_layer_params(h)});
  }
  w.layers.push_back({"classifier", 2.0 * h * h, h * kBytesPerAct,
                      kStashFp32 * h * kBytesPerAct,
                      h * h * kBytesPerParam});

  w.batch_size = 32;
  w.input_bytes_per_sample = seq * kBytesPerParam;
  w.num_gpus = 6;
  w.dataset_samples = 364000;  // QQP train split size
  w.eff_half_batch = 3.0;      // micro-batches of ~4 samples hit ~57% of peak
  w.optimizer_state_factor = 2.0;  // Adam
  return w;
}

WorkloadProfile awd_profile() {
  WorkloadProfile w;
  w.name = "AWD";
  const double seq = 70, hidden = 1150, embed = 400, vocab = 10000;
  // Effective boundary payload: fp16 plus the ~4x reduction from PTB's
  // variable-length bucketing (the 70-token BPTT window is a maximum).
  // Calibrated so the two-node communication is "insignificant" as §7.1
  // reports for AWD.
  const double act_scale = kBytesPerAct / 4.0;

  // AWD-LSTM trains its embedding with sparse gradients too.
  w.layers.push_back({"embed", 2.0 * seq * embed, seq * embed * act_scale,
                      kStashFp32 * 2.0 * seq * embed * kBytesPerAct,
                      vocab * embed * kBytesPerParam, 0.1});
  w.layers.push_back({"lstm0", lstm_layer_flops(seq, embed, hidden),
                      seq * hidden * act_scale,
                      kStashFp32 * 12.0 * seq * hidden * kBytesPerAct,
                      lstm_layer_params(embed, hidden)});
  w.layers.push_back({"lstm1", lstm_layer_flops(seq, hidden, hidden),
                      seq * hidden * act_scale,
                      kStashFp32 * 12.0 * seq * hidden * kBytesPerAct,
                      lstm_layer_params(hidden, hidden)});
  w.layers.push_back({"lstm2", lstm_layer_flops(seq, hidden, embed),
                      seq * embed * act_scale,
                      kStashFp32 * 12.0 * seq * embed * kBytesPerAct,
                      lstm_layer_params(hidden, embed)});
  // AWD-LSTM ties decoder and embedding weights (Merity et al.).
  w.layers.push_back({"decoder", 2.0 * seq * embed * vocab,
                      seq * vocab * act_scale,
                      kStashFp32 * seq * vocab * kBytesPerAct, 0.0});

  w.batch_size = 40;
  w.input_bytes_per_sample = seq * kBytesPerParam;
  w.num_gpus = 4;               // two nodes, per the paper
  w.dataset_samples = 26000;    // PTB-scale epoch in sequences
  w.eff_half_batch = 8.0;       // whole-batch kernels reach ~83% of peak
  w.optimizer_state_factor = 1.0;  // SGD/ASGD
  return w;
}

WorkloadProfile toy_two_stage_profile() {
  WorkloadProfile w;
  w.name = "Toy2";
  // Two equal layers; comm is ~a third of a micro-batch's compute so the
  // 1F1B starvation of Figure 7 is visible without being wire-bound.
  const Flops f = 2.0 * kGFLOP;
  const Bytes act = 2.0 * kMiB;
  w.layers.push_back({"stage0", f, act, 2.0 * act, 64.0 * kMiB});
  w.layers.push_back({"stage1", f, act, 2.0 * act, 64.0 * kMiB});
  w.batch_size = 8;
  w.input_bytes_per_sample = 4.0 * kKiB;
  w.num_gpus = 2;
  w.dataset_samples = 1024;
  w.eff_half_batch = 1.0;
  w.optimizer_state_factor = 1.0;
  return w;
}

std::vector<WorkloadProfile> paper_workloads() {
  return {gnmt_profile(), bert_profile(), awd_profile()};
}

}  // namespace avgpipe::workloads
