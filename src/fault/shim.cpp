#include "fault/shim.hpp"

#include <chrono>
#include <thread>

namespace avgpipe::fault {

std::uint64_t message_key(long step, int micro_batch, int stage, LinkDir dir) {
  std::uint64_t k = static_cast<std::uint64_t>(step + 1);
  k = k * 524287 + static_cast<std::uint64_t>(micro_batch + 1);
  k = k * 131 + static_cast<std::uint64_t>(stage + 1);
  return k * 2 + static_cast<std::uint64_t>(dir);
}

void sleep_for(Seconds seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace avgpipe::fault
