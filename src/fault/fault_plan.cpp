#include "fault/fault_plan.hpp"

#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "common/env.hpp"

namespace avgpipe::fault {

namespace {

bool match(int pattern, int value) { return pattern == kAny || pattern == value; }

bool in_time(Seconds begin, Seconds end, Seconds now) {
  return now >= begin && now < end;
}

bool in_step(long begin, long end, long step) {
  return step >= begin && (end == kNoStepLimit || step < end);
}

/// SplitMix64 finaliser: a stateless bijective mixer, so per-message
/// randomness is a pure function of identity — never of event order.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from (seed, key, attempt).
double hash_uniform(std::uint64_t seed, std::uint64_t key, int attempt) {
  const std::uint64_t h =
      mix(mix(seed) ^ mix(key) ^ mix(static_cast<std::uint64_t>(attempt)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Message identity for the simulator's drop hashing.
std::uint64_t sim_message_key(int pipeline, int stage, int batch,
                              int micro_batch, LinkDir dir) {
  std::uint64_t k = static_cast<std::uint64_t>(pipeline + 1);
  k = k * 131 + static_cast<std::uint64_t>(stage + 1);
  k = k * 8209 + static_cast<std::uint64_t>(batch + 1);
  k = k * 524287 + static_cast<std::uint64_t>(micro_batch + 1);
  return k * 2 + static_cast<std::uint64_t>(dir);
}

// -- minimal JSON helpers (same technique as trace/chrome_trace.cpp) --------

bool find_number(const std::string& text, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = text.c_str() + pos + needle.size();
  char* end = nullptr;
  *out = std::strtod(start, &end);
  return end != start;
}

double number_or(const std::string& text, const char* key, double fallback) {
  double v = 0;
  return find_number(text, key, &v) ? v : fallback;
}

/// The `{...}` objects of the flat JSON array under `key`. Records contain
/// no nested objects, so brace matching is a linear scan.
std::vector<std::string> array_objects(const std::string& text,
                                       const char* key) {
  std::vector<std::string> objects;
  const std::string needle = std::string("\"") + key + "\"";
  auto pos = text.find(needle);
  if (pos == std::string::npos) return objects;
  pos = text.find('[', pos + needle.size());
  AVGPIPE_CHECK(pos != std::string::npos,
                "fault plan: '" << key << "' is not an array");
  for (std::size_t i = pos + 1; i < text.size(); ++i) {
    if (text[i] == ']') break;
    if (text[i] != '{') continue;
    const auto close = text.find('}', i);
    AVGPIPE_CHECK(close != std::string::npos,
                  "fault plan: unterminated object in '" << key << "'");
    objects.push_back(text.substr(i, close - i + 1));
    i = close;
  }
  return objects;
}

Seconds seconds_or(const std::string& obj, const char* key, Seconds fallback) {
  return number_or(obj, key, fallback);
}

long step_or(const std::string& obj, const char* key, long fallback) {
  double v = 0;
  if (!find_number(obj, key, &v)) return fallback;
  // -1 is the documented "unbounded" spelling for step windows.
  if (v < 0) return kNoStepLimit;
  return static_cast<long>(v);
}

}  // namespace

double FaultPlan::compute_factor(int pipeline, int stage, Seconds now) const {
  double factor = 1.0;
  for (const auto& s : stragglers) {
    if (match(s.pipeline, pipeline) && match(s.stage, stage) &&
        in_time(s.t_begin, s.t_end, now)) {
      factor *= s.factor;
    }
  }
  return factor;
}

std::size_t FaultPlan::drop_count(int pipeline, int stage, int batch,
                                  int micro_batch, LinkDir dir,
                                  Seconds* penalty_per_drop) const {
  for (const auto& d : drops) {
    if (!match(d.pipeline, pipeline) || !match(d.stage, stage)) continue;
    if (d.probability <= 0.0) continue;
    const std::uint64_t key =
        sim_message_key(pipeline, stage, batch, micro_batch, dir);
    std::size_t lost = 0;
    while (lost < static_cast<std::size_t>(d.max_drops) &&
           hash_uniform(seed, key, static_cast<int>(lost)) < d.probability) {
      ++lost;
    }
    if (lost > 0 && penalty_per_drop != nullptr) {
      *penalty_per_drop = d.retry_timeout;
    }
    if (lost > 0) return lost;
  }
  return 0;
}

double FaultPlan::straggler_factor(int pipeline, int stage, long step) const {
  double factor = 1.0;
  for (const auto& s : stragglers) {
    if (match(s.pipeline, pipeline) && match(s.stage, stage) &&
        in_step(s.step_begin, s.step_end, step)) {
      factor *= s.factor;
    }
  }
  return factor;
}

Seconds FaultPlan::send_delay(int link, long step) const {
  Seconds delay = 0;
  for (const auto& l : link_degradations) {
    if (match(l.link, link) && in_step(l.step_begin, l.step_end, step)) {
      delay += l.extra_latency;
    }
  }
  return delay;
}

bool FaultPlan::should_drop(int pipeline, int stage, long step,
                            std::uint64_t key, int attempt,
                            Seconds* retry_timeout) const {
  for (const auto& d : drops) {
    if (!match(d.pipeline, pipeline) || !match(d.stage, stage)) continue;
    if (!in_step(d.step_begin, d.step_end, step)) continue;
    if (d.probability <= 0.0) continue;
    if (hash_uniform(seed, key, attempt) < d.probability) {
      if (retry_timeout != nullptr) *retry_timeout = d.retry_timeout;
      return true;
    }
  }
  return false;
}

const PipelineCrash* FaultPlan::crash_for(int pipeline) const {
  for (const auto& c : crashes) {
    if (c.pipeline == pipeline) return &c;
  }
  return nullptr;
}

bool FaultPlan::should_kill(int pipeline, int stage, long step,
                            int micro_batch) const {
  for (const auto& k : kills) {
    if (match(k.pipeline, pipeline) && match(k.stage, stage) &&
        k.step == step && match(k.micro_batch, micro_batch)) {
      return true;
    }
  }
  return false;
}

FaultPlan FaultPlan::parse_json(const std::string& text) {
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(number_or(text, "seed", 0));

  for (const auto& obj : array_objects(text, "stragglers")) {
    StragglerFault s;
    s.pipeline = static_cast<int>(number_or(obj, "pipeline", kAny));
    s.stage = static_cast<int>(number_or(obj, "stage", kAny));
    s.factor = number_or(obj, "factor", 1.0);
    AVGPIPE_CHECK(s.factor >= 1.0, "straggler factor must be >= 1, got "
                                       << s.factor);
    s.t_begin = seconds_or(obj, "t_begin", 0);
    s.t_end = seconds_or(obj, "t_end", kForever);
    s.step_begin = step_or(obj, "step_begin", 0);
    s.step_end = step_or(obj, "step_end", kNoStepLimit);
    plan.stragglers.push_back(s);
  }
  for (const auto& obj : array_objects(text, "link_degradations")) {
    LinkDegradation l;
    l.link = static_cast<int>(number_or(obj, "link", kAny));
    l.bandwidth_factor = number_or(obj, "bandwidth_factor", 1.0);
    AVGPIPE_CHECK(l.bandwidth_factor > 0.0 && l.bandwidth_factor <= 1.0,
                  "bandwidth_factor must be in (0,1], got "
                      << l.bandwidth_factor);
    l.extra_latency = seconds_or(obj, "extra_latency", 0);
    l.t_begin = seconds_or(obj, "t_begin", 0);
    l.t_end = seconds_or(obj, "t_end", kForever);
    l.step_begin = step_or(obj, "step_begin", 0);
    l.step_end = step_or(obj, "step_end", kNoStepLimit);
    plan.link_degradations.push_back(l);
  }
  for (const auto& obj : array_objects(text, "drops")) {
    MessageDrop d;
    d.pipeline = static_cast<int>(number_or(obj, "pipeline", kAny));
    d.stage = static_cast<int>(number_or(obj, "stage", kAny));
    d.probability = number_or(obj, "probability", 0.0);
    AVGPIPE_CHECK(d.probability >= 0.0 && d.probability <= 1.0,
                  "drop probability must be in [0,1], got " << d.probability);
    d.max_drops = static_cast<int>(number_or(obj, "max_drops", 3));
    d.retry_timeout = seconds_or(obj, "retry_timeout", 1e-3);
    d.step_begin = step_or(obj, "step_begin", 0);
    d.step_end = step_or(obj, "step_end", kNoStepLimit);
    plan.drops.push_back(d);
  }
  for (const auto& obj : array_objects(text, "crashes")) {
    PipelineCrash c;
    c.pipeline = static_cast<int>(number_or(obj, "pipeline", 0));
    c.t_crash = seconds_or(obj, "t_crash", kForever);
    c.t_rejoin = seconds_or(obj, "t_rejoin", kForever);
    AVGPIPE_CHECK(c.t_rejoin > c.t_crash || c.t_rejoin == kForever,
                  "rejoin must follow crash");
    c.resync_seconds = seconds_or(obj, "resync_seconds", 0);
    c.crash_at_step = static_cast<long>(number_or(obj, "crash_at_step", -1));
    c.rejoin_at_step = static_cast<long>(number_or(obj, "rejoin_at_step", -1));
    AVGPIPE_CHECK(c.rejoin_at_step < 0 || c.rejoin_at_step > c.crash_at_step,
                  "rejoin_at_step must follow crash_at_step");
    plan.crashes.push_back(c);
  }
  for (const auto& obj : array_objects(text, "kills")) {
    WorkerKill k;
    k.pipeline = static_cast<int>(number_or(obj, "pipeline", kAny));
    k.stage = static_cast<int>(number_or(obj, "stage", kAny));
    k.step = static_cast<long>(number_or(obj, "step", -1));
    AVGPIPE_CHECK(k.step >= 0, "worker kill needs a non-negative 'step'");
    k.micro_batch = static_cast<int>(number_or(obj, "micro_batch", kAny));
    plan.kills.push_back(k);
  }
  return plan;
}

FaultPlan FaultPlan::load_file(const std::string& path) {
  std::ifstream in(path);
  AVGPIPE_CHECK(static_cast<bool>(in), "cannot open fault plan: " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str());
}

namespace {

void write_step_window(std::ostream& os, long begin, long end) {
  os << ",\"step_begin\":" << begin << ",\"step_end\":"
     << (end == kNoStepLimit ? -1 : end);
}

void write_time_window(std::ostream& os, Seconds begin, Seconds end) {
  os << ",\"t_begin\":" << begin;
  if (end != kForever) os << ",\"t_end\":" << end;
}

}  // namespace

void FaultPlan::write_json(std::ostream& os) const {
  os << "{\"seed\":" << seed;
  os << ",\n\"stragglers\":[";
  for (std::size_t i = 0; i < stragglers.size(); ++i) {
    const auto& s = stragglers[i];
    os << (i ? ",\n " : "") << "{\"pipeline\":" << s.pipeline
       << ",\"stage\":" << s.stage << ",\"factor\":" << s.factor;
    write_time_window(os, s.t_begin, s.t_end);
    write_step_window(os, s.step_begin, s.step_end);
    os << "}";
  }
  os << "],\n\"link_degradations\":[";
  for (std::size_t i = 0; i < link_degradations.size(); ++i) {
    const auto& l = link_degradations[i];
    os << (i ? ",\n " : "") << "{\"link\":" << l.link
       << ",\"bandwidth_factor\":" << l.bandwidth_factor
       << ",\"extra_latency\":" << l.extra_latency;
    write_time_window(os, l.t_begin, l.t_end);
    write_step_window(os, l.step_begin, l.step_end);
    os << "}";
  }
  os << "],\n\"drops\":[";
  for (std::size_t i = 0; i < drops.size(); ++i) {
    const auto& d = drops[i];
    os << (i ? ",\n " : "") << "{\"pipeline\":" << d.pipeline
       << ",\"stage\":" << d.stage << ",\"probability\":" << d.probability
       << ",\"max_drops\":" << d.max_drops
       << ",\"retry_timeout\":" << d.retry_timeout;
    write_step_window(os, d.step_begin, d.step_end);
    os << "}";
  }
  os << "],\n\"crashes\":[";
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    const auto& c = crashes[i];
    os << (i ? ",\n " : "") << "{\"pipeline\":" << c.pipeline;
    if (c.t_crash != kForever) os << ",\"t_crash\":" << c.t_crash;
    if (c.t_rejoin != kForever) os << ",\"t_rejoin\":" << c.t_rejoin;
    os << ",\"resync_seconds\":" << c.resync_seconds
       << ",\"crash_at_step\":" << c.crash_at_step
       << ",\"rejoin_at_step\":" << c.rejoin_at_step << "}";
  }
  os << "],\n\"kills\":[";
  for (std::size_t i = 0; i < kills.size(); ++i) {
    const auto& k = kills[i];
    os << (i ? ",\n " : "") << "{\"pipeline\":" << k.pipeline
       << ",\"stage\":" << k.stage << ",\"step\":" << k.step
       << ",\"micro_batch\":" << k.micro_batch << "}";
  }
  os << "]}\n";
}

std::string FaultPlan::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

const FaultPlan* env_plan() {
  static std::once_flag once;
  static FaultPlan plan;
  static const FaultPlan* result = nullptr;
  std::call_once(once, [] {
    const std::string path = common::env_string("AVGPIPE_FAULT_PLAN", "");
    if (path.empty()) return;
    plan = FaultPlan::load_file(path);
    result = &plan;
  });
  return result;
}

// -- canonical fault scenarios ----------------------------------------------------

const char* to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kClean: return "clean";
    case ScenarioKind::kStragglers: return "stragglers";
    case ScenarioKind::kCrashRejoin: return "crash_rejoin";
    case ScenarioKind::kDegradedLinks: return "degraded_links";
  }
  return "?";
}

std::vector<ScenarioKind> all_scenarios() {
  return {ScenarioKind::kClean, ScenarioKind::kStragglers,
          ScenarioKind::kCrashRejoin, ScenarioKind::kDegradedLinks};
}

FaultPlan make_scenario(ScenarioKind kind, std::size_t pipelines,
                        std::uint64_t seed) {
  AVGPIPE_CHECK(pipelines >= 1, "need at least one pipeline");
  FaultPlan plan;
  plan.seed = seed;
  // The victim is always pipeline 1 so that pipeline 0 (the parity anchor in
  // the tests) stays healthy.
  const int victim = pipelines > 1 ? 1 : 0;
  switch (kind) {
    case ScenarioKind::kClean:
      break;
    case ScenarioKind::kStragglers: {
      StragglerFault s;
      s.pipeline = victim;
      s.stage = kAny;
      s.factor = 2.5;
      s.step_begin = 1;
      s.step_end = 9;  // a bounded slow phase, then recovery
      plan.stragglers.push_back(s);
      break;
    }
    case ScenarioKind::kCrashRejoin: {
      AVGPIPE_CHECK(pipelines >= 2,
                    "crash_rejoin needs >= 2 pipelines (crashing the only "
                    "one aborts training)");
      PipelineCrash c;
      c.pipeline = victim;
      c.crash_at_step = 3;   // detach before iteration 3
      c.rejoin_at_step = 7;  // rejoin (policy-reconstructed state) before 7
      plan.crashes.push_back(c);
      break;
    }
    case ScenarioKind::kDegradedLinks: {
      LinkDegradation d;
      d.link = kAny;
      d.bandwidth_factor = 0.5;
      d.extra_latency = 2e-4;
      d.step_begin = 1;
      plan.link_degradations.push_back(d);
      MessageDrop m;
      m.pipeline = kAny;
      m.stage = kAny;
      m.probability = 0.02;
      m.max_drops = 2;
      m.retry_timeout = 1e-4;
      m.step_begin = 1;
      plan.drops.push_back(m);
      break;
    }
  }
  return plan;
}

}  // namespace avgpipe::fault
