#pragma once

/// \file fault_plan.hpp
/// Deterministic, seeded fault descriptions consumed by both executors.
///
/// AvgPipe's elastic-averaging design couples parallel pipelines to the
/// reference model only through asynchronous message queues (paper §3.2), so
/// the system should degrade gracefully when one pipeline slows down, loses
/// messages, or dies outright — far better than tightly-synchronised
/// schemes, where one straggler stalls every peer at the next barrier. A
/// `FaultPlan` makes that claim testable: it is a declarative, seeded list
/// of faults that the discrete-event simulator consumes as first-class
/// events (bit-identical traces for a given seed) and the threaded runtime
/// consumes through an injection shim on its channels and worker loops.
///
/// Two clocks coexist deliberately. The simulator's faults are windowed in
/// *virtual seconds*; the threaded runtime and the elastic driver are
/// windowed in *steps* (train_batch / train_iteration indices), because wall
/// time is not reproducible. Every fault record carries both windows and
/// each executor reads the one that is meaningful to it.
///
/// All randomness (message drops) is derived by stateless hashing of
/// (seed, message identity, attempt) — never from a shared mutable RNG — so
/// the outcome of one fault cannot depend on event-processing order. This is
/// what makes a seeded plan produce bit-identical simulator traces.

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace avgpipe::fault {

/// Matches every index when a fault field is set to this.
constexpr int kAny = -1;
/// Open-ended window ends.
constexpr Seconds kForever = std::numeric_limits<Seconds>::infinity();
constexpr long kNoStepLimit = std::numeric_limits<long>::max();

/// Message direction, part of a message's identity for drop hashing.
enum class LinkDir : std::uint8_t { kActivation = 0, kGradient = 1 };

/// A slow pipeline/stage: compute runs `factor`x slower inside the window.
/// The simulator multiplies submitted work; the threaded runtime injects a
/// sleep of (factor-1) x the measured op duration after each affected op.
struct StragglerFault {
  int pipeline = kAny;
  int stage = kAny;
  double factor = 1.0;  ///< >= 1; 1 means no effect
  Seconds t_begin = 0, t_end = kForever;
  long step_begin = 0, step_end = kNoStepLimit;
};

/// A transiently degraded link between stages `link` and `link`+1.
struct LinkDegradation {
  int link = kAny;               ///< boundary index (stage k -> k+1)
  double bandwidth_factor = 1.0; ///< in (0, 1]; scales effective bandwidth
  Seconds extra_latency = 0;     ///< added per message
  Seconds t_begin = 0, t_end = kForever;
  long step_begin = 0, step_end = kNoStepLimit;
};

/// Probabilistic message loss on a sending stage's outbound boundary. Each
/// attempt is retried after `retry_timeout`; a message is never dropped more
/// than `max_drops` consecutive times in the simulator, while the runtime's
/// send shim gives up (fails the batch) after its own retry budget.
struct MessageDrop {
  int pipeline = kAny;
  int stage = kAny;          ///< sending stage
  double probability = 0.0;  ///< per-attempt drop probability
  int max_drops = 3;         ///< cap on consecutive losses per message
  Seconds retry_timeout = 1e-3;  ///< cost of one lost attempt
  long step_begin = 0, step_end = kNoStepLimit;
};

/// A whole pipeline dies and (optionally) comes back. The simulator uses the
/// virtual-time fields; the elastic driver uses the step fields and performs
/// the paper's own pull mechanism as recovery (re-init from the reference).
struct PipelineCrash {
  int pipeline = 0;
  Seconds t_crash = kForever;   ///< sim: streams stop issuing at this time
  Seconds t_rejoin = kForever;  ///< sim: streams resume (next whole batch)
  Seconds resync_seconds = 0;   ///< sim: cost of re-pulling the weights
  long crash_at_step = -1;      ///< driver: detach before this iteration
  long rejoin_at_step = -1;     ///< driver: rejoin before this iteration
};

/// A worker thread dies *mid-batch*: the first instruction matching
/// (pipeline, stage, micro_batch) executed at train step `step` throws
/// before running. Unlike PipelineCrash — a clean detach at an iteration
/// boundary — this kills the pipeline at an arbitrary point inside a batch,
/// leaving partial activations and gradient sums behind. The elastic driver
/// contains the thrown error like any worker failure (detach, and with
/// restore_on_failure a re-attach from the latest durable checkpoint); the
/// crash-recovery soak sweeps the crash point across stages and micro-
/// batches to show recovery is point-independent.
struct WorkerKill {
  int pipeline = kAny;
  int stage = kAny;
  long step = -1;          ///< train_batch index at which to die
  int micro_batch = kAny;  ///< crash point within the batch
};

/// The full declarative fault scenario.
class FaultPlan {
 public:
  std::uint64_t seed = 0;
  std::vector<StragglerFault> stragglers;
  std::vector<LinkDegradation> link_degradations;
  std::vector<MessageDrop> drops;
  std::vector<PipelineCrash> crashes;
  std::vector<WorkerKill> kills;

  /// True when the plan injects nothing; executors treat a null plan and an
  /// empty plan identically (the shim is zero-cost in both cases).
  bool empty() const {
    return stragglers.empty() && link_degradations.empty() && drops.empty() &&
           crashes.empty() && kills.empty();
  }

  // -- queries (sim: virtual-time windows) ----------------------------------

  /// Product of matching straggler factors at virtual time `now`.
  double compute_factor(int pipeline, int stage, Seconds now) const;

  /// Deterministic number of consecutive drops (0 = delivered first try) for
  /// one simulated message, independent of event order.
  std::size_t drop_count(int pipeline, int stage, int batch, int micro_batch,
                         LinkDir dir, Seconds* penalty_per_drop) const;

  // -- queries (runtime: step windows) --------------------------------------

  /// Product of matching straggler factors at step `step`.
  double straggler_factor(int pipeline, int stage, long step) const;

  /// Extra latency injected before a send on boundary `link` at `step`.
  Seconds send_delay(int link, long step) const;

  /// Whether send attempt `attempt` of the message identified by `key`
  /// should be dropped, and at what retry cost. Deterministic in
  /// (seed, key, attempt).
  bool should_drop(int pipeline, int stage, long step, std::uint64_t key,
                   int attempt, Seconds* retry_timeout) const;

  /// The crash record for `pipeline`, or nullptr.
  const PipelineCrash* crash_for(int pipeline) const;

  /// Whether an instruction at (pipeline, stage, step, micro_batch) matches
  /// a WorkerKill record — the runtime throws before running it.
  bool should_kill(int pipeline, int stage, long step, int micro_batch) const;

  // -- serialisation --------------------------------------------------------

  /// Parse the JSON plan format (see DESIGN.md "Fault model & recovery").
  /// Throws avgpipe::Error on malformed input.
  static FaultPlan parse_json(const std::string& text);
  static FaultPlan load_file(const std::string& path);
  void write_json(std::ostream& os) const;
  std::string to_json() const;
};

/// Process-wide plan from the AVGPIPE_FAULT_PLAN environment variable (a
/// file path), loaded once. Returns nullptr when unset; a malformed file is
/// a hard error (a CI fault job must not silently run fault-free).
const FaultPlan* env_plan();

// -- canonical fault scenarios (statistical-efficiency matrix) ----------------

/// The adversity classes the sync-policy scenario matrix sweeps. Each maps to
/// a deterministic, step-windowed `FaultPlan` via `make_scenario`, so every
/// policy faces the *same* adversity for a given (scenario, pipelines, seed).
enum class ScenarioKind : std::uint8_t {
  kClean = 0,      ///< no faults (the statistical-efficiency baseline)
  kStragglers,     ///< one pipeline computes 2.5x slower mid-run
  kCrashRejoin,    ///< one pipeline dies and rejoins (needs >= 2 pipelines)
  kDegradedLinks,  ///< all inter-stage links slow + mildly lossy
};

const char* to_string(ScenarioKind kind);
std::vector<ScenarioKind> all_scenarios();

/// Build the canonical plan for `kind` over a system of `pipelines`
/// pipelines. Deterministic in its arguments; `seed` only feeds the drop
/// hashing. kCrashRejoin requires pipelines >= 2 (crashing the only pipeline
/// would abort training rather than degrade it).
FaultPlan make_scenario(ScenarioKind kind, std::size_t pipelines,
                        std::uint64_t seed);

}  // namespace avgpipe::fault
