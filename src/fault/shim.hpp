#pragma once

/// \file shim.hpp
/// Runtime-side injection/resilience helpers around `FaultPlan`.
///
/// The threaded runtime cannot replay a fault plan as scheduled events the
/// way the simulator does; instead its channels and worker loops consult
/// these helpers at each send/recv/op. Everything here is branch-cheap and
/// guarded by `plan == nullptr || plan->empty()` at the call sites, so an
/// empty plan costs nothing on the hot path.

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "fault/fault_plan.hpp"

namespace avgpipe::fault {

/// Per-pipeline liveness record kept by the elastic driver (core::AvgPipe).
/// `last_ok_step` is the heartbeat: the last iteration the pipeline finished
/// a batch; `failures` counts batches it failed (worker exception, link
/// declared dead, or injected crash).
struct PipelineHealth {
  bool alive = true;
  long last_ok_step = -1;
  std::size_t failures = 0;
  std::string last_error;
};

/// Exponential backoff schedule for a bounded-queue pop with timeout: the
/// waiter polls with a growing per-attempt timeout until an overall deadline
/// elapses, then declares the peer unresponsive.
class Backoff {
 public:
  /// \param initial first wait quantum; doubles each attempt.
  /// \param max_wait per-attempt cap.
  /// \param deadline total budget across attempts.
  Backoff(Seconds initial, Seconds max_wait, Seconds deadline)
      : next_(initial), max_(max_wait), remaining_(deadline) {}

  /// Whether the budget allows another attempt.
  bool can_retry() const { return remaining_ > 0; }

  /// The next attempt's timeout; advances the schedule.
  Seconds next_timeout() {
    const Seconds t = next_ < remaining_ ? next_ : remaining_;
    remaining_ -= t;
    if (next_ < max_) next_ = next_ * 2 < max_ ? next_ * 2 : max_;
    ++attempts_;
    return t;
  }

  std::size_t attempts() const { return attempts_; }

 private:
  Seconds next_;
  Seconds max_;
  Seconds remaining_;
  std::size_t attempts_ = 0;
};

/// Identity of one runtime boundary message, for deterministic drop hashing:
/// (step, micro-batch, sending stage, direction) pins the message uniquely
/// within a pipeline.
std::uint64_t message_key(long step, int micro_batch, int stage, LinkDir dir);

/// Sleep for `seconds` of wall time (no-op for non-positive values).
void sleep_for(Seconds seconds);

}  // namespace avgpipe::fault
