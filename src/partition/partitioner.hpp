#pragma once

/// \file partitioner.hpp
/// Model partitioning across pipeline stages.
///
/// The paper reuses PipeDream's partitioner (§6: "we employ the existing
/// method used in PipeDream") rather than inventing a new one, and so do we:
/// a dynamic program over contiguous layer ranges that minimises the
/// bottleneck stage cost, where a stage's cost is its compute time plus the
/// time to receive its input activation over the link feeding it. A uniform
/// (equal-layer-count) partitioner is provided as a baseline for tests.

#include <vector>

#include "workloads/cluster.hpp"
#include "workloads/profile.hpp"

namespace avgpipe::partition {

/// A partition of L layers into K contiguous stages.
struct Partition {
  /// stage_begin[k] is the first layer of stage k; stage k covers
  /// [stage_begin[k], stage_begin[k+1]) with stage_begin[K] == L implied.
  std::vector<std::size_t> stage_begin;
  std::size_t num_layers = 0;

  std::size_t num_stages() const { return stage_begin.size(); }
  std::size_t begin_of(std::size_t stage) const { return stage_begin.at(stage); }
  std::size_t end_of(std::size_t stage) const {
    return stage + 1 < stage_begin.size() ? stage_begin[stage + 1] : num_layers;
  }
};

/// Cost of the bottleneck stage (seconds per sample) under the PipeDream
/// objective; used by tests to compare DP against brute force.
double bottleneck_cost(const workloads::WorkloadProfile& w,
                       const workloads::ClusterSpec& cluster,
                       const Partition& p);

/// PipeDream DP partitioner: contiguous layers, K stages, minimise the
/// bottleneck of (stage compute + inbound activation comm) per sample.
Partition pipedream_partition(const workloads::WorkloadProfile& w,
                              const workloads::ClusterSpec& cluster,
                              std::size_t num_stages);

/// Baseline: equal layer counts per stage.
Partition uniform_partition(std::size_t num_layers, std::size_t num_stages);

/// Per-stage cost summary for diagnostics and the simulator.
struct StageCost {
  Flops fwd_flops_per_sample = 0;
  Bytes boundary_act_bytes_per_sample = 0;  ///< output activation of stage
  Bytes stash_bytes_per_sample = 0;
  Bytes param_bytes = 0;
  /// Parameter bytes whose gradients/optimizer state are dense (see
  /// LayerProfile::dense_state_fraction).
  Bytes dense_state_bytes = 0;
};

/// Aggregate layer profiles into per-stage costs under a partition.
std::vector<StageCost> stage_costs(const workloads::WorkloadProfile& w,
                                   const Partition& p);

}  // namespace avgpipe::partition
