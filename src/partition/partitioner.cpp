#include "partition/partitioner.hpp"

#include <algorithm>
#include <limits>

namespace avgpipe::partition {

namespace {

/// Compute time of layers [lo, hi) per sample: forward + 2x backward.
double compute_seconds(const workloads::WorkloadProfile& w,
                       const workloads::ClusterSpec& cluster, std::size_t lo,
                       std::size_t hi) {
  Flops f = 0;
  for (std::size_t i = lo; i < hi; ++i) f += w.layers[i].fwd_flops_per_sample;
  return 3.0 * f / cluster.gpu.peak_flops;
}

/// Inbound comm time per sample for a stage whose first layer is `lo`,
/// placed as stage `k` (link from GPU k-1 to GPU k).
double comm_seconds(const workloads::WorkloadProfile& w,
                    const workloads::ClusterSpec& cluster, std::size_t lo,
                    std::size_t k) {
  if (k == 0 || lo == 0) return 0.0;
  const Bytes bytes = w.layers[lo - 1].activation_bytes_per_sample;
  // Activation forward + gradient backward cross the same link.
  return 2.0 * bytes / cluster.link_between(k - 1, k).bandwidth_bytes_per_s;
}

}  // namespace

double bottleneck_cost(const workloads::WorkloadProfile& w,
                       const workloads::ClusterSpec& cluster,
                       const Partition& p) {
  double worst = 0.0;
  for (std::size_t k = 0; k < p.num_stages(); ++k) {
    // Communication overlaps the compute of other micro-batches in a
    // pipeline, so a stage is bound by the slower of the two, not their sum
    // (this is what makes PipeDream-style partitions balanced even over
    // slow Ethernet links).
    const double cost =
        std::max(compute_seconds(w, cluster, p.begin_of(k), p.end_of(k)),
                 comm_seconds(w, cluster, p.begin_of(k), k));
    worst = std::max(worst, cost);
  }
  return worst;
}

Partition pipedream_partition(const workloads::WorkloadProfile& w,
                              const workloads::ClusterSpec& cluster,
                              std::size_t num_stages) {
  const std::size_t L = w.layers.size();
  AVGPIPE_CHECK(num_stages >= 1 && num_stages <= L,
                "cannot split " << L << " layers into " << num_stages
                                << " stages");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  using Cost = std::pair<double, double>;  // (bottleneck, compute bottleneck)

  // best[k][i]: minimal cost when layers [0, i) form stages [0, k].
  // choice[k][i]: start layer of stage k in the optimum.
  std::vector<std::vector<Cost>> best(
      num_stages, std::vector<Cost>(L + 1, {kInf, kInf}));
  std::vector<std::vector<std::size_t>> choice(
      num_stages, std::vector<std::size_t>(L + 1, 0));

  for (std::size_t i = 1; i <= L; ++i) {
    const double c = compute_seconds(w, cluster, 0, i);
    best[0][i] = {c, c};
  }
  for (std::size_t k = 1; k < num_stages; ++k) {
    for (std::size_t i = k + 1; i <= L; ++i) {
      for (std::size_t j = k; j < i; ++j) {  // stage k covers [j, i)
        if (best[k - 1][j].first == kInf) continue;
        const double comp = compute_seconds(w, cluster, j, i);
        const double stage = std::max(comp, comm_seconds(w, cluster, j, k));
        const Cost cand{std::max(best[k - 1][j].first, stage),
                        std::max(best[k - 1][j].second, comp)};
        if (cand < best[k][i]) {
          best[k][i] = cand;
          choice[k][i] = j;
        }
      }
    }
  }

  Partition p;
  p.num_layers = L;
  p.stage_begin.assign(num_stages, 0);
  std::size_t end = L;
  for (std::size_t k = num_stages; k-- > 1;) {
    p.stage_begin[k] = choice[k][end];
    end = p.stage_begin[k];
  }
  p.stage_begin[0] = 0;
  return p;
}

Partition uniform_partition(std::size_t num_layers, std::size_t num_stages) {
  AVGPIPE_CHECK(num_stages >= 1 && num_stages <= num_layers,
                "cannot split " << num_layers << " layers into " << num_stages
                                << " stages");
  Partition p;
  p.num_layers = num_layers;
  p.stage_begin.reserve(num_stages);
  for (std::size_t k = 0; k < num_stages; ++k) {
    p.stage_begin.push_back(k * num_layers / num_stages);
  }
  return p;
}

std::vector<StageCost> stage_costs(const workloads::WorkloadProfile& w,
                                   const Partition& p) {
  AVGPIPE_CHECK(p.num_layers == w.layers.size(),
                "partition/profile layer count mismatch");
  std::vector<StageCost> costs(p.num_stages());
  for (std::size_t k = 0; k < p.num_stages(); ++k) {
    StageCost& c = costs[k];
    for (std::size_t i = p.begin_of(k); i < p.end_of(k); ++i) {
      const auto& l = w.layers[i];
      c.fwd_flops_per_sample += l.fwd_flops_per_sample;
      c.stash_bytes_per_sample += l.stash_bytes_per_sample;
      c.param_bytes += l.param_bytes;
      c.dense_state_bytes += l.param_bytes * l.dense_state_fraction;
    }
    const std::size_t last = p.end_of(k);
    AVGPIPE_CHECK(last > p.begin_of(k), "empty stage " << k);
    c.boundary_act_bytes_per_sample =
        w.layers[last - 1].activation_bytes_per_sample;
  }
  return costs;
}

}  // namespace avgpipe::partition
