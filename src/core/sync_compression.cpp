#include "core/sync_compression.hpp"

#include <string>

#include "common/check.hpp"
#include "common/env.hpp"

namespace avgpipe::core {

bool parse_sync_compression(std::string_view s, SyncCompression* out) {
  tensor::Codec codec;
  if (!tensor::codec_from_string(s, &codec)) return false;
  out->codec = codec;
  return true;
}

SyncCompression sync_compression_from_env(SyncCompression configured) {
  const std::string env = common::env_string("AVGPIPE_SYNC_COMPRESS", "");
  if (env.empty()) return configured;
  SyncCompression forced = configured;
  AVGPIPE_CHECK(parse_sync_compression(env, &forced),
                "AVGPIPE_SYNC_COMPRESS='"
                    << env << "' (expected off, none, fp16 or int8)");
  return forced;
}

SyncCodec::Stats SyncCodec::transmit(ParamSet& params) {
  Stats stats;
  for (const auto& t : params) {
    const std::size_t n = t.numel();
    stats.raw_bytes += n * sizeof(tensor::Scalar);
    stats.wire_bytes += tensor::codec_wire_bytes(config_.codec, n);
  }
  if (!enabled()) return stats;
  if (config_.error_feedback && residuals_.size() != params.size()) {
    AVGPIPE_CHECK(residuals_.empty(),
                  "sync codec: stream went from " << residuals_.size()
                                                  << " tensors to "
                                                  << params.size());
    residuals_.reserve(params.size());
    for (const auto& t : params) {
      residuals_.push_back(tensor::Tensor::zeros(t.shape()));
    }
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto xv = params[i].data();
    if (config_.error_feedback) {
      auto rv = residuals_[i].data();
      AVGPIPE_CHECK(rv.size() == xv.size(),
                    "sync codec: tensor " << i << " changed size");
      // Fold the carried error in, remember the compensated payload, then
      // keep the part the codec dropped: r' = (x + r) − dequant(quant(x + r)).
      for (std::size_t j = 0; j < xv.size(); ++j) {
        xv[j] += rv[j];
        rv[j] = xv[j];
      }
      tensor::codec_roundtrip(config_.codec, xv.data(), xv.size());
      for (std::size_t j = 0; j < xv.size(); ++j) rv[j] -= xv[j];
    } else {
      tensor::codec_roundtrip(config_.codec, xv.data(), xv.size());
    }
  }
  return stats;
}

}  // namespace avgpipe::core
