#pragma once

/// \file sync_compression.hpp
/// Lossy compression of the elastic sync transport, with error feedback.
///
/// Compression is modelled at the *transmission boundary*: a `SyncCodec`
/// owns one direction of one stream (a replica's pushes, or the reference's
/// broadcast pulls) and `transmit()` replaces each parameter set in place
/// with its quantize→dequantize round trip — exactly the values the far end
/// of a compressed wire would decode. The transport between the boundaries
/// (queues, `apply_round_batch`, the snapshot handle) keeps moving plain f64
/// tensors, so every policy and the whole apply machinery run unchanged;
/// only codec-rounded values ever cross a boundary, which is precisely the
/// semantics of a real compressed link.
///
/// Error feedback (EF-SGD style): each codec keeps a per-tensor residual
/// r = original − dequantized, added back to the next payload before it is
/// quantized, so quantization error accumulates into later transmissions
/// instead of being lost — the standard fix that keeps lossy sync
/// converging. Residuals are durable state: they ride along in checkpoints
/// (`ckpt::TrainState`) so a restored run resumes bit-identically.
///
/// `Codec::kNone` short-circuits `transmit` into a no-op, which is why the
/// `off` configuration preserves every existing bit-parity gate exactly.

#include <cstdint>
#include <string_view>

#include "core/elastic.hpp"
#include "tensor/quantize.hpp"

namespace avgpipe::core {

/// Sync-transport compression configuration (AvgPipeConfig::sync_compression,
/// env override AVGPIPE_SYNC_COMPRESS={off,fp16,int8}).
struct SyncCompression {
  tensor::Codec codec = tensor::Codec::kNone;
  /// Keep a residual accumulator per tensor and fold it into the next
  /// transmission (EF-SGD). On by default; turning it off makes each
  /// transmission independently lossy.
  bool error_feedback = true;

  bool enabled() const { return codec != tensor::Codec::kNone; }
};

/// Parse "off" / "none" / "fp16" / "int8". Returns false on anything else.
bool parse_sync_compression(std::string_view s, SyncCompression* out);

/// Resolve `configured` against the AVGPIPE_SYNC_COMPRESS environment
/// variable: when the variable is set (and parses) it wins, so CI can force
/// the compressed path through binaries built with default configs. Tests
/// that *require* a specific mode should bypass this and set the config
/// directly on the component under test.
SyncCompression sync_compression_from_env(SyncCompression configured);

/// One direction of one compressed stream: applies the codec round trip to
/// each transmitted ParamSet and carries that stream's EF residuals.
/// Not thread-safe; each instance has a single owning thread at a time
/// (a replica worker / the driver, or the reference thread).
class SyncCodec {
 public:
  struct Stats {
    std::uint64_t raw_bytes = 0;   ///< payload size as raw f64
    std::uint64_t wire_bytes = 0;  ///< payload size under the codec
  };

  SyncCodec() = default;
  explicit SyncCodec(SyncCompression config) : config_(config) {}

  const SyncCompression& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  /// Degrade `params` in place to what the far end of the wire would decode
  /// (adding the carried residual first, then re-deriving it). No-op when
  /// the codec is off — then Stats reports raw == wire. Tensor count and
  /// shapes must stay stable across calls (residuals are per-position).
  Stats transmit(ParamSet& params);

  /// EF residual accumulators, one per transmitted tensor (empty until the
  /// first lossy transmit, and always empty when EF is off). Exposed for
  /// checkpoint capture/restore.
  const ParamSet& residuals() const { return residuals_; }
  void set_residuals(ParamSet residuals) { residuals_ = std::move(residuals); }
  void reset_residuals() { residuals_.clear(); }

 private:
  SyncCompression config_;
  ParamSet residuals_;
};

}  // namespace avgpipe::core
