#include "core/elastic.hpp"

#include <algorithm>
#include <span>

#include "common/check.hpp"

namespace avgpipe::core {

ParamSet clone_values(const std::vector<tensor::Variable>& params) {
  ParamSet out;
  out.reserve(params.size());
  for (const auto& p : params) out.push_back(p.value().clone());
  return out;
}

void add_scaled(ParamSet& dst, const ParamSet& src, double scale) {
  AVGPIPE_CHECK(dst.size() == src.size(), "param set size mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i].axpy_(scale, src[i]);
}

ParamSet difference(const std::vector<tensor::Variable>& params,
                    const ParamSet& reference) {
  AVGPIPE_CHECK(params.size() == reference.size(), "param set size mismatch");
  ParamSet out;
  out.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    tensor::Tensor d = params[i].value().clone();
    d.axpy_(-1.0, reference[i]);
    out.push_back(std::move(d));
  }
  return out;
}

double max_abs_diff(const ParamSet& a, const ParamSet& b) {
  AVGPIPE_CHECK(a.size() == b.size(), "param set size mismatch");
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, a[i].max_abs_diff(b[i]));
  }
  return m;
}

double default_alpha(std::size_t num_pipelines) {
  AVGPIPE_CHECK(num_pipelines >= 1, "need at least one pipeline");
  // α = 1/N per the paper; a single pipeline needs no pull (α = 1 would
  // reset the replica to the reference every iteration).
  if (num_pipelines == 1) return 0.0;
  return 1.0 / static_cast<double>(num_pipelines);
}

void elastic_pull(std::vector<tensor::Variable>& params,
                  const ParamSet& reference, double alpha) {
  AVGPIPE_CHECK(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");
  AVGPIPE_CHECK(params.size() == reference.size(), "param set size mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    // x <- (1-alpha) x + alpha ref
    params[i].value().lerp_(reference[i], alpha);
  }
}

ParamSet elastic_pull_push(std::vector<tensor::Variable>& params,
                           const ParamSet& reference, double alpha) {
  AVGPIPE_CHECK(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");
  AVGPIPE_CHECK(params.size() == reference.size(), "param set size mismatch");
  ParamSet updates;
  updates.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    tensor::Tensor& x = params[i].value();
    const tensor::Tensor& ref = reference[i];
    AVGPIPE_CHECK(x.numel() == ref.numel(), "param/reference numel mismatch");
    tensor::Tensor u = tensor::Tensor::uninitialized(x.shape());
    auto xv = x.data();
    const auto rv = ref.data();
    auto uv = u.data();
    for (std::size_t j = 0; j < xv.size(); ++j) {
      const tensor::Scalar xn = xv[j] + alpha * (rv[j] - xv[j]);
      xv[j] = xn;
      uv[j] = xn + (-1.0) * rv[j];  // matches difference()'s axpy_ rounding
    }
    updates.push_back(std::move(u));
  }
  return updates;
}

ReferenceModel::ReferenceModel(ParamSet initial)
    : params_(std::move(initial)) {
  accum_.reserve(params_.size());
  for (const auto& p : params_) accum_.emplace_back(p.shape());
}

void ReferenceModel::accumulate(const ParamSet& update) {
  add_scaled(accum_, update, 1.0);
  ++pending_;
}

void ReferenceModel::pull_and_accumulate(std::vector<tensor::Variable>& params,
                                         double alpha) {
  AVGPIPE_CHECK(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");
  AVGPIPE_CHECK(params.size() == params_.size(), "param set size mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    tensor::Tensor& x = params[i].value();
    AVGPIPE_CHECK(x.numel() == params_[i].numel(),
                  "param/reference numel mismatch");
    auto xv = x.data();
    const auto rv = params_[i].data();
    auto av = accum_[i].data();
    for (std::size_t j = 0; j < xv.size(); ++j) {
      const tensor::Scalar xn = xv[j] + alpha * (rv[j] - xv[j]);
      xv[j] = xn;
      av[j] += 1.0 * (xn + (-1.0) * rv[j]);  // matches add_scaled's axpy_
    }
  }
  ++pending_;
}

std::size_t ReferenceModel::apply_accumulated(std::size_t n) {
  AVGPIPE_CHECK(n >= 1, "normalisation count must be positive");
  const std::size_t applied = pending_;
  const double scale = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i].axpy_(scale, accum_[i]);
    accum_[i].zero_();
  }
  pending_ = 0;
  return applied;
}

void ReferenceModel::apply_round_batch(
    const std::vector<std::vector<ParamSet>>& rounds) {
  AVGPIPE_CHECK(pending_ == 0,
                "batched apply must not interleave with a partial round");
  for (const auto& round : rounds) {
    AVGPIPE_CHECK(!round.empty(), "batched apply: empty round");
    for (const auto& update : round) {
      AVGPIPE_CHECK(update.size() == params_.size(),
                    "param set size mismatch");
    }
  }
  std::vector<std::span<const tensor::Scalar>> views;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto pv = params_[i].data();
    // Flatten the batch's update views for this parameter once; per round,
    // `scale * (u_1[j] + u_2[j] + …)` replays accumulate's `+= 1.0 * u[j]`
    // into a zeroed accumulator followed by apply's `+= scale * acc`, so
    // each round folds with the exact rounding of the sequential path.
    views.clear();
    for (const auto& round : rounds) {
      for (const auto& update : round) {
        AVGPIPE_CHECK(update[i].numel() == params_[i].numel(),
                      "update/reference numel mismatch");
        views.push_back(update[i].data());
      }
    }
    for (std::size_t j = 0; j < pv.size(); ++j) {
      tensor::Scalar v = pv[j];
      std::size_t u = 0;
      for (const auto& round : rounds) {
        tensor::Scalar acc = 0.0;
        for (std::size_t r = 0; r < round.size(); ++r) {
          acc += 1.0 * views[u++][j];
        }
        v += (1.0 / static_cast<double>(round.size())) * acc;
      }
      pv[j] = v;
    }
  }
}

ParamSet ReferenceModel::snapshot() const {
  ParamSet out;
  out.reserve(params_.size());
  for (const auto& p : params_) out.push_back(p.clone());
  return out;
}

}  // namespace avgpipe::core
