#include "core/sync_policy.hpp"

#include "common/check.hpp"

namespace avgpipe::core {

common::Role& reference_capability() {
  // One process-wide phantom capability: it carries no runtime state, it is
  // only a name the thread-safety analysis can track across translation
  // units. Function-local static so the reference is valid at any point of
  // static initialisation.
  static common::Role role;
  return role;
}

std::string to_string(SyncPolicyKind kind) {
  switch (kind) {
    case SyncPolicyKind::kElastic: return "elastic";
    case SyncPolicyKind::kBsp: return "bsp";
    case SyncPolicyKind::kBmuf: return "bmuf";
    case SyncPolicyKind::kXPipe: return "xpipe";
  }
  return "?";
}

SyncPolicyConfig degenerate_config(SyncPolicyKind kind) {
  SyncPolicyConfig cfg;
  cfg.kind = kind;
  switch (kind) {
    case SyncPolicyKind::kElastic:
    case SyncPolicyKind::kBsp:
      // α = 0 at N = 1 (driver default) / exact mean assignment at n = 1.
      break;
    case SyncPolicyKind::kBmuf:
      // W(t) = mean(x_i) exactly (filter_apply's assignment fast path).
      cfg.block_momentum = 0.0;
      cfg.block_lr = 1.0;
      break;
    case SyncPolicyKind::kXPipe:
      // Elastic degenerate plus prediction off: ŵ = w.
      cfg.prediction_lookahead = 0.0;
      break;
  }
  return cfg;
}

void SyncPolicy::begin_round(std::vector<tensor::Variable>& /*params*/,
                             const ParamSet& /*broadcast*/) const {}

void SyncPolicy::import_state(std::vector<tensor::Tensor> state) {
  AVGPIPE_CHECK(state.empty(), "policy '" << name() << "' is stateless but "
                                          << state.size()
                                          << " state tensors were restored");
}

ParamSet SyncPolicy::make_broadcast(const ReferenceModel& reference) const {
  return reference.snapshot();
}

void SyncPolicy::apply_rounds(ReferenceModel& reference,
                              const std::vector<std::vector<ParamSet>>& rounds) {
  for (const auto& round : rounds) apply_round(reference, round);
}

void SyncPolicy::serial_round(
    ReferenceModel& reference,
    std::vector<std::vector<tensor::Variable>>& replicas, double alpha) {
  std::vector<ParamSet> round;
  round.reserve(replicas.size());
  for (auto& params : replicas) {
    // The BSP-family local_sync ignores the broadcast (it only clones), so
    // passing the live reference values is safe here; elastic overrides the
    // whole method with its fused path.
    round.push_back(local_sync(params, reference.params(), alpha));
  }
  apply_round(reference, round);
}

namespace {

/// Mean of the round's parameter sets into `dst`. n = 1 assigns exactly
/// (copy_from) rather than via zero + axpy, so a lone replica round-trips
/// bit-identically — the parity gate's foundation for BSP and BMUF.
void round_mean(ParamSet& dst, const std::vector<ParamSet>& round) {
  AVGPIPE_CHECK(!round.empty(), "empty round");
  for (const auto& r : round) {
    AVGPIPE_CHECK(r.size() == dst.size(), "round/reference size mismatch");
  }
  if (round.size() == 1) {
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i].copy_from(round[0][i]);
    }
    return;
  }
  const double inv_n = 1.0 / static_cast<double>(round.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i].zero_();
    for (const auto& r : round) dst[i].axpy_(1.0, r[i]);
    dst[i].scale_(inv_n);
  }
}

/// The paper's elastic averaging: pull/push against the broadcast, reference
/// accumulates the updates — exactly the pre-refactor behaviour.
class ElasticPolicy : public SyncPolicy {
 public:
  using SyncPolicy::SyncPolicy;
  std::string name() const override { return "elastic"; }

  ParamSet local_sync(std::vector<tensor::Variable>& params,
                      const ParamSet& broadcast,
                      double alpha) const override {
    return elastic_pull_push(params, broadcast, alpha);
  }

  void apply_round(ReferenceModel& reference,
                   const std::vector<ParamSet>& round)
      REQUIRES(reference_capability()) override {
    for (const auto& update : round) reference.accumulate(update);
    reference.apply_accumulated(round.size());
  }

  void apply_rounds(ReferenceModel& reference,
                    const std::vector<std::vector<ParamSet>>& rounds)
      REQUIRES(reference_capability()) override {
    // Fused sweep: bit-identical to the sequential apply_round loop but one
    // pass over the reference weights per batch (XPipe inherits this too).
    reference.apply_round_batch(rounds);
  }

  void serial_round(ReferenceModel& reference,
                    std::vector<std::vector<tensor::Variable>>& replicas,
                    double alpha) REQUIRES(reference_capability()) override {
    // Fused ❷+❸+❹ against the live reference (no snapshot clone, no update
    // materialisation) — bit-identical to local_sync + apply_round.
    for (auto& params : replicas) {
      reference.pull_and_accumulate(params, alpha);
    }
    reference.apply_accumulated(replicas.size());
  }
};

/// BSP model averaging: every round restarts each replica from the broadcast
/// and the reference becomes the plain mean of the trained replicas.
class BspPolicy : public SyncPolicy {
 public:
  using SyncPolicy::SyncPolicy;
  std::string name() const override { return "bsp"; }

  bool needs_begin() const override { return true; }

  void begin_round(std::vector<tensor::Variable>& params,
                   const ParamSet& broadcast) const override {
    AVGPIPE_CHECK(params.size() == broadcast.size(),
                  "replica/broadcast size mismatch");
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i].value().copy_from(broadcast[i]);
    }
  }

  ParamSet local_sync(std::vector<tensor::Variable>& params,
                      const ParamSet& /*broadcast*/,
                      double /*alpha*/) const override {
    // Ship the trained weights; the replica itself is untouched (it restarts
    // from the next broadcast anyway).
    ParamSet out;
    out.reserve(params.size());
    for (const auto& p : params) out.push_back(p.value().clone());
    return out;
  }

  void apply_round(ReferenceModel& reference,
                   const std::vector<ParamSet>& round)
      REQUIRES(reference_capability()) override {
    round_mean(reference.mutable_params(), round);
  }
};

/// BMUF: BSP's restart protocol, but the reference filters the block delta
/// through `optim::BlockMomentum` and (optionally) broadcasts the Nesterov
/// restart point W + η·Δ.
class BmufPolicy : public BspPolicy {
 public:
  explicit BmufPolicy(SyncPolicyConfig config)
      : BspPolicy(config),
        momentum_(config.block_momentum,
                  config.block_lr > 0.0 ? config.block_lr
                                        : 1.0 - config.block_momentum) {}

  std::string name() const override { return "bmuf"; }

  void apply_round(ReferenceModel& reference,
                   const std::vector<ParamSet>& round)
      REQUIRES(reference_capability()) override {
    if (mean_.empty()) mean_ = reference.snapshot();  // shape donor
    round_mean(mean_, round);
    momentum_.filter_apply(reference.mutable_params(), mean_);
  }

  ParamSet make_broadcast(const ReferenceModel& reference) const
      REQUIRES(reference_capability()) override {
    ParamSet out = reference.snapshot();
    if (config_.nesterov_restart) momentum_.add_restart_offset(out);
    return out;
  }

  const optim::BlockMomentum& momentum() const
      REQUIRES(reference_capability()) {
    return momentum_;
  }

  std::vector<tensor::Tensor> export_state() const
      REQUIRES(reference_capability()) override {
    std::vector<tensor::Tensor> out;
    out.reserve(momentum_.delta().size());
    for (const auto& d : momentum_.delta()) out.push_back(d.clone());
    return out;
  }

  void import_state(std::vector<tensor::Tensor> state)
      REQUIRES(reference_capability()) override {
    momentum_.set_delta(std::move(state));
  }

 private:
  // The analysis proves these are only touched from reference-side hooks —
  // the data-race freedom DESIGN.md §13 used to assert by prose alone.
  optim::BlockMomentum momentum_ GUARDED_BY(reference_capability());
  ParamSet mean_ GUARDED_BY(reference_capability());  ///< block-mean scratch
};

/// XPipe: elastic coupling across replicas; the runtime layer additionally
/// runs each stage's compute on predicted weights (PredictionConfig wired by
/// AvgPipe::make_runtime from this policy's config).
class XPipePolicy : public ElasticPolicy {
 public:
  using ElasticPolicy::ElasticPolicy;
  std::string name() const override { return "xpipe"; }
};

}  // namespace

std::unique_ptr<SyncPolicy> make_sync_policy(const SyncPolicyConfig& config) {
  switch (config.kind) {
    case SyncPolicyKind::kElastic:
      return std::make_unique<ElasticPolicy>(config);
    case SyncPolicyKind::kBsp:
      return std::make_unique<BspPolicy>(config);
    case SyncPolicyKind::kBmuf:
      return std::make_unique<BmufPolicy>(config);
    case SyncPolicyKind::kXPipe:
      return std::make_unique<XPipePolicy>(config);
  }
  AVGPIPE_THROW("unknown sync policy kind");
}

std::vector<SyncPolicyKind> all_sync_policies() {
  return {SyncPolicyKind::kElastic, SyncPolicyKind::kBsp,
          SyncPolicyKind::kBmuf, SyncPolicyKind::kXPipe};
}

}  // namespace avgpipe::core
