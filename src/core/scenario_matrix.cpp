#include "core/scenario_matrix.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/check.hpp"
#include "core/avgpipe.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "runtime/semantics.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"

namespace avgpipe::core {

namespace {

nn::ModelFactory matrix_model(const MatrixSpec& spec) {
  return [spec](std::uint64_t seed) {
    return nn::make_mlp(spec.features, spec.hidden, spec.depth, spec.classes,
                        seed);
  };
}

runtime::OptimizerFactory matrix_optimizer(const MatrixSpec& spec) {
  const double lr = spec.lr;
  return [lr](std::vector<tensor::Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), lr);
  };
}

double elapsed_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

CellResult run_cell(const MatrixSpec& spec, SyncPolicyKind policy,
                    fault::ScenarioKind scenario,
                    SyncCompression compression) {
  CellResult cell;
  cell.policy = policy;
  cell.scenario = scenario;
  cell.codec = compression.codec;
  cell.label = to_string(policy);
  if (compression.enabled()) {
    cell.label += std::string("[") + tensor::to_string(compression.codec) +
                  "]";
  }

  data::SyntheticFeatures ds(spec.samples, spec.features, spec.classes,
                             spec.seed, spec.noise);
  data::DataLoader loader(ds, spec.batch_size, spec.seed + 1);
  const fault::FaultPlan plan =
      fault::make_scenario(scenario, spec.pipelines, spec.seed);

  // Only compressed cells pay for a tracer (the byte counters are all we
  // read from it).
  trace::Tracer tracer;

  AvgPipeConfig cfg;
  cfg.num_pipelines = spec.pipelines;
  cfg.micro_batches = spec.micro_batches;
  cfg.boundaries = spec.boundaries;
  cfg.async_sync = spec.async_sync;
  cfg.sync_lag = spec.sync_lag;
  cfg.faults = &plan;
  cfg.sync.kind = policy;
  // Pinned (even when off): matrix rows must not depend on the environment.
  cfg.sync_compression = compression;
  if (compression.enabled()) cfg.tracer = &tracer;
  AvgPipe system(matrix_model(spec), matrix_optimizer(spec), cfg);

  const std::size_t per_epoch = loader.batches_per_epoch();
  const double samples_per_step =
      static_cast<double>(spec.pipelines * spec.batch_size);
  cell.best_loss = std::numeric_limits<double>::infinity();

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t step = 0; step < spec.steps; ++step) {
    std::vector<data::Batch> batches;
    batches.reserve(spec.pipelines);
    for (std::size_t p = 0; p < spec.pipelines; ++p) {
      const std::size_t g = step * spec.pipelines + p;
      batches.push_back(loader.batch(g / per_epoch, g % per_epoch));
    }
    system.train_iteration(batches);

    if ((step + 1) % spec.eval_every == 0 || step + 1 == spec.steps) {
      const double loss = runtime::evaluate_loss(system.eval_model(), loader,
                                                 0, spec.eval_batches);
      cell.finite = cell.finite && std::isfinite(loss);
      cell.best_loss = std::min(cell.best_loss, loss);
      if (loss <= spec.target_loss && cell.steps_to_target < 0) {
        cell.steps_to_target = static_cast<long>(step + 1);
        cell.epochs_to_target =
            static_cast<double>(cell.steps_to_target) * samples_per_step /
            static_cast<double>(spec.samples);
      }
    }
  }
  cell.wall_seconds = elapsed_seconds(t0);
  cell.final_loss =
      runtime::evaluate_loss(system.eval_model(), loader, 0, spec.eval_batches);
  cell.finite = cell.finite && std::isfinite(cell.final_loss);
  if (compression.enabled()) {
    system.synchronize();  // flush worker trace buffers
    cell.sync_ratio = trace::TraceAnalysis(tracer.collect()).compression_ratio();
  }
  return cell;
}

PolicyParity run_parity(const MatrixSpec& spec, SyncPolicyKind policy) {
  PolicyParity parity;
  parity.policy = policy;

  data::SyntheticFeatures ds(64, spec.features, spec.classes, spec.seed);
  data::DataLoader loader(ds, spec.batch_size, spec.seed + 2);

  // The policy under test: N = 1, degenerate configuration, full threaded
  // system (so the gate covers the worker/reference machinery too).
  AvgPipeConfig cfg;
  cfg.num_pipelines = 1;
  cfg.micro_batches = spec.micro_batches;
  cfg.boundaries = spec.boundaries;
  cfg.sync = degenerate_config(policy);
  // The gate asserts exact-0.0 deltas of the uncompressed math; pin the
  // codec off so an env-forced AVGPIPE_SYNC_COMPRESS can't fail it.
  cfg.sync_compression = SyncCompression{};
  AvgPipe system(matrix_model(spec), matrix_optimizer(spec), cfg);

  // Serial pipelined SGD baseline: same factory seed as AvgPipe's replicas
  // (1234), same partitioning and micro-batching, no sync layer at all.
  nn::Sequential serial_model = matrix_model(spec)(1234);
  runtime::PipelineRuntime serial(serial_model, spec.boundaries,
                                  matrix_optimizer(spec),
                                  runtime::cross_entropy_loss(), cfg.kind,
                                  cfg.advance_num);

  const std::size_t per_epoch = loader.batches_per_epoch();
  for (std::size_t step = 0; step < spec.parity_steps; ++step) {
    const data::Batch b = loader.batch(step / per_epoch, step % per_epoch);
    const double avg_loss = system.train_iteration({b});
    const double serial_loss =
        serial.train_batch(b, spec.micro_batches).loss;
    parity.loss_delta =
        std::max(parity.loss_delta, std::abs(avg_loss - serial_loss));
  }
  parity.param_delta = max_abs_diff(
      system.replica_snapshot(0), clone_values(serial_model.parameters()));
  parity.ok = parity.param_delta == 0.0 && parity.loss_delta == 0.0;
  return parity;
}

MatrixResult run_matrix(const MatrixSpec& spec) {
  MatrixResult result;
  result.spec = spec;
  result.parity_ok = true;
  for (const SyncPolicyKind policy : spec.policies) {
    PolicyParity parity = run_parity(spec, policy);
    result.parity_delta = std::max(
        result.parity_delta, std::max(parity.param_delta, parity.loss_delta));
    result.parity_ok = result.parity_ok && parity.ok;
    result.parity.push_back(parity);
  }
  for (const SyncPolicyKind policy : spec.policies) {
    for (const fault::ScenarioKind scenario : spec.scenarios) {
      if (scenario == fault::ScenarioKind::kCrashRejoin &&
          spec.pipelines < 2) {
        continue;  // crashing the only pipeline aborts rather than degrades
      }
      result.cells.push_back(run_cell(spec, policy, scenario));
    }
  }
  // Quantized-transport rows: elastic under each requested codec, across the
  // same scenarios, so the lossy-sync accuracy claim faces the same faults.
  for (const tensor::Codec codec : spec.elastic_codecs) {
    if (codec == tensor::Codec::kNone) continue;  // that's the elastic row
    SyncCompression compression;
    compression.codec = codec;
    for (const fault::ScenarioKind scenario : spec.scenarios) {
      if (scenario == fault::ScenarioKind::kCrashRejoin &&
          spec.pipelines < 2) {
        continue;
      }
      result.cells.push_back(
          run_cell(spec, SyncPolicyKind::kElastic, scenario, compression));
    }
  }
  return result;
}

void write_matrix_json(const MatrixResult& result, std::ostream& os) {
  os.precision(6);
  os << "{\n";
  os << "  \"schema\": \"avgpipe-sync-policy-matrix-v1\",\n";
  const MatrixSpec& s = result.spec;
  os << "  \"spec\": {\"pipelines\": " << s.pipelines
     << ", \"micro_batches\": " << s.micro_batches
     << ", \"steps\": " << s.steps << ", \"batch_size\": " << s.batch_size
     << ", \"samples\": " << s.samples << ", \"lr\": " << s.lr
     << ", \"target_loss\": " << s.target_loss << ", \"seed\": " << s.seed
     << ", \"async_sync\": " << (s.async_sync ? "true" : "false")
     << ", \"sync_lag\": " << s.sync_lag << "},\n";
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& c = result.cells[i];
    os << "    {\"policy\": \""
       << (c.label.empty() ? to_string(c.policy) : c.label)
       << "\", \"scenario\": \""
       << fault::to_string(c.scenario) << "\", \"codec\": \""
       << tensor::to_string(c.codec) << "\", \"sync_ratio\": " << c.sync_ratio
       << ", \"final_loss\": " << c.final_loss
       << ", \"best_loss\": " << c.best_loss
       << ", \"steps_to_target\": " << c.steps_to_target
       << ", \"epochs_to_target\": " << c.epochs_to_target
       << ", \"wall_seconds\": " << c.wall_seconds
       << ", \"finite\": " << (c.finite ? "true" : "false") << "}"
       << (i + 1 < result.cells.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"parity\": [\n";
  for (std::size_t i = 0; i < result.parity.size(); ++i) {
    const PolicyParity& p = result.parity[i];
    os << "    {\"policy\": \"" << to_string(p.policy)
       << "\", \"param_delta\": " << p.param_delta
       << ", \"loss_delta\": " << p.loss_delta
       << ", \"ok\": " << (p.ok ? "true" : "false") << "}"
       << (i + 1 < result.parity.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"parity_delta\": " << result.parity_delta << ",\n";
  os << "  \"parity_ok\": " << (result.parity_ok ? "true" : "false") << "\n";
  os << "}\n";
}

}  // namespace avgpipe::core
