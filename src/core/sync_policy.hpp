#pragma once

/// \file sync_policy.hpp
/// Pluggable model-coupling rules for AvgPipe's replica/reference protocol.
///
/// The paper's elastic averaging is one point in a family of asynchronous
/// model-coupling rules; its production siblings (kaldi-aslp's BSP model
/// averaging and BMUF) and XPipe's weight prediction attack the same
/// staleness problem from different angles. A `SyncPolicy` factors the rule
/// out of `AvgPipe`/`AvgPipeTrainer` so all of them run on the identical
/// replica/reference machinery — same worker threads, same message queues,
/// same fault handling — and differ only in four hooks:
///
///   begin_round(params, broadcast)   replica, before training a batch
///   local_sync(params, broadcast)    replica, after training a batch
///   apply_round(reference, round)    reference process, once per round
///   make_broadcast(reference)        reference process, after each apply
///
/// Concurrency contract (enforced by constness, documented in DESIGN.md §13):
/// the replica-side hooks are called concurrently from the per-replica worker
/// threads and must not mutate policy state — they are `const` and operate
/// only on the replica's own parameters plus an immutable broadcast snapshot.
/// The reference-side hooks own all mutable policy state (e.g. BMUF's block
/// momentum) and are serialised by the caller: under `reference_mutex_` in
/// the threaded system, trivially in the serial trainer. `make_broadcast` is
/// const but reads reference-side state, so it shares that serialisation.
///
/// Staleness semantics per policy:
/// * elastic  — replicas never reset; each pull dilutes toward a broadcast
///              that may be up to sync_lag applies stale (paper §3.2).
/// * bsp      — replicas restart every round from the broadcast; under
///              sync_lag > 0 the restart point itself may be stale, which is
///              the only staleness BSP admits.
/// * bmuf     — BSP's restart, but the broadcast is the CBM Nesterov restart
///              point W(t) + η·Δ(t), and the reference applies the filtered
///              update Δ(t) = η·Δ(t−1) + ζ·(mean(x_i) − W(t−1)).
/// * xpipe    — elastic coupling; additionally each pipeline stage runs its
///              forward/backward on predicted weights ŵ = w + lookahead·Δ̂
///              (runtime::PredictionConfig), countering in-pipeline staleness
///              rather than cross-replica staleness.
///
/// Every policy has a *degenerate configuration* (`degenerate_config`) in
/// which, at N = 1, its trajectory is bit-identical to serial SGD — the
/// parity gate that makes cross-policy accuracy numbers comparable.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "core/elastic.hpp"
#include "optim/optimizer.hpp"

namespace avgpipe::core {

/// The phantom capability standing for "I am serialised with the reference
/// process". Every reference-side policy hook REQUIRES it; a caller asserts
/// it with a `common::RoleGuard` whose justification is real serialisation —
/// holding `reference_mutex_` in the threaded system, the single-threaded
/// phase of construction, or the serial trainer's only thread. One global
/// capability (not per-policy) because the contract is about the reference
/// *process*, which is unique per address space in this in-proc system.
common::Role& reference_capability();

enum class SyncPolicyKind : std::uint8_t {
  kElastic = 0,  ///< the paper's elastic averaging (default)
  kBsp,          ///< BSP model averaging: restart from mean every round
  kBmuf,         ///< blockwise model-update filtering (Chen & Huo 2016)
  kXPipe,        ///< elastic + XPipe-style weight prediction in the runtime
};

std::string to_string(SyncPolicyKind kind);

struct SyncPolicyConfig {
  SyncPolicyKind kind = SyncPolicyKind::kElastic;
  // BMUF: block momentum η, block lr ζ (0 → the classic 1−η default, which
  // puts the effective rate λ = ζ/(1−η) exactly at the stability bound), and
  // whether the broadcast is the Nesterov restart point W + η·Δ.
  double block_momentum = 0.45;
  double block_lr = 0.0;
  bool nesterov_restart = true;
  // XPipe: ŵ = w + lookahead·Δ̂ at batch start, Δ̂ an EMA (weight `beta` on
  // the old value) of realised per-batch updates. lookahead = 0 disables.
  double prediction_lookahead = 1.0;
  double prediction_beta = 0.0;
};

/// The configuration in which `kind` must be bit-identical to serial SGD at
/// N = 1: elastic/xpipe rely on α = 0 (the driver's 1/N default), BMUF on
/// η = 0, ζ = 1 (exact-assignment fast path), XPipe additionally on
/// lookahead = 0, BSP on exact mean assignment at n = 1.
SyncPolicyConfig degenerate_config(SyncPolicyKind kind);

class SyncPolicy {
 public:
  explicit SyncPolicy(SyncPolicyConfig config) : config_(config) {}
  virtual ~SyncPolicy() = default;

  SyncPolicyKind kind() const { return config_.kind; }
  const SyncPolicyConfig& config() const { return config_; }
  virtual std::string name() const = 0;

  // -- replica side: called concurrently from replica worker threads; must
  //    not touch policy state (const) -----------------------------------------

  /// Whether replicas must be reset from the broadcast before each round.
  virtual bool needs_begin() const { return false; }

  /// Reset `params` from the round's broadcast (BSP/BMUF). Default: no-op.
  virtual void begin_round(std::vector<tensor::Variable>& params,
                           const ParamSet& broadcast) const;

  /// Post-training step on the replica: transform `params` (elastic pull)
  /// and return this replica's contribution to the round (elastic update or
  /// a clone of the trained weights).
  virtual ParamSet local_sync(std::vector<tensor::Variable>& params,
                              const ParamSet& broadcast,
                              double alpha) const = 0;

  // -- reference side: serialised by the caller, which asserts that
  //    serialisation by holding `reference_capability()` ----------------------

  /// Fold one round of `local_sync` results into the reference model.
  /// `round` is ordered by replica index (deterministic).
  virtual void apply_round(ReferenceModel& reference,
                           const std::vector<ParamSet>& round)
      REQUIRES(reference_capability()) = 0;

  /// Fold a *batch* of queued rounds, oldest first — the asynchronous
  /// reference process drains its update queue and applies everything it
  /// found in one critical section. Default: sequential `apply_round` per
  /// round, so the semantics are identical by construction for any policy.
  /// The elastic policies override this with a fused sweep
  /// (`ReferenceModel::apply_round_batch`) that is bit-identical to the
  /// sequential loop but touches each reference weight once per batch.
  virtual void apply_rounds(ReferenceModel& reference,
                            const std::vector<std::vector<ParamSet>>& rounds)
      REQUIRES(reference_capability());

  /// The snapshot replicas pull/reset against next round — also what a
  /// rejoining pipeline restores from, so a policy with reference-side state
  /// (BMUF) bakes its reconstruction (the Nesterov restart point) in here.
  /// Const but reads reference-side state, hence the shared serialisation.
  virtual ParamSet make_broadcast(const ReferenceModel& reference) const
      REQUIRES(reference_capability());

  /// One full round for the serial trainer: local_sync every replica, apply.
  /// Elastic overrides this with the fused `pull_and_accumulate` fast path.
  virtual void serial_round(ReferenceModel& reference,
                            std::vector<std::vector<tensor::Variable>>& replicas,
                            double alpha) REQUIRES(reference_capability());

  // -- durable state (checkpoint layer, src/ckpt) -----------------------------

  /// Reference-side mutable policy state to persist across a crash (BMUF:
  /// the momentum Δ(t); stateless policies: empty). Shares apply_round's
  /// serialisation. XPipe's EMA predictors are *runtime* state and are
  /// persisted per stage (`runtime::StageState`), not here.
  virtual std::vector<tensor::Tensor> export_state() const
      REQUIRES(reference_capability()) {
    return {};
  }

  /// Restore a snapshot produced by `export_state` on a same-kind policy.
  /// Throws avgpipe::Error if state is offered to a stateless policy.
  virtual void import_state(std::vector<tensor::Tensor> state)
      REQUIRES(reference_capability());

 protected:
  SyncPolicyConfig config_;
};

std::unique_ptr<SyncPolicy> make_sync_policy(const SyncPolicyConfig& config);

/// All kinds, in a stable order (for sweeps and parameterised tests).
std::vector<SyncPolicyKind> all_sync_policies();

}  // namespace avgpipe::core
