#pragma once

/// \file scenario_matrix.hpp
/// Sync-policy × fault-scenario statistical-efficiency matrix.
///
/// The ROADMAP's accuracy-under-adversity story: every `SyncPolicyKind`
/// trains the same seeded workload on the full threaded system under every
/// canonical `fault::ScenarioKind` (clean, stragglers, crash+rejoin,
/// degraded links), and each cell reports epochs-to-target-loss plus
/// wall-clock. None of those numbers mean anything unless the policies are
/// provably equivalent in their degenerate configurations, so the matrix
/// carries its own *parity gate*: each policy at N = 1 in
/// `degenerate_config` must track a bare `runtime::PipelineRuntime` (serial
/// pipelined SGD, identical micro-batching) bit-for-bit — `parity_ok`
/// requires max-abs-delta exactly 0.0, not merely small.
///
/// This lives in src/core (not bench/) so the tier-1 smoke test can drive
/// `run_matrix` directly; bench/sync_policy_matrix.cpp is a thin CLI over it.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/sync_compression.hpp"
#include "core/sync_policy.hpp"
#include "fault/fault_plan.hpp"

namespace avgpipe::core {

struct MatrixSpec {
  std::vector<SyncPolicyKind> policies = all_sync_policies();
  std::vector<fault::ScenarioKind> scenarios = fault::all_scenarios();
  // System shape.
  std::size_t pipelines = 2;
  std::size_t micro_batches = 4;
  std::vector<std::size_t> boundaries = {2};
  bool async_sync = true;
  std::size_t sync_lag = 1;
  // Workload: SyntheticFeatures MLP classifier (laptop-scale).
  std::size_t samples = 128;
  std::size_t features = 6;
  std::size_t classes = 2;
  double noise = 0.6;
  std::size_t hidden = 12;
  std::size_t depth = 2;
  std::size_t batch_size = 16;
  double lr = 0.08;
  std::uint64_t seed = 5;
  // Run length & accuracy target.
  std::size_t steps = 48;       ///< train iterations per cell
  std::size_t eval_every = 1;   ///< evaluate loss every k iterations
  std::size_t eval_batches = 4;
  double target_loss = 0.32;
  // Parity gate length (iterations at N = 1 per policy).
  std::size_t parity_steps = 4;
  // Quantized-transport rows: each codec adds an elastic[<codec>] row across
  // all scenarios (the accuracy-under-lossy-sync story). Empty disables.
  std::vector<tensor::Codec> elastic_codecs = {tensor::Codec::kInt8,
                                               tensor::Codec::kFp16};
};

struct CellResult {
  SyncPolicyKind policy = SyncPolicyKind::kElastic;
  fault::ScenarioKind scenario = fault::ScenarioKind::kClean;
  /// Row label: to_string(policy), or "elastic[int8]"-style when the cell
  /// ran with a quantized sync transport.
  std::string label;
  tensor::Codec codec = tensor::Codec::kNone;
  /// Measured bytes-moved reduction (TraceAnalysis::compression_ratio);
  /// 1.0 for uncompressed cells.
  double sync_ratio = 1.0;
  double final_loss = 0;
  double best_loss = 0;
  long steps_to_target = -1;      ///< -1: target never reached
  double epochs_to_target = -1;   ///< data consumed / dataset size, -1 if not
  double wall_seconds = 0;
  bool finite = true;             ///< all evaluated losses stayed finite
};

struct PolicyParity {
  SyncPolicyKind policy = SyncPolicyKind::kElastic;
  double param_delta = 0;  ///< max-abs replica-vs-serial parameter delta
  double loss_delta = 0;   ///< max-abs per-step training-loss delta
  bool ok = false;         ///< both deltas exactly 0.0
};

struct MatrixResult {
  MatrixSpec spec;
  std::vector<CellResult> cells;
  std::vector<PolicyParity> parity;
  double parity_delta = 0;  ///< max over policies (params and losses)
  bool parity_ok = false;
};

/// Train one (policy, scenario) cell on the threaded system. `compression`
/// is always pinned into the config (default: off), so matrix rows never
/// depend on AVGPIPE_SYNC_COMPRESS; compressed cells also record the
/// achieved bytes-moved ratio.
CellResult run_cell(const MatrixSpec& spec, SyncPolicyKind policy,
                    fault::ScenarioKind scenario,
                    SyncCompression compression = {});

/// Degenerate-config bit-parity of `policy` at N = 1 vs serial pipelined SGD.
PolicyParity run_parity(const MatrixSpec& spec, SyncPolicyKind policy);

/// The full sweep: parity gate over spec.policies, then every cell.
MatrixResult run_matrix(const MatrixSpec& spec);

/// BENCH_sync_policies.json (schema "avgpipe-sync-policy-matrix-v1").
void write_matrix_json(const MatrixResult& result, std::ostream& os);

}  // namespace avgpipe::core
