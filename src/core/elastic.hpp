#pragma once

/// \file elastic.hpp
/// The elastic-averaging primitives of the AvgPipe framework (paper §3.2).
///
/// AvgPipe trains N parallel models ("parallel pipelines"), each with an
/// arbitrary user-chosen optimizer, and keeps a *reference model* at their
/// centre. Per iteration, each pipeline:
///   ❶ computes a local update on its own batch via its optimizer,
///   ❷ dilutes its weights toward the reference, x_i ← (1-α)·x_i + α·ref,
///   ❸ ships its local update to the reference process asynchronously.
/// The reference process:
///   ❹ accumulates the N local updates,
///   ❺ normalises and applies them, keeping ref at the average of the
///     parallel models.
///
/// With update_i := x_i(after pull) − ref(used for the pull), applying
/// ref += (1/N)·Σ update_i yields exactly ref' = mean_i x_i — the invariant
/// "each weight in the reference model stays the average of the
/// corresponding weights in parallel models". α defaults to 1/N (the paper's
/// empirical choice, after Crossbow).

#include <vector>

#include "tensor/autograd.hpp"

namespace avgpipe::core {

using ParamSet = std::vector<tensor::Tensor>;

/// Deep-copy the values of a parameter list.
ParamSet clone_values(const std::vector<tensor::Variable>& params);

/// Elementwise ops over parameter sets (shapes must match pairwise).
void add_scaled(ParamSet& dst, const ParamSet& src, double scale);
ParamSet difference(const std::vector<tensor::Variable>& params,
                    const ParamSet& reference);
double max_abs_diff(const ParamSet& a, const ParamSet& b);

/// The default dependence factor α = 1/N.
double default_alpha(std::size_t num_pipelines);

/// Step ❷: pull live parameters toward a reference snapshot.
void elastic_pull(std::vector<tensor::Variable>& params,
                  const ParamSet& reference, double alpha);

/// Fused steps ❷+❸ prep: one pass per parameter computes
///   x ← x + α·(ref − x)   and   update = x_new − ref
/// simultaneously, bit-identical to elastic_pull followed by difference()
/// but touching each weight once and allocating only the update tensors
/// (uninitialized, arena-backed) instead of an extra clone per parameter.
ParamSet elastic_pull_push(std::vector<tensor::Variable>& params,
                           const ParamSet& reference, double alpha);

/// The reference model (steps ❹–❺). Not thread-safe by itself; the
/// asynchronous system in avgpipe.hpp serialises access through a queue,
/// matching the paper's separate reference process per GPU.
class ReferenceModel {
 public:
  explicit ReferenceModel(ParamSet initial);

  /// Step ❹: fold one pipeline's local update into the accumulator.
  void accumulate(const ParamSet& update);
  /// Fused ❷+❸+❹ for serial callers (AvgPipeTrainer): pull `params` toward
  /// the current reference and fold the implied update straight into the
  /// accumulator in a single pass, with no snapshot clone and no update
  /// materialisation. Only `accum_` is written, so every replica in the same
  /// round still pulls against identical reference values. Bit-identical to
  /// elastic_pull + difference + accumulate.
  void pull_and_accumulate(std::vector<tensor::Variable>& params,
                           double alpha);
  /// Step ❺: once every pipeline has reported, normalise by `n` and apply.
  /// Returns the number of updates that were folded in.
  std::size_t apply_accumulated(std::size_t n);
  /// Fused ❹+❺ over a *batch* of complete rounds — the asynchronous
  /// reference process may find several rounds queued. For each parameter
  /// tensor a single sweep folds every round's updates and applies them in
  /// arrival order, performing exactly the floating-point operations of the
  /// per-round accumulate…apply_accumulated(round.size()) loop in the same
  /// order, so the result is bit-identical while the reference weights are
  /// read and written once instead of once per round (and the accumulator is
  /// never touched). Must not interleave with a partially accumulated round.
  void apply_round_batch(const std::vector<std::vector<ParamSet>>& rounds);

  const ParamSet& params() const { return params_; }
  /// Direct mutable access for sync policies that replace (rather than
  /// increment) the reference — BSP/BMUF write the block mean / filtered
  /// update straight into the weights. Same serialisation rules as the
  /// accumulate/apply path.
  ParamSet& mutable_params() { return params_; }
  ParamSet snapshot() const;
  std::size_t pending() const { return pending_; }

 private:
  ParamSet params_;
  ParamSet accum_;
  std::size_t pending_ = 0;
};

}  // namespace avgpipe::core
