#pragma once

/// \file avgpipe.hpp
/// AvgPipe: elastic-averaging pipelined training (the paper's system).
///
/// Two entry points:
///
/// * `AvgPipe` — the full system: N parallel pipelines, each a threaded
///   `runtime::PipelineRuntime` over its own model replica, plus an
///   asynchronous reference-model process fed through a message queue
///   (paper Figure 6). One `train_iteration` consumes N batches.
///
/// * `AvgPipeTrainer` — the same update semantics single-threaded (each
///   replica trained synchronously on its batch), used by the
///   statistical-efficiency experiments where only the update rule matters.
///   Both produce identical parameter trajectories for equal inputs; a test
///   asserts that equivalence.

#include <memory>
#include <thread>

#include "common/queue.hpp"
#include "core/elastic.hpp"
#include "runtime/pipeline_runtime.hpp"
#include "runtime/semantics.hpp"

namespace avgpipe::core {

struct AvgPipeConfig {
  std::size_t num_pipelines = 2;  ///< N
  std::size_t micro_batches = 4;  ///< M
  double alpha = 0.0;             ///< 0 -> 1/N (paper default)
  /// Stage boundaries for pipeline partitioning (empty = single stage).
  std::vector<std::size_t> boundaries;
  schedule::Kind kind = schedule::Kind::kAdvanceForward;
  std::size_t advance_num = 0;  ///< 0 -> K-1
  /// Optional tracer (non-owning, must outlive the AvgPipe): every stage
  /// worker of every replica records wall-clock spans tagged with its
  /// pipeline index, the driver records the elastic pulls (❷–❸), and the
  /// reference process records apply spans plus a staleness counter (how
  /// many local updates were accumulated but not yet applied, ❹–❺).
  trace::Tracer* tracer = nullptr;
};

/// The full threaded system.
class AvgPipe {
 public:
  /// \param factory builds one model replica; called N+1 times (replicas +
  ///        evaluation copy) and synchronised to identical initial weights.
  /// \param make_optimizer builds each stage's local optimizer — any
  ///        optimizer works; the framework is decoupled from it (§3.1).
  AvgPipe(const nn::ModelFactory& factory,
          const runtime::OptimizerFactory& make_optimizer,
          AvgPipeConfig config);
  ~AvgPipe();

  AvgPipe(const AvgPipe&) = delete;
  AvgPipe& operator=(const AvgPipe&) = delete;

  /// Train one iteration: batch i goes to pipeline i. Returns mean loss.
  double train_iteration(const std::vector<data::Batch>& batches);

  std::size_t num_pipelines() const { return replicas_.size(); }
  double alpha() const { return alpha_; }

  /// Copy the reference weights into the evaluation model and return it.
  nn::Sequential& eval_model();

  /// Current reference parameters (snapshot).
  ParamSet reference_snapshot();

 private:
  struct Replica {
    nn::Sequential model;
    std::unique_ptr<runtime::PipelineRuntime> runtime;
  };

  void reference_loop();

  AvgPipeConfig config_;
  double alpha_ = 0.5;
  std::vector<std::unique_ptr<Replica>> replicas_;
  nn::Sequential eval_model_;

  // Tracing buffers: driver-thread spans (elastic pull) and reference-
  // process spans; both lazily created from config_.tracer.
  trace::TraceBuffer* driver_trace_ = nullptr;
  trace::TraceBuffer* reference_trace_ = nullptr;

  // Reference process: updates arrive over a queue, are accumulated, and
  // applied once all N pipelines have reported (steps ❹–❺).
  std::unique_ptr<ReferenceModel> reference_;
  std::mutex reference_mutex_;  ///< guards reference_ between iterations
  Channel<ParamSet> update_queue_{64};
  Channel<int> applied_queue_{64};
  std::thread reference_thread_;
};

/// Update-semantics-only trainer for Figure 14 (single-threaded replicas).
class AvgPipeTrainer : public runtime::TrainerBase {
 public:
  AvgPipeTrainer(const nn::ModelFactory& factory,
                 const runtime::OptimizerFactory& make_optimizer,
                 std::size_t num_pipelines, double alpha = 0.0,
                 std::string name = "AvgPipe");

  std::size_t batches_per_iteration() const override { return replicas_.size(); }
  double train_iteration(const std::vector<data::Batch>& batches) override;
  double train_batch(const data::Batch& batch) override;
  nn::Sequential& eval_model() override;
  std::string name() const override { return name_; }

  /// Direct access for invariant tests.
  const ReferenceModel& reference() const { return *reference_; }
  nn::Sequential& replica(std::size_t i) { return replicas_.at(i)->model; }

 private:
  struct Replica {
    nn::Sequential model;
    std::unique_ptr<optim::Optimizer> optimizer;
  };
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<ReferenceModel> reference_;
  nn::Sequential eval_model_;
  double alpha_;
  std::string name_;
};

}  // namespace avgpipe::core
