#pragma once

/// \file avgpipe.hpp
/// AvgPipe: elastic-averaging pipelined training (the paper's system).
///
/// Two entry points:
///
/// * `AvgPipe` — the full system: N parallel pipelines, each a threaded
///   `runtime::PipelineRuntime` over its own model replica, plus an
///   asynchronous reference-model process fed through a message queue
///   (paper Figure 6). One `train_iteration` consumes N batches.
///
/// * `AvgPipeTrainer` — the same update semantics single-threaded (each
///   replica trained synchronously on its batch), used by the
///   statistical-efficiency experiments where only the update rule matters.
///   Both produce identical parameter trajectories for equal inputs; a test
///   asserts that equivalence.

#include <memory>
#include <optional>
#include <thread>

#include "ckpt/state.hpp"
#include "common/annotations.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"
#include "core/elastic.hpp"
#include "core/sync_compression.hpp"
#include "core/sync_policy.hpp"
#include "runtime/pipeline_runtime.hpp"
#include "runtime/semantics.hpp"

namespace avgpipe::core {

struct AvgPipeConfig {
  std::size_t num_pipelines = 2;  ///< N
  std::size_t micro_batches = 4;  ///< M
  double alpha = 0.0;             ///< 0 -> 1/N (paper default)
  /// Stage boundaries for pipeline partitioning (empty = single stage).
  std::vector<std::size_t> boundaries;
  schedule::Kind kind = schedule::Kind::kAdvanceForward;
  std::size_t advance_num = 0;  ///< 0 -> K-1
  /// Asynchronous elastic sync (paper §3.2's message-queue design taken off
  /// the critical path): each replica's elastic pull/push runs on that
  /// replica's persistent worker thread against the latest *published*
  /// reference snapshot, and the driver no longer waits for the reference
  /// apply every iteration — it only blocks once more than `sync_lag`
  /// reference applies are in flight. With sync_lag = 0 the schedule of
  /// pulls and applies is identical to synchronous mode, so the parameter
  /// trajectory is bit-identical; sync_lag >= 1 trades bounded staleness
  /// (replicas may pull against a reference that is up to sync_lag applies
  /// old) for overlap of the reference process with the next iteration's
  /// training.
  bool async_sync = false;
  std::size_t sync_lag = 1;  ///< max reference applies in flight (async)
  /// Optional tracer (non-owning, must outlive the AvgPipe): every stage
  /// worker of every replica records wall-clock spans tagged with its
  /// pipeline index, the driver records the elastic pulls (❷–❸), and the
  /// reference process records apply spans plus a staleness counter (how
  /// many local updates were accumulated but not yet applied, ❹–❺).
  trace::Tracer* tracer = nullptr;
  /// Optional fault plan (non-owning, must outlive the AvgPipe; defaults to
  /// fault::env_plan()). Stragglers/drops are forwarded to every replica
  /// runtime; the driver itself consumes the step-windowed crash records
  /// (crash_at_step / rejoin_at_step).
  const fault::FaultPlan* faults = nullptr;
  /// The model-coupling rule (sync_policy.hpp). Defaults to the paper's
  /// elastic averaging; BSP/BMUF additionally reset replicas from the
  /// broadcast at round start, XPipe wires weight prediction into every
  /// replica runtime. `alpha` above only affects the elastic-family policies.
  SyncPolicyConfig sync;
  /// Optional durable checkpoint directory (non-owning, must outlive the
  /// AvgPipe). Enables save_checkpoint / restore_latest_checkpoint and — with
  /// `restore_on_failure` — the failure-escalation path.
  ckpt::CheckpointDir* checkpoints = nullptr;
  /// Escalate a pipeline failure (worker exception, including the runtime's
  /// peer-unresponsive deadline) beyond the elastic detach: immediately
  /// restore the failed pipeline's durable state from the newest loadable
  /// checkpoint and rejoin it. When no checkpoint is loadable the pipeline
  /// degrades to the plain broadcast rejoin. Requires `checkpoints`.
  bool restore_on_failure = false;
  /// Lossy compression of the sync transport (sync_compression.hpp): every
  /// replica→reference push and reference→replica broadcast is degraded to
  /// its codec round trip, with per-stream error-feedback residuals.
  /// `nullopt` resolves against AVGPIPE_SYNC_COMPRESS (default off); an
  /// explicit value pins the mode and ignores the environment — parity
  /// tests pin `off`, which leaves today's bit-exact path untouched.
  std::optional<SyncCompression> sync_compression;
};

/// The full threaded system.
class AvgPipe {
 public:
  /// \param factory builds one model replica; called N+1 times (replicas +
  ///        evaluation copy) and synchronised to identical initial weights.
  /// \param make_optimizer builds each stage's local optimizer — any
  ///        optimizer works; the framework is decoupled from it (§3.1).
  AvgPipe(const nn::ModelFactory& factory,
          const runtime::OptimizerFactory& make_optimizer,
          AvgPipeConfig config);
  ~AvgPipe();

  AvgPipe(const AvgPipe&) = delete;
  AvgPipe& operator=(const AvgPipe&) = delete;

  /// Train one iteration: batch i goes to pipeline i. Returns the mean loss
  /// over the pipelines that completed their batch.
  ///
  /// Graceful degradation: a pipeline whose runtime fails mid-batch (or that
  /// the fault plan crashes at this step) is detached — its batch is lost,
  /// α rebalances to 1/N_alive, and the reference keeps averaging over the
  /// survivors. Dead pipelines' batches in `batches` are ignored. Throws
  /// only when no pipeline is left alive.
  double train_iteration(const std::vector<data::Batch>& batches);

  std::size_t num_pipelines() const { return replicas_.size(); }
  double alpha() const { return alpha_; }
  const SyncPolicy& policy() const { return *policy_; }
  /// The resolved sync-transport compression (config or env).
  const SyncCompression& sync_compression() const { return compression_; }

  // -- elastic membership (fault tolerance) ----------------------------------

  /// Pipelines currently participating in the average.
  std::size_t alive_pipelines() const;
  bool pipeline_alive(std::size_t i) const;
  /// Liveness/heartbeat record of pipeline `i`.
  const fault::PipelineHealth& health(std::size_t i) const;

  /// Detach pipeline `i` from the average: its runtime is torn down (worker
  /// threads joined, like a process death), α rebalances to 1/N_alive and
  /// the reference model continues as the mean of the survivors. No-op if
  /// already detached.
  void detach_pipeline(std::size_t i, const std::string& reason);

  /// Bring a detached pipeline back: its replica re-initialises from the
  /// current reference weights (the paper's pull mechanism as recovery), a
  /// fresh runtime (fresh optimizer state) is built, and α rebalances back.
  /// No-op if alive.
  void rejoin_pipeline(std::size_t i);

  /// Copy the reference weights into the evaluation model and return it.
  /// In async mode this first synchronize()s so the evaluation weights
  /// include every completed iteration.
  nn::Sequential& eval_model();

  /// Current reference parameters (snapshot; synchronize()d first).
  ParamSet reference_snapshot();

  /// The policy's broadcast reconstruction of state (synchronize()d first):
  /// what a replica would restore from right now — for BMUF the Nesterov
  /// restart point W + η·Δ, for everything else the reference weights.
  ParamSet broadcast_snapshot();

  /// Snapshot of replica `i`'s live weights. Driver thread only, between
  /// iterations (workers are parked then); the replica must be alive.
  ParamSet replica_snapshot(std::size_t i) const;

  /// Drain all in-flight reference applies (no-op in sync mode, where the
  /// driver never runs ahead). Driver thread only.
  void synchronize();

  // -- durable checkpoint/restore (src/ckpt) ---------------------------------

  /// Register a named RNG stream (non-owning, must outlive the AvgPipe) to
  /// ride along in checkpoints: capture_state snapshots it, restore_state
  /// restores it by name. Typical use: the data-order stream, so a resumed
  /// run draws exactly the batches the uninterrupted run would have.
  void register_rng(const std::string& name, Rng* rng);

  /// Full durable state at the current round boundary. synchronize()s first
  /// — the apply drain doubles as the capture barrier (workers parked,
  /// driver owns every tensor) — then snapshots reference / policy state /
  /// broadcast under the reference mutex plus every pipeline's parameters
  /// and per-stage runtime state. Driver thread only, between iterations.
  ckpt::TrainState capture_state();

  /// Restore a state produced by `capture_state` on an identically
  /// configured system (same pipeline count and policy kind — checked).
  /// Pipelines marked dead in `state` are detached; live ones get weights,
  /// optimizer slots and predictor state back bit-exactly. Driver thread
  /// only, between iterations.
  void restore_state(const ckpt::TrainState& state);

  /// capture_state + durable commit through config.checkpoints (which must
  /// be set), recorded as a kCheckpoint span. The manifest is monotonic in
  /// step, so at least one train_iteration must separate two saves.
  ckpt::ManifestEntry save_checkpoint();

  /// Load the newest durable checkpoint that decodes cleanly — falling back
  /// over corrupted entries — and restore_state it (kRestore span carries
  /// the fallback count). `ok == false` means nothing was loadable; the live
  /// state is left untouched.
  ckpt::CheckpointDir::LoadResult restore_latest_checkpoint();

 private:
  /// One iteration's work order for a replica worker thread.
  struct ReplicaJob {
    const data::Batch* batch = nullptr;
    double alpha = 0;
    bool do_pull = false;   ///< async mode: run the policy local_sync on-thread
    bool do_begin = false;  ///< BSP/BMUF: reset from the broadcast pre-train
  };
  struct ReplicaResult {
    bool ok = false;
    double loss = 0;
    std::string error;
    ParamSet update;  ///< filled when the job asked for the pull
  };
  struct Replica {
    nn::Sequential model;
    std::unique_ptr<runtime::PipelineRuntime> runtime;
    // Persistent worker thread (replaces a thread spawn per iteration):
    // consumes ReplicaJobs, trains, optionally runs the elastic pull/push.
    std::unique_ptr<SpscChannel<ReplicaJob>> jobs;
    std::unique_ptr<SpscChannel<ReplicaResult>> results;
    std::thread thread;
    trace::TraceBuffer* trace_buf = nullptr;  ///< worker-side elastic spans
    // Compressor of this replica's push stream (update ParamSets), with its
    // EF residuals. Touched by the worker thread in async mode and by the
    // driver in sync mode — one owner per configuration, never both.
    SyncCodec push_codec;
  };

  void reference_loop();
  /// Replica worker main. Runs concurrently with the reference process and
  /// must never hold the reference capability — every reference interaction
  /// goes through the published snapshot handle or the message queues.
  void replica_loop(std::size_t i) EXCLUDES(reference_capability());
  void start_worker(std::size_t i);
  void stop_worker(std::size_t i);
  /// The most recent reference snapshot published by the reference process.
  std::shared_ptr<const ParamSet> snapshot_handle();
  /// Block until at most `limit` reference applies remain in flight.
  void wait_applies(std::size_t limit);
  std::unique_ptr<runtime::PipelineRuntime> make_runtime(std::size_t i);
  void rebalance_alpha();
  /// Crash/rejoin marker plus an alive-pipelines counter sample.
  void record_membership_event(trace::EventKind kind, std::size_t pipeline);
  /// kSyncBytes/kSyncBytesRaw counter pair from one codec transmission.
  void record_sync_bytes(trace::TraceBuffer* buf, std::size_t pipeline,
                         const SyncCodec::Stats& stats);
  /// Apply the plan's crash_at_step / rejoin_at_step records due at
  /// `iteration_`.
  void apply_scheduled_faults();
  /// Bring pipeline `i` to the checkpointed per-pipeline state `p` (weights,
  /// optimizer slots, predictors, and — when `codec_match` — the push
  /// codec's EF residuals); doubles as a rejoin when `i` is detached.
  void restore_pipeline(std::size_t i, const ckpt::PipelineState& p,
                        bool codec_match);
  /// Failure escalation: re-attach just-detached pipeline `i` with its
  /// durable state from the newest loadable checkpoint (kRestore span);
  /// falls back to the plain broadcast rejoin when none is loadable.
  /// Returns whether durable state was used.
  bool restore_pipeline_from_checkpoint(std::size_t i);

  AvgPipeConfig config_;
  std::unique_ptr<SyncPolicy> policy_;
  SyncCompression compression_;  ///< resolved config/env compression mode
  // Thread-placement plan shared by every replica runtime: replica i's K
  // stage threads occupy pin slots [i*K, (i+1)*K), then the N replica
  // workers, then the reference thread — pinned only under
  // AVGPIPE_PIN_THREADS. stage_workers_ is each stage thread's share of the
  // global kernel pool (AVGPIPE_STAGE_THREADS, defaulting to a fair split
  // over all N*K concurrent stage threads).
  std::size_t stage_workers_ = 1;
  std::size_t pin_total_slots_ = 0;
  const fault::FaultPlan* faults_ = nullptr;
  double alpha_ = 0.5;
  long iteration_ = 0;  ///< driver step index (train_iteration count)
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<fault::PipelineHealth> health_;  ///< one per pipeline
  runtime::OptimizerFactory make_optimizer_;   ///< kept for rejoins
  nn::Sequential eval_model_;
  /// Named external RNG streams captured/restored with checkpoints.
  std::vector<std::pair<std::string, Rng*>> rngs_;

  // Tracing buffers: driver-thread spans (elastic pull) and reference-
  // process spans; both lazily created from config_.tracer.
  trace::TraceBuffer* driver_trace_ = nullptr;
  trace::TraceBuffer* reference_trace_ = nullptr;

  // Reference process: one message per iteration carries the whole round of
  // local updates (steps ❹–❺) — batching the round into a single message
  // keeps membership bookkeeping with the driver and lets rounds queue up
  // behind each other under sync_lag without an expected-count handshake.
  // After every apply the reference thread publishes a fresh snapshot
  // (latest_snapshot_) that replica pulls read without blocking on the
  // apply itself.
  std::unique_ptr<ReferenceModel> reference_ PT_GUARDED_BY(reference_mutex_);
  /// Compressor of the broadcast stream. Reference-thread state: shares
  /// reference_'s serialisation (reference_mutex_ plus the apply drain).
  SyncCodec broadcast_codec_ GUARDED_BY(reference_mutex_);
  common::Mutex reference_mutex_;
  std::shared_ptr<const ParamSet> latest_snapshot_ GUARDED_BY(reference_mutex_);
  Channel<std::vector<ParamSet>> update_queue_{64};
  Channel<int> applied_queue_{64};
  std::size_t outstanding_applies_ = 0;  ///< driver-side in-flight rounds
  std::thread reference_thread_;
};

/// Update-semantics-only trainer for Figure 14 (single-threaded replicas).
class AvgPipeTrainer : public runtime::TrainerBase {
 public:
  AvgPipeTrainer(const nn::ModelFactory& factory,
                 const runtime::OptimizerFactory& make_optimizer,
                 std::size_t num_pipelines, double alpha = 0.0,
                 std::string name = "AvgPipe");
  /// Same update semantics under an arbitrary sync policy. Note XPipe's
  /// weight prediction is a pipeline-runtime feature; this single-threaded
  /// trainer runs its elastic coupling only.
  AvgPipeTrainer(const nn::ModelFactory& factory,
                 const runtime::OptimizerFactory& make_optimizer,
                 std::size_t num_pipelines, SyncPolicyConfig sync,
                 double alpha = 0.0, std::string name = "");

  std::size_t batches_per_iteration() const override { return replicas_.size(); }
  double train_iteration(const std::vector<data::Batch>& batches) override;
  double train_batch(const data::Batch& batch) override;
  nn::Sequential& eval_model() override;
  std::string name() const override { return name_; }

  /// Direct access for invariant tests.
  const ReferenceModel& reference() const { return *reference_; }
  nn::Sequential& replica(std::size_t i) { return replicas_.at(i)->model; }
  const SyncPolicy& policy() const { return *policy_; }

  /// Pin the sync-transport compression (overriding the ctor's
  /// AVGPIPE_SYNC_COMPRESS resolution) and reset all codec state. Call
  /// before the first iteration; mirrors AvgPipeConfig::sync_compression.
  void set_sync_compression(SyncCompression compression);
  const SyncCompression& sync_compression() const { return compression_; }

  // -- durable checkpoint/restore (serial path) ------------------------------

  /// Iterations completed — the step counter serial checkpoints carry.
  long iterations() const { return iterations_; }

  /// Durable state of the serial trainer: one PipelineState per replica
  /// (the whole replica is one "stage": its optimizer), plus reference,
  /// policy state and the round broadcast. Restoring onto an identically
  /// constructed trainer and re-feeding the same batches resumes the run
  /// bit-identically — the parity property ckpt_test gates on per policy.
  ckpt::TrainState capture_state() const;
  void restore_state(const ckpt::TrainState& state);

 private:
  struct Replica {
    nn::Sequential model;
    std::unique_ptr<optim::Optimizer> optimizer;
  };
  /// (Re)build the codecs for compression_ and, when it is on, republish
  /// broadcast_ through the broadcast codec (transmission #1 of the stream,
  /// matching the threaded ctor's initial publish).
  void init_codecs();
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<ReferenceModel> reference_;
  std::unique_ptr<SyncPolicy> policy_;
  SyncCompression compression_;
  SyncCodec broadcast_codec_;
  std::vector<SyncCodec> push_codecs_;  ///< one per replica
  ParamSet broadcast_;  ///< round-start reset point (needs_begin policies)
  nn::Sequential eval_model_;
  double alpha_;
  long iterations_ = 0;
  std::string name_;
};

}  // namespace avgpipe::core
