#include "core/avgpipe.hpp"

namespace avgpipe::core {

// -- AvgPipe (full threaded system) ----------------------------------------------

AvgPipe::AvgPipe(const nn::ModelFactory& factory,
                 const runtime::OptimizerFactory& make_optimizer,
                 AvgPipeConfig config)
    : config_(std::move(config)) {
  AVGPIPE_CHECK(config_.num_pipelines >= 1, "need at least one pipeline");
  alpha_ = config_.alpha > 0.0 ? config_.alpha
                               : default_alpha(config_.num_pipelines);

  // Build replicas with identical initial weights: replica 0's init is the
  // source of truth, copied into every other replica and the eval model.
  for (std::size_t i = 0; i < config_.num_pipelines; ++i) {
    auto replica = std::make_unique<Replica>();
    replica->model = factory(/*seed=*/1234);
    replicas_.push_back(std::move(replica));
  }
  eval_model_ = factory(1234);
  for (std::size_t i = 1; i < replicas_.size(); ++i) {
    nn::copy_parameters(replicas_[0]->model, replicas_[i]->model);
  }
  nn::copy_parameters(replicas_[0]->model, eval_model_);

  auto params0 = replicas_[0]->model.parameters();
  reference_ = std::make_unique<ReferenceModel>(clone_values(params0));

  // Each replica gets its own pipeline runtime over its own parameters.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->runtime = std::make_unique<runtime::PipelineRuntime>(
        replicas_[i]->model, config_.boundaries, make_optimizer,
        runtime::cross_entropy_loss(), config_.kind, config_.advance_num);
    if (config_.tracer != nullptr) {
      replicas_[i]->runtime->set_tracer(config_.tracer, i);
    }
  }
  if (config_.tracer != nullptr) {
    driver_trace_ = config_.tracer->create_buffer();
    reference_trace_ = config_.tracer->create_buffer();
  }

  reference_thread_ = std::thread([this] { reference_loop(); });
}

AvgPipe::~AvgPipe() {
  update_queue_.close();
  applied_queue_.close();
  if (reference_thread_.joinable()) reference_thread_.join();
}

void AvgPipe::reference_loop() {
  // The reference process (paper §3.2): receive local updates through the
  // message queue; after all N arrive, normalise and apply.
  std::size_t received = 0;
  while (auto update = update_queue_.recv()) {
    {
      std::lock_guard<std::mutex> lock(reference_mutex_);
      reference_->accumulate(*update);
      ++received;
      if (reference_trace_ != nullptr) {
        // Staleness: local updates folded into the accumulator but not yet
        // visible to the pipelines through an apply.
        trace::TraceEvent ev;
        ev.kind = trace::EventKind::kCounter;
        ev.counter = trace::CounterId::kStaleness;
        ev.t_begin = ev.t_end = config_.tracer->wall_now();
        ev.value = static_cast<double>(received);
        reference_trace_->record(ev);
      }
      if (received == replicas_.size()) {
        const Seconds t0 =
            reference_trace_ != nullptr ? config_.tracer->wall_now() : 0;
        reference_->apply_accumulated(replicas_.size());
        received = 0;
        if (reference_trace_ != nullptr) {
          trace::TraceEvent ev;
          ev.kind = trace::EventKind::kReferenceApply;
          ev.t_begin = t0;
          ev.t_end = config_.tracer->wall_now();
          reference_trace_->record(ev);
        }
        applied_queue_.send(1);
      }
    }
  }
}

double AvgPipe::train_iteration(const std::vector<data::Batch>& batches) {
  AVGPIPE_CHECK(batches.size() == replicas_.size(),
                "need one batch per pipeline: got " << batches.size()
                                                    << ", expected "
                                                    << replicas_.size());
  // Step ❶: each pipeline trains on its batch (its runtime is internally
  // threaded; replicas run concurrently).
  std::vector<double> losses(replicas_.size(), 0.0);
  {
    std::vector<std::thread> workers;
    workers.reserve(replicas_.size());
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      workers.emplace_back([this, i, &batches, &losses] {
        losses[i] = replicas_[i]
                        ->runtime->train_batch(batches[i],
                                               config_.micro_batches)
                        .loss;
      });
    }
    for (auto& w : workers) w.join();
  }

  // Steps ❷–❸: pull each replica toward the reference snapshot, ship the
  // local updates to the reference process.
  ParamSet ref_snapshot;
  {
    std::lock_guard<std::mutex> lock(reference_mutex_);
    ref_snapshot = reference_->snapshot();
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Seconds t0 =
        driver_trace_ != nullptr ? config_.tracer->wall_now() : 0;
    auto params = replicas_[i]->model.parameters();
    elastic_pull(params, ref_snapshot, alpha_);
    update_queue_.send(difference(params, ref_snapshot));
    if (driver_trace_ != nullptr) {
      trace::TraceEvent ev;
      ev.kind = trace::EventKind::kElasticPull;
      ev.pipeline = static_cast<std::uint32_t>(i);
      ev.t_begin = t0;
      ev.t_end = config_.tracer->wall_now();
      driver_trace_->record(ev);
    }
  }
  // Wait for the reference process to fold in this iteration (steps ❹–❺) so
  // the next iteration pulls against fresh weights.
  auto applied = applied_queue_.recv();
  AVGPIPE_CHECK(applied.has_value(), "reference process stopped");

  double total = 0;
  for (double l : losses) total += l;
  return total / static_cast<double>(losses.size());
}

nn::Sequential& AvgPipe::eval_model() {
  const ParamSet ref = reference_snapshot();
  auto params = eval_model_.parameters();
  AVGPIPE_CHECK(params.size() == ref.size(), "eval model mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].value().copy_from(ref[i]);
  }
  return eval_model_;
}

ParamSet AvgPipe::reference_snapshot() {
  std::lock_guard<std::mutex> lock(reference_mutex_);
  return reference_->snapshot();
}

// -- AvgPipeTrainer (update semantics only) -----------------------------------------

AvgPipeTrainer::AvgPipeTrainer(const nn::ModelFactory& factory,
                               const runtime::OptimizerFactory& make_optimizer,
                               std::size_t num_pipelines, double alpha,
                               std::string name)
    : alpha_(alpha > 0.0 ? alpha : default_alpha(num_pipelines)),
      name_(std::move(name)) {
  AVGPIPE_CHECK(num_pipelines >= 1, "need at least one pipeline");
  for (std::size_t i = 0; i < num_pipelines; ++i) {
    auto replica = std::make_unique<Replica>();
    replica->model = factory(1234);
    replicas_.push_back(std::move(replica));
  }
  eval_model_ = factory(1234);
  for (std::size_t i = 1; i < replicas_.size(); ++i) {
    nn::copy_parameters(replicas_[0]->model, replicas_[i]->model);
  }
  nn::copy_parameters(replicas_[0]->model, eval_model_);
  for (auto& replica : replicas_) {
    replica->optimizer = make_optimizer(replica->model.parameters());
  }
  reference_ = std::make_unique<ReferenceModel>(
      clone_values(replicas_[0]->model.parameters()));
}

double AvgPipeTrainer::train_iteration(const std::vector<data::Batch>& batches) {
  AVGPIPE_CHECK(batches.size() == replicas_.size(),
                "need one batch per pipeline");
  double loss_sum = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    auto& replica = *replicas_[i];
    replica.optimizer->zero_grad();
    tensor::Variable in(batches[i].inputs);
    tensor::Variable out = replica.model.forward(in);
    tensor::Variable loss =
        out.shape().size() == 3
            ? tensor::softmax_cross_entropy(
                  tensor::reshape(out, {out.shape()[0] * out.shape()[1],
                                        out.shape()[2]}),
                  batches[i].targets)
            : tensor::softmax_cross_entropy(out, batches[i].targets);
    loss.backward();
    replica.optimizer->step();
    loss_sum += loss.value()[0];
  }

  const ParamSet ref_snapshot = reference_->snapshot();
  for (auto& replica : replicas_) {
    auto params = replica->model.parameters();
    elastic_pull(params, ref_snapshot, alpha_);
    reference_->accumulate(difference(params, ref_snapshot));
  }
  reference_->apply_accumulated(replicas_.size());
  return loss_sum / static_cast<double>(replicas_.size());
}

double AvgPipeTrainer::train_batch(const data::Batch& batch) {
  AVGPIPE_CHECK(replicas_.size() == 1,
                "train_batch on a multi-pipeline AvgPipeTrainer");
  return train_iteration({batch});
}

nn::Sequential& AvgPipeTrainer::eval_model() {
  auto params = eval_model_.parameters();
  const auto& ref = reference_->params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].value().copy_from(ref[i]);
  }
  return eval_model_;
}

}  // namespace avgpipe::core
