#include "core/avgpipe.hpp"

#include "common/affinity.hpp"
#include "common/thread_pool.hpp"

namespace avgpipe::core {

namespace {

/// Deep copy of a parameter set: checkpoint state must own its storage
/// (Tensor copies share storage; a live apply must never mutate a capture).
ParamSet clone_set(const ParamSet& src) {
  ParamSet out;
  out.reserve(src.size());
  for (const auto& t : src) out.push_back(t.clone());
  return out;
}

}  // namespace

// -- AvgPipe (full threaded system) ----------------------------------------------

AvgPipe::AvgPipe(const nn::ModelFactory& factory,
                 const runtime::OptimizerFactory& make_optimizer,
                 AvgPipeConfig config)
    : config_(std::move(config)), make_optimizer_(make_optimizer) {
  AVGPIPE_CHECK(config_.num_pipelines >= 1, "need at least one pipeline");
  faults_ = config_.faults != nullptr ? config_.faults : fault::env_plan();
  if (faults_ != nullptr) {
    for (const auto& c : faults_->crashes) {
      AVGPIPE_CHECK(c.pipeline >= 0 &&
                        static_cast<std::size_t>(c.pipeline) <
                            config_.num_pipelines,
                    "fault plan crashes pipeline " << c.pipeline
                                                   << " but the system has "
                                                   << config_.num_pipelines);
    }
  }
  alpha_ = config_.alpha > 0.0 ? config_.alpha
                               : default_alpha(config_.num_pipelines);
  health_.resize(config_.num_pipelines);

  // Thread-placement plan: N*K stage threads issue kernels concurrently, so
  // each gets a fair share of the global pool unless AVGPIPE_STAGE_THREADS
  // overrides; the pin-slot layout additionally covers the N replica workers
  // and the reference thread.
  const std::size_t num_stages = config_.boundaries.size() + 1;
  stage_workers_ = stage_workers_from_env(config_.num_pipelines * num_stages);
  pin_total_slots_ =
      config_.num_pipelines * num_stages + config_.num_pipelines + 1;

  // Build replicas with identical initial weights: replica 0's init is the
  // source of truth, copied into every other replica and the eval model.
  for (std::size_t i = 0; i < config_.num_pipelines; ++i) {
    auto replica = std::make_unique<Replica>();
    replica->model = factory(/*seed=*/1234);
    replicas_.push_back(std::move(replica));
  }
  eval_model_ = factory(1234);
  for (std::size_t i = 1; i < replicas_.size(); ++i) {
    nn::copy_parameters(replicas_[0]->model, replicas_[i]->model);
  }
  nn::copy_parameters(replicas_[0]->model, eval_model_);

  auto params0 = replicas_[0]->model.parameters();
  reference_ = std::make_unique<ReferenceModel>(clone_values(params0));
  policy_ = make_sync_policy(config_.sync);
  // An explicit config pins the compression mode; otherwise the environment
  // decides (default off — the bit-exact path).
  compression_ = config_.sync_compression.has_value()
                     ? *config_.sync_compression
                     : sync_compression_from_env(SyncCompression{});
  broadcast_codec_ = SyncCodec(compression_);
  for (auto& replica : replicas_) replica->push_codec = SyncCodec(compression_);
  // The initial publish is transmission #1 of the broadcast stream (the
  // reference thread isn't running yet, so this is single-threaded — the
  // justification for asserting the reference capability here).
  common::RoleGuard ref_role(reference_capability());
  ParamSet initial_broadcast = policy_->make_broadcast(*reference_);
  if (compression_.enabled()) broadcast_codec_.transmit(initial_broadcast);
  latest_snapshot_ =
      std::make_shared<const ParamSet>(std::move(initial_broadcast));

  // Each replica gets its own pipeline runtime over its own parameters and a
  // persistent worker thread driving it.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->runtime = make_runtime(i);
  }
  if (config_.tracer != nullptr) {
    driver_trace_ = config_.tracer->create_buffer();
    reference_trace_ = config_.tracer->create_buffer();
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) start_worker(i);

  reference_thread_ = std::thread([this] { reference_loop(); });
}

std::unique_ptr<runtime::PipelineRuntime> AvgPipe::make_runtime(
    std::size_t i) {
  auto rt = std::make_unique<runtime::PipelineRuntime>(
      replicas_[i]->model, config_.boundaries, make_optimizer_,
      runtime::cross_entropy_loss(), config_.kind, config_.advance_num);
  if (config_.tracer != nullptr) rt->set_tracer(config_.tracer, i);
  rt->set_faults(faults_);
  rt->set_stage_workers(stage_workers_);
  rt->set_thread_slots(i * (config_.boundaries.size() + 1), pin_total_slots_);
  if (config_.sync.kind == SyncPolicyKind::kXPipe &&
      config_.sync.prediction_lookahead != 0.0) {
    runtime::PredictionConfig pc;
    pc.lookahead = config_.sync.prediction_lookahead;
    pc.beta = config_.sync.prediction_beta;
    rt->set_weight_prediction(pc);
  }
  return rt;
}

AvgPipe::~AvgPipe() {
  // Stop the replica workers first (no further rounds can be produced), then
  // let the reference thread drain any in-flight rounds over the closed
  // queue before joining it.
  for (std::size_t i = 0; i < replicas_.size(); ++i) stop_worker(i);
  update_queue_.close();
  applied_queue_.close();
  if (reference_thread_.joinable()) reference_thread_.join();
}

void AvgPipe::start_worker(std::size_t i) {
  auto& r = *replicas_[i];
  r.jobs = std::make_unique<SpscChannel<ReplicaJob>>(2);
  r.results = std::make_unique<SpscChannel<ReplicaResult>>(2);
  r.thread = std::thread([this, i] { replica_loop(i); });
}

void AvgPipe::stop_worker(std::size_t i) {
  auto& r = *replicas_[i];
  if (r.jobs != nullptr) r.jobs->close();
  if (r.thread.joinable()) r.thread.join();
}

AVGPIPE_HOT_PATH
void AvgPipe::replica_loop(std::size_t i) {
  auto& r = *replicas_[i];
  // Elastic-sync worker slot: after every replica's stage threads. Pinning
  // is a no-op unless AVGPIPE_PIN_THREADS is set and the layout fits.
  const std::size_t num_stages = config_.boundaries.size() + 1;
  pin_current_thread(pin_policy_from_env(),
                     config_.num_pipelines * num_stages + i, pin_total_slots_);
  while (auto job = r.jobs->recv()) {
    if (config_.tracer != nullptr && r.trace_buf == nullptr) {
      r.trace_buf = config_.tracer->create_buffer();
    }
    ReplicaResult res;
    if (job->do_begin) {
      // BSP/BMUF round start: reset this replica from the latest broadcast
      // the reference process has published (fresh in sync mode — the driver
      // waited for the previous apply — and up to sync_lag applies stale in
      // async mode, the only staleness the BSP family admits).
      const Seconds t0 =
          r.trace_buf != nullptr ? config_.tracer->wall_now() : 0;
      const std::shared_ptr<const ParamSet> snap = snapshot_handle();
      auto params = r.model.parameters();
      policy_->begin_round(params, *snap);
      if (r.trace_buf != nullptr) {
        trace::TraceEvent ev;
        ev.kind = trace::EventKind::kPolicyBroadcast;
        ev.pipeline = static_cast<std::uint32_t>(i);
        ev.t_begin = t0;
        ev.t_end = config_.tracer->wall_now();
        r.trace_buf->record(ev);
      }
    }
    try {
      res.loss =
          r.runtime->train_batch(*job->batch, config_.micro_batches).loss;
      res.ok = true;
    } catch (const std::exception& e) {
      res.error = e.what();
    }
    if (res.ok && job->do_pull) {
      // Policy local sync (elastic's steps ❷–❸, or a BSP-family weight
      // clone) on the replica's own thread, against the latest snapshot the
      // reference process has published — possibly stale by up to sync_lag
      // applies, never blocking on one.
      const Seconds t0 =
          r.trace_buf != nullptr ? config_.tracer->wall_now() : 0;
      const std::shared_ptr<const ParamSet> snap = snapshot_handle();
      auto params = r.model.parameters();
      res.update = policy_->local_sync(params, *snap, job->alpha);
      if (compression_.enabled()) {
        const SyncCodec::Stats stats = r.push_codec.transmit(res.update);
        record_sync_bytes(r.trace_buf, i, stats);
      }
      if (r.trace_buf != nullptr) {
        trace::TraceEvent ev;
        ev.kind = trace::EventKind::kElasticPull;
        ev.pipeline = static_cast<std::uint32_t>(i);
        ev.t_begin = t0;
        ev.t_end = config_.tracer->wall_now();
        r.trace_buf->record(ev);
      }
    }
    r.results->send(std::move(res));
  }
}

std::shared_ptr<const ParamSet> AvgPipe::snapshot_handle() {
  common::MutexLock lock(reference_mutex_);
  return latest_snapshot_;
}

AVGPIPE_HOT_PATH
void AvgPipe::reference_loop() {
  // The reference process (paper §3.2): one message per iteration carries
  // the round of local updates from every surviving pipeline; normalise by
  // the round size (N_alive) and apply, keeping the reference at the mean of
  // the survivors.
  //
  // Batched application: under sync_lag > 0 the driver can run ahead, so
  // several rounds may already be queued when this thread wakes. Drain them
  // all and apply the batch in one critical section — the elastic policy's
  // fused sweep touches each reference weight once per batch instead of once
  // per round, and the broadcast snapshot (a full clone) is rebuilt once. An
  // apply token is still sent per round, so the driver's bounded-lag
  // handshake is unchanged. In sync mode (and async with sync_lag = 0) the
  // driver waits for every apply, the queue never holds more than one round,
  // every batch has size 1, and the schedule of pulls/applies — hence the
  // parameter trajectory — is bit-identical to the unbatched loop.
  pin_current_thread(pin_policy_from_env(), pin_total_slots_ - 1,
                     pin_total_slots_);
  while (auto round = update_queue_.recv()) {
    std::vector<std::vector<ParamSet>> rounds;
    rounds.push_back(std::move(*round));
    while (auto more = update_queue_.try_recv()) {
      rounds.push_back(std::move(*more));
    }
    common::MutexLock lock(reference_mutex_);
    // The reference thread is the reference process; reference_mutex_ (held
    // above) serialises it against the driver's snapshot/restore paths.
    common::RoleGuard ref_role(reference_capability());
    if (reference_trace_ != nullptr) {
      // Staleness: local updates received per round but not yet visible to
      // the pipelines through an apply.
      for (const auto& r : rounds) {
        for (std::size_t received = 1; received <= r.size(); ++received) {
          trace::TraceEvent ev;
          ev.kind = trace::EventKind::kCounter;
          ev.counter = trace::CounterId::kStaleness;
          ev.t_begin = ev.t_end = config_.tracer->wall_now();
          ev.value = static_cast<double>(received);
          reference_trace_->record(ev);
        }
      }
    }
    const Seconds t0 =
        reference_trace_ != nullptr ? config_.tracer->wall_now() : 0;
    policy_->apply_rounds(*reference_, rounds);
    ParamSet broadcast = policy_->make_broadcast(*reference_);
    if (compression_.enabled()) {
      const SyncCodec::Stats stats = broadcast_codec_.transmit(broadcast);
      record_sync_bytes(reference_trace_, 0, stats);
    }
    // LINT_ALLOW(hot-path-alloc): the snapshot handle is published by design
    // as a fresh shared_ptr so replica pulls never block on the apply.
    latest_snapshot_ = std::make_shared<const ParamSet>(std::move(broadcast));
    if (reference_trace_ != nullptr) {
      trace::TraceEvent ev;
      ev.kind = trace::EventKind::kReferenceApply;
      ev.t_begin = t0;
      ev.t_end = config_.tracer->wall_now();
      reference_trace_->record(ev);
      trace::TraceEvent batch;
      batch.kind = trace::EventKind::kCounter;
      batch.counter = trace::CounterId::kSyncBatch;
      batch.t_begin = batch.t_end = ev.t_end;
      batch.value = static_cast<double>(rounds.size());
      reference_trace_->record(batch);
    }
    for (std::size_t r = 0; r < rounds.size(); ++r) applied_queue_.send(1);
  }
}

std::size_t AvgPipe::alive_pipelines() const {
  std::size_t n = 0;
  for (const auto& h : health_) n += h.alive ? 1 : 0;
  return n;
}

bool AvgPipe::pipeline_alive(std::size_t i) const {
  AVGPIPE_CHECK(i < health_.size(), "pipeline out of range");
  return health_[i].alive;
}

const fault::PipelineHealth& AvgPipe::health(std::size_t i) const {
  AVGPIPE_CHECK(i < health_.size(), "pipeline out of range");
  return health_[i];
}

void AvgPipe::rebalance_alpha() {
  const std::size_t alive = alive_pipelines();
  if (alive == 0) return;  // the caller throws; keep the last valid α
  alpha_ = config_.alpha > 0.0 ? config_.alpha : default_alpha(alive);
}

void AvgPipe::record_sync_bytes(trace::TraceBuffer* buf, std::size_t pipeline,
                                const SyncCodec::Stats& stats) {
  if (buf == nullptr) return;
  const Seconds now = config_.tracer->wall_now();
  trace::TraceEvent wire;
  wire.kind = trace::EventKind::kCounter;
  wire.counter = trace::CounterId::kSyncBytes;
  wire.pipeline = static_cast<std::uint32_t>(pipeline);
  wire.t_begin = wire.t_end = now;
  wire.bytes = stats.wire_bytes;
  wire.value = static_cast<double>(stats.wire_bytes);
  buf->record(wire);
  trace::TraceEvent raw = wire;
  raw.counter = trace::CounterId::kSyncBytesRaw;
  raw.bytes = stats.raw_bytes;
  raw.value = static_cast<double>(stats.raw_bytes);
  buf->record(raw);
}

void AvgPipe::record_membership_event(trace::EventKind kind,
                                      std::size_t pipeline) {
  if (driver_trace_ == nullptr) return;
  const Seconds now = config_.tracer->wall_now();
  trace::TraceEvent ev;
  ev.kind = kind;
  ev.pipeline = static_cast<std::uint32_t>(pipeline);
  ev.t_begin = ev.t_end = now;
  driver_trace_->record(ev);
  trace::TraceEvent alive;
  alive.kind = trace::EventKind::kCounter;
  alive.counter = trace::CounterId::kAlivePipelines;
  alive.t_begin = alive.t_end = now;
  alive.value = static_cast<double>(alive_pipelines());
  driver_trace_->record(alive);
}

void AvgPipe::detach_pipeline(std::size_t i, const std::string& reason) {
  AVGPIPE_CHECK(i < replicas_.size(), "pipeline out of range");
  if (!health_[i].alive) return;
  health_[i].alive = false;
  ++health_[i].failures;
  health_[i].last_error = reason;
  // Tear the worker and runtime down (threads join) — the "process" is
  // gone. The reference model simply keeps averaging over the survivors:
  // the mean-of-replicas invariant re-establishes at the next apply.
  stop_worker(i);
  replicas_[i]->runtime.reset();
  rebalance_alpha();
  record_membership_event(trace::EventKind::kPipelineCrash, i);
}

void AvgPipe::rejoin_pipeline(std::size_t i) {
  AVGPIPE_CHECK(i < replicas_.size(), "pipeline out of range");
  if (health_[i].alive) return;
  // Re-initialise from the *policy's* reconstruction of state — the paper's
  // pull mechanism doubling as recovery, generalised: elastic/BSP restore
  // the averaged model, BMUF the Nesterov restart point W + η·Δ (restoring
  // raw weights would silently drop the block momentum a rejoiner's first
  // round must see). The fresh runtime brings fresh optimizer state (a real
  // process restart).
  const ParamSet ref = broadcast_snapshot();
  auto params = replicas_[i]->model.parameters();
  AVGPIPE_CHECK(params.size() == ref.size(), "replica/reference mismatch");
  for (std::size_t j = 0; j < params.size(); ++j) {
    params[j].value().copy_from(ref[j]);
    params[j].zero_grad();  // drop partial sums from the crashed batch
  }
  replicas_[i]->runtime = make_runtime(i);
  replicas_[i]->push_codec.reset_residuals();  // a real restart loses them
  start_worker(i);
  health_[i].alive = true;
  health_[i].last_error.clear();
  rebalance_alpha();
  record_membership_event(trace::EventKind::kPipelineRejoin, i);
}

void AvgPipe::apply_scheduled_faults() {
  if (faults_ == nullptr) return;
  for (const auto& c : faults_->crashes) {
    if (c.crash_at_step == iteration_) {
      detach_pipeline(static_cast<std::size_t>(c.pipeline),
                      "injected crash (fault plan)");
    }
    if (c.rejoin_at_step == iteration_) {
      rejoin_pipeline(static_cast<std::size_t>(c.pipeline));
    }
  }
}

double AvgPipe::train_iteration(const std::vector<data::Batch>& batches) {
  AVGPIPE_CHECK(batches.size() == replicas_.size(),
                "need one batch per pipeline: got " << batches.size()
                                                    << ", expected "
                                                    << replicas_.size());
  apply_scheduled_faults();
  AVGPIPE_CHECK(alive_pipelines() >= 1, "no pipeline left alive");
  const long step = iteration_++;

  // Step ❶: each alive pipeline trains on its batch on its persistent
  // worker thread (its runtime is internally threaded; replicas run
  // concurrently). In async mode the worker also runs its own elastic
  // pull/push (❷–❸) before reporting back. A runtime failure is contained
  // to its pipeline: the worker reports it and the driver detaches the
  // pipeline below instead of propagating.
  std::vector<double> losses(replicas_.size(), 0.0);
  std::vector<std::string> errors(replicas_.size());
  std::vector<char> completed(replicas_.size(), 0);
  std::vector<ParamSet> round;
  round.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!health_[i].alive) continue;
    ReplicaJob job;
    job.batch = &batches[i];
    job.alpha = alpha_;
    job.do_pull = config_.async_sync;
    job.do_begin = policy_->needs_begin();
    replicas_[i]->jobs->send(std::move(job));
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!health_[i].alive) continue;
    auto res = replicas_[i]->results->recv();
    AVGPIPE_CHECK(res.has_value(), "replica worker stopped");
    if (res->ok) {
      losses[i] = res->loss;
      completed[i] = 1;
      if (config_.async_sync) round.push_back(std::move(res->update));
    } else {
      errors[i] = std::move(res->error);
    }
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!health_[i].alive) continue;
    if (completed[i]) {
      health_[i].last_ok_step = step;  // heartbeat
    } else {
      detach_pipeline(i, errors[i]);
      // Escalation beyond the elastic detach: any contained worker failure
      // (a thrown runtime error, the robust_recv peer-unresponsive deadline)
      // re-attaches immediately from durable state instead of waiting for an
      // operator rejoin. The lost work is this pipeline's batch; its next
      // pull re-couples it to the survivors' average.
      if (config_.restore_on_failure && config_.checkpoints != nullptr) {
        restore_pipeline_from_checkpoint(i);
      }
    }
  }
  const std::size_t alive = alive_pipelines();
  if (alive == 0) {
    std::string first;
    for (const auto& e : errors) {
      if (!e.empty()) { first = e; break; }
    }
    AVGPIPE_THROW("every pipeline failed at step " << step << ": " << first);
  }

  if (!config_.async_sync) {
    // Synchronous policy local sync over the survivors: pull each replica
    // toward the published broadcast snapshot (identical to the live
    // reference state here — the previous apply was waited for below), ship
    // the round.
    const std::shared_ptr<const ParamSet> snap = snapshot_handle();
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!health_[i].alive) continue;
      const Seconds t0 =
          driver_trace_ != nullptr ? config_.tracer->wall_now() : 0;
      auto params = replicas_[i]->model.parameters();
      ParamSet update = policy_->local_sync(params, *snap, alpha_);
      if (compression_.enabled()) {
        const SyncCodec::Stats stats =
            replicas_[i]->push_codec.transmit(update);
        record_sync_bytes(driver_trace_, i, stats);
      }
      round.push_back(std::move(update));
      if (driver_trace_ != nullptr) {
        trace::TraceEvent ev;
        ev.kind = trace::EventKind::kElasticPull;
        ev.pipeline = static_cast<std::uint32_t>(i);
        ev.t_begin = t0;
        ev.t_end = config_.tracer->wall_now();
        driver_trace_->record(ev);
      }
    }
  }
  update_queue_.send(std::move(round));
  ++outstanding_applies_;
  // Steps ❹–❺ bounded-lag handshake: synchronous mode waits for this
  // iteration's apply so the next pull sees fresh weights; async mode lets
  // up to sync_lag applies trail behind training.
  wait_applies(config_.async_sync ? config_.sync_lag : 0);
  if (driver_trace_ != nullptr) {
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kCounter;
    ev.counter = trace::CounterId::kSyncLag;
    ev.t_begin = ev.t_end = config_.tracer->wall_now();
    ev.value = static_cast<double>(outstanding_applies_);
    driver_trace_->record(ev);
  }

  double total = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (health_[i].alive) total += losses[i];
  }
  return total / static_cast<double>(alive);
}

void AvgPipe::wait_applies(std::size_t limit) {
  while (outstanding_applies_ > limit) {
    auto applied = applied_queue_.recv();
    AVGPIPE_CHECK(applied.has_value(), "reference process stopped");
    --outstanding_applies_;
  }
}

void AvgPipe::synchronize() { wait_applies(0); }

nn::Sequential& AvgPipe::eval_model() {
  const ParamSet ref = reference_snapshot();
  auto params = eval_model_.parameters();
  AVGPIPE_CHECK(params.size() == ref.size(), "eval model mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].value().copy_from(ref[i]);
  }
  return eval_model_;
}

ParamSet AvgPipe::reference_snapshot() {
  synchronize();  // observe every completed iteration's apply
  common::MutexLock lock(reference_mutex_);
  return reference_->snapshot();
}

ParamSet AvgPipe::broadcast_snapshot() {
  synchronize();
  common::MutexLock lock(reference_mutex_);
  // Apply drain + reference_mutex_: the driver is the reference process for
  // the duration of this snapshot.
  common::RoleGuard ref_role(reference_capability());
  return policy_->make_broadcast(*reference_);
}

ParamSet AvgPipe::replica_snapshot(std::size_t i) const {
  AVGPIPE_CHECK(i < replicas_.size(), "pipeline out of range");
  AVGPIPE_CHECK(health_[i].alive, "pipeline " << i << " is detached");
  auto params = replicas_[i]->model.parameters();
  return clone_values(params);
}

// -- durable checkpoint/restore -----------------------------------------------

void AvgPipe::register_rng(const std::string& name, Rng* rng) {
  AVGPIPE_CHECK(rng != nullptr, "register_rng: null stream");
  for (const auto& [existing, _] : rngs_) {
    AVGPIPE_CHECK(existing != name,
                  "register_rng: duplicate stream name '" << name << "'");
  }
  rngs_.emplace_back(name, rng);
}

ckpt::TrainState AvgPipe::capture_state() {
  // The apply drain *is* the capture barrier: after synchronize() the
  // reference has folded every shipped round, every worker is parked between
  // jobs, and the driver owns all parameter and optimizer tensors.
  synchronize();
  ckpt::TrainState state;
  state.step = iteration_;
  state.policy_kind = static_cast<std::uint8_t>(policy_->kind());
  state.alpha = alpha_;
  state.sync_codec = static_cast<std::uint8_t>(compression_.codec);
  {
    common::MutexLock lock(reference_mutex_);
    // Capture barrier (the synchronize() above) + reference_mutex_: the
    // driver is the reference process while it snapshots policy state.
    common::RoleGuard ref_role(reference_capability());
    state.reference = reference_->snapshot();
    state.policy_state = policy_->export_state();
    state.broadcast = clone_set(*latest_snapshot_);
    state.broadcast_residual = clone_set(broadcast_codec_.residuals());
  }
  state.pipelines.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    ckpt::PipelineState p;
    p.alive = health_[i].alive;
    if (p.alive) {
      p.params = replica_snapshot(i);
      p.stages = replicas_[i]->runtime->export_stage_state();
      p.residuals = clone_set(replicas_[i]->push_codec.residuals());
    }
    state.pipelines.push_back(std::move(p));
  }
  state.rng_streams.reserve(rngs_.size());
  for (const auto& [name, rng] : rngs_) {
    state.rng_streams.emplace_back(name, rng->save_state());
  }
  return state;
}

void AvgPipe::restore_pipeline(std::size_t i, const ckpt::PipelineState& p,
                               bool codec_match) {
  auto params = replicas_[i]->model.parameters();
  AVGPIPE_CHECK(params.size() == p.params.size(),
                "restore: pipeline " << i << " has " << params.size()
                                     << " parameters, checkpoint has "
                                     << p.params.size());
  for (std::size_t j = 0; j < params.size(); ++j) {
    params[j].value().copy_from(p.params[j]);
    params[j].zero_grad();  // a crashed batch may have left partial sums
  }
  const bool was_dead = !health_[i].alive;
  if (was_dead) replicas_[i]->runtime = make_runtime(i);
  replicas_[i]->runtime->import_stage_state(p.stages);
  if (codec_match) {
    replicas_[i]->push_codec.set_residuals(clone_set(p.residuals));
  } else {
    replicas_[i]->push_codec.reset_residuals();
  }
  if (was_dead) {
    start_worker(i);
    health_[i].alive = true;
    health_[i].last_error.clear();
    rebalance_alpha();
    record_membership_event(trace::EventKind::kPipelineRejoin, i);
  }
}

void AvgPipe::restore_state(const ckpt::TrainState& state) {
  AVGPIPE_CHECK(state.pipelines.size() == replicas_.size(),
                "restore: checkpoint has " << state.pipelines.size()
                                           << " pipelines, system has "
                                           << replicas_.size());
  AVGPIPE_CHECK(
      state.policy_kind == static_cast<std::uint8_t>(policy_->kind()),
      "restore: checkpoint policy kind " << int(state.policy_kind)
                                         << " != configured policy '"
                                         << policy_->name() << "'");
  synchronize();
  iteration_ = state.step;
  // Residuals only transfer between identically compressed runs; restoring
  // into a differently configured system drops them (a codec change resets
  // the EF streams, like a fresh wire).
  const bool codec_match =
      state.sync_codec == static_cast<std::uint8_t>(compression_.codec);
  {
    common::MutexLock lock(reference_mutex_);
    // Restore barrier (the synchronize() above) + reference_mutex_: the
    // driver is the reference process while it rewrites policy state.
    common::RoleGuard ref_role(reference_capability());
    ParamSet& ref = reference_->mutable_params();
    AVGPIPE_CHECK(ref.size() == state.reference.size(),
                  "restore: reference size mismatch");
    for (std::size_t j = 0; j < ref.size(); ++j) {
      ref[j].copy_from(state.reference[j]);
    }
    policy_->import_state(clone_set(state.policy_state));
    latest_snapshot_ =
        std::make_shared<const ParamSet>(clone_set(state.broadcast));
    if (codec_match) {
      broadcast_codec_.set_residuals(clone_set(state.broadcast_residual));
    } else {
      broadcast_codec_.reset_residuals();
    }
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (state.pipelines[i].alive) {
      restore_pipeline(i, state.pipelines[i], codec_match);
    } else {
      detach_pipeline(i, "restored checkpoint marks pipeline dead");
    }
  }
  for (const auto& [name, snapshot] : state.rng_streams) {
    for (auto& [registered, rng] : rngs_) {
      if (registered == name) rng->restore_state(snapshot);
    }
  }
  // The restored alive set reproduces this value via rebalance_alpha(); the
  // explicit assignment makes the checkpoint authoritative regardless.
  alpha_ = state.alpha;
}

ckpt::ManifestEntry AvgPipe::save_checkpoint() {
  AVGPIPE_CHECK(config_.checkpoints != nullptr,
                "save_checkpoint without config.checkpoints");
  const Seconds t0 =
      driver_trace_ != nullptr ? config_.tracer->wall_now() : 0;
  const ckpt::ManifestEntry entry =
      config_.checkpoints->write(capture_state());
  if (driver_trace_ != nullptr) {
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kCheckpoint;
    ev.batch = static_cast<std::int32_t>(entry.step);
    ev.bytes = entry.bytes;
    ev.value = static_cast<double>(entry.bytes);
    ev.t_begin = t0;
    ev.t_end = config_.tracer->wall_now();
    driver_trace_->record(ev);
  }
  return entry;
}

ckpt::CheckpointDir::LoadResult AvgPipe::restore_latest_checkpoint() {
  AVGPIPE_CHECK(config_.checkpoints != nullptr,
                "restore_latest_checkpoint without config.checkpoints");
  const Seconds t0 =
      driver_trace_ != nullptr ? config_.tracer->wall_now() : 0;
  ckpt::TrainState state;
  const auto res = config_.checkpoints->load_latest(&state);
  if (res.ok) restore_state(state);
  if (driver_trace_ != nullptr) {
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kRestore;
    ev.batch = static_cast<std::int32_t>(res.step);
    ev.value = static_cast<double>(res.fallbacks);
    ev.t_begin = t0;
    ev.t_end = config_.tracer->wall_now();
    driver_trace_->record(ev);
  }
  return res;
}

bool AvgPipe::restore_pipeline_from_checkpoint(std::size_t i) {
  const Seconds t0 =
      driver_trace_ != nullptr ? config_.tracer->wall_now() : 0;
  ckpt::TrainState state;
  const auto res = config_.checkpoints->load_latest(&state);
  // Usable only if the checkpoint knows this pipeline as alive — otherwise
  // (no checkpoint yet, all entries corrupted, or the pipeline was already
  // dead at capture) degrade to the paper's broadcast rejoin.
  const bool usable = res.ok &&
                      state.pipelines.size() == replicas_.size() &&
                      state.pipelines[i].alive;
  if (usable) {
    restore_pipeline(i, state.pipelines[i],
                     state.sync_codec ==
                         static_cast<std::uint8_t>(compression_.codec));
  } else {
    rejoin_pipeline(i);
  }
  if (driver_trace_ != nullptr) {
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kRestore;
    ev.pipeline = static_cast<std::uint32_t>(i);
    ev.batch = usable ? static_cast<std::int32_t>(res.step) : -1;
    ev.value = static_cast<double>(res.fallbacks);
    ev.t_begin = t0;
    ev.t_end = config_.tracer->wall_now();
    driver_trace_->record(ev);
  }
  return usable;
}

// -- AvgPipeTrainer (update semantics only) -----------------------------------------

AvgPipeTrainer::AvgPipeTrainer(const nn::ModelFactory& factory,
                               const runtime::OptimizerFactory& make_optimizer,
                               std::size_t num_pipelines, double alpha,
                               std::string name)
    : AvgPipeTrainer(factory, make_optimizer, num_pipelines,
                     SyncPolicyConfig{}, alpha, std::move(name)) {}

AvgPipeTrainer::AvgPipeTrainer(const nn::ModelFactory& factory,
                               const runtime::OptimizerFactory& make_optimizer,
                               std::size_t num_pipelines, SyncPolicyConfig sync,
                               double alpha, std::string name)
    : alpha_(alpha > 0.0 ? alpha : default_alpha(num_pipelines)),
      name_(std::move(name)) {
  AVGPIPE_CHECK(num_pipelines >= 1, "need at least one pipeline");
  policy_ = make_sync_policy(sync);
  if (name_.empty()) name_ = "AvgPipe[" + policy_->name() + "]";
  for (std::size_t i = 0; i < num_pipelines; ++i) {
    auto replica = std::make_unique<Replica>();
    replica->model = factory(1234);
    replicas_.push_back(std::move(replica));
  }
  eval_model_ = factory(1234);
  for (std::size_t i = 1; i < replicas_.size(); ++i) {
    nn::copy_parameters(replicas_[0]->model, replicas_[i]->model);
  }
  nn::copy_parameters(replicas_[0]->model, eval_model_);
  for (auto& replica : replicas_) {
    replica->optimizer = make_optimizer(replica->model.parameters());
  }
  reference_ = std::make_unique<ReferenceModel>(
      clone_values(replicas_[0]->model.parameters()));
  broadcast_ = policy_->make_broadcast(*reference_);
  compression_ = sync_compression_from_env(SyncCompression{});
  init_codecs();
}

void AvgPipeTrainer::set_sync_compression(SyncCompression compression) {
  compression_ = compression;
  init_codecs();
}

void AvgPipeTrainer::init_codecs() {
  broadcast_codec_ = SyncCodec(compression_);
  push_codecs_.assign(replicas_.size(), SyncCodec(compression_));
  if (compression_.enabled()) {
    // The serial trainer's only thread is the reference process.
    common::RoleGuard ref_role(reference_capability());
    broadcast_ = policy_->make_broadcast(*reference_);
    broadcast_codec_.transmit(broadcast_);
  }
}

double AvgPipeTrainer::train_iteration(const std::vector<data::Batch>& batches) {
  AVGPIPE_CHECK(batches.size() == replicas_.size(),
                "need one batch per pipeline");
  if (policy_->needs_begin()) {
    // BSP/BMUF round start: every replica restarts from the broadcast.
    for (auto& replica : replicas_) {
      auto params = replica->model.parameters();
      policy_->begin_round(params, broadcast_);
    }
  }
  double loss_sum = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    auto& replica = *replicas_[i];
    replica.optimizer->zero_grad();
    tensor::Variable in(batches[i].inputs);
    tensor::Variable out = replica.model.forward(in);
    tensor::Variable loss =
        out.shape().size() == 3
            ? tensor::softmax_cross_entropy(
                  tensor::reshape(out, {out.shape()[0] * out.shape()[1],
                                        out.shape()[2]}),
                  batches[i].targets)
            : tensor::softmax_cross_entropy(out, batches[i].targets);
    loss.backward();
    replica.optimizer->step();
    loss_sum += loss.value()[0];
  }

  // Policy round: elastic's override runs the fused pull+push straight
  // against the live reference (accumulate only writes accum_, so every
  // replica still sees identical reference values — no snapshot clone); the
  // BSP family clones trained weights and replaces/filters the reference.
  std::vector<std::vector<tensor::Variable>> param_sets;
  param_sets.reserve(replicas_.size());
  for (auto& replica : replicas_) {
    param_sets.push_back(replica->model.parameters());
  }
  // The serial trainer's only thread is the reference process.
  common::RoleGuard ref_role(reference_capability());
  if (!compression_.enabled()) {
    policy_->serial_round(*reference_, param_sets, alpha_);
    if (policy_->needs_begin()) {
      broadcast_ = policy_->make_broadcast(*reference_);
    }
  } else {
    // Compressed generic round, mirroring the threaded sync path exactly:
    // local_sync against the *published* (already transmitted) broadcast,
    // transmit each replica's update, apply the round, publish a freshly
    // transmitted broadcast. The elastic fused serial_round can't be used
    // here — it folds the update into the accumulator without ever
    // materialising it, and the wire needs the update as a payload.
    std::vector<ParamSet> round;
    round.reserve(param_sets.size());
    for (std::size_t i = 0; i < param_sets.size(); ++i) {
      ParamSet update = policy_->local_sync(param_sets[i], broadcast_, alpha_);
      push_codecs_[i].transmit(update);
      round.push_back(std::move(update));
    }
    policy_->apply_round(*reference_, round);
    broadcast_ = policy_->make_broadcast(*reference_);
    broadcast_codec_.transmit(broadcast_);
  }
  ++iterations_;
  return loss_sum / static_cast<double>(replicas_.size());
}

ckpt::TrainState AvgPipeTrainer::capture_state() const {
  // The serial trainer's only thread is the reference process.
  common::RoleGuard ref_role(reference_capability());
  ckpt::TrainState state;
  state.step = iterations_;
  state.policy_kind = static_cast<std::uint8_t>(policy_->kind());
  state.alpha = alpha_;
  state.sync_codec = static_cast<std::uint8_t>(compression_.codec);
  state.reference = reference_->snapshot();
  state.policy_state = policy_->export_state();
  state.broadcast = clone_set(broadcast_);
  state.broadcast_residual = clone_set(broadcast_codec_.residuals());
  state.pipelines.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const auto& replica = replicas_[i];
    ckpt::PipelineState p;
    p.params = clone_values(replica->model.parameters());
    runtime::StageState stage;
    stage.optimizer = replica->optimizer->export_state();
    p.stages.push_back(std::move(stage));
    p.residuals = clone_set(push_codecs_[i].residuals());
    state.pipelines.push_back(std::move(p));
  }
  return state;
}

void AvgPipeTrainer::restore_state(const ckpt::TrainState& state) {
  AVGPIPE_CHECK(state.pipelines.size() == replicas_.size(),
                "restore: checkpoint has " << state.pipelines.size()
                                           << " replicas, trainer has "
                                           << replicas_.size());
  AVGPIPE_CHECK(
      state.policy_kind == static_cast<std::uint8_t>(policy_->kind()),
      "restore: checkpoint policy kind " << int(state.policy_kind)
                                         << " != configured policy '"
                                         << policy_->name() << "'");
  iterations_ = state.step;
  const bool codec_match =
      state.sync_codec == static_cast<std::uint8_t>(compression_.codec);
  // The serial trainer's only thread is the reference process.
  common::RoleGuard ref_role(reference_capability());
  ParamSet& ref = reference_->mutable_params();
  AVGPIPE_CHECK(ref.size() == state.reference.size(),
                "restore: reference size mismatch");
  for (std::size_t j = 0; j < ref.size(); ++j) {
    ref[j].copy_from(state.reference[j]);
  }
  policy_->import_state(clone_set(state.policy_state));
  broadcast_ = clone_set(state.broadcast);
  if (codec_match) {
    broadcast_codec_.set_residuals(clone_set(state.broadcast_residual));
  } else {
    broadcast_codec_.reset_residuals();
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const auto& p = state.pipelines[i];
    auto params = replicas_[i]->model.parameters();
    AVGPIPE_CHECK(params.size() == p.params.size(),
                  "restore: replica " << i << " parameter count mismatch");
    for (std::size_t j = 0; j < params.size(); ++j) {
      params[j].value().copy_from(p.params[j]);
      params[j].zero_grad();
    }
    AVGPIPE_CHECK(p.stages.size() == 1,
                  "serial trainer checkpoints one stage per replica, got "
                      << p.stages.size());
    replicas_[i]->optimizer->import_state(p.stages[0].optimizer);
    if (codec_match) {
      push_codecs_[i].set_residuals(clone_set(p.residuals));
    } else {
      push_codecs_[i].reset_residuals();
    }
  }
  alpha_ = state.alpha;
}

double AvgPipeTrainer::train_batch(const data::Batch& batch) {
  AVGPIPE_CHECK(replicas_.size() == 1,
                "train_batch on a multi-pipeline AvgPipeTrainer");
  return train_iteration({batch});
}

nn::Sequential& AvgPipeTrainer::eval_model() {
  auto params = eval_model_.parameters();
  const auto& ref = reference_->params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].value().copy_from(ref[i]);
  }
  return eval_model_;
}

}  // namespace avgpipe::core
