#pragma once

/// \file arena.hpp
/// Size-bucketed buffer recycling for tensor storage.
///
/// Training loops allocate the same handful of tensor shapes every step
/// (activations, gradients, packed GEMM panels). Routing those buffers
/// through `operator new` per op dominates small-model step time and
/// fragments the heap. The arena keeps released buffers in per-thread
/// free lists keyed by rounded capacity; a steady-state training step is
/// served entirely from the cache, so the heap-allocation counter flat-lines
/// after warm-up (the `allocs/op ~ 0` criterion in BENCH_kernels.json).
///
/// Design rules:
///  - Buffers are raw 64-byte-aligned `Scalar` arrays, *uninitialized* on
///    acquire. Callers that need zeros must fill explicitly (`Tensor(Shape)`
///    still zero-fills; `Tensor::uninitialized` does not).
///  - Free lists are `thread_local`; a buffer released on a different thread
///    than it was acquired on simply migrates caches. No locks anywhere.
///  - After a thread's cache is destroyed (thread exit / static teardown),
///    acquire/release fall back to the plain heap, so tensors with static
///    storage duration stay safe.
///  - The per-thread cache is capped (AVGPIPE_ARENA_MAX_MB, default 256);
///    releases beyond the cap free eagerly.

#include <cstddef>
#include <cstdint>

namespace avgpipe::tensor {
using Scalar = double;
}

namespace avgpipe::tensor::arena {

/// Monotonic counters. `acquires` = all acquire() calls; `hits` = served from
/// a free list; `heap_allocs` = fell through to the heap. Process-wide
/// (relaxed atomics) so benches can measure allocs/op across worker threads.
struct Stats {
  std::uint64_t acquires = 0;
  std::uint64_t hits = 0;
  std::uint64_t heap_allocs = 0;
  std::uint64_t releases = 0;
  std::uint64_t heap_frees = 0;
};

/// Acquire an uninitialized buffer holding at least `n` scalars.
/// n == 0 returns nullptr.
Scalar* acquire(std::size_t n);

/// Return a buffer previously obtained from acquire(n). `n` must be the
/// same count passed to acquire.
void release(Scalar* p, std::size_t n) noexcept;

/// Rounded capacity (in scalars) a request of `n` scalars maps to; exposed
/// so tests can assert bucketing behaviour.
std::size_t bucket_capacity(std::size_t n);

/// Process-wide counters since start (or last reset_stats()).
Stats stats();
void reset_stats();

/// Drop every cached buffer owned by the calling thread.
void clear_thread_cache();

/// Globally enable/disable recycling (acquire/release still work, they just
/// bypass the free lists). Used by tests; enabled by default.
void set_enabled(bool enabled);
bool enabled();

}  // namespace avgpipe::tensor::arena
