#include "tensor/kernels.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "tensor/arena.hpp"

namespace avgpipe::tensor {

namespace {
thread_local std::uint64_t tls_flops = 0;
}  // namespace

std::uint64_t thread_flops() { return tls_flops; }

namespace detail {
void add_thread_flops(std::uint64_t n) { tls_flops += n; }
}  // namespace detail

void gemm_reference(const Scalar* a, const Scalar* b, Scalar* c, std::size_t m,
                    std::size_t n, std::size_t k, bool trans_a, bool trans_b,
                    bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0);
  // Index helpers: a is m x k after op, b is k x n after op.
  auto ai = [&](std::size_t i, std::size_t p) {
    return trans_a ? a[p * m + i] : a[i * k + p];
  };
  auto bi = [&](std::size_t p, std::size_t j) {
    return trans_b ? b[j * k + p] : b[p * n + j];
  };
  for (std::size_t i = 0; i < m; ++i) {
    Scalar* crow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const Scalar av = ai(i, p);
      if (av == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * bi(p, j);
    }
  }
}

namespace {

// Register tile and cache-block sizes, tuned for doubles: the B micro-panel
// (KC x NR = 16 KB) lives in L1, the packed A block (MC x KC = 128 KB) in
// L2, and the packed B panel (KC x NC <= 2 MB) in L3.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;
constexpr std::size_t kKc = 256;
constexpr std::size_t kMc = 64;
constexpr std::size_t kNc = 1024;

// Pack buffers hold whole (zero-padded) micro-panels, so round the block
// dims up to full panel multiples.
constexpr std::size_t kAPackElems = ((kMc + kMr - 1) / kMr) * kMr * kKc;
constexpr std::size_t kBPackElems = ((kNc + kNr - 1) / kNr) * kNr * kKc;

/// Pack op(B)[pc:pc+kc, jc:jc+nc] into column panels of width kNr:
/// dst[panel][p][0..kNr) with zero padding past nc.
void pack_b(Scalar* dst, const Scalar* b, std::size_t pc, std::size_t jc,
            std::size_t kc, std::size_t nc, std::size_t n, std::size_t k,
            bool trans_b) {
  for (std::size_t jr = 0; jr < nc; jr += kNr) {
    const std::size_t width = std::min(kNr, nc - jr);
    for (std::size_t p = 0; p < kc; ++p) {
      Scalar* out = dst + jr * kc + p * kNr;
      if (trans_b) {
        // op(B)[p][j] = b[j*k + p]
        const Scalar* src = b + (jc + jr) * k + (pc + p);
        for (std::size_t j = 0; j < width; ++j) out[j] = src[j * k];
      } else {
        const Scalar* src = b + (pc + p) * n + jc + jr;
        for (std::size_t j = 0; j < width; ++j) out[j] = src[j];
      }
      for (std::size_t j = width; j < kNr; ++j) out[j] = 0.0;
    }
  }
}

/// Pack op(A)[ic:ic+mc, pc:pc+kc] into row panels of height kMr:
/// dst[panel][p][0..kMr) with zero padding past mc.
void pack_a(Scalar* dst, const Scalar* a, std::size_t ic, std::size_t pc,
            std::size_t mc, std::size_t kc, std::size_t m, std::size_t k,
            bool trans_a) {
  for (std::size_t ir = 0; ir < mc; ir += kMr) {
    const std::size_t height = std::min(kMr, mc - ir);
    for (std::size_t p = 0; p < kc; ++p) {
      Scalar* out = dst + ir * kc + p * kMr;
      if (trans_a) {
        // op(A)[i][p] = a[p*m + i]
        const Scalar* src = a + (pc + p) * m + ic + ir;
        for (std::size_t i = 0; i < height; ++i) out[i] = src[i];
      } else {
        const Scalar* src = a + (ic + ir) * k + (pc + p);
        for (std::size_t i = 0; i < height; ++i) out[i] = src[i * k];
      }
      for (std::size_t i = height; i < kMr; ++i) out[i] = 0.0;
    }
  }
}

/// kMr x kNr register-tiled core: C tile (+)= packed-A panel * packed-B
/// panel. `mr`/`nr` bound the stores for edge tiles; the multiply loop
/// always runs the full (zero-padded) tile so it stays branch-free and
/// unrollable. The body is force-inlined into per-ISA wrappers below so the
/// compiler can re-vectorize it for each target.
__attribute__((always_inline)) inline void micro_kernel_body(
    std::size_t kc, const Scalar* ap, const Scalar* bp, Scalar* c,
    std::size_t ldc, std::size_t mr, std::size_t nr, bool overwrite) {
  Scalar acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const Scalar* arow = ap + p * kMr;
    const Scalar* brow = bp + p * kNr;
    for (std::size_t i = 0; i < kMr; ++i) {
      const Scalar av = arow[i];
      for (std::size_t j = 0; j < kNr; ++j) acc[i][j] += av * brow[j];
    }
  }
  if (overwrite) {
    for (std::size_t i = 0; i < mr; ++i) {
      for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] = acc[i][j];
    }
  } else {
    for (std::size_t i = 0; i < mr; ++i) {
      for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
    }
  }
}

void micro_kernel_portable(std::size_t kc, const Scalar* ap, const Scalar* bp,
                           Scalar* c, std::size_t ldc, std::size_t mr,
                           std::size_t nr, bool overwrite) {
  micro_kernel_body(kc, ap, bp, c, ldc, mr, nr, overwrite);
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define AVGPIPE_GEMM_AVX2 1
/// Same body recompiled for AVX2+FMA: the 4x8 accumulator tile becomes 8
/// ymm registers with broadcast-FMA inner ops, which is what lifts the
/// kernel past the SSE2 baseline's 2-wide peak. Selected at runtime so the
/// binary still runs (and stays bit-stable) on machines without AVX2.
__attribute__((target("avx2,fma"))) void micro_kernel_avx2(
    std::size_t kc, const Scalar* ap, const Scalar* bp, Scalar* c,
    std::size_t ldc, std::size_t mr, std::size_t nr, bool overwrite) {
  micro_kernel_body(kc, ap, bp, c, ldc, mr, nr, overwrite);
}
#endif

using MicroKernel = void (*)(std::size_t, const Scalar*, const Scalar*,
                             Scalar*, std::size_t, std::size_t, std::size_t,
                             bool);

MicroKernel pick_micro_kernel() {
#ifdef AVGPIPE_GEMM_AVX2
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return micro_kernel_avx2;
  }
#endif
  return micro_kernel_portable;
}

const MicroKernel micro_kernel = pick_micro_kernel();

}  // namespace

void gemm_blocked(const Scalar* a, const Scalar* b, Scalar* c, std::size_t m,
                  std::size_t n, std::size_t k, bool trans_a, bool trans_b,
                  bool accumulate) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (!accumulate) std::fill(c, c + m * n, 0.0);
    return;
  }

  const std::size_t num_row_blocks = (m + kMc - 1) / kMc;
  Scalar* bpack = arena::acquire(kBPackElems);

  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t nc = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kc = std::min(kKc, k - pc);
      // The packed panel is shared read-only by every row-block task; the
      // parallel_for dispatch orders the pack before the reads.
      pack_b(bpack, b, pc, jc, kc, nc, n, k, trans_b);
      const bool overwrite = (pc == 0) && !accumulate;

      ThreadPool::global().parallel_for(
          0, num_row_blocks,
          [&](std::size_t blk_lo, std::size_t blk_hi) {
            Scalar* apack = arena::acquire(kAPackElems);
            for (std::size_t blk = blk_lo; blk < blk_hi; ++blk) {
              const std::size_t ic = blk * kMc;
              const std::size_t mc = std::min(kMc, m - ic);
              pack_a(apack, a, ic, pc, mc, kc, m, k, trans_a);
              for (std::size_t jr = 0; jr < nc; jr += kNr) {
                const std::size_t nr = std::min(kNr, nc - jr);
                for (std::size_t ir = 0; ir < mc; ir += kMr) {
                  const std::size_t mr = std::min(kMr, mc - ir);
                  micro_kernel(kc, apack + ir * kc, bpack + jr * kc,
                               c + (ic + ir) * n + jc + jr, n, mr, nr,
                               overwrite);
                }
              }
            }
            arena::release(apack, kAPackElems);
          });
    }
  }
  arena::release(bpack, kBPackElems);
}

}  // namespace avgpipe::tensor
