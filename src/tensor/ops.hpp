#pragma once

/// \file ops.hpp
/// Differentiable operations over `Variable`, plus a few detached helpers.
///
/// Every op builds the forward value eagerly and registers a backward closure
/// via `Variable::make_op`. Shapes follow row-major conventions; "rows"
/// always means all leading dimensions flattened and "cols" the last
/// dimension, so 2-D ops apply unchanged to [B, S, C] activations.

#include <vector>

#include "tensor/autograd.hpp"

namespace avgpipe::tensor {

// -- elementwise --------------------------------------------------------------

Variable add(const Variable& a, const Variable& b);   ///< same shape
Variable sub(const Variable& a, const Variable& b);   ///< same shape
Variable mul(const Variable& a, const Variable& b);   ///< same shape (Hadamard)
Variable neg(const Variable& a);
Variable scale(const Variable& a, Scalar s);
/// x + bias where bias has shape [C] and x's last dim is C.
Variable add_bias(const Variable& x, const Variable& bias);

// In-place variants (trailing underscore, torch-style): they overwrite the
// value of `x` and return a node whose value aliases it, saving one
// allocation + copy pass per call. Only legal when the caller owns `x` as a
// freshly produced op output whose producer's backward does not read its own
// output value (matmul/bmm/add qualify; activations and softmax do not).
// Applying one to a grad-requiring leaf (i.e. a parameter) is checked fatal.
Variable scale_(const Variable& a, Scalar s);
Variable add_bias_(const Variable& x, const Variable& bias);

// -- activations --------------------------------------------------------------

Variable relu(const Variable& x);
Variable tanh_op(const Variable& x);
Variable sigmoid(const Variable& x);
/// Gaussian error linear unit (tanh approximation), used by BERT blocks.
Variable gelu(const Variable& x);

/// In-place activations (same ownership rules as scale_/add_bias_).
Variable relu_(const Variable& x);
Variable tanh_op_(const Variable& x);
Variable sigmoid_(const Variable& x);

// -- linear algebra -----------------------------------------------------------

/// [M,K] x [K,N] -> [M,N].
Variable matmul(const Variable& a, const Variable& b);
/// Batched: [B,M,K] x [B,K,N] -> [B,M,N].
Variable bmm(const Variable& a, const Variable& b);
/// Swap the last two dims (copy). Works for 2-D and 3-D inputs.
Variable transpose_last2(const Variable& x);
/// [A,B,C,D] -> [A,C,B,D] (copy); the multi-head attention reshuffle.
Variable permute_0213(const Variable& x);

// -- shape --------------------------------------------------------------------

/// View with new shape (no copy; grad flows through as a reshape).
Variable reshape(const Variable& x, Shape shape);
/// Columns [lo, hi) of a 2-D tensor.
Variable slice_cols(const Variable& x, std::size_t lo, std::size_t hi);
/// Rows [lo, hi) of the flattened-leading-dims view.
Variable slice_rows(const Variable& x, std::size_t lo, std::size_t hi);
/// Concatenate 2-D tensors along rows (dim 0).
Variable concat_rows(const std::vector<Variable>& xs);

// -- normalisation / regularisation -------------------------------------------

/// Row-wise softmax over the last dimension.
Variable softmax_rows(const Variable& x);
/// LayerNorm over the last dimension with affine parameters gamma/beta [C].
Variable layer_norm(const Variable& x, const Variable& gamma,
                    const Variable& beta, Scalar eps = 1e-5);
/// Inverted dropout; identity when !training or p == 0.
Variable dropout(const Variable& x, double p, Rng& rng, bool training);

// -- lookups ------------------------------------------------------------------

/// weight[V,D] gathered at `indices` -> [N,D].
Variable embedding(const Variable& weight, const std::vector<int>& indices);

// -- reductions / losses -------------------------------------------------------

Variable sum_all(const Variable& x);   ///< scalar [1]
Variable mean_all(const Variable& x);  ///< scalar [1]
/// Mean softmax cross-entropy of logits [N,C] against integer targets [N].
Variable softmax_cross_entropy(const Variable& logits,
                               const std::vector<int>& targets);
/// Mean squared error against a constant target.
Variable mse_loss(const Variable& pred, const Tensor& target);

// -- detached helpers (no autograd) --------------------------------------------

/// Row-wise argmax of a [N,C] tensor.
std::vector<int> argmax_rows(const Tensor& logits);
/// Fraction of rows whose argmax equals the target.
double accuracy(const Tensor& logits, const std::vector<int>& targets);
/// Raw GEMM: C (+)= op(A) * op(B); op is optional transpose. Dispatches to
/// the blocked/parallel kernel (kernels.hpp) above kGemmBlockedThreshold
/// multiply-adds, else the reference loop.
void gemm(const Scalar* a, const Scalar* b, Scalar* c, std::size_t m,
          std::size_t n, std::size_t k, bool trans_a, bool trans_b,
          bool accumulate);

}  // namespace avgpipe::tensor
