#pragma once

/// \file autograd.hpp
/// Reverse-mode automatic differentiation over `Tensor`.
///
/// A `Variable` wraps a value tensor plus (optionally) a gradient buffer and
/// a backward closure linking it to its inputs. Calling `backward()` on a
/// scalar output walks the recorded DAG in reverse creation order and
/// accumulates gradients into every reachable variable with
/// `requires_grad == true`. The design follows the define-by-run style of
/// the frameworks the paper builds on: the graph is rebuilt on every forward
/// pass, so pipeline stages can own disjoint sub-graphs and exchange only
/// boundary activations/gradients (see runtime/).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace avgpipe::tensor {

class Variable;

namespace detail {

struct VarData {
  Tensor value;
  Tensor grad;  ///< allocated lazily on first accumulation
  bool requires_grad = false;
  bool grad_allocated = false;
  std::uint64_t seq = 0;  ///< creation order; backward runs in descending seq
  std::vector<std::shared_ptr<VarData>> parents;
  /// Propagates this node's grad into parents' grads. Null for leaves.
  std::function<void(VarData&)> backward_fn;

  /// grad += g, allocating on first use.
  void accumulate_grad(const Tensor& g);
};

}  // namespace detail

/// Handle to a node in the autograd graph. Cheap to copy (shared ownership).
class Variable {
 public:
  /// Null variable; usable only after assignment.
  Variable() = default;

  /// Leaf variable. Parameters pass requires_grad=true.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return data_ != nullptr; }

  const Tensor& value() const { return data_->value; }
  Tensor& value() { return data_->value; }

  /// Gradient buffer; zeros of value-shape if never accumulated.
  const Tensor& grad() const;
  /// Mutable gradient buffer (optimizers and gradient scaling).
  Tensor& mutable_grad() { return const_cast<Tensor&>(grad()); }
  bool requires_grad() const { return data_ && data_->requires_grad; }

  const Shape& shape() const { return data_->value.shape(); }
  std::size_t numel() const { return data_->value.numel(); }

  /// Clear this node's gradient (keeps the buffer).
  void zero_grad();

  /// Reverse-mode sweep seeding d(out)/d(out) = 1. Output must be scalar.
  void backward() const;
  /// Reverse-mode sweep with an explicit seed gradient (for pipeline stages:
  /// the seed is the gradient arriving from the downstream stage).
  void backward(const Tensor& seed) const;

  /// Value copy detached from the graph (no grad history).
  Variable detach() const;

  /// Internal: construct an op output. `backward_fn` receives the output
  /// node and must accumulate into parents.
  static Variable make_op(Tensor value,
                          std::vector<Variable> parents,
                          std::function<void(detail::VarData&)> backward_fn);

  std::shared_ptr<detail::VarData> data() const { return data_; }

 private:
  explicit Variable(std::shared_ptr<detail::VarData> data)
      : data_(std::move(data)) {}

  std::shared_ptr<detail::VarData> data_;
};

/// Count of graph nodes created so far (diagnostic; monotone).
std::uint64_t autograd_nodes_created();

}  // namespace avgpipe::tensor
