#include "tensor/arena.hpp"

#include <atomic>
#include <new>
#include <unordered_map>
#include <vector>

#include "common/env.hpp"

namespace avgpipe::tensor::arena {

namespace {

constexpr std::size_t kAlignment = 64;  // cache line; also max SIMD width
constexpr std::size_t kGranularity = 8; // round capacities to 8 scalars

std::atomic<std::uint64_t> g_acquires{0};
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_heap_allocs{0};
std::atomic<std::uint64_t> g_releases{0};
std::atomic<std::uint64_t> g_heap_frees{0};
std::atomic<bool> g_enabled{true};

std::size_t max_cached_bytes() {
  static const std::size_t limit = [] {
    // Once-guarded read; nothing calls setenv.
    const long mb = common::env_int("AVGPIPE_ARENA_MAX_MB", 256);
    return mb >= 0 ? static_cast<std::size_t>(mb) << 20
                   : std::size_t{256} << 20;
  }();
  return limit;
}

Scalar* heap_acquire(std::size_t capacity) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return static_cast<Scalar*>(::operator new(
      capacity * sizeof(Scalar), std::align_val_t{kAlignment}));
}

void heap_free(Scalar* p) noexcept {
  g_heap_frees.fetch_add(1, std::memory_order_relaxed);
  ::operator delete(p, std::align_val_t{kAlignment});
}

/// Per-thread free lists keyed by rounded capacity. Accessed through a raw
/// pointer that the owner nulls on destruction, so acquire/release during
/// thread teardown (or static destruction of long-lived tensors) degrade to
/// the plain heap instead of touching a dead cache.
struct Cache {
  std::unordered_map<std::size_t, std::vector<Scalar*>> free_lists;
  std::size_t cached_bytes = 0;

  ~Cache() {
    for (auto& [capacity, list] : free_lists) {
      (void)capacity;
      for (Scalar* p : list) heap_free(p);
    }
  }
};

thread_local Cache* tl_cache = nullptr;

struct CacheOwner {
  Cache cache;
  CacheOwner() { tl_cache = &cache; }
  ~CacheOwner() { tl_cache = nullptr; }
};

Cache* cache() {
  thread_local CacheOwner owner;
  return tl_cache;
}

}  // namespace

std::size_t bucket_capacity(std::size_t n) {
  return (n + kGranularity - 1) / kGranularity * kGranularity;
}

Scalar* acquire(std::size_t n) {
  if (n == 0) return nullptr;
  g_acquires.fetch_add(1, std::memory_order_relaxed);
  const std::size_t capacity = bucket_capacity(n);
  if (g_enabled.load(std::memory_order_relaxed)) {
    if (Cache* c = cache()) {
      auto it = c->free_lists.find(capacity);
      if (it != c->free_lists.end() && !it->second.empty()) {
        Scalar* p = it->second.back();
        it->second.pop_back();
        c->cached_bytes -= capacity * sizeof(Scalar);
        g_hits.fetch_add(1, std::memory_order_relaxed);
        return p;
      }
    }
  }
  return heap_acquire(capacity);
}

void release(Scalar* p, std::size_t n) noexcept {
  if (p == nullptr) return;
  g_releases.fetch_add(1, std::memory_order_relaxed);
  const std::size_t capacity = bucket_capacity(n);
  if (g_enabled.load(std::memory_order_relaxed)) {
    Cache* c = tl_cache;  // never (re)construct during teardown
    if (c != nullptr &&
        c->cached_bytes + capacity * sizeof(Scalar) <= max_cached_bytes()) {
      c->free_lists[capacity].push_back(p);
      c->cached_bytes += capacity * sizeof(Scalar);
      return;
    }
  }
  heap_free(p);
}

Stats stats() {
  Stats s;
  s.acquires = g_acquires.load(std::memory_order_relaxed);
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);
  s.releases = g_releases.load(std::memory_order_relaxed);
  s.heap_frees = g_heap_frees.load(std::memory_order_relaxed);
  return s;
}

void reset_stats() {
  g_acquires.store(0, std::memory_order_relaxed);
  g_hits.store(0, std::memory_order_relaxed);
  g_heap_allocs.store(0, std::memory_order_relaxed);
  g_releases.store(0, std::memory_order_relaxed);
  g_heap_frees.store(0, std::memory_order_relaxed);
}

void clear_thread_cache() {
  if (Cache* c = cache()) {
    for (auto& [capacity, list] : c->free_lists) {
      (void)capacity;
      for (Scalar* p : list) heap_free(p);
      list.clear();
    }
    c->cached_bytes = 0;
  }
}

void set_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

}  // namespace avgpipe::tensor::arena
