#pragma once

/// \file kernels.hpp
/// High-performance compute kernels under the autograd ops.
///
/// The centrepiece is a cache-blocked, panel-packed GEMM in the classic
/// GotoBLAS/BLIS loop nest: op(B) is packed into KCxNR column panels and
/// op(A) into MCxKC row panels (transposes are absorbed by the packing
/// gathers, so the micro-kernel always streams contiguous memory), and an
/// MRxNR register-tiled micro-kernel accumulates C tiles with fully
/// unrolled inner loops the compiler auto-vectorizes. Row-panel blocks are
/// fanned out over the process-wide ThreadPool; each worker writes a
/// disjoint set of C rows, so results are bit-identical for any thread
/// count.
///
/// `gemm_reference` keeps the original unblocked triple loop as the parity
/// oracle (tests/kernel_test.cpp) and the baseline the micro-benchmarks
/// measure speedups against.

#include <cstddef>
#include <cstdint>

#include "tensor/tensor.hpp"

namespace avgpipe::tensor {

/// Per-thread running count of floating-point operations issued through the
/// gemm dispatcher (2·m·n·k per call). The count accrues on the *issuing*
/// thread even when the blocked kernel fans row panels out to pool workers,
/// so a pipeline stage thread's delta across an instruction is that
/// instruction's full matmul work — the basis of the per-stage achieved
/// GFLOP/s counter (trace::CounterId::kFlops). Monotone per thread; sample
/// deltas, don't reset.
std::uint64_t thread_flops();

namespace detail {
/// Fold `n` issued FLOPs into the calling thread's counter (ops.cpp's gemm
/// dispatch; not meant for user code).
void add_thread_flops(std::uint64_t n);
}  // namespace detail

/// The pre-optimisation scalar GEMM (unblocked i-p-j loops). Kept as the
/// parity/benchmark reference. C (+)= op(A) * op(B).
void gemm_reference(const Scalar* a, const Scalar* b, Scalar* c, std::size_t m,
                    std::size_t n, std::size_t k, bool trans_a, bool trans_b,
                    bool accumulate);

/// Cache-blocked packed GEMM, parallelised over row panels via
/// ThreadPool::global(). Same contract as gemm_reference.
void gemm_blocked(const Scalar* a, const Scalar* b, Scalar* c, std::size_t m,
                  std::size_t n, std::size_t k, bool trans_a, bool trans_b,
                  bool accumulate);

/// Problem-size threshold (in multiply-adds, m*n*k) below which the packing
/// overhead of the blocked kernel is not worth it and `gemm` dispatches to
/// the reference loop.
inline constexpr std::size_t kGemmBlockedThreshold = 8192;

}  // namespace avgpipe::tensor
