#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace avgpipe::tensor {

namespace {

/// Rows = product of leading dims, cols = last dim.
void rows_cols(const Tensor& t, std::size_t& rows, std::size_t& cols) {
  AVGPIPE_CHECK(t.ndim() >= 1, "rows_cols needs >= 1-D tensor");
  cols = t.shape().back();
  rows = cols == 0 ? 0 : t.numel() / cols;
}

using detail::VarData;

}  // namespace

// -- raw GEMM -----------------------------------------------------------------

void gemm(const Scalar* a, const Scalar* b, Scalar* c, std::size_t m,
          std::size_t n, std::size_t k, bool trans_a, bool trans_b,
          bool accumulate) {
  if (!accumulate) std::fill(c, c + m * n, 0.0);
  // Index helpers: a is m x k after op, b is k x n after op.
  auto ai = [&](std::size_t i, std::size_t p) {
    return trans_a ? a[p * m + i] : a[i * k + p];
  };
  auto bi = [&](std::size_t p, std::size_t j) {
    return trans_b ? b[j * k + p] : b[p * n + j];
  };
  for (std::size_t i = 0; i < m; ++i) {
    Scalar* crow = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const Scalar av = ai(i, p);
      if (av == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * bi(p, j);
    }
  }
}

// -- elementwise --------------------------------------------------------------

Variable add(const Variable& a, const Variable& b) {
  AVGPIPE_CHECK(a.value().numel() == b.value().numel(),
                "add: numel mismatch " << shape_to_string(a.shape()) << " vs "
                                       << shape_to_string(b.shape()));
  Tensor out = a.value().clone();
  out.axpy_(1.0, b.value());
  auto pa = a.data();
  auto pb = b.data();
  return Variable::make_op(std::move(out), {a, b}, [pa, pb](VarData& o) {
    if (pa->requires_grad) pa->accumulate_grad(o.grad);
    if (pb->requires_grad) pb->accumulate_grad(o.grad);
  });
}

Variable sub(const Variable& a, const Variable& b) {
  AVGPIPE_CHECK(a.value().numel() == b.value().numel(), "sub: numel mismatch");
  Tensor out = a.value().clone();
  out.axpy_(-1.0, b.value());
  auto pa = a.data();
  auto pb = b.data();
  return Variable::make_op(std::move(out), {a, b}, [pa, pb](VarData& o) {
    if (pa->requires_grad) pa->accumulate_grad(o.grad);
    if (pb->requires_grad) {
      Tensor g = o.grad.clone();
      g.scale_(-1.0);
      pb->accumulate_grad(g);
    }
  });
}

Variable mul(const Variable& a, const Variable& b) {
  AVGPIPE_CHECK(a.value().numel() == b.value().numel(), "mul: numel mismatch");
  Tensor out(a.shape());
  const auto av = a.value().data();
  const auto bv = b.value().data();
  auto ov = out.data();
  for (std::size_t i = 0; i < ov.size(); ++i) ov[i] = av[i] * bv[i];
  auto pa = a.data();
  auto pb = b.data();
  return Variable::make_op(std::move(out), {a, b}, [pa, pb](VarData& o) {
    const auto g = o.grad.data();
    if (pa->requires_grad) {
      Tensor ga(pa->value.shape());
      auto gav = ga.data();
      const auto bv2 = pb->value.data();
      for (std::size_t i = 0; i < gav.size(); ++i) gav[i] = g[i] * bv2[i];
      pa->accumulate_grad(ga);
    }
    if (pb->requires_grad) {
      Tensor gb(pb->value.shape());
      auto gbv = gb.data();
      const auto av2 = pa->value.data();
      for (std::size_t i = 0; i < gbv.size(); ++i) gbv[i] = g[i] * av2[i];
      pb->accumulate_grad(gb);
    }
  });
}

Variable neg(const Variable& a) { return scale(a, -1.0); }

Variable scale(const Variable& a, Scalar s) {
  Tensor out = a.value().clone();
  out.scale_(s);
  auto pa = a.data();
  return Variable::make_op(std::move(out), {a}, [pa, s](VarData& o) {
    Tensor g = o.grad.clone();
    g.scale_(s);
    pa->accumulate_grad(g);
  });
}

Variable add_bias(const Variable& x, const Variable& bias) {
  std::size_t rows = 0, cols = 0;
  rows_cols(x.value(), rows, cols);
  AVGPIPE_CHECK(bias.value().numel() == cols,
                "add_bias: bias numel " << bias.value().numel()
                                        << " != last dim " << cols);
  Tensor out = x.value().clone();
  auto ov = out.data();
  const auto bv = bias.value().data();
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) ov[r * cols + c] += bv[c];
  }
  auto px = x.data();
  auto pb = bias.data();
  return Variable::make_op(
      std::move(out), {x, bias}, [px, pb, rows, cols](VarData& o) {
        if (px->requires_grad) px->accumulate_grad(o.grad);
        if (pb->requires_grad) {
          Tensor gb(pb->value.shape());
          auto gbv = gb.data();
          const auto g = o.grad.data();
          for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) gbv[c] += g[r * cols + c];
          }
          pb->accumulate_grad(gb);
        }
      });
}

// -- activations --------------------------------------------------------------

namespace {
/// Shared scaffold for unary elementwise ops with derivative expressed in
/// terms of (input value, output value).
Variable unary_op(const Variable& x, Scalar (*fwd)(Scalar),
                  Scalar (*dydx)(Scalar /*x*/, Scalar /*y*/)) {
  Tensor out(x.shape());
  const auto xv = x.value().data();
  auto ov = out.data();
  for (std::size_t i = 0; i < ov.size(); ++i) ov[i] = fwd(xv[i]);
  auto px = x.data();
  Tensor saved = out;  // alias; safe because ops never mutate values
  return Variable::make_op(std::move(out), {x}, [px, saved, dydx](VarData& o) {
    Tensor g(px->value.shape());
    auto gv = g.data();
    const auto og = o.grad.data();
    const auto xv2 = px->value.data();
    const auto yv = saved.data();
    for (std::size_t i = 0; i < gv.size(); ++i) {
      gv[i] = og[i] * dydx(xv2[i], yv[i]);
    }
    px->accumulate_grad(g);
  });
}
}  // namespace

Variable relu(const Variable& x) {
  return unary_op(
      x, [](Scalar v) { return v > 0.0 ? v : 0.0; },
      [](Scalar v, Scalar) { return v > 0.0 ? 1.0 : 0.0; });
}

Variable tanh_op(const Variable& x) {
  return unary_op(
      x, [](Scalar v) { return std::tanh(v); },
      [](Scalar, Scalar y) { return 1.0 - y * y; });
}

Variable sigmoid(const Variable& x) {
  return unary_op(
      x, [](Scalar v) { return 1.0 / (1.0 + std::exp(-v)); },
      [](Scalar, Scalar y) { return y * (1.0 - y); });
}

Variable gelu(const Variable& x) {
  // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi)(x + 0.044715 x^3)))
  return unary_op(
      x,
      [](Scalar v) {
        const Scalar c = 0.7978845608028654;  // sqrt(2/pi)
        return 0.5 * v * (1.0 + std::tanh(c * (v + 0.044715 * v * v * v)));
      },
      [](Scalar v, Scalar) {
        const Scalar c = 0.7978845608028654;
        const Scalar u = c * (v + 0.044715 * v * v * v);
        const Scalar t = std::tanh(u);
        const Scalar du = c * (1.0 + 3.0 * 0.044715 * v * v);
        return 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du;
      });
}

// -- linear algebra -----------------------------------------------------------

Variable matmul(const Variable& a, const Variable& b) {
  AVGPIPE_CHECK(a.value().ndim() == 2 && b.value().ndim() == 2,
                "matmul expects 2-D inputs, got "
                    << shape_to_string(a.shape()) << " x "
                    << shape_to_string(b.shape()));
  const std::size_t m = a.value().dim(0), k = a.value().dim(1);
  const std::size_t k2 = b.value().dim(0), n = b.value().dim(1);
  AVGPIPE_CHECK(k == k2, "matmul inner dims mismatch: " << k << " vs " << k2);
  Tensor out({m, n});
  gemm(a.value().data().data(), b.value().data().data(), out.data().data(), m,
       n, k, false, false, false);
  auto pa = a.data();
  auto pb = b.data();
  return Variable::make_op(
      std::move(out), {a, b}, [pa, pb, m, n, k](VarData& o) {
        const Scalar* g = o.grad.data().data();
        if (pa->requires_grad) {
          Tensor ga({m, k});  // dA = dC * B^T
          gemm(g, pb->value.data().data(), ga.data().data(), m, k, n, false,
               true, false);
          pa->accumulate_grad(ga);
        }
        if (pb->requires_grad) {
          Tensor gb({k, n});  // dB = A^T * dC
          gemm(pa->value.data().data(), g, gb.data().data(), k, n, m, true,
               false, false);
          pb->accumulate_grad(gb);
        }
      });
}

Variable bmm(const Variable& a, const Variable& b) {
  AVGPIPE_CHECK(a.value().ndim() == 3 && b.value().ndim() == 3,
                "bmm expects 3-D inputs");
  const std::size_t bs = a.value().dim(0);
  const std::size_t m = a.value().dim(1), k = a.value().dim(2);
  const std::size_t n = b.value().dim(2);
  AVGPIPE_CHECK(b.value().dim(0) == bs && b.value().dim(1) == k,
                "bmm shape mismatch: " << shape_to_string(a.shape()) << " x "
                                       << shape_to_string(b.shape()));
  Tensor out({bs, m, n});
  for (std::size_t i = 0; i < bs; ++i) {
    gemm(a.value().data().data() + i * m * k,
         b.value().data().data() + i * k * n, out.data().data() + i * m * n, m,
         n, k, false, false, false);
  }
  auto pa = a.data();
  auto pb = b.data();
  return Variable::make_op(
      std::move(out), {a, b}, [pa, pb, bs, m, n, k](VarData& o) {
        const Scalar* g = o.grad.data().data();
        if (pa->requires_grad) {
          Tensor ga({bs, m, k});
          for (std::size_t i = 0; i < bs; ++i) {
            gemm(g + i * m * n, pb->value.data().data() + i * k * n,
                 ga.data().data() + i * m * k, m, k, n, false, true, false);
          }
          pa->accumulate_grad(ga);
        }
        if (pb->requires_grad) {
          Tensor gb({bs, k, n});
          for (std::size_t i = 0; i < bs; ++i) {
            gemm(pa->value.data().data() + i * m * k, g + i * m * n,
                 gb.data().data() + i * k * n, k, n, m, true, false, false);
          }
          pb->accumulate_grad(gb);
        }
      });
}

namespace {
Tensor transpose_last2_tensor(const Tensor& x) {
  const std::size_t nd = x.ndim();
  AVGPIPE_CHECK(nd >= 2, "transpose_last2 needs >= 2-D");
  const std::size_t r = x.shape()[nd - 2];
  const std::size_t c = x.shape()[nd - 1];
  const std::size_t batches = x.numel() / (r * c);
  Shape out_shape = x.shape();
  std::swap(out_shape[nd - 2], out_shape[nd - 1]);
  Tensor out(out_shape);
  const auto xv = x.data();
  auto ov = out.data();
  for (std::size_t bidx = 0; bidx < batches; ++bidx) {
    const std::size_t base = bidx * r * c;
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        ov[base + j * r + i] = xv[base + i * c + j];
      }
    }
  }
  return out;
}
}  // namespace

Variable transpose_last2(const Variable& x) {
  Tensor out = transpose_last2_tensor(x.value());
  auto px = x.data();
  return Variable::make_op(std::move(out), {x}, [px](VarData& o) {
    px->accumulate_grad(transpose_last2_tensor(o.grad));
  });
}

namespace {
Tensor permute_0213_tensor(const Tensor& x) {
  AVGPIPE_CHECK(x.ndim() == 4, "permute_0213 needs a 4-D tensor");
  const std::size_t A = x.dim(0), B = x.dim(1), C = x.dim(2), D = x.dim(3);
  Tensor out({A, C, B, D});
  const auto xv = x.data();
  auto ov = out.data();
  for (std::size_t a = 0; a < A; ++a) {
    for (std::size_t b = 0; b < B; ++b) {
      for (std::size_t c = 0; c < C; ++c) {
        const std::size_t src = ((a * B + b) * C + c) * D;
        const std::size_t dst = ((a * C + c) * B + b) * D;
        for (std::size_t d = 0; d < D; ++d) ov[dst + d] = xv[src + d];
      }
    }
  }
  return out;
}
}  // namespace

Variable permute_0213(const Variable& x) {
  Tensor out = permute_0213_tensor(x.value());
  auto px = x.data();
  return Variable::make_op(std::move(out), {x}, [px](VarData& o) {
    px->accumulate_grad(permute_0213_tensor(o.grad));
  });
}

// -- shape --------------------------------------------------------------------

Variable reshape(const Variable& x, Shape shape) {
  Tensor out = x.value().reshape(shape);
  auto px = x.data();
  return Variable::make_op(std::move(out), {x}, [px](VarData& o) {
    px->accumulate_grad(o.grad.reshape(px->value.shape()));
  });
}

Variable slice_cols(const Variable& x, std::size_t lo, std::size_t hi) {
  AVGPIPE_CHECK(x.value().ndim() == 2, "slice_cols expects a 2-D tensor");
  const std::size_t rows = x.value().dim(0), cols = x.value().dim(1);
  AVGPIPE_CHECK(lo < hi && hi <= cols,
                "slice_cols range [" << lo << "," << hi << ") out of " << cols);
  const std::size_t w = hi - lo;
  Tensor out({rows, w});
  const auto xv = x.value().data();
  auto ov = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    std::copy(&xv[r * cols + lo], &xv[r * cols + hi], &ov[r * w]);
  }
  auto px = x.data();
  return Variable::make_op(
      std::move(out), {x}, [px, lo, rows, cols, w](VarData& o) {
        Tensor g({rows, cols});
        auto gv = g.data();
        const auto og = o.grad.data();
        for (std::size_t r = 0; r < rows; ++r) {
          std::copy(&og[r * w], &og[(r + 1) * w], &gv[r * cols + lo]);
        }
        px->accumulate_grad(g);
      });
}

Variable slice_rows(const Variable& x, std::size_t lo, std::size_t hi) {
  std::size_t rows = 0, cols = 0;
  rows_cols(x.value(), rows, cols);
  AVGPIPE_CHECK(lo < hi && hi <= rows,
                "slice_rows range [" << lo << "," << hi << ") out of " << rows);
  const std::size_t n = hi - lo;
  Tensor out({n, cols});
  const auto xv = x.value().data();
  std::copy(&xv[lo * cols], &xv[hi * cols], out.data().data());
  auto px = x.data();
  return Variable::make_op(
      std::move(out), {x}, [px, lo, rows, cols, n](VarData& o) {
        Tensor g({rows, cols});
        const auto og = o.grad.data();
        std::copy(og.data(), og.data() + n * cols,
                  g.data().data() + lo * cols);
        px->accumulate_grad(g);
      });
}

Variable concat_rows(const std::vector<Variable>& xs) {
  AVGPIPE_CHECK(!xs.empty(), "concat_rows of nothing");
  std::size_t cols = xs.front().value().shape().back();
  std::size_t total_rows = 0;
  for (const auto& x : xs) {
    AVGPIPE_CHECK(x.value().shape().back() == cols,
                  "concat_rows column mismatch");
    total_rows += x.value().numel() / cols;
  }
  Tensor out({total_rows, cols});
  auto ov = out.data();
  std::size_t offset = 0;
  std::vector<std::size_t> offsets;
  for (const auto& x : xs) {
    offsets.push_back(offset);
    const auto xv = x.value().data();
    std::copy(xv.begin(), xv.end(), ov.begin() + offset);
    offset += xv.size();
  }
  std::vector<std::shared_ptr<VarData>> parents;
  for (const auto& x : xs) parents.push_back(x.data());
  return Variable::make_op(
      std::move(out), xs, [parents, offsets](VarData& o) {
        const auto og = o.grad.data();
        for (std::size_t i = 0; i < parents.size(); ++i) {
          if (!parents[i]->requires_grad) continue;
          Tensor g(parents[i]->value.shape());
          auto gv = g.data();
          std::copy(og.begin() + offsets[i], og.begin() + offsets[i] + gv.size(),
                    gv.begin());
          parents[i]->accumulate_grad(g);
        }
      });
}

// -- normalisation ------------------------------------------------------------

Variable softmax_rows(const Variable& x) {
  std::size_t rows = 0, cols = 0;
  rows_cols(x.value(), rows, cols);
  Tensor out(x.shape());
  const auto xv = x.value().data();
  auto ov = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const Scalar* row = &xv[r * cols];
    Scalar mx = row[0];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
    Scalar z = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const Scalar e = std::exp(row[c] - mx);
      ov[r * cols + c] = e;
      z += e;
    }
    for (std::size_t c = 0; c < cols; ++c) ov[r * cols + c] /= z;
  }
  auto px = x.data();
  Tensor saved = out;  // alias
  return Variable::make_op(
      std::move(out), {x}, [px, saved, rows, cols](VarData& o) {
        Tensor g(px->value.shape());
        auto gv = g.data();
        const auto og = o.grad.data();
        const auto yv = saved.data();
        for (std::size_t r = 0; r < rows; ++r) {
          Scalar dotp = 0.0;
          for (std::size_t c = 0; c < cols; ++c) {
            dotp += og[r * cols + c] * yv[r * cols + c];
          }
          for (std::size_t c = 0; c < cols; ++c) {
            gv[r * cols + c] =
                yv[r * cols + c] * (og[r * cols + c] - dotp);
          }
        }
        px->accumulate_grad(g);
      });
}

Variable layer_norm(const Variable& x, const Variable& gamma,
                    const Variable& beta, Scalar eps) {
  std::size_t rows = 0, cols = 0;
  rows_cols(x.value(), rows, cols);
  AVGPIPE_CHECK(gamma.value().numel() == cols && beta.value().numel() == cols,
                "layer_norm affine params must match last dim " << cols);
  Tensor out(x.shape());
  Tensor xhat({rows, cols});
  Tensor inv_std({rows});
  const auto xv = x.value().data();
  auto ov = out.data();
  auto hv = xhat.data();
  auto sv = inv_std.data();
  const auto gv = gamma.value().data();
  const auto bv = beta.value().data();
  for (std::size_t r = 0; r < rows; ++r) {
    Scalar mu = 0.0;
    for (std::size_t c = 0; c < cols; ++c) mu += xv[r * cols + c];
    mu /= static_cast<Scalar>(cols);
    Scalar var = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const Scalar d = xv[r * cols + c] - mu;
      var += d * d;
    }
    var /= static_cast<Scalar>(cols);
    const Scalar is = 1.0 / std::sqrt(var + eps);
    sv[r] = is;
    for (std::size_t c = 0; c < cols; ++c) {
      const Scalar h = (xv[r * cols + c] - mu) * is;
      hv[r * cols + c] = h;
      ov[r * cols + c] = gv[c] * h + bv[c];
    }
  }
  auto px = x.data();
  auto pg = gamma.data();
  auto pb = beta.data();
  return Variable::make_op(
      std::move(out), {x, gamma, beta},
      [px, pg, pb, xhat, inv_std, rows, cols](VarData& o) {
        const auto og = o.grad.data();
        const auto hv2 = xhat.data();
        const auto sv2 = inv_std.data();
        const auto gv2 = pg->value.data();
        if (pg->requires_grad) {
          Tensor ggamma(pg->value.shape());
          auto gg = ggamma.data();
          for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
              gg[c] += og[r * cols + c] * hv2[r * cols + c];
            }
          }
          pg->accumulate_grad(ggamma);
        }
        if (pb->requires_grad) {
          Tensor gbeta(pb->value.shape());
          auto gb = gbeta.data();
          for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) gb[c] += og[r * cols + c];
          }
          pb->accumulate_grad(gbeta);
        }
        if (px->requires_grad) {
          Tensor gx(px->value.shape());
          auto gxv = gx.data();
          const Scalar inv_n = 1.0 / static_cast<Scalar>(cols);
          for (std::size_t r = 0; r < rows; ++r) {
            Scalar sum_dy = 0.0, sum_dyh = 0.0;
            for (std::size_t c = 0; c < cols; ++c) {
              const Scalar dy = og[r * cols + c] * gv2[c];
              sum_dy += dy;
              sum_dyh += dy * hv2[r * cols + c];
            }
            for (std::size_t c = 0; c < cols; ++c) {
              const Scalar dy = og[r * cols + c] * gv2[c];
              gxv[r * cols + c] =
                  sv2[r] * (dy - inv_n * sum_dy -
                            hv2[r * cols + c] * inv_n * sum_dyh);
            }
          }
          px->accumulate_grad(gx);
        }
      });
}

Variable dropout(const Variable& x, double p, Rng& rng, bool training) {
  AVGPIPE_CHECK(p >= 0.0 && p < 1.0, "dropout p must be in [0,1), got " << p);
  if (!training || p == 0.0) return x;
  const Scalar keep = 1.0 - p;
  Tensor mask(x.shape());
  auto mv = mask.data();
  for (auto& m : mv) m = rng.bernoulli(keep) ? 1.0 / keep : 0.0;
  Tensor out(x.shape());
  const auto xv = x.value().data();
  auto ov = out.data();
  for (std::size_t i = 0; i < ov.size(); ++i) ov[i] = xv[i] * mv[i];
  auto px = x.data();
  return Variable::make_op(std::move(out), {x}, [px, mask](VarData& o) {
    Tensor g(px->value.shape());
    auto gv = g.data();
    const auto og = o.grad.data();
    const auto mv2 = mask.data();
    for (std::size_t i = 0; i < gv.size(); ++i) gv[i] = og[i] * mv2[i];
    px->accumulate_grad(g);
  });
}

// -- lookups ------------------------------------------------------------------

Variable embedding(const Variable& weight, const std::vector<int>& indices) {
  AVGPIPE_CHECK(weight.value().ndim() == 2, "embedding weight must be 2-D");
  const std::size_t v = weight.value().dim(0), d = weight.value().dim(1);
  Tensor out({indices.size(), d});
  const auto wv = weight.value().data();
  auto ov = out.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto idx = static_cast<std::size_t>(indices[i]);
    AVGPIPE_CHECK(indices[i] >= 0 && idx < v,
                  "embedding index " << indices[i] << " out of vocab " << v);
    std::copy(&wv[idx * d], &wv[(idx + 1) * d], &ov[i * d]);
  }
  auto pw = weight.data();
  return Variable::make_op(std::move(out), {weight}, [pw, indices, d](VarData& o) {
    Tensor g(pw->value.shape());
    auto gv = g.data();
    const auto og = o.grad.data();
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const auto idx = static_cast<std::size_t>(indices[i]);
      for (std::size_t c = 0; c < d; ++c) gv[idx * d + c] += og[i * d + c];
    }
    pw->accumulate_grad(g);
  });
}

// -- reductions / losses -------------------------------------------------------

Variable sum_all(const Variable& x) {
  Tensor out({1});
  out[0] = x.value().sum();
  auto px = x.data();
  return Variable::make_op(std::move(out), {x}, [px](VarData& o) {
    Tensor g = Tensor::full(px->value.shape(), o.grad[0]);
    px->accumulate_grad(g);
  });
}

Variable mean_all(const Variable& x) {
  return scale(sum_all(x), 1.0 / static_cast<Scalar>(x.value().numel()));
}

Variable softmax_cross_entropy(const Variable& logits,
                               const std::vector<int>& targets) {
  AVGPIPE_CHECK(logits.value().ndim() == 2, "logits must be [N,C]");
  const std::size_t n = logits.value().dim(0), c = logits.value().dim(1);
  AVGPIPE_CHECK(targets.size() == n,
                "targets size " << targets.size() << " != rows " << n);
  Tensor probs({n, c});
  const auto lv = logits.value().data();
  auto pv = probs.data();
  Scalar loss = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const Scalar* row = &lv[r * c];
    Scalar mx = row[0];
    for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    Scalar z = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      const Scalar e = std::exp(row[j] - mx);
      pv[r * c + j] = e;
      z += e;
    }
    for (std::size_t j = 0; j < c; ++j) pv[r * c + j] /= z;
    const auto t = static_cast<std::size_t>(targets[r]);
    AVGPIPE_CHECK(targets[r] >= 0 && t < c,
                  "target " << targets[r] << " out of range " << c);
    loss -= std::log(std::max(pv[r * c + t], Scalar(1e-12)));
  }
  Tensor out({1});
  out[0] = loss / static_cast<Scalar>(n);
  auto pl = logits.data();
  return Variable::make_op(
      std::move(out), {logits}, [pl, probs, targets, n, c](VarData& o) {
        Tensor g({n, c});
        auto gv = g.data();
        const auto pv2 = probs.data();
        const Scalar s = o.grad[0] / static_cast<Scalar>(n);
        for (std::size_t r = 0; r < n; ++r) {
          for (std::size_t j = 0; j < c; ++j) {
            gv[r * c + j] = s * pv2[r * c + j];
          }
          gv[r * c + static_cast<std::size_t>(targets[r])] -= s;
        }
        pl->accumulate_grad(g);
      });
}

Variable mse_loss(const Variable& pred, const Tensor& target) {
  AVGPIPE_CHECK(pred.value().numel() == target.numel(),
                "mse_loss numel mismatch");
  const std::size_t n = pred.value().numel();
  Tensor out({1});
  const auto pv = pred.value().data();
  const auto tv = target.data();
  Scalar loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Scalar d = pv[i] - tv[i];
    loss += d * d;
  }
  out[0] = loss / static_cast<Scalar>(n);
  auto pp = pred.data();
  return Variable::make_op(std::move(out), {pred}, [pp, target, n](VarData& o) {
    Tensor g(pp->value.shape());
    auto gv = g.data();
    const auto pv2 = pp->value.data();
    const auto tv2 = target.data();
    const Scalar s = 2.0 * o.grad[0] / static_cast<Scalar>(n);
    for (std::size_t i = 0; i < n; ++i) gv[i] = s * (pv2[i] - tv2[i]);
    pp->accumulate_grad(g);
  });
}

// -- detached helpers ----------------------------------------------------------

std::vector<int> argmax_rows(const Tensor& logits) {
  AVGPIPE_CHECK(logits.ndim() == 2, "argmax_rows expects [N,C]");
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  std::vector<int> result(n, 0);
  const auto lv = logits.data();
  for (std::size_t r = 0; r < n; ++r) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < c; ++j) {
      if (lv[r * c + j] > lv[r * c + best]) best = j;
    }
    result[r] = static_cast<int>(best);
  }
  return result;
}

double accuracy(const Tensor& logits, const std::vector<int>& targets) {
  const auto pred = argmax_rows(logits);
  AVGPIPE_CHECK(pred.size() == targets.size(), "accuracy size mismatch");
  if (pred.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == targets[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

}  // namespace avgpipe::tensor
