#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.hpp"

namespace avgpipe::tensor {

namespace {

/// Rows = product of leading dims, cols = last dim.
void rows_cols(const Tensor& t, std::size_t& rows, std::size_t& cols) {
  AVGPIPE_CHECK(t.ndim() >= 1, "rows_cols needs >= 1-D tensor");
  cols = t.shape().back();
  rows = cols == 0 ? 0 : t.numel() / cols;
}

using detail::VarData;

/// In-place ops overwrite the value tensor of an existing op output. A
/// grad-requiring leaf is a parameter; mutating it would corrupt training
/// state, so reject that outright. (Producers whose backward reads their own
/// output value — activations, softmax — must not feed in-place ops either;
/// the call sites in nn/ only apply them to matmul/add outputs.)
void check_inplace_ok(const Variable& x, const char* op) {
  AVGPIPE_CHECK(!x.requires_grad() || x.data()->backward_fn != nullptr,
                op << ": in-place op on a grad-requiring leaf (parameter)");
}

}  // namespace

// -- raw GEMM -----------------------------------------------------------------

void gemm(const Scalar* a, const Scalar* b, Scalar* c, std::size_t m,
          std::size_t n, std::size_t k, bool trans_a, bool trans_b,
          bool accumulate) {
  // All matmul-family ops (linear, LSTM gates, attention) route through this
  // dispatcher, so counting here covers the pipeline compute path.
  detail::add_thread_flops(2ull * m * n * k);
  if (m * n * k < kGemmBlockedThreshold) {
    gemm_reference(a, b, c, m, n, k, trans_a, trans_b, accumulate);
  } else {
    gemm_blocked(a, b, c, m, n, k, trans_a, trans_b, accumulate);
  }
}

// -- elementwise --------------------------------------------------------------

Variable add(const Variable& a, const Variable& b) {
  AVGPIPE_CHECK(a.value().numel() == b.value().numel(),
                "add: numel mismatch " << shape_to_string(a.shape()) << " vs "
                                       << shape_to_string(b.shape()));
  Tensor out = Tensor::uninitialized(a.shape());
  const auto av = a.value().data();
  const auto bv = b.value().data();
  auto ov = out.data();
  for (std::size_t i = 0; i < ov.size(); ++i) ov[i] = av[i] + bv[i];
  auto pa = a.data();
  auto pb = b.data();
  return Variable::make_op(std::move(out), {a, b}, [pa, pb](VarData& o) {
    if (pa->requires_grad) pa->accumulate_grad(o.grad);
    if (pb->requires_grad) pb->accumulate_grad(o.grad);
  });
}

Variable sub(const Variable& a, const Variable& b) {
  AVGPIPE_CHECK(a.value().numel() == b.value().numel(), "sub: numel mismatch");
  Tensor out = Tensor::uninitialized(a.shape());
  const auto av = a.value().data();
  const auto bv = b.value().data();
  auto ov = out.data();
  for (std::size_t i = 0; i < ov.size(); ++i) ov[i] = av[i] - bv[i];
  auto pa = a.data();
  auto pb = b.data();
  return Variable::make_op(std::move(out), {a, b}, [pa, pb](VarData& o) {
    if (pa->requires_grad) pa->accumulate_grad(o.grad);
    if (pb->requires_grad) {
      Tensor g = Tensor::uninitialized(pb->value.shape());
      auto gv = g.data();
      const auto og = o.grad.data();
      for (std::size_t i = 0; i < gv.size(); ++i) gv[i] = -og[i];
      pb->accumulate_grad(g);
    }
  });
}

Variable mul(const Variable& a, const Variable& b) {
  AVGPIPE_CHECK(a.value().numel() == b.value().numel(), "mul: numel mismatch");
  Tensor out = Tensor::uninitialized(a.shape());
  const auto av = a.value().data();
  const auto bv = b.value().data();
  auto ov = out.data();
  for (std::size_t i = 0; i < ov.size(); ++i) ov[i] = av[i] * bv[i];
  auto pa = a.data();
  auto pb = b.data();
  return Variable::make_op(std::move(out), {a, b}, [pa, pb](VarData& o) {
    const auto g = o.grad.data();
    if (pa->requires_grad) {
      Tensor ga = Tensor::uninitialized(pa->value.shape());
      auto gav = ga.data();
      const auto bv2 = pb->value.data();
      for (std::size_t i = 0; i < gav.size(); ++i) gav[i] = g[i] * bv2[i];
      pa->accumulate_grad(ga);
    }
    if (pb->requires_grad) {
      Tensor gb = Tensor::uninitialized(pb->value.shape());
      auto gbv = gb.data();
      const auto av2 = pa->value.data();
      for (std::size_t i = 0; i < gbv.size(); ++i) gbv[i] = g[i] * av2[i];
      pb->accumulate_grad(gb);
    }
  });
}

Variable neg(const Variable& a) { return scale(a, -1.0); }

Variable scale(const Variable& a, Scalar s) {
  Tensor out = Tensor::uninitialized(a.shape());
  const auto av = a.value().data();
  auto ov = out.data();
  for (std::size_t i = 0; i < ov.size(); ++i) ov[i] = av[i] * s;
  auto pa = a.data();
  return Variable::make_op(std::move(out), {a}, [pa, s](VarData& o) {
    Tensor g = Tensor::uninitialized(pa->value.shape());
    auto gv = g.data();
    const auto og = o.grad.data();
    for (std::size_t i = 0; i < gv.size(); ++i) gv[i] = og[i] * s;
    pa->accumulate_grad(g);
  });
}

Variable scale_(const Variable& a, Scalar s) {
  check_inplace_ok(a, "scale_");
  Tensor out = a.value();  // alias: scaled in place
  auto ov = out.data();
  for (std::size_t i = 0; i < ov.size(); ++i) ov[i] *= s;
  auto pa = a.data();
  return Variable::make_op(std::move(out), {a}, [pa, s](VarData& o) {
    Tensor g = Tensor::uninitialized(pa->value.shape());
    auto gv = g.data();
    const auto og = o.grad.data();
    for (std::size_t i = 0; i < gv.size(); ++i) gv[i] = og[i] * s;
    pa->accumulate_grad(g);
  });
}

namespace {
Variable add_bias_impl(const Variable& x, const Variable& bias, Tensor out) {
  std::size_t rows = 0, cols = 0;
  rows_cols(x.value(), rows, cols);
  AVGPIPE_CHECK(bias.value().numel() == cols,
                "add_bias: bias numel " << bias.value().numel()
                                        << " != last dim " << cols);
  const auto xv = x.value().data();
  auto ov = out.data();
  const auto bv = bias.value().data();
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      ov[r * cols + c] = xv[r * cols + c] + bv[c];
    }
  }
  auto px = x.data();
  auto pb = bias.data();
  return Variable::make_op(
      std::move(out), {x, bias}, [px, pb, rows, cols](VarData& o) {
        if (px->requires_grad) px->accumulate_grad(o.grad);
        if (pb->requires_grad) {
          Tensor gb(pb->value.shape());
          auto gbv = gb.data();
          const auto g = o.grad.data();
          for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) gbv[c] += g[r * cols + c];
          }
          pb->accumulate_grad(gb);
        }
      });
}
}  // namespace

Variable add_bias(const Variable& x, const Variable& bias) {
  return add_bias_impl(x, bias, Tensor::uninitialized(x.shape()));
}

Variable add_bias_(const Variable& x, const Variable& bias) {
  check_inplace_ok(x, "add_bias_");
  return add_bias_impl(x, bias, x.value());  // alias: bias added in place
}

// -- activations --------------------------------------------------------------

namespace {
/// Shared scaffold for unary elementwise ops with derivative expressed in
/// terms of (input value, output value). When `in_place`, the output aliases
/// (and overwrites) x's value, so `dydx` must not depend on the input value.
Variable unary_op(const Variable& x, Scalar (*fwd)(Scalar),
                  Scalar (*dydx)(Scalar /*x*/, Scalar /*y*/),
                  bool in_place = false) {
  Tensor out = in_place ? x.value() : Tensor::uninitialized(x.shape());
  const auto xv = x.value().data();
  auto ov = out.data();
  for (std::size_t i = 0; i < ov.size(); ++i) ov[i] = fwd(xv[i]);
  auto px = x.data();
  Tensor saved = out;  // alias; safe because ops never mutate values
  return Variable::make_op(std::move(out), {x}, [px, saved, dydx](VarData& o) {
    Tensor g = Tensor::uninitialized(px->value.shape());
    auto gv = g.data();
    const auto og = o.grad.data();
    const auto xv2 = px->value.data();
    const auto yv = saved.data();
    for (std::size_t i = 0; i < gv.size(); ++i) {
      gv[i] = og[i] * dydx(xv2[i], yv[i]);
    }
    px->accumulate_grad(g);
  });
}

Scalar relu_fwd(Scalar v) { return v > 0.0 ? v : 0.0; }
Scalar relu_dy(Scalar, Scalar y) { return y > 0.0 ? 1.0 : 0.0; }
Scalar tanh_fwd(Scalar v) { return std::tanh(v); }
Scalar tanh_dy(Scalar, Scalar y) { return 1.0 - y * y; }
Scalar sigmoid_fwd(Scalar v) { return 1.0 / (1.0 + std::exp(-v)); }
Scalar sigmoid_dy(Scalar, Scalar y) { return y * (1.0 - y); }
}  // namespace

Variable relu(const Variable& x) { return unary_op(x, relu_fwd, relu_dy); }

Variable relu_(const Variable& x) {
  check_inplace_ok(x, "relu_");
  return unary_op(x, relu_fwd, relu_dy, /*in_place=*/true);
}

Variable tanh_op(const Variable& x) { return unary_op(x, tanh_fwd, tanh_dy); }

Variable tanh_op_(const Variable& x) {
  check_inplace_ok(x, "tanh_op_");
  return unary_op(x, tanh_fwd, tanh_dy, /*in_place=*/true);
}

Variable sigmoid(const Variable& x) {
  return unary_op(x, sigmoid_fwd, sigmoid_dy);
}

Variable sigmoid_(const Variable& x) {
  check_inplace_ok(x, "sigmoid_");
  return unary_op(x, sigmoid_fwd, sigmoid_dy, /*in_place=*/true);
}

Variable gelu(const Variable& x) {
  // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi)(x + 0.044715 x^3)))
  // Derivative needs the input value, so there is no in-place variant.
  return unary_op(
      x,
      [](Scalar v) {
        const Scalar c = 0.7978845608028654;  // sqrt(2/pi)
        return 0.5 * v * (1.0 + std::tanh(c * (v + 0.044715 * v * v * v)));
      },
      [](Scalar v, Scalar) {
        const Scalar c = 0.7978845608028654;
        const Scalar u = c * (v + 0.044715 * v * v * v);
        const Scalar t = std::tanh(u);
        const Scalar du = c * (1.0 + 3.0 * 0.044715 * v * v);
        return 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du;
      });
}

// -- linear algebra -----------------------------------------------------------

Variable matmul(const Variable& a, const Variable& b) {
  AVGPIPE_CHECK(a.value().ndim() == 2 && b.value().ndim() == 2,
                "matmul expects 2-D inputs, got "
                    << shape_to_string(a.shape()) << " x "
                    << shape_to_string(b.shape()));
  const std::size_t m = a.value().dim(0), k = a.value().dim(1);
  const std::size_t k2 = b.value().dim(0), n = b.value().dim(1);
  AVGPIPE_CHECK(k == k2, "matmul inner dims mismatch: " << k << " vs " << k2);
  Tensor out = Tensor::uninitialized({m, n});
  gemm(a.value().data().data(), b.value().data().data(), out.data().data(), m,
       n, k, false, false, false);
  auto pa = a.data();
  auto pb = b.data();
  return Variable::make_op(
      std::move(out), {a, b}, [pa, pb, m, n, k](VarData& o) {
        const Scalar* g = o.grad.data().data();
        if (pa->requires_grad) {
          Tensor ga = Tensor::uninitialized({m, k});  // dA = dC * B^T
          gemm(g, pb->value.data().data(), ga.data().data(), m, k, n, false,
               true, false);
          pa->accumulate_grad(ga);
        }
        if (pb->requires_grad) {
          Tensor gb = Tensor::uninitialized({k, n});  // dB = A^T * dC
          gemm(pa->value.data().data(), g, gb.data().data(), k, n, m, true,
               false, false);
          pb->accumulate_grad(gb);
        }
      });
}

Variable bmm(const Variable& a, const Variable& b) {
  AVGPIPE_CHECK(a.value().ndim() == 3 && b.value().ndim() == 3,
                "bmm expects 3-D inputs");
  const std::size_t bs = a.value().dim(0);
  const std::size_t m = a.value().dim(1), k = a.value().dim(2);
  const std::size_t n = b.value().dim(2);
  AVGPIPE_CHECK(b.value().dim(0) == bs && b.value().dim(1) == k,
                "bmm shape mismatch: " << shape_to_string(a.shape()) << " x "
                                       << shape_to_string(b.shape()));
  Tensor out = Tensor::uninitialized({bs, m, n});
  for (std::size_t i = 0; i < bs; ++i) {
    gemm(a.value().data().data() + i * m * k,
         b.value().data().data() + i * k * n, out.data().data() + i * m * n, m,
         n, k, false, false, false);
  }
  auto pa = a.data();
  auto pb = b.data();
  return Variable::make_op(
      std::move(out), {a, b}, [pa, pb, bs, m, n, k](VarData& o) {
        const Scalar* g = o.grad.data().data();
        if (pa->requires_grad) {
          Tensor ga = Tensor::uninitialized({bs, m, k});
          for (std::size_t i = 0; i < bs; ++i) {
            gemm(g + i * m * n, pb->value.data().data() + i * k * n,
                 ga.data().data() + i * m * k, m, k, n, false, true, false);
          }
          pa->accumulate_grad(ga);
        }
        if (pb->requires_grad) {
          Tensor gb = Tensor::uninitialized({bs, k, n});
          for (std::size_t i = 0; i < bs; ++i) {
            gemm(pa->value.data().data() + i * m * k, g + i * m * n,
                 gb.data().data() + i * k * n, k, n, m, true, false, false);
          }
          pb->accumulate_grad(gb);
        }
      });
}

namespace {
Tensor transpose_last2_tensor(const Tensor& x) {
  const std::size_t nd = x.ndim();
  AVGPIPE_CHECK(nd >= 2, "transpose_last2 needs >= 2-D");
  const std::size_t r = x.shape()[nd - 2];
  const std::size_t c = x.shape()[nd - 1];
  const std::size_t batches = x.numel() / (r * c);
  Shape out_shape = x.shape();
  std::swap(out_shape[nd - 2], out_shape[nd - 1]);
  Tensor out = Tensor::uninitialized(std::move(out_shape));
  const auto xv = x.data();
  auto ov = out.data();
  for (std::size_t bidx = 0; bidx < batches; ++bidx) {
    const std::size_t base = bidx * r * c;
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        ov[base + j * r + i] = xv[base + i * c + j];
      }
    }
  }
  return out;
}
}  // namespace

Variable transpose_last2(const Variable& x) {
  Tensor out = transpose_last2_tensor(x.value());
  auto px = x.data();
  return Variable::make_op(std::move(out), {x}, [px](VarData& o) {
    px->accumulate_grad(transpose_last2_tensor(o.grad));
  });
}

namespace {
Tensor permute_0213_tensor(const Tensor& x) {
  AVGPIPE_CHECK(x.ndim() == 4, "permute_0213 needs a 4-D tensor");
  const std::size_t A = x.dim(0), B = x.dim(1), C = x.dim(2), D = x.dim(3);
  Tensor out = Tensor::uninitialized({A, C, B, D});
  const auto xv = x.data();
  auto ov = out.data();
  for (std::size_t a = 0; a < A; ++a) {
    for (std::size_t b = 0; b < B; ++b) {
      for (std::size_t c = 0; c < C; ++c) {
        const std::size_t src = ((a * B + b) * C + c) * D;
        const std::size_t dst = ((a * C + c) * B + b) * D;
        for (std::size_t d = 0; d < D; ++d) ov[dst + d] = xv[src + d];
      }
    }
  }
  return out;
}
}  // namespace

Variable permute_0213(const Variable& x) {
  Tensor out = permute_0213_tensor(x.value());
  auto px = x.data();
  return Variable::make_op(std::move(out), {x}, [px](VarData& o) {
    px->accumulate_grad(permute_0213_tensor(o.grad));
  });
}

// -- shape --------------------------------------------------------------------

Variable reshape(const Variable& x, Shape shape) {
  Tensor out = x.value().reshape(shape);
  auto px = x.data();
  return Variable::make_op(std::move(out), {x}, [px](VarData& o) {
    px->accumulate_grad(o.grad.reshape(px->value.shape()));
  });
}

Variable slice_cols(const Variable& x, std::size_t lo, std::size_t hi) {
  AVGPIPE_CHECK(x.value().ndim() == 2, "slice_cols expects a 2-D tensor");
  const std::size_t rows = x.value().dim(0), cols = x.value().dim(1);
  AVGPIPE_CHECK(lo < hi && hi <= cols,
                "slice_cols range [" << lo << "," << hi << ") out of " << cols);
  const std::size_t w = hi - lo;
  Tensor out = Tensor::uninitialized({rows, w});
  const auto xv = x.value().data();
  auto ov = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    std::copy(&xv[r * cols + lo], &xv[r * cols + hi], &ov[r * w]);
  }
  auto px = x.data();
  return Variable::make_op(
      std::move(out), {x}, [px, lo, rows, cols, w](VarData& o) {
        Tensor g({rows, cols});  // zeroed: only [lo, lo+w) columns written
        auto gv = g.data();
        const auto og = o.grad.data();
        for (std::size_t r = 0; r < rows; ++r) {
          std::copy(&og[r * w], &og[(r + 1) * w], &gv[r * cols + lo]);
        }
        px->accumulate_grad(g);
      });
}

Variable slice_rows(const Variable& x, std::size_t lo, std::size_t hi) {
  std::size_t rows = 0, cols = 0;
  rows_cols(x.value(), rows, cols);
  AVGPIPE_CHECK(lo < hi && hi <= rows,
                "slice_rows range [" << lo << "," << hi << ") out of " << rows);
  const std::size_t n = hi - lo;
  Tensor out = Tensor::uninitialized({n, cols});
  const auto xv = x.value().data();
  std::copy(&xv[lo * cols], &xv[hi * cols], out.data().data());
  auto px = x.data();
  return Variable::make_op(
      std::move(out), {x}, [px, lo, rows, cols, n](VarData& o) {
        Tensor g({rows, cols});  // zeroed: only rows [lo, lo+n) written
        const auto og = o.grad.data();
        std::copy(og.data(), og.data() + n * cols,
                  g.data().data() + lo * cols);
        px->accumulate_grad(g);
      });
}

Variable concat_rows(const std::vector<Variable>& xs) {
  AVGPIPE_CHECK(!xs.empty(), "concat_rows of nothing");
  std::size_t cols = xs.front().value().shape().back();
  std::size_t total_rows = 0;
  for (const auto& x : xs) {
    AVGPIPE_CHECK(x.value().shape().back() == cols,
                  "concat_rows column mismatch");
    total_rows += x.value().numel() / cols;
  }
  Tensor out = Tensor::uninitialized({total_rows, cols});
  auto ov = out.data();
  std::size_t offset = 0;
  std::vector<std::size_t> offsets;
  for (const auto& x : xs) {
    offsets.push_back(offset);
    const auto xv = x.value().data();
    std::copy(xv.begin(), xv.end(), ov.begin() + offset);
    offset += xv.size();
  }
  std::vector<std::shared_ptr<VarData>> parents;
  for (const auto& x : xs) parents.push_back(x.data());
  return Variable::make_op(
      std::move(out), xs, [parents, offsets](VarData& o) {
        const auto og = o.grad.data();
        for (std::size_t i = 0; i < parents.size(); ++i) {
          if (!parents[i]->requires_grad) continue;
          Tensor g = Tensor::uninitialized(parents[i]->value.shape());
          auto gv = g.data();
          std::copy(og.begin() + offsets[i], og.begin() + offsets[i] + gv.size(),
                    gv.begin());
          parents[i]->accumulate_grad(g);
        }
      });
}

// -- normalisation ------------------------------------------------------------

Variable softmax_rows(const Variable& x) {
  std::size_t rows = 0, cols = 0;
  rows_cols(x.value(), rows, cols);
  Tensor out = Tensor::uninitialized(x.shape());
  const auto xv = x.value().data();
  auto ov = out.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const Scalar* row = &xv[r * cols];
    Scalar mx = row[0];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
    Scalar z = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const Scalar e = std::exp(row[c] - mx);
      ov[r * cols + c] = e;
      z += e;
    }
    const Scalar inv_z = 1.0 / z;
    for (std::size_t c = 0; c < cols; ++c) ov[r * cols + c] *= inv_z;
  }
  auto px = x.data();
  Tensor saved = out;  // alias
  return Variable::make_op(
      std::move(out), {x}, [px, saved, rows, cols](VarData& o) {
        Tensor g = Tensor::uninitialized(px->value.shape());
        auto gv = g.data();
        const auto og = o.grad.data();
        const auto yv = saved.data();
        // Fused: one sweep stores t = y*dy into g while reducing dot(y, dy),
        // one sweep finalises g = t - y*dot (no recomputed products).
        for (std::size_t r = 0; r < rows; ++r) {
          Scalar dotp = 0.0;
          for (std::size_t c = 0; c < cols; ++c) {
            const Scalar t = og[r * cols + c] * yv[r * cols + c];
            gv[r * cols + c] = t;
            dotp += t;
          }
          for (std::size_t c = 0; c < cols; ++c) {
            gv[r * cols + c] -= yv[r * cols + c] * dotp;
          }
        }
        px->accumulate_grad(g);
      });
}

Variable layer_norm(const Variable& x, const Variable& gamma,
                    const Variable& beta, Scalar eps) {
  std::size_t rows = 0, cols = 0;
  rows_cols(x.value(), rows, cols);
  AVGPIPE_CHECK(gamma.value().numel() == cols && beta.value().numel() == cols,
                "layer_norm affine params must match last dim " << cols);
  Tensor out = Tensor::uninitialized(x.shape());
  Tensor xhat = Tensor::uninitialized({rows, cols});
  Tensor inv_std = Tensor::uninitialized({rows});
  const auto xv = x.value().data();
  auto ov = out.data();
  auto hv = xhat.data();
  auto sv = inv_std.data();
  const auto gv = gamma.value().data();
  const auto bv = beta.value().data();
  const Scalar inv_cols = 1.0 / static_cast<Scalar>(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    // Single fused sweep for both moments: var = E[x^2] - mu^2.
    Scalar sum = 0.0, sumsq = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const Scalar v = xv[r * cols + c];
      sum += v;
      sumsq += v * v;
    }
    const Scalar mu = sum * inv_cols;
    const Scalar var = std::max(sumsq * inv_cols - mu * mu, Scalar(0));
    const Scalar is = 1.0 / std::sqrt(var + eps);
    sv[r] = is;
    for (std::size_t c = 0; c < cols; ++c) {
      const Scalar h = (xv[r * cols + c] - mu) * is;
      hv[r * cols + c] = h;
      ov[r * cols + c] = gv[c] * h + bv[c];
    }
  }
  auto px = x.data();
  auto pg = gamma.data();
  auto pb = beta.data();
  return Variable::make_op(
      std::move(out), {x, gamma, beta},
      [px, pg, pb, xhat, inv_std, rows, cols](VarData& o) {
        const auto og = o.grad.data();
        const auto hv2 = xhat.data();
        const auto sv2 = inv_std.data();
        const auto gv2 = pg->value.data();
        const bool need_x = px->requires_grad;
        const bool need_gamma = pg->requires_grad;
        const bool need_beta = pb->requires_grad;
        Tensor ggamma(need_gamma ? pg->value.shape() : Shape{0});  // zeroed
        Tensor gbeta(need_beta ? pb->value.shape() : Shape{0});    // zeroed
        Tensor gx = need_x ? Tensor::uninitialized(px->value.shape())
                           : Tensor();
        auto gg = ggamma.data();
        auto gb = gbeta.data();
        auto gxv = gx.data();
        const Scalar inv_n = 1.0 / static_cast<Scalar>(cols);
        // Fused: one sweep per row accumulates the gamma/beta reductions AND
        // the two x-grad row sums, stashing dy = og*gamma into gx so the
        // finalising sweep does not recompute it (2 sweeps total instead of
        // 2-3 per output).
        for (std::size_t r = 0; r < rows; ++r) {
          Scalar sum_dy = 0.0, sum_dyh = 0.0;
          for (std::size_t c = 0; c < cols; ++c) {
            const Scalar go = og[r * cols + c];
            const Scalar h = hv2[r * cols + c];
            if (need_gamma) gg[c] += go * h;
            if (need_beta) gb[c] += go;
            if (need_x) {
              const Scalar dy = go * gv2[c];
              sum_dy += dy;
              sum_dyh += dy * h;
              gxv[r * cols + c] = dy;
            }
          }
          if (need_x) {
            for (std::size_t c = 0; c < cols; ++c) {
              const Scalar dy = gxv[r * cols + c];
              gxv[r * cols + c] =
                  sv2[r] * (dy - inv_n * sum_dy -
                            hv2[r * cols + c] * inv_n * sum_dyh);
            }
          }
        }
        if (need_gamma) pg->accumulate_grad(ggamma);
        if (need_beta) pb->accumulate_grad(gbeta);
        if (need_x) px->accumulate_grad(gx);
      });
}

Variable dropout(const Variable& x, double p, Rng& rng, bool training) {
  AVGPIPE_CHECK(p >= 0.0 && p < 1.0, "dropout p must be in [0,1), got " << p);
  if (!training || p == 0.0) return x;
  const Scalar keep = 1.0 - p;
  Tensor mask = Tensor::uninitialized(x.shape());
  auto mv = mask.data();
  for (auto& m : mv) m = rng.bernoulli(keep) ? 1.0 / keep : 0.0;
  Tensor out = Tensor::uninitialized(x.shape());
  const auto xv = x.value().data();
  auto ov = out.data();
  for (std::size_t i = 0; i < ov.size(); ++i) ov[i] = xv[i] * mv[i];
  auto px = x.data();
  return Variable::make_op(std::move(out), {x}, [px, mask](VarData& o) {
    Tensor g = Tensor::uninitialized(px->value.shape());
    auto gv = g.data();
    const auto og = o.grad.data();
    const auto mv2 = mask.data();
    for (std::size_t i = 0; i < gv.size(); ++i) gv[i] = og[i] * mv2[i];
    px->accumulate_grad(g);
  });
}

// -- lookups ------------------------------------------------------------------

Variable embedding(const Variable& weight, const std::vector<int>& indices) {
  AVGPIPE_CHECK(weight.value().ndim() == 2, "embedding weight must be 2-D");
  const std::size_t v = weight.value().dim(0), d = weight.value().dim(1);
  Tensor out = Tensor::uninitialized({indices.size(), d});
  const auto wv = weight.value().data();
  auto ov = out.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto idx = static_cast<std::size_t>(indices[i]);
    AVGPIPE_CHECK(indices[i] >= 0 && idx < v,
                  "embedding index " << indices[i] << " out of vocab " << v);
    std::copy(&wv[idx * d], &wv[(idx + 1) * d], &ov[i * d]);
  }
  auto pw = weight.data();
  return Variable::make_op(std::move(out), {weight}, [pw, indices, d](VarData& o) {
    Tensor g(pw->value.shape());  // zeroed: scatter-add target
    auto gv = g.data();
    const auto og = o.grad.data();
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const auto idx = static_cast<std::size_t>(indices[i]);
      for (std::size_t c = 0; c < d; ++c) gv[idx * d + c] += og[i * d + c];
    }
    pw->accumulate_grad(g);
  });
}

// -- reductions / losses -------------------------------------------------------

Variable sum_all(const Variable& x) {
  Tensor out({1});
  out[0] = x.value().sum();
  auto px = x.data();
  return Variable::make_op(std::move(out), {x}, [px](VarData& o) {
    Tensor g = Tensor::full(px->value.shape(), o.grad[0]);
    px->accumulate_grad(g);
  });
}

Variable mean_all(const Variable& x) {
  return scale(sum_all(x), 1.0 / static_cast<Scalar>(x.value().numel()));
}

Variable softmax_cross_entropy(const Variable& logits,
                               const std::vector<int>& targets) {
  AVGPIPE_CHECK(logits.value().ndim() == 2, "logits must be [N,C]");
  const std::size_t n = logits.value().dim(0), c = logits.value().dim(1);
  AVGPIPE_CHECK(targets.size() == n,
                "targets size " << targets.size() << " != rows " << n);
  Tensor probs = Tensor::uninitialized({n, c});
  const auto lv = logits.value().data();
  auto pv = probs.data();
  Scalar loss = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const Scalar* row = &lv[r * c];
    Scalar mx = row[0];
    for (std::size_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    Scalar z = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      const Scalar e = std::exp(row[j] - mx);
      pv[r * c + j] = e;
      z += e;
    }
    const Scalar inv_z = 1.0 / z;
    for (std::size_t j = 0; j < c; ++j) pv[r * c + j] *= inv_z;
    const auto t = static_cast<std::size_t>(targets[r]);
    AVGPIPE_CHECK(targets[r] >= 0 && t < c,
                  "target " << targets[r] << " out of range " << c);
    loss -= std::log(std::max(pv[r * c + t], Scalar(1e-12)));
  }
  Tensor out({1});
  out[0] = loss / static_cast<Scalar>(n);
  auto pl = logits.data();
  return Variable::make_op(
      std::move(out), {logits}, [pl, probs, targets, n, c](VarData& o) {
        Tensor g = Tensor::uninitialized({n, c});
        auto gv = g.data();
        const auto pv2 = probs.data();
        const Scalar s = o.grad[0] / static_cast<Scalar>(n);
        for (std::size_t r = 0; r < n; ++r) {
          for (std::size_t j = 0; j < c; ++j) {
            gv[r * c + j] = s * pv2[r * c + j];
          }
          gv[r * c + static_cast<std::size_t>(targets[r])] -= s;
        }
        pl->accumulate_grad(g);
      });
}

Variable mse_loss(const Variable& pred, const Tensor& target) {
  AVGPIPE_CHECK(pred.value().numel() == target.numel(),
                "mse_loss numel mismatch");
  const std::size_t n = pred.value().numel();
  Tensor out({1});
  const auto pv = pred.value().data();
  const auto tv = target.data();
  Scalar loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Scalar d = pv[i] - tv[i];
    loss += d * d;
  }
  out[0] = loss / static_cast<Scalar>(n);
  auto pp = pred.data();
  return Variable::make_op(std::move(out), {pred}, [pp, target, n](VarData& o) {
    Tensor g = Tensor::uninitialized(pp->value.shape());
    auto gv = g.data();
    const auto pv2 = pp->value.data();
    const auto tv2 = target.data();
    const Scalar s = 2.0 * o.grad[0] / static_cast<Scalar>(n);
    for (std::size_t i = 0; i < n; ++i) gv[i] = s * (pv2[i] - tv2[i]);
    pp->accumulate_grad(g);
  });
}

// -- detached helpers ----------------------------------------------------------

std::vector<int> argmax_rows(const Tensor& logits) {
  AVGPIPE_CHECK(logits.ndim() == 2, "argmax_rows expects [N,C]");
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  std::vector<int> result(n, 0);
  const auto lv = logits.data();
  for (std::size_t r = 0; r < n; ++r) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < c; ++j) {
      if (lv[r * c + j] > lv[r * c + best]) best = j;
    }
    result[r] = static_cast<int>(best);
  }
  return result;
}

double accuracy(const Tensor& logits, const std::vector<int>& targets) {
  const auto pred = argmax_rows(logits);
  AVGPIPE_CHECK(pred.size() == targets.size(), "accuracy size mismatch");
  if (pred.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == targets[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

}  // namespace avgpipe::tensor
