#include "tensor/autograd.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_set>

namespace avgpipe::tensor {

namespace {
std::atomic<std::uint64_t> g_seq{0};
}

std::uint64_t autograd_nodes_created() { return g_seq.load(); }

namespace detail {

void VarData::accumulate_grad(const Tensor& g) {
  AVGPIPE_CHECK(g.numel() == value.numel(),
                "gradient numel mismatch: " << g.numel() << " vs "
                                            << value.numel());
  if (!grad_allocated) {
    // First contribution: copy instead of zero-fill + add (one pass, and the
    // arena hands back an uninitialized buffer).
    grad = Tensor::uninitialized(value.shape());
    grad.copy_from(g);
    grad_allocated = true;
    return;
  }
  grad.axpy_(1.0, g);
}

}  // namespace detail

Variable::Variable(Tensor value, bool requires_grad) {
  data_ = std::make_shared<detail::VarData>();
  data_->value = std::move(value);
  data_->requires_grad = requires_grad;
  data_->seq = g_seq.fetch_add(1, std::memory_order_relaxed);
}

const Tensor& Variable::grad() const {
  AVGPIPE_CHECK(data_ != nullptr, "grad() on null variable");
  if (!data_->grad_allocated) {
    data_->grad = Tensor(data_->value.shape());
    data_->grad_allocated = true;
  }
  return data_->grad;
}

void Variable::zero_grad() {
  if (data_ && data_->grad_allocated) data_->grad.zero_();
}

Variable Variable::make_op(Tensor value, std::vector<Variable> parents,
                           std::function<void(detail::VarData&)> backward_fn) {
  bool any_grad = false;
  for (const auto& p : parents) any_grad = any_grad || p.requires_grad();

  auto data = std::make_shared<detail::VarData>();
  data->value = std::move(value);
  data->requires_grad = any_grad;
  data->seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  if (any_grad) {
    data->parents.reserve(parents.size());
    for (auto& p : parents) data->parents.push_back(p.data());
    data->backward_fn = std::move(backward_fn);
  }
  return Variable(std::move(data));
}

void Variable::backward() const {
  AVGPIPE_CHECK(data_ != nullptr, "backward() on null variable");
  AVGPIPE_CHECK(numel() == 1,
                "backward() without seed requires a scalar output, got "
                    << shape_to_string(shape()));
  backward(Tensor::ones(data_->value.shape()));
}

void Variable::backward(const Tensor& seed) const {
  AVGPIPE_CHECK(data_ != nullptr, "backward() on null variable");
  AVGPIPE_CHECK(data_->requires_grad,
                "backward() on a variable that does not require grad");
  data_->accumulate_grad(seed);

  // Collect reachable grad-requiring nodes (iterative DFS), then run their
  // backward functions in descending creation order. Creation order is a
  // valid topological order because inputs always exist before outputs.
  std::vector<detail::VarData*> nodes;
  std::unordered_set<detail::VarData*> seen;
  std::vector<detail::VarData*> stack{data_.get()};
  seen.insert(data_.get());
  while (!stack.empty()) {
    detail::VarData* node = stack.back();
    stack.pop_back();
    nodes.push_back(node);
    for (const auto& parent : node->parents) {
      if (parent->requires_grad && seen.insert(parent.get()).second) {
        stack.push_back(parent.get());
      }
    }
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const detail::VarData* a, const detail::VarData* b) {
              return a->seq > b->seq;
            });

  for (detail::VarData* node : nodes) {
    if (node->backward_fn && node->grad_allocated) {
      node->backward_fn(*node);
    }
  }

  // Release intermediate gradients: only leaves retain grad across sweeps,
  // so a second backward() on the same graph accumulates leaf grads without
  // double-counting stale interior gradients.
  for (detail::VarData* node : nodes) {
    if (node->backward_fn && node->grad_allocated) {
      node->grad = Tensor();
      node->grad_allocated = false;
    }
  }
}

Variable Variable::detach() const {
  AVGPIPE_CHECK(data_ != nullptr, "detach() on null variable");
  return Variable(data_->value, /*requires_grad=*/false);
}

}  // namespace avgpipe::tensor
