#pragma once

/// \file tensor.hpp
/// Dense row-major N-dimensional tensor with shared storage.
///
/// This is the numeric substrate for the real-training path of the
/// reproduction (statistical-efficiency experiments, threaded pipeline
/// runtime). It deliberately supports only what the models need: contiguous
/// row-major layout, views via reshape, and a small set of kernels. Scalars
/// are double so numeric gradient checks and averaging-equivalence tests are
/// robust.
///
/// Storage is a ref-counted, 64-byte-aligned buffer recycled through the
/// size-bucketed arena (arena.hpp), so forward/backward over a micro-batch
/// stops hitting `operator new` per op once shapes repeat. `Tensor(Shape)`
/// zero-fills; `Tensor::uninitialized(Shape)` skips the fill for outputs
/// that every kernel overwrites completely.

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/arena.hpp"

namespace avgpipe::tensor {

using Shape = std::vector<std::size_t>;

/// Number of elements implied by a shape (empty shape = scalar = 1 element).
std::size_t shape_numel(const Shape& shape);
/// "[2, 3, 4]"
std::string shape_to_string(const Shape& shape);

namespace detail {

/// Ref-counted flat buffer; returns itself to the arena on destruction.
class Storage {
 public:
  Storage(std::size_t n, bool zero_fill) : data_(arena::acquire(n)), size_(n) {
    if (zero_fill && data_ != nullptr) {
      for (std::size_t i = 0; i < size_; ++i) data_[i] = 0.0;
    }
  }
  ~Storage() { arena::release(data_, size_); }

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  Scalar* data() { return data_; }
  const Scalar* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  Scalar* data_;
  std::size_t size_;
};

}  // namespace detail

/// Reference-counted dense tensor. Copying a Tensor aliases storage
/// (shallow); use clone() for a deep copy. All views are contiguous.
class Tensor {
 public:
  /// Empty 0-element tensor (shares a process-wide empty storage).
  Tensor() : storage_(empty_storage()), shape_{0} {}

  /// Zeroed tensor of the given shape.
  explicit Tensor(Shape shape)
      : storage_(
            std::make_shared<detail::Storage>(shape_numel(shape), true)),
        shape_(std::move(shape)) {}

  Tensor(Shape shape, const std::vector<Scalar>& values)
      : storage_(
            std::make_shared<detail::Storage>(shape_numel(shape), false)),
        shape_(std::move(shape)) {
    AVGPIPE_CHECK(values.size() == storage_->size(),
                  "value count " << values.size() << " != shape "
                                 << shape_to_string(shape_));
    std::copy(values.begin(), values.end(), storage_->data());
  }

  // -- factories --------------------------------------------------------------

  /// Arena-allocated tensor whose contents are NOT initialised. Only for
  /// outputs the caller overwrites completely before any read.
  static Tensor uninitialized(Shape shape) {
    Tensor t;
    t.storage_ = std::make_shared<detail::Storage>(shape_numel(shape), false);
    t.shape_ = std::move(shape);
    return t;
  }

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, Scalar value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0); }
  /// Gaussian init with given stddev.
  static Tensor randn(Shape shape, Rng& rng, Scalar stddev = 1.0);
  /// Uniform init in [lo, hi).
  static Tensor rand_uniform(Shape shape, Rng& rng, Scalar lo, Scalar hi);
  /// 1-D tensor from a list.
  static Tensor from(std::initializer_list<Scalar> values);
  /// 2-D tensor from nested lists.
  static Tensor from2d(std::initializer_list<std::initializer_list<Scalar>> rows);

  // -- shape ------------------------------------------------------------------

  const Shape& shape() const { return shape_; }
  std::size_t ndim() const { return shape_.size(); }
  std::size_t numel() const { return storage_->size(); }
  std::size_t dim(std::size_t i) const {
    AVGPIPE_CHECK(i < shape_.size(), "dim " << i << " out of range");
    return shape_[i];
  }

  /// View with a new shape over the same storage (numel must match).
  Tensor reshape(Shape new_shape) const;

  // -- element access ----------------------------------------------------------

  std::span<Scalar> data() { return {storage_->data(), storage_->size()}; }
  std::span<const Scalar> data() const {
    return {storage_->data(), storage_->size()};
  }

  Scalar& operator[](std::size_t i) { return storage_->data()[i]; }
  Scalar operator[](std::size_t i) const { return storage_->data()[i]; }

  Scalar& at(std::size_t i, std::size_t j) {
    return storage_->data()[i * shape_.at(1) + j];
  }
  Scalar at(std::size_t i, std::size_t j) const {
    return storage_->data()[i * shape_.at(1) + j];
  }

  /// True if both tensors alias the same storage.
  bool aliases(const Tensor& other) const { return storage_ == other.storage_; }

  // -- whole-tensor operations (detached; no autograd) -------------------------

  Tensor clone() const;
  void fill_(Scalar value);
  void zero_() { fill_(0.0); }
  /// this += alpha * other (shape must match). The optimizer workhorse.
  void axpy_(Scalar alpha, const Tensor& other);
  /// this *= alpha.
  void scale_(Scalar alpha);
  /// this = (1-t)*this + t*other — the elastic-averaging pull (paper §3.2 ❷).
  void lerp_(const Tensor& other, Scalar t);
  /// this = other (deep copy into existing storage; shapes must match).
  void copy_from(const Tensor& other);

  Scalar sum() const;
  Scalar mean() const;
  Scalar abs_max() const;
  /// L2 norm over all elements.
  Scalar norm() const;
  /// Sum of elementwise products (flattened dot).
  Scalar dot(const Tensor& other) const;

  /// Max elementwise |a-b|; shapes must match.
  Scalar max_abs_diff(const Tensor& other) const;

  std::string to_string(std::size_t max_elems = 32) const;

 private:
  static const std::shared_ptr<detail::Storage>& empty_storage();

  std::shared_ptr<detail::Storage> storage_;
  Shape shape_;
};

/// Shapes equal?
bool same_shape(const Tensor& a, const Tensor& b);

}  // namespace avgpipe::tensor
