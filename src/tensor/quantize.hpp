#pragma once

/// \file quantize.hpp
/// Lossy sync codecs: symmetric per-block int8 and IEEE-half (fp16)
/// quantization of Scalar (f64) buffers, with runtime-dispatched AVX2/F16C
/// kernels next to portable `*_reference` parity oracles (same selection
/// idiom as the GEMM micro-kernel in kernels.cpp).
///
/// Wire formats:
/// * int8 — blocks of `kQuantBlock` values share one f32 scale
///   s = max|x|/127; each value is stored as round-to-nearest-even of x/s
///   clamped to [-127, 127]. Wire cost: 1 byte/value + 4 bytes/block
///   (~7.9x vs f64). Decoded value: q * s.
/// * fp16 — each value is narrowed f64 → f32 (hardware RNE) → binary16
///   (soft-float RNE, bit-identical to F16C's VCVTPS2PH) after clamping to
///   ±65504 so non-finite and out-of-range inputs saturate instead of
///   encoding Inf/NaN. Wire cost: 2 bytes/value (4x vs f64).
///
/// Both codecs guarantee NaN-free output for arbitrary input (NaN inputs
/// saturate: to +127·s for int8, to +65504 for fp16), and the dispatched
/// SIMD kernels are bit-identical to their `*_reference` oracles — the gate
/// `micro_benchmarks --kernels-only` and kernel_test enforce.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "tensor/tensor.hpp"

namespace avgpipe::tensor {

/// Sync-path codec selector. Values are stable (checkpointed as a raw byte).
enum class Codec : std::uint8_t {
  kNone = 0,  ///< raw f64, bit-exact (the parity anchor)
  kFp16 = 1,  ///< IEEE binary16, 4x
  kInt8 = 2,  ///< per-block symmetric int8, ~7.9x
};

const char* to_string(Codec codec);

/// Parse "off" / "none" / "fp16" / "int8". Returns false on anything else.
bool codec_from_string(std::string_view s, Codec* out);

/// Values per int8 quantization block (one shared f32 scale each).
inline constexpr std::size_t kQuantBlock = 256;

/// Scales required for `n` values under the int8 codec.
inline constexpr std::size_t int8_num_blocks(std::size_t n) {
  return (n + kQuantBlock - 1) / kQuantBlock;
}

/// Bytes a length-`n` f64 buffer occupies on the wire under `codec`
/// (kNone: 8n — the raw payload).
std::size_t codec_wire_bytes(Codec codec, std::size_t n);

// -- int8 block codec ---------------------------------------------------------

/// Quantize `n` values: q[i] in [-127,127], one f32 scale per block.
/// Dispatched (AVX2 when available) and portable oracle; bit-identical.
void quantize_int8(const Scalar* src, std::size_t n, std::int8_t* q,
                   float* scales);
void quantize_int8_reference(const Scalar* src, std::size_t n, std::int8_t* q,
                             float* scales);

/// Decode: dst[i] = q[i] * scales[i / kQuantBlock].
void dequantize_int8(const std::int8_t* q, const float* scales, std::size_t n,
                     Scalar* dst);
void dequantize_int8_reference(const std::int8_t* q, const float* scales,
                               std::size_t n, Scalar* dst);

// -- fp16 codec ---------------------------------------------------------------

/// Narrow `n` values to binary16 (clamped to ±65504, RNE).
/// Dispatched (F16C when available) and portable oracle; bit-identical.
void quantize_fp16(const Scalar* src, std::size_t n, std::uint16_t* h);
void quantize_fp16_reference(const Scalar* src, std::size_t n,
                             std::uint16_t* h);

/// Widen binary16 back to f64 (exact).
void dequantize_fp16(const std::uint16_t* h, std::size_t n, Scalar* dst);
void dequantize_fp16_reference(const std::uint16_t* h, std::size_t n,
                               Scalar* dst);

/// Scalar float<->half conversions underlying the fp16 codec, exposed for
/// the parity tests (RNE narrowing incl. subnormal halves; exact widening).
std::uint16_t float_to_half(float f);
float half_to_float(std::uint16_t h);

// -- whole-buffer round trip --------------------------------------------------

/// In-place lossy quantize→dequantize round trip of `data` through `codec`
/// — exactly the value degradation a compressed wire would introduce.
/// No-op for kNone. Uses thread-local scratch; safe from any thread.
void codec_roundtrip(Codec codec, Scalar* data, std::size_t n);

}  // namespace avgpipe::tensor
