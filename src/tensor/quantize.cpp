#include "tensor/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string_view>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define AVGPIPE_QUANT_X86 1
#include <immintrin.h>
#endif

namespace avgpipe::tensor {

const char* to_string(Codec codec) {
  switch (codec) {
    case Codec::kNone: return "off";
    case Codec::kFp16: return "fp16";
    case Codec::kInt8: return "int8";
  }
  return "?";
}

bool codec_from_string(std::string_view s, Codec* out) {
  if (s == "off" || s == "none") {
    *out = Codec::kNone;
  } else if (s == "fp16") {
    *out = Codec::kFp16;
  } else if (s == "int8") {
    *out = Codec::kInt8;
  } else {
    return false;
  }
  return true;
}

std::size_t codec_wire_bytes(Codec codec, std::size_t n) {
  switch (codec) {
    case Codec::kNone: return n * sizeof(Scalar);
    case Codec::kFp16: return n * 2;
    case Codec::kInt8: return n + int8_num_blocks(n) * sizeof(float);
  }
  return n * sizeof(Scalar);
}

namespace {

// -- int8 scalar core ---------------------------------------------------------
//
// Every scalar helper here is also the tail path inside the AVX2 kernels, so
// each operation is written to match its vector twin bit-for-bit:
// * the abs-max update `(m < ax) ? ax : m` drops NaN exactly like
//   _mm256_max_pd(ax, acc) (which returns its second operand on NaN);
// * the clamp `if (!(r <= 127)) r = 127; if (r < -127) r = -127;` matches
//   max_pd(min_pd(r, 127), -127) including the NaN-saturates-high case;
// * nearbyint under the default round-to-nearest-even mode is exactly
//   _mm256_round_pd(v, _MM_FROUND_TO_NEAREST_INT).

/// Shared f32 scale of one block: max|x| / 127, with all-zero, overflow and
/// underflow guards. 0.0f means "all-zero block" (values are not divided).
inline float int8_block_scale(const Scalar* src, std::size_t n) {
  Scalar m = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Scalar ax = std::fabs(src[i]);
    if (m < ax) m = ax;  // NaN comparison is false: NaN never becomes the max
  }
  if (m == 0.0) return 0.0f;
  if (!std::isfinite(m)) return std::numeric_limits<float>::max();
  const float s = static_cast<float>(m / 127.0);
  if (s == 0.0f) return std::numeric_limits<float>::denorm_min();
  if (!std::isfinite(s)) return std::numeric_limits<float>::max();
  return s;
}

inline std::int8_t int8_quant_value(Scalar x, Scalar inv) {
  Scalar r = std::nearbyint(x * inv);
  if (!(r <= 127.0)) r = 127.0;  // +Inf and NaN saturate high
  if (r < -127.0) r = -127.0;
  return static_cast<std::int8_t>(r);
}

void int8_quant_block_scalar(const Scalar* src, std::size_t n, std::int8_t* q,
                             float s) {
  if (s == 0.0f) {
    std::fill(q, q + n, std::int8_t{0});
    return;
  }
  const Scalar inv = 1.0 / static_cast<Scalar>(s);
  for (std::size_t i = 0; i < n; ++i) q[i] = int8_quant_value(src[i], inv);
}

}  // namespace

void quantize_int8_reference(const Scalar* src, std::size_t n, std::int8_t* q,
                             float* scales) {
  for (std::size_t b = 0; n > 0; ++b) {
    const std::size_t len = std::min(n, kQuantBlock);
    const float s = int8_block_scale(src, len);
    scales[b] = s;
    int8_quant_block_scalar(src, len, q, s);
    src += len;
    q += len;
    n -= len;
  }
}

void dequantize_int8_reference(const std::int8_t* q, const float* scales,
                               std::size_t n, Scalar* dst) {
  for (std::size_t b = 0; n > 0; ++b) {
    const std::size_t len = std::min(n, kQuantBlock);
    const Scalar s = static_cast<Scalar>(scales[b]);
    for (std::size_t i = 0; i < len; ++i) {
      dst[i] = static_cast<Scalar>(q[i]) * s;
    }
    q += len;
    dst += len;
    n -= len;
  }
}

// -- fp16 scalar core ---------------------------------------------------------

std::uint16_t float_to_half(float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t abs = bits & 0x7fffffffu;
  if (abs >= 0x7f800000u) {  // Inf / NaN (kept NaN-quieting like VCVTPS2PH)
    std::uint32_t mant = (abs >> 13) & 0x3ffu;
    if (abs > 0x7f800000u) mant |= 0x200u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | mant);
  }
  // Below 2^-25 everything rounds to zero; the exact tie at 2^-25 rounds to
  // even (zero) as well, so the comparison is inclusive.
  if (abs <= 0x33000000u) return sign;
  int e = static_cast<int>(abs >> 23) - 127;
  const std::uint32_t mant = abs & 0x7fffffu;
  if (e < -14) {
    // Subnormal half: round the 24-bit significand to multiples of 2^-24.
    const std::uint32_t sig = 0x800000u | mant;
    const int shift = -e - 1;  // in [14, 24]
    std::uint32_t q = sig >> shift;
    const std::uint32_t rem = sig & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (q & 1u) != 0)) ++q;
    // q == 0x400 after the carry encodes the smallest normal, by design.
    return static_cast<std::uint16_t>(sign | q);
  }
  std::uint32_t q = mant >> 13;
  const std::uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (q & 1u) != 0)) ++q;
  if (q == 0x400u) {
    q = 0;
    ++e;
  }
  if (e > 15) return static_cast<std::uint16_t>(sign | 0x7c00u);  // overflow
  return static_cast<std::uint16_t>(sign |
                                    static_cast<std::uint32_t>(e + 15) << 10 |
                                    q);
}

float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  std::uint32_t e = (static_cast<std::uint32_t>(h) >> 10) & 0x1fu;
  std::uint32_t m = static_cast<std::uint32_t>(h) & 0x3ffu;
  std::uint32_t bits;
  if (e == 0) {
    if (m == 0) {
      bits = sign;
    } else {
      // Normalize the subnormal: value is m * 2^-24.
      e = 113;  // biased f32 exponent once the implicit bit lands on 0x400
      while ((m & 0x400u) == 0) {
        m <<= 1;
        --e;
      }
      bits = sign | (e << 23) | ((m & 0x3ffu) << 13);
    }
  } else if (e == 31) {
    bits = sign | 0x7f800000u | (m << 13);
  } else {
    bits = sign | ((e + 112) << 23) | (m << 13);
  }
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

namespace {

/// f64 -> clamped f32 for the fp16 codec: saturate to ±65504 so the half
/// encoding is always finite. `if (!(f <= hi))` matches _mm_min_ps's
/// NaN-returns-second-operand semantics.
inline float fp16_clamp(Scalar x) {
  float f = static_cast<float>(x);
  if (!(f <= 65504.0f)) f = 65504.0f;  // +Inf and NaN saturate high
  if (f < -65504.0f) f = -65504.0f;
  return f;
}

}  // namespace

void quantize_fp16_reference(const Scalar* src, std::size_t n,
                             std::uint16_t* h) {
  for (std::size_t i = 0; i < n; ++i) h[i] = float_to_half(fp16_clamp(src[i]));
}

void dequantize_fp16_reference(const std::uint16_t* h, std::size_t n,
                               Scalar* dst) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<Scalar>(half_to_float(h[i]));
  }
}

// -- AVX2 / F16C kernels ------------------------------------------------------

namespace {

#ifdef AVGPIPE_QUANT_X86

/// Per-block AVX2 quantize: vector abs-max (NaN-dropping via the max_pd
/// operand order), then round/clamp/pack 8 values at a time. Tails reuse the
/// scalar helpers, which are bit-identical by construction.
__attribute__((target("avx2,fma"))) void quantize_int8_avx2(
    const Scalar* src, std::size_t n, std::int8_t* q, float* scales) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d hi = _mm256_set1_pd(127.0);
  const __m256d lo = _mm256_set1_pd(-127.0);
  for (std::size_t b = 0; n > 0; ++b) {
    const std::size_t len = std::min(n, kQuantBlock);

    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= len; i += 4) {
      const __m256d a =
          _mm256_andnot_pd(sign_mask, _mm256_loadu_pd(src + i));
      acc = _mm256_max_pd(a, acc);  // NaN lane keeps acc (second operand)
    }
    alignas(32) Scalar lanes[4];
    _mm256_store_pd(lanes, acc);
    Scalar m = 0.0;
    for (const Scalar lane : lanes) {
      if (m < lane) m = lane;
    }
    for (; i < len; ++i) {
      const Scalar ax = std::fabs(src[i]);
      if (m < ax) m = ax;
    }
    float s = 0.0f;
    if (m != 0.0) {
      if (!std::isfinite(m)) {
        s = std::numeric_limits<float>::max();
      } else {
        s = static_cast<float>(m / 127.0);
        if (s == 0.0f) s = std::numeric_limits<float>::denorm_min();
        if (!std::isfinite(s)) s = std::numeric_limits<float>::max();
      }
    }
    scales[b] = s;

    if (s == 0.0f) {
      std::fill(q, q + len, std::int8_t{0});
    } else {
      const Scalar inv = 1.0 / static_cast<Scalar>(s);
      const __m256d vinv = _mm256_set1_pd(inv);
      i = 0;
      for (; i + 8 <= len; i += 8) {
        __m256d r0 = _mm256_round_pd(
            _mm256_mul_pd(_mm256_loadu_pd(src + i), vinv),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        __m256d r1 = _mm256_round_pd(
            _mm256_mul_pd(_mm256_loadu_pd(src + i + 4), vinv),
            _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        r0 = _mm256_max_pd(_mm256_min_pd(r0, hi), lo);
        r1 = _mm256_max_pd(_mm256_min_pd(r1, hi), lo);
        const __m128i i0 = _mm256_cvtpd_epi32(r0);
        const __m128i i1 = _mm256_cvtpd_epi32(r1);
        const __m128i w = _mm_packs_epi32(i0, i1);   // 8 x int16
        const __m128i bytes = _mm_packs_epi16(w, w);  // 8 x int8 (low half)
        _mm_storel_epi64(reinterpret_cast<__m128i*>(q + i), bytes);
      }
      for (; i < len; ++i) q[i] = int8_quant_value(src[i], inv);
    }
    src += len;
    q += len;
    n -= len;
  }
}

__attribute__((target("avx2"))) void dequantize_int8_avx2(
    const std::int8_t* q, const float* scales, std::size_t n, Scalar* dst) {
  for (std::size_t b = 0; n > 0; ++b) {
    const std::size_t len = std::min(n, kQuantBlock);
    const Scalar s = static_cast<Scalar>(scales[b]);
    const __m256d vs = _mm256_set1_pd(s);
    std::size_t i = 0;
    for (; i + 4 <= len; i += 4) {
      std::int32_t word;
      std::memcpy(&word, q + i, sizeof(word));
      const __m128i qi = _mm_cvtepi8_epi32(_mm_cvtsi32_si128(word));
      _mm256_storeu_pd(dst + i,
                       _mm256_mul_pd(_mm256_cvtepi32_pd(qi), vs));
    }
    for (; i < len; ++i) dst[i] = static_cast<Scalar>(q[i]) * s;
    q += len;
    dst += len;
    n -= len;
  }
}

__attribute__((target("avx2,f16c"))) void quantize_fp16_f16c(
    const Scalar* src, std::size_t n, std::uint16_t* h) {
  const __m128 hi = _mm_set1_ps(65504.0f);
  const __m128 lo = _mm_set1_ps(-65504.0f);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 f = _mm256_cvtpd_ps(_mm256_loadu_pd(src + i));
    f = _mm_min_ps(f, hi);  // NaN lane becomes 65504 (second operand)
    f = _mm_max_ps(f, lo);
    const __m128i ph = _mm_cvtps_ph(f, _MM_FROUND_TO_NEAREST_INT);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(h + i), ph);
  }
  for (; i < n; ++i) h[i] = float_to_half(fp16_clamp(src[i]));
}

__attribute__((target("avx2,f16c"))) void dequantize_fp16_f16c(
    const std::uint16_t* h, std::size_t n, Scalar* dst) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i ph =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(h + i));
    _mm256_storeu_pd(dst + i, _mm256_cvtps_pd(_mm_cvtph_ps(ph)));
  }
  for (; i < n; ++i) dst[i] = static_cast<Scalar>(half_to_float(h[i]));
}

#endif  // AVGPIPE_QUANT_X86

using QuantInt8Fn = void (*)(const Scalar*, std::size_t, std::int8_t*, float*);
using DequantInt8Fn = void (*)(const std::int8_t*, const float*, std::size_t,
                               Scalar*);
using QuantFp16Fn = void (*)(const Scalar*, std::size_t, std::uint16_t*);
using DequantFp16Fn = void (*)(const std::uint16_t*, std::size_t, Scalar*);

QuantInt8Fn pick_quantize_int8() {
#ifdef AVGPIPE_QUANT_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return quantize_int8_avx2;
  }
#endif
  return quantize_int8_reference;
}

DequantInt8Fn pick_dequantize_int8() {
#ifdef AVGPIPE_QUANT_X86
  if (__builtin_cpu_supports("avx2")) return dequantize_int8_avx2;
#endif
  return dequantize_int8_reference;
}

QuantFp16Fn pick_quantize_fp16() {
#ifdef AVGPIPE_QUANT_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c")) {
    return quantize_fp16_f16c;
  }
#endif
  return quantize_fp16_reference;
}

DequantFp16Fn pick_dequantize_fp16() {
#ifdef AVGPIPE_QUANT_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c")) {
    return dequantize_fp16_f16c;
  }
#endif
  return dequantize_fp16_reference;
}

const QuantInt8Fn quantize_int8_fn = pick_quantize_int8();
const DequantInt8Fn dequantize_int8_fn = pick_dequantize_int8();
const QuantFp16Fn quantize_fp16_fn = pick_quantize_fp16();
const DequantFp16Fn dequantize_fp16_fn = pick_dequantize_fp16();

}  // namespace

void quantize_int8(const Scalar* src, std::size_t n, std::int8_t* q,
                   float* scales) {
  quantize_int8_fn(src, n, q, scales);
}

void dequantize_int8(const std::int8_t* q, const float* scales, std::size_t n,
                     Scalar* dst) {
  dequantize_int8_fn(q, scales, n, dst);
}

void quantize_fp16(const Scalar* src, std::size_t n, std::uint16_t* h) {
  quantize_fp16_fn(src, n, h);
}

void dequantize_fp16(const std::uint16_t* h, std::size_t n, Scalar* dst) {
  dequantize_fp16_fn(h, n, dst);
}

void codec_roundtrip(Codec codec, Scalar* data, std::size_t n) {
  if (codec == Codec::kNone || n == 0) return;
  if (codec == Codec::kInt8) {
    thread_local std::vector<std::int8_t> q;
    thread_local std::vector<float> scales;
    if (q.size() < n) q.resize(n);
    const std::size_t blocks = int8_num_blocks(n);
    if (scales.size() < blocks) scales.resize(blocks);
    quantize_int8(data, n, q.data(), scales.data());
    dequantize_int8(q.data(), scales.data(), n, data);
  } else {
    thread_local std::vector<std::uint16_t> half;
    if (half.size() < n) half.resize(n);
    quantize_fp16(data, n, half.data());
    dequantize_fp16(half.data(), n, data);
  }
}

}  // namespace avgpipe::tensor
