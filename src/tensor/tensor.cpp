#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace avgpipe::tensor {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

const std::shared_ptr<detail::Storage>& Tensor::empty_storage() {
  static const std::shared_ptr<detail::Storage> empty =
      std::make_shared<detail::Storage>(0, false);
  return empty;
}

Tensor Tensor::full(Shape shape, Scalar value) {
  Tensor t = uninitialized(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, Scalar stddev) {
  Tensor t = uninitialized(std::move(shape));
  for (auto& x : t.data()) x = rng.normal(0.0, stddev);
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, Scalar lo, Scalar hi) {
  Tensor t = uninitialized(std::move(shape));
  for (auto& x : t.data()) x = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::from(std::initializer_list<Scalar> values) {
  return Tensor({values.size()}, std::vector<Scalar>(values));
}

Tensor Tensor::from2d(
    std::initializer_list<std::initializer_list<Scalar>> rows) {
  AVGPIPE_CHECK(rows.size() > 0, "from2d needs at least one row");
  const std::size_t cols = rows.begin()->size();
  std::vector<Scalar> values;
  values.reserve(rows.size() * cols);
  for (const auto& row : rows) {
    AVGPIPE_CHECK(row.size() == cols, "ragged rows in from2d");
    values.insert(values.end(), row.begin(), row.end());
  }
  return Tensor({rows.size(), cols}, std::move(values));
}

Tensor Tensor::reshape(Shape new_shape) const {
  AVGPIPE_CHECK(shape_numel(new_shape) == numel(),
                "reshape " << shape_to_string(shape_) << " -> "
                           << shape_to_string(new_shape) << " changes numel");
  Tensor view = *this;
  view.shape_ = std::move(new_shape);
  return view;
}

Tensor Tensor::clone() const {
  Tensor copy = uninitialized(shape_);
  std::copy(storage_->data(), storage_->data() + storage_->size(),
            copy.storage_->data());
  return copy;
}

void Tensor::fill_(Scalar value) {
  std::fill(storage_->data(), storage_->data() + storage_->size(), value);
}

void Tensor::axpy_(Scalar alpha, const Tensor& other) {
  AVGPIPE_CHECK(numel() == other.numel(), "axpy_ numel mismatch");
  Scalar* a = storage_->data();
  const Scalar* b = other.storage_->data();
  const std::size_t n = numel();
  for (std::size_t i = 0; i < n; ++i) a[i] += alpha * b[i];
}

void Tensor::scale_(Scalar alpha) {
  Scalar* a = storage_->data();
  const std::size_t n = numel();
  for (std::size_t i = 0; i < n; ++i) a[i] *= alpha;
}

void Tensor::lerp_(const Tensor& other, Scalar t) {
  AVGPIPE_CHECK(numel() == other.numel(), "lerp_ numel mismatch");
  Scalar* a = storage_->data();
  const Scalar* b = other.storage_->data();
  const std::size_t n = numel();
  for (std::size_t i = 0; i < n; ++i) a[i] += t * (b[i] - a[i]);
}

void Tensor::copy_from(const Tensor& other) {
  AVGPIPE_CHECK(numel() == other.numel(), "copy_from numel mismatch");
  std::copy(other.storage_->data(), other.storage_->data() + other.numel(),
            storage_->data());
}

Scalar Tensor::sum() const {
  const Scalar* a = storage_->data();
  const std::size_t n = numel();
  Scalar acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i];
  return acc;
}

Scalar Tensor::mean() const {
  return numel() > 0 ? sum() / static_cast<Scalar>(numel()) : 0.0;
}

Scalar Tensor::abs_max() const {
  const Scalar* a = storage_->data();
  const std::size_t n = numel();
  Scalar m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

Scalar Tensor::norm() const { return std::sqrt(dot(*this)); }

Scalar Tensor::dot(const Tensor& other) const {
  AVGPIPE_CHECK(numel() == other.numel(), "dot numel mismatch");
  Scalar acc = 0.0;
  const Scalar* a = storage_->data();
  const Scalar* b = other.storage_->data();
  const std::size_t n = numel();
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

Scalar Tensor::max_abs_diff(const Tensor& other) const {
  AVGPIPE_CHECK(numel() == other.numel(), "max_abs_diff numel mismatch");
  Scalar m = 0.0;
  const Scalar* a = storage_->data();
  const Scalar* b = other.storage_->data();
  const std::size_t n = numel();
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

std::string Tensor::to_string(std::size_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << shape_to_string(shape_) << " {";
  const std::size_t n = std::min(numel(), max_elems);
  for (std::size_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << storage_->data()[i];
  }
  if (numel() > max_elems) os << ", ...";
  os << '}';
  return os.str();
}

bool same_shape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

}  // namespace avgpipe::tensor
