#include "nn/models.hpp"

namespace avgpipe::nn {

Sequential make_mlp(std::size_t in, std::size_t hidden, std::size_t depth,
                    std::size_t classes, std::uint64_t seed) {
  Rng rng(seed);
  Sequential model;
  std::size_t prev = in;
  for (std::size_t i = 0; i < depth; ++i) {
    model.emplace<Linear>(prev, hidden, rng);
    model.emplace<Tanh>();
    prev = hidden;
  }
  model.emplace<Linear>(prev, classes, rng);
  return model;
}

Sequential make_gnmt_like(std::size_t vocab, std::size_t embed,
                          std::size_t hidden, std::size_t lstm_layers,
                          std::size_t classes, std::uint64_t seed) {
  Rng rng(seed);
  Sequential model;
  model.emplace<Embedding>(vocab, embed, rng);
  std::size_t prev = embed;
  for (std::size_t i = 0; i < lstm_layers; ++i) {
    model.emplace<LSTM>(prev, hidden, rng);
    prev = hidden;
  }
  model.emplace<LastStep>();
  model.emplace<Linear>(hidden, classes, rng);
  return model;
}

Sequential make_bert_like(std::size_t vocab, std::size_t d_model,
                          std::size_t heads, std::size_t d_ff,
                          std::size_t encoder_layers, std::size_t classes,
                          std::uint64_t seed, double dropout_p) {
  Rng rng(seed);
  Sequential model;
  model.emplace<Embedding>(vocab, d_model, rng);
  for (std::size_t i = 0; i < encoder_layers; ++i) {
    model.emplace<TransformerEncoderLayer>(d_model, heads, d_ff, rng,
                                           dropout_p);
  }
  model.emplace<LayerNorm>(d_model);
  model.emplace<MeanPoolSeq>();
  model.emplace<Linear>(d_model, classes, rng);
  return model;
}

Sequential make_awd_like(std::size_t vocab, std::size_t embed,
                         std::size_t hidden, std::size_t lstm_layers,
                         std::uint64_t seed, double weight_drop) {
  Rng rng(seed);
  Sequential model;
  model.emplace<Embedding>(vocab, embed, rng);
  std::size_t prev = embed;
  for (std::size_t i = 0; i < lstm_layers; ++i) {
    // Final layer projects back to the embedding size (AWD-LSTM ties
    // dimensions this way before the decoder).
    const std::size_t out = (i + 1 == lstm_layers) ? embed : hidden;
    model.emplace<LSTM>(prev, out, rng, weight_drop);
    prev = out;
  }
  model.emplace<Linear>(embed, vocab, rng);
  return model;
}

}  // namespace avgpipe::nn
