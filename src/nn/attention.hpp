#pragma once

/// \file attention.hpp
/// Multi-head self-attention and the Transformer encoder block used by the
/// BERT stand-in workload.

#include "nn/layers.hpp"

namespace avgpipe::nn {

/// Multi-head scaled-dot-product self-attention over [B,S,D].
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(std::size_t d_model, std::size_t num_heads, Rng& rng,
                         double dropout_p = 0.0);

  Variable forward(const Variable& x) override;
  std::vector<Variable> parameters() override;
  std::string name() const override;
  void set_training(bool training) override;

 private:
  std::size_t d_model_, heads_, d_head_;
  Linear qkv_;   ///< D -> 3D packed projection
  Linear proj_;  ///< D -> D output projection
  Dropout attn_dropout_;
};

/// Pre-LN Transformer encoder block:
///   x = x + MHSA(LN(x));  x = x + FFN(LN(x))
/// with FFN = Linear(D, d_ff) ∘ GELU ∘ Linear(d_ff, D).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(std::size_t d_model, std::size_t num_heads,
                          std::size_t d_ff, Rng& rng, double dropout_p = 0.0);

  Variable forward(const Variable& x) override;
  std::vector<Variable> parameters() override;
  std::string name() const override;
  void set_training(bool training) override;

 private:
  std::size_t d_model_;
  LayerNorm ln1_, ln2_;
  MultiHeadSelfAttention attn_;
  Linear ff1_, ff2_;
  Dropout dropout_;
};

}  // namespace avgpipe::nn
