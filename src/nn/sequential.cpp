#include "nn/sequential.hpp"

#include <sstream>

namespace avgpipe::nn {

std::vector<Sequential> Sequential::partition(
    const std::vector<std::size_t>& boundaries) const {
  std::vector<Sequential> stages;
  std::size_t lo = 0;
  for (std::size_t b : boundaries) {
    AVGPIPE_CHECK(b >= lo && b <= layers_.size(),
                  "partition boundary " << b << " out of order");
    stages.push_back(slice(lo, b));
    lo = b;
  }
  stages.push_back(slice(lo, layers_.size()));
  return stages;
}

std::string Sequential::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    os << i << ": " << layers_[i]->name() << '\n';
  }
  return os.str();
}

void copy_parameters(Sequential& src, Sequential& dst) {
  auto sp = src.parameters();
  auto dp = dst.parameters();
  AVGPIPE_CHECK(sp.size() == dp.size(),
                "copy_parameters: model architectures differ ("
                    << sp.size() << " vs " << dp.size() << " tensors)");
  for (std::size_t i = 0; i < sp.size(); ++i) {
    AVGPIPE_CHECK(sp[i].numel() == dp[i].numel(),
                  "copy_parameters: tensor " << i << " shape mismatch");
    dp[i].value().copy_from(sp[i].value());
  }
}

}  // namespace avgpipe::nn
