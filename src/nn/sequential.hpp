#pragma once

/// \file sequential.hpp
/// Ordered chain of modules with partitioning support.
///
/// Pipeline parallelism (paper §1, Figure 1) requires cutting a model into
/// contiguous runs of layers. `Sequential::slice(lo, hi)` returns a stage
/// view sharing the underlying modules/parameters, so N parallel pipelines
/// can be built by deep-copying parameters while reusing the architecture.

#include <functional>

#include "nn/module.hpp"

namespace avgpipe::nn {

class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> layers)
      : layers_(std::move(layers)) {}

  /// Append a layer; returns *this for chaining.
  Sequential& add(ModulePtr layer) {
    AVGPIPE_CHECK(layer != nullptr, "null layer");
    layers_.push_back(std::move(layer));
    return *this;
  }

  /// Convenience: construct in place.
  template <typename T, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_shared<T>(std::forward<Args>(args)...));
  }

  Variable forward(const Variable& x) override {
    Variable h = x;
    for (auto& layer : layers_) h = layer->forward(h);
    return h;
  }

  std::vector<Variable> parameters() override {
    std::vector<Variable> params;
    for (auto& layer : layers_) {
      auto p = layer->parameters();
      params.insert(params.end(), p.begin(), p.end());
    }
    return params;
  }

  std::string name() const override {
    return "Sequential(" + std::to_string(layers_.size()) + " layers)";
  }

  void set_training(bool training) override {
    Module::set_training(training);
    for (auto& layer : layers_) layer->set_training(training);
  }

  std::size_t size() const { return layers_.size(); }
  const ModulePtr& layer(std::size_t i) const { return layers_.at(i); }

  /// Stage view over layers [lo, hi); shares modules and parameters.
  Sequential slice(std::size_t lo, std::size_t hi) const {
    AVGPIPE_CHECK(lo <= hi && hi <= layers_.size(),
                  "slice [" << lo << "," << hi << ") out of "
                            << layers_.size());
    return Sequential(
        std::vector<ModulePtr>(layers_.begin() + static_cast<std::ptrdiff_t>(lo),
                               layers_.begin() + static_cast<std::ptrdiff_t>(hi)));
  }

  /// Split into `stages` contiguous slices at the given boundaries.
  /// `boundaries` holds the first layer index of stages 1..K-1.
  std::vector<Sequential> partition(const std::vector<std::size_t>& boundaries) const;

  /// Layer names joined for diagnostics.
  std::string describe() const;

 private:
  std::vector<ModulePtr> layers_;
};

/// Deep-copy all parameter values from `src` into `dst` (architectures must
/// match layer-for-layer). Used to spawn parallel-pipeline replicas and the
/// reference model with identical initial weights (paper §3.2).
void copy_parameters(Sequential& src, Sequential& dst);

/// Builder callback type: constructs a fresh model with its own parameters
/// from a seed. Parallel pipelines each call this and then copy weights from
/// the reference so all replicas start at the same point.
using ModelFactory = std::function<Sequential(std::uint64_t seed)>;

}  // namespace avgpipe::nn
