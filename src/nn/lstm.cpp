#include "nn/lstm.hpp"

#include <cmath>

namespace avgpipe::nn {

LSTM::LSTM(std::size_t input, std::size_t hidden, Rng& rng, double weight_drop)
    : input_(input),
      hidden_(hidden),
      weight_drop_(weight_drop),
      rng_(rng.fork(0x157)) {
  AVGPIPE_CHECK(weight_drop >= 0.0 && weight_drop < 1.0,
                "weight_drop must be in [0,1)");
  const Scalar s_in = 1.0 / std::sqrt(static_cast<Scalar>(input));
  const Scalar s_h = 1.0 / std::sqrt(static_cast<Scalar>(hidden));
  w_ih_ = Variable(Tensor::randn({input, 4 * hidden}, rng, s_in),
                   /*requires_grad=*/true);
  w_hh_ = Variable(Tensor::randn({hidden, 4 * hidden}, rng, s_h),
                   /*requires_grad=*/true);
  // Forget-gate bias 1.0 is standard practice for trainability.
  Tensor b = Tensor::zeros({4 * hidden});
  for (std::size_t i = hidden; i < 2 * hidden; ++i) b[i] = 1.0;
  bias_ = Variable(std::move(b), /*requires_grad=*/true);
}

std::pair<Variable, Variable> LSTM::cell(const Variable& x_t,
                                         const Variable& h, const Variable& c,
                                         const Variable& w_hh_eff) {
  using namespace tensor;
  // In-place bias: the add output is freshly owned here and add's backward
  // never reads its own output value.
  Variable gates = add_bias_(
      add(matmul(x_t, w_ih_), matmul(h, w_hh_eff)), bias_);  // [B,4H]
  Variable i = sigmoid(slice_cols(gates, 0, hidden_));
  Variable f = sigmoid(slice_cols(gates, hidden_, 2 * hidden_));
  Variable g = tanh_op(slice_cols(gates, 2 * hidden_, 3 * hidden_));
  Variable o = sigmoid(slice_cols(gates, 3 * hidden_, 4 * hidden_));
  Variable c_next = add(mul(f, c), mul(i, g));
  Variable h_next = mul(o, tanh_op(c_next));
  return {h_next, c_next};
}

Variable LSTM::forward(const Variable& x) {
  AVGPIPE_CHECK(x.shape().size() == 3, name() << " expects [B,S,In]");
  const std::size_t b = x.shape()[0], s = x.shape()[1];
  AVGPIPE_CHECK(x.shape()[2] == input_, name() << " input dim mismatch");

  // DropConnect: a single mask per forward pass (per AWD-LSTM), applied to
  // the recurrent weights only.
  Variable w_hh_eff = w_hh_;
  if (training_ && weight_drop_ > 0.0) {
    const Scalar keep = 1.0 - weight_drop_;
    Tensor mask(w_hh_.shape());
    for (auto& m : mask.data()) m = rng_.bernoulli(keep) ? 1.0 / keep : 0.0;
    w_hh_eff = tensor::mul(w_hh_, Variable(mask));
  }

  Variable h(Tensor::zeros({b, hidden_}));
  Variable c(Tensor::zeros({b, hidden_}));
  Variable flat = tensor::reshape(x, {b * s, input_});

  std::vector<Variable> outputs;
  outputs.reserve(s);
  for (std::size_t t = 0; t < s; ++t) {
    // Gather x[:, t, :] as rows {i*s + t}. slice_rows handles contiguous
    // ranges only, so transpose the layout once instead: iterate over time
    // by slicing the [B*S, In] flat view per batch row is O(B) slices; we
    // instead materialise x_t directly.
    Tensor x_t({b, input_});
    const auto xv = x.value().data();
    auto tv = x_t.data();
    for (std::size_t i = 0; i < b; ++i) {
      std::copy(&xv[(i * s + t) * input_], &xv[(i * s + t + 1) * input_],
                &tv[i * input_]);
    }
    // Route gradients back to the input through a gather op.
    auto px = x.data();
    Variable x_t_var = Variable::make_op(
        std::move(x_t), {x},
        [px, b, s, t, in = input_](tensor::detail::VarData& o) {
          Tensor g(px->value.shape());
          auto gv = g.data();
          const auto og = o.grad.data();
          for (std::size_t i = 0; i < b; ++i) {
            for (std::size_t cidx = 0; cidx < in; ++cidx) {
              gv[(i * s + t) * in + cidx] = og[i * in + cidx];
            }
          }
          px->accumulate_grad(g);
        });
    auto [h_next, c_next] = cell(x_t_var, h, c, w_hh_eff);
    h = h_next;
    c = c_next;
    outputs.push_back(h);
  }
  (void)flat;

  // Stack outputs [S][B,H] into [B,S,H].
  Tensor out({b, s, hidden_});
  auto ov = out.data();
  for (std::size_t t = 0; t < s; ++t) {
    const auto hv = outputs[t].value().data();
    for (std::size_t i = 0; i < b; ++i) {
      std::copy(&hv[i * hidden_], &hv[(i + 1) * hidden_],
                &ov[(i * s + t) * hidden_]);
    }
  }
  std::vector<std::shared_ptr<tensor::detail::VarData>> parents;
  for (const auto& o : outputs) parents.push_back(o.data());
  return Variable::make_op(
      std::move(out), outputs,
      [parents, b, s, hid = hidden_](tensor::detail::VarData& o) {
        const auto og = o.grad.data();
        for (std::size_t t = 0; t < s; ++t) {
          if (!parents[t]->requires_grad) continue;
          Tensor g({b, hid});
          auto gv = g.data();
          for (std::size_t i = 0; i < b; ++i) {
            std::copy(&og[(i * s + t) * hid], &og[(i * s + t + 1) * hid],
                      &gv[i * hid]);
          }
          parents[t]->accumulate_grad(g);
        }
      });
}

std::vector<Variable> LSTM::parameters() { return {w_ih_, w_hh_, bias_}; }

std::string LSTM::name() const {
  return "LSTM(" + std::to_string(input_) + "->" + std::to_string(hidden_) +
         (weight_drop_ > 0.0 ? ", wdrop=" + std::to_string(weight_drop_) : "") +
         ")";
}

}  // namespace avgpipe::nn
