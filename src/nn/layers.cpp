#include "nn/layers.hpp"

#include <cmath>

namespace avgpipe::nn {

namespace {
using tensor::detail::VarData;
}

// -- Linear -------------------------------------------------------------------

Linear::Linear(std::size_t in, std::size_t out, Rng& rng, bool bias)
    : in_(in), out_(out), has_bias_(bias) {
  // Kaiming-ish init: stddev 1/sqrt(in).
  const Scalar stddev = 1.0 / std::sqrt(static_cast<Scalar>(in));
  weight_ = Variable(Tensor::randn({in, out}, rng, stddev),
                     /*requires_grad=*/true);
  if (has_bias_) {
    bias_ = Variable(Tensor::zeros({out}), /*requires_grad=*/true);
  }
}

Variable Linear::forward(const Variable& x) {
  const auto& shape = x.shape();
  AVGPIPE_CHECK(!shape.empty() && shape.back() == in_,
                name() << ": input last dim " << shape.back() << " != " << in_);
  Variable flat = shape.size() == 2
                      ? x
                      : tensor::reshape(x, {x.numel() / in_, in_});
  Variable y = tensor::matmul(flat, weight_);
  if (has_bias_) y = tensor::add_bias_(y, bias_);
  if (shape.size() != 2) {
    Shape out_shape = shape;
    out_shape.back() = out_;
    y = tensor::reshape(y, std::move(out_shape));
  }
  return y;
}

std::vector<Variable> Linear::parameters() {
  if (has_bias_) return {weight_, bias_};
  return {weight_};
}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

// -- DropConnectLinear ----------------------------------------------------------

DropConnectLinear::DropConnectLinear(std::size_t in, std::size_t out, double p,
                                     Rng& rng, bool bias)
    : Linear(in, out, rng, bias), p_(p), rng_(rng.fork(0xDC)) {
  AVGPIPE_CHECK(p >= 0.0 && p < 1.0, "DropConnect p must be in [0,1)");
}

Variable DropConnectLinear::forward(const Variable& x) {
  if (!training_ || p_ == 0.0) return Linear::forward(x);
  // Mask the weight matrix, not the activations.
  const Scalar keep = 1.0 - p_;
  Tensor mask = Tensor::uninitialized(weight_.shape());
  for (auto& m : mask.data()) m = rng_.bernoulli(keep) ? 1.0 / keep : 0.0;
  Variable masked_w = tensor::mul(weight_, Variable(mask));

  const auto& shape = x.shape();
  AVGPIPE_CHECK(shape.back() == in_, name() << ": input dim mismatch");
  Variable flat = shape.size() == 2
                      ? x
                      : tensor::reshape(x, {x.numel() / in_, in_});
  Variable y = tensor::matmul(flat, masked_w);
  if (has_bias_) y = tensor::add_bias_(y, bias_);
  if (shape.size() != 2) {
    Shape out_shape = shape;
    out_shape.back() = out_;
    y = tensor::reshape(y, std::move(out_shape));
  }
  return y;
}

std::string DropConnectLinear::name() const {
  return "DropConnectLinear(" + std::to_string(in_) + "->" +
         std::to_string(out_) + ", p=" + std::to_string(p_) + ")";
}

// -- Embedding ------------------------------------------------------------------

Embedding::Embedding(std::size_t vocab, std::size_t dim, Rng& rng)
    : vocab_(vocab), dim_(dim) {
  weight_ = Variable(Tensor::randn({vocab, dim}, rng, 0.1),
                     /*requires_grad=*/true);
}

Variable Embedding::forward(const Variable& ids) {
  const auto iv = ids.value().data();
  std::vector<int> indices(iv.size());
  for (std::size_t i = 0; i < iv.size(); ++i) {
    indices[i] = static_cast<int>(std::llround(iv[i]));
  }
  Variable flat = tensor::embedding(weight_, indices);
  Shape out_shape = ids.shape();
  out_shape.push_back(dim_);
  return tensor::reshape(flat, std::move(out_shape));
}

std::vector<Variable> Embedding::parameters() { return {weight_}; }

std::string Embedding::name() const {
  return "Embedding(" + std::to_string(vocab_) + "x" + std::to_string(dim_) +
         ")";
}

// -- LayerNorm -------------------------------------------------------------------

LayerNorm::LayerNorm(std::size_t dim, Scalar eps) : dim_(dim), eps_(eps) {
  gamma_ = Variable(Tensor::ones({dim}), /*requires_grad=*/true);
  beta_ = Variable(Tensor::zeros({dim}), /*requires_grad=*/true);
}

Variable LayerNorm::forward(const Variable& x) {
  AVGPIPE_CHECK(x.shape().back() == dim_,
                name() << ": last dim " << x.shape().back() << " != " << dim_);
  return tensor::layer_norm(x, gamma_, beta_, eps_);
}

std::vector<Variable> LayerNorm::parameters() { return {gamma_, beta_}; }

std::string LayerNorm::name() const {
  return "LayerNorm(" + std::to_string(dim_) + ")";
}

// -- Dropout ---------------------------------------------------------------------

Dropout::Dropout(double p, Rng& rng) : p_(p), rng_(rng.fork(0xD0)) {}

Variable Dropout::forward(const Variable& x) {
  return tensor::dropout(x, p_, rng_, training_);
}

std::string Dropout::name() const {
  return "Dropout(p=" + std::to_string(p_) + ")";
}

// -- pooling ---------------------------------------------------------------------

Variable MeanPoolSeq::forward(const Variable& x) {
  AVGPIPE_CHECK(x.shape().size() == 3, "MeanPoolSeq expects [B,S,D]");
  const std::size_t b = x.shape()[0], s = x.shape()[1], d = x.shape()[2];
  Tensor out({b, d});
  const auto xv = x.value().data();
  auto ov = out.data();
  const Scalar inv_s = 1.0 / static_cast<Scalar>(s);
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t t = 0; t < s; ++t) {
      for (std::size_t c = 0; c < d; ++c) {
        ov[i * d + c] += xv[(i * s + t) * d + c] * inv_s;
      }
    }
  }
  auto px = x.data();
  return Variable::make_op(std::move(out), {x}, [px, b, s, d](VarData& o) {
    Tensor g(px->value.shape());
    auto gv = g.data();
    const auto og = o.grad.data();
    const Scalar inv_s2 = 1.0 / static_cast<Scalar>(s);
    for (std::size_t i = 0; i < b; ++i) {
      for (std::size_t t = 0; t < s; ++t) {
        for (std::size_t c = 0; c < d; ++c) {
          gv[(i * s + t) * d + c] = og[i * d + c] * inv_s2;
        }
      }
    }
    px->accumulate_grad(g);
  });
}

Variable LastStep::forward(const Variable& x) {
  AVGPIPE_CHECK(x.shape().size() == 3, "LastStep expects [B,S,D]");
  const std::size_t b = x.shape()[0], s = x.shape()[1], d = x.shape()[2];
  Tensor out({b, d});
  const auto xv = x.value().data();
  auto ov = out.data();
  for (std::size_t i = 0; i < b; ++i) {
    for (std::size_t c = 0; c < d; ++c) {
      ov[i * d + c] = xv[(i * s + (s - 1)) * d + c];
    }
  }
  auto px = x.data();
  return Variable::make_op(std::move(out), {x}, [px, b, s, d](VarData& o) {
    Tensor g(px->value.shape());
    auto gv = g.data();
    const auto og = o.grad.data();
    for (std::size_t i = 0; i < b; ++i) {
      for (std::size_t c = 0; c < d; ++c) {
        gv[(i * s + (s - 1)) * d + c] = og[i * d + c];
      }
    }
    px->accumulate_grad(g);
  });
}

}  // namespace avgpipe::nn
