#pragma once

/// \file module.hpp
/// Base class for neural-network layers.
///
/// All models in the reproduction are `Sequential` chains of `Module`s so
/// that the pipeline runtime can cut them at arbitrary layer boundaries
/// (paper §3.2: "Each GPU takes charge of one partition of successive
/// layers"). Modules expose their parameters as `Variable`s, which is the
/// unit the optimizers and the elastic-averaging framework operate on.

#include <memory>
#include <string>
#include <vector>

#include "tensor/ops.hpp"

namespace avgpipe::nn {

using tensor::Scalar;
using tensor::Shape;
using tensor::Tensor;
using tensor::Variable;

/// A layer: differentiable function of one Variable plus owned parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// Forward pass; builds autograd graph when inputs/parameters need grad.
  virtual Variable forward(const Variable& x) = 0;

  /// All trainable parameters, in a stable order.
  virtual std::vector<Variable> parameters() { return {}; }

  /// Human-readable layer name for diagnostics and partition dumps.
  virtual std::string name() const = 0;

  /// Toggle training-time behaviour (dropout etc.).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Zero all parameter gradients.
  void zero_grad() {
    for (auto& p : parameters()) p.zero_grad();
  }

  /// Total trainable scalar count.
  std::size_t num_params() {
    std::size_t n = 0;
    for (auto& p : parameters()) n += p.numel();
    return n;
  }

 protected:
  bool training_ = true;
};

using ModulePtr = std::shared_ptr<Module>;

}  // namespace avgpipe::nn
