#pragma once

/// \file models.hpp
/// Model builders for the three paper workloads (laptop-scale stand-ins) and
/// a plain MLP for quickstarts/tests. All models are `Sequential`, so the
/// pipeline runtime can cut them at any layer boundary.

#include "nn/attention.hpp"
#include "nn/lstm.hpp"
#include "nn/sequential.hpp"

namespace avgpipe::nn {

/// Plain MLP classifier: [B, in] -> [B, classes].
Sequential make_mlp(std::size_t in, std::size_t hidden, std::size_t depth,
                    std::size_t classes, std::uint64_t seed);

/// GNMT stand-in: embedding + stacked LSTMs + classifier over the final
/// state. Input [B,S] token ids, output [B, classes]. The paper's GNMT is a
/// translation model; for statistical-efficiency purposes what matters is a
/// deep recurrent model trained with Adam, which this preserves.
Sequential make_gnmt_like(std::size_t vocab, std::size_t embed,
                          std::size_t hidden, std::size_t lstm_layers,
                          std::size_t classes, std::uint64_t seed);

/// BERT stand-in: embedding + Transformer encoder stack + mean-pool +
/// classifier. Input [B,S] token ids, output [B, classes]; matches the QQP
/// sentence-pair classification task shape.
Sequential make_bert_like(std::size_t vocab, std::size_t d_model,
                          std::size_t heads, std::size_t d_ff,
                          std::size_t encoder_layers, std::size_t classes,
                          std::uint64_t seed, double dropout_p = 0.1);

/// AWD-LSTM stand-in: embedding + weight-dropped LSTMs + per-position
/// decoder. Input [B,S] token ids, output [B,S,vocab] logits for
/// next-token prediction (language modelling).
Sequential make_awd_like(std::size_t vocab, std::size_t embed,
                         std::size_t hidden, std::size_t lstm_layers,
                         std::uint64_t seed, double weight_drop = 0.3);

}  // namespace avgpipe::nn
