#pragma once

/// \file lstm.hpp
/// LSTM layer (unrolled over the sequence) used by the GNMT and AWD-LSTM
/// stand-in workloads. Supports DropConnect on the hidden-to-hidden weights,
/// the defining regulariser of AWD-LSTM (Merity et al. 2018).

#include "nn/layers.hpp"

namespace avgpipe::nn {

/// Single-layer LSTM mapping [B,S,In] -> [B,S,H]. State is zero-initialised
/// per forward call (stateless across batches, which matches how the
/// pipeline runtime slices micro-batches independently).
class LSTM : public Module {
 public:
  /// \param weight_drop DropConnect probability on W_hh (0 disables).
  LSTM(std::size_t input, std::size_t hidden, Rng& rng,
       double weight_drop = 0.0);

  Variable forward(const Variable& x) override;
  std::vector<Variable> parameters() override;
  std::string name() const override;

  std::size_t input_size() const { return input_; }
  std::size_t hidden_size() const { return hidden_; }

 private:
  /// One step: returns (h', c').
  std::pair<Variable, Variable> cell(const Variable& x_t, const Variable& h,
                                     const Variable& c,
                                     const Variable& w_hh_eff);

  std::size_t input_, hidden_;
  double weight_drop_;
  Rng rng_;
  Variable w_ih_;  ///< [In, 4H] packed i|f|g|o
  Variable w_hh_;  ///< [H, 4H]
  Variable bias_;  ///< [4H]
};

}  // namespace avgpipe::nn
