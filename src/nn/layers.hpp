#pragma once

/// \file layers.hpp
/// Basic layers: Linear, Embedding, activations, LayerNorm, Dropout,
/// DropConnect (the AWD-LSTM regulariser), and sequence pooling.

#include "nn/module.hpp"

namespace avgpipe::nn {

/// Affine layer y = xW + b. Accepts [.., in] inputs (leading dims flattened).
class Linear : public Module {
 public:
  Linear(std::size_t in, std::size_t out, Rng& rng, bool bias = true);

  Variable forward(const Variable& x) override;
  std::vector<Variable> parameters() override;
  std::string name() const override;

  Variable& weight() { return weight_; }
  Variable& bias() { return bias_; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 protected:
  std::size_t in_, out_;
  bool has_bias_;
  Variable weight_;  ///< [in, out]
  Variable bias_;    ///< [out]
};

/// Linear with DropConnect on the weight matrix (Merity et al., AWD-LSTM):
/// during training each weight is zeroed with probability `p` and the rest
/// scaled by 1/(1-p).
class DropConnectLinear : public Linear {
 public:
  DropConnectLinear(std::size_t in, std::size_t out, double p, Rng& rng,
                    bool bias = true);

  Variable forward(const Variable& x) override;
  std::string name() const override;

 private:
  double p_;
  Rng rng_;
};

/// Token embedding: input is a [B,S] (or [N]) tensor of integer ids stored
/// as Scalars; output appends an embedding dim: [B,S,D] (or [N,D]).
class Embedding : public Module {
 public:
  Embedding(std::size_t vocab, std::size_t dim, Rng& rng);

  Variable forward(const Variable& ids) override;
  std::vector<Variable> parameters() override;
  std::string name() const override;

  Variable& weight() { return weight_; }

 private:
  std::size_t vocab_, dim_;
  Variable weight_;  ///< [vocab, dim]
};

/// Stateless activation wrappers.
class ReLU : public Module {
 public:
  Variable forward(const Variable& x) override { return tensor::relu(x); }
  std::string name() const override { return "ReLU"; }
};

class Tanh : public Module {
 public:
  Variable forward(const Variable& x) override { return tensor::tanh_op(x); }
  std::string name() const override { return "Tanh"; }
};

class GELU : public Module {
 public:
  Variable forward(const Variable& x) override { return tensor::gelu(x); }
  std::string name() const override { return "GELU"; }
};

/// LayerNorm over the last dimension with learned affine parameters.
class LayerNorm : public Module {
 public:
  LayerNorm(std::size_t dim, Scalar eps = 1e-5);

  Variable forward(const Variable& x) override;
  std::vector<Variable> parameters() override;
  std::string name() const override;

 private:
  std::size_t dim_;
  Scalar eps_;
  Variable gamma_, beta_;
};

/// Inverted dropout with its own deterministic stream.
class Dropout : public Module {
 public:
  Dropout(double p, Rng& rng);

  Variable forward(const Variable& x) override;
  std::string name() const override;

 private:
  double p_;
  Rng rng_;
};

/// Mean over the sequence dimension: [B,S,D] -> [B,D].
class MeanPoolSeq : public Module {
 public:
  Variable forward(const Variable& x) override;
  std::string name() const override { return "MeanPoolSeq"; }
};

/// Selects the last position of a sequence: [B,S,D] -> [B,D]. Used by
/// sequence classifiers over recurrent outputs.
class LastStep : public Module {
 public:
  Variable forward(const Variable& x) override;
  std::string name() const override { return "LastStep"; }
};

}  // namespace avgpipe::nn
