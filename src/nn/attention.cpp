#include "nn/attention.hpp"

#include <cmath>

namespace avgpipe::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(std::size_t d_model,
                                               std::size_t num_heads, Rng& rng,
                                               double dropout_p)
    : d_model_(d_model),
      heads_(num_heads),
      d_head_(d_model / num_heads),
      qkv_(d_model, 3 * d_model, rng),
      proj_(d_model, d_model, rng),
      attn_dropout_(dropout_p, rng) {
  AVGPIPE_CHECK(d_model % num_heads == 0,
                "d_model " << d_model << " not divisible by heads "
                           << num_heads);
}

Variable MultiHeadSelfAttention::forward(const Variable& x) {
  AVGPIPE_CHECK(x.shape().size() == 3, name() << " expects [B,S,D]");
  const std::size_t b = x.shape()[0], s = x.shape()[1];
  AVGPIPE_CHECK(x.shape()[2] == d_model_, name() << " d_model mismatch");

  // Packed projection then split into q/k/v.
  Variable qkv = qkv_.forward(x);  // [B,S,3D]
  Variable flat = tensor::reshape(qkv, {b * s, 3 * d_model_});
  auto split_heads = [&](std::size_t part) {
    Variable v = tensor::slice_cols(flat, part * d_model_,
                                    (part + 1) * d_model_);      // [B*S, D]
    v = tensor::reshape(v, {b, s, heads_, d_head_});             // [B,S,H,Dh]
    v = tensor::permute_0213(v);                                 // [B,H,S,Dh]
    return tensor::reshape(v, {b * heads_, s, d_head_});         // [BH,S,Dh]
  };
  Variable q = split_heads(0), k = split_heads(1), v = split_heads(2);

  Variable scores = tensor::bmm(q, tensor::transpose_last2(k));  // [BH,S,S]
  // In-place scale: scores is a freshly owned bmm output and bmm's backward
  // reads only its inputs.
  scores =
      tensor::scale_(scores, 1.0 / std::sqrt(static_cast<Scalar>(d_head_)));
  Variable weights = tensor::softmax_rows(scores);
  weights = attn_dropout_.forward(weights);
  Variable ctx = tensor::bmm(weights, v);                        // [BH,S,Dh]

  ctx = tensor::reshape(ctx, {b, heads_, s, d_head_});
  ctx = tensor::permute_0213(ctx);                               // [B,S,H,Dh]
  ctx = tensor::reshape(ctx, {b, s, d_model_});
  return proj_.forward(ctx);
}

std::vector<Variable> MultiHeadSelfAttention::parameters() {
  std::vector<Variable> params = qkv_.parameters();
  auto p2 = proj_.parameters();
  params.insert(params.end(), p2.begin(), p2.end());
  return params;
}

std::string MultiHeadSelfAttention::name() const {
  return "MHSA(d=" + std::to_string(d_model_) +
         ", h=" + std::to_string(heads_) + ")";
}

void MultiHeadSelfAttention::set_training(bool training) {
  Module::set_training(training);
  attn_dropout_.set_training(training);
}

TransformerEncoderLayer::TransformerEncoderLayer(std::size_t d_model,
                                                 std::size_t num_heads,
                                                 std::size_t d_ff, Rng& rng,
                                                 double dropout_p)
    : d_model_(d_model),
      ln1_(d_model),
      ln2_(d_model),
      attn_(d_model, num_heads, rng, dropout_p),
      ff1_(d_model, d_ff, rng),
      ff2_(d_ff, d_model, rng),
      dropout_(dropout_p, rng) {}

Variable TransformerEncoderLayer::forward(const Variable& x) {
  Variable h = tensor::add(x, dropout_.forward(attn_.forward(ln1_.forward(x))));
  Variable ff = ff2_.forward(tensor::gelu(ff1_.forward(ln2_.forward(h))));
  return tensor::add(h, dropout_.forward(ff));
}

std::vector<Variable> TransformerEncoderLayer::parameters() {
  std::vector<Variable> params;
  for (Module* m :
       std::initializer_list<Module*>{&ln1_, &ln2_, &attn_, &ff1_, &ff2_}) {
    auto p = m->parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

std::string TransformerEncoderLayer::name() const {
  return "TransformerEncoderLayer(d=" + std::to_string(d_model_) + ")";
}

void TransformerEncoderLayer::set_training(bool training) {
  Module::set_training(training);
  attn_.set_training(training);
  dropout_.set_training(training);
}

}  // namespace avgpipe::nn
