#pragma once

/// \file verifier.hpp
/// Static schedule/protocol model checker for the pipeline runtime.
///
/// The threaded runtime (runtime/pipeline_runtime.cpp) is a fixed message-
/// passing protocol: per-stage workers executing schedule:: instruction
/// streams over bounded channels, coordinated by a driver through start/done
/// tokens and (optionally) an elastic reference process. Whether that
/// protocol can deadlock — and how deep each bounded channel can actually
/// grow — depends only on `(kind, K, M, advance_num, capacities, sync
/// mode)`, never on tensor contents or timing. So it can be *proved* offline:
/// this module compiles every process's send/recv event automaton from the
/// schedule, then exhaustively explores the induced state space.
///
/// The state of the whole system is just the vector of per-process program
/// positions: channel occupancies are derivable (sends completed by the
/// producer minus recvs completed by the consumer), which keeps states tiny
/// (one byte per process) and the visited set a flat hash set. Exploration
/// is breadth-first — counterexamples come out shortest-first — with a
/// sleep-set partial-order reduction (Godefroid) that prunes commuting
/// interleavings of actions on different channels without losing reachable
/// states, so the reported peaks stay exact.
///
/// Checked properties:
///  - deadlock freedom: no reachable state where some process is incomplete
///    and nothing is enabled;
///  - the non-parking-send headroom contract: with the schedule-derived
///    capacity (run-ahead + 1 slack, see schedule::max_send_run_ahead) a
///    stage link never fills — one free slot in every reachable state means
///    no interleaving can park a send. A reachable full link is reported as
///    a kSendParked safety violation with a shortest filling trace — this
///    is what an under-provisioned capacity (e.g. --no-slack, capacity =
///    run-ahead) turns into, instead of a hang;
///  - exact peak per-link occupancy (cross-checked against
///    PipelineRuntime::link_capacity() - 1) and peak in-flight activation
///    counts (cross-checked against schedule::check_schedule's stash bounds
///    and the predictor's Eq. 8 activation-memory term).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "schedule/schedule.hpp"

namespace avgpipe::verify {

/// How the elastic-averaging driver/reference pair is modeled alongside the
/// pipeline (core::AvgPipe): kSync blocks the driver on every round's apply,
/// kAsync lets up to `sync_lag` rounds run behind (paper §3.2 ❷–❺).
enum class ElasticMode { kNone, kSync, kAsync };

const char* to_string(ElasticMode mode);

/// One protocol instance to verify. Mirrors the runtime's construction
/// parameters; defaults reproduce its derivations (advance_num 0 -> K-1,
/// link_capacity 0 -> run-ahead + 1).
struct ModelConfig {
  schedule::Kind kind = schedule::Kind::kOneFOneB;
  std::size_t num_stages = 2;      ///< K
  std::size_t micro_batches = 4;   ///< M per batch
  std::size_t num_batches = 1;
  std::size_t advance_num = 0;     ///< AFP advance; 0 derives K-1
  /// Stage-link capacity. 0 derives the runtime's bound (run-ahead + 1);
  /// any other value models AVGPIPE_CHANNEL_CAPACITY.
  std::size_t link_capacity = 0;
  ElasticMode elastic = ElasticMode::kNone;
  std::size_t sync_lag = 1;        ///< kAsync only
  /// Treat a reachable full stage link as a safety violation: the runtime's
  /// "+1 slack" contract keeps one slot of headroom so no send can ever
  /// park. When false, full links pass silently and only classical deadlock
  /// is reported.
  bool check_send_parking = true;
  /// Sleep-set partial-order reduction. Exact for every reported property;
  /// off is only useful for validating the reduction itself.
  bool partial_order_reduction = true;
  std::size_t max_states = 1u << 22;  ///< exploration budget
};

enum class Verdict {
  kOk,              ///< full space explored, no violation
  kDeadlock,        ///< reachable state with work pending and nothing enabled
  kSendParked,      ///< reachable full stage link (send-parking headroom lost)
  kInvalidSchedule, ///< schedule:: rejected the configuration
  kStateLimit,      ///< max_states exhausted before completion
};

const char* to_string(Verdict verdict);

/// One step of a counterexample: which process moved and what it did.
struct Step {
  std::string process;
  std::string action;
};

/// Occupancy result for one modeled channel.
struct ChannelReport {
  std::string name;
  std::size_t capacity = 0;
  std::size_t peak = 0;       ///< exact max occupancy over reachable states
  bool stage_link = false;    ///< an acts/grads payload link
};

struct Report {
  Verdict verdict = Verdict::kStateLimit;
  /// Human-readable account of the violation (empty for kOk).
  std::string diagnosis;
  /// Shortest event trace reaching the violating state (BFS order), ending
  /// with the blocked/deadlocked situation. Empty for kOk.
  std::vector<Step> counterexample;

  std::vector<ChannelReport> channels;
  /// Exact peak occupancy over the stage links only (the acts/grads
  /// channels PipelineRuntime::link_capacity() provisions). Equals
  /// link_capacity - 1 when the schedule-derived capacity is used.
  std::size_t peak_link_occupancy = 0;
  /// Per stage: exact peak count of forwarded-but-not-backwarded
  /// micro-batches (the activation stash; matches
  /// schedule::check_schedule().max_in_flight).
  std::vector<std::size_t> peak_stash;
  /// Exact peak, over reachable states, of total in-flight activations:
  /// every stage's stash plus every activation sitting in a stage link.
  std::size_t peak_in_flight = 0;

  /// The stage-link capacity the model ran with and the schedule-derived
  /// value (they differ only under an explicit link_capacity override).
  std::size_t link_capacity_used = 0;
  std::size_t derived_link_capacity = 0;

  std::size_t states = 0;       ///< distinct states visited
  std::size_t transitions = 0;  ///< transitions executed
  std::size_t sleep_skips = 0;  ///< transitions pruned by the reduction
  bool complete = false;        ///< whole reachable space covered

  bool ok() const { return verdict == Verdict::kOk; }
};

/// Model-check one configuration. Never hangs: the result is a verdict, a
/// (possibly empty) counterexample and exact occupancy peaks.
Report verify(const ModelConfig& config);

/// Multi-line human-readable rendering (the CLI's non-JSON output).
std::string format_report(const ModelConfig& config, const Report& report);

}  // namespace avgpipe::verify
