#include "verify/verifier.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <sstream>
#include <unordered_map>

#include "common/check.hpp"

namespace avgpipe::verify {

namespace {

using schedule::Kind;
using schedule::OpKind;

/// K stages + driver + reference. K is capped well above anything the paper
/// evaluates so states stay one byte per process.
constexpr std::size_t kMaxProcesses = 12;
constexpr std::size_t kMaxStages = kMaxProcesses - 2;
constexpr std::size_t kMaxPositions = 255;

/// Capacity of the runtime's round-batched elastic update queue
/// (core::AvgPipe::update_queue_).
constexpr std::size_t kRoundsCapacity = 64;

/// One visible protocol operation of a process.
struct Action {
  enum Type : std::uint8_t { kSend, kRecv };
  Type type = kRecv;
  std::uint16_t channel = 0;
  std::string label;
};

struct ChannelModel {
  std::string name;
  std::size_t capacity = 0;
  bool stage_link = false;  ///< an acts/grads payload link
  bool act_link = false;    ///< carries activations (counts as in-flight)
};

struct ProcessModel {
  std::string name;
  bool is_stage = false;
  std::vector<Action> actions;
  /// net[pos][ch]: sends minus recvs this process performed on channel `ch`
  /// within its first `pos` actions. Channel occupancy at any global state
  /// is the sum of `net` over all processes — states never store channel
  /// contents explicitly.
  std::vector<std::vector<std::int16_t>> net;
  /// Stash level (forwarded-but-not-backwarded micro-batches) after the
  /// first `pos` actions; all zero for non-stage processes.
  std::vector<std::int16_t> stash;
};

struct Model {
  ModelConfig cfg;
  std::vector<ChannelModel> channels;
  std::vector<ProcessModel> procs;
  std::size_t link_cap = 0;
  std::size_t derived_cap = 0;
};

std::string mb_tag(int batch, int micro_batch) {
  std::ostringstream os;
  os << 'b' << batch << ".m" << micro_batch;
  return os.str();
}

/// Compiles the runtime's message-passing protocol into per-process action
/// automata. Mirrors runtime/pipeline_runtime.cpp: stage workers recv a
/// start token per batch, execute their schedule:: stream (forwards recv an
/// activation then send one downstream; backwards recv a gradient then send
/// one upstream), and post a done token; the driver dispatches start tokens,
/// feeds all M inputs, joins K dones, and under elastic averaging pushes a
/// round to the reference process, blocking once more than `lag` rounds are
/// behind (core::AvgPipe::wait_applies).
Model build_model(const ModelConfig& cfg) {
  AVGPIPE_CHECK(cfg.kind == Kind::kAfab || cfg.kind == Kind::kOneFOneB ||
                    cfg.kind == Kind::kAdvanceForward,
                "verifier models the flushed runtime schedules; got "
                    << schedule::to_string(cfg.kind));
  AVGPIPE_CHECK(cfg.num_stages >= 1 && cfg.num_stages <= kMaxStages,
                "num_stages must be in [1, " << kMaxStages << "], got "
                                             << cfg.num_stages);
  AVGPIPE_CHECK(cfg.micro_batches >= 1, "micro_batches must be >= 1");
  AVGPIPE_CHECK(cfg.num_batches >= 1, "num_batches must be >= 1");

  Model m;
  m.cfg = cfg;
  const std::size_t k_stages = cfg.num_stages;
  const std::size_t micro = cfg.micro_batches;
  // The runtime derives advance_num = K-1 when unset (its 1F1B default).
  std::size_t advance = cfg.advance_num;
  if (advance == 0) advance = k_stages - 1;
  m.cfg.advance_num = advance;

  m.derived_cap =
      schedule::max_send_run_ahead(cfg.kind, k_stages, micro, advance) + 1;
  m.link_cap = cfg.link_capacity > 0 ? cfg.link_capacity : m.derived_cap;

  // -- channel table ------------------------------------------------------
  const std::size_t n_links = k_stages - 1;
  const std::size_t ch_input = 0;
  const std::size_t ch_acts = 1;               // acts[k] = ch_acts + k
  const std::size_t ch_grads = ch_acts + n_links;
  const std::size_t ch_start = ch_grads + n_links;  // start[k] = ch_start + k
  const std::size_t ch_done = ch_start + k_stages;
  const std::size_t ch_rounds = ch_done + 1;
  const std::size_t ch_acks = ch_done + 2;

  const std::size_t input_cap = std::max(micro, m.link_cap);
  m.channels.push_back({"input", input_cap, false, true});
  for (std::size_t l = 0; l < n_links; ++l) {
    m.channels.push_back({"acts[" + std::to_string(l) + "]", m.link_cap,
                          true, true});
  }
  for (std::size_t l = 0; l < n_links; ++l) {
    m.channels.push_back({"grads[" + std::to_string(l) + "]", m.link_cap,
                          true, false});
  }
  for (std::size_t k = 0; k < k_stages; ++k) {
    // kStartCapacity: one in-flight start token per stage, +1 slack.
    m.channels.push_back({"start[" + std::to_string(k) + "]", 2, false,
                          false});
  }
  m.channels.push_back({"done", k_stages, false, false});
  if (cfg.elastic != ElasticMode::kNone) {
    m.channels.push_back({"rounds", kRoundsCapacity, false, false});
    m.channels.push_back({"acks", cfg.num_batches + 1, false, false});
  }

  // -- one schedule batch, replayed per batch like worker_loop ------------
  schedule::ScheduleParams params;
  params.kind = cfg.kind;
  params.num_stages = k_stages;
  params.micro_batches = micro;
  params.num_batches = 1;
  params.advance_num = advance;
  const auto sched = schedule::make_schedule(params);  // throws if invalid
  const auto valid = schedule::check_schedule(sched, micro, 1);
  AVGPIPE_CHECK(valid.ok, "schedule failed validation: " << valid.error);

  // -- stage processes ----------------------------------------------------
  for (std::size_t k = 0; k < k_stages; ++k) {
    ProcessModel p;
    p.name = "stage" + std::to_string(k);
    p.is_stage = true;
    const bool first = k == 0;
    const bool last = k + 1 == k_stages;
    std::vector<std::int16_t> stash_deltas;  // parallel to p.actions
    for (std::size_t b = 0; b < cfg.num_batches; ++b) {
      const int bi = static_cast<int>(b);
      p.actions.push_back({Action::kRecv,
                           static_cast<std::uint16_t>(ch_start + k),
                           "recv start b" + std::to_string(b)});
      stash_deltas.push_back(0);
      for (const auto& in : sched.stages[k].instrs) {
        switch (in.kind) {
          case OpKind::kForward: {
            const std::size_t src = first ? ch_input : ch_acts + k - 1;
            p.actions.push_back({Action::kRecv,
                                 static_cast<std::uint16_t>(src),
                                 "recv act " + mb_tag(bi, in.micro_batch)});
            // The stash fills as soon as the activation is held locally;
            // compute is invisible to the protocol, so this is equivalent
            // to counting at forward completion.
            stash_deltas.push_back(1);
            if (!last) {
              p.actions.push_back(
                  {Action::kSend, static_cast<std::uint16_t>(ch_acts + k),
                   "send act " + mb_tag(bi, in.micro_batch)});
              stash_deltas.push_back(0);
            }
            break;
          }
          case OpKind::kBackward: {
            std::int16_t pending = -1;  // stash released by this backward
            if (!last) {
              p.actions.push_back(
                  {Action::kRecv, static_cast<std::uint16_t>(ch_grads + k),
                   "recv grad " + mb_tag(bi, in.micro_batch)});
              stash_deltas.push_back(pending);
              pending = 0;
            }
            if (!first) {
              p.actions.push_back(
                  {Action::kSend,
                   static_cast<std::uint16_t>(ch_grads + k - 1),
                   "send grad " + mb_tag(bi, in.micro_batch)});
              stash_deltas.push_back(pending);
              pending = 0;
            }
            // K == 1: a backward with no channel ops; its stash release is
            // invisible between actions, which can only under-report a
            // *minimum*, never the peak.
            break;
          }
          case OpKind::kUpdate:
            break;  // no channel traffic
          case OpKind::kAllReduce:
            AVGPIPE_THROW("all-reduce in a flushed pipeline stream");
        }
      }
      p.actions.push_back({Action::kSend, static_cast<std::uint16_t>(ch_done),
                           "send done b" + std::to_string(b)});
      stash_deltas.push_back(0);
    }
    // Prefix sums: stash level after each position.
    p.stash.assign(p.actions.size() + 1, 0);
    for (std::size_t i = 0; i < p.actions.size(); ++i) {
      p.stash[i + 1] = static_cast<std::int16_t>(p.stash[i] + stash_deltas[i]);
    }
    m.procs.push_back(std::move(p));
  }

  // -- driver process -----------------------------------------------------
  {
    ProcessModel p;
    p.name = "driver";
    const std::size_t lag =
        cfg.elastic == ElasticMode::kAsync ? cfg.sync_lag : 0;
    for (std::size_t b = 0; b < cfg.num_batches; ++b) {
      for (std::size_t k = 0; k < k_stages; ++k) {
        p.actions.push_back({Action::kSend,
                             static_cast<std::uint16_t>(ch_start + k),
                             "start b" + std::to_string(b) + " -> stage " +
                                 std::to_string(k)});
      }
      for (std::size_t mb = 0; mb < micro; ++mb) {
        p.actions.push_back({Action::kSend,
                             static_cast<std::uint16_t>(ch_input),
                             "feed " + mb_tag(static_cast<int>(b),
                                              static_cast<int>(mb))});
      }
      for (std::size_t k = 0; k < k_stages; ++k) {
        p.actions.push_back({Action::kRecv,
                             static_cast<std::uint16_t>(ch_done),
                             "join done b" + std::to_string(b)});
      }
      if (cfg.elastic != ElasticMode::kNone) {
        p.actions.push_back({Action::kSend,
                             static_cast<std::uint16_t>(ch_rounds),
                             "push round b" + std::to_string(b)});
        if (b + 1 > lag) {
          p.actions.push_back({Action::kRecv,
                               static_cast<std::uint16_t>(ch_acks),
                               "await apply (lag " + std::to_string(lag) +
                                   ")"});
        }
      }
    }
    // synchronize(): drain the rounds still in flight after the last batch.
    if (cfg.elastic != ElasticMode::kNone) {
      const std::size_t drain = std::min(lag, cfg.num_batches);
      for (std::size_t i = 0; i < drain; ++i) {
        p.actions.push_back({Action::kRecv,
                             static_cast<std::uint16_t>(ch_acks),
                             "drain apply"});
      }
    }
    p.stash.assign(p.actions.size() + 1, 0);
    m.procs.push_back(std::move(p));
  }

  // -- reference process --------------------------------------------------
  if (cfg.elastic != ElasticMode::kNone) {
    ProcessModel p;
    p.name = "reference";
    for (std::size_t b = 0; b < cfg.num_batches; ++b) {
      p.actions.push_back({Action::kRecv,
                           static_cast<std::uint16_t>(ch_rounds),
                           "pull round b" + std::to_string(b)});
      p.actions.push_back({Action::kSend,
                           static_cast<std::uint16_t>(ch_acks),
                           "apply round b" + std::to_string(b)});
    }
    p.stash.assign(p.actions.size() + 1, 0);
    m.procs.push_back(std::move(p));
  }

  AVGPIPE_CHECK(m.procs.size() <= kMaxProcesses, "too many processes");
  for (const auto& p : m.procs) {
    AVGPIPE_CHECK(p.actions.size() <= kMaxPositions,
                  p.name << " automaton too long (" << p.actions.size()
                         << " actions; raise num_batches/micro_batches "
                            "limits only with a wider state encoding)");
  }

  // Per-process per-position net channel counts.
  for (auto& p : m.procs) {
    p.net.assign(p.actions.size() + 1,
                 std::vector<std::int16_t>(m.channels.size(), 0));
    for (std::size_t i = 0; i < p.actions.size(); ++i) {
      p.net[i + 1] = p.net[i];
      const auto& a = p.actions[i];
      p.net[i + 1][a.channel] = static_cast<std::int16_t>(
          p.net[i + 1][a.channel] + (a.type == Action::kSend ? 1 : -1));
    }
  }
  return m;
}

/// Global protocol state: one position byte per process.
struct StateKey {
  std::array<std::uint8_t, kMaxProcesses> pos{};
  bool operator==(const StateKey& other) const { return pos == other.pos; }
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& k) const {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (const auto b : k.pos) {
      h ^= b;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

using Mask = std::uint16_t;

struct Node {
  StateKey key;
  std::uint32_t parent = 0;
  std::uint8_t via_proc = 0;
  /// Processes never yet expanded from this state (sleep-set bookkeeping:
  /// a revisit with a smaller sleep set re-expands exactly the difference).
  Mask unexpanded = 0;
};

constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

/// Breadth-first explorer with sleep-set partial-order reduction. Sleep
/// sets prune only transitions between states that are reached anyway, so
/// every reachable state is still visited exactly once — which keeps the
/// occupancy/stash peaks exact — while commuting interleavings of actions
/// on different channels stop multiplying the edge count.
class Explorer {
 public:
  Explorer(const Model& m, Report& r) : m_(m), r_(r) {
    n_procs_ = m_.procs.size();
    all_mask_ = static_cast<Mask>((1u << n_procs_) - 1u);
  }

  void run() {
    StateKey init{};
    std::vector<std::int32_t> occ(m_.channels.size(), 0);
    discover(init, kNoNode, 0, 0, occ);
    while (!queue_.empty() && !stop_) {
      const QItem item = queue_.front();
      queue_.pop_front();
      process(item.node, item.sleep);
      if (nodes_.size() > m_.cfg.max_states) {
        r_.verdict = Verdict::kStateLimit;
        r_.diagnosis = "state budget exhausted after " +
                       std::to_string(nodes_.size()) + " states";
        stop_ = true;
      }
    }
    r_.states = nodes_.size();
    r_.complete = !stop_;
    if (!stop_ && r_.verdict == Verdict::kStateLimit) {
      r_.verdict = Verdict::kOk;  // ran to completion with no violation
    }
  }

 private:
  struct QItem {
    std::uint32_t node;
    Mask sleep;
  };

  const Action* next_action(const StateKey& s, std::size_t p) const {
    const auto& proc = m_.procs[p];
    const std::size_t pos = s.pos[p];
    if (pos >= proc.actions.size()) return nullptr;
    return &proc.actions[pos];
  }

  bool enabled(const Action& a, const std::vector<std::int32_t>& occ) const {
    const auto o = occ[a.channel];
    return a.type == Action::kSend
               ? o < static_cast<std::int32_t>(m_.channels[a.channel].capacity)
               : o > 0;
  }

  void compute_occ(const StateKey& s, std::vector<std::int32_t>& occ) const {
    std::fill(occ.begin(), occ.end(), 0);
    for (std::size_t p = 0; p < n_procs_; ++p) {
      const auto& net = m_.procs[p].net[s.pos[p]];
      for (std::size_t c = 0; c < occ.size(); ++c) occ[c] += net[c];
    }
  }

  /// First sight of a state: record it, fold it into the peaks, and check
  /// the safety predicates (parked send, deadlock). Exploration from it is
  /// queued by the caller.
  void discover(const StateKey& key, std::uint32_t parent,
                std::uint8_t via_proc, Mask sleep,
                const std::vector<std::int32_t>& occ) {
    const auto [it, inserted] =
        visited_.try_emplace(key, static_cast<std::uint32_t>(nodes_.size()));
    if (!inserted) {
      Node& n = nodes_[it->second];
      if ((n.unexpanded & ~sleep) != 0) {
        queue_.push_back({it->second, sleep});
      } else {
        ++r_.sleep_skips;
      }
      return;
    }
    nodes_.push_back({key, parent, via_proc, all_mask_});
    const auto id = it->second;
    queue_.push_back({id, sleep});

    // Exact peaks over every distinct reachable state.
    for (std::size_t c = 0; c < occ.size(); ++c) {
      r_.channels[c].peak =
          std::max(r_.channels[c].peak, static_cast<std::size_t>(occ[c]));
    }
    std::size_t total_in_flight = 0;
    for (std::size_t c = 0; c < occ.size(); ++c) {
      if (m_.channels[c].stage_link && m_.channels[c].act_link) {
        total_in_flight += static_cast<std::size_t>(occ[c]);
      }
    }
    for (std::size_t p = 0; p < n_procs_; ++p) {
      if (!m_.procs[p].is_stage) continue;
      const auto stash =
          static_cast<std::size_t>(m_.procs[p].stash[key.pos[p]]);
      r_.peak_stash[p] = std::max(r_.peak_stash[p], stash);
      total_in_flight += stash;
    }
    r_.peak_in_flight = std::max(r_.peak_in_flight, total_in_flight);

    // Safety predicates. The "+1 slack" contract is that a stage link never
    // fills: one slot of headroom means no interleaving can park a send.
    // A full link is always entered via the send that filled it (`via_proc`
    // on first discovery), so BFS yields the shortest filling trace.
    if (m_.cfg.check_send_parking && parent != kNoNode) {
      for (std::size_t c = 0; c < occ.size() && !stop_; ++c) {
        if (m_.channels[c].stage_link &&
            static_cast<std::size_t>(occ[c]) >= m_.channels[c].capacity) {
          report_full_link(id, via_proc, c, occ);
        }
      }
    }
    bool any_enabled = false;
    bool any_pending = false;
    for (std::size_t p = 0; p < n_procs_ && !stop_; ++p) {
      const Action* a = next_action(key, p);
      if (a == nullptr) continue;
      any_pending = true;
      if (enabled(*a, occ)) any_enabled = true;
    }
    if (!stop_ && any_pending && !any_enabled) report_deadlock(id, key, occ);
  }

  void process(std::uint32_t id, Mask sleep) {
    Mask to_explore = 0;
    Mask explored_before = 0;
    {
      Node& n = nodes_[id];
      to_explore = static_cast<Mask>(n.unexpanded & ~sleep);
      if (to_explore == 0) return;
      explored_before = static_cast<Mask>(all_mask_ & ~n.unexpanded);
      n.unexpanded = static_cast<Mask>(n.unexpanded & sleep);
    }
    const StateKey key = nodes_[id].key;  // copy: nodes_ may reallocate
    std::vector<std::int32_t> occ(m_.channels.size(), 0);
    compute_occ(key, occ);

    Mask done_mask = explored_before;
    for (std::size_t p = 0; p < n_procs_ && !stop_; ++p) {
      const auto bit = static_cast<Mask>(1u << p);
      if ((to_explore & bit) == 0) continue;
      const Action* a = next_action(key, p);
      if (a == nullptr || !enabled(*a, occ)) continue;

      StateKey succ = key;
      ++succ.pos[p];
      std::vector<std::int32_t> succ_occ = occ;
      succ_occ[a->channel] += a->type == Action::kSend ? 1 : -1;

      // Successor sleep set: everything already covered from this state
      // that commutes with `p` (touches a different channel) stays asleep.
      Mask succ_sleep = 0;
      for (std::size_t q = 0; q < n_procs_; ++q) {
        const auto qbit = static_cast<Mask>(1u << q);
        if ((done_mask & qbit) == 0 && (sleep & qbit) == 0) continue;
        const Action* qa = next_action(key, q);
        if (qa != nullptr && qa->channel != a->channel) succ_sleep |= qbit;
      }
      if (!m_.cfg.partial_order_reduction) succ_sleep = 0;

      ++r_.transitions;
      discover(succ, id, static_cast<std::uint8_t>(p), succ_sleep, succ_occ);
      done_mask |= bit;
    }
  }

  std::vector<Step> trace_to(std::uint32_t id) const {
    std::vector<Step> steps;
    for (std::uint32_t n = id; nodes_[n].parent != kNoNode;
         n = nodes_[n].parent) {
      const Node& node = nodes_[n];
      const std::size_t p = node.via_proc;
      // The action that produced this node is the parent's action at the
      // parent's position of process p.
      const StateKey& parent_key = nodes_[node.parent].key;
      const Action& a = m_.procs[p].actions[parent_key.pos[p]];
      steps.push_back({m_.procs[p].name,
                       std::string(a.type == Action::kSend ? "send " : "recv ") +
                           m_.channels[a.channel].name + ": " + a.label});
    }
    std::reverse(steps.begin(), steps.end());
    return steps;
  }

  void report_full_link(std::uint32_t id, std::size_t p, std::size_t c,
                        const std::vector<std::int32_t>& occ) {
    r_.verdict = Verdict::kSendParked;
    r_.counterexample = trace_to(id);
    std::ostringstream os;
    os << m_.procs[p].name << " fills " << m_.channels[c].name << " to "
       << occ[c] << "/" << m_.channels[c].capacity
       << " — the next send on this link parks (capacity does not exceed "
          "the schedule's run-ahead; the runtime's \"+1 slack\" headroom "
          "contract is violated after "
       << r_.counterexample.size() << " steps)";
    r_.diagnosis = os.str();
    r_.counterexample.push_back(
        {m_.procs[p].name,
         "LINK FULL: " + m_.channels[c].name + " at capacity " +
             std::to_string(m_.channels[c].capacity) +
             " — a subsequent send here parks"});
    stop_ = true;
  }

  void report_deadlock(std::uint32_t id, const StateKey& key,
                       const std::vector<std::int32_t>& occ) {
    r_.verdict = Verdict::kDeadlock;
    r_.counterexample = trace_to(id);
    std::ostringstream os;
    os << "reachable deadlock after " << r_.counterexample.size()
       << " steps:";
    for (std::size_t p = 0; p < n_procs_; ++p) {
      const Action* a = next_action(key, p);
      if (a == nullptr) continue;
      os << " [" << m_.procs[p].name << " blocked on "
         << (a->type == Action::kSend ? "send " : "recv ")
         << m_.channels[a->channel].name << " (" << occ[a->channel] << "/"
         << m_.channels[a->channel].capacity << ")]";
      r_.counterexample.push_back(
          {m_.procs[p].name,
           "BLOCKED: " + std::string(a->type == Action::kSend ? "send "
                                                              : "recv ") +
               m_.channels[a->channel].name + ": " + a->label});
    }
    r_.diagnosis = os.str();
    stop_ = true;
  }

  const Model& m_;
  Report& r_;
  std::size_t n_procs_ = 0;
  Mask all_mask_ = 0;
  bool stop_ = false;
  std::vector<Node> nodes_;
  std::unordered_map<StateKey, std::uint32_t, StateKeyHash> visited_;
  std::deque<QItem> queue_;
};

}  // namespace

const char* to_string(ElasticMode mode) {
  switch (mode) {
    case ElasticMode::kNone: return "none";
    case ElasticMode::kSync: return "sync";
    case ElasticMode::kAsync: return "async";
  }
  return "?";
}

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk: return "deadlock-free";
    case Verdict::kDeadlock: return "DEADLOCK";
    case Verdict::kSendParked: return "SEND-PARKED";
    case Verdict::kInvalidSchedule: return "invalid-schedule";
    case Verdict::kStateLimit: return "state-limit";
  }
  return "?";
}

Report verify(const ModelConfig& config) {
  Report r;
  Model m;
  try {
    m = build_model(config);
  } catch (const std::exception& e) {
    r.verdict = Verdict::kInvalidSchedule;
    r.diagnosis = e.what();
    return r;
  }
  r.link_capacity_used = m.link_cap;
  r.derived_link_capacity = m.derived_cap;
  r.peak_stash.assign(config.num_stages, 0);
  for (const auto& c : m.channels) {
    r.channels.push_back({c.name, c.capacity, 0, c.stage_link});
  }
  Explorer explorer(m, r);
  explorer.run();
  for (const auto& c : r.channels) {
    if (c.stage_link) {
      r.peak_link_occupancy = std::max(r.peak_link_occupancy, c.peak);
    }
  }
  return r;
}

std::string format_report(const ModelConfig& config, const Report& report) {
  std::ostringstream os;
  os << schedule::to_string(config.kind) << " K=" << config.num_stages
     << " M=" << config.micro_batches << " B=" << config.num_batches
     << " advance=" << config.advance_num
     << " cap=" << report.link_capacity_used
     << (config.link_capacity > 0 ? " (override)" : "")
     << " elastic=" << to_string(config.elastic);
  if (config.elastic == ElasticMode::kAsync) {
    os << " lag=" << config.sync_lag;
  }
  os << "\n  verdict: " << to_string(report.verdict);
  os << "\n  states: " << report.states
     << "  transitions: " << report.transitions
     << "  sleep-skips: " << report.sleep_skips
     << (report.complete ? "" : "  [incomplete]");
  os << "\n  peak link occupancy: " << report.peak_link_occupancy
     << " (derived capacity " << report.derived_link_capacity << ")";
  os << "\n  peak in-flight activations: " << report.peak_in_flight;
  os << "\n  peak stash per stage:";
  for (const auto s : report.peak_stash) os << ' ' << s;
  os << "\n  channels:";
  for (const auto& c : report.channels) {
    os << ' ' << c.name << '=' << c.peak << '/' << c.capacity;
  }
  if (!report.diagnosis.empty()) {
    os << "\n  diagnosis: " << report.diagnosis;
  }
  if (!report.counterexample.empty()) {
    os << "\n  counterexample (" << report.counterexample.size()
       << " steps):";
    for (std::size_t i = 0; i < report.counterexample.size(); ++i) {
      os << "\n    " << i << ". " << report.counterexample[i].process << ": "
         << report.counterexample[i].action;
    }
  }
  os << "\n";
  return os.str();
}

}  // namespace avgpipe::verify
