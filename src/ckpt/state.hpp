#pragma once

/// \file state.hpp
/// The full durable training state of an AvgPipe system, and its record
/// codec over checkpoint files.
///
/// `TrainState` is the closure of everything the PR-6 sync-policy layer can
/// mutate across a round boundary: the reference model, the policy's own
/// reference-side state (BMUF momentum Δ), the published broadcast, each
/// pipeline's parameters plus per-stage runtime state (optimizer slots and
/// the XPipe EMA predictors), and every named RNG stream. Restoring it —
/// plus re-feeding the same batches — reproduces the uninterrupted run
/// bit-for-bit on the serial path, which is the property `ckpt_test` gates
/// on for all four policies.
///
/// The capture/restore entry points live on `core::AvgPipe` /
/// `core::AvgPipeTrainer` (they own the thread discipline); this file only
/// defines the state bag and its serialization. Kept deliberately free of a
/// core dependency (policy kind is a raw byte here) so the checkpoint layer
/// sits below core in the link order.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "runtime/pipeline_runtime.hpp"
#include "tensor/tensor.hpp"

namespace avgpipe::ckpt {

/// One replica pipeline's durable state. A dead pipeline still checkpoints
/// (`alive = false`, empty tensors): on restore it stays detached and the
/// elastic driver's rejoin path re-initialises it from the broadcast.
struct PipelineState {
  bool alive = true;
  std::vector<tensor::Tensor> params;
  std::vector<runtime::StageState> stages;
  /// Error-feedback residuals of this pipeline's sync push codec (empty
  /// when sync compression is off or nothing was transmitted yet).
  std::vector<tensor::Tensor> residuals;
};

/// The complete durable state of one training run at a round boundary.
struct TrainState {
  long step = 0;             ///< driver iterations completed
  std::uint8_t policy_kind = 0;  ///< core::SyncPolicyKind, as a raw byte
  double alpha = 0.0;        ///< elastic coupling strength at capture time
  /// The sync-transport codec active at capture (tensor::Codec as a raw
  /// byte; 0 = off). Residuals only restore onto a matching codec.
  std::uint8_t sync_codec = 0;
  std::vector<tensor::Tensor> reference;     ///< reference model parameters
  std::vector<tensor::Tensor> policy_state;  ///< SyncPolicy::export_state()
  std::vector<tensor::Tensor> broadcast;     ///< published round broadcast
  /// Error-feedback residuals of the broadcast codec (empty when off).
  std::vector<tensor::Tensor> broadcast_residual;
  std::vector<PipelineState> pipelines;
  /// Named RNG engine snapshots (Rng::save_state), e.g. data-order streams.
  std::vector<std::pair<std::string, std::string>> rng_streams;
};

/// Encode `state` as records on `writer` (meta / reference / policy /
/// broadcast / pipeline.<i> / rng, plus residual.broadcast / residual.<i>
/// when `sync_codec` is non-zero — an uncompressed run's checkpoint stays
/// byte-identical to the pre-compression format).
void encode(const TrainState& state, CheckpointWriter& writer);

/// Decode a state previously written by `encode`. Throws avgpipe::Error on
/// missing records or malformed payloads.
TrainState decode(const CheckpointReader& reader);

}  // namespace avgpipe::ckpt
