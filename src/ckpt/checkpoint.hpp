#pragma once

/// \file checkpoint.hpp
/// Crash-consistent checkpoint files and the monotonic manifest over them.
///
/// A checkpoint *file* is a magic/version header plus a sequence of named,
/// individually CRC-32-framed records (encoded with format.hpp). A
/// checkpoint *directory* holds numbered files plus MANIFEST.json, which
/// lists committed checkpoints newest-last with their whole-file CRCs.
///
/// Torn writes are never observed, by protocol rather than by luck:
///
///   1. the file is written to `<name>.tmp`, fsync'd, then renamed into
///      place (rename(2) is atomic within a filesystem), and the directory
///      is fsync'd so the new name itself is durable;
///   2. only after the file is durable is the manifest rewritten — itself
///      through the same tmp/fsync/rename dance — so the manifest only ever
///      names fully-committed files;
///   3. restore walks the manifest newest→oldest, validating the whole-file
///      CRC and decoding under try/catch, and *falls back* to the previous
///      entry on any mismatch (a bit-flipped or truncated checkpoint
///      degrades recovery by one round; it never crashes it).
///
/// The manifest is monotonic in `step`: `CheckpointDir::write` rejects a
/// step that does not advance past the newest entry, which turns a driver
/// bug (double restore, clock confusion) into a loud error instead of a
/// silently reordered history.

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/format.hpp"

namespace avgpipe::ckpt {

/// Per-record metadata surfaced by readers and the ckpt_inspect tool.
struct RecordInfo {
  std::string name;
  std::uint64_t size = 0;    ///< payload bytes
  std::uint32_t crc = 0;     ///< stored CRC-32 over name + payload
  bool crc_ok = false;
};

/// In-memory builder for one checkpoint file. Records accumulate in memory
/// and `commit` performs the atomic write protocol in one shot — there is
/// deliberately no incremental-append mode, so a crash mid-capture leaves
/// only a `.tmp` file that the manifest never references.
class CheckpointWriter {
 public:
  /// Add a named record (names must be unique within a file).
  void add_record(const std::string& name, std::vector<std::uint8_t> payload);

  struct Committed {
    std::uint64_t bytes = 0;  ///< final file size
    std::uint32_t crc = 0;    ///< CRC-32 over the entire file
  };

  /// Serialize all records and commit atomically to `path` (write tmp,
  /// fsync, rename, fsync parent dir). Throws avgpipe::Error on any I/O
  /// failure; on throw the target path is untouched.
  Committed commit(const std::string& path) const;

  /// The serialized image `commit` would write (exposed for tests).
  std::vector<std::uint8_t> serialize() const;

 private:
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> records_;
};

/// Parsed checkpoint file with validated record CRCs.
class CheckpointReader {
 public:
  /// Strict open: throws avgpipe::Error on a bad header, truncated record
  /// framing, or any record CRC mismatch.
  static CheckpointReader open(const std::string& path);

  /// Lenient parse for inspection: never throws on corruption; `ok` is
  /// false and `error` explains the first structural failure, and records
  /// parsed before the failure (with their per-record `crc_ok`) survive.
  struct FileInfo {
    bool ok = false;
    std::string error;
    std::uint32_t version = 0;
    std::uint64_t bytes = 0;
    std::uint32_t file_crc = 0;  ///< CRC over the entire file image
    std::vector<RecordInfo> records;
  };
  static FileInfo inspect(const std::string& path);

  const std::vector<RecordInfo>& records() const { return records_; }
  bool has(const std::string& name) const;
  /// Payload of the named record; throws if absent.
  const std::vector<std::uint8_t>& payload(const std::string& name) const;

 private:
  std::vector<RecordInfo> records_;
  std::vector<std::vector<std::uint8_t>> payloads_;  // parallel to records_
};

/// One committed checkpoint in MANIFEST.json.
struct ManifestEntry {
  long step = -1;
  std::string file;          ///< basename within the checkpoint dir
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;     ///< whole-file CRC-32
};

struct TrainState;  // state.hpp

/// A directory of checkpoints governed by the atomic-commit protocol above.
class CheckpointDir {
 public:
  /// \param dir created if absent.
  /// \param retain how many newest checkpoints to keep (>= 2, so a corrupted
  ///        newest entry always has a fallback).
  explicit CheckpointDir(std::string dir, std::size_t retain = 2);

  const std::string& dir() const { return dir_; }

  /// Committed checkpoints, oldest first (parsed fresh from MANIFEST.json).
  std::vector<ManifestEntry> entries() const;

  /// Capture `state` as a new checkpoint. `state.step` must strictly exceed
  /// the newest manifest entry. Prunes beyond the retention count (manifest
  /// is rewritten before any file is unlinked, so a crash mid-prune leaves
  /// only orphaned files, never dangling references).
  ManifestEntry write(const TrainState& state);

  struct LoadResult {
    bool ok = false;
    long step = -1;
    int fallbacks = 0;   ///< entries skipped due to corruption
    std::string file;    ///< the file actually restored
    std::string error;   ///< last failure when !ok
  };

  /// Restore the newest loadable checkpoint into `state`, falling back over
  /// corrupted entries (CRC or decode failure) newest→oldest. `ok == false`
  /// means no entry survived (empty manifest or all corrupted).
  LoadResult load_latest(TrainState* state) const;

 private:
  void write_manifest(const std::vector<ManifestEntry>& entries) const;

  std::string dir_;
  std::size_t retain_;
};

// -- corruption injection (fault layer + chaos soak) --------------------------

/// Flip one bit of the file at `path` (bit_index modulo file size * 8). The
/// record CRC must catch this on the next open. Throws on I/O failure.
void flip_bit(const std::string& path, std::uint64_t bit_index);

/// Truncate the file to `new_size` bytes — a simulated torn write.
void truncate_file(const std::string& path, std::uint64_t new_size);

/// File size in bytes; throws if the file cannot be stat'd.
std::uint64_t file_size(const std::string& path);

}  // namespace avgpipe::ckpt
