#include "ckpt/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ckpt/state.hpp"

namespace avgpipe::ckpt {

namespace {

constexpr char kMagic[4] = {'A', 'V', 'G', 'P'};
constexpr const char* kManifestName = "MANIFEST.json";
constexpr const char* kManifestFormat = "avgpipe-ckpt-manifest-v1";

std::string parent_dir(const std::string& path) {
  const auto pos = path.find_last_of('/');
  if (pos == std::string::npos) return ".";
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

void fsync_fd(int fd, const std::string& what) {
  AVGPIPE_CHECK(::fsync(fd) == 0,
                "fsync(" << what << ") failed: " << std::strerror(errno));
}

/// Durability for the *name*: after renaming into `dir`, the directory entry
/// itself must reach disk or a crash could roll the rename back.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  AVGPIPE_CHECK(fd >= 0,
                "open dir '" << dir << "' failed: " << std::strerror(errno));
  fsync_fd(fd, dir);
  ::close(fd);
}

/// The write-temp → fsync → rename → fsync(dir) protocol, shared by
/// checkpoint files and the manifest.
void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  AVGPIPE_CHECK(fd >= 0,
                "open '" << tmp << "' failed: " << std::strerror(errno));
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, p + written, size - written);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      AVGPIPE_THROW("write '" << tmp << "' failed: " << std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  fsync_fd(fd, tmp);
  ::close(fd);
  AVGPIPE_CHECK(::rename(tmp.c_str(), path.c_str()) == 0,
                "rename '" << tmp << "' -> '" << path
                           << "' failed: " << std::strerror(errno));
  fsync_dir(parent_dir(path));
}

/// Whole file into memory; empty-optional semantics via `error`.
bool read_file(const std::string& path, std::vector<std::uint8_t>* out,
               std::string* error) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    *error = "cannot open '" + path + "'";
    return false;
  }
  const auto size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), size)) {
    *error = "short read on '" + path + "'";
    return false;
  }
  return true;
}

struct ParsedFile {
  bool ok = false;
  std::string error;
  std::uint32_t version = 0;
  std::vector<RecordInfo> records;
  std::vector<std::vector<std::uint8_t>> payloads;
};

/// Lenient structural parse: stops (with `error`) at the first framing
/// failure, marks per-record CRC mismatches in `crc_ok` and keeps going.
ParsedFile parse_image(const std::vector<std::uint8_t>& image) {
  ParsedFile out;
  ByteReader r(image);
  if (image.size() < 12) {
    out.error = "file too small for header";
    return out;
  }
  const std::uint8_t* magic = r.bytes(4);
  if (std::memcmp(magic, kMagic, 4) != 0) {
    out.error = "bad magic (not an avgpipe checkpoint)";
    return out;
  }
  out.version = r.u32();
  if (out.version != kFormatVersion) {
    out.error = "unsupported format version " + std::to_string(out.version);
    return out;
  }
  std::uint32_t count = 0;
  try {
    count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      RecordInfo info;
      const std::uint16_t name_len = r.u16();
      const std::uint8_t* name = r.bytes(name_len);
      info.name.assign(reinterpret_cast<const char*>(name), name_len);
      info.size = r.u64();
      const std::uint8_t* payload = r.bytes(info.size);
      info.crc = r.u32();
      // CRC covers name + payload so a record can't be silently renamed.
      std::uint32_t actual = crc32(name, name_len);
      actual = crc32(payload, info.size, actual);
      info.crc_ok = actual == info.crc;
      out.payloads.emplace_back(payload, payload + info.size);
      out.records.push_back(std::move(info));
    }
    if (!r.done()) {
      out.error = std::to_string(r.remaining()) + " trailing bytes";
      return out;
    }
  } catch (const Error& e) {
    out.error = e.what();
    return out;
  }
  out.ok = true;
  return out;
}

// -- minimal JSON helpers (same technique as fault/fault_plan.cpp) -----------

bool find_number(const std::string& text, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = text.c_str() + pos + needle.size();
  char* end = nullptr;
  *out = std::strtod(start, &end);
  return end != start;
}

bool find_string(const std::string& text, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  const auto close = text.find('"', start);
  if (close == std::string::npos) return false;
  *out = text.substr(start, close - start);
  return true;
}

std::vector<std::string> array_objects(const std::string& text,
                                       const char* key) {
  std::vector<std::string> objects;
  const std::string needle = std::string("\"") + key + "\"";
  auto pos = text.find(needle);
  if (pos == std::string::npos) return objects;
  pos = text.find('[', pos + needle.size());
  AVGPIPE_CHECK(pos != std::string::npos,
                "manifest: '" << key << "' is not an array");
  for (std::size_t i = pos + 1; i < text.size(); ++i) {
    if (text[i] == ']') break;
    if (text[i] != '{') continue;
    const auto close = text.find('}', i);
    AVGPIPE_CHECK(close != std::string::npos,
                  "manifest: unterminated object in '" << key << "'");
    objects.push_back(text.substr(i, close - i + 1));
    i = close;
  }
  return objects;
}

}  // namespace

// -- CheckpointWriter ---------------------------------------------------------

void CheckpointWriter::add_record(const std::string& name,
                                  std::vector<std::uint8_t> payload) {
  AVGPIPE_CHECK(name.size() <= 0xFFFF, "record name too long");
  for (const auto& [existing, unused] : records_) {
    AVGPIPE_CHECK(existing != name, "duplicate record '" << name << "'");
  }
  records_.emplace_back(name, std::move(payload));
}

std::vector<std::uint8_t> CheckpointWriter::serialize() const {
  ByteWriter w;
  w.bytes(kMagic, 4);
  w.u32(kFormatVersion);
  w.u32(static_cast<std::uint32_t>(records_.size()));
  for (const auto& [name, payload] : records_) {
    w.u16(static_cast<std::uint16_t>(name.size()));
    w.bytes(name.data(), name.size());
    w.u64(payload.size());
    w.bytes(payload.data(), payload.size());
    std::uint32_t crc = crc32(name.data(), name.size());
    crc = crc32(payload.data(), payload.size(), crc);
    w.u32(crc);
  }
  return w.take();
}

CheckpointWriter::Committed CheckpointWriter::commit(
    const std::string& path) const {
  const std::vector<std::uint8_t> image = serialize();
  atomic_write_file(path, image.data(), image.size());
  Committed c;
  c.bytes = image.size();
  c.crc = crc32(image.data(), image.size());
  return c;
}

// -- CheckpointReader ---------------------------------------------------------

CheckpointReader CheckpointReader::open(const std::string& path) {
  std::vector<std::uint8_t> image;
  std::string error;
  AVGPIPE_CHECK(read_file(path, &image, &error), "checkpoint: " << error);
  ParsedFile parsed = parse_image(image);
  AVGPIPE_CHECK(parsed.ok, "checkpoint '" << path << "': " << parsed.error);
  for (const auto& rec : parsed.records) {
    AVGPIPE_CHECK(rec.crc_ok, "checkpoint '" << path << "': record '"
                                             << rec.name << "' CRC mismatch");
  }
  CheckpointReader reader;
  reader.records_ = std::move(parsed.records);
  reader.payloads_ = std::move(parsed.payloads);
  return reader;
}

CheckpointReader::FileInfo CheckpointReader::inspect(const std::string& path) {
  FileInfo info;
  std::vector<std::uint8_t> image;
  if (!read_file(path, &image, &info.error)) return info;
  info.bytes = image.size();
  info.file_crc = crc32(image.data(), image.size());
  ParsedFile parsed = parse_image(image);
  info.version = parsed.version;
  info.records = std::move(parsed.records);
  info.error = parsed.error;
  info.ok = parsed.ok &&
            std::all_of(info.records.begin(), info.records.end(),
                        [](const RecordInfo& r) { return r.crc_ok; });
  if (parsed.ok && !info.ok) info.error = "record CRC mismatch";
  return info;
}

bool CheckpointReader::has(const std::string& name) const {
  for (const auto& rec : records_) {
    if (rec.name == name) return true;
  }
  return false;
}

const std::vector<std::uint8_t>& CheckpointReader::payload(
    const std::string& name) const {
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].name == name) return payloads_[i];
  }
  AVGPIPE_THROW("checkpoint record '" << name << "' not found");
}

// -- CheckpointDir ------------------------------------------------------------

CheckpointDir::CheckpointDir(std::string dir, std::size_t retain)
    : dir_(std::move(dir)), retain_(retain) {
  AVGPIPE_CHECK(retain_ >= 2,
                "checkpoint retention must be >= 2 (a corrupted newest entry "
                "needs a fallback), got "
                    << retain_);
  if (::mkdir(dir_.c_str(), 0755) != 0) {
    AVGPIPE_CHECK(errno == EEXIST, "mkdir '" << dir_ << "' failed: "
                                             << std::strerror(errno));
  }
}

std::vector<ManifestEntry> CheckpointDir::entries() const {
  std::vector<ManifestEntry> out;
  std::vector<std::uint8_t> raw;
  std::string error;
  if (!read_file(dir_ + "/" + kManifestName, &raw, &error)) return out;
  const std::string text(raw.begin(), raw.end());
  std::string format;
  AVGPIPE_CHECK(find_string(text, "format", &format) && format == kManifestFormat,
                "manifest '" << dir_ << "/" << kManifestName
                             << "': unknown format");
  for (const auto& obj : array_objects(text, "entries")) {
    ManifestEntry e;
    double v = 0;
    AVGPIPE_CHECK(find_number(obj, "step", &v), "manifest entry missing step");
    e.step = static_cast<long>(v);
    AVGPIPE_CHECK(find_string(obj, "file", &e.file),
                  "manifest entry missing file");
    AVGPIPE_CHECK(find_number(obj, "bytes", &v),
                  "manifest entry missing bytes");
    e.bytes = static_cast<std::uint64_t>(v);
    AVGPIPE_CHECK(find_number(obj, "crc", &v), "manifest entry missing crc");
    e.crc = static_cast<std::uint32_t>(v);
    out.push_back(std::move(e));
  }
  return out;
}

void CheckpointDir::write_manifest(
    const std::vector<ManifestEntry>& entries) const {
  std::ostringstream os;
  // No space after the format colon: find_string matches `"key":"` exactly.
  os << "{\n  \"format\":\"" << kManifestFormat << "\",\n  \"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"step\":" << e.step << ",\"file\":\"" << e.file
       << "\",\"bytes\":" << e.bytes << ",\"crc\":" << e.crc << "}";
  }
  os << "\n  ]\n}\n";
  const std::string text = os.str();
  atomic_write_file(dir_ + "/" + kManifestName, text.data(), text.size());
}

ManifestEntry CheckpointDir::write(const TrainState& state) {
  std::vector<ManifestEntry> current = entries();
  AVGPIPE_CHECK(current.empty() || state.step > current.back().step,
                "checkpoint step " << state.step
                                   << " does not advance past the newest "
                                      "manifest entry (step "
                                   << current.back().step << ")");
  char name[64];
  std::snprintf(name, sizeof(name), "ckpt-%09ld.avgp", state.step);

  CheckpointWriter writer;
  encode(state, writer);
  const auto committed = writer.commit(dir_ + "/" + name);

  ManifestEntry entry;
  entry.step = state.step;
  entry.file = name;
  entry.bytes = committed.bytes;
  entry.crc = committed.crc;
  current.push_back(entry);

  // Prune: rewrite the manifest first, then unlink. A crash in between
  // orphans files (harmless) but can never dangle a manifest reference.
  std::vector<ManifestEntry> keep = current;
  if (keep.size() > retain_) {
    keep.erase(keep.begin(),
               keep.begin() + static_cast<std::ptrdiff_t>(keep.size() - retain_));
  }
  write_manifest(keep);
  for (std::size_t i = 0; i + retain_ < current.size(); ++i) {
    ::unlink((dir_ + "/" + current[i].file).c_str());
  }
  return entry;
}

CheckpointDir::LoadResult CheckpointDir::load_latest(TrainState* state) const {
  LoadResult result;
  const std::vector<ManifestEntry> all = entries();
  if (all.empty()) {
    result.error = "no committed checkpoints in '" + dir_ + "'";
    return result;
  }
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    const std::string path = dir_ + "/" + it->file;
    std::vector<std::uint8_t> image;
    std::string error;
    if (!read_file(path, &image, &error)) {
      result.error = error;
      ++result.fallbacks;
      continue;
    }
    if (image.size() != it->bytes ||
        crc32(image.data(), image.size()) != it->crc) {
      result.error = "whole-file CRC/size mismatch on '" + it->file + "'";
      ++result.fallbacks;
      continue;
    }
    try {
      // Strict parse + decode under try/catch: a payload that passes the
      // CRCs but fails structural validation still falls back.
      const CheckpointReader reader = CheckpointReader::open(path);
      *state = decode(reader);
    } catch (const Error& e) {
      result.error = e.what();
      ++result.fallbacks;
      continue;
    }
    result.ok = true;
    result.step = it->step;
    result.file = it->file;
    return result;
  }
  return result;
}

// -- corruption injection -----------------------------------------------------

std::uint64_t file_size(const std::string& path) {
  struct stat st{};
  AVGPIPE_CHECK(::stat(path.c_str(), &st) == 0,
                "stat '" << path << "' failed: " << std::strerror(errno));
  return static_cast<std::uint64_t>(st.st_size);
}

void flip_bit(const std::string& path, std::uint64_t bit_index) {
  const std::uint64_t size = file_size(path);
  AVGPIPE_CHECK(size > 0, "cannot flip a bit in empty file '" << path << "'");
  const std::uint64_t bit = bit_index % (size * 8);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  AVGPIPE_CHECK(f.good(), "cannot open '" << path << "' for bit flip");
  f.seekg(static_cast<std::streamoff>(bit / 8));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ (1 << (bit % 8)));
  f.seekp(static_cast<std::streamoff>(bit / 8));
  f.write(&byte, 1);
  AVGPIPE_CHECK(f.good(), "bit flip on '" << path << "' failed");
}

void truncate_file(const std::string& path, std::uint64_t new_size) {
  AVGPIPE_CHECK(::truncate(path.c_str(), static_cast<off_t>(new_size)) == 0,
                "truncate '" << path << "' failed: " << std::strerror(errno));
}

}  // namespace avgpipe::ckpt
