#include "ckpt/state.hpp"

namespace avgpipe::ckpt {

namespace {

std::string pipeline_record(std::size_t i) {
  return "pipeline." + std::to_string(i);
}

std::string residual_record(std::size_t i) {
  return "residual." + std::to_string(i);
}

/// Residual record payload: codec byte + tensor list.
std::vector<std::uint8_t> encode_residuals(
    std::uint8_t codec, const std::vector<tensor::Tensor>& residuals) {
  ByteWriter w;
  w.u8(codec);
  write_tensor_list(w, residuals);
  return w.take();
}

std::vector<tensor::Tensor> decode_residuals(
    const std::vector<std::uint8_t>& payload, const char* what) {
  ByteReader r(payload);
  r.u8();  // codec byte (authoritative copy lives in residual.broadcast)
  std::vector<tensor::Tensor> ts = read_tensor_list(r);
  r.expect_done(what);
  return ts;
}

std::vector<std::uint8_t> encode_pipeline(const PipelineState& p) {
  ByteWriter w;
  w.u8(p.alive ? 1 : 0);
  write_tensor_list(w, p.params);
  w.u32(static_cast<std::uint32_t>(p.stages.size()));
  for (const auto& s : p.stages) {
    write_optimizer_state(w, s.optimizer);
    write_tensor_list(w, s.pred_delta);
    w.u8(s.pred_have_delta ? 1 : 0);
  }
  return w.take();
}

PipelineState decode_pipeline(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  PipelineState p;
  p.alive = r.u8() != 0;
  p.params = read_tensor_list(r);
  const std::uint32_t stages = r.u32();
  p.stages.reserve(stages);
  for (std::uint32_t i = 0; i < stages; ++i) {
    runtime::StageState s;
    s.optimizer = read_optimizer_state(r);
    s.pred_delta = read_tensor_list(r);
    s.pred_have_delta = r.u8() != 0;
    p.stages.push_back(std::move(s));
  }
  r.expect_done("pipeline record");
  return p;
}

std::vector<std::uint8_t> encode_list(const std::vector<tensor::Tensor>& ts) {
  ByteWriter w;
  write_tensor_list(w, ts);
  return w.take();
}

std::vector<tensor::Tensor> decode_list(
    const std::vector<std::uint8_t>& payload, const char* what) {
  ByteReader r(payload);
  std::vector<tensor::Tensor> ts = read_tensor_list(r);
  r.expect_done(what);
  return ts;
}

}  // namespace

void encode(const TrainState& state, CheckpointWriter& writer) {
  {
    ByteWriter w;
    w.i64(state.step);
    w.u8(state.policy_kind);
    w.f64(state.alpha);
    w.u32(static_cast<std::uint32_t>(state.pipelines.size()));
    w.u32(static_cast<std::uint32_t>(state.rng_streams.size()));
    writer.add_record("meta", w.take());
  }
  writer.add_record("reference", encode_list(state.reference));
  writer.add_record("policy", encode_list(state.policy_state));
  writer.add_record("broadcast", encode_list(state.broadcast));
  for (std::size_t i = 0; i < state.pipelines.size(); ++i) {
    writer.add_record(pipeline_record(i), encode_pipeline(state.pipelines[i]));
  }
  {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(state.rng_streams.size()));
    for (const auto& [name, snapshot] : state.rng_streams) {
      w.str(name);
      w.str(snapshot);
    }
    writer.add_record("rng", w.take());
  }
  // Sync-compression EF residuals ride along only when a codec was active:
  // an uncompressed run's checkpoint bytes are unchanged, and old readers
  // simply never ask for these records.
  if (state.sync_codec != 0) {
    writer.add_record(
        "residual.broadcast",
        encode_residuals(state.sync_codec, state.broadcast_residual));
    for (std::size_t i = 0; i < state.pipelines.size(); ++i) {
      writer.add_record(
          residual_record(i),
          encode_residuals(state.sync_codec, state.pipelines[i].residuals));
    }
  }
}

TrainState decode(const CheckpointReader& reader) {
  TrainState state;
  std::uint32_t pipelines = 0;
  {
    ByteReader r(reader.payload("meta"));
    state.step = static_cast<long>(r.i64());
    state.policy_kind = r.u8();
    state.alpha = r.f64();
    pipelines = r.u32();
    r.u32();  // rng count (authoritative count lives in the rng record)
    r.expect_done("meta record");
  }
  state.reference = decode_list(reader.payload("reference"), "reference");
  state.policy_state = decode_list(reader.payload("policy"), "policy");
  state.broadcast = decode_list(reader.payload("broadcast"), "broadcast");
  state.pipelines.reserve(pipelines);
  for (std::uint32_t i = 0; i < pipelines; ++i) {
    state.pipelines.push_back(
        decode_pipeline(reader.payload(pipeline_record(i))));
  }
  {
    ByteReader r(reader.payload("rng"));
    const std::uint32_t n = r.u32();
    state.rng_streams.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::string name = r.str();
      std::string snapshot = r.str();
      state.rng_streams.emplace_back(std::move(name), std::move(snapshot));
    }
    r.expect_done("rng record");
  }
  // Optional (compression-era) records: absent in pre-compression and
  // uncompressed checkpoints, which decode exactly as before.
  if (reader.has("residual.broadcast")) {
    ByteReader r(reader.payload("residual.broadcast"));
    state.sync_codec = r.u8();
    state.broadcast_residual = read_tensor_list(r);
    r.expect_done("residual.broadcast record");
    for (std::uint32_t i = 0; i < pipelines; ++i) {
      if (!reader.has(residual_record(i))) continue;
      state.pipelines[i].residuals =
          decode_residuals(reader.payload(residual_record(i)),
                           "pipeline residual record");
    }
  }
  return state;
}

}  // namespace avgpipe::ckpt
