#include "ckpt/format.hpp"

#include <array>

namespace avgpipe::ckpt {

namespace {

/// Software CRC-32 table (reflected 0xEDB88320), built once.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& table = crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void write_tensor(ByteWriter& w, const tensor::Tensor& t) {
  const auto& shape = t.shape();
  w.u32(static_cast<std::uint32_t>(shape.size()));
  for (const std::size_t d : shape) w.u64(d);
  const auto v = t.data();
  // One raw memcpy of the whole buffer: Scalar is double and the encoding is
  // its IEEE-754 bytes, so per-element f64() calls would only add overhead.
  static_assert(sizeof(tensor::Scalar) == 8, "Scalar must be f64 on disk");
  w.bytes(v.data(), v.size() * sizeof(tensor::Scalar));
}

tensor::Tensor read_tensor(ByteReader& r) {
  const std::uint32_t ndim = r.u32();
  AVGPIPE_CHECK(ndim <= 8, "tensor record: implausible rank " << ndim);
  tensor::Shape shape(ndim);
  for (auto& d : shape) {
    d = static_cast<std::size_t>(r.u64());
    AVGPIPE_CHECK(d > 0 && d <= (1ull << 32),
                  "tensor record: implausible dim " << d);
  }
  tensor::Tensor t = tensor::Tensor::uninitialized(shape);
  auto v = t.data();
  const std::uint8_t* raw = r.bytes(v.size() * sizeof(tensor::Scalar));
  std::memcpy(v.data(), raw, v.size() * sizeof(tensor::Scalar));
  return t;
}

void write_tensor_list(ByteWriter& w, const std::vector<tensor::Tensor>& ts) {
  w.u32(static_cast<std::uint32_t>(ts.size()));
  for (const auto& t : ts) write_tensor(w, t);
}

std::vector<tensor::Tensor> read_tensor_list(ByteReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<tensor::Tensor> ts;
  ts.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ts.push_back(read_tensor(r));
  return ts;
}

void write_optimizer_state(ByteWriter& w, const optim::OptimizerState& s) {
  w.str(s.name);
  w.u64(s.steps);
  w.u32(static_cast<std::uint32_t>(s.scalars.size()));
  for (const double v : s.scalars) w.f64(v);
  write_tensor_list(w, s.slots);
}

optim::OptimizerState read_optimizer_state(ByteReader& r) {
  optim::OptimizerState s;
  s.name = r.str();
  s.steps = static_cast<std::size_t>(r.u64());
  const std::uint32_t n = r.u32();
  s.scalars.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) s.scalars.push_back(r.f64());
  s.slots = read_tensor_list(r);
  return s;
}

}  // namespace avgpipe::ckpt
