#pragma once

/// \file format.hpp
/// Versioned binary serialization primitives for the checkpoint layer.
///
/// Everything durable in AvgPipe — parameter tensors, optimizer slots, RNG
/// engine streams, sync-policy state — flows through the ByteWriter /
/// ByteReader pair defined here. The encoding is deliberately boring:
/// little-endian fixed-width integers, raw IEEE-754 bytes for doubles (a
/// checkpointed weight must restore *bit-exactly*, so no decimal round-trip
/// is ever allowed), and length-prefixed strings. Integrity is layered on
/// top by the record framing in checkpoint.hpp (CRC-32 per record plus a
/// whole-file CRC in the manifest); this file only defines the payload
/// codecs. These codecs are also the direct prerequisite for the ROADMAP's
/// socket/shm transport: a tensor that can cross a crash can cross a wire.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "optim/optimizer.hpp"
#include "tensor/tensor.hpp"

namespace avgpipe::ckpt {

/// Current on-disk format version (header field of every checkpoint file).
constexpr std::uint32_t kFormatVersion = 1;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). `seed` lets callers
/// chain incremental updates: crc32(b, crc32(a)) == crc32(a ++ b).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i64(std::int64_t v) { le(static_cast<std::uint64_t>(v), 8); }

  /// Raw IEEE-754 bytes, LE — bit-exact by construction.
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    le(bits, 8);
  }

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  /// u32 length prefix + raw bytes.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian byte source; every underrun or trailing-junk
/// condition is an avgpipe::Error, never silent garbage (a torn or bit-
/// flipped payload that slips past the CRC must still fail loudly).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(le(8)); }

  double f64() {
    const std::uint64_t bits = le(8);
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  const std::uint8_t* bytes(std::size_t n) {
    need(n);
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  /// Decoders call this last: leftover bytes mean the payload and the code
  /// disagree about the format — corruption or a version skew, either fatal.
  void expect_done(const char* what) const {
    AVGPIPE_CHECK(done(), what << ": " << remaining()
                               << " trailing bytes after decode");
  }

 private:
  void need(std::size_t n) const {
    // `n <= size_ - pos_` rather than `pos_ + n <= size_`: a corrupted
    // length field near SIZE_MAX must not wrap the sum and slip through.
    AVGPIPE_CHECK(n <= size_ - pos_, "checkpoint payload truncated: need "
                                         << n << " bytes at offset " << pos_
                                         << ", have " << size_ - pos_);
  }
  std::uint64_t le(int n) {
    need(static_cast<std::size_t>(n));
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// -- tensor / optimizer codecs ------------------------------------------------

/// ndim, dims, then numel raw f64 values.
void write_tensor(ByteWriter& w, const tensor::Tensor& t);
tensor::Tensor read_tensor(ByteReader& r);

/// u32 count + tensors.
void write_tensor_list(ByteWriter& w, const std::vector<tensor::Tensor>& ts);
std::vector<tensor::Tensor> read_tensor_list(ByteReader& r);

/// name, steps, scalars, slots (see optim::OptimizerState).
void write_optimizer_state(ByteWriter& w, const optim::OptimizerState& s);
optim::OptimizerState read_optimizer_state(ByteReader& r);

}  // namespace avgpipe::ckpt
