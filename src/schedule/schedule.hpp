#pragma once

/// \file schedule.hpp
/// Pipeline-schedule intermediate representation and generators.
///
/// A schedule is, per pipeline stage, a strictly ordered instruction stream
/// over (batch, micro-batch) forward/backward/update operations. The
/// executors (the discrete-event simulator in sim/ and the threaded runtime
/// in runtime/) honour each stream's order exactly — which is what makes
/// 1F1B's communication stalls *emerge* rather than being modelled: the
/// stream insists on a backward whose gradient is still in flight even when
/// a forward is eligible, precisely the defect advance forward propagation
/// (paper §4.2, Algorithm 1) removes by reordering.
///
/// Generators cover every system in the paper's evaluation:
///   kAfab            — GPipe's all-forward-all-backward
///   kOneFOneB        — PipeDream-2BW / Dapple's one-forward-one-backward
///   kAdvanceForward  — AvgPipe's AFP with an explicit advance_num
///   kPipeDream       — PipeDream's flush-free multi-version pipeline
///   kPipeDream2BW    — flush-free with two weight versions
///   kDataParallel    — whole-model per GPU + gradient all-reduce

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace avgpipe::schedule {

enum class OpKind {
  kForward,    ///< forward propagation of one micro-batch
  kBackward,   ///< backward propagation of one micro-batch
  kUpdate,     ///< optimizer step (per batch, or per micro-batch for PipeDream)
  kAllReduce,  ///< data-parallel gradient synchronisation barrier
};

struct Instr {
  OpKind kind;
  int batch = 0;        ///< batch index
  int micro_batch = 0;  ///< micro-batch index within the batch
};

inline bool operator==(const Instr& a, const Instr& b) {
  return a.kind == b.kind && a.batch == b.batch &&
         a.micro_batch == b.micro_batch;
}
inline bool operator!=(const Instr& a, const Instr& b) { return !(a == b); }

/// One stage's ordered instruction stream.
struct StageStream {
  std::size_t stage = 0;
  std::vector<Instr> instrs;
};

/// A complete schedule for one pipeline (one stream per stage).
struct PipelineSchedule {
  std::vector<StageStream> stages;

  std::size_t num_stages() const { return stages.size(); }
};

enum class Kind {
  kAfab,
  kOneFOneB,
  kAdvanceForward,
  kPipeDream,
  kPipeDream2BW,
  kDataParallel,
};

std::string to_string(Kind kind);
std::string to_string(OpKind kind);

/// Parameters for schedule generation.
struct ScheduleParams {
  Kind kind = Kind::kOneFOneB;
  std::size_t num_stages = 1;     ///< K
  std::size_t micro_batches = 1;  ///< M per batch
  std::size_t num_batches = 1;
  /// Advance forward propagation count for stage 0 (Algorithm 1). K-1
  /// reproduces 1F1B; >= micro_batches reproduces AFAB. Ignored by other
  /// kinds.
  std::size_t advance_num = 0;
};

/// Build the per-stage instruction streams for one pipeline.
PipelineSchedule make_schedule(const ScheduleParams& params);

/// Warmup length (#forwards issued before the first backward) of stage k
/// under advance-forward with the given stage-0 advance count.
std::size_t warmup_for_stage(std::size_t advance_num, std::size_t stage,
                             std::size_t micro_batches);

/// The number of weight versions a system keeps on stage k of K (drives the
/// memory model): PipeDream keeps K-k, 2BW keeps 2, everything else 1.
std::size_t weight_versions(Kind kind, std::size_t stage,
                            std::size_t num_stages);

/// The deepest any stage-to-stage queue can grow under a flushed schedule:
/// the producer's maximum forward run-ahead over its consumer. All M
/// micro-batches under AFAB; the advance depth (>= the K-1 1F1B warmup)
/// under the 1F1B/AFP family — the stream order caps how many sends a stage
/// can issue before it must block on a gradient from its peer. This is the
/// single source of truth behind PipelineRuntime::link_capacity() (which
/// adds one slot of slack) and the verify:: model checker's cross-check.
/// Only defined for the flushed kinds (kAfab / kOneFOneB / kAdvanceForward).
std::size_t max_send_run_ahead(Kind kind, std::size_t num_stages,
                               std::size_t micro_batches,
                               std::size_t advance_num);

// -- validity -------------------------------------------------------------------

/// Result of schedule validation (see check_schedule).
struct ValidationResult {
  bool ok = true;
  std::string error;
  /// Per stage: max number of micro-batches whose forward ran but whose
  /// backward has not yet, within any batch — the activation-stash bound.
  std::vector<std::size_t> max_in_flight;
};

/// Check stream invariants: per batch each micro-batch is forwarded exactly
/// once and backwarded exactly once, forwards/backwards are each in
/// micro-batch order, every backward follows its forward, and updates follow
/// the work they commit. Also reports activation-stash bounds.
ValidationResult check_schedule(const PipelineSchedule& schedule,
                                std::size_t micro_batches,
                                std::size_t num_batches);

/// Render a compact single-line form of a stream, e.g. "F0 F1 B0 F2 B1 ...",
/// for golden tests and the schedule_explorer example.
std::string format_stream(const StageStream& stream);

}  // namespace avgpipe::schedule
