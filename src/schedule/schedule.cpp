#include "schedule/schedule.hpp"

#include <algorithm>
#include <sstream>

namespace avgpipe::schedule {

std::string to_string(Kind kind) {
  switch (kind) {
    case Kind::kAfab: return "AFAB";
    case Kind::kOneFOneB: return "1F1B";
    case Kind::kAdvanceForward: return "AFP";
    case Kind::kPipeDream: return "PipeDream";
    case Kind::kPipeDream2BW: return "PipeDream-2BW";
    case Kind::kDataParallel: return "DataParallel";
  }
  return "?";
}

std::string to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kForward: return "F";
    case OpKind::kBackward: return "B";
    case OpKind::kUpdate: return "U";
    case OpKind::kAllReduce: return "AR";
  }
  return "?";
}

std::size_t warmup_for_stage(std::size_t advance_num, std::size_t stage,
                             std::size_t micro_batches) {
  const std::size_t raw = advance_num > stage ? advance_num - stage : 0;
  return std::min(raw, micro_batches);
}

std::size_t weight_versions(Kind kind, std::size_t stage,
                            std::size_t num_stages) {
  switch (kind) {
    case Kind::kPipeDream:
      // PipeDream stashes one version per in-flight micro-batch: K on the
      // first stage down to 1 on the last (paper §2: "four (equal to the
      // number of GPUs) versions" on GPU 1).
      return num_stages - stage;
    case Kind::kPipeDream2BW:
      return 2;
    default:
      return 1;
  }
}

std::size_t max_send_run_ahead(Kind kind, std::size_t num_stages,
                               std::size_t micro_batches,
                               std::size_t advance_num) {
  AVGPIPE_CHECK(kind == Kind::kAfab || kind == Kind::kOneFOneB ||
                    kind == Kind::kAdvanceForward,
                "run-ahead bound is defined for the flushed schedules; got "
                    << to_string(kind));
  if (kind == Kind::kAfab) return micro_batches;
  // 1F1B is AFP at the minimum advance (K-1); a larger advance lets the
  // producer push up to advance+1 forwards before its first backward recv.
  const std::size_t floor = num_stages > 0 ? num_stages - 1 : 0;
  return std::min(micro_batches, std::max(advance_num, floor) + 1);
}

namespace {

/// Streams for the flushed schedules (AFAB / 1F1B / AFP): every batch fills
/// and drains the pipeline.
StageStream flushed_stream(std::size_t stage, std::size_t advance,
                           const ScheduleParams& p) {
  StageStream s;
  s.stage = stage;
  const int m = static_cast<int>(p.micro_batches);
  const int w = static_cast<int>(warmup_for_stage(advance, stage,
                                                  p.micro_batches));
  for (int b = 0; b < static_cast<int>(p.num_batches); ++b) {
    for (int i = 0; i < w; ++i) {
      s.instrs.push_back({OpKind::kForward, b, i});
    }
    for (int j = 0; j + w < m; ++j) {
      s.instrs.push_back({OpKind::kForward, b, w + j});
      s.instrs.push_back({OpKind::kBackward, b, j});
    }
    for (int j = std::max(0, m - w); j < m; ++j) {
      s.instrs.push_back({OpKind::kBackward, b, j});
    }
    s.instrs.push_back({OpKind::kUpdate, b, m - 1});
  }
  return s;
}

/// Streams for the flush-free multi-version schedules (PipeDream / 2BW):
/// micro-batches flow continuously across batch boundaries.
StageStream flushfree_stream(std::size_t stage, const ScheduleParams& p,
                             bool update_per_micro_batch) {
  StageStream s;
  s.stage = stage;
  const int m = static_cast<int>(p.micro_batches);
  const int total = m * static_cast<int>(p.num_batches);
  const int w = static_cast<int>(warmup_for_stage(p.num_stages - 1, stage,
                                                  static_cast<std::size_t>(total)));
  auto fwd = [&](int g) {
    s.instrs.push_back({OpKind::kForward, g / m, g % m});
  };
  auto bwd = [&](int g) {
    s.instrs.push_back({OpKind::kBackward, g / m, g % m});
    if (update_per_micro_batch || g % m == m - 1) {
      s.instrs.push_back({OpKind::kUpdate, g / m, g % m});
    }
  };
  for (int i = 0; i < std::min(w, total); ++i) fwd(i);
  for (int j = 0; j + w < total; ++j) {
    fwd(w + j);
    bwd(j);
  }
  for (int j = std::max(0, total - w); j < total; ++j) bwd(j);
  return s;
}

/// Data parallelism: each "stage" stream is actually a full-model replica.
StageStream data_parallel_stream(std::size_t stage, const ScheduleParams& p) {
  StageStream s;
  s.stage = stage;
  for (int b = 0; b < static_cast<int>(p.num_batches); ++b) {
    s.instrs.push_back({OpKind::kForward, b, 0});
    s.instrs.push_back({OpKind::kBackward, b, 0});
    s.instrs.push_back({OpKind::kAllReduce, b, 0});
    s.instrs.push_back({OpKind::kUpdate, b, 0});
  }
  return s;
}

}  // namespace

PipelineSchedule make_schedule(const ScheduleParams& p) {
  AVGPIPE_CHECK(p.num_stages >= 1, "need at least one stage");
  AVGPIPE_CHECK(p.micro_batches >= 1, "need at least one micro-batch");
  AVGPIPE_CHECK(p.num_batches >= 1, "need at least one batch");

  PipelineSchedule sched;
  sched.stages.reserve(p.num_stages);
  for (std::size_t k = 0; k < p.num_stages; ++k) {
    switch (p.kind) {
      case Kind::kAfab:
        // All forwards in advance on every stage.
        sched.stages.push_back(
            flushed_stream(k, p.micro_batches + p.num_stages, p));
        break;
      case Kind::kOneFOneB:
        sched.stages.push_back(flushed_stream(k, p.num_stages - 1, p));
        break;
      case Kind::kAdvanceForward:
        AVGPIPE_CHECK(p.advance_num + 1 >= p.num_stages,
                      "advance_num " << p.advance_num
                                     << " below the 1F1B minimum K-1");
        sched.stages.push_back(flushed_stream(k, p.advance_num, p));
        break;
      case Kind::kPipeDream:
        sched.stages.push_back(
            flushfree_stream(k, p, /*update_per_micro_batch=*/true));
        break;
      case Kind::kPipeDream2BW:
        sched.stages.push_back(
            flushfree_stream(k, p, /*update_per_micro_batch=*/false));
        break;
      case Kind::kDataParallel:
        sched.stages.push_back(data_parallel_stream(k, p));
        break;
    }
  }
  return sched;
}

ValidationResult check_schedule(const PipelineSchedule& schedule,
                                std::size_t micro_batches,
                                std::size_t num_batches) {
  ValidationResult result;
  const int m = static_cast<int>(micro_batches);
  result.max_in_flight.assign(schedule.num_stages(), 0);

  for (std::size_t k = 0; k < schedule.num_stages(); ++k) {
    const auto& stream = schedule.stages[k];
    auto fail = [&](const std::string& why) {
      result.ok = false;
      result.error = "stage " + std::to_string(k) + ": " + why;
    };

    long next_fwd = 0, next_bwd = 0;
    std::size_t in_flight = 0;
    for (const auto& instr : stream.instrs) {
      const long g = static_cast<long>(instr.batch) * m + instr.micro_batch;
      switch (instr.kind) {
        case OpKind::kForward:
          if (g != next_fwd) {
            fail("forward out of order: got global index " +
                 std::to_string(g) + ", expected " + std::to_string(next_fwd));
            return result;
          }
          ++next_fwd;
          ++in_flight;
          result.max_in_flight[k] =
              std::max(result.max_in_flight[k], in_flight);
          break;
        case OpKind::kBackward:
          if (g != next_bwd) {
            fail("backward out of order at global index " + std::to_string(g));
            return result;
          }
          if (g >= next_fwd) {
            fail("backward before forward for micro-batch " +
                 std::to_string(g));
            return result;
          }
          ++next_bwd;
          --in_flight;
          break;
        case OpKind::kUpdate:
          if (g >= next_bwd) {
            fail("update before its backward at global index " +
                 std::to_string(g));
            return result;
          }
          break;
        case OpKind::kAllReduce:
          break;
      }
    }
    const long total = static_cast<long>(micro_batches) *
                       static_cast<long>(num_batches);
    const bool data_parallel =
        !stream.instrs.empty() &&
        std::any_of(stream.instrs.begin(), stream.instrs.end(),
                    [](const Instr& i) { return i.kind == OpKind::kAllReduce; });
    if (!data_parallel && (next_fwd != total || next_bwd != total)) {
      fail("incomplete schedule: " + std::to_string(next_fwd) + " forwards, " +
           std::to_string(next_bwd) + " backwards, expected " +
           std::to_string(total));
      return result;
    }
  }
  return result;
}

std::string format_stream(const StageStream& stream) {
  std::ostringstream os;
  for (std::size_t i = 0; i < stream.instrs.size(); ++i) {
    if (i) os << ' ';
    const auto& instr = stream.instrs[i];
    os << to_string(instr.kind);
    if (instr.kind == OpKind::kForward || instr.kind == OpKind::kBackward) {
      if (instr.batch > 0) os << instr.batch << '.';
      os << instr.micro_batch;
    }
  }
  return os.str();
}

}  // namespace avgpipe::schedule
