#include "trace/happens_before.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace avgpipe::trace {

namespace {

/// (pipeline, stage, scope, batch, micro_batch) -> lookup key. `scope`
/// disambiguates reused batch tags: the threaded runtime numbers batches per
/// train_batch call, so every flushed iteration replays tag 0 — a stage's
/// optimizer update for a tag closes that tag's scope there, and the next
/// span reusing it belongs to a fresh scope. FNV-style mixing rather than
/// bit-packing: crash epochs widen scope values past what fixed fields hold.
std::uint64_t mb_key(std::uint32_t pipeline, std::uint32_t stage,
                     std::uint32_t scope, int batch, int micro_batch) {
  std::uint64_t k = 0xCBF29CE484222325ull;
  for (const std::uint32_t field :
       {pipeline, stage, scope, static_cast<std::uint32_t>(batch),
        static_cast<std::uint32_t>(micro_batch)}) {
    k = (k ^ field) * 0x100000001B3ull;
  }
  return k;
}

const char* kind_tag(EventKind kind) {
  switch (kind) {
    case EventKind::kForward: return "F";
    case EventKind::kBackward: return "B";
    case EventKind::kUpdate: return "U";
    case EventKind::kElasticPull: return "pull";
    default: return to_string(kind);
  }
}

std::string describe(const TraceEvent& e) {
  std::ostringstream os;
  os << kind_tag(e.kind) << " p" << e.pipeline;
  if (e.kind != EventKind::kElasticPull) os << "/s" << e.stage;
  if (e.batch >= 0) os << " b" << e.batch << ".m" << e.micro_batch;
  os << " @[" << e.t_begin << ", " << e.t_end << "]";
  return os.str();
}

std::string format_clock(const std::vector<std::uint32_t>& vc) {
  std::ostringstream os;
  os << '<';
  for (std::size_t i = 0; i < vc.size(); ++i) {
    if (i) os << ',';
    os << vc[i];
  }
  os << '>';
  return os.str();
}

}  // namespace

std::string HbReport::summary() const {
  std::ostringstream os;
  os << (ok ? "OK" : "VIOLATIONS") << ": " << events_checked
     << " events over " << processes << " processes (" << pipelines
     << " pipelines), " << edges << " happens-before edges";
  if (max_sync_lag > 0) os << ", max sync lag " << max_sync_lag;
  if (!ok) os << ", " << violations_total << " violations";
  return os.str();
}

HbReport check_happens_before(const std::vector<TraceEvent>& events,
                              const HbOptions& options) {
  HbReport report;
  const double eps = options.epsilon;

  auto violate = [&](const std::string& what) {
    ++report.violations_total;
    if (report.violations.size() < options.max_violations) {
      report.violations.push_back({what});
    }
  };

  // ---- partition the trace into protocol events and processes ------------
  // A "process" is one vector-clock component: a (pipeline, stage) worker,
  // or a pipeline's elastic-pull context.
  std::vector<std::size_t> idx;  // indices of protocol events, trace order
  std::unordered_map<std::uint64_t, std::size_t> proc_of;  // key -> proc id
  std::unordered_set<std::uint32_t> pipelines;
  std::vector<std::string> proc_names;

  auto proc_key = [](std::uint32_t pipeline, std::uint32_t stage, bool pull) {
    return (static_cast<std::uint64_t>(pull) << 63) |
           (static_cast<std::uint64_t>(pipeline) << 32) | stage;
  };
  auto intern_proc = [&](std::uint32_t pipeline, std::uint32_t stage,
                         bool pull) {
    const auto key = proc_key(pipeline, stage, pull);
    const auto [it, inserted] = proc_of.try_emplace(key, proc_names.size());
    if (inserted) {
      std::ostringstream os;
      if (pull) {
        os << "pull(p" << pipeline << ")";
      } else {
        os << "p" << pipeline << "/s" << stage;
      }
      proc_names.push_back(os.str());
    }
    return it->second;
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    switch (e.kind) {
      case EventKind::kForward:
      case EventKind::kBackward:
      case EventKind::kUpdate:
        if (e.batch < 0) break;  // not batch-scoped: not a protocol event
        idx.push_back(i);
        intern_proc(e.pipeline, e.stage, false);
        pipelines.insert(e.pipeline);
        break;
      case EventKind::kElasticPull:
        idx.push_back(i);
        intern_proc(e.pipeline, 0, true);
        pipelines.insert(e.pipeline);
        break;
      case EventKind::kCounter:
        if (e.counter == CounterId::kSyncLag) {
          report.max_sync_lag = std::max(report.max_sync_lag, e.value);
        }
        break;
      default:
        break;
    }
  }
  report.events_checked = idx.size();
  report.processes = proc_names.size();
  report.pipelines = pipelines.size();

  // ---- per-process event lists (trace order == t_begin order) ------------
  std::vector<std::vector<std::size_t>> by_proc(proc_names.size());
  for (const auto i : idx) {
    const TraceEvent& e = events[i];
    const bool pull = e.kind == EventKind::kElasticPull;
    by_proc[intern_proc(e.pipeline, pull ? 0 : e.stage, pull)].push_back(i);
  }

  // ---- crash epochs -------------------------------------------------------
  // A kPipelineCrash aborts whatever batch was in flight on that pipeline:
  // the aborted tag is never closed by an update, so without an epoch bump
  // the post-restore batch would reuse tag 0 *in the same scope* and trip
  // false reorder violations. The crash marker is stamped after every worker
  // of the pipeline joined, so all aborted-batch spans begin before it and
  // all post-recovery spans begin after — t_begin cleanly classifies.
  std::unordered_map<std::uint32_t, std::vector<double>> crash_times;
  for (const auto& e : events) {
    if (e.kind == EventKind::kPipelineCrash) {
      crash_times[e.pipeline].push_back(e.t_begin);
    }
  }
  auto epoch_of = [&](const TraceEvent& e) -> std::uint32_t {
    const auto it = crash_times.find(e.pipeline);
    if (it == crash_times.end()) return 0;
    const auto& ts = it->second;  // time-sorted (events are)
    return static_cast<std::uint32_t>(
        std::upper_bound(ts.begin(), ts.end(), e.t_begin) - ts.begin());
  };

  // ---- batch-tag scopes ---------------------------------------------------
  // A stage's kUpdate for tag b closes b's scope on that process; later
  // spans reusing the tag are a new flushed iteration. Flushed schedules
  // commit exactly one update per (stage, batch), so the scope counters
  // advance in lockstep across stages and the same physical micro-batch
  // gets the same (scope, batch, mb) key on both ends of a link. The crash
  // epoch is folded into the scope value, restarting tag scopes after every
  // pipeline crash.
  std::unordered_map<std::size_t, std::uint32_t> scope_of;
  for (const auto& plist : by_proc) {
    std::unordered_map<std::uint64_t, std::uint32_t> closed;  // (epoch, tag)
    for (const auto i : plist) {
      const TraceEvent& e = events[i];
      if (e.kind == EventKind::kElasticPull) continue;
      const std::uint32_t epoch = epoch_of(e);
      const std::uint64_t tag =
          (static_cast<std::uint64_t>(epoch) << 32) |
          static_cast<std::uint32_t>(e.batch);
      scope_of[i] = (epoch << 16) | closed[tag];
      if (e.kind == EventKind::kUpdate) ++closed[tag];
    }
  }

  // ---- 1. no micro-batch reordering within a stage -----------------------
  // Per (stage process, batch): forwards strictly in micro-batch order,
  // backwards likewise, and every backward after its own forward.
  for (std::size_t p = 0; p < by_proc.size(); ++p) {
    struct BatchState {
      int last_fwd = -1;
      int last_bwd = -1;
      std::unordered_set<int> forwarded;
    };
    std::unordered_map<std::uint64_t, BatchState> batches;  // scoped tag
    auto scoped = [&](std::size_t i, int batch) {
      return (static_cast<std::uint64_t>(scope_of[i]) << 32) |
             static_cast<std::uint32_t>(batch);
    };
    for (const auto i : by_proc[p]) {
      const TraceEvent& e = events[i];
      if (e.kind == EventKind::kForward) {
        auto& b = batches[scoped(i, e.batch)];
        if (e.micro_batch <= b.last_fwd) {
          violate("micro-batch reorder on " + proc_names[p] + ": " +
                  describe(e) + " forwarded after micro-batch " +
                  std::to_string(b.last_fwd));
        }
        b.last_fwd = std::max(b.last_fwd, e.micro_batch);
        b.forwarded.insert(e.micro_batch);
      } else if (e.kind == EventKind::kBackward) {
        auto& b = batches[scoped(i, e.batch)];
        if (e.micro_batch <= b.last_bwd) {
          violate("micro-batch reorder on " + proc_names[p] + ": " +
                  describe(e) + " backwarded after micro-batch " +
                  std::to_string(b.last_bwd));
        }
        b.last_bwd = std::max(b.last_bwd, e.micro_batch);
        if (b.forwarded.count(e.micro_batch) == 0) {
          violate("backward before forward on " + proc_names[p] + ": " +
                  describe(e));
        }
      }
    }
  }

  // ---- 2. FIFO delivery per link -----------------------------------------
  // The order stage k produced messages must be the order stage k+1 (acts)
  // / stage k (grads) consumed them: each consumer-side sequence, mapped to
  // producer-side positions, must be increasing.
  {
    // Producer position of each forward/backward, per (p, stage, b, mb).
    std::unordered_map<std::uint64_t, std::size_t> f_pos;
    std::unordered_map<std::uint64_t, std::size_t> b_pos;
    for (std::size_t p = 0; p < by_proc.size(); ++p) {
      std::size_t nf = 0;
      std::size_t nb = 0;
      for (const auto i : by_proc[p]) {
        const TraceEvent& e = events[i];
        if (e.kind == EventKind::kForward) {
          f_pos.emplace(mb_key(e.pipeline, e.stage, scope_of[i], e.batch,
                               e.micro_batch),
                        nf++);
        } else if (e.kind == EventKind::kBackward) {
          b_pos.emplace(mb_key(e.pipeline, e.stage, scope_of[i], e.batch,
                               e.micro_batch),
                        nb++);
        }
      }
    }
    for (std::size_t p = 0; p < by_proc.size(); ++p) {
      // Consumer side: forwards consume from stage-1, backwards from
      // stage+1. Walk each consumer sequence and require the producer
      // positions to increase.
      long last_f_src = -1;
      long last_b_src = -1;
      for (const auto i : by_proc[p]) {
        const TraceEvent& e = events[i];
        if (e.kind == EventKind::kForward && e.stage > 0) {
          const auto it = f_pos.find(mb_key(e.pipeline, e.stage - 1,
                                            scope_of[i], e.batch,
                                            e.micro_batch));
          if (it == f_pos.end()) continue;  // upstream span missing
          const auto src = static_cast<long>(it->second);
          if (src < last_f_src) {
            violate("FIFO violation on acts[" + std::to_string(e.stage - 1) +
                    "] of pipeline " + std::to_string(e.pipeline) + ": " +
                    describe(e) + " consumed out of production order");
          }
          last_f_src = std::max(last_f_src, src);
        } else if (e.kind == EventKind::kBackward) {
          const auto it = b_pos.find(mb_key(e.pipeline, e.stage + 1,
                                            scope_of[i], e.batch,
                                            e.micro_batch));
          if (it == b_pos.end()) continue;  // last stage / span missing
          const auto src = static_cast<long>(it->second);
          if (src < last_b_src) {
            violate("FIFO violation on grads[" + std::to_string(e.stage) +
                    "] of pipeline " + std::to_string(e.pipeline) + ": " +
                    describe(e) + " consumed out of production order");
          }
          last_b_src = std::max(last_b_src, src);
        }
      }
    }
  }

  // ---- 3. message edges: vector clocks + causal timestamps ---------------
  // First occurrence index of each span, for cross-stage edge lookup.
  std::unordered_map<std::uint64_t, std::size_t> f_ev;
  std::unordered_map<std::uint64_t, std::size_t> b_ev;
  for (const auto i : idx) {
    const TraceEvent& e = events[i];
    if (e.kind == EventKind::kForward) {
      f_ev.emplace(
          mb_key(e.pipeline, e.stage, scope_of[i], e.batch, e.micro_batch),
          i);
    } else if (e.kind == EventKind::kBackward) {
      b_ev.emplace(
          mb_key(e.pipeline, e.stage, scope_of[i], e.batch, e.micro_batch),
          i);
    }
  }

  std::unordered_map<std::size_t, std::vector<std::uint32_t>> clock_of;
  std::vector<std::vector<std::uint32_t>> proc_clock(
      proc_names.size(), std::vector<std::uint32_t>(proc_names.size(), 0));

  // The sender's span bound a receive must respect: its end under virtual
  // (simulated) clocks, only its begin under wall clocks (see header).
  auto send_bound = [&](const TraceEvent& pred) {
    return options.strict ? pred.t_end : pred.t_begin;
  };
  auto check_edge = [&](const TraceEvent& pred, const TraceEvent& succ,
                        const char* link, const std::size_t pred_i) {
    ++report.edges;
    if (succ.t_begin + eps < send_bound(pred)) {
      std::ostringstream os;
      os << "causality inversion over " << link << ": " << describe(succ)
         << " begins before its " << (options.strict ? "strict" : "weak")
         << " happens-before bound from " << describe(pred);
      const auto it = clock_of.find(pred_i);
      if (it != clock_of.end()) os << " vc=" << format_clock(it->second);
      violate(os.str());
    }
  };
  auto join = [](std::vector<std::uint32_t>& into,
                 const std::vector<std::uint32_t>& other) {
    for (std::size_t c = 0; c < into.size(); ++c) {
      into[c] = std::max(into[c], other[c]);
    }
  };

  for (const auto i : idx) {
    const TraceEvent& e = events[i];
    const bool pull = e.kind == EventKind::kElasticPull;
    const std::size_t p = intern_proc(e.pipeline, pull ? 0 : e.stage, pull);
    auto& vc = proc_clock[p];
    if (e.kind == EventKind::kForward && e.stage > 0) {
      const auto it =
          f_ev.find(mb_key(e.pipeline, e.stage - 1, scope_of[i], e.batch,
                           e.micro_batch));
      if (it != f_ev.end()) {
        check_edge(events[it->second], e, "activation link", it->second);
        const auto cit = clock_of.find(it->second);
        if (cit != clock_of.end()) join(vc, cit->second);
      }
    } else if (e.kind == EventKind::kBackward) {
      const auto it =
          b_ev.find(mb_key(e.pipeline, e.stage + 1, scope_of[i], e.batch,
                           e.micro_batch));
      if (it != b_ev.end()) {
        check_edge(events[it->second], e, "gradient link", it->second);
        const auto cit = clock_of.find(it->second);
        if (cit != clock_of.end()) join(vc, cit->second);
      }
    }
    ++vc[p];
    clock_of.emplace(i, vc);
  }

  // ---- 4. grad applied before elastic pull -------------------------------
  // The pipeline's j-th pull must follow the j-th optimizer update of every
  // one of its stages (paper §3.2 ❷: push/pull happens on batch
  // boundaries, after the local commit). Pull spans carry no batch tag, so
  // the pairing is by occurrence index.
  //
  // Crash recovery breaks that index pairing legitimately: a mid-batch death
  // aborts a batch whose updates never commit, and a pipeline restored from
  // a checkpoint re-enters the *same* round that detached it with a pull but
  // no committed batch of its own. On a pipeline with crash epochs the
  // strict pairing is therefore replaced by the weaker-but-sound rule:
  // every pull must follow the latest update committed so far *in its own
  // epoch* (a pull preceding all of its epoch's updates is the recovery
  // pull, exempt by design).
  {
    std::unordered_map<std::uint32_t, std::vector<std::size_t>> pulls;
    std::unordered_map<std::uint32_t,
                       std::unordered_map<std::uint32_t,
                                          std::vector<std::size_t>>>
        updates;  // pipeline -> stage -> event indices, trace order
    for (const auto i : idx) {
      const TraceEvent& e = events[i];
      if (e.kind == EventKind::kElasticPull) {
        pulls[e.pipeline].push_back(i);
      } else if (e.kind == EventKind::kUpdate) {
        updates[e.pipeline][e.stage].push_back(i);
      }
    }
    for (const auto& [pipeline, plist] : pulls) {
      const auto uit = updates.find(pipeline);
      const bool crashed = crash_times.count(pipeline) != 0;
      for (std::size_t j = 0; j < plist.size(); ++j) {
        const TraceEvent& pe = events[plist[j]];
        if (uit == updates.end()) {
          if (!crashed) {
            violate("elastic pull without any optimizer update on pipeline " +
                    std::to_string(pipeline) + ": " + describe(pe));
          }
          continue;
        }
        const std::size_t p =
            intern_proc(pe.pipeline, 0, /*pull=*/true);
        for (const auto& [stage, ulist] : uit->second) {
          if (crashed) {
            // Latest update before this pull (indices are t_begin-ordered);
            // an edge is required only when it belongs to the pull's epoch.
            const auto nxt =
                std::upper_bound(ulist.begin(), ulist.end(), plist[j]);
            if (nxt == ulist.begin()) continue;
            const std::size_t ui = *(nxt - 1);
            if (epoch_of(events[ui]) != epoch_of(pe)) continue;
            check_edge(events[ui], pe, "elastic round", ui);
            const auto cit = clock_of.find(ui);
            if (cit != clock_of.end()) join(proc_clock[p], cit->second);
            continue;
          }
          if (ulist.size() <= j) {
            violate("elastic pull " + std::to_string(j) + " of pipeline " +
                    std::to_string(pipeline) + " has no matching update on s" +
                    std::to_string(stage) + ": " + describe(pe));
            continue;
          }
          check_edge(events[ulist[j]], pe, "elastic round", ulist[j]);
          const auto cit = clock_of.find(ulist[j]);
          if (cit != clock_of.end()) join(proc_clock[p], cit->second);
        }
      }
    }
  }

  // ---- 5. sync lag bound -------------------------------------------------
  if (options.sync_lag >= 0 &&
      report.max_sync_lag > static_cast<double>(options.sync_lag) + 0.5) {
    std::ostringstream os;
    os << "sync_lag exceeded: counter reached " << report.max_sync_lag
       << " against a bound of " << options.sync_lag;
    violate(os.str());
  }

  report.ok = report.violations_total == 0;
  return report;
}

}  // namespace avgpipe::trace
