#pragma once

/// \file trace.hpp
/// Unified structured execution tracing for both execution engines.
///
/// Every claim the paper makes — AFP overlaps communication with computation
/// (§4), parallel pipelines share GPUs without destroying utilization (§3.2),
/// the predictor's Equations (1)–(8) match observed time/memory (§5) — is a
/// statement about *when* events happen. This module is the first-class event
/// record both executors emit into: the discrete-event simulator records
/// spans with simulated timestamps, the threaded runtime and the elastic
/// reference process record wall-clock spans and counters. Downstream, the
/// same trace feeds the Chrome/Perfetto exporter (chrome_trace.hpp), the
/// per-stage metrics tables and bubble/overlap analysis (analysis.hpp), and
/// the schedule-conformance tests.
///
/// Concurrency model: emitters are single-owner. Each emitting thread asks
/// the `Tracer` registry for its own `TraceBuffer` once and appends to it;
/// a buffer's tiny mutex is therefore uncontended on the hot path (it only
/// synchronises against a collector), which keeps `record` lock-cheap. The
/// registry mutex is touched only at buffer creation and collection.

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/annotations.hpp"
#include "common/units.hpp"

namespace avgpipe::trace {

/// What a span (or counter sample) represents.
enum class EventKind : std::uint8_t {
  // Compute spans (mirror schedule::OpKind).
  kForward = 0,
  kBackward,
  kUpdate,
  // Communication spans, attributed to the *receiving* stage (the stage
  // whose dependency the payload satisfies — the stage a stall would hit).
  kCommActivation,
  kCommGradient,
  kCommAllReduce,
  // Stall spans: an instruction stream sat idle waiting for a dependency.
  // kWaitComm is the part attributable to an in-flight transfer, kWaitBubble
  // the part waiting on upstream/downstream compute (the pipeline bubble).
  kWaitComm,
  kWaitBubble,
  // Elastic-averaging spans (paper §3.2 steps ❷–❺).
  kElasticPull,
  kReferenceApply,
  // Counter sample: `value` holds the reading, `counter` names the series.
  kCounter,
  // Fault-injection & recovery events (src/fault). Straggler spans cover the
  // injected extra delay; drop markers are instantaneous (value = attempt);
  // link-degraded spans cover the degradation window; crash/rejoin mark a
  // pipeline detaching from and re-entering the elastic group (the rejoin
  // span covers the re-sync from the reference model).
  kFaultStraggler,
  kFaultDrop,
  kLinkDegraded,
  kPipelineCrash,
  kPipelineRejoin,
  // Sync-policy spans (src/core/sync_policy.hpp). kPolicyBroadcast covers a
  // replica resetting to the reference broadcast at round start (BSP/BMUF);
  // kWeightPrediction covers a stage applying XPipe-style predicted weights
  // at batch dispatch. kElasticPull doubles as the generic local-sync span
  // for every policy (the replica-side pull/push step ❷–❸).
  kPolicyBroadcast,
  kWeightPrediction,
  // Durability spans (src/ckpt). kCheckpoint covers a round-boundary state
  // capture plus its crash-consistent write (value = bytes on disk);
  // kRestore covers loading a durable checkpoint back into the live system
  // (value = manifest entries skipped before one decoded cleanly).
  kCheckpoint,
  kRestore,
};

/// Named counter series for EventKind::kCounter events.
enum class CounterId : std::uint8_t {
  kNone = 0,
  kUtilization,  ///< GPU utilization φ(t); span = constant segment
  kQueueDepth,   ///< channel occupancy observed at a recv
  kStaleness,    ///< reference-model updates accumulated but not yet applied
  kAlivePipelines,  ///< pipelines attached to the elastic group
  kRecvRetry,    ///< bounded-pop timeouts survived before a message arrived
  kSyncLag,      ///< reference applies in flight behind training (async)
  // Perf-counter layer (the throughput campaign's measurement side).
  kFlops,        ///< FLOPs issued by a stage during one instruction
  kParkCount,    ///< condvar parks on the stage's inbound links, per batch
  kSpinCount,    ///< spin-window entries on the stage's inbound links
  kSyncBatch,    ///< rounds folded per batched reference apply
  kSyncBytes,    ///< sync payload bytes actually moved (post-codec)
  kSyncBytesRaw, ///< sync payload bytes as raw f64 (pre-codec)
};

const char* to_string(EventKind kind);
const char* to_string(CounterId id);
bool is_compute(EventKind kind);
bool is_comm(EventKind kind);
bool is_wait(EventKind kind);
bool is_fault(EventKind kind);

/// One structured event. Spans have t_begin <= t_end; instantaneous counter
/// samples use t_begin == t_end. Simulated and wall-clock traces share the
/// schema; only the clock differs.
struct TraceEvent {
  EventKind kind = EventKind::kCounter;
  CounterId counter = CounterId::kNone;
  std::uint32_t pipeline = 0;
  std::uint32_t stage = 0;
  std::int32_t batch = -1;        ///< -1: not batch-scoped
  std::int32_t micro_batch = -1;  ///< -1: not micro-batch-scoped
  Seconds t_begin = 0;
  Seconds t_end = 0;
  Bytes bytes = 0;   ///< payload size for comm spans
  double value = 0;  ///< counter reading for kCounter
};

bool operator==(const TraceEvent& a, const TraceEvent& b);
inline bool operator!=(const TraceEvent& a, const TraceEvent& b) {
  return !(a == b);
}

/// Append-only event sink owned by one emitting thread. Thread-safe against
/// a concurrent collector; two threads must not share one buffer.
class TraceBuffer {
 public:
  void record(const TraceEvent& ev) {
    common::MutexLock lock(mutex_);
    events_.push_back(ev);
  }

  std::size_t size() const {
    common::MutexLock lock(mutex_);
    return events_.size();
  }

 private:
  friend class Tracer;
  mutable common::Mutex mutex_;
  std::vector<TraceEvent> events_ GUARDED_BY(mutex_);
};

/// Registry of per-thread buffers plus the trace clock.
///
/// Usage: each emitting thread calls `create_buffer()` once and records into
/// the returned buffer; `collect()` merges every buffer into one list sorted
/// by (t_begin, creation order, insertion order) — a stable order, so two
/// identical executions yield identical collected traces.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Register a new buffer. The Tracer owns it; the pointer stays valid for
  /// the Tracer's lifetime (clear() empties buffers but does not free them).
  TraceBuffer* create_buffer();

  /// Wall-clock seconds since this Tracer was constructed. The common time
  /// base for every wall-clock emitter registered here.
  Seconds wall_now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  /// Merge all buffers, sorted by t_begin (stable across equal timestamps).
  /// Safe to call while emitters are still recording: it observes a
  /// consistent prefix of each buffer.
  std::vector<TraceEvent> collect() const;

  /// Drop all recorded events (buffers stay registered).
  void clear();

  std::size_t num_buffers() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable common::Mutex mutex_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_ GUARDED_BY(mutex_);
};

/// RAII wall-clock span: stamps t_begin at construction and records the
/// event (with t_end stamped) at destruction. Supports nesting freely —
/// each span is an independent event.
class ScopedSpan {
 public:
  ScopedSpan(const Tracer& tracer, TraceBuffer* buffer, TraceEvent proto)
      : tracer_(tracer), buffer_(buffer), event_(proto) {
    event_.t_begin = tracer_.wall_now();
  }
  ~ScopedSpan() {
    if (buffer_ == nullptr) return;
    event_.t_end = tracer_.wall_now();
    buffer_->record(event_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const Tracer& tracer_;
  TraceBuffer* buffer_;
  TraceEvent event_;
};

}  // namespace avgpipe::trace
