#pragma once

/// \file analysis.hpp
/// Derived metrics over a collected trace.
///
/// `TraceAnalysis` turns the flat span list into the quantities the paper
/// argues about: per-stage busy/idle time, bubble time (stream waits on
/// upstream/downstream compute), the communication-overlap fraction (how
/// much of the inbound communication ran while the stage was computing —
/// the §4 AFP claim), utilization curves rebuilt from φ(t) counter samples,
/// and queue-depth/staleness percentiles. The figure benches consume this
/// instead of private simulator state, and the schedule-conformance tests
/// replay `stage_ops` against the schedule contract.

#include <vector>

#include "common/step_function.hpp"
#include "common/table.hpp"
#include "schedule/schedule.hpp"
#include "trace/trace.hpp"

namespace avgpipe::trace {

class TraceAnalysis {
 public:
  TraceAnalysis() = default;
  /// Takes ownership of the events; re-sorts them by t_begin (stable) so the
  /// analysis is independent of collection order.
  explicit TraceAnalysis(std::vector<TraceEvent> events);

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Stages/pipelines observed in the trace (max index + 1).
  std::size_t num_stages() const { return num_stages_; }
  std::size_t num_pipelines() const { return num_pipelines_; }

  Seconds span_begin() const { return span_begin_; }
  /// Latest event end — the makespan for a simulator trace.
  Seconds span_end() const { return span_end_; }

  /// Wall/virtual time stage `stage` had >= 1 compute span active (union
  /// over this GPU's pipelines).
  Seconds busy_time(std::size_t stage) const;
  /// Union of communication spans whose receiver is `stage`.
  Seconds comm_time(std::size_t stage) const;
  /// Total stall time of the stage's streams attributed to in-flight
  /// transfers (kWaitComm) resp. pipeline bubbles (kWaitBubble).
  Seconds comm_wait_time(std::size_t stage) const;
  Seconds bubble_time(std::size_t stage) const;
  /// 1 - busy / (span_end - span_begin).
  double idle_fraction(std::size_t stage) const;

  /// Fraction of stage-inbound communication time that overlapped with
  /// compute on that stage. 1F1B stalls make this low; AFP's advance
  /// forwards raise it (paper §4).
  double comm_overlap_fraction(std::size_t stage) const;
  /// Aggregate over all stages: total overlapped comm / total comm.
  double comm_overlap_fraction() const;

  /// φ(t) for stage `stage`, rebuilt from kUtilization counter segments.
  StepFunction utilization(std::size_t stage) const;
  /// Mean over stages of ∫φ / makespan — the simulator's mean_utilization.
  double mean_utilization() const;
  /// Max φ over all stages — the simulator's peak_utilization.
  double peak_utilization() const;

  /// Quantile (linear interpolation) of a counter series on a stage; 0 when
  /// the series has no samples.
  double counter_quantile(std::size_t stage, CounterId id, double q) const;

  // -- perf-counter layer (throughput campaign) ------------------------------

  /// Sum / sample count of a counter series on a stage (all pipelines).
  double counter_sum(std::size_t stage, CounterId id) const;
  std::size_t counter_count(std::size_t stage, CounterId id) const;

  /// Achieved compute rate of a stage: issued FLOPs (kFlops samples, which
  /// the runtime records per instruction) over the stage's busy time, in
  /// GFLOP/s. 0 when the stage has no flop samples or no busy time.
  double achieved_gflops(std::size_t stage) const;

  /// Optimizer steps per second on a stage: kUpdate span count over the
  /// trace makespan. 0 for an empty trace.
  double steps_per_sec(std::size_t stage) const;

  /// Mean rounds folded per batched reference apply (kSyncBatch samples,
  /// stage-agnostic — the reference process is not a stage). 0 when the
  /// series has no samples; 1.0 means batching never coalesced.
  double mean_sync_batch() const;

  /// Bytes-moved reduction of the sync transport: Σ kSyncBytesRaw over
  /// Σ kSyncBytes across all events (stage-agnostic, like mean_sync_batch).
  /// 1.0 when nothing was sampled or the codec is off (raw == wire).
  double compression_ratio() const;

  /// Σ kSyncBytes / Σ kSyncBytesRaw over all events (wire and raw totals).
  std::uint64_t sync_bytes() const;
  std::uint64_t sync_bytes_raw() const;

  /// The ordered compute instructions (forward/backward/update) one
  /// (pipeline, stage) stream executed, replayed from its spans — the
  /// sequence the conformance tests hold against schedule::Schedule.
  std::vector<schedule::Instr> stage_ops(std::size_t pipeline,
                                         std::size_t stage) const;

  /// Per-stage metrics table: utilization, idle %, comm overlap, bubble,
  /// queue-depth percentiles.
  Table metrics_table() const;

  // -- fault & recovery metrics (src/fault) ---------------------------------

  /// All fault-injection/recovery events (is_fault), in time order.
  std::vector<TraceEvent> fault_events() const;

  /// Total injected straggler delay attributed to `stage` (union-free sum of
  /// kFaultStraggler spans — the straggler-induced bubble the elastic design
  /// must absorb).
  Seconds straggler_delay(std::size_t stage) const;

  /// One crash→rejoin episode of a pipeline. `latency` is the time from the
  /// crash event to the end of the rejoin span (re-sync from the reference
  /// model included); a crash with no rejoin has rejoined == false and
  /// latency measured to span_end().
  struct Recovery {
    std::uint32_t pipeline = 0;
    Seconds t_crash = 0;
    Seconds t_rejoin = 0;
    Seconds latency = 0;
    bool rejoined = false;
  };
  /// Crash/rejoin episodes reconstructed from kPipelineCrash/kPipelineRejoin
  /// events, in crash order.
  std::vector<Recovery> recoveries() const;

  // -- durability metrics (src/ckpt) ----------------------------------------

  /// kCheckpoint spans in time order (value/bytes = bytes on disk).
  std::vector<TraceEvent> checkpoint_events() const;
  /// kRestore spans in time order (value = manifest fallbacks taken).
  std::vector<TraceEvent> restore_events() const;
  /// Total time spent capturing and durably committing checkpoints — the
  /// overhead side of the recovery-latency trade the soak bench reports.
  Seconds checkpoint_time() const;
  /// Bytes committed durably across all kCheckpoint spans.
  std::uint64_t checkpoint_bytes() const;

 private:
  struct Interval {
    Seconds begin;
    Seconds end;
  };
  /// Sorted, disjoint union of the matching spans.
  std::vector<Interval> merged_spans(std::size_t stage,
                                     bool (*pred)(EventKind)) const;
  Seconds overlapped_comm_time(std::size_t stage) const;

  std::vector<TraceEvent> events_;
  std::size_t num_stages_ = 0;
  std::size_t num_pipelines_ = 0;
  Seconds span_begin_ = 0;
  Seconds span_end_ = 0;
};

}  // namespace avgpipe::trace
