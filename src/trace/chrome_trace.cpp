#include "trace/chrome_trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace avgpipe::trace {

namespace {

constexpr double kMicros = 1e6;

const char* category(const TraceEvent& ev) {
  if (is_compute(ev.kind)) return "compute";
  if (is_comm(ev.kind)) return "comm";
  if (is_wait(ev.kind)) return "wait";
  if (is_fault(ev.kind)) return "fault";
  if (ev.kind == EventKind::kCounter) return "counter";
  return "elastic";
}

/// Display name: "forward b0.3", "comm_grad b1.0", "utilization", ...
std::string display_name(const TraceEvent& ev) {
  if (ev.kind == EventKind::kCounter) return to_string(ev.counter);
  std::string name = to_string(ev.kind);
  if (ev.batch >= 0) {
    name += " b" + std::to_string(ev.batch);
    if (ev.micro_batch >= 0) name += "." + std::to_string(ev.micro_batch);
  }
  return name;
}

void write_event(std::ostream& os, const TraceEvent& ev) {
  char buf[640];
  const char* ph = ev.kind == EventKind::kCounter ? "C" : "X";
  // args carries the raw fields at full precision for the exact round trip;
  // the top-level ts/dur/pid/tid are what the viewers render.
  std::snprintf(
      buf, sizeof(buf),
      "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.17g,"
      "\"dur\":%.17g,\"pid\":%u,\"tid\":%u,\"args\":{\"k\":%d,\"c\":%d,"
      "\"p\":%u,\"s\":%u,\"b\":%d,\"mb\":%d,\"tb\":%.17g,\"te\":%.17g,"
      "\"by\":%.17g,\"v\":%.17g}}",
      display_name(ev).c_str(), category(ev), ph, ev.t_begin * kMicros,
      (ev.t_end - ev.t_begin) * kMicros, ev.pipeline, ev.stage,
      static_cast<int>(ev.kind), static_cast<int>(ev.counter), ev.pipeline,
      ev.stage, ev.batch, ev.micro_batch, ev.t_begin, ev.t_end, ev.bytes,
      ev.value);
  os << buf;
}

/// Extract the numeric value following `"<key>":` in `line`; returns false
/// if the key is absent.
bool find_number(const std::string& line, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  *out = std::strtod(start, &end);
  return end != start;
}

double require_number(const std::string& line, const char* key) {
  double v = 0;
  AVGPIPE_CHECK(find_number(line, key, &v),
                "chrome trace line missing field '" << key << "': " << line);
  return v;
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    write_event(os, events[i]);
    if (i + 1 < events.size()) os << ',';
    os << '\n';
  }
  os << "]}\n";
}

bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, events);
  return static_cast<bool>(out);
}

std::vector<TraceEvent> parse_chrome_trace(std::istream& is) {
  std::vector<TraceEvent> events;
  std::string line;
  bool saw_header = false;
  while (std::getline(is, line)) {
    if (!saw_header) {
      AVGPIPE_CHECK(line.find("\"traceEvents\"") != std::string::npos,
                    "not a chrome trace document: " << line);
      saw_header = true;
      continue;
    }
    // The args object is the authoritative record; lines without one are
    // the closing bracket.
    const auto args_pos = line.find("\"args\":{");
    if (args_pos == std::string::npos) continue;
    const std::string args = line.substr(args_pos);
    TraceEvent ev;
    ev.kind = static_cast<EventKind>(
        static_cast<int>(require_number(args, "k")));
    ev.counter = static_cast<CounterId>(
        static_cast<int>(require_number(args, "c")));
    ev.pipeline = static_cast<std::uint32_t>(require_number(args, "p"));
    ev.stage = static_cast<std::uint32_t>(require_number(args, "s"));
    ev.batch = static_cast<std::int32_t>(require_number(args, "b"));
    ev.micro_batch = static_cast<std::int32_t>(require_number(args, "mb"));
    ev.t_begin = require_number(args, "tb");
    ev.t_end = require_number(args, "te");
    ev.bytes = require_number(args, "by");
    ev.value = require_number(args, "v");
    events.push_back(ev);
  }
  AVGPIPE_CHECK(saw_header, "empty chrome trace document");
  return events;
}

}  // namespace avgpipe::trace
