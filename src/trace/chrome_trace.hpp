#pragma once

/// \file chrome_trace.hpp
/// Chrome `trace_event` JSON exporter (and re-importer) for TraceEvents.
///
/// The emitted file loads directly in `chrome://tracing` and Perfetto
/// (https://ui.perfetto.dev): spans become complete events (`"ph":"X"`) with
/// pid = pipeline and tid = stage, so each (pipeline, stage) instruction
/// stream renders as its own track; counters become counter events
/// (`"ph":"C"`). Timestamps are microseconds, as the format requires.
///
/// Every event additionally carries its full field set (raw seconds at full
/// precision) in `args`, which is what `parse_chrome_trace` reads back —
/// the round trip emit → JSON → parse reproduces the span list exactly.
/// The parser is intentionally minimal: it accepts the one-event-per-line
/// shape this writer produces, not arbitrary JSON.

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace avgpipe::trace {

/// Write the events as a Chrome trace_event JSON document.
void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceEvent>& events);

/// Convenience: write to `path`. Returns false if the file cannot be opened.
bool write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events);

/// Parse a document produced by write_chrome_trace back into events.
/// Throws avgpipe::Error on malformed input.
std::vector<TraceEvent> parse_chrome_trace(std::istream& is);

}  // namespace avgpipe::trace
