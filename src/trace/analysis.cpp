#include "trace/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace avgpipe::trace {

namespace {

schedule::OpKind op_kind_of(EventKind kind) {
  switch (kind) {
    case EventKind::kForward: return schedule::OpKind::kForward;
    case EventKind::kBackward: return schedule::OpKind::kBackward;
    default: return schedule::OpKind::kUpdate;
  }
}

std::string format_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace

TraceAnalysis::TraceAnalysis(std::vector<TraceEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t_begin < b.t_begin;
                   });
  if (events_.empty()) return;
  span_begin_ = events_.front().t_begin;
  span_end_ = events_.front().t_end;
  for (const auto& ev : events_) {
    num_stages_ = std::max<std::size_t>(num_stages_, ev.stage + 1);
    num_pipelines_ = std::max<std::size_t>(num_pipelines_, ev.pipeline + 1);
    span_begin_ = std::min(span_begin_, ev.t_begin);
    span_end_ = std::max(span_end_, ev.t_end);
  }
}

std::vector<TraceAnalysis::Interval> TraceAnalysis::merged_spans(
    std::size_t stage, bool (*pred)(EventKind)) const {
  std::vector<Interval> spans;
  for (const auto& ev : events_) {
    if (ev.stage != stage || !pred(ev.kind)) continue;
    if (ev.t_end > ev.t_begin) spans.push_back({ev.t_begin, ev.t_end});
  }
  // events_ is sorted by t_begin, so a single merge pass suffices.
  std::vector<Interval> merged;
  for (const auto& s : spans) {
    if (!merged.empty() && s.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, s.end);
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

Seconds TraceAnalysis::busy_time(std::size_t stage) const {
  Seconds total = 0;
  for (const auto& iv : merged_spans(stage, is_compute)) {
    total += iv.end - iv.begin;
  }
  return total;
}

Seconds TraceAnalysis::comm_time(std::size_t stage) const {
  Seconds total = 0;
  for (const auto& iv : merged_spans(stage, is_comm)) {
    total += iv.end - iv.begin;
  }
  return total;
}

Seconds TraceAnalysis::comm_wait_time(std::size_t stage) const {
  Seconds total = 0;
  for (const auto& ev : events_) {
    if (ev.stage == stage && ev.kind == EventKind::kWaitComm) {
      total += ev.t_end - ev.t_begin;
    }
  }
  return total;
}

Seconds TraceAnalysis::bubble_time(std::size_t stage) const {
  Seconds total = 0;
  for (const auto& ev : events_) {
    if (ev.stage == stage && ev.kind == EventKind::kWaitBubble) {
      total += ev.t_end - ev.t_begin;
    }
  }
  return total;
}

double TraceAnalysis::idle_fraction(std::size_t stage) const {
  const Seconds span = span_end_ - span_begin_;
  if (span <= 0) return 0;
  return 1.0 - busy_time(stage) / span;
}

Seconds TraceAnalysis::overlapped_comm_time(std::size_t stage) const {
  const auto compute = merged_spans(stage, is_compute);
  Seconds overlap = 0;
  // Both lists are time-sorted; walk them together.
  std::size_t j = 0;
  for (const auto& ev : events_) {
    if (ev.stage != stage || !is_comm(ev.kind)) continue;
    while (j < compute.size() && compute[j].end <= ev.t_begin) ++j;
    for (std::size_t i = j; i < compute.size(); ++i) {
      if (compute[i].begin >= ev.t_end) break;
      overlap += std::max<Seconds>(
          0, std::min(ev.t_end, compute[i].end) -
                 std::max(ev.t_begin, compute[i].begin));
    }
  }
  return overlap;
}

double TraceAnalysis::comm_overlap_fraction(std::size_t stage) const {
  Seconds comm = 0;
  for (const auto& ev : events_) {
    if (ev.stage == stage && is_comm(ev.kind)) comm += ev.t_end - ev.t_begin;
  }
  if (comm <= 0) return 0;
  return overlapped_comm_time(stage) / comm;
}

double TraceAnalysis::comm_overlap_fraction() const {
  Seconds comm = 0, overlap = 0;
  for (std::size_t k = 0; k < num_stages_; ++k) {
    for (const auto& ev : events_) {
      if (ev.stage == k && is_comm(ev.kind)) comm += ev.t_end - ev.t_begin;
    }
    overlap += overlapped_comm_time(k);
  }
  if (comm <= 0) return 0;
  return overlap / comm;
}

StepFunction TraceAnalysis::utilization(std::size_t stage) const {
  StepFunction phi;
  for (const auto& ev : events_) {
    if (ev.kind == EventKind::kCounter &&
        ev.counter == CounterId::kUtilization && ev.stage == stage) {
      phi.append(ev.t_begin, ev.t_end, ev.value);
    }
  }
  return phi;
}

double TraceAnalysis::mean_utilization() const {
  if (num_stages_ == 0 || span_end_ <= 0) return 0;
  double util_sum = 0;
  for (std::size_t k = 0; k < num_stages_; ++k) {
    util_sum += utilization(k).integral() / span_end_;
  }
  return util_sum / static_cast<double>(num_stages_);
}

double TraceAnalysis::peak_utilization() const {
  double peak = 0;
  for (const auto& ev : events_) {
    if (ev.kind == EventKind::kCounter &&
        ev.counter == CounterId::kUtilization) {
      peak = std::max(peak, ev.value);
    }
  }
  return peak;
}

double TraceAnalysis::counter_quantile(std::size_t stage, CounterId id,
                                       double q) const {
  std::vector<double> values;
  for (const auto& ev : events_) {
    if (ev.kind == EventKind::kCounter && ev.counter == id &&
        ev.stage == stage) {
      values.push_back(ev.value);
    }
  }
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank =
      std::clamp(q, 0.0, 1.0) * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double TraceAnalysis::counter_sum(std::size_t stage, CounterId id) const {
  double total = 0;
  for (const auto& ev : events_) {
    if (ev.kind == EventKind::kCounter && ev.counter == id &&
        ev.stage == stage) {
      total += ev.value;
    }
  }
  return total;
}

std::size_t TraceAnalysis::counter_count(std::size_t stage,
                                         CounterId id) const {
  std::size_t n = 0;
  for (const auto& ev : events_) {
    if (ev.kind == EventKind::kCounter && ev.counter == id &&
        ev.stage == stage) {
      ++n;
    }
  }
  return n;
}

double TraceAnalysis::achieved_gflops(std::size_t stage) const {
  const double flops = counter_sum(stage, CounterId::kFlops);
  const Seconds busy = busy_time(stage);
  if (flops <= 0 || busy <= 0) return 0;
  return flops / busy / 1e9;
}

double TraceAnalysis::steps_per_sec(std::size_t stage) const {
  const Seconds span = span_end_ - span_begin_;
  if (span <= 0) return 0;
  std::size_t updates = 0;
  for (const auto& ev : events_) {
    if (ev.stage == stage && ev.kind == EventKind::kUpdate) ++updates;
  }
  return static_cast<double>(updates) / span;
}

double TraceAnalysis::mean_sync_batch() const {
  double total = 0;
  std::size_t n = 0;
  for (const auto& ev : events_) {
    if (ev.kind == EventKind::kCounter &&
        ev.counter == CounterId::kSyncBatch) {
      total += ev.value;
      ++n;
    }
  }
  return n == 0 ? 0 : total / static_cast<double>(n);
}

namespace {

std::uint64_t counter_total(const std::vector<TraceEvent>& events,
                            CounterId id) {
  double total = 0;
  for (const auto& ev : events) {
    if (ev.kind == EventKind::kCounter && ev.counter == id) total += ev.value;
  }
  return static_cast<std::uint64_t>(total);
}

}  // namespace

std::uint64_t TraceAnalysis::sync_bytes() const {
  return counter_total(events_, CounterId::kSyncBytes);
}

std::uint64_t TraceAnalysis::sync_bytes_raw() const {
  return counter_total(events_, CounterId::kSyncBytesRaw);
}

double TraceAnalysis::compression_ratio() const {
  const std::uint64_t raw = sync_bytes_raw();
  const std::uint64_t wire = sync_bytes();
  if (raw == 0 || wire == 0) return 1.0;
  return static_cast<double>(raw) / static_cast<double>(wire);
}

std::vector<schedule::Instr> TraceAnalysis::stage_ops(
    std::size_t pipeline, std::size_t stage) const {
  std::vector<schedule::Instr> ops;
  for (const auto& ev : events_) {
    if (ev.pipeline == pipeline && ev.stage == stage && is_compute(ev.kind)) {
      ops.push_back({op_kind_of(ev.kind), ev.batch, ev.micro_batch});
    }
  }
  return ops;
}

std::vector<TraceEvent> TraceAnalysis::fault_events() const {
  std::vector<TraceEvent> out;
  for (const auto& ev : events_) {
    if (is_fault(ev.kind)) out.push_back(ev);
  }
  return out;
}

Seconds TraceAnalysis::straggler_delay(std::size_t stage) const {
  Seconds total = 0;
  for (const auto& ev : events_) {
    if (ev.stage == stage && ev.kind == EventKind::kFaultStraggler) {
      total += ev.t_end - ev.t_begin;
    }
  }
  return total;
}

std::vector<TraceAnalysis::Recovery> TraceAnalysis::recoveries() const {
  std::vector<Recovery> episodes;
  for (const auto& ev : events_) {
    if (ev.kind == EventKind::kPipelineCrash) {
      Recovery r;
      r.pipeline = ev.pipeline;
      r.t_crash = ev.t_begin;
      r.latency = span_end_ - ev.t_begin;
      episodes.push_back(r);
    } else if (ev.kind == EventKind::kPipelineRejoin) {
      // Close the most recent open episode of this pipeline (events_ is
      // time-sorted, so the match is the last unrejoined crash).
      for (auto it = episodes.rbegin(); it != episodes.rend(); ++it) {
        if (it->pipeline == ev.pipeline && !it->rejoined) {
          it->rejoined = true;
          it->t_rejoin = ev.t_end;
          it->latency = ev.t_end - it->t_crash;
          break;
        }
      }
    }
  }
  return episodes;
}

std::vector<TraceEvent> TraceAnalysis::checkpoint_events() const {
  std::vector<TraceEvent> out;
  for (const auto& ev : events_) {
    if (ev.kind == EventKind::kCheckpoint) out.push_back(ev);
  }
  return out;
}

std::vector<TraceEvent> TraceAnalysis::restore_events() const {
  std::vector<TraceEvent> out;
  for (const auto& ev : events_) {
    if (ev.kind == EventKind::kRestore) out.push_back(ev);
  }
  return out;
}

Seconds TraceAnalysis::checkpoint_time() const {
  Seconds total = 0;
  for (const auto& ev : events_) {
    if (ev.kind == EventKind::kCheckpoint) total += ev.t_end - ev.t_begin;
  }
  return total;
}

std::uint64_t TraceAnalysis::checkpoint_bytes() const {
  std::uint64_t total = 0;
  for (const auto& ev : events_) {
    if (ev.kind == EventKind::kCheckpoint) total += ev.bytes;
  }
  return total;
}

Table TraceAnalysis::metrics_table() const {
  Table table({"stage", "busy s", "idle", "comm s", "overlap", "bubble s",
               "comm wait s", "mean util", "peak util", "qdepth p50",
               "qdepth p95"});
  for (std::size_t k = 0; k < num_stages_; ++k) {
    const StepFunction phi = utilization(k);
    const double mean_phi =
        span_end_ > 0 ? phi.integral() / span_end_ : 0.0;
    table.row()
        .cell_int(static_cast<long long>(k))
        .cell(busy_time(k), 4)
        .cell(format_pct(idle_fraction(k)))
        .cell(comm_time(k), 4)
        .cell(format_pct(comm_overlap_fraction(k)))
        .cell(bubble_time(k), 4)
        .cell(comm_wait_time(k), 4)
        .cell(format_pct(mean_phi))
        .cell(format_pct(phi.max_value()))
        .cell(counter_quantile(k, CounterId::kQueueDepth, 0.5), 1)
        .cell(counter_quantile(k, CounterId::kQueueDepth, 0.95), 1);
  }
  return table;
}

}  // namespace avgpipe::trace
