#pragma once

/// \file happens_before.hpp
/// Trace happens-before checker: replays a recorded execution trace (either
/// engine) against the pipeline protocol's causal order.
///
/// The verify:: model checker proves properties of the *protocol*; this
/// checker validates that a *recorded run* actually followed it. Every
/// cross-stage message induces a happens-before edge — F(k, b, mb) before
/// F(k+1, b, mb), B(k+1, b, mb) before B(k, b, mb), and every stage's j-th
/// Update before the pipeline's j-th ElasticPull (paper §3.2: a replica
/// pulls the reference only after committing its own batch). The checker
/// assigns per-pipeline vector clocks over (pipeline, stage) processes,
/// joins them along the message edges, and flags:
///   - micro-batch reordering within a stage (per batch, forwards and
///     backwards must each run in micro-batch order, backwards after their
///     forwards);
///   - FIFO violations per link (the order messages were produced on stage
///     k must be the order stage k+1 consumed them);
///   - timestamp/causality inversions: an event that begins before a
///     happens-before predecessor allows;
///   - sync-lag overruns: the kSyncLag counter exceeding the configured
///     bound (async elastic averaging's staleness window).
///
/// Batch tags need not be globally unique: the threaded runtime numbers
/// batches per train_batch call, so every flushed iteration reuses tag 0.
/// A stage's optimizer update for a tag closes that tag's scope on the
/// stage, and later spans reusing it are checked as a fresh iteration.
///
/// Clock-strictness caveat: simulated traces carry virtual timestamps that
/// ARE the causal order, so a receive must begin at or after the sender's
/// span *end* (strict mode). Wall-clock traces from the threaded runtime
/// stamp a span's end after its send completes, so a downstream span can
/// legitimately begin before the upstream span closes — only
/// receiver.t_begin >= sender.t_begin is guaranteed (weak mode, the
/// default).

#include <cstddef>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace avgpipe::trace {

struct HbOptions {
  /// Strict edges (receiver.t_begin >= sender.t_end): simulated traces
  /// only. Weak edges (receiver.t_begin >= sender.t_begin): wall-clock.
  bool strict = false;
  /// Timestamp slack in seconds for the causality comparisons.
  double epsilon = 1e-12;
  /// Maximum admissible kSyncLag counter value; negative disables the
  /// check (traces without elastic averaging).
  long sync_lag = -1;
  /// Stop collecting after this many violations (the verdict is already
  /// decided; keeps reports readable).
  std::size_t max_violations = 16;
};

struct HbViolation {
  std::string what;
};

struct HbReport {
  bool ok = true;
  std::vector<HbViolation> violations;
  std::size_t violations_total = 0;  ///< including ones past max_violations
  std::size_t events_checked = 0;    ///< protocol events examined
  std::size_t processes = 0;         ///< vector-clock components
  std::size_t edges = 0;             ///< happens-before edges validated
  std::size_t pipelines = 0;
  double max_sync_lag = 0;           ///< highest kSyncLag sample seen

  std::string summary() const;
};

/// Check one collected trace (Tracer::collect() order or a parsed Chrome
/// trace — both are sorted by t_begin).
HbReport check_happens_before(const std::vector<TraceEvent>& events,
                              const HbOptions& options = {});

}  // namespace avgpipe::trace
