#include "trace/trace.hpp"

#include <algorithm>

namespace avgpipe::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kForward: return "forward";
    case EventKind::kBackward: return "backward";
    case EventKind::kUpdate: return "update";
    case EventKind::kCommActivation: return "comm_act";
    case EventKind::kCommGradient: return "comm_grad";
    case EventKind::kCommAllReduce: return "comm_allreduce";
    case EventKind::kWaitComm: return "wait_comm";
    case EventKind::kWaitBubble: return "wait_bubble";
    case EventKind::kElasticPull: return "elastic_pull";
    case EventKind::kReferenceApply: return "reference_apply";
    case EventKind::kCounter: return "counter";
    case EventKind::kFaultStraggler: return "fault_straggler";
    case EventKind::kFaultDrop: return "fault_drop";
    case EventKind::kLinkDegraded: return "link_degraded";
    case EventKind::kPipelineCrash: return "pipeline_crash";
    case EventKind::kPipelineRejoin: return "pipeline_rejoin";
    case EventKind::kPolicyBroadcast: return "policy_broadcast";
    case EventKind::kWeightPrediction: return "weight_prediction";
    case EventKind::kCheckpoint: return "checkpoint";
    case EventKind::kRestore: return "restore";
  }
  return "?";
}

const char* to_string(CounterId id) {
  switch (id) {
    case CounterId::kNone: return "none";
    case CounterId::kUtilization: return "utilization";
    case CounterId::kQueueDepth: return "queue_depth";
    case CounterId::kStaleness: return "staleness";
    case CounterId::kAlivePipelines: return "alive_pipelines";
    case CounterId::kRecvRetry: return "recv_retry";
    case CounterId::kSyncLag: return "sync_lag";
    case CounterId::kFlops: return "flops";
    case CounterId::kParkCount: return "parks";
    case CounterId::kSpinCount: return "spins";
    case CounterId::kSyncBatch: return "sync_batch";
    case CounterId::kSyncBytes: return "sync_bytes";
    case CounterId::kSyncBytesRaw: return "sync_bytes_raw";
  }
  return "?";
}

bool is_compute(EventKind kind) {
  return kind == EventKind::kForward || kind == EventKind::kBackward ||
         kind == EventKind::kUpdate;
}

bool is_comm(EventKind kind) {
  return kind == EventKind::kCommActivation ||
         kind == EventKind::kCommGradient ||
         kind == EventKind::kCommAllReduce;
}

bool is_wait(EventKind kind) {
  return kind == EventKind::kWaitComm || kind == EventKind::kWaitBubble;
}

bool is_fault(EventKind kind) {
  return kind == EventKind::kFaultStraggler ||
         kind == EventKind::kFaultDrop || kind == EventKind::kLinkDegraded ||
         kind == EventKind::kPipelineCrash ||
         kind == EventKind::kPipelineRejoin;
}

bool operator==(const TraceEvent& a, const TraceEvent& b) {
  return a.kind == b.kind && a.counter == b.counter &&
         a.pipeline == b.pipeline && a.stage == b.stage &&
         a.batch == b.batch && a.micro_batch == b.micro_batch &&
         a.t_begin == b.t_begin && a.t_end == b.t_end && a.bytes == b.bytes &&
         a.value == b.value;
}

TraceBuffer* Tracer::create_buffer() {
  common::MutexLock lock(mutex_);
  buffers_.push_back(std::make_unique<TraceBuffer>());
  return buffers_.back().get();
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> merged;
  {
    common::MutexLock lock(mutex_);
    for (const auto& buf : buffers_) {
      common::MutexLock buf_lock(buf->mutex_);
      merged.insert(merged.end(), buf->events_.begin(), buf->events_.end());
    }
  }
  // Stable: ties keep (buffer creation, insertion) order, so a deterministic
  // execution collects a bit-identical trace every time.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t_begin < b.t_begin;
                   });
  return merged;
}

void Tracer::clear() {
  common::MutexLock lock(mutex_);
  for (const auto& buf : buffers_) {
    common::MutexLock buf_lock(buf->mutex_);
    buf->events_.clear();
  }
}

std::size_t Tracer::num_buffers() const {
  common::MutexLock lock(mutex_);
  return buffers_.size();
}

}  // namespace avgpipe::trace
