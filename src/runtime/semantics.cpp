#include "runtime/semantics.hpp"

#include "tensor/ops.hpp"

namespace avgpipe::runtime {

namespace {

/// Forward + loss for a batch; flattens LM-style [B,S,V] logits.
tensor::Variable batch_loss(nn::Sequential& model, const data::Batch& batch) {
  tensor::Variable in(batch.inputs);
  tensor::Variable out = model.forward(in);
  if (out.shape().size() == 3) {
    const auto& s = out.shape();
    return tensor::softmax_cross_entropy(
        tensor::reshape(out, {s[0] * s[1], s[2]}), batch.targets);
  }
  return tensor::softmax_cross_entropy(out, batch.targets);
}

}  // namespace

// -- SyncTrainer -------------------------------------------------------------------

SyncTrainer::SyncTrainer(nn::Sequential model,
                         std::unique_ptr<optim::Optimizer> opt,
                         std::string name)
    : model_(std::move(model)), opt_(std::move(opt)), name_(std::move(name)) {}

double SyncTrainer::train_batch(const data::Batch& batch) {
  opt_->zero_grad();
  tensor::Variable loss = batch_loss(model_, batch);
  loss.backward();
  opt_->step();
  return loss.value()[0];
}

// -- StalenessTrainer ---------------------------------------------------------------

StalenessTrainer::StalenessTrainer(nn::Sequential model,
                                   std::unique_ptr<optim::Optimizer> opt,
                                   std::size_t delay,
                                   std::size_t micro_batches,
                                   bool update_per_micro_batch,
                                   std::string name)
    : model_(std::move(model)),
      opt_(std::move(opt)),
      delay_(delay),
      micro_batches_(micro_batches),
      update_per_micro_batch_(update_per_micro_batch),
      name_(std::move(name)) {
  AVGPIPE_CHECK(micro_batches_ >= 1, "need at least one micro-batch");
}

void StalenessTrainer::push_version() {
  std::vector<tensor::Tensor> snap;
  for (auto& p : model_.parameters()) snap.push_back(p.value().clone());
  versions_.push_back(std::move(snap));
  while (versions_.size() > delay_ + 1) versions_.pop_front();
}

double StalenessTrainer::stale_gradient(const data::Batch& batch) {
  auto params = model_.parameters();
  const auto& stale = versions_.front();

  // Swap in the stale weights, evaluate, swap back. Gradients land in the
  // (shared) grad buffers and are applied to the *current* weights — the
  // defining inconsistency of multi-version pipelines.
  std::vector<tensor::Tensor> current;
  current.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    current.push_back(params[i].value().clone());
    params[i].value().copy_from(stale[i]);
  }
  tensor::Variable loss = batch_loss(model_, batch);
  loss.backward();
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i].value().copy_from(current[i]);
  }
  return loss.value()[0];
}

double StalenessTrainer::train_batch(const data::Batch& batch) {
  auto micro = data::slice_micro_batches(batch, micro_batches_);
  double loss_sum = 0;
  if (update_per_micro_batch_) {
    // PipeDream: one stale update per micro-batch.
    for (const auto& mb : micro) {
      push_version();
      opt_->zero_grad();
      loss_sum += stale_gradient(mb);
      opt_->step();
    }
    return loss_sum / static_cast<double>(micro.size());
  }
  // 2BW: accumulate the whole batch at one stale version, apply once.
  push_version();
  opt_->zero_grad();
  for (const auto& mb : micro) loss_sum += stale_gradient(mb);
  const double inv_m = 1.0 / static_cast<double>(micro.size());
  for (auto& p : opt_->params()) {
    const_cast<tensor::Variable&>(p).mutable_grad().scale_(inv_m);
  }
  opt_->step();
  return loss_sum * inv_m;
}

// -- evaluation helpers ----------------------------------------------------------------

double evaluate_accuracy(nn::Sequential& model, data::DataLoader& loader,
                         std::size_t epoch, std::size_t batches) {
  model.set_training(false);
  double acc = 0;
  const std::size_t n = std::min(batches, loader.batches_per_epoch());
  for (std::size_t i = 0; i < n; ++i) {
    const data::Batch batch = loader.batch(epoch, i);
    tensor::Variable in(batch.inputs);
    tensor::Variable out = model.forward(in);
    acc += tensor::accuracy(out.value(), batch.targets);
  }
  model.set_training(true);
  return acc / static_cast<double>(n);
}

double evaluate_loss(nn::Sequential& model, data::DataLoader& loader,
                     std::size_t epoch, std::size_t batches) {
  model.set_training(false);
  double loss = 0;
  const std::size_t n = std::min(batches, loader.batches_per_epoch());
  for (std::size_t i = 0; i < n; ++i) {
    const data::Batch batch = loader.batch(epoch, i);
    loss += batch_loss(model, batch).value()[0];
  }
  model.set_training(true);
  return loss / static_cast<double>(n);
}

}  // namespace avgpipe::runtime
