#pragma once

/// \file semantics.hpp
/// Update-rule semantics of the compared systems, for the statistical-
/// efficiency experiments (paper §7.1.3, Figure 14).
///
/// Epochs-to-target depends on *what update each system applies*, not on how
/// fast it runs. Synchronous systems (PyTorch-DDP, GPipe, Dapple and each
/// individual AvgPipe pipeline) apply the exact full-batch gradient.
/// PipeDream's multi-version pipeline applies per-micro-batch updates whose
/// gradients were computed on weights several updates old; PipeDream-2BW
/// applies per-batch updates one version stale. These trainers implement
/// those semantics faithfully on real models, single-threaded (timing is the
/// simulator's job).

#include <deque>
#include <memory>
#include <string>

#include "data/dataset.hpp"
#include "nn/sequential.hpp"
#include "optim/optimizer.hpp"

namespace avgpipe::runtime {

/// Interface the Figure-14 harness trains against.
class TrainerBase {
 public:
  virtual ~TrainerBase() = default;
  /// Consume one batch; returns its training loss.
  virtual double train_batch(const data::Batch& batch) = 0;
  /// Model to evaluate with (after any averaging the system implies).
  virtual nn::Sequential& eval_model() = 0;
  virtual std::string name() const = 0;

  /// Batches consumed per iteration (AvgPipe trains N in parallel).
  virtual std::size_t batches_per_iteration() const { return 1; }
  /// Consume one iteration's worth of batches; default delegates to
  /// train_batch.
  virtual double train_iteration(const std::vector<data::Batch>& batches) {
    AVGPIPE_CHECK(batches.size() == 1, "expected exactly one batch");
    return train_batch(batches.front());
  }
};

/// Synchronous full-batch training: PyTorch data parallelism, GPipe and
/// Dapple all reduce to this update rule.
class SyncTrainer : public TrainerBase {
 public:
  SyncTrainer(nn::Sequential model, std::unique_ptr<optim::Optimizer> opt,
              std::string name = "sync");

  double train_batch(const data::Batch& batch) override;
  nn::Sequential& eval_model() override { return model_; }
  std::string name() const override { return name_; }

  optim::Optimizer& optimizer() { return *opt_; }

 private:
  nn::Sequential model_;
  std::unique_ptr<optim::Optimizer> opt_;
  std::string name_;
};

/// Stale-gradient training: gradients are computed on the weights from
/// `delay` updates ago and applied to the current weights.
///
/// * PipeDream: delay = K-1 (stage 0 sees the oldest version), one update
///   per micro-batch.
/// * PipeDream-2BW: delay = 1, gradients of a batch's micro-batches are
///   accumulated and applied once per batch.
class StalenessTrainer : public TrainerBase {
 public:
  StalenessTrainer(nn::Sequential model,
                   std::unique_ptr<optim::Optimizer> opt, std::size_t delay,
                   std::size_t micro_batches, bool update_per_micro_batch,
                   std::string name);

  double train_batch(const data::Batch& batch) override;
  nn::Sequential& eval_model() override { return model_; }
  std::string name() const override { return name_; }

 private:
  /// Gradient of `batch` evaluated at the `delay`-old weights, accumulated
  /// into the current parameters' grad buffers.
  double stale_gradient(const data::Batch& batch);
  void push_version();

  nn::Sequential model_;
  std::unique_ptr<optim::Optimizer> opt_;
  std::size_t delay_;
  std::size_t micro_batches_;
  bool update_per_micro_batch_;
  std::string name_;
  /// Ring of past parameter values, newest at the back.
  std::deque<std::vector<tensor::Tensor>> versions_;
};

/// Evaluate classification accuracy over `batches` loader batches.
double evaluate_accuracy(nn::Sequential& model, data::DataLoader& loader,
                         std::size_t epoch, std::size_t batches);

/// Evaluate mean cross-entropy loss; flattens [B,S,V] LM logits.
double evaluate_loss(nn::Sequential& model, data::DataLoader& loader,
                     std::size_t epoch, std::size_t batches);

}  // namespace avgpipe::runtime
