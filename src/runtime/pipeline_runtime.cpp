#include "runtime/pipeline_runtime.hpp"

#include <chrono>
#include <sstream>

#include "common/affinity.hpp"
#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

namespace avgpipe::runtime {

namespace {
/// A batch dispatch and its done barrier never overlap, so at most one start
/// token per stage is ever in flight (+1 slack).
constexpr std::size_t kStartCapacity = 2;

/// Resilient-recv budget under an active fault plan: first poll quantum,
/// per-attempt cap, and the overall wall deadline after which a silent peer
/// is declared dead. Generous against injected stragglers (which sleep for
/// multiples of real op durations) while still bounding a true hang.
constexpr Seconds kRecvInitialWait = 1e-4;
constexpr Seconds kRecvMaxWait = 0.05;
constexpr Seconds kRecvDeadline = 10.0;

/// Consecutive injected drops a sender tolerates before declaring its
/// outbound link dead and failing the batch.
constexpr int kMaxSendAttempts = 5;

Seconds elapsed_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::size_t env_channel_capacity() {
  // Construction-time read, before any worker thread exists.
  const auto v = common::env_int_opt("AVGPIPE_CHANNEL_CAPACITY");
  if (!v.has_value()) return 0;
  AVGPIPE_CHECK(*v >= 1,
                "AVGPIPE_CHANNEL_CAPACITY must be >= 1, got " << *v);
  return static_cast<std::size_t>(*v);
}

/// Whether to assert the "+1 slack" link-capacity contract on every send.
/// On by default in debug builds; AVGPIPE_ASSERT_CHANNEL_SLACK=1/0 forces it
/// either way (CI arms it in release tier-1 runs).
bool env_assert_link_slack() {
  // Construction-time read, before any worker thread exists.
#ifdef NDEBUG
  return common::env_flag("AVGPIPE_ASSERT_CHANNEL_SLACK", false);
#else
  return common::env_flag("AVGPIPE_ASSERT_CHANNEL_SLACK", true);
#endif
}
}  // namespace

LossFn cross_entropy_loss() {
  return [](const tensor::Variable& logits, const std::vector<int>& targets) {
    // Language-model heads emit [B,S,V]; flatten to rows for the loss.
    if (logits.shape().size() == 3) {
      const auto& s = logits.shape();
      return tensor::softmax_cross_entropy(
          tensor::reshape(logits, {s[0] * s[1], s[2]}), targets);
    }
    return tensor::softmax_cross_entropy(logits, targets);
  };
}

PipelineRuntime::PipelineRuntime(nn::Sequential model,
                                 std::vector<std::size_t> boundaries,
                                 const OptimizerFactory& make_optimizer,
                                 LossFn loss, schedule::Kind kind,
                                 std::size_t advance_num)
    : model_(std::move(model)),
      loss_(std::move(loss)),
      kind_(kind),
      advance_num_(advance_num) {
  AVGPIPE_CHECK(kind_ == schedule::Kind::kAfab ||
                    kind_ == schedule::Kind::kOneFOneB ||
                    kind_ == schedule::Kind::kAdvanceForward,
                "runtime supports the flushed schedules; got "
                    << schedule::to_string(kind_));
  auto views = model_.partition(boundaries);
  const std::size_t k = views.size();
  if (advance_num_ == 0) advance_num_ = k - 1;
  // Validate here rather than in the worker threads: a bad advance count
  // must surface as an exception to the caller, not terminate a worker.
  AVGPIPE_CHECK(kind_ != schedule::Kind::kAdvanceForward ||
                    advance_num_ + 1 >= k,
                "advance_num " << advance_num_ << " below the 1F1B minimum "
                               << k - 1);

  faults_ = fault::env_plan();
  faults_active_ = faults_ != nullptr && !faults_->empty();
  capacity_override_ = env_channel_capacity();
  // Only meaningful against the schedule-derived capacity: an override can
  // legitimately park sends (that is the point of the experiment knob).
  assert_link_slack_ = capacity_override_ == 0 && env_assert_link_slack();

  done_ = std::make_unique<Channel<int>>(k);

  // Intra-stage kernel parallelism: each stage thread claims an equal share
  // of the pool budget (AVGPIPE_STAGE_THREADS overrides). A standalone
  // runtime owns pin slots [0, k); an elastic driver re-plans both via
  // set_stage_workers / set_thread_slots before the first batch.
  stage_workers_ = stage_workers_from_env(k);
  pin_total_slots_ = k;

  for (std::size_t i = 0; i < k; ++i) {
    auto stage = std::make_unique<Stage>();
    stage->index = i;
    stage->module = std::move(views[i]);
    stage->optimizer = make_optimizer(stage->module.parameters());
    stage_start_.push_back(
        std::make_unique<Channel<std::size_t>>(kStartCapacity));
    stages_.push_back(std::move(stage));
  }
  // Payload links are built for a provisional one-micro-batch batch here so
  // close_all() can always walk them; the first train_batch resizes them to
  // the real schedule depth before any worker touches a link.
  ensure_channels(1);
  // Warm the intra-op pool before stage workers start issuing GEMMs, so the
  // first micro-batch doesn't pay worker-thread spawn inside its critical
  // path.
  ThreadPool::global();

  for (auto& stage : stages_) {
    Stage* s = stage.get();
    s->thread = std::thread([this, s] { worker_loop(*s); });
  }
}

PipelineRuntime::~PipelineRuntime() {
  stopping_ = true;
  close_all();
  for (auto& stage : stages_) {
    if (stage->thread.joinable()) stage->thread.join();
  }
}

void PipelineRuntime::close_all() {
  for (auto& ch : stage_start_) ch->close();
  input_->close();
  for (auto& ch : acts_) ch->close();
  for (auto& ch : grads_) ch->close();
  done_->close();
}

std::size_t PipelineRuntime::link_capacity(std::size_t micro_batches) const {
  if (capacity_override_ > 0) return capacity_override_;
  // Schedule-derived bound (see schedule::max_send_run_ahead; the verify::
  // model checker proves the run-ahead is exact for every reachable
  // interleaving), plus one slot of slack so a send at the exact bound
  // never parks — faulty_send() asserts that contract when
  // assert_link_slack_ is armed.
  return schedule::max_send_run_ahead(kind_, stages_.size(), micro_batches,
                                      advance_num_) +
         1;
}

void PipelineRuntime::ensure_channels(std::size_t micro_batches) {
  if (input_ != nullptr && micro_batches <= channel_micro_batches_) return;
  channel_micro_batches_ = std::max(channel_micro_batches_, micro_batches);
  const std::size_t link_cap = link_capacity(channel_micro_batches_);
  // The driver enqueues the whole batch up front; sizing the feed channel to
  // M keeps train_batch from parking mid-dispatch.
  const std::size_t input_cap = std::max(channel_micro_batches_, link_cap);
  input_ = std::make_unique<SpscChannel<ActMessage>>(input_cap);
  acts_.clear();
  grads_.clear();
  for (std::size_t i = 0; i + 1 < stages_.size(); ++i) {
    acts_.push_back(std::make_unique<SpscChannel<ActMessage>>(link_cap));
    grads_.push_back(std::make_unique<SpscChannel<GradMessage>>(link_cap));
  }
}

void PipelineRuntime::fail(const std::string& what) {
  {
    common::MutexLock lock(failure_mutex_);
    if (failure_.empty()) failure_ = what;  // first failure wins
  }
  failed_.store(true, std::memory_order_release);
  close_all();
}

std::string PipelineRuntime::failure_message() const {
  common::MutexLock lock(failure_mutex_);
  return failure_;
}

void PipelineRuntime::set_tracer(trace::Tracer* tracer,
                                 std::size_t pipeline_index) {
  tracer_ = tracer;
  trace_pipeline_ = static_cast<std::uint32_t>(pipeline_index);
}

void PipelineRuntime::set_faults(const fault::FaultPlan* plan) {
  faults_ = plan;
  faults_active_ = faults_ != nullptr && !faults_->empty();
}

void PipelineRuntime::set_stage_workers(std::size_t workers) {
  // 0 keeps the construction-time default (env knob / equal share).
  if (workers != 0) stage_workers_ = workers;
}

void PipelineRuntime::set_thread_slots(std::size_t first_slot,
                                       std::size_t total_slots) {
  pin_first_slot_ = first_slot;
  pin_total_slots_ = total_slots;
}

void PipelineRuntime::set_weight_prediction(const PredictionConfig& config) {
  AVGPIPE_CHECK(config.lookahead >= 0.0,
                "prediction lookahead must be >= 0, got " << config.lookahead);
  AVGPIPE_CHECK(config.beta >= 0.0 && config.beta < 1.0,
                "prediction beta must be in [0,1), got " << config.beta);
  prediction_ = config;
  prediction_active_ = config.lookahead != 0.0;
}

void PipelineRuntime::record_span(Stage& stage, trace::EventKind kind,
                                  const schedule::Instr& instr,
                                  Seconds t_begin) {
  if (stage.trace_buf == nullptr) return;
  trace::TraceEvent ev;
  ev.kind = kind;
  ev.pipeline = trace_pipeline_;
  ev.stage = static_cast<std::uint32_t>(stage.index);
  ev.batch = instr.batch;
  ev.micro_batch = instr.micro_batch;
  ev.t_begin = t_begin;
  ev.t_end = tracer_->wall_now();
  stage.trace_buf->record(ev);
}

void PipelineRuntime::record_counter(Stage& stage, trace::CounterId id,
                                     double value) {
  if (stage.trace_buf == nullptr) return;
  trace::TraceEvent ev;
  ev.kind = trace::EventKind::kCounter;
  ev.counter = id;
  ev.pipeline = trace_pipeline_;
  ev.stage = static_cast<std::uint32_t>(stage.index);
  ev.t_begin = ev.t_end = tracer_->wall_now();
  ev.value = value;
  stage.trace_buf->record(ev);
}

void PipelineRuntime::record_queue_depth(Stage& stage, std::size_t depth) {
  record_counter(stage, trace::CounterId::kQueueDepth,
                 static_cast<double>(depth));
}

// Generic over MPMC Channel and SPSC stage links, so the SPSC role
// requirement cannot be spelled here; the enclosing run_forward/run_backward
// hold the RoleGuard instead (allowlisted analysis opt-out).
template <typename Ch>
auto PipelineRuntime::robust_recv(Stage& stage, Ch& ch, const char* what)
    NO_THREAD_SAFETY_ANALYSIS -> decltype(ch.recv()) {
  if (!faults_active_) return ch.recv();
  fault::Backoff backoff(kRecvInitialWait, kRecvMaxWait, kRecvDeadline);
  typename decltype(ch.recv())::value_type out;
  while (backoff.can_retry()) {
    switch (ch.recv_for(&out, backoff.next_timeout())) {
      case ChannelStatus::kOk: return out;  // implicit move (local object)
      case ChannelStatus::kClosed: return std::nullopt;
      case ChannelStatus::kTimeout:
        record_counter(stage, trace::CounterId::kRecvRetry,
                       static_cast<double>(backoff.attempts()));
        break;
    }
  }
  // A typed throw, not AVGPIPE_THROW: worker_loop tags the failure so the
  // elastic driver can escalate (detach + restore from checkpoint) instead
  // of treating a hung peer like a programming error.
  std::ostringstream msg;
  msg << "stage " << stage.index << ": peer unresponsive on " << what
      << " after " << backoff.attempts() << " attempts (deadline "
      << kRecvDeadline << "s)";
  throw PeerUnresponsiveError(msg.str());
}

// Same generic-channel analysis opt-out as robust_recv (see the header).
template <typename Ch, typename T>
void PipelineRuntime::faulty_send(Stage& stage, Ch& ch, T msg,
                                  const schedule::Instr& instr, long step,
                                  fault::LinkDir dir) NO_THREAD_SAFETY_ANALYSIS {
  if (faults_active_) {
    const std::uint64_t key = fault::message_key(
        step, instr.micro_batch, static_cast<int>(stage.index), dir);
    const Seconds t0 = stage.trace_buf ? tracer_->wall_now() : 0;
    int attempt = 0;
    Seconds retry = 0;
    while (faults_->should_drop(static_cast<int>(trace_pipeline_),
                                static_cast<int>(stage.index), step, key,
                                attempt, &retry)) {
      ++attempt;
      AVGPIPE_CHECK(attempt < kMaxSendAttempts,
                    "stage " << stage.index << ": message (step " << step
                             << ", micro-batch " << instr.micro_batch
                             << ") dropped " << attempt
                             << " consecutive times; link declared dead");
      fault::sleep_for(retry);
    }
    if (attempt > 0) {
      record_span(stage, trace::EventKind::kFaultDrop, instr, t0);
    }
    // Degraded-link windows add per-message latency on this boundary.
    const int link = dir == fault::LinkDir::kActivation
                         ? static_cast<int>(stage.index)
                         : static_cast<int>(stage.index) - 1;
    fault::sleep_for(faults_->send_delay(link, step));
  }
  if (assert_link_slack_ && !faults_active_) {
    // The producer-side size() read is conservative: head is monotone, so an
    // observed-full channel really did hold capacity() messages at the
    // moment our previous send completed — a genuine violation of the
    // run-ahead + 1 provisioning, never a transient artifact.
    AVGPIPE_CHECK(ch.size() < ch.capacity(),
                  "stage " << stage.index << ": steady-state send parked ("
                           << ch.size() << "/" << ch.capacity()
                           << " slots used) — link_capacity() slack violated "
                              "for micro-batch "
                           << instr.micro_batch);
  }
  const bool ok = ch.send(std::move(msg));
  AVGPIPE_CHECK(ok, "stage " << stage.index
                             << ": channel closed while sending (peer "
                                "failure in flight)");
}

AVGPIPE_HOT_PATH
void PipelineRuntime::worker_loop(Stage& stage) {
  while (auto m = stage_start_[stage.index]->recv()) {
    if (tracer_ != nullptr && stage.trace_buf == nullptr) {
      stage.trace_buf = tracer_->create_buffer();
    }
    if (!stage.pinned) {
      // Pin once, on first batch rather than at spawn: the elastic driver
      // installs its slot plan (set_thread_slots) between construction and
      // the first train_batch. No-op unless AVGPIPE_PIN_THREADS is set and
      // the machine has a core per slot.
      pin_current_thread(pin_policy_from_env(), pin_first_slot_ + stage.index,
                         pin_total_slots_);
      stage.pinned = true;
    }
    // Every parallel_for issued from this thread for the rest of the batch
    // (GEMM row-panel fan-out) is capped at this stage's worker share, so K
    // concurrently-running stages cannot oversubscribe the pool.
    PartitionGuard partition(stage_workers_);
    schedule::ScheduleParams params;
    params.kind = kind_;
    params.num_stages = stages_.size();
    params.micro_batches = *m;
    params.num_batches = 1;
    params.advance_num = advance_num_;
    stage.program =
        schedule::make_schedule(params).stages[stage.index].instrs;
    stage.loss_sum = 0;
    stage.micro_batches = *m;
    const long step = step_.load(std::memory_order_acquire);

    // Any exception inside an instruction — a CHECK failure, an injected
    // fault, a model bug — would previously escape the thread and
    // std::terminate the process. Capture it with the stage/instruction
    // context, fail the batch and let every peer unwind over the closed
    // channels instead.
    const schedule::Instr* current = nullptr;
    try {
      begin_prediction(stage, step);
      for (const auto& instr : stage.program) {
        current = &instr;
        run_instr(stage, instr, step);
      }
    } catch (const std::exception& e) {
      if (dynamic_cast<const PeerUnresponsiveError*>(&e) != nullptr) {
        peer_unresponsive_.store(true, std::memory_order_release);
      }
      std::ostringstream msg;
      msg << "stage " << stage.index;
      if (current != nullptr) {
        msg << " [" << schedule::to_string(current->kind) << " b"
            << current->batch << "." << current->micro_batch << "]";
      }
      msg << ": " << e.what();
      fail(msg.str());
      return;  // the worker is dead; the runtime is permanently failed
    }
    if (stage.trace_buf != nullptr) {
      // Spin-vs-park telemetry for this stage's inbound links (the side this
      // thread blocks on). Per-batch deltas; the clamp survives the counters
      // resetting when ensure_channels rebuilds the links between batches.
      std::uint64_t parks = 0, spins = 0;
      const SpscChannel<ActMessage>& act_in =
          stage.index == 0 ? *input_ : *acts_[stage.index - 1];
      parks += act_in.parks();
      spins += act_in.spin_waits();
      if (stage.index + 1 < stages_.size()) {
        parks += grads_[stage.index]->parks();
        spins += grads_[stage.index]->spin_waits();
      }
      const std::uint64_t dp =
          parks >= stage.last_parks ? parks - stage.last_parks : parks;
      const std::uint64_t ds =
          spins >= stage.last_spins ? spins - stage.last_spins : spins;
      stage.last_parks = parks;
      stage.last_spins = spins;
      record_counter(stage, trace::CounterId::kParkCount,
                     static_cast<double>(dp));
      record_counter(stage, trace::CounterId::kSpinCount,
                     static_cast<double>(ds));
    }
    done_->send(static_cast<int>(stage.index));
  }
}

AVGPIPE_HOT_PATH
void PipelineRuntime::run_instr(Stage& stage, const schedule::Instr& instr,
                                long step) {
  if (faults_active_ &&
      faults_->should_kill(static_cast<int>(trace_pipeline_),
                           static_cast<int>(stage.index), step,
                           instr.micro_batch)) {
    // Arbitrary-point crash: die before the instruction runs, leaving any
    // partial activations/gradients of this batch behind. The worker loop
    // flattens this into a failed-batch report; the elastic driver detaches
    // (and, with checkpoints, restores) the pipeline.
    AVGPIPE_THROW("injected worker kill (fault plan): stage "
                  << stage.index << ", step " << step << ", micro-batch "
                  << instr.micro_batch << ", op "
                  << schedule::to_string(instr.kind));
  }
  const double slow =
      faults_active_
          ? faults_->straggler_factor(static_cast<int>(trace_pipeline_),
                                      static_cast<int>(stage.index), step)
          : 1.0;
  const auto w0 = std::chrono::steady_clock::now();
  // gemm() accrues its 2mnk count on the issuing thread even when the
  // blocked kernel fans out, so this delta is the instruction's full matmul
  // work regardless of the stage's worker share.
  const std::uint64_t f0 =
      stage.trace_buf != nullptr ? tensor::thread_flops() : 0;

  switch (instr.kind) {
    case schedule::OpKind::kForward: run_forward(stage, instr, step); break;
    case schedule::OpKind::kBackward: run_backward(stage, instr, step); break;
    case schedule::OpKind::kUpdate: run_update(stage, instr); break;
    case schedule::OpKind::kAllReduce:
      AVGPIPE_THROW("all-reduce in a pipeline stream");
  }

  if (stage.trace_buf != nullptr) {
    const std::uint64_t df = tensor::thread_flops() - f0;
    if (df > 0) {
      record_counter(stage, trace::CounterId::kFlops,
                     static_cast<double>(df));
    }
  }

  if (slow > 1.0) {
    // A straggler runs `slow`x slower: stretch the op by sleeping the
    // missing (slow - 1) share of its measured duration.
    const Seconds t0 = stage.trace_buf ? tracer_->wall_now() : 0;
    fault::sleep_for((slow - 1.0) * elapsed_since(w0));
    record_span(stage, trace::EventKind::kFaultStraggler, instr, t0);
  }
}

void PipelineRuntime::run_forward(Stage& stage, const schedule::Instr& instr,
                                  long step) {
  const bool first = stage.index == 0;
  const bool last = stage.index + 1 == stages_.size();

  SpscChannel<ActMessage>& in_ch = first ? *input_ : *acts_[stage.index - 1];
  // This stage thread is the one consumer of its inbound activation link
  // (the upstream worker — or the driver, for input_ — is the one producer).
  common::RoleGuard in_role(in_ch.consumer_role());
  const Seconds t_wait = stage.trace_buf ? tracer_->wall_now() : 0;
  auto msg = robust_recv(stage, in_ch, "activation");
  record_span(stage, trace::EventKind::kWaitBubble, instr, t_wait);
  record_queue_depth(stage, in_ch.size());
  AVGPIPE_CHECK(msg.has_value(), "activation channel closed mid-batch");
  AVGPIPE_CHECK(msg->micro_batch == instr.micro_batch,
                "stage " << stage.index << " expected micro-batch "
                         << instr.micro_batch << ", got " << msg->micro_batch);

  // The boundary input needs a gradient on every stage but the first.
  const Seconds t0 = stage.trace_buf ? tracer_->wall_now() : 0;
  tensor::Variable in(std::move(msg->payload), /*requires_grad=*/!first);
  tensor::Variable out = stage.module.forward(in);
  Stash stash;
  stash.input = in;
  if (last) {
    tensor::Variable loss_var = loss_(out, msg->targets);
    stage.loss_sum += loss_var.value()[0];
    stash.output = loss_var;
  } else {
    // One producer per outbound activation link: this stage thread.
    common::RoleGuard out_role(acts_[stage.index]->producer_role());
    faulty_send(stage, *acts_[stage.index],
                ActMessage{instr.micro_batch, out.value(),
                           std::move(msg->targets)},
                instr, step, fault::LinkDir::kActivation);
    stash.output = out;
  }
  stage.stash.emplace(instr.micro_batch, std::move(stash));
  stage.peak_stash = std::max(stage.peak_stash, stage.stash.size());
  record_span(stage, trace::EventKind::kForward, instr, t0);
}

void PipelineRuntime::run_backward(Stage& stage,
                                   const schedule::Instr& instr, long step) {
  const bool first = stage.index == 0;
  const bool last = stage.index + 1 == stages_.size();

  auto it = stage.stash.find(instr.micro_batch);
  AVGPIPE_CHECK(it != stage.stash.end(),
                "backward without stashed forward for micro-batch "
                    << instr.micro_batch);
  Stash stash = std::move(it->second);
  stage.stash.erase(it);

  Seconds t0 = stage.trace_buf ? tracer_->wall_now() : 0;
  if (last) {
    stash.output.backward();  // loss scalar, seed = 1
  } else {
    SpscChannel<GradMessage>& grad_ch = *grads_[stage.index];
    // One consumer per inbound gradient link: this stage thread.
    common::RoleGuard grad_role(grad_ch.consumer_role());
    const Seconds t_wait = t0;
    auto grad = robust_recv(stage, grad_ch, "gradient");
    record_span(stage, trace::EventKind::kWaitBubble, instr, t_wait);
    record_queue_depth(stage, grad_ch.size());
    AVGPIPE_CHECK(grad.has_value(), "gradient channel closed mid-batch");
    AVGPIPE_CHECK(grad->micro_batch == instr.micro_batch,
                  "stage " << stage.index << " expected gradient "
                           << instr.micro_batch << ", got "
                           << grad->micro_batch);
    if (stage.trace_buf) t0 = tracer_->wall_now();
    stash.output.backward(grad->payload);
  }
  if (!first) {
    // Ownership transfer, not a clone: the stash entry dies at end of scope
    // and the receiver's accumulate_grad deep-copies the seed into its own
    // grad buffer on first contribution, so the storage is never shared
    // across the link after the send. One producer per outbound gradient
    // link: this stage thread.
    common::RoleGuard out_role(grads_[stage.index - 1]->producer_role());
    faulty_send(stage, *grads_[stage.index - 1],
                GradMessage{instr.micro_batch,
                            std::move(stash.input.mutable_grad())},
                instr, step, fault::LinkDir::kGradient);
  }
  record_span(stage, trace::EventKind::kBackward, instr, t0);
}

void PipelineRuntime::begin_prediction(Stage& stage, long step) {
  if (!prediction_active_) return;
  const auto& params = stage.optimizer->params();
  if (stage.pred_true.empty()) {
    stage.pred_true.reserve(params.size());
    for (const auto& p : params) stage.pred_true.push_back(p.value().clone());
  } else {
    for (std::size_t i = 0; i < params.size(); ++i) {
      stage.pred_true[i].copy_from(params[i].value());
    }
  }
  // Sized independently of pred_true: import_stage_state restores Δ̂ before
  // this stage has ever predicted (pred_true still empty).
  if (stage.pred_delta.empty()) {
    stage.pred_delta.reserve(params.size());
    for (const auto& p : params) {
      stage.pred_delta.emplace_back(p.value().shape());
    }
  }
  stage.pred_predicted = true;
  // Nothing to extrapolate from until the first realised update: the batch
  // then runs on the true weights (and seeds Δ̂ in run_update).
  if (!stage.pred_have_delta) return;
  const Seconds t0 = stage.trace_buf ? tracer_->wall_now() : 0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const_cast<tensor::Variable&>(params[i]).value().axpy_(
        prediction_.lookahead, stage.pred_delta[i]);
  }
  if (stage.trace_buf != nullptr) {
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::kWeightPrediction;
    ev.pipeline = trace_pipeline_;
    ev.stage = static_cast<std::uint32_t>(stage.index);
    ev.batch = static_cast<std::int32_t>(step);
    ev.t_begin = t0;
    ev.t_end = tracer_->wall_now();
    stage.trace_buf->record(ev);
  }
}

void PipelineRuntime::run_update(Stage& stage, const schedule::Instr& instr) {
  // Accumulated micro-batch gradients -> batch-mean gradient.
  const Seconds t0 = stage.trace_buf ? tracer_->wall_now() : 0;
  const auto& params = stage.optimizer->params();
  const bool predicted = prediction_active_ && stage.pred_predicted;
  if (predicted) {
    // The batch's gradients were computed at the predicted weights ŵ; the
    // update itself lands on the true weights stashed at batch start (XPipe
    // semantics: predict for compute, correct on apply).
    for (std::size_t i = 0; i < params.size(); ++i) {
      const_cast<tensor::Variable&>(params[i]).value().copy_from(
          stage.pred_true[i]);
    }
  }
  const double inv_m = 1.0 / static_cast<double>(stage.micro_batches);
  for (auto& p : params) {
    const_cast<tensor::Variable&>(p).mutable_grad().scale_(inv_m);
  }
  stage.optimizer->step();
  stage.optimizer->zero_grad();
  if (predicted) {
    // Fold the realised update w_new − w_old into Δ̂ for the next prediction.
    const double beta = stage.pred_have_delta ? prediction_.beta : 0.0;
    for (std::size_t i = 0; i < params.size(); ++i) {
      auto dv = stage.pred_delta[i].data();
      const auto wv = params[i].value().data();
      const auto ov = stage.pred_true[i].data();
      for (std::size_t j = 0; j < dv.size(); ++j) {
        dv[j] = beta * dv[j] + (1.0 - beta) * (wv[j] - ov[j]);
      }
    }
    stage.pred_have_delta = true;
    stage.pred_predicted = false;
  }
  record_span(stage, trace::EventKind::kUpdate, instr, t0);
}

BatchStats PipelineRuntime::train_batch(const data::Batch& batch,
                                        std::size_t micro_batches) {
  AVGPIPE_CHECK(!stopping_, "runtime already stopped");
  if (failed()) {
    AVGPIPE_THROW("pipeline permanently failed: " << failure_message());
  }
  auto micro = data::slice_micro_batches(batch, micro_batches);
  step_.fetch_add(1, std::memory_order_release);
  // Safe here: no batch is in flight, so every payload channel is empty and
  // every worker is parked on its start channel.
  ensure_channels(micro_batches);

  for (auto& ch : stage_start_) {
    if (!ch->send(micro_batches)) {
      AVGPIPE_THROW("pipeline failed: " << failure_message());
    }
  }
  {
    // The driver thread is the one producer of the stage-0 feed link (no
    // batch is in flight, so no other thread touches input_'s send side).
    common::RoleGuard feed_role(input_->producer_role());
    for (std::size_t i = 0; i < micro.size(); ++i) {
      // A closed (failed) channel drops the message; the failure surfaces at
      // the done barrier below.
      input_->send(ActMessage{static_cast<int>(i), std::move(micro[i].inputs),
                              std::move(micro[i].targets)});
    }
  }
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    auto d = done_->recv();
    if (!d.has_value()) {
      const std::string why = failure_message();
      AVGPIPE_THROW("pipeline failed: "
                    << (why.empty() ? "done channel closed mid-batch" : why));
    }
  }

  BatchStats stats;
  stats.micro_batches = micro_batches;
  stats.loss = stages_.back()->loss_sum /
               static_cast<double>(micro_batches);
  return stats;
}

std::vector<StageState> PipelineRuntime::export_stage_state() const {
  std::vector<StageState> out;
  out.reserve(stages_.size());
  for (const auto& stage : stages_) {
    StageState s;
    s.optimizer = stage->optimizer->export_state();
    s.pred_delta.reserve(stage->pred_delta.size());
    for (const auto& d : stage->pred_delta) s.pred_delta.push_back(d.clone());
    s.pred_have_delta = stage->pred_have_delta;
    out.push_back(std::move(s));
  }
  return out;
}

void PipelineRuntime::import_stage_state(const std::vector<StageState>& state) {
  AVGPIPE_CHECK(state.size() == stages_.size(),
                "stage-state count " << state.size() << " != " << stages_.size()
                                     << " stages (partitioning mismatch)");
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    Stage& stage = *stages_[i];
    stage.optimizer->import_state(state[i].optimizer);
    // The EMA buffers are lazily sized by begin_prediction; a restore before
    // the first predicted batch recreates them from the snapshot instead.
    stage.pred_delta.clear();
    stage.pred_delta.reserve(state[i].pred_delta.size());
    for (const auto& d : state[i].pred_delta) {
      stage.pred_delta.push_back(d.clone());
    }
    stage.pred_have_delta = state[i].pred_have_delta;
    stage.pred_predicted = false;
  }
}

std::size_t PipelineRuntime::peak_stash(std::size_t stage) const {
  AVGPIPE_CHECK(stage < stages_.size(), "stage out of range");
  return stages_[stage]->peak_stash;
}

}  // namespace avgpipe::runtime
