#include "runtime/pipeline_runtime.hpp"

#include "tensor/ops.hpp"

namespace avgpipe::runtime {

namespace {
/// Generous capacity so bounded back-pressure can never deadlock the
/// act/grad cycle between adjacent stages.
constexpr std::size_t kChannelCapacity = 4096;
}  // namespace

LossFn cross_entropy_loss() {
  return [](const tensor::Variable& logits, const std::vector<int>& targets) {
    // Language-model heads emit [B,S,V]; flatten to rows for the loss.
    if (logits.shape().size() == 3) {
      const auto& s = logits.shape();
      return tensor::softmax_cross_entropy(
          tensor::reshape(logits, {s[0] * s[1], s[2]}), targets);
    }
    return tensor::softmax_cross_entropy(logits, targets);
  };
}

PipelineRuntime::PipelineRuntime(nn::Sequential model,
                                 std::vector<std::size_t> boundaries,
                                 const OptimizerFactory& make_optimizer,
                                 LossFn loss, schedule::Kind kind,
                                 std::size_t advance_num)
    : model_(std::move(model)),
      loss_(std::move(loss)),
      kind_(kind),
      advance_num_(advance_num) {
  AVGPIPE_CHECK(kind_ == schedule::Kind::kAfab ||
                    kind_ == schedule::Kind::kOneFOneB ||
                    kind_ == schedule::Kind::kAdvanceForward,
                "runtime supports the flushed schedules; got "
                    << schedule::to_string(kind_));
  auto views = model_.partition(boundaries);
  const std::size_t k = views.size();
  if (advance_num_ == 0) advance_num_ = k - 1;
  // Validate here rather than in the worker threads: a bad advance count
  // must surface as an exception to the caller, not terminate a worker.
  AVGPIPE_CHECK(kind_ != schedule::Kind::kAdvanceForward ||
                    advance_num_ + 1 >= k,
                "advance_num " << advance_num_ << " below the 1F1B minimum "
                               << k - 1);

  input_ = std::make_unique<Channel<ActMessage>>(kChannelCapacity);
  done_ = std::make_unique<Channel<int>>(kChannelCapacity);
  for (std::size_t i = 0; i + 1 < k; ++i) {
    acts_.push_back(std::make_unique<Channel<ActMessage>>(kChannelCapacity));
    grads_.push_back(std::make_unique<Channel<GradMessage>>(kChannelCapacity));
  }

  for (std::size_t i = 0; i < k; ++i) {
    auto stage = std::make_unique<Stage>();
    stage->index = i;
    stage->module = std::move(views[i]);
    stage->optimizer = make_optimizer(stage->module.parameters());
    stage_start_.push_back(std::make_unique<Channel<std::size_t>>(4));
    stages_.push_back(std::move(stage));
  }
  for (auto& stage : stages_) {
    Stage* s = stage.get();
    s->thread = std::thread([this, s] { worker_loop(*s); });
  }
}

PipelineRuntime::~PipelineRuntime() {
  for (auto& ch : stage_start_) ch->close();
  input_->close();
  for (auto& ch : acts_) ch->close();
  for (auto& ch : grads_) ch->close();
  done_->close();
  for (auto& stage : stages_) {
    if (stage->thread.joinable()) stage->thread.join();
  }
}

void PipelineRuntime::set_tracer(trace::Tracer* tracer,
                                 std::size_t pipeline_index) {
  tracer_ = tracer;
  trace_pipeline_ = static_cast<std::uint32_t>(pipeline_index);
}

void PipelineRuntime::record_span(Stage& stage, trace::EventKind kind,
                                  const schedule::Instr& instr,
                                  Seconds t_begin) {
  if (stage.trace_buf == nullptr) return;
  trace::TraceEvent ev;
  ev.kind = kind;
  ev.pipeline = trace_pipeline_;
  ev.stage = static_cast<std::uint32_t>(stage.index);
  ev.batch = instr.batch;
  ev.micro_batch = instr.micro_batch;
  ev.t_begin = t_begin;
  ev.t_end = tracer_->wall_now();
  stage.trace_buf->record(ev);
}

void PipelineRuntime::record_queue_depth(Stage& stage, std::size_t depth) {
  if (stage.trace_buf == nullptr) return;
  trace::TraceEvent ev;
  ev.kind = trace::EventKind::kCounter;
  ev.counter = trace::CounterId::kQueueDepth;
  ev.pipeline = trace_pipeline_;
  ev.stage = static_cast<std::uint32_t>(stage.index);
  ev.t_begin = ev.t_end = tracer_->wall_now();
  ev.value = static_cast<double>(depth);
  stage.trace_buf->record(ev);
}

void PipelineRuntime::worker_loop(Stage& stage) {
  while (auto m = stage_start_[stage.index]->recv()) {
    if (tracer_ != nullptr && stage.trace_buf == nullptr) {
      stage.trace_buf = tracer_->create_buffer();
    }
    schedule::ScheduleParams params;
    params.kind = kind_;
    params.num_stages = stages_.size();
    params.micro_batches = *m;
    params.num_batches = 1;
    params.advance_num = advance_num_;
    stage.program =
        schedule::make_schedule(params).stages[stage.index].instrs;
    stage.loss_sum = 0;
    stage.micro_batches = *m;

    for (const auto& instr : stage.program) {
      switch (instr.kind) {
        case schedule::OpKind::kForward: run_forward(stage, instr); break;
        case schedule::OpKind::kBackward: run_backward(stage, instr); break;
        case schedule::OpKind::kUpdate: run_update(stage, instr); break;
        case schedule::OpKind::kAllReduce:
          AVGPIPE_THROW("all-reduce in a pipeline stream");
      }
    }
    done_->send(static_cast<int>(stage.index));
  }
}

void PipelineRuntime::run_forward(Stage& stage, const schedule::Instr& instr) {
  const bool first = stage.index == 0;
  const bool last = stage.index + 1 == stages_.size();

  Channel<ActMessage>& in_ch = first ? *input_ : *acts_[stage.index - 1];
  const Seconds t_wait = stage.trace_buf ? tracer_->wall_now() : 0;
  auto msg = in_ch.recv();
  record_span(stage, trace::EventKind::kWaitBubble, instr, t_wait);
  record_queue_depth(stage, in_ch.size());
  AVGPIPE_CHECK(msg.has_value(), "activation channel closed mid-batch");
  AVGPIPE_CHECK(msg->micro_batch == instr.micro_batch,
                "stage " << stage.index << " expected micro-batch "
                         << instr.micro_batch << ", got " << msg->micro_batch);

  // The boundary input needs a gradient on every stage but the first.
  const Seconds t0 = stage.trace_buf ? tracer_->wall_now() : 0;
  tensor::Variable in(std::move(msg->payload), /*requires_grad=*/!first);
  tensor::Variable out = stage.module.forward(in);
  Stash stash;
  stash.input = in;
  if (last) {
    tensor::Variable loss_var = loss_(out, msg->targets);
    stage.loss_sum += loss_var.value()[0];
    stash.output = loss_var;
  } else {
    acts_[stage.index]->send(
        ActMessage{instr.micro_batch, out.value(), std::move(msg->targets)});
    stash.output = out;
  }
  stage.stash.emplace(instr.micro_batch, std::move(stash));
  stage.peak_stash = std::max(stage.peak_stash, stage.stash.size());
  record_span(stage, trace::EventKind::kForward, instr, t0);
}

void PipelineRuntime::run_backward(Stage& stage,
                                   const schedule::Instr& instr) {
  const bool first = stage.index == 0;
  const bool last = stage.index + 1 == stages_.size();

  auto it = stage.stash.find(instr.micro_batch);
  AVGPIPE_CHECK(it != stage.stash.end(),
                "backward without stashed forward for micro-batch "
                    << instr.micro_batch);
  Stash stash = std::move(it->second);
  stage.stash.erase(it);

  Seconds t0 = stage.trace_buf ? tracer_->wall_now() : 0;
  if (last) {
    stash.output.backward();  // loss scalar, seed = 1
  } else {
    Channel<GradMessage>& grad_ch = *grads_[stage.index];
    const Seconds t_wait = t0;
    auto grad = grad_ch.recv();
    record_span(stage, trace::EventKind::kWaitBubble, instr, t_wait);
    record_queue_depth(stage, grad_ch.size());
    AVGPIPE_CHECK(grad.has_value(), "gradient channel closed mid-batch");
    AVGPIPE_CHECK(grad->micro_batch == instr.micro_batch,
                  "stage " << stage.index << " expected gradient "
                           << instr.micro_batch << ", got "
                           << grad->micro_batch);
    if (stage.trace_buf) t0 = tracer_->wall_now();
    stash.output.backward(grad->payload);
  }
  if (!first) {
    grads_[stage.index - 1]->send(
        GradMessage{instr.micro_batch, stash.input.grad().clone()});
  }
  record_span(stage, trace::EventKind::kBackward, instr, t0);
}

void PipelineRuntime::run_update(Stage& stage, const schedule::Instr& instr) {
  // Accumulated micro-batch gradients -> batch-mean gradient.
  const Seconds t0 = stage.trace_buf ? tracer_->wall_now() : 0;
  const double inv_m = 1.0 / static_cast<double>(stage.micro_batches);
  for (auto& p : stage.optimizer->params()) {
    const_cast<tensor::Variable&>(p).mutable_grad().scale_(inv_m);
  }
  stage.optimizer->step();
  stage.optimizer->zero_grad();
  record_span(stage, trace::EventKind::kUpdate, instr, t0);
}

BatchStats PipelineRuntime::train_batch(const data::Batch& batch,
                                        std::size_t micro_batches) {
  AVGPIPE_CHECK(!stopping_, "runtime already stopped");
  auto micro = data::slice_micro_batches(batch, micro_batches);

  for (auto& ch : stage_start_) {
    const bool ok = ch->send(micro_batches);
    AVGPIPE_CHECK(ok, "stage start channel closed");
  }
  for (std::size_t i = 0; i < micro.size(); ++i) {
    input_->send(ActMessage{static_cast<int>(i), std::move(micro[i].inputs),
                            std::move(micro[i].targets)});
  }
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    auto d = done_->recv();
    AVGPIPE_CHECK(d.has_value(), "done channel closed mid-batch");
  }

  BatchStats stats;
  stats.micro_batches = micro_batches;
  stats.loss = stages_.back()->loss_sum /
               static_cast<double>(micro_batches);
  return stats;
}

std::size_t PipelineRuntime::peak_stash(std::size_t stage) const {
  AVGPIPE_CHECK(stage < stages_.size(), "stage out of range");
  return stages_[stage]->peak_stash;
}

}  // namespace avgpipe::runtime
