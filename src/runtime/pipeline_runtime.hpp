#pragma once

/// \file pipeline_runtime.hpp
/// Threaded pipeline-parallel training over real tensors.
///
/// One worker thread per stage (the simulated "GPU process"), connected by
/// bounded channels carrying boundary activations forward and boundary
/// gradients backward — the message-passing structure of Figure 1. Each
/// worker executes its stage's instruction stream from schedule/ verbatim,
/// so AFAB, 1F1B and advance-forward orderings are all runnable on real
/// models and must produce identical numerics (a property the tests check:
/// the schedule only changes *when* work happens, never *what* is computed).
///
/// Gradients are accumulated over the micro-batches of a batch and applied
/// once per batch by per-stage optimizers, which reproduces exactly the
/// update of non-pipelined training on the full batch.

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/annotations.hpp"
#include "common/queue.hpp"
#include "data/dataset.hpp"
#include "fault/shim.hpp"
#include "nn/sequential.hpp"
#include "optim/optimizer.hpp"
#include "schedule/schedule.hpp"
#include "trace/trace.hpp"

namespace avgpipe::runtime {

using OptimizerFactory = std::function<std::unique_ptr<optim::Optimizer>(
    std::vector<tensor::Variable> params)>;

/// Loss head applied at the last stage: (logits, targets) -> scalar loss.
using LossFn = std::function<tensor::Variable(const tensor::Variable& logits,
                                              const std::vector<int>& targets)>;

struct BatchStats {
  double loss = 0;          ///< mean loss over the batch
  std::size_t micro_batches = 0;
};

/// XPipe-style weight prediction (Guan et al. 2019), per stage and batch-
/// granular: at batch start each stage runs its forward/backward on predicted
/// weights ŵ = w + lookahead·Δ̂, where Δ̂ is an EMA (weight `beta` on the old
/// value) of the realised per-batch optimizer updates; the update itself is
/// applied to the true weights `w`. lookahead = 0 disables the hook entirely
/// (bit-identical to no prediction).
struct PredictionConfig {
  double lookahead = 0.0;
  double beta = 0.0;
};

/// Durable per-stage state for the checkpoint layer (`src/ckpt`): the stage
/// optimizer's snapshot plus the XPipe weight-prediction EMA. `pred_true` is
/// deliberately absent — it only holds meaning mid-batch, and stage state may
/// only be captured/restored between batches.
struct StageState {
  optim::OptimizerState optimizer;
  std::vector<tensor::Tensor> pred_delta;
  bool pred_have_delta = false;
};

/// Thrown by the resilient-recv path when a peer stays silent past the
/// deadline. A distinct type so the elastic driver can tell "this pipeline
/// hung" (detach + restore from checkpoint) from a programming error.
class PeerUnresponsiveError : public Error {
 public:
  using Error::Error;
};

/// Pipeline over a partitioned Sequential model.
class PipelineRuntime {
 public:
  /// \param model the full model; stage views share its parameters.
  /// \param boundaries first layer index of stages 1..K-1 (see
  ///        Sequential::partition).
  /// \param make_optimizer constructs each stage's local optimizer.
  /// \param kind one of kAfab / kOneFOneB / kAdvanceForward.
  /// \param advance_num AFP advance count (0 = derive K-1).
  PipelineRuntime(nn::Sequential model, std::vector<std::size_t> boundaries,
                  const OptimizerFactory& make_optimizer, LossFn loss,
                  schedule::Kind kind = schedule::Kind::kOneFOneB,
                  std::size_t advance_num = 0);
  ~PipelineRuntime();

  PipelineRuntime(const PipelineRuntime&) = delete;
  PipelineRuntime& operator=(const PipelineRuntime&) = delete;

  /// Train on one batch sliced into `micro_batches`; blocks until the
  /// optimizer step of every stage has been applied.
  ///
  /// Throws avgpipe::Error if any stage worker fails (uncaught exception,
  /// injected fault, or unresponsive peer); the message carries the failing
  /// stage index and instruction. A failed runtime is permanently dead:
  /// every later train_batch rethrows the stored failure.
  BatchStats train_batch(const data::Batch& batch, std::size_t micro_batches);

  /// Whether a stage worker has failed (see train_batch).
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  /// First recorded failure, empty if none.
  std::string failure_message() const;
  /// Whether the first failure was a peer-unresponsiveness deadline (the
  /// robust_recv escalation signal) rather than a hard error.
  bool peer_unresponsive() const {
    return peer_unresponsive_.load(std::memory_order_acquire);
  }

  /// Snapshot the durable per-stage state (optimizer slots + prediction
  /// EMA), ordered by stage index. Only legal between train_batch calls,
  /// when every worker is parked on its start channel and the driver owns
  /// the stage structs.
  std::vector<StageState> export_stage_state() const;
  /// Restore a snapshot from a same-partitioning runtime. Same legality
  /// window as export_stage_state. Throws avgpipe::Error on a stage-count or
  /// shape mismatch.
  void import_stage_state(const std::vector<StageState>& state);

  /// The underlying full model (parameters shared with the stages). Only
  /// safe to use between train_batch calls.
  nn::Sequential& model() { return model_; }

  std::size_t num_stages() const { return stages_.size(); }

  /// Peak number of stashed activations observed on stage k (for memory
  /// assertions mirroring the paper's stash bounds).
  std::size_t peak_stash(std::size_t stage) const;

  /// Attach a tracer: stage workers then record wall-clock compute spans,
  /// recv-wait spans and channel-occupancy counters, tagged with
  /// `pipeline_index` (the replica number under core::AvgPipe). Must be
  /// called before the first train_batch; the tracer must outlive this
  /// runtime.
  void set_tracer(trace::Tracer* tracer, std::size_t pipeline_index = 0);

  /// Attach a fault plan (nullptr to clear): worker loops then consult its
  /// step-windowed records — straggler sleeps after ops, deterministic send
  /// drops with retry penalties, extra send latency — and recvs switch to
  /// timeout + exponential backoff so a silent peer is eventually declared
  /// dead. Must be called before the first train_batch; the plan must
  /// outlive this runtime. Defaults to fault::env_plan(). A null or empty
  /// plan leaves every hot path branch-free.
  void set_faults(const fault::FaultPlan* plan);
  const fault::FaultPlan* faults() const { return faults_; }

  /// Enable XPipe-style weight prediction (see PredictionConfig). Must be
  /// called before the first train_batch; prediction state is worker-thread-
  /// local per stage, so no cross-thread synchronisation is added.
  void set_weight_prediction(const PredictionConfig& config);
  const PredictionConfig& weight_prediction() const { return prediction_; }

  /// Per-stage-thread share of the global kernel pool (PartitionGuard): each
  /// stage worker fans its tensor kernels out over at most `workers` threads
  /// (itself included), so K stages never oversubscribe the pool. 0 keeps
  /// the construction-time default (AVGPIPE_STAGE_THREADS, else a fair split
  /// over this runtime's stages). Must be called before the first
  /// train_batch; workers read it after the start-channel recv.
  void set_stage_workers(std::size_t workers);
  std::size_t stage_workers() const { return stage_workers_; }

  /// Core-pinning slot layout for this runtime's stage threads under
  /// AVGPIPE_PIN_THREADS: stage k pins to slot `first_slot + k` of
  /// `total_slots`. Defaults to [0, num_stages) — core::AvgPipe widens the
  /// layout across its replicas and sync threads. Must be called before the
  /// first train_batch.
  void set_thread_slots(std::size_t first_slot, std::size_t total_slots);

  /// Bounded per-link capacity of the stage-to-stage channels for a batch of
  /// `micro_batches` (schedule-derived: the producer's maximum forward
  /// run-ahead over its consumer, plus one slot of slack). Overridable via
  /// AVGPIPE_CHANNEL_CAPACITY for experiments. Exposed for tests.
  std::size_t link_capacity(std::size_t micro_batches) const;

 private:
  /// Inter-stage messages are move-only: the send path transfers buffer
  /// ownership (activation values and boundary gradients are shared-storage
  /// tensors; a deep copy would double the steady-state traffic). The
  /// deleted copy operations make an accidental clone a compile error.
  struct ActMessage {
    int micro_batch = -1;
    tensor::Tensor payload;
    std::vector<int> targets;  ///< forwarded to the loss head

    ActMessage() = default;
    ActMessage(int mb, tensor::Tensor p, std::vector<int> t)
        : micro_batch(mb), payload(std::move(p)), targets(std::move(t)) {}
    ActMessage(ActMessage&&) = default;
    ActMessage& operator=(ActMessage&&) = default;
    ActMessage(const ActMessage&) = delete;
    ActMessage& operator=(const ActMessage&) = delete;
  };
  struct GradMessage {
    int micro_batch = -1;
    tensor::Tensor payload;

    GradMessage() = default;
    GradMessage(int mb, tensor::Tensor p)
        : micro_batch(mb), payload(std::move(p)) {}
    GradMessage(GradMessage&&) = default;
    GradMessage& operator=(GradMessage&&) = default;
    GradMessage(const GradMessage&) = delete;
    GradMessage& operator=(const GradMessage&) = delete;
  };
  struct Stash {
    tensor::Variable input;   ///< boundary input (grad receiver)
    tensor::Variable output;  ///< boundary output or loss
  };

  struct Stage;
  void worker_loop(Stage& stage);
  void run_instr(Stage& stage, const schedule::Instr& instr, long step);
  void run_forward(Stage& stage, const schedule::Instr& instr, long step);
  void run_backward(Stage& stage, const schedule::Instr& instr, long step);
  void run_update(Stage& stage, const schedule::Instr& instr);
  /// Batch start under weight prediction: stash the true weights and jump to
  /// ŵ = w + lookahead·Δ̂ (no-op before the first realised update exists).
  void begin_prediction(Stage& stage, long step);
  void record_span(Stage& stage, trace::EventKind kind,
                   const schedule::Instr& instr, Seconds t_begin);
  void record_counter(Stage& stage, trace::CounterId id, double value);
  void record_queue_depth(Stage& stage, std::size_t depth);

  /// Record the first failure, close every channel (peers unwind on the
  /// closed-channel checks) and mark the runtime dead.
  void fail(const std::string& what);
  void close_all();

  /// (Re)build the inter-stage channels so every link can hold a batch of
  /// `micro_batches` without deadlocking on back-pressure. Only legal when
  /// no batch is in flight (all payload channels empty, workers parked on
  /// their start channels); grows capacities monotonically.
  void ensure_channels(std::size_t micro_batches);

  /// recv with fault-plan resilience: timeout + exponential backoff, a
  /// kRecvRetry counter per timeout, and an overall deadline after which the
  /// peer is declared unresponsive (throws). Plain blocking recv when no
  /// plan is active. Templated over the channel type (MPMC Channel or the
  /// SPSC stage links), which share the recv/recv_for surface — the SPSC
  /// consumer-role requirement cannot be spelled generically over both, so
  /// the definition opts out of the analysis (allowlisted in
  /// tools/lint_allowlist.json); callers assert the role with a RoleGuard.
  template <typename Ch>
  auto robust_recv(Stage& stage, Ch& ch, const char* what)
      -> decltype(ch.recv());
  /// send through the drop/delay shim; throws after too many consecutive
  /// injected drops (link declared dead) or when the channel is closed.
  /// Same analysis opt-out as robust_recv (producer-role side).
  template <typename Ch, typename T>
  void faulty_send(Stage& stage, Ch& ch, T msg, const schedule::Instr& instr,
                   long step, fault::LinkDir dir);

  nn::Sequential model_;
  LossFn loss_;
  schedule::Kind kind_;
  std::size_t advance_num_;

  struct Stage {
    std::size_t index = 0;
    nn::Sequential module;  // view sharing parameters with model_
    std::unique_ptr<optim::Optimizer> optimizer;
    std::vector<schedule::Instr> program;  // one batch worth of instrs
    std::unordered_map<int, Stash> stash;
    std::size_t peak_stash = 0;
    double loss_sum = 0;  // last stage only
    std::size_t micro_batches = 0;
    trace::TraceBuffer* trace_buf = nullptr;  // worker-owned, lazily created
    // Weight-prediction state (worker-thread-local, touched only between a
    // start-channel recv and the done send): the stashed true weights for
    // the in-flight batch, and the EMA of realised per-batch updates.
    std::vector<tensor::Tensor> pred_true;
    std::vector<tensor::Tensor> pred_delta;
    bool pred_have_delta = false;
    bool pred_predicted = false;  ///< this batch runs on predicted weights
    // Perf-counter state (worker-thread-local): whether this thread has been
    // pinned, and the last sampled readings of the inbound links' slow-path
    // counters (per-batch deltas become kParkCount/kSpinCount samples).
    bool pinned = false;
    std::uint64_t last_parks = 0;
    std::uint64_t last_spins = 0;
    std::thread thread;
  };
  std::vector<std::unique_ptr<Stage>> stages_;

  // Channels: acts_[k] carries stage k -> k+1, grads_[k] carries k+1 -> k.
  // Every payload link is strictly single-producer/single-consumer (one
  // upstream worker, one downstream worker; input_ is driver -> stage 0),
  // so they use the lock-free SPSC specialization. Capacities are derived
  // from the schedule in ensure_channels(), not a blanket constant.
  std::vector<std::unique_ptr<SpscChannel<ActMessage>>> acts_;
  std::vector<std::unique_ptr<SpscChannel<GradMessage>>> grads_;
  std::unique_ptr<SpscChannel<ActMessage>> input_;  // feeds stage 0
  // Per-batch coordination (done_ is many-producers -> driver, so MPMC).
  std::unique_ptr<Channel<int>> done_;  // stages report batch done
  std::vector<std::unique_ptr<Channel<std::size_t>>> stage_start_;
  std::size_t channel_micro_batches_ = 0;  ///< capacity ensure_channels saw
  std::size_t capacity_override_ = 0;      ///< AVGPIPE_CHANNEL_CAPACITY
  /// Assert on every stage-link send that the "+1 slack" holds (a
  /// steady-state send must never find its channel full). Debug default,
  /// AVGPIPE_ASSERT_CHANNEL_SLACK override; disarmed under a capacity
  /// override and skipped while a fault plan is active (a crashed peer
  /// legitimately leaves links full).
  bool assert_link_slack_ = false;
  bool stopping_ = false;

  // Tracing (optional): written before the first batch, read by workers
  // after a start-channel recv, so the channel provides the ordering.
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t trace_pipeline_ = 0;

  // Weight prediction (optional): written before the first batch, read by
  // workers after a start-channel recv (channel provides the ordering).
  PredictionConfig prediction_;
  bool prediction_active_ = false;

  // Intra-stage parallelism + thread placement: written before the first
  // batch, read by workers after a start-channel recv (channel provides the
  // ordering, same contract as tracer_/prediction_).
  std::size_t stage_workers_ = 1;
  std::size_t pin_first_slot_ = 0;
  std::size_t pin_total_slots_ = 0;

  // Fault injection (optional) and failure state. `step_` is the batch
  // index, bumped by train_batch before dispatch; workers read it after the
  // start-channel recv, so the channel again provides the ordering.
  const fault::FaultPlan* faults_ = nullptr;
  bool faults_active_ = false;
  std::atomic<long> step_{-1};
  std::atomic<bool> failed_{false};
  std::atomic<bool> peer_unresponsive_{false};
  mutable common::Mutex failure_mutex_;
  std::string failure_ GUARDED_BY(failure_mutex_);
};

/// Convenience: mean softmax cross-entropy loss head.
LossFn cross_entropy_loss();

}  // namespace avgpipe::runtime
