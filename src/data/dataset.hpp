#pragma once

/// \file dataset.hpp
/// Batching primitives and the dataset interface for the real-training path.
///
/// A `Batch` carries inputs as a tensor plus integer targets; pipeline
/// parallelism slices each batch into micro-batches along dim 0
/// (`slice_micro_batches`), exactly as the paper's Figure 1 depicts.

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace avgpipe::data {

using tensor::Tensor;

struct Batch {
  Tensor inputs;              ///< [B, ...] — features or token ids
  std::vector<int> targets;   ///< classification: size B; LM: size B*S

  std::size_t batch_size() const {
    return inputs.ndim() > 0 ? inputs.dim(0) : 0;
  }
};

/// Split a batch into `m` micro-batches along dim 0. The first
/// `B mod m` micro-batches get one extra sample, so sizes differ by at most
/// one; `m` must not exceed the batch size.
std::vector<Batch> slice_micro_batches(const Batch& batch, std::size_t m);

/// Abstract dataset of indexable samples.
class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual std::size_t size() const = 0;
  /// Materialise a batch for the given sample indices.
  virtual Batch make_batch(const std::vector<std::size_t>& indices) const = 0;
};

/// Epoch iterator: shuffles sample indices each epoch (deterministic in the
/// seed) and yields fixed-size batches, dropping the trailing remainder.
class DataLoader {
 public:
  DataLoader(const Dataset& dataset, std::size_t batch_size,
             std::uint64_t seed);

  std::size_t batches_per_epoch() const;
  /// Batch `i` of epoch `epoch`; reshuffles when the epoch changes.
  Batch batch(std::size_t epoch, std::size_t i);

 private:
  const Dataset& dataset_;
  std::size_t batch_size_;
  std::uint64_t seed_;
  std::size_t shuffled_epoch_ = static_cast<std::size_t>(-1);
  std::vector<std::size_t> order_;
};

}  // namespace avgpipe::data
