#include "data/synthetic.hpp"

#include <cmath>

#include "common/check.hpp"

namespace avgpipe::data {

// -- SyntheticFeatures -----------------------------------------------------------

SyntheticFeatures::SyntheticFeatures(std::size_t n, std::size_t dim,
                                     std::size_t classes, std::uint64_t seed,
                                     double noise)
    : n_(n), dim_(dim), classes_(classes), seed_(seed), noise_(noise) {
  AVGPIPE_CHECK(classes >= 2, "need at least two classes");
  Rng rng(seed);
  centroids_.resize(classes * dim);
  for (auto& c : centroids_) c = rng.normal() * 2.0;
}

Batch SyntheticFeatures::make_batch(
    const std::vector<std::size_t>& indices) const {
  Tensor inputs({indices.size(), dim_});
  std::vector<int> targets(indices.size());
  auto iv = inputs.data();
  for (std::size_t r = 0; r < indices.size(); ++r) {
    Rng rng(seed_ ^ (0xABCD1234ull + indices[r] * 0x9E3779B97F4A7C15ull));
    const std::size_t cls = indices[r] % classes_;
    targets[r] = static_cast<int>(cls);
    for (std::size_t c = 0; c < dim_; ++c) {
      iv[r * dim_ + c] = centroids_[cls * dim_ + c] + rng.normal() * noise_;
    }
  }
  return Batch{std::move(inputs), std::move(targets)};
}

// -- SyntheticSeqClassification -----------------------------------------------------

SyntheticSeqClassification::SyntheticSeqClassification(
    std::size_t n, std::size_t vocab, std::size_t seq_len, std::size_t classes,
    std::uint64_t seed, double signal)
    : n_(n),
      vocab_(vocab),
      seq_len_(seq_len),
      classes_(classes),
      seed_(seed),
      signal_(signal) {
  AVGPIPE_CHECK(vocab >= classes * 2, "vocab too small for class buckets");
}

int SyntheticSeqClassification::sample_token(Rng& rng, std::size_t cls) const {
  // Each class owns a contiguous bucket of vocab/classes tokens; with
  // probability `signal_` the token comes from the bucket, else uniform.
  const std::size_t bucket = vocab_ / classes_;
  if (rng.bernoulli(signal_)) {
    return static_cast<int>(cls * bucket +
                            static_cast<std::size_t>(
                                rng.uniform_int(0, static_cast<std::int64_t>(
                                                        bucket - 1))));
  }
  return static_cast<int>(
      rng.uniform_int(0, static_cast<std::int64_t>(vocab_ - 1)));
}

Batch SyntheticSeqClassification::make_batch(
    const std::vector<std::size_t>& indices) const {
  Tensor inputs({indices.size(), seq_len_});
  std::vector<int> targets(indices.size());
  auto iv = inputs.data();
  for (std::size_t r = 0; r < indices.size(); ++r) {
    Rng rng(seed_ ^ (0x5151AAAAull + indices[r] * 0x9E3779B97F4A7C15ull));
    const std::size_t cls = indices[r] % classes_;
    targets[r] = static_cast<int>(cls);
    for (std::size_t t = 0; t < seq_len_; ++t) {
      iv[r * seq_len_ + t] = static_cast<tensor::Scalar>(sample_token(rng, cls));
    }
  }
  return Batch{std::move(inputs), std::move(targets)};
}

// -- SyntheticPairClassification ------------------------------------------------------

SyntheticPairClassification::SyntheticPairClassification(
    std::size_t n, std::size_t vocab, std::size_t seq_len, std::size_t topics,
    std::uint64_t seed, double signal)
    : n_(n),
      vocab_(vocab),
      seq_len_(seq_len),
      topics_(topics),
      seed_(seed),
      signal_(signal) {
  AVGPIPE_CHECK(seq_len % 2 == 0, "pair task needs even seq_len");
  AVGPIPE_CHECK(vocab >= topics * 2, "vocab too small for topic buckets");
}

int SyntheticPairClassification::sample_token(Rng& rng,
                                              std::size_t topic) const {
  const std::size_t bucket = vocab_ / topics_;
  if (rng.bernoulli(signal_)) {
    return static_cast<int>(topic * bucket +
                            static_cast<std::size_t>(
                                rng.uniform_int(0, static_cast<std::int64_t>(
                                                        bucket - 1))));
  }
  return static_cast<int>(
      rng.uniform_int(0, static_cast<std::int64_t>(vocab_ - 1)));
}

Batch SyntheticPairClassification::make_batch(
    const std::vector<std::size_t>& indices) const {
  Tensor inputs({indices.size(), seq_len_});
  std::vector<int> targets(indices.size());
  auto iv = inputs.data();
  const std::size_t half = seq_len_ / 2;
  for (std::size_t r = 0; r < indices.size(); ++r) {
    Rng rng(seed_ ^ (0x9A12B34Cull + indices[r] * 0x9E3779B97F4A7C15ull));
    const bool same = (indices[r] % 2) == 0;
    targets[r] = same ? 1 : 0;
    const std::size_t topic_a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(topics_ - 1)));
    std::size_t topic_b = topic_a;
    if (!same) {
      topic_b = (topic_a + 1 +
                 static_cast<std::size_t>(rng.uniform_int(
                     0, static_cast<std::int64_t>(topics_ - 2)))) %
                topics_;
    }
    for (std::size_t t = 0; t < half; ++t) {
      iv[r * seq_len_ + t] = static_cast<tensor::Scalar>(
          sample_token(rng, topic_a));
      iv[r * seq_len_ + half + t] = static_cast<tensor::Scalar>(
          sample_token(rng, topic_b));
    }
  }
  return Batch{std::move(inputs), std::move(targets)};
}

// -- SyntheticLanguageModel ------------------------------------------------------------

SyntheticLanguageModel::SyntheticLanguageModel(std::size_t corpus_len,
                                               std::size_t vocab,
                                               std::size_t seq_len,
                                               std::uint64_t seed,
                                               double concentration)
    : vocab_(vocab), seq_len_(seq_len) {
  AVGPIPE_CHECK(corpus_len > seq_len + 1, "corpus too short");
  Rng rng(seed);

  // Row-stochastic transition matrix from a symmetric Dirichlet-ish draw:
  // exponentiate Gaussians scaled by 1/concentration so small concentration
  // gives peaky (low-entropy) rows.
  transition_.resize(vocab * vocab);
  entropy_floor_ = 0.0;
  std::vector<double> stationary_unnorm(vocab, 1.0 / static_cast<double>(vocab));
  for (std::size_t i = 0; i < vocab; ++i) {
    double z = 0.0;
    for (std::size_t j = 0; j < vocab; ++j) {
      const double w = std::exp(rng.normal() / concentration * 0.5);
      transition_[i * vocab + j] = w;
      z += w;
    }
    double h = 0.0;
    for (std::size_t j = 0; j < vocab; ++j) {
      transition_[i * vocab + j] /= z;
      const double p = transition_[i * vocab + j];
      if (p > 0.0) h -= p * std::log(p);
    }
    // Approximate the stationary distribution as uniform for the floor
    // estimate; the corpus-empirical floor is what benches compare against.
    entropy_floor_ += h / static_cast<double>(vocab);
  }

  corpus_.resize(corpus_len);
  std::size_t state = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(vocab - 1)));
  for (std::size_t t = 0; t < corpus_len; ++t) {
    corpus_[t] = static_cast<int>(state);
    const double u = rng.uniform();
    double cum = 0.0;
    std::size_t next = vocab - 1;
    for (std::size_t j = 0; j < vocab; ++j) {
      cum += transition_[state * vocab + j];
      if (u < cum) {
        next = j;
        break;
      }
    }
    state = next;
  }
}

std::size_t SyntheticLanguageModel::size() const {
  return (corpus_.size() - 1) / seq_len_;
}

Batch SyntheticLanguageModel::make_batch(
    const std::vector<std::size_t>& indices) const {
  Tensor inputs({indices.size(), seq_len_});
  std::vector<int> targets(indices.size() * seq_len_);
  auto iv = inputs.data();
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const std::size_t start = indices[r] * seq_len_;
    AVGPIPE_CHECK(start + seq_len_ < corpus_.size(), "window out of corpus");
    for (std::size_t t = 0; t < seq_len_; ++t) {
      iv[r * seq_len_ + t] = static_cast<tensor::Scalar>(corpus_[start + t]);
      targets[r * seq_len_ + t] = corpus_[start + t + 1];
    }
  }
  return Batch{std::move(inputs), std::move(targets)};
}

}  // namespace avgpipe::data
