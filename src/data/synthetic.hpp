#pragma once

/// \file synthetic.hpp
/// Synthetic datasets standing in for the paper's corpora (WMT16, QQP from
/// GLUE, Penn Treebank). Each exercises the same code path as the original:
/// token-sequence inputs, classification or next-token targets, and a
/// learnable signal so "epochs to reach a target metric" (Figure 14) is a
/// meaningful measurement. Every sample is generated deterministically from
/// (seed, index), so datasets are reproducible and need no disk state.

#include "data/dataset.hpp"

namespace avgpipe::data {

/// Gaussian class blobs in feature space: [B, dim] -> class. For MLP
/// quickstarts and unit tests.
class SyntheticFeatures : public Dataset {
 public:
  SyntheticFeatures(std::size_t n, std::size_t dim, std::size_t classes,
                    std::uint64_t seed, double noise = 0.5);
  std::size_t size() const override { return n_; }
  Batch make_batch(const std::vector<std::size_t>& indices) const override;

 private:
  std::size_t n_, dim_, classes_;
  std::uint64_t seed_;
  double noise_;
  std::vector<double> centroids_;  ///< [classes, dim]
};

/// Token sequences whose class determines the unigram distribution —
/// a deep recurrent model separates classes easily. GNMT/WMT stand-in.
class SyntheticSeqClassification : public Dataset {
 public:
  SyntheticSeqClassification(std::size_t n, std::size_t vocab,
                             std::size_t seq_len, std::size_t classes,
                             std::uint64_t seed, double signal = 0.75);
  std::size_t size() const override { return n_; }
  Batch make_batch(const std::vector<std::size_t>& indices) const override;

  std::size_t vocab() const { return vocab_; }
  std::size_t seq_len() const { return seq_len_; }
  std::size_t classes() const { return classes_; }

 private:
  int sample_token(Rng& rng, std::size_t cls) const;

  std::size_t n_, vocab_, seq_len_, classes_;
  std::uint64_t seed_;
  double signal_;  ///< probability a token comes from the class bucket
};

/// Sentence-pair task: halves drawn from the same topic (label 1) or
/// different topics (label 0). QQP/paraphrase stand-in for the BERT model.
class SyntheticPairClassification : public Dataset {
 public:
  SyntheticPairClassification(std::size_t n, std::size_t vocab,
                              std::size_t seq_len, std::size_t topics,
                              std::uint64_t seed, double signal = 0.8);
  std::size_t size() const override { return n_; }
  Batch make_batch(const std::vector<std::size_t>& indices) const override;

  std::size_t vocab() const { return vocab_; }
  std::size_t seq_len() const { return seq_len_; }

 private:
  int sample_token(Rng& rng, std::size_t topic) const;

  std::size_t n_, vocab_, seq_len_, topics_;
  std::uint64_t seed_;
  double signal_;
};

/// Order-1 Markov-chain corpus; samples are windows with next-token targets.
/// Penn Treebank stand-in for the AWD-LSTM language model. The achievable
/// cross-entropy floor is the chain's conditional entropy, exposed via
/// `entropy_floor()` so benches can set a target loss the paper-style way.
class SyntheticLanguageModel : public Dataset {
 public:
  SyntheticLanguageModel(std::size_t corpus_len, std::size_t vocab,
                         std::size_t seq_len, std::uint64_t seed,
                         double concentration = 0.15);
  std::size_t size() const override;
  Batch make_batch(const std::vector<std::size_t>& indices) const override;

  std::size_t vocab() const { return vocab_; }
  std::size_t seq_len() const { return seq_len_; }
  /// Conditional entropy (nats/token) of the generating chain.
  double entropy_floor() const { return entropy_floor_; }

 private:
  std::size_t vocab_, seq_len_;
  std::vector<int> corpus_;
  std::vector<double> transition_;  ///< [vocab, vocab] row-stochastic
  double entropy_floor_ = 0.0;
};

}  // namespace avgpipe::data
