#include "data/dataset.hpp"

#include <numeric>

#include "common/check.hpp"

namespace avgpipe::data {

std::vector<Batch> slice_micro_batches(const Batch& batch, std::size_t m) {
  const std::size_t b = batch.batch_size();
  AVGPIPE_CHECK(m >= 1 && m <= b,
                "micro-batch count " << m << " invalid for batch size " << b);
  // Per-sample strides for inputs and targets.
  const std::size_t in_stride = batch.inputs.numel() / b;
  AVGPIPE_CHECK(batch.targets.size() % b == 0,
                "targets not divisible by batch size");
  const std::size_t tgt_stride = batch.targets.size() / b;

  std::vector<Batch> micro;
  micro.reserve(m);
  const std::size_t base = b / m, extra = b % m;
  std::size_t row = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t n = base + (i < extra ? 1 : 0);
    tensor::Shape shape = batch.inputs.shape();
    shape[0] = n;
    Tensor inputs(shape);
    const auto src = batch.inputs.data();
    std::copy(src.begin() + static_cast<std::ptrdiff_t>(row * in_stride),
              src.begin() + static_cast<std::ptrdiff_t>((row + n) * in_stride),
              inputs.data().begin());
    std::vector<int> targets(
        batch.targets.begin() + static_cast<std::ptrdiff_t>(row * tgt_stride),
        batch.targets.begin() +
            static_cast<std::ptrdiff_t>((row + n) * tgt_stride));
    micro.push_back(Batch{std::move(inputs), std::move(targets)});
    row += n;
  }
  return micro;
}

DataLoader::DataLoader(const Dataset& dataset, std::size_t batch_size,
                       std::uint64_t seed)
    : dataset_(dataset), batch_size_(batch_size), seed_(seed) {
  AVGPIPE_CHECK(batch_size_ >= 1, "batch size must be positive");
  AVGPIPE_CHECK(dataset_.size() >= batch_size_,
                "dataset smaller than one batch");
  order_.resize(dataset_.size());
  std::iota(order_.begin(), order_.end(), 0);
}

std::size_t DataLoader::batches_per_epoch() const {
  return dataset_.size() / batch_size_;
}

Batch DataLoader::batch(std::size_t epoch, std::size_t i) {
  AVGPIPE_CHECK(i < batches_per_epoch(), "batch index out of range");
  if (epoch != shuffled_epoch_) {
    std::iota(order_.begin(), order_.end(), 0);
    Rng rng(seed_ + 0x9E3779B9ull * (epoch + 1));
    rng.shuffle(order_);
    shuffled_epoch_ = epoch;
  }
  std::vector<std::size_t> indices(
      order_.begin() + static_cast<std::ptrdiff_t>(i * batch_size_),
      order_.begin() + static_cast<std::ptrdiff_t>((i + 1) * batch_size_));
  return dataset_.make_batch(indices);
}

}  // namespace avgpipe::data
