#include "tuning/tuner.hpp"

#include <algorithm>
#include <limits>

namespace avgpipe::tuning {

CandidateGrid default_grid(std::size_t batch_size,
                           std::size_t max_pipelines) {
  CandidateGrid grid;
  for (std::size_t m = 1; m <= batch_size; m *= 2) {
    if (batch_size % m == 0) grid.micro_batches.push_back(m);
  }
  for (std::size_t n = 1; n <= max_pipelines; ++n) grid.pipelines.push_back(n);
  return grid;
}

Seconds measure_setting(const sim::SimJob& base, std::size_t batch_size,
                        std::size_t m, std::size_t n, Bytes memory_limit,
                        bool* oom, std::size_t num_batches) {
  sim::SimJob job = base;
  job.batch_size = batch_size;
  job.micro_batches = m;
  job.num_pipelines = n;
  job.elastic_averaging = n > 1;
  job.kind = schedule::Kind::kAdvanceForward;
  job.advance_num = sim::adaptive_advance(job);
  job.num_batches = num_batches;
  job.memory_limit = memory_limit;
  const sim::SimResult r = sim::simulate(job);
  if (oom != nullptr) *oom = r.oom;
  return r.time_per_batch /
         (static_cast<double>(n) * static_cast<double>(batch_size));
}

namespace {
Profile make_profile(const sim::SimJob& base, std::size_t batch_size,
                     const CandidateGrid& grid, std::size_t profile_m,
                     std::size_t profile_n) {
  AVGPIPE_CHECK(!grid.micro_batches.empty() && !grid.pipelines.empty(),
                "empty candidate grid");
  // §5.2.1: profile a rather large M and small N so φ stays below 100 %.
  if (profile_m == 0) {
    profile_m = grid.micro_batches[grid.micro_batches.size() / 2];
    profile_m = std::max<std::size_t>(profile_m, 2);
    profile_m = std::min(profile_m, batch_size);
  }
  sim::SimJob job = base;
  job.batch_size = batch_size;
  return run_profile(job, profile_m, profile_n);
}
}  // namespace

std::vector<Prediction> ranked_predictions(const sim::SimJob& base,
                                           std::size_t batch_size,
                                           const CandidateGrid& grid,
                                           Bytes memory_limit,
                                           std::size_t profile_m,
                                           std::size_t profile_n) {
  const Profile profile =
      make_profile(base, batch_size, grid, profile_m, profile_n);
  std::vector<Prediction> all;
  for (std::size_t m : grid.micro_batches) {
    for (std::size_t n : grid.pipelines) {
      all.push_back(predict(profile, m, n, batch_size, memory_limit));
    }
  }
  std::sort(all.begin(), all.end(), [](const Prediction& a,
                                       const Prediction& b) {
    if (a.feasible != b.feasible) return a.feasible;
    return a.t_per_sample < b.t_per_sample;
  });
  return all;
}

TuneResult profiling_tuner(const sim::SimJob& base, std::size_t batch_size,
                           const CandidateGrid& grid, Bytes memory_limit,
                           std::size_t profile_m, std::size_t profile_n) {
  const Profile profile =
      make_profile(base, batch_size, grid, profile_m, profile_n);

  TuneResult result;
  result.method = "profiling";
  result.tuning_cost = profile.profiling_cost;

  Seconds best = std::numeric_limits<double>::infinity();
  for (std::size_t m : grid.micro_batches) {
    for (std::size_t n : grid.pipelines) {
      const Prediction p = predict(profile, m, n, batch_size, memory_limit);
      if (!p.feasible) continue;
      if (p.t_per_sample < best) {
        best = p.t_per_sample;
        result.m = m;
        result.n = n;
      }
    }
  }
  result.feasible = best < std::numeric_limits<double>::infinity();
  if (result.feasible) {
    result.time_per_sample =
        measure_setting(base, batch_size, result.m, result.n, memory_limit);
  }
  return result;
}

TuneResult traversal_tuner(const sim::SimJob& base, std::size_t batch_size,
                           const CandidateGrid& grid, Bytes memory_limit,
                           std::size_t batches_per_setting,
                           Seconds setup_cost) {
  TuneResult result;
  result.method = "traversal";
  Seconds best = std::numeric_limits<double>::infinity();
  for (std::size_t m : grid.micro_batches) {
    for (std::size_t n : grid.pipelines) {
      bool oom = false;
      const Seconds per_sample = measure_setting(
          base, batch_size, m, n, memory_limit, &oom, batches_per_setting);
      result.tuning_cost += setup_cost + per_sample *
                                             static_cast<double>(n) *
                                             static_cast<double>(batch_size) *
                                             static_cast<double>(batches_per_setting);
      if (oom) continue;
      if (per_sample < best) {
        best = per_sample;
        result.m = m;
        result.n = n;
      }
    }
  }
  result.feasible = best < std::numeric_limits<double>::infinity();
  result.time_per_sample = best;
  return result;
}

namespace {
TuneResult guideline(const sim::SimJob& base, std::size_t batch_size,
                     const CandidateGrid& grid, Bytes memory_limit,
                     std::size_t m, const std::string& name) {
  TuneResult result;
  result.method = name;
  result.m = m;
  result.tuning_cost = 0;  // guidelines need no measurement
  // Largest pipeline count that fits in memory with this M.
  std::size_t chosen = 0;
  for (auto it = grid.pipelines.rbegin(); it != grid.pipelines.rend(); ++it) {
    bool oom = false;
    const Seconds per_sample =
        measure_setting(base, batch_size, m, *it, memory_limit, &oom);
    if (!oom) {
      chosen = *it;
      result.time_per_sample = per_sample;
      break;
    }
  }
  result.feasible = chosen > 0;
  result.n = std::max<std::size_t>(chosen, 1);
  return result;
}
}  // namespace

TuneResult max_num_guideline(const sim::SimJob& base, std::size_t batch_size,
                             const CandidateGrid& grid, Bytes memory_limit) {
  // Micro-batch size one: M = batch size.
  return guideline(base, batch_size, grid, memory_limit, batch_size,
                   "max-num");
}

TuneResult max_size_guideline(const sim::SimJob& base, std::size_t batch_size,
                              const CandidateGrid& grid, Bytes memory_limit) {
  // One micro-batch: M = 1.
  return guideline(base, batch_size, grid, memory_limit, 1, "max-size");
}

}  // namespace avgpipe::tuning
