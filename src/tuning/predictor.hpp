#pragma once

/// \file predictor.hpp
/// Profiling-based tuning of parallelism degrees (paper §5).
///
/// The method has two phases. *Profiling* runs one setting (m, n) of
/// (micro-batch number M, parallel pipeline number N) for a few batches and
/// collects, per GPU k: computation time T_gpu^k, total communication time
/// 𝕋^k, the utilization curve φ^k(t), and the model/data memory split
/// F_mod^k / F_dat^k. *Predicting* evaluates Equations (1)-(8) to estimate
/// the per-batch time and peak memory of every other setting (m*, n*)
/// without running it.

#include <vector>

#include "common/step_function.hpp"
#include "sim/simulator.hpp"

namespace avgpipe::tuning {

/// Per-GPU measurements from the profiling run (per-batch quantities).
struct GpuProfile {
  Seconds t_gpu = 0;   ///< computation time per batch (T_gpu^k)
  Seconds t_comm = 0;  ///< total communication time per batch (𝕋^k)
  StepFunction phi;    ///< utilization curve over the whole profiled window
  double phi_batches = 1;  ///< batches the curve spans (for integrals)
  Bytes f_mod = 0;     ///< model memory (weights+optimizer+grads+reference)
  Bytes f_dat = 0;     ///< data/activation memory at peak
};

struct Profile {
  std::size_t m = 1;  ///< profiled micro-batch number
  std::size_t n = 1;  ///< profiled pipeline number
  std::vector<GpuProfile> gpus;
  Seconds time_per_batch = 0;
  Seconds profiling_cost = 0;  ///< virtual time the profiling run took
};

/// Run the profiling phase on the simulator. The paper recommends a rather
/// large M and a small N so no GPU saturates (otherwise φ cannot be scaled
/// up faithfully — §5.2.1); callers should follow that advice.
Profile run_profile(sim::SimJob job, std::size_t m, std::size_t n,
                    std::size_t profile_batches = 20);

/// Prediction for one candidate setting.
struct Prediction {
  std::size_t m = 1, n = 1;
  Seconds t_batch = 0;           ///< predicted max_k T^k (Eq. 1)
  Seconds t_per_sample = 0;      ///< t_batch / (n * batch_size)
  Bytes peak_memory = 0;         ///< max_k F^k (Eq. 8)
  bool feasible = true;          ///< peak_memory under the limit
  std::vector<Seconds> t_gpu;    ///< per-GPU computation (Eq. 2)
  std::vector<Seconds> t_com;    ///< per-GPU blocking comm (Eq. 4)
  std::vector<Seconds> t_bub;    ///< per-GPU bubble (Eqs. 5-7)
};

/// Evaluate Equations (1)-(8) for setting (m_star, n_star).
Prediction predict(const Profile& profile, std::size_t m_star,
                   std::size_t n_star, std::size_t batch_size,
                   Bytes memory_limit);

}  // namespace avgpipe::tuning
