#include "tuning/predictor.hpp"

#include <algorithm>

namespace avgpipe::tuning {

Profile run_profile(sim::SimJob job, std::size_t m, std::size_t n,
                    std::size_t profile_batches) {
  AVGPIPE_CHECK(m >= 1 && m <= job.batch_size,
                "profiled micro-batch number " << m << " invalid");
  AVGPIPE_CHECK(n >= 1, "profiled pipeline number must be positive");
  job.micro_batches = m;
  job.num_pipelines = n;
  job.num_batches = profile_batches;
  // Profile the system as it actually executes — 1F1B with advance forward
  // propagation — so the measured F_dat reflects the bounded activation
  // stash. Performance is *predicted* with the AFAB equations (§5.2.2:
  // "it is reasonable to assume the performance of AFAB and 1F1B with
  // advance forward propagation is close enough").
  job.kind = schedule::Kind::kAdvanceForward;
  job.advance_num = job.stages.empty() ? 0 : job.stages.size() - 1;
  // Lift the memory cap during profiling so an infeasible profile setting
  // still yields curves (feasibility of candidates is judged by Eq. 8).
  job.memory_limit = 1e18;

  const sim::SimResult r = sim::simulate(job);

  Profile p;
  p.m = m;
  p.n = n;
  p.time_per_batch = r.time_per_batch;
  p.profiling_cost = r.makespan;
  p.gpus.reserve(r.gpus.size());
  const double batches = static_cast<double>(profile_batches);
  for (const auto& g : r.gpus) {
    GpuProfile gp;
    gp.t_gpu = g.busy / batches;
    gp.t_comm = g.total_comm / batches;
    gp.phi = g.utilization;
    gp.phi_batches = batches;
    gp.f_mod = g.static_memory;
    gp.f_dat = g.peak_activations;
    p.gpus.push_back(std::move(gp));
  }
  return p;
}

Prediction predict(const Profile& profile, std::size_t m_star,
                   std::size_t n_star, std::size_t batch_size,
                   Bytes memory_limit) {
  const auto k_count = profile.gpus.size();
  AVGPIPE_CHECK(k_count >= 1, "profile has no GPUs");
  const double m = static_cast<double>(profile.m);
  const double n = static_cast<double>(profile.n);
  const double ms = static_cast<double>(m_star);
  const double ns = static_cast<double>(n_star);

  Prediction out;
  out.m = m_star;
  out.n = n_star;
  out.t_gpu.resize(k_count);
  out.t_com.resize(k_count);
  out.t_bub.resize(k_count);

  // Equation (2): computation time. φ scales by (m n*)/(m* n); the part of
  // the scaled curve above 100 % turns into extra time.
  std::vector<Seconds> t_comm_star(k_count);
  for (std::size_t k = 0; k < k_count; ++k) {
    const auto& g = profile.gpus[k];
    const double phi_scale = (m * ns) / (ms * n);
    const double overflow =
        g.phi.excess_integral(phi_scale, 1.0) / g.phi_batches;
    out.t_gpu[k] = (ms * n) / (m * ns) * (g.t_gpu + overflow);

    // Total communication scales with the pipeline count: (𝕋^k)* = n*/n 𝕋^k.
    t_comm_star[k] = ns / n * g.t_comm;

    // Equation (4): the first micro-batch's communication is exposed; each
    // of the remaining m*-1 overlaps with computation and blocks only by
    // the excess.
    out.t_com[k] =
        t_comm_star[k] / ms +
        (ms - 1.0) / ms * std::max(t_comm_star[k] - out.t_gpu[k], 0.0);
  }

  // Equations (5)-(7): bubbles from waiting on upstream/downstream GPUs.
  std::vector<Seconds> t_up(k_count, 0.0), t_down(k_count, 0.0);
  for (std::size_t k = 1; k < k_count; ++k) {
    t_up[k] = t_up[k - 1] +
              (t_comm_star[k - 1] + out.t_gpu[k - 1]) / ms;
  }
  for (std::size_t k = k_count - 1; k-- > 0;) {
    t_down[k] = t_down[k + 1] +
                (t_comm_star[k + 1] + out.t_gpu[k + 1]) / ms;
  }

  Seconds worst = 0;
  for (std::size_t k = 0; k < k_count; ++k) {
    out.t_bub[k] = t_up[k] + t_down[k];
    worst = std::max(worst, out.t_gpu[k] + out.t_com[k] + out.t_bub[k]);
  }
  out.t_batch = worst;
  out.t_per_sample =
      worst / (ns * static_cast<double>(batch_size));

  // Equation (8): memory.
  Bytes peak = 0;
  for (const auto& g : profile.gpus) {
    const Bytes f = ns / n * g.f_mod + (m * ns) / (ms * n) * g.f_dat;
    peak = std::max(peak, f);
  }
  out.peak_memory = peak;
  out.feasible = memory_limit <= 0.0 || peak <= memory_limit;
  return out;
}

}  // namespace avgpipe::tuning
