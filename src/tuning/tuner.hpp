#pragma once

/// \file tuner.hpp
/// Parallelism-degree selection strategies compared in the paper's §7.3:
/// the profiling-based method (ours), exhaustive traversal, and the two
/// naive guidelines ("max-num" and "max-size").

#include <string>
#include <vector>

#include "tuning/predictor.hpp"

namespace avgpipe::tuning {

/// Candidate grid: micro-batch numbers are the powers of two dividing the
/// batch size; pipeline counts are 1..max_pipelines.
struct CandidateGrid {
  std::vector<std::size_t> micro_batches;
  std::vector<std::size_t> pipelines;
};

CandidateGrid default_grid(std::size_t batch_size, std::size_t max_pipelines);

/// Outcome of a tuning strategy.
struct TuneResult {
  std::string method;
  std::size_t m = 1, n = 1;
  Seconds tuning_cost = 0;    ///< virtual wall time spent tuning
  Seconds time_per_sample = 0;  ///< per-sample time of the chosen setting,
                                ///< measured by simulating it
  bool feasible = true;
};

/// The paper's method: one profiling run + Eq. (1)-(8) predictions over the
/// whole grid; picks the feasible setting with the best predicted
/// per-sample time. `profile_m`/`profile_n` default (0) to a large-M/small-N
/// profile per §5.2.1.
TuneResult profiling_tuner(const sim::SimJob& base, std::size_t batch_size,
                           const CandidateGrid& grid, Bytes memory_limit,
                           std::size_t profile_m = 0,
                           std::size_t profile_n = 1);

/// Exhaustive baseline: simulate every setting for `batches_per_setting`
/// batches (the paper uses ~10) plus a fixed per-setting startup overhead
/// (process launch, allocator warmup — `setup_cost`), then pick the best
/// feasible measured setting.
TuneResult traversal_tuner(const sim::SimJob& base, std::size_t batch_size,
                           const CandidateGrid& grid, Bytes memory_limit,
                           std::size_t batches_per_setting = 10,
                           Seconds setup_cost = 30.0);

/// "max-num" guideline: micro-batch size one (M = batch size), then the
/// largest feasible N.
TuneResult max_num_guideline(const sim::SimJob& base, std::size_t batch_size,
                             const CandidateGrid& grid, Bytes memory_limit);

/// "max-size" guideline: one micro-batch (M = 1), then the largest feasible
/// N.
TuneResult max_size_guideline(const sim::SimJob& base, std::size_t batch_size,
                              const CandidateGrid& grid, Bytes memory_limit);

/// The full grid of Eq. (1)-(8) predictions from one profiling run, sorted
/// by predicted per-sample time (best first). Exposed so callers can walk
/// the ranking when the top choice turns out infeasible in practice (the
/// prediction is approximate; e.g. Eq. 8 does not see the reference model).
std::vector<Prediction> ranked_predictions(const sim::SimJob& base,
                                           std::size_t batch_size,
                                           const CandidateGrid& grid,
                                           Bytes memory_limit,
                                           std::size_t profile_m = 0,
                                           std::size_t profile_n = 1);

/// Measure a setting's per-sample time by simulating it with the AvgPipe
/// execution (AFP schedule, elastic averaging when n > 1). Used to score
/// every strategy's choice on equal footing.
Seconds measure_setting(const sim::SimJob& base, std::size_t batch_size,
                        std::size_t m, std::size_t n, Bytes memory_limit,
                        bool* oom = nullptr,
                        std::size_t num_batches = 6);

}  // namespace avgpipe::tuning
