/// \file ckpt_inspect.cpp
/// CLI for examining AvgPipe checkpoint directories and files — the
/// operator's view of the crash-consistency protocol, and CI's negative
/// control (a corrupted checkpoint must be *reported*, exit 2, never
/// decoded into garbage).
///
///   ckpt_inspect <dir>               # manifest + per-file record audit
///   ckpt_inspect <file.avgp>         # one file: records, CRCs, shapes
///   ckpt_inspect <path> --json       # machine-readable report
///
/// For a directory, every manifest entry is audited: the file must exist,
/// match the manifest's byte count and whole-file CRC, parse structurally,
/// and every record CRC must verify. Tensor-bearing records additionally
/// get a headers-only shape walk (no data is materialised).
///
/// Exit codes: 0 everything verifies, 2 any corruption or mismatch found,
/// 3 usage error.

#include <sys/stat.h>

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/format.hpp"
#include "common/check.hpp"

namespace {

using avgpipe::ckpt::ByteReader;
using avgpipe::ckpt::CheckpointDir;
using avgpipe::ckpt::CheckpointReader;
using avgpipe::ckpt::ManifestEntry;

[[noreturn]] void usage_error(const std::string& what) {
  std::cerr << "ckpt_inspect: " << what << "\n"
            << "usage: ckpt_inspect <checkpoint-dir | file.avgp> [--json]\n";
  std::exit(3);
}

bool is_directory(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool path_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

/// TrainState's policy_kind byte, named without a core dependency.
const char* policy_kind_name(std::uint8_t kind) {
  switch (kind) {
    case 0: return "elastic";
    case 1: return "bsp";
    case 2: return "bmuf";
    case 3: return "xpipe";
    default: return "unknown";
  }
}

/// TrainState's sync_codec byte (tensor::Codec), likewise core-free.
const char* sync_codec_name(std::uint8_t codec) {
  switch (codec) {
    case 0: return "off";
    case 1: return "fp16";
    case 2: return "int8";
    default: return "unknown";
  }
}

/// Headers-only walk of one serialized tensor: returns "[d0xd1x...]" and
/// skips the payload without materialising it. Throws on malformed headers.
std::string walk_tensor(ByteReader& r) {
  const std::uint32_t ndim = r.u32();
  AVGPIPE_CHECK(ndim <= 8, "implausible tensor rank " << ndim);
  std::uint64_t numel = 1;
  std::ostringstream os;
  os << '[';
  for (std::uint32_t j = 0; j < ndim; ++j) {
    const std::uint64_t d = r.u64();
    AVGPIPE_CHECK(d > 0 && d <= (1ull << 32), "implausible dim " << d);
    numel *= d;
    os << (j ? "x" : "") << d;
  }
  os << ']';
  r.bytes(numel * sizeof(double));  // bounds-checked skip
  return os.str();
}

std::vector<std::string> walk_tensor_list(ByteReader& r) {
  std::vector<std::string> shapes;
  const std::uint32_t n = r.u32();
  shapes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) shapes.push_back(walk_tensor(r));
  return shapes;
}

void skip_optimizer(ByteReader& r, std::string* name) {
  *name = r.str();
  r.u64();  // steps
  const std::uint32_t scalars = r.u32();
  for (std::uint32_t i = 0; i < scalars; ++i) r.f64();
  walk_tensor_list(r);  // slots
}

std::string join(const std::vector<std::string>& parts) {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    os << (i ? " " : "") << parts[i];
  }
  return os.str();
}

/// Human summary of one record's decoded content ("" when the payload does
/// not decode — the caller treats that as corruption the CRC missed).
std::string describe_record(const std::string& name,
                            const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  std::ostringstream os;
  if (name == "meta") {
    const std::int64_t step = r.i64();
    const std::uint8_t kind = r.u8();
    const double alpha = r.f64();
    const std::uint32_t pipelines = r.u32();
    r.u32();  // rng count
    os << "step " << step << ", policy " << policy_kind_name(kind)
       << ", alpha " << alpha << ", " << pipelines << " pipelines";
  } else if (name == "reference" || name == "policy" || name == "broadcast") {
    const auto shapes = walk_tensor_list(r);
    os << shapes.size() << " tensors";
    if (!shapes.empty()) os << ": " << join(shapes);
  } else if (name.rfind("pipeline.", 0) == 0) {
    const bool alive = r.u8() != 0;
    const auto params = walk_tensor_list(r);
    const std::uint32_t stages = r.u32();
    std::vector<std::string> optimizers;
    for (std::uint32_t s = 0; s < stages; ++s) {
      std::string opt;
      skip_optimizer(r, &opt);
      walk_tensor_list(r);  // pred_delta
      r.u8();               // pred_have_delta
      optimizers.push_back(opt);
    }
    os << (alive ? "alive" : "dead") << ", " << params.size()
       << " params, " << stages << " stages";
    if (!optimizers.empty()) os << " (" << join(optimizers) << ")";
  } else if (name == "residual.broadcast" || name.rfind("residual.", 0) == 0) {
    // Sync-compression error-feedback residuals: codec byte + tensor list.
    const std::uint8_t codec = r.u8();
    const auto shapes = walk_tensor_list(r);
    os << "codec " << sync_codec_name(codec) << ", " << shapes.size()
       << " residual tensors";
    if (!shapes.empty()) os << ": " << join(shapes);
  } else if (name == "rng") {
    const std::uint32_t n = r.u32();
    std::vector<std::string> names;
    for (std::uint32_t i = 0; i < n; ++i) {
      names.push_back(r.str());
      r.str();  // engine snapshot
    }
    os << n << " streams";
    if (!names.empty()) os << ": " << join(names);
  } else {
    os << payload.size() << " bytes (unknown record)";
    return os.str();  // no expect_done: format unknown by definition
  }
  r.expect_done(name.c_str());
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (c == '\n') {
      os << "\\n";
    } else {
      os << c;
    }
  }
  return os.str();
}

struct RecordReport {
  std::string name;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
  bool crc_ok = false;
  std::string detail;  ///< decoded summary, or the decode error
  bool decoded = false;
};

struct FileReport {
  std::string path;
  bool ok = false;           ///< structure + every CRC + every decode
  std::string error;         ///< first structural failure
  std::uint32_t version = 0;
  std::uint64_t bytes = 0;
  std::uint32_t file_crc = 0;
  std::vector<RecordReport> records;
};

FileReport audit_file(const std::string& path) {
  FileReport report;
  report.path = path;
  const CheckpointReader::FileInfo info = CheckpointReader::inspect(path);
  report.ok = info.ok;
  report.error = info.error;
  report.version = info.version;
  report.bytes = info.bytes;
  report.file_crc = info.file_crc;
  for (const auto& rec : info.records) {
    RecordReport r;
    r.name = rec.name;
    r.size = rec.size;
    r.crc = rec.crc;
    r.crc_ok = rec.crc_ok;
    report.records.push_back(std::move(r));
    if (!rec.crc_ok) report.ok = false;
  }
  if (!report.ok) return report;
  // Structure and CRCs verify: decode each record's content for the shape/
  // summary columns. A decode failure here means a payload the CRC could not
  // protect against (e.g. a version-skewed writer) — still corruption.
  try {
    const CheckpointReader reader = CheckpointReader::open(path);
    for (auto& rec : report.records) {
      try {
        rec.detail = describe_record(rec.name, reader.payload(rec.name));
        rec.decoded = true;
      } catch (const std::exception& e) {
        rec.detail = e.what();
        report.ok = false;
        if (report.error.empty()) {
          report.error = "record '" + rec.name + "' does not decode";
        }
      }
    }
  } catch (const std::exception& e) {
    report.ok = false;
    report.error = e.what();
  }
  return report;
}

void print_file_text(const FileReport& f, const std::string& indent) {
  std::cout << indent << f.path << ": "
            << (f.ok ? "OK" : "CORRUPT") << ", version " << f.version
            << ", " << f.bytes << " bytes, file crc 0x" << std::hex
            << f.file_crc << std::dec << "\n";
  if (!f.error.empty()) std::cout << indent << "  error: " << f.error << "\n";
  for (const auto& r : f.records) {
    std::cout << indent << "  " << r.name << "  " << r.size
              << " bytes  crc 0x" << std::hex << r.crc << std::dec
              << (r.crc_ok ? "" : "  CRC MISMATCH");
    if (!r.detail.empty()) std::cout << "  " << r.detail;
    std::cout << "\n";
  }
}

void print_file_json(std::ostream& os, const FileReport& f) {
  os << "{\"path\":\"" << json_escape(f.path) << "\",\"ok\":"
     << (f.ok ? "true" : "false") << ",\"version\":" << f.version
     << ",\"bytes\":" << f.bytes << ",\"file_crc\":" << f.file_crc;
  if (!f.error.empty()) os << ",\"error\":\"" << json_escape(f.error) << "\"";
  os << ",\"records\":[";
  for (std::size_t i = 0; i < f.records.size(); ++i) {
    const auto& r = f.records[i];
    os << (i ? "," : "") << "{\"name\":\"" << json_escape(r.name)
       << "\",\"size\":" << r.size << ",\"crc\":" << r.crc
       << ",\"crc_ok\":" << (r.crc_ok ? "true" : "false");
    if (r.decoded) os << ",\"summary\":\"" << json_escape(r.detail) << "\"";
    os << "}";
  }
  os << "]}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      usage_error("help");
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error("unknown flag: " + arg);
    } else if (path.empty()) {
      path = arg;
    } else {
      usage_error("multiple paths given");
    }
  }
  if (path.empty()) usage_error("missing path");
  if (!path_exists(path)) usage_error("no such path: " + path);

  try {
    if (!is_directory(path)) {
      const FileReport f = audit_file(path);
      if (json) {
        print_file_json(std::cout, f);
        std::cout << "\n";
      } else {
        print_file_text(f, "");
      }
      return f.ok ? 0 : 2;
    }

    const CheckpointDir dir(path);
    const std::vector<ManifestEntry> entries = dir.entries();
    bool all_ok = true;
    std::vector<FileReport> reports;
    std::vector<std::string> manifest_errors;
    for (const auto& e : entries) {
      const std::string file_path = path + "/" + e.file;
      std::string mismatch;
      if (!path_exists(file_path)) {
        mismatch = "manifest names a missing file";
      }
      FileReport f = mismatch.empty() ? audit_file(file_path) : FileReport{};
      if (mismatch.empty()) {
        if (f.bytes != e.bytes) {
          mismatch = "size mismatch vs manifest";
        } else if (f.file_crc != e.crc) {
          mismatch = "whole-file CRC mismatch vs manifest";
        }
      }
      if (!mismatch.empty()) {
        f.path = file_path;
        f.ok = false;
        if (f.error.empty()) f.error = mismatch;
      }
      all_ok = all_ok && f.ok;
      manifest_errors.push_back(mismatch);
      reports.push_back(std::move(f));
    }

    if (json) {
      std::cout << "{\"dir\":\"" << json_escape(path) << "\",\"ok\":"
                << (all_ok ? "true" : "false") << ",\"entries\":[";
      for (std::size_t i = 0; i < entries.size(); ++i) {
        std::cout << (i ? "," : "") << "{\"step\":" << entries[i].step
                  << ",\"file\":\"" << json_escape(entries[i].file)
                  << "\",\"bytes\":" << entries[i].bytes
                  << ",\"crc\":" << entries[i].crc << ",\"audit\":";
        print_file_json(std::cout, reports[i]);
        std::cout << "}";
      }
      std::cout << "]}\n";
    } else {
      std::cout << "checkpoint dir " << path << ": " << entries.size()
                << " committed entries, "
                << (all_ok ? "all verify" : "CORRUPTION FOUND") << "\n";
      for (std::size_t i = 0; i < entries.size(); ++i) {
        std::cout << "step " << entries[i].step << " -> " << entries[i].file
                  << "\n";
        print_file_text(reports[i], "  ");
      }
    }
    return all_ok ? 0 : 2;
  } catch (const std::exception& e) {
    // A manifest that cannot even be parsed is corruption, not usage error.
    std::cerr << "ckpt_inspect: " << e.what() << "\n";
    return 2;
  }
}
