#!/usr/bin/env bash
# Changed-files clang-tidy driver for the CI analysis job (and local use).
#
#   tools/run_clang_tidy.sh [base-ref] [build-dir]
#
# Diffs the working tree against base-ref (default: origin/main, falling
# back to HEAD~1), keeps the .cpp files under src/ tools/ bench/ tests/,
# and runs clang-tidy against the compile database in build-dir (default:
# build — configure with CMAKE_EXPORT_COMPILE_COMMANDS, which the top-level
# CMakeLists.txt always sets). When no merge base is resolvable (shallow
# clone, fresh repo with no parent commit, missing remote) it degrades to a
# full-tree run instead of silently checking nothing. Exits non-zero on any
# finding; prints and exits 0 when nothing relevant changed.
set -euo pipefail

base_ref="${1:-}"
build_dir="${2:-build}"

if [[ -z "${base_ref}" ]]; then
  if git rev-parse --verify -q origin/main >/dev/null; then
    base_ref=origin/main
  elif git rev-parse --verify -q HEAD~1 >/dev/null; then
    base_ref=HEAD~1
  fi
fi
if [[ -n "${base_ref}" ]] && ! git rev-parse --verify -q "${base_ref}" >/dev/null; then
  echo "clang-tidy: base ref '${base_ref}' not resolvable — full-tree run"
  base_ref=""
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: ${build_dir}/compile_commands.json not found — configure cmake first" >&2
  exit 1
fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" >/dev/null; then
  echo "error: ${tidy_bin} not found (set CLANG_TIDY to override)" >&2
  exit 1
fi

if [[ -n "${base_ref}" ]]; then
  mapfile -t changed < <(git diff --name-only --diff-filter=d "${base_ref}" -- \
    'src/**/*.cpp' 'tools/*.cpp' 'bench/*.cpp' 'tests/*.cpp')
  scope="files changed since ${base_ref}"
else
  mapfile -t changed < <(git ls-files \
    'src/**/*.cpp' 'tools/*.cpp' 'bench/*.cpp' 'tests/*.cpp')
  scope="full tree (no merge base)"
fi

if [[ ${#changed[@]} -eq 0 ]]; then
  echo "clang-tidy: no relevant C++ sources (${scope})"
  exit 0
fi

echo "clang-tidy (${tidy_bin}) over ${#changed[@]} files — ${scope}:"
printf '  %s\n' "${changed[@]}"
"${tidy_bin}" -p "${build_dir}" --quiet --warnings-as-errors='' "${changed[@]}"
