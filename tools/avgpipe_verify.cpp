/// \file avgpipe_verify.cpp
/// CLI driver for the static schedule/protocol verifier and the trace
/// happens-before checker — the repo's offline correctness gate.
///
/// Schedule mode (default): model-check a grid of (kind, K, M, advance)
/// points, prove deadlock freedom and the non-parking-send contract, and
/// cross-check each point's exact peak link occupancy against the
/// schedule-derived capacity (run-ahead + 1, see
/// PipelineRuntime::link_capacity): the peak must equal capacity - 1.
///
///   avgpipe_verify                                  # default CI grid
///   avgpipe_verify --kinds=afab,1f1b,afp --stages=2:4 --micro-batches=2:8
///   avgpipe_verify --capacity=3                     # model an override
///   avgpipe_verify --no-slack                       # capacity = run-ahead:
///                                                   # reports the parked
///                                                   # send, exits 2
///   avgpipe_verify --elastic=async --sync-lag=2 --batches=3
///   avgpipe_verify --counterexample                 # print violation traces
///   avgpipe_verify --json=verify.json
///
/// Trace mode: replay a recorded Chrome trace through the happens-before
/// checker (FIFO per link, in-stage ordering, causal timestamps,
/// update-before-pull, sync-lag bound).
///
///   avgpipe_verify --mode=trace --trace=fig13.trace.json [--strict]
///                  [--sync-lag=N]
///
/// Exit codes: 0 all checks passed, 2 a violation was found, 3 usage error.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "schedule/schedule.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/happens_before.hpp"
#include "verify/verifier.hpp"

namespace {

using avgpipe::verify::ElasticMode;
using avgpipe::verify::ModelConfig;
using avgpipe::verify::Report;
using avgpipe::verify::Verdict;

struct Options {
  std::string mode = "schedule";
  std::vector<avgpipe::schedule::Kind> kinds;
  std::size_t stages_lo = 2, stages_hi = 4;
  std::size_t micro_lo = 2, micro_hi = 8;
  std::size_t batches = 1;
  std::vector<std::size_t> advances;  // empty: schedule-derived default
  std::size_t capacity = 0;           // 0: derived
  bool no_slack = false;              // capacity = run-ahead (slack removed)
  ElasticMode elastic = ElasticMode::kNone;
  std::size_t sync_lag = 1;
  bool allow_park = false;
  bool no_por = false;
  bool show_counterexample = false;
  std::string json_path;
  // trace mode
  std::string trace_path;
  bool strict = false;
  long trace_sync_lag = -1;
};

[[noreturn]] void usage_error(const std::string& what) {
  std::cerr << "avgpipe_verify: " << what << "\n"
            << "  --mode=schedule|trace\n"
            << "  schedule: --kinds=afab,1f1b,afp --stages=LO:HI "
               "--micro-batches=LO:HI\n"
            << "            --advance=N[,N...] --batches=N --capacity=N "
               "--no-slack\n"
            << "            --elastic=none|sync|async --sync-lag=N "
               "--allow-park --no-por\n"
            << "            --counterexample --json=PATH\n"
            << "  trace:    --trace=PATH --strict --sync-lag=N\n";
  std::exit(3);
}

std::size_t parse_size(const std::string& v, const std::string& flag) {
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') usage_error("bad value for " + flag);
  return static_cast<std::size_t>(parsed);
}

void parse_range(const std::string& v, const std::string& flag,
                 std::size_t* lo, std::size_t* hi) {
  const auto colon = v.find(':');
  if (colon == std::string::npos) {
    *lo = *hi = parse_size(v, flag);
    return;
  }
  *lo = parse_size(v.substr(0, colon), flag);
  *hi = parse_size(v.substr(colon + 1), flag);
  if (*lo > *hi) usage_error(flag + " range is inverted");
}

avgpipe::schedule::Kind parse_kind(const std::string& name) {
  using avgpipe::schedule::Kind;
  if (name == "afab") return Kind::kAfab;
  if (name == "1f1b") return Kind::kOneFOneB;
  if (name == "afp") return Kind::kAdvanceForward;
  usage_error("unknown kind '" + name + "' (afab|1f1b|afp)");
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (flag == "--mode") {
      o.mode = val;
    } else if (flag == "--kinds") {
      std::stringstream ss(val);
      std::string item;
      while (std::getline(ss, item, ',')) o.kinds.push_back(parse_kind(item));
    } else if (flag == "--stages") {
      parse_range(val, flag, &o.stages_lo, &o.stages_hi);
    } else if (flag == "--micro-batches") {
      parse_range(val, flag, &o.micro_lo, &o.micro_hi);
    } else if (flag == "--advance") {
      std::stringstream ss(val);
      std::string item;
      while (std::getline(ss, item, ',')) {
        o.advances.push_back(parse_size(item, flag));
      }
    } else if (flag == "--batches") {
      o.batches = parse_size(val, flag);
    } else if (flag == "--capacity") {
      o.capacity = parse_size(val, flag);
    } else if (flag == "--no-slack") {
      o.no_slack = true;
    } else if (flag == "--elastic") {
      if (val == "none") {
        o.elastic = ElasticMode::kNone;
      } else if (val == "sync") {
        o.elastic = ElasticMode::kSync;
      } else if (val == "async") {
        o.elastic = ElasticMode::kAsync;
      } else {
        usage_error("unknown elastic mode '" + val + "'");
      }
    } else if (flag == "--sync-lag") {
      o.sync_lag = parse_size(val, flag);
      o.trace_sync_lag = static_cast<long>(o.sync_lag);
    } else if (flag == "--allow-park") {
      o.allow_park = true;
    } else if (flag == "--no-por") {
      o.no_por = true;
    } else if (flag == "--counterexample") {
      o.show_counterexample = true;
    } else if (flag == "--json") {
      o.json_path = val;
    } else if (flag == "--trace") {
      o.trace_path = val;
    } else if (flag == "--strict") {
      o.strict = true;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }
  if (o.kinds.empty()) {
    o.kinds = {avgpipe::schedule::Kind::kAfab,
               avgpipe::schedule::Kind::kOneFOneB,
               avgpipe::schedule::Kind::kAdvanceForward};
  }
  return o;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

int run_schedule_mode(const Options& o) {
  std::vector<std::pair<ModelConfig, Report>> results;
  int failures = 0;

  for (const auto kind : o.kinds) {
    for (std::size_t k = o.stages_lo; k <= o.stages_hi; ++k) {
      for (std::size_t m = o.micro_lo; m <= o.micro_hi; ++m) {
        std::vector<std::size_t> advances = o.advances;
        if (advances.empty()) {
          advances = {0};  // runtime default (K-1)
          if (kind == avgpipe::schedule::Kind::kAdvanceForward) {
            // AFP's interesting range: the 1F1B minimum up to AFAB-like
            // (clamped to the schedule's advance >= K-1 validity floor).
            advances = {k - 1, k, std::max(m, k - 1)};
            std::sort(advances.begin(), advances.end());
            advances.erase(std::unique(advances.begin(), advances.end()),
                           advances.end());
          }
        }
        for (const auto adv : advances) {
          ModelConfig cfg;
          cfg.kind = kind;
          cfg.num_stages = k;
          cfg.micro_batches = m;
          cfg.num_batches = o.batches;
          cfg.advance_num = adv;
          cfg.elastic = o.elastic;
          cfg.sync_lag = o.sync_lag;
          cfg.check_send_parking = !o.allow_park;
          cfg.partial_order_reduction = !o.no_por;
          cfg.link_capacity = o.capacity;
          if (o.no_slack) {
            // Remove the "+1 slack": the exact run-ahead, under which the
            // verifier must report a parked send instead of hanging.
            cfg.link_capacity = avgpipe::schedule::max_send_run_ahead(
                kind, k, m, adv == 0 ? k - 1 : adv);
          }
          Report r = avgpipe::verify::verify(cfg);
          const bool derived_cap = cfg.link_capacity == 0;
          const bool peak_matches =
              !derived_cap ||
              r.peak_link_occupancy + 1 == r.derived_link_capacity;
          if (!r.ok() || !peak_matches) ++failures;
          if (r.ok() && !peak_matches) {
            r.diagnosis = "peak link occupancy " +
                          std::to_string(r.peak_link_occupancy) +
                          " != derived capacity - 1 (" +
                          std::to_string(r.derived_link_capacity - 1) + ")";
          }
          results.emplace_back(cfg, std::move(r));
        }
      }
    }
  }

  avgpipe::Table table({"kind", "K", "M", "adv", "elastic", "cap", "verdict",
                        "peak-link", "in-flight", "states", "transitions"});
  for (const auto& [cfg, r] : results) {
    table.row()
        .cell(avgpipe::schedule::to_string(cfg.kind))
        .cell_int(static_cast<long long>(cfg.num_stages))
        .cell_int(static_cast<long long>(cfg.micro_batches))
        .cell_int(static_cast<long long>(cfg.advance_num))
        .cell(avgpipe::verify::to_string(cfg.elastic))
        .cell_int(static_cast<long long>(r.link_capacity_used))
        .cell(avgpipe::verify::to_string(r.verdict))
        .cell_int(static_cast<long long>(r.peak_link_occupancy))
        .cell_int(static_cast<long long>(r.peak_in_flight))
        .cell_int(static_cast<long long>(r.states))
        .cell_int(static_cast<long long>(r.transitions));
  }
  table.print();

  for (const auto& [cfg, r] : results) {
    if (!r.diagnosis.empty()) {
      std::cout << "\n" << avgpipe::schedule::to_string(cfg.kind)
                << " K=" << cfg.num_stages << " M=" << cfg.micro_batches
                << ": " << r.diagnosis << "\n";
    }
    if (o.show_counterexample && !r.counterexample.empty()) {
      std::cout << avgpipe::verify::format_report(cfg, r);
    }
  }

  if (!o.json_path.empty()) {
    std::ofstream out(o.json_path);
    out << "{\n  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& [cfg, r] = results[i];
      out << "    {\"kind\": \""
          << avgpipe::schedule::to_string(cfg.kind) << "\", \"stages\": "
          << cfg.num_stages << ", \"micro_batches\": " << cfg.micro_batches
          << ", \"advance\": " << cfg.advance_num << ", \"capacity\": "
          << r.link_capacity_used << ", \"verdict\": \""
          << avgpipe::verify::to_string(r.verdict)
          << "\", \"peak_link_occupancy\": " << r.peak_link_occupancy
          << ", \"peak_in_flight\": " << r.peak_in_flight
          << ", \"states\": " << r.states
          << ", \"diagnosis\": \"" << json_escape(r.diagnosis) << "\"}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"failures\": " << failures << "\n}\n";
  }

  std::cout << "\n" << results.size() << " configurations, " << failures
            << " failures\n";
  return failures == 0 ? 0 : 2;
}

int run_trace_mode(const Options& o) {
  if (o.trace_path.empty()) usage_error("--mode=trace needs --trace=PATH");
  std::ifstream in(o.trace_path);
  if (!in) {
    std::cerr << "avgpipe_verify: cannot open " << o.trace_path << "\n";
    return 3;
  }
  const auto events = avgpipe::trace::parse_chrome_trace(in);
  avgpipe::trace::HbOptions hb;
  hb.strict = o.strict;
  hb.sync_lag = o.trace_sync_lag;
  const auto report = avgpipe::trace::check_happens_before(events, hb);
  std::cout << report.summary() << "\n";
  for (const auto& v : report.violations) {
    std::cout << "  " << v.what << "\n";
  }
  if (report.violations_total > report.violations.size()) {
    std::cout << "  ... and "
              << report.violations_total - report.violations.size()
              << " more\n";
  }
  return report.ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse_args(argc, argv);
  try {
    if (o.mode == "schedule") return run_schedule_mode(o);
    if (o.mode == "trace") return run_trace_mode(o);
  } catch (const std::exception& e) {
    std::cerr << "avgpipe_verify: " << e.what() << "\n";
    return 3;
  }
  usage_error("unknown mode '" + o.mode + "'");
}
