// Worker-partition regression suite for the shared thread pool: the K stage
// threads of the pipeline runtime each hold a share of the pool budget, and
// an unrestricted caller must not oversubscribe the machine K-fold. Explicit
// PartitionGuard shares are trusted past the CPU-count cap, so these tests
// exercise real cross-thread fan-out even on a single-core host.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"

namespace avgpipe {
namespace {

TEST(StagePartition, DefaultSharesRespectBudget) {
  const auto hw = static_cast<std::size_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  const std::size_t budget = std::min(configured_num_threads(), hw);
  for (std::size_t k = 1; k <= 8; ++k) {
    const std::size_t share = default_stage_workers(k);
    EXPECT_GE(share, 1u) << "k=" << k;
    if (k <= budget) {
      // K stages at the fair share never exceed the pool budget.
      EXPECT_LE(k * share, budget) << "k=" << k;
    } else {
      // More stages than budget: everyone degrades to inline.
      EXPECT_EQ(share, 1u) << "k=" << k;
    }
  }
}

TEST(StagePartition, EnvKnobWinsWhenPositive) {
  // NOLINTBEGIN(concurrency-mt-unsafe) -- single-threaded test body.
  setenv("AVGPIPE_STAGE_THREADS", "3", 1);
  EXPECT_EQ(stage_workers_from_env(2), 3u);
  setenv("AVGPIPE_STAGE_THREADS", "junk", 1);
  EXPECT_EQ(stage_workers_from_env(2), default_stage_workers(2));
  setenv("AVGPIPE_STAGE_THREADS", "0", 1);
  EXPECT_EQ(stage_workers_from_env(2), default_stage_workers(2));
  unsetenv("AVGPIPE_STAGE_THREADS");
  EXPECT_EQ(stage_workers_from_env(2), default_stage_workers(2));
  // NOLINTEND(concurrency-mt-unsafe)
}

TEST(PartitionGuardTest, CapsChunkCountAndNests) {
  ThreadPool pool(4);
  std::atomic<std::size_t> chunks{0};
  EXPECT_EQ(current_partition(), 0u);
  {
    PartitionGuard guard(2);
    EXPECT_EQ(current_partition(), 2u);
    {
      PartitionGuard inner(3);
      EXPECT_EQ(current_partition(), 3u);
    }
    EXPECT_EQ(current_partition(), 2u);
    pool.parallel_for(0, 1000,
                      [&](std::size_t, std::size_t) { chunks.fetch_add(1); });
    EXPECT_LE(chunks.load(), 2u);
    EXPECT_GE(chunks.load(), 1u);
  }
  EXPECT_EQ(current_partition(), 0u);
}

TEST(PartitionGuardTest, ShareOfOneRunsInline) {
  ThreadPool pool(4);
  pool.reset_peak_active();
  const auto caller = std::this_thread::get_id();
  std::atomic<std::size_t> chunks{0};
  std::atomic<bool> on_caller{true};
  PartitionGuard guard(1);
  pool.parallel_for(0, 64, [&](std::size_t, std::size_t) {
    chunks.fetch_add(1);
    if (std::this_thread::get_id() != caller) on_caller.store(false);
  });
  EXPECT_EQ(chunks.load(), 1u);
  EXPECT_TRUE(on_caller.load());
  // Fully-inline execution never touches the workers.
  EXPECT_EQ(pool.peak_active_workers(), 0u);
}

TEST(PartitionGuardTest, UnpartitionedKeepsCpuCap) {
  ThreadPool pool(4);
  const auto hw = static_cast<std::size_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::atomic<std::size_t> chunks{0};
  pool.parallel_for(0, 4096,
                    [&](std::size_t, std::size_t) { chunks.fetch_add(1); });
  EXPECT_LE(chunks.load(), std::min(pool.size() + 1, hw));
}

// The oversubscription regression: K partitioned callers hammering one pool
// must (a) still cover every index exactly once per call and (b) never have
// more worker-side tasks runnable than their shares admit — bounded by the
// pool budget no matter how the K fan-outs interleave.
TEST(PartitionGuardTest, PartitionedCallersStayWithinPoolBudget) {
  ThreadPool pool(4);
  pool.reset_peak_active();
  constexpr std::size_t kCallers = 3;
  constexpr std::size_t kRange = 4096;
  constexpr int kReps = 50;
  std::vector<std::vector<int>> hits(kCallers, std::vector<int>(kRange, 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t t = 0; t < kCallers; ++t) {
    callers.emplace_back([&hits, &pool, t] {
      PartitionGuard guard(2);
      for (int rep = 0; rep < kReps; ++rep) {
        pool.parallel_for(0, kRange, [&hits, t](std::size_t lo,
                                                std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) hits[t][i] += 1;
        });
      }
    });
  }
  for (auto& th : callers) th.join();
  for (std::size_t t = 0; t < kCallers; ++t) {
    for (std::size_t i = 0; i < kRange; ++i) {
      ASSERT_EQ(hits[t][i], kReps) << "caller " << t << " index " << i;
    }
  }
  // Share 2 = caller + at most one worker-side chunk per caller, so at most
  // kCallers tasks are ever runnable on the workers — within the budget.
  EXPECT_LE(pool.peak_active_workers(), kCallers);
  EXPECT_LE(pool.peak_active_workers(), pool.size());
}

}  // namespace
}  // namespace avgpipe
