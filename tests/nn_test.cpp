#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "test_util.hpp"

namespace avgpipe::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;
using tensor::Variable;
using testutil::max_grad_error;

class NnTest : public ::testing::Test {
 protected:
  Rng rng_{17};
};

TEST_F(NnTest, LinearShapes2d) {
  Linear lin(4, 3, rng_);
  Variable x(Tensor::randn({5, 4}, rng_), false);
  EXPECT_EQ(lin.forward(x).shape(), Shape({5, 3}));
}

TEST_F(NnTest, LinearShapes3d) {
  Linear lin(4, 3, rng_);
  Variable x(Tensor::randn({2, 5, 4}, rng_), false);
  EXPECT_EQ(lin.forward(x).shape(), Shape({2, 5, 3}));
}

TEST_F(NnTest, LinearWrongDimThrows) {
  Linear lin(4, 3, rng_);
  Variable x(Tensor::randn({5, 5}, rng_), false);
  EXPECT_THROW(lin.forward(x), Error);
}

TEST_F(NnTest, LinearGradcheck) {
  Linear lin(3, 2, rng_);
  Variable x(Tensor::randn({4, 3}, rng_), true);
  auto params = lin.parameters();
  params.push_back(x);
  EXPECT_LT(max_grad_error(
                [&] {
                  Variable y = lin.forward(x);
                  return tensor::sum_all(tensor::mul(y, y));
                },
                params),
            1e-4);
}

TEST_F(NnTest, LinearParamCount) {
  Linear lin(4, 3, rng_);
  EXPECT_EQ(lin.num_params(), 4u * 3u + 3u);
  Linear nobias(4, 3, rng_, /*bias=*/false);
  EXPECT_EQ(nobias.num_params(), 12u);
}

TEST_F(NnTest, EmbeddingLookup) {
  Embedding emb(10, 4, rng_);
  Variable ids(Tensor::from2d({{1, 2}, {3, 1}}), false);
  Variable out = emb.forward(ids);
  EXPECT_EQ(out.shape(), Shape({2, 2, 4}));
  // Rows for the same token are identical.
  const auto v = out.value().data();
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(v[0 * 4 + c], v[3 * 4 + c]);  // token 1 at (0,0) and (1,1)
  }
}

TEST_F(NnTest, LayerNormNormalises) {
  LayerNorm ln(8);
  Variable x(Tensor::randn({4, 8}, rng_), false);
  Tensor y = ln.forward(x).value();
  for (std::size_t r = 0; r < 4; ++r) {
    double mean = 0, var = 0;
    for (std::size_t c = 0; c < 8; ++c) mean += y.at(r, c);
    mean /= 8;
    for (std::size_t c = 0; c < 8; ++c) {
      var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST_F(NnTest, DropoutRespectsTrainingFlag) {
  Dropout d(0.5, rng_);
  Variable x(Tensor::ones({1000}), false);
  d.set_training(false);
  EXPECT_EQ(d.forward(x).value().max_abs_diff(Tensor::ones({1000})), 0.0);
  d.set_training(true);
  EXPECT_GT(Tensor::ones({1000}).max_abs_diff(d.forward(x).value()), 0.0);
}

TEST_F(NnTest, DropConnectMasksWeightsOnlyInTraining) {
  DropConnectLinear lin(6, 6, 0.5, rng_);
  Variable x(Tensor::ones({2, 6}), false);
  lin.set_training(false);
  Tensor eval1 = lin.forward(x).value();
  Tensor eval2 = lin.forward(x).value();
  EXPECT_EQ(eval1.max_abs_diff(eval2), 0.0);  // deterministic in eval
  lin.set_training(true);
  Tensor train1 = lin.forward(x).value();
  Tensor train2 = lin.forward(x).value();
  EXPECT_GT(train1.max_abs_diff(train2), 0.0);  // fresh mask per pass
}

TEST_F(NnTest, MeanPoolSeq) {
  MeanPoolSeq pool;
  Variable x(Tensor::from2d({{1, 2}, {3, 4}}).reshape({1, 2, 2}), false);
  Tensor y = pool.forward(x).value();
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST_F(NnTest, MeanPoolGradcheck) {
  MeanPoolSeq pool;
  Variable x(Tensor::randn({2, 3, 4}, rng_), true);
  EXPECT_LT(max_grad_error(
                [&] {
                  Variable y = pool.forward(x);
                  return tensor::sum_all(tensor::mul(y, y));
                },
                {x}),
            1e-5);
}

TEST_F(NnTest, LastStep) {
  LastStep last;
  Variable x(Tensor::from2d({{1, 2}, {3, 4}}).reshape({1, 2, 2}), false);
  Tensor y = last.forward(x).value();
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
}

TEST_F(NnTest, AttentionShapesAndGrad) {
  MultiHeadSelfAttention attn(8, 2, rng_);
  attn.set_training(false);
  Variable x(Tensor::randn({2, 3, 8}, rng_, 0.5), true);
  Variable out = attn.forward(x);
  EXPECT_EQ(out.shape(), Shape({2, 3, 8}));
  auto params = attn.parameters();
  params.push_back(x);
  EXPECT_LT(max_grad_error(
                [&] {
                  Variable y = attn.forward(x);
                  return tensor::mean_all(tensor::mul(y, y));
                },
                params, 1e-5),
            1e-4);
}

TEST_F(NnTest, AttentionRejectsIndivisibleHeads) {
  EXPECT_THROW(MultiHeadSelfAttention(10, 3, rng_), Error);
}

TEST_F(NnTest, TransformerLayerPreservesShape) {
  TransformerEncoderLayer layer(8, 2, 16, rng_, 0.0);
  layer.set_training(false);
  Variable x(Tensor::randn({2, 4, 8}, rng_, 0.5), false);
  EXPECT_EQ(layer.forward(x).shape(), Shape({2, 4, 8}));
}

TEST_F(NnTest, LstmShapes) {
  LSTM lstm(4, 6, rng_);
  Variable x(Tensor::randn({3, 5, 4}, rng_), false);
  EXPECT_EQ(lstm.forward(x).shape(), Shape({3, 5, 6}));
}

TEST_F(NnTest, LstmGradcheck) {
  LSTM lstm(3, 4, rng_);
  lstm.set_training(false);
  Variable x(Tensor::randn({2, 3, 3}, rng_, 0.5), true);
  auto params = lstm.parameters();
  params.push_back(x);
  EXPECT_LT(max_grad_error(
                [&] {
                  Variable y = lstm.forward(x);
                  return tensor::mean_all(tensor::mul(y, y));
                },
                params, 1e-5),
            1e-4);
}

TEST_F(NnTest, LstmStateIsCausal) {
  // Changing a later timestep must not affect earlier outputs.
  LSTM lstm(2, 3, rng_);
  lstm.set_training(false);
  Tensor base = Tensor::randn({1, 4, 2}, rng_);
  Variable x1(base.clone(), false);
  Tensor modified = base.clone();
  modified[modified.numel() - 1] += 1.0;
  Variable x2(modified, false);
  Tensor y1 = lstm.forward(x1).value();
  Tensor y2 = lstm.forward(x2).value();
  // First three timesteps identical, last differs.
  for (std::size_t t = 0; t < 3; ++t) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(y1[t * 3 + c], y2[t * 3 + c]) << "t=" << t;
    }
  }
  EXPECT_GT(y1.max_abs_diff(y2), 0.0);
}

// -- Sequential / partitioning ---------------------------------------------------------

TEST_F(NnTest, SequentialForwardChains) {
  Sequential seq;
  seq.emplace<Linear>(4, 8, rng_).emplace<Tanh>().emplace<Linear>(8, 2, rng_);
  Variable x(Tensor::randn({3, 4}, rng_), false);
  EXPECT_EQ(seq.forward(x).shape(), Shape({3, 2}));
  EXPECT_EQ(seq.size(), 3u);
}

TEST_F(NnTest, SequentialSliceSharesParameters) {
  Sequential seq;
  seq.emplace<Linear>(4, 4, rng_).emplace<Tanh>().emplace<Linear>(4, 4, rng_);
  Sequential head = seq.slice(0, 2);
  // Mutating the slice's parameter mutates the original.
  head.parameters()[0].value().fill_(0.5);
  EXPECT_EQ(seq.parameters()[0].value()[0], 0.5);
}

TEST_F(NnTest, PartitionCoversAllLayers) {
  Sequential seq;
  for (int i = 0; i < 6; ++i) seq.emplace<Tanh>();
  auto stages = seq.partition({2, 4});
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0].size(), 2u);
  EXPECT_EQ(stages[1].size(), 2u);
  EXPECT_EQ(stages[2].size(), 2u);
}

TEST_F(NnTest, PartitionedForwardEqualsFullForward) {
  Sequential seq = make_mlp(6, 10, 3, 4, /*seed=*/5);
  auto stages = seq.partition({2, 5});
  Rng rng(9);
  Variable x(Tensor::randn({4, 6}, rng), false);
  Variable full = seq.forward(x);
  Variable piecewise = x;
  for (auto& s : stages) piecewise = s.forward(piecewise);
  EXPECT_EQ(full.value().max_abs_diff(piecewise.value()), 0.0);
}

TEST_F(NnTest, CopyParametersMakesModelsIdentical) {
  Sequential a = make_mlp(4, 8, 2, 3, 1);
  Sequential b = make_mlp(4, 8, 2, 3, 2);
  Rng rng(3);
  Variable x(Tensor::randn({2, 4}, rng), false);
  EXPECT_GT(a.forward(x).value().max_abs_diff(b.forward(x).value()), 0.0);
  copy_parameters(a, b);
  EXPECT_EQ(a.forward(x).value().max_abs_diff(b.forward(x).value()), 0.0);
}

// -- model builders ----------------------------------------------------------------------

TEST_F(NnTest, GnmtLikeOutputShape) {
  Sequential m = make_gnmt_like(50, 8, 12, 2, 5, 1);
  Variable ids(Tensor::zeros({3, 7}), false);
  EXPECT_EQ(m.forward(ids).shape(), Shape({3, 5}));
}

TEST_F(NnTest, BertLikeOutputShape) {
  Sequential m = make_bert_like(50, 8, 2, 16, 2, 2, 1, 0.0);
  m.set_training(false);
  Variable ids(Tensor::zeros({2, 6}), false);
  EXPECT_EQ(m.forward(ids).shape(), Shape({2, 2}));
}

TEST_F(NnTest, AwdLikeOutputShape) {
  Sequential m = make_awd_like(30, 8, 12, 3, 1, 0.2);
  m.set_training(false);
  Variable ids(Tensor::zeros({2, 5}), false);
  EXPECT_EQ(m.forward(ids).shape(), Shape({2, 5, 30}));
}

TEST_F(NnTest, ModelsAreDeterministicInSeed) {
  Sequential a = make_bert_like(20, 8, 2, 16, 1, 2, 42, 0.0);
  Sequential b = make_bert_like(20, 8, 2, 16, 1, 2, 42, 0.0);
  auto pa = a.parameters(), pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].value().max_abs_diff(pb[i].value()), 0.0);
  }
}

}  // namespace
}  // namespace avgpipe::nn
