#pragma once

/// \file test_util.hpp
/// Shared helpers for the test suite: numeric gradient checking and small
/// fixtures.

#include <cmath>
#include <functional>

#include "tensor/ops.hpp"

namespace avgpipe::testutil {

using tensor::Scalar;
using tensor::Tensor;
using tensor::Variable;

/// Numeric-vs-autograd gradient check.
///
/// `make_loss` must rebuild the scalar loss from scratch on every call
/// (define-by-run), reading the current values of `params`. Returns the
/// maximum elementwise absolute error between the autograd gradient and a
/// central-difference estimate across all parameters.
inline double max_grad_error(const std::function<Variable()>& make_loss,
                             std::vector<Variable> params,
                             Scalar eps = 1e-5) {
  // Autograd pass.
  for (auto& p : params) p.zero_grad();
  Variable loss = make_loss();
  loss.backward();
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (auto& p : params) analytic.push_back(p.grad().clone());

  double worst = 0.0;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto values = params[pi].value().data();
    for (std::size_t i = 0; i < values.size(); ++i) {
      const Scalar saved = values[i];
      values[i] = saved + eps;
      const Scalar up = make_loss().value()[0];
      values[i] = saved - eps;
      const Scalar down = make_loss().value()[0];
      values[i] = saved;
      const Scalar numeric = (up - down) / (2.0 * eps);
      worst = std::max(worst,
                       std::fabs(numeric - analytic[pi].data()[i]));
    }
  }
  return worst;
}

}  // namespace avgpipe::testutil
