#include "common/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>

#include "common/thread_pool.hpp"

namespace avgpipe {
namespace {

TEST(ChannelTest, SendRecvFifo) {
  Channel<int> ch(8);
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(ch.recv().value(), 1);
  EXPECT_EQ(ch.recv().value(), 2);
}

TEST(ChannelTest, TrySendFullFails) {
  Channel<int> ch(2);
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));
  EXPECT_EQ(ch.size(), 2u);
}

TEST(ChannelTest, TryRecvEmptyFails) {
  Channel<int> ch(2);
  EXPECT_FALSE(ch.try_recv().has_value());
}

TEST(ChannelTest, CloseDrainsRemainingItems) {
  Channel<int> ch(4);
  ch.send(7);
  ch.close();
  EXPECT_EQ(ch.recv().value(), 7);
  EXPECT_FALSE(ch.recv().has_value());
}

TEST(ChannelTest, SendAfterCloseFails) {
  Channel<int> ch(4);
  ch.close();
  EXPECT_FALSE(ch.send(1));
  EXPECT_FALSE(ch.try_send(1));
}

TEST(ChannelTest, CloseWakesBlockedReceiver) {
  Channel<int> ch(1);
  std::thread t([&] {
    auto v = ch.recv();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.close();
  t.join();
}

TEST(ChannelTest, BackpressureBlocksSenderUntilRecv) {
  Channel<int> ch(1);
  ch.send(1);
  std::atomic<bool> second_sent{false};
  std::thread t([&] {
    ch.send(2);
    second_sent = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_sent.load());
  EXPECT_EQ(ch.recv().value(), 1);
  t.join();
  EXPECT_TRUE(second_sent.load());
  EXPECT_EQ(ch.recv().value(), 2);
}

TEST(ChannelTest, ZeroCapacityThrows) {
  EXPECT_THROW(Channel<int>(0), Error);
}

TEST(ChannelTest, CloseWakesBlockedProducer) {
  // A producer blocked on a full channel must be released by close() and see
  // the send fail — the shutdown path of a failed pipeline stage.
  Channel<int> ch(1);
  ch.send(1);
  std::atomic<bool> send_result{true};
  std::thread t([&] { send_result = ch.send(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.close();
  t.join();
  EXPECT_FALSE(send_result.load());
  EXPECT_EQ(ch.recv().value(), 1);  // the buffered item still drains
  EXPECT_FALSE(ch.recv().has_value());
}

TEST(ChannelTest, RecvForTimesOutOnEmptyOpenChannel) {
  Channel<int> ch(2);
  int out = 0;
  EXPECT_EQ(ch.recv_for(&out, 0.01), ChannelStatus::kTimeout);
  ch.send(9);
  EXPECT_EQ(ch.recv_for(&out, 0.01), ChannelStatus::kOk);
  EXPECT_EQ(out, 9);
}

TEST(ChannelTest, RecvForDrainsPendingItemsAfterClose) {
  Channel<int> ch(2);
  ch.send(5);
  ch.close();
  int out = 0;
  EXPECT_EQ(ch.recv_for(&out, 0.01), ChannelStatus::kOk);
  EXPECT_EQ(out, 5);
  EXPECT_EQ(ch.recv_for(&out, 0.01), ChannelStatus::kClosed);
}

TEST(ChannelTest, SendForTimesOutOnFullAndFailsOnClosed) {
  Channel<int> ch(1);
  EXPECT_EQ(ch.send_for(1, 0.01), ChannelStatus::kOk);
  EXPECT_EQ(ch.send_for(2, 0.01), ChannelStatus::kTimeout);  // full
  ch.close();
  EXPECT_EQ(ch.send_for(3, 0.01), ChannelStatus::kClosed);
}

TEST(ChannelTest, RecvForDeliversWhenProducerArrivesWithinTimeout) {
  Channel<int> ch(1);
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ch.send(42);
  });
  int out = 0;
  EXPECT_EQ(ch.recv_for(&out, 5.0), ChannelStatus::kOk);
  EXPECT_EQ(out, 42);
  t.join();
}

TEST(ChannelTest, CloseIsIdempotent) {
  Channel<int> ch(1);
  ch.close();
  ch.close();
  EXPECT_TRUE(ch.closed());
}

TEST(ChannelStressTest, MpmcDeliversEverythingExactlyOnce) {
  Channel<int> ch(16);
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 500;
  std::atomic<long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.send(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = ch.recv()) {
        sum += *v;
        ++received;
      }
    });
  }
  // Join producers, then close so consumers drain and exit.
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  ch.close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();

  const long n = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// -- SpscChannel: the lock-free stage-to-stage link ---------------------------------

TEST(SpscChannelTest, SendRecvFifo) {
  SpscChannel<int> ch(8);
  EXPECT_TRUE(ch.send(1));
  EXPECT_TRUE(ch.send(2));
  EXPECT_EQ(ch.recv().value(), 1);
  EXPECT_EQ(ch.recv().value(), 2);
}

TEST(SpscChannelTest, TrySendFullAndTryRecvEmptyFail) {
  SpscChannel<int> ch(2);
  EXPECT_FALSE(ch.try_recv().has_value());
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.try_recv().value(), 1);
  EXPECT_TRUE(ch.try_send(3));
}

TEST(SpscChannelTest, CloseDrainsRemainingItems) {
  SpscChannel<int> ch(4);
  ch.send(7);
  ch.send(8);
  ch.close();
  EXPECT_FALSE(ch.send(9));
  EXPECT_EQ(ch.recv().value(), 7);
  EXPECT_EQ(ch.recv().value(), 8);
  EXPECT_FALSE(ch.recv().has_value());
}

TEST(SpscChannelTest, CloseWakesBlockedReceiverAndProducer) {
  SpscChannel<int> ch(1);
  std::thread receiver([&] { EXPECT_FALSE(ch.recv().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  receiver.join();

  SpscChannel<int> full(1);
  full.send(1);
  std::thread producer([&] { EXPECT_FALSE(full.send(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  full.close();
  producer.join();
}

TEST(SpscChannelTest, TimedOpsTimeOutAndDeliver) {
  SpscChannel<int> ch(1);
  int out = 0;
  EXPECT_EQ(ch.recv_for(&out, 0.01), ChannelStatus::kTimeout);
  ch.send(5);
  EXPECT_EQ(ch.send_for(6, 0.01), ChannelStatus::kTimeout);  // full
  EXPECT_EQ(ch.recv_for(&out, 0.01), ChannelStatus::kOk);
  EXPECT_EQ(out, 5);
  ch.close();
  EXPECT_EQ(ch.send_for(7, 0.01), ChannelStatus::kClosed);
}

TEST(SpscChannelTest, MoveOnlyPayloadTransfersOwnership) {
  // The pipeline's ActMessage/GradMessage are move-only; the channel must
  // never require a copy.
  SpscChannel<std::unique_ptr<int>> ch(2);
  ch.send(std::make_unique<int>(42));
  auto out = ch.recv();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 42);
}

TEST(SpscChannelStressTest, DeliversEverythingExactlyOnceInOrder) {
  // One producer, one consumer, tiny capacity: maximal contention on the
  // park/unpark handshake. Ordering must be exact (FIFO), delivery exact-
  // once — TSan covers the memory-order claims.
  SpscChannel<int> ch(2);
  constexpr int kItems = 20000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(ch.send(i));
    ch.close();
  });
  int expected = 0;
  while (auto v = ch.recv()) {
    ASSERT_EQ(*v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(SpscChannelStressTest, TimedRecvContentionDeliversAll) {
  // Consumer polls with short timeouts (the fault-tolerant recv path) while
  // the producer free-runs: no message may be lost or duplicated.
  SpscChannel<int> ch(4);
  constexpr int kItems = 5000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(ch.send(i));
    ch.close();
  });
  int expected = 0;
  for (;;) {
    int out = -1;
    const auto status = ch.recv_for(&out, 0.0005);
    if (status == ChannelStatus::kClosed) break;
    if (status == ChannelStatus::kOk) {
      ASSERT_EQ(out, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(SpscChannelTest, CloseWakesBlockedTimedReceiverPromptly) {
  // Regression for the recovery path: the runtime's robust_recv parks in
  // recv_for with a long deadline; a teardown close() must wake it with
  // kClosed immediately, not leave it to ride out the timeout (which turned
  // pipeline teardown into a deadline-long stall).
  SpscChannel<int> ch(1);
  ChannelStatus status = ChannelStatus::kOk;
  std::thread receiver([&] {
    int out = 0;
    status = ch.recv_for(&out, /*timeout=*/30.0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto t0 = std::chrono::steady_clock::now();
  ch.close();
  receiver.join();
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(status, ChannelStatus::kClosed);
  EXPECT_LT(std::chrono::duration<double>(waited).count(), 5.0);
}

TEST(SpscChannelTest, TimedRecvDrainsPendingItemsThenReportsClosed) {
  // Deterministic end-of-stream: items buffered before close() are still
  // delivered (kOk, in order), and only then does recv_for report kClosed.
  SpscChannel<int> ch(4);
  ch.send(1);
  ch.send(2);
  ch.send(3);
  ch.close();
  int out = 0;
  for (int expected = 1; expected <= 3; ++expected) {
    ASSERT_EQ(ch.recv_for(&out, 0.01), ChannelStatus::kOk);
    EXPECT_EQ(out, expected);
  }
  EXPECT_EQ(ch.recv_for(&out, 0.01), ChannelStatus::kClosed);
}

TEST(SpscChannelTest, ClosedAndDrainedIsStickyAcrossRecvOps) {
  // Once any recv-side op has observed closed-and-drained, every later
  // recv-side op must agree — kClosed (never kTimeout), nullopt — so a
  // recovery drain loop's end-of-stream point is scheduling-independent.
  SpscChannel<int> ch(2);
  ch.send(9);
  ch.close();
  EXPECT_EQ(ch.recv().value(), 9);
  EXPECT_FALSE(ch.recv().has_value());  // first kClosed observation
  int out = 0;
  EXPECT_EQ(ch.recv_for(&out, 0.01), ChannelStatus::kClosed);
  EXPECT_EQ(ch.recv_for(&out, 0.0), ChannelStatus::kClosed);
  EXPECT_FALSE(ch.try_recv().has_value());
  EXPECT_FALSE(ch.recv().has_value());
}

TEST(ChannelStressTest, SpinPathPingPong) {
  // Two channels, two threads bouncing a token: exercises the spin-then-park
  // fast path (the reply usually lands within the spin window on SMP, and
  // within the yield window on a uniprocessor).
  Channel<int> ping(1), pong(1);
  constexpr int kRounds = 5000;
  std::thread echo([&] {
    while (auto v = ping.recv()) pong.send(*v + 1);
    pong.close();
  });
  for (int i = 0; i < kRounds; ++i) {
    ping.send(i);
    auto r = pong.recv();
    ASSERT_TRUE(r.has_value());
    ASSERT_EQ(*r, i + 1);
  }
  ping.close();
  echo.join();
  EXPECT_FALSE(pong.recv().has_value());
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SpscChannelTest, CountsSpinsAndParksOnSlowPath) {
  // A timed recv on an empty channel must walk the whole slow path: one
  // spin-window entry, then a condvar park until the deadline. Deterministic
  // (no producer involved), so exact lower bounds hold.
  SpscChannel<int> ch(4);
  EXPECT_EQ(ch.spin_waits(), 0u);
  EXPECT_EQ(ch.parks(), 0u);
  int out = 0;
  EXPECT_EQ(ch.recv_for(&out, 0.01), ChannelStatus::kTimeout);
  EXPECT_GE(ch.spin_waits(), 1u);
  EXPECT_GE(ch.parks(), 1u);
  // The fast path stays counter-free: a ready item never spins or parks.
  const std::uint64_t spins = ch.spin_waits();
  const std::uint64_t parks = ch.parks();
  ASSERT_TRUE(ch.send(7));
  EXPECT_EQ(ch.recv_for(&out, 0.01), ChannelStatus::kOk);
  EXPECT_EQ(out, 7);
  EXPECT_EQ(ch.spin_waits(), spins);
  EXPECT_EQ(ch.parks(), parks);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  // counter/m/cv must outlive the pool: the pool's destructor joins the
  // workers, so declaring it last guarantees no worker can still be touching
  // cv when cv is destroyed.
  std::atomic<int> counter{0};
  common::Mutex m;
  common::CondVar cv;
  ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] {
      if (++counter == 10) {
        common::MutexLock lock(m);
        cv.notify_one();
      }
    });
  }
  common::MutexLock lock(m);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (counter != 10) {
    if (cv.wait_until(m, lock, deadline) == std::cv_status::timeout) break;
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace avgpipe
