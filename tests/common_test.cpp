#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/step_function.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace avgpipe {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(AVGPIPE_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsWithExpression) {
  try {
    AVGPIPE_CHECK(1 == 2, "message " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("message 42"), std::string::npos);
  }
}

TEST(CheckTest, ThrowMacro) {
  EXPECT_THROW(AVGPIPE_THROW("boom"), Error);
}

TEST(RngTest, DeterministicInSeed) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, ForkDecorrelates) {
  Rng base(5);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1000) == b.uniform_int(0, 1000)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(1);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
  EXPECT_NE(v, orig);  // 1/8! chance of false failure; fixed seed avoids it
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2.5 * kGiB), "2.50 GiB");
}

TEST(UnitsTest, FormatSeconds) {
  EXPECT_EQ(format_seconds(2.5 * kHour), "2.50 h");
  EXPECT_EQ(format_seconds(90.0), "1.50 min");
  EXPECT_EQ(format_seconds(0.0425), "42.50 ms");
}

TEST(UnitsTest, FormatPercent) {
  EXPECT_EQ(format_percent(0.873), "87.3%");
}

TEST(StatsTest, RunningStatsMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(StatsTest, HistogramQuantiles) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 100.0);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 0.45, 0.1);
}

TEST(StatsTest, HistogramClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(StatsTest, EmaConverges) {
  Ema ema(0.5);
  EXPECT_FALSE(ema.initialized());
  ema.add(10.0);
  EXPECT_DOUBLE_EQ(ema.value(), 10.0);
  for (int i = 0; i < 30; ++i) ema.add(2.0);
  EXPECT_NEAR(ema.value(), 2.0, 1e-6);
}

TEST(StatsTest, RelativeDifference) {
  EXPECT_NEAR(relative_difference(100.0, 110.0), 10.0 / 110.0, 1e-12);
  EXPECT_EQ(relative_difference(0.0, 0.0), 0.0);
}

// -- StepFunction: the predictor's φ(t) curve -------------------------------------------

TEST(StepFunctionTest, AppendAndQuery) {
  StepFunction f;
  f.append(0.0, 1.0, 0.5);
  f.append(1.0, 3.0, 1.0);
  EXPECT_DOUBLE_EQ(f.value_at(0.5), 0.5);
  EXPECT_DOUBLE_EQ(f.value_at(2.0), 1.0);
  EXPECT_DOUBLE_EQ(f.value_at(5.0), 0.0);
  EXPECT_DOUBLE_EQ(f.integral(), 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(f.duration(), 3.0);
  EXPECT_DOUBLE_EQ(f.max_value(), 1.0);
}

TEST(StepFunctionTest, MergesAdjacentEqualSegments) {
  StepFunction f;
  f.append(0.0, 1.0, 0.7);
  f.append(1.0, 2.0, 0.7);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f.end(), 2.0);
}

TEST(StepFunctionTest, DropsEmptySegments) {
  StepFunction f;
  f.append(1.0, 1.0, 0.3);
  EXPECT_TRUE(f.empty());
}

TEST(StepFunctionTest, OutOfOrderAppendThrows) {
  StepFunction f;
  f.append(0.0, 2.0, 0.3);
  EXPECT_THROW(f.append(1.0, 3.0, 0.4), Error);
}

TEST(StepFunctionTest, ExcessIntegralMatchesEquationTwo) {
  // φ = 0.6 on [0, 10); scaling by 2 exceeds 100 % by 0.2 over 10s -> 2.0.
  StepFunction f;
  f.append(0.0, 10.0, 0.6);
  EXPECT_NEAR(f.excess_integral(2.0, 1.0), 2.0, 1e-12);
  // No overflow when the scaled curve stays under 100 %.
  EXPECT_DOUBLE_EQ(f.excess_integral(1.5, 1.0), 0.0);
}

TEST(StepFunctionTest, MeanOverSpanCountsGaps) {
  StepFunction f;
  f.append(0.0, 1.0, 1.0);
  f.append(3.0, 4.0, 1.0);  // 2s gap at zero
  EXPECT_DOUBLE_EQ(f.mean_over_span(), 0.5);
}

TEST(TableTest, RendersAlignedRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("b").cell_int(42);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, TooManyCellsThrows) {
  Table t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), Error);
}

}  // namespace
}  // namespace avgpipe
