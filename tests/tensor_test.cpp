#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace avgpipe::tensor {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0u);
}

TEST(TensorTest, ShapeAndNumel) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ndim(), 3u);
  EXPECT_EQ(t.numel(), 24u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(2), 4u);
}

TEST(TensorTest, ZeroInitialised) {
  Tensor t({5});
  for (auto x : t.data()) EXPECT_EQ(x, 0.0);
}

TEST(TensorTest, FullAndOnes) {
  Tensor t = Tensor::full({3}, 2.5);
  EXPECT_EQ(t[0], 2.5);
  EXPECT_EQ(Tensor::ones({2, 2}).sum(), 4.0);
}

TEST(TensorTest, FromInitializerList) {
  Tensor t = Tensor::from({1, 2, 3});
  EXPECT_EQ(t.shape(), Shape({3}));
  EXPECT_EQ(t[1], 2.0);
}

TEST(TensorTest, From2d) {
  Tensor t = Tensor::from2d({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_EQ(t.at(2, 1), 6.0);
}

TEST(TensorTest, From2dRaggedThrows) {
  EXPECT_THROW(Tensor::from2d({{1, 2}, {3}}), Error);
}

TEST(TensorTest, CopyAliasesCloneDoesNot) {
  Tensor a({4});
  Tensor b = a;        // alias
  Tensor c = a.clone();  // deep copy
  a[0] = 7.0;
  EXPECT_EQ(b[0], 7.0);
  EXPECT_EQ(c[0], 0.0);
  EXPECT_TRUE(a.aliases(b));
  EXPECT_FALSE(a.aliases(c));
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor a({2, 6});
  Tensor b = a.reshape({3, 4});
  a[5] = 9.0;
  EXPECT_EQ(b[5], 9.0);
  EXPECT_EQ(b.shape(), Shape({3, 4}));
}

TEST(TensorTest, ReshapeWrongNumelThrows) {
  Tensor a({2, 3});
  EXPECT_THROW(a.reshape({7}), Error);
}

TEST(TensorTest, Axpy) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({10, 20, 30});
  a.axpy_(0.5, b);
  EXPECT_DOUBLE_EQ(a[0], 6.0);
  EXPECT_DOUBLE_EQ(a[2], 18.0);
}

TEST(TensorTest, AxpyShapeMismatchThrows) {
  Tensor a({3}), b({4});
  EXPECT_THROW(a.axpy_(1.0, b), Error);
}

TEST(TensorTest, Scale) {
  Tensor a = Tensor::from({2, -4});
  a.scale_(-0.5);
  EXPECT_DOUBLE_EQ(a[0], -1.0);
  EXPECT_DOUBLE_EQ(a[1], 2.0);
}

TEST(TensorTest, LerpIsElasticPull) {
  // lerp_(other, t): a <- (1-t) a + t other — the paper's step ❷.
  Tensor a = Tensor::from({0, 10});
  Tensor ref = Tensor::from({10, 0});
  a.lerp_(ref, 0.25);
  EXPECT_DOUBLE_EQ(a[0], 2.5);
  EXPECT_DOUBLE_EQ(a[1], 7.5);
}

TEST(TensorTest, LerpFullPullEqualsReference) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor ref = Tensor::from({4, 5, 6});
  a.lerp_(ref, 1.0);
  EXPECT_EQ(a.max_abs_diff(ref), 0.0);
}

TEST(TensorTest, SumMeanNormDot) {
  Tensor a = Tensor::from({3, 4});
  EXPECT_DOUBLE_EQ(a.sum(), 7.0);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.abs_max(), 4.0);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a = Tensor::from({1, 5});
  Tensor b = Tensor::from({2, 2});
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 3.0);
}

TEST(TensorTest, CopyFrom) {
  Tensor a({3});
  a.copy_from(Tensor::from({7, 8, 9}));
  EXPECT_EQ(a[2], 9.0);
}

TEST(TensorTest, RandnDeterministicInSeed) {
  Rng r1(99), r2(99);
  Tensor a = Tensor::randn({16}, r1);
  Tensor b = Tensor::randn({16}, r2);
  EXPECT_EQ(a.max_abs_diff(b), 0.0);
}

TEST(TensorTest, RandnStddev) {
  Rng rng(1);
  Tensor t = Tensor::randn({10000}, rng, 2.0);
  double mean = t.mean();
  double var = 0;
  for (auto x : t.data()) var += (x - mean) * (x - mean);
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t({100});
  const std::string s = t.to_string(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(TensorShapeTest, ShapeNumelEmptyIsOne) {
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_numel({0}), 0u);
  EXPECT_EQ(shape_numel({3, 5}), 15u);
}

TEST(TensorShapeTest, ShapeToString) {
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

}  // namespace
}  // namespace avgpipe::tensor
