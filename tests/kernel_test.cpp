// Parity and correctness suite for the performance layer: blocked GEMM vs
// the reference loop, fused elastic / optimizer kernels vs their unfused
// formulations, in-place op variants vs the allocating ones, the arena
// allocator's recycling behaviour, and thread-pool determinism.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/affinity.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/elastic.hpp"
#include "nn/lstm.hpp"
#include "optim/optimizer.hpp"
#include "tensor/arena.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/quantize.hpp"

namespace avgpipe {
namespace {

using tensor::Scalar;
using tensor::Tensor;
using tensor::Variable;

std::vector<Scalar> random_vec(std::size_t n, Rng& rng) {
  std::vector<Scalar> v(n);
  for (auto& x : v) x = rng.normal(0.0, 1.0);
  return v;
}

// -- GEMM parity ---------------------------------------------------------------

struct GemmCase {
  std::size_t m, n, k;
};

class GemmParity : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParity, MatchesReferenceForAllTransposeCombos) {
  const auto [m, n, k] = GetParam();
  Rng rng(0xC0FFEE + m * 131 + n * 17 + k);
  for (const bool trans_a : {false, true}) {
    for (const bool trans_b : {false, true}) {
      for (const bool accumulate : {false, true}) {
        const auto a = random_vec(m * k, rng);
        const auto b = random_vec(k * n, rng);
        auto c_ref = random_vec(m * n, rng);
        auto c_blk = c_ref;  // same starting C so accumulate paths match
        tensor::gemm_reference(a.data(), b.data(), c_ref.data(), m, n, k,
                               trans_a, trans_b, accumulate);
        tensor::gemm_blocked(a.data(), b.data(), c_blk.data(), m, n, k,
                             trans_a, trans_b, accumulate);
        for (std::size_t i = 0; i < m * n; ++i) {
          // FMA contraction in the blocked kernel shifts rounding by a few
          // ulp per k-term; scale the tolerance by the reduction length.
          const double tol =
              1e-13 * static_cast<double>(k + 1) *
              std::max(1.0, std::abs(c_ref[i]));
          ASSERT_NEAR(c_blk[i], c_ref[i], tol)
              << "m=" << m << " n=" << n << " k=" << k << " ta=" << trans_a
              << " tb=" << trans_b << " acc=" << accumulate << " i=" << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParity,
    ::testing::Values(
        GemmCase{1, 1, 1},      // degenerate
        GemmCase{1, 8, 1},      // single row/col
        GemmCase{3, 5, 7},      // tiny, all odd
        GemmCase{4, 8, 16},     // exact tile multiples
        GemmCase{5, 9, 17},     // one past the tile edges
        GemmCase{63, 65, 33},   // straddles MC and NR boundaries
        GemmCase{64, 8, 300},   // multiple KC panels
        GemmCase{128, 96, 64},  // rectangular, several row blocks
        GemmCase{1, 1030, 5},   // wide: multiple NC panels
        GemmCase{200, 3, 2}));  // tall and skinny

TEST(GemmParity, ZeroSizedDims) {
  std::vector<Scalar> a(12, 1.0), b(12, 2.0), c(6, 7.0);
  // k == 0 must clear C when not accumulating and leave it when accumulating.
  tensor::gemm_blocked(a.data(), b.data(), c.data(), 2, 3, 0, false, false,
                       true);
  EXPECT_EQ(c[0], 7.0);
  tensor::gemm_blocked(a.data(), b.data(), c.data(), 2, 3, 0, false, false,
                       false);
  EXPECT_EQ(c[0], 0.0);
}

TEST(GemmDispatch, SmallProblemsStayExact) {
  // Below the dispatch threshold gemm() runs the reference loop, so results
  // must be bit-identical to gemm_reference.
  Rng rng(42);
  const std::size_t m = 4, n = 4, k = 4;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<Scalar> c1(m * n, 0.0), c2(m * n, 0.0);
  tensor::gemm(a.data(), b.data(), c1.data(), m, n, k, false, false, false);
  tensor::gemm_reference(a.data(), b.data(), c2.data(), m, n, k, false, false,
                         false);
  EXPECT_EQ(c1, c2);
}

// -- fused elastic kernels ------------------------------------------------------

std::vector<Variable> make_params(Rng& rng) {
  std::vector<Variable> params;
  for (const std::size_t n : {7u, 64u, 129u}) {
    Tensor t({n});
    for (auto& v : t.data()) v = rng.normal(0.0, 1.0);
    params.emplace_back(std::move(t), /*requires_grad=*/true);
  }
  return params;
}

core::ParamSet clone_all(const std::vector<Variable>& params) {
  core::ParamSet out;
  for (const auto& p : params) out.push_back(p.value().clone());
  return out;
}

TEST(FusedElastic, PullPushMatchesUnfused) {
  Rng rng(7);
  auto fused_params = make_params(rng);
  auto unfused_params = fused_params;  // shallow copies; deep-clone below
  std::vector<Variable> unfused;
  for (auto& p : fused_params) {
    unfused.emplace_back(p.value().clone(), true);
  }
  core::ParamSet reference;
  for (const auto& p : fused_params) {
    Tensor r(p.value().shape());
    for (auto& v : r.data()) v = rng.normal(0.0, 1.0);
    reference.push_back(std::move(r));
  }
  const double alpha = 0.25;

  const core::ParamSet fused_update =
      core::elastic_pull_push(fused_params, reference, alpha);

  core::elastic_pull(unfused, reference, alpha);
  const core::ParamSet unfused_update = core::difference(unfused, reference);

  for (std::size_t i = 0; i < fused_params.size(); ++i) {
    EXPECT_LE(fused_params[i].value().max_abs_diff(unfused[i].value()), 1e-12);
    EXPECT_LE(fused_update[i].max_abs_diff(unfused_update[i]), 1e-12);
  }
}

TEST(FusedElastic, PullAndAccumulateMatchesSnapshotPath) {
  Rng rng(11);
  auto params_a = make_params(rng);
  std::vector<Variable> params_b;
  for (auto& p : params_a) params_b.emplace_back(p.value().clone(), true);

  core::ReferenceModel ref_a(clone_all(params_a));
  core::ReferenceModel ref_b(clone_all(params_b));
  const double alpha = 0.5;

  // Fused path: pull directly against the live reference.
  ref_a.pull_and_accumulate(params_a, alpha);
  ref_a.apply_accumulated(1);

  // Unfused path: snapshot, pull, diff, accumulate.
  const core::ParamSet snap = ref_b.snapshot();
  core::elastic_pull(params_b, snap, alpha);
  ref_b.accumulate(core::difference(params_b, snap));
  ref_b.apply_accumulated(1);

  for (std::size_t i = 0; i < params_a.size(); ++i) {
    EXPECT_LE(params_a[i].value().max_abs_diff(params_b[i].value()), 1e-12);
    EXPECT_LE(ref_a.params()[i].max_abs_diff(ref_b.params()[i]), 1e-12);
  }
}

// -- fused optimizer kernels ----------------------------------------------------

TEST(FusedOptim, SgdMomentumWeightDecayMatchesUnfused) {
  Rng rng(13);
  auto params = make_params(rng);
  std::vector<Variable> ref_params;
  for (auto& p : params) ref_params.emplace_back(p.value().clone(), true);

  const Scalar lr = 0.1, momentum = 0.9, wd = 0.01;
  optim::Sgd sgd(params, lr, momentum, wd);

  // Unfused reference state.
  std::vector<Tensor> velocity;
  for (auto& p : ref_params) velocity.emplace_back(p.value().shape());

  for (int step = 0; step < 3; ++step) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      Tensor g(params[i].value().shape());
      for (auto& v : g.data()) v = rng.normal(0.0, 1.0);
      params[i].mutable_grad().copy_from(g);
      ref_params[i].mutable_grad().copy_from(g);
    }
    sgd.step();
    for (std::size_t i = 0; i < ref_params.size(); ++i) {
      Tensor g = ref_params[i].grad().clone();
      g.axpy_(wd, ref_params[i].value());
      velocity[i].scale_(momentum);
      velocity[i].axpy_(1.0, g);
      ref_params[i].value().axpy_(-lr, velocity[i]);
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      EXPECT_LE(params[i].value().max_abs_diff(ref_params[i].value()), 1e-12)
          << "step " << step << " param " << i;
    }
  }
}

TEST(FusedOptim, AsgdMatchesUnfused) {
  Rng rng(17);
  auto params = make_params(rng);
  std::vector<Variable> ref_params;
  for (auto& p : params) ref_params.emplace_back(p.value().clone(), true);

  const Scalar lr = 0.05, wd = 0.02;
  optim::Asgd asgd(params, lr, /*trigger=*/0, wd);

  for (int step = 0; step < 2; ++step) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      Tensor g(params[i].value().shape());
      for (auto& v : g.data()) v = rng.normal(0.0, 1.0);
      params[i].mutable_grad().copy_from(g);
      ref_params[i].mutable_grad().copy_from(g);
    }
    asgd.step();
    for (std::size_t i = 0; i < ref_params.size(); ++i) {
      Tensor g = ref_params[i].grad().clone();
      g.axpy_(wd, ref_params[i].value());
      ref_params[i].value().axpy_(-lr, g);
      EXPECT_LE(params[i].value().max_abs_diff(ref_params[i].value()), 1e-12);
    }
  }
}

// -- in-place op variants -------------------------------------------------------

TEST(InplaceOps, MatchOutOfPlaceForwardAndBackward) {
  Rng rng(19);
  const std::size_t rows = 5, cols = 9;

  auto run = [&](bool in_place) {
    Rng local(23);
    Tensor xt({rows, cols}), bt({cols});
    for (auto& v : xt.data()) v = local.normal(0.0, 1.0);
    for (auto& v : bt.data()) v = local.normal(0.0, 1.0);
    Variable x(std::move(xt), true);
    Variable bias(std::move(bt), true);
    // Feed through a producer op first so the in-place guard passes.
    Variable h = tensor::scale(x, 1.5);
    Variable y = in_place ? tensor::add_bias_(h, bias)
                          : tensor::add_bias(h, bias);
    y = in_place ? tensor::scale_(y, 0.5) : tensor::scale(y, 0.5);
    Variable loss = tensor::sum_all(y);
    loss.backward();
    return std::make_tuple(y.value().clone(), x.grad().clone(),
                           bias.grad().clone());
  };

  const auto [y1, gx1, gb1] = run(false);
  const auto [y2, gx2, gb2] = run(true);
  EXPECT_LE(y1.max_abs_diff(y2), 1e-12);
  EXPECT_LE(gx1.max_abs_diff(gx2), 1e-12);
  EXPECT_LE(gb1.max_abs_diff(gb2), 1e-12);
  (void)rng;
}

TEST(InplaceOps, ActivationsMatchOutOfPlace) {
  auto run = [&](bool in_place) {
    Rng local(29);
    Tensor xt({4, 6});
    for (auto& v : xt.data()) v = local.normal(0.0, 1.0);
    Variable x(std::move(xt), true);
    Variable h = tensor::scale(x, 1.0);  // fresh op output to mutate
    Variable y = in_place ? tensor::relu_(h) : tensor::relu(h);
    Variable h2 = tensor::scale(y, 2.0);
    Variable z = in_place ? tensor::tanh_op_(h2) : tensor::tanh_op(h2);
    Variable h3 = tensor::scale(z, 1.0);
    Variable w = in_place ? tensor::sigmoid_(h3) : tensor::sigmoid(h3);
    Variable loss = tensor::sum_all(w);
    loss.backward();
    return std::make_pair(w.value().clone(), x.grad().clone());
  };
  const auto [v1, g1] = run(false);
  const auto [v2, g2] = run(true);
  EXPECT_LE(v1.max_abs_diff(v2), 1e-12);
  EXPECT_LE(g1.max_abs_diff(g2), 1e-12);
}

TEST(InplaceOps, RejectsGradRequiringLeaf) {
  Variable param(Tensor::ones({3}), /*requires_grad=*/true);
  Variable bias(Tensor::ones({3}), /*requires_grad=*/true);
  EXPECT_THROW(tensor::add_bias_(param, bias), std::runtime_error);
  EXPECT_THROW(tensor::relu_(param), std::runtime_error);
}

// -- arena allocator ------------------------------------------------------------

TEST(Arena, RecyclesBuffersWithinBucket) {
  tensor::arena::clear_thread_cache();
  tensor::arena::reset_stats();
  Scalar* p = tensor::arena::acquire(100);
  ASSERT_NE(p, nullptr);
  tensor::arena::release(p, 100);
  // A same-bucket request must be served from the free list, not the heap.
  Scalar* q = tensor::arena::acquire(
      tensor::arena::bucket_capacity(100));
  EXPECT_EQ(q, p);
  tensor::arena::release(q, tensor::arena::bucket_capacity(100));
  const auto s = tensor::arena::stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.heap_allocs, 1u);
}

TEST(Arena, SteadyStateTrainingStepHitsCache) {
  // Two identical forward/backward/step rounds: the second must be served
  // entirely from the free lists (zero new heap allocations).
  auto round = [](unsigned seed) {
    Rng rng(seed);
    Tensor xt({8, 16}), wt({16, 4});
    for (auto& v : xt.data()) v = rng.normal(0.0, 1.0);
    for (auto& v : wt.data()) v = rng.normal(0.0, 1.0);
    Variable x(std::move(xt), false);
    Variable w(std::move(wt), true);
    Variable y = tensor::matmul(x, w);
    Variable loss = tensor::mean_all(tensor::relu(y));
    loss.backward();
    optim::Sgd sgd({w}, 0.01, 0.9);
    sgd.step();
  };
  round(1);  // warm-up populates the caches
  tensor::arena::reset_stats();
  round(1);
  const auto s = tensor::arena::stats();
  EXPECT_GT(s.acquires, 0u);
  EXPECT_EQ(s.heap_allocs, 0u)
      << "steady-state step should not touch the heap";
}

TEST(Arena, DisabledFallsThroughToHeap) {
  tensor::arena::clear_thread_cache();
  tensor::arena::set_enabled(false);
  tensor::arena::reset_stats();
  Scalar* p = tensor::arena::acquire(64);
  tensor::arena::release(p, 64);
  Scalar* q = tensor::arena::acquire(64);
  tensor::arena::release(q, 64);
  const auto s = tensor::arena::stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.heap_allocs, 2u);
  tensor::arena::set_enabled(true);
}

TEST(Arena, UninitializedTensorSkipsZeroFill) {
  tensor::arena::clear_thread_cache();
  // Acquire, poison, release; the recycled uninitialized tensor must see the
  // poison (proving no zero-fill), while Tensor(Shape) must see zeros.
  Scalar* p = tensor::arena::acquire(tensor::arena::bucket_capacity(16));
  for (std::size_t i = 0; i < 16; ++i) p[i] = 123.0;
  tensor::arena::release(p, tensor::arena::bucket_capacity(16));
  Tensor u = Tensor::uninitialized({16});
  EXPECT_EQ(u.data().data(), p);
  EXPECT_EQ(u[0], 123.0);
  { Tensor drop = std::move(u); }  // release back
  Tensor z({16});
  EXPECT_EQ(z[0], 0.0);
  EXPECT_EQ(z.sum(), 0.0);
}

// -- thread pool ----------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(0, counts.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) counts[i].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, GrainLimitsChunkCount) {
  ThreadPool pool(8);
  std::atomic<int> chunks{0};
  pool.parallel_for(
      0, 100,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_GE(hi - lo, 50u);
        chunks.fetch_add(1);
      },
      /*grain=*/50);
  EXPECT_LE(chunks.load(), 2);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // Caller-runs chunking means this inner call cannot starve even with
      // every pool worker already busy in the outer loop.
      ThreadPool::global().parallel_for(
          0, 8, [&](std::size_t l2, std::size_t h2) {
            total.fetch_add(static_cast<int>(h2 - l2));
          });
    }
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, GemmDeterministicAcrossRepeats) {
  // Row-block ownership is disjoint, so repeated runs (arbitrary thread
  // interleavings) must produce bit-identical output.
  Rng rng(31);
  const std::size_t m = 96, n = 64, k = 48;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<Scalar> first(m * n, 0.0);
  tensor::gemm_blocked(a.data(), b.data(), first.data(), m, n, k, false,
                       false, false);
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<Scalar> c(m * n, 0.0);
    tensor::gemm_blocked(a.data(), b.data(), c.data(), m, n, k, false, false,
                         false);
    ASSERT_EQ(c, first) << "rep " << rep;
  }
}

TEST(ThreadPoolTest, ParseNumThreads) {
  EXPECT_EQ(parse_num_threads(nullptr, 3), 3u);
  EXPECT_EQ(parse_num_threads("", 3), 3u);
  EXPECT_EQ(parse_num_threads("junk", 3), 3u);
  EXPECT_EQ(parse_num_threads("0", 3), 3u);
  EXPECT_EQ(parse_num_threads("-2", 3), 3u);
  EXPECT_EQ(parse_num_threads("5", 3), 5u);
}

// -- stage partitions and pinning ---------------------------------------------

TEST(StagePartitionKernels, GemmBitIdenticalAcrossWorkerShares) {
  // The same GEMM under worker shares {1, 2, 4} (what AVGPIPE_STAGE_THREADS
  // installs per stage thread) must match the reference loop and be
  // bit-identical across shares: row-block ownership is disjoint, so the
  // fan-out width can only change timing, never results.
  Rng rng(77);
  const std::size_t m = 96, n = 64, k = 48;  // past kGemmBlockedThreshold
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<Scalar> ref(m * n, 0.0);
  tensor::gemm_reference(a.data(), b.data(), ref.data(), m, n, k, false,
                         false, false);
  std::vector<Scalar> base;
  for (const std::size_t share : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
    PartitionGuard guard(share);
    std::vector<Scalar> c(m * n, 0.0);
    tensor::gemm_blocked(a.data(), b.data(), c.data(), m, n, k, false, false,
                         false);
    for (std::size_t i = 0; i < m * n; ++i) {
      ASSERT_NEAR(c[i], ref[i], static_cast<double>(k) * 1e-14)
          << "share " << share << " index " << i;
    }
    if (base.empty()) {
      base = c;
    } else {
      ASSERT_EQ(c, base) << "share " << share;
    }
  }
}

TEST(StagePartitionKernels, LstmForwardBackwardBitIdenticalAcrossShares) {
  // A full LSTM forward+backward (gate GEMMs large enough for the blocked
  // path) run under different worker shares must produce bit-identical
  // activations and parameter gradients.
  Rng wrng(123);
  nn::LSTM lstm(32, 64, wrng);
  Rng drng(9);
  tensor::Tensor x({8, 4, 32});
  {
    auto xv = x.data();
    for (auto& v : xv) v = drng.normal(0.0, 1.0);
  }
  std::vector<Scalar> base_out;
  std::vector<std::vector<Scalar>> base_grads;
  for (const std::size_t share : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
    PartitionGuard guard(share);
    Variable in(x.clone(), /*requires_grad=*/false);
    Variable out = lstm.forward(in);
    tensor::Tensor seed(out.value().shape());
    seed.fill_(1.0);
    out.backward(seed);
    const auto ov = out.value().data();
    std::vector<Scalar> out_vals(ov.begin(), ov.end());
    std::vector<std::vector<Scalar>> grads;
    for (auto& p : lstm.parameters()) {
      const auto gv = p.grad().data();
      grads.emplace_back(gv.begin(), gv.end());
      p.mutable_grad().fill_(0.0);
    }
    if (base_out.empty()) {
      base_out = std::move(out_vals);
      base_grads = std::move(grads);
    } else {
      ASSERT_EQ(out_vals, base_out) << "share " << share;
      ASSERT_EQ(grads, base_grads) << "share " << share;
    }
  }
}

TEST(AffinityTest, ParsePolicies) {
  EXPECT_EQ(parse_pin_policy(nullptr), PinPolicy::kNone);
  EXPECT_EQ(parse_pin_policy(""), PinPolicy::kNone);
  EXPECT_EQ(parse_pin_policy("0"), PinPolicy::kNone);
  EXPECT_EQ(parse_pin_policy("off"), PinPolicy::kNone);
  EXPECT_EQ(parse_pin_policy("junk"), PinPolicy::kNone);
  EXPECT_EQ(parse_pin_policy("compact"), PinPolicy::kCompact);
  EXPECT_EQ(parse_pin_policy("1"), PinPolicy::kCompact);
  EXPECT_EQ(parse_pin_policy("scatter"), PinPolicy::kScatter);
}

TEST(AffinityTest, LayoutMath) {
  // Compact packs consecutively; scatter spreads 4 slots over 8 cores to
  // {0, 2, 4, 6}.
  for (std::size_t slot = 0; slot < 4; ++slot) {
    EXPECT_EQ(pin_core_for_slot(PinPolicy::kCompact, slot, 4, 8), slot);
    EXPECT_EQ(pin_core_for_slot(PinPolicy::kScatter, slot, 4, 8), slot * 2);
  }
  // Oversubscribed compact wraps rather than going out of range.
  EXPECT_EQ(pin_core_for_slot(PinPolicy::kCompact, 5, 8, 4), 1u);
}

// -- sync codecs ----------------------------------------------------------------

// Sizes chosen to cross every tail path: sub-vector, sub-block, exact block
// multiples, and odd lengths that leave both a partial SIMD vector and a
// partial quantization block.
const std::size_t kCodecSizes[] = {1, 3, 7, 8, 9, 255, 256, 257, 1024, 1037};

std::vector<Scalar> codec_input(std::size_t n, Rng& rng) {
  std::vector<Scalar> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mix magnitudes so per-block scales differ and small values round to 0.
    v[i] = rng.normal(0.0, std::pow(10.0, static_cast<double>(i % 7) - 3.0));
  }
  return v;
}

TEST(QuantizeInt8, DispatchedMatchesReferenceBitExact) {
  Rng rng(0x51AB);
  for (const std::size_t n : kCodecSizes) {
    const auto src = codec_input(n, rng);
    const std::size_t blocks = tensor::int8_num_blocks(n);
    std::vector<std::int8_t> q_a(n), q_b(n);
    std::vector<float> s_a(blocks), s_b(blocks);
    tensor::quantize_int8(src.data(), n, q_a.data(), s_a.data());
    tensor::quantize_int8_reference(src.data(), n, q_b.data(), s_b.data());
    ASSERT_EQ(q_a, q_b) << "n=" << n;
    ASSERT_EQ(s_a, s_b) << "n=" << n;

    std::vector<Scalar> d_a(n), d_b(n);
    tensor::dequantize_int8(q_a.data(), s_a.data(), n, d_a.data());
    tensor::dequantize_int8_reference(q_b.data(), s_b.data(), n, d_b.data());
    ASSERT_EQ(d_a, d_b) << "n=" << n;
  }
}

TEST(QuantizeInt8, RoundTripErrorBoundedByHalfStep) {
  // |x - dq| <= s/2 per value, where s = blockmax/127 (plus a little head
  // room for the f32 scale rounding).
  Rng rng(0x51AC);
  for (const std::size_t n : kCodecSizes) {
    const auto src = codec_input(n, rng);
    std::vector<Scalar> rt = src;
    tensor::codec_roundtrip(tensor::Codec::kInt8, rt.data(), n);
    for (std::size_t b = 0; b * tensor::kQuantBlock < n; ++b) {
      const std::size_t lo = b * tensor::kQuantBlock;
      const std::size_t hi = std::min(n, lo + tensor::kQuantBlock);
      double block_max = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        block_max = std::max(block_max, std::abs(src[i]));
      }
      const double bound = block_max * (0.5 / 127.0 + 1e-6);
      for (std::size_t i = lo; i < hi; ++i) {
        ASSERT_LE(std::abs(src[i] - rt[i]), bound) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(QuantizeInt8, EdgeValuesStayFiniteAndSigned) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double denorm = std::numeric_limits<double>::denorm_min();
  std::vector<Scalar> src = {0.0, -0.0, denorm,  -denorm, 1.0,
                             -1.0, nan,  inf,     -inf,    1e300};
  const std::size_t n = src.size();
  std::vector<Scalar> rt = src;
  tensor::codec_roundtrip(tensor::Codec::kInt8, rt.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(std::isfinite(rt[i])) << "i=" << i;
  }
  // Zeros decode to exactly zero; an all-zero block keeps a zero scale.
  EXPECT_EQ(rt[0], 0.0);
  EXPECT_EQ(rt[1], 0.0);
  std::vector<Scalar> zeros(tensor::kQuantBlock + 3, 0.0);
  tensor::codec_roundtrip(tensor::Codec::kInt8, zeros.data(), zeros.size());
  for (const Scalar v : zeros) EXPECT_EQ(v, 0.0);
}

TEST(QuantizeFp16, DispatchedMatchesReferenceBitExact) {
  Rng rng(0xF16A);
  for (const std::size_t n : kCodecSizes) {
    auto src = codec_input(n, rng);
    if (n >= 8) {
      // Sprinkle in the hard cases so the SIMD clamp path sees them too.
      src[0] = std::numeric_limits<double>::quiet_NaN();
      src[1] = std::numeric_limits<double>::infinity();
      src[2] = -std::numeric_limits<double>::infinity();
      src[3] = 1e-10;   // subnormal half
      src[4] = -0.0;
      src[5] = 65504.0;
      src[6] = 65520.0;  // above half max, below float overflow
      src[7] = 6e-8;     // rounds within the subnormal-half range
    }
    std::vector<std::uint16_t> h_a(n), h_b(n);
    tensor::quantize_fp16(src.data(), n, h_a.data());
    tensor::quantize_fp16_reference(src.data(), n, h_b.data());
    ASSERT_EQ(h_a, h_b) << "n=" << n;

    std::vector<Scalar> d_a(n), d_b(n);
    tensor::dequantize_fp16(h_a.data(), n, d_a.data());
    tensor::dequantize_fp16_reference(h_b.data(), n, d_b.data());
    for (std::size_t i = 0; i < n; ++i) {
      // Compare as bits so -0.0 vs 0.0 or NaN payloads can't slip through.
      std::uint64_t bits_a, bits_b;
      std::memcpy(&bits_a, &d_a[i], 8);
      std::memcpy(&bits_b, &d_b[i], 8);
      ASSERT_EQ(bits_a, bits_b) << "n=" << n << " i=" << i;
    }
  }
}

TEST(QuantizeFp16, RoundTripErrorWithinHalfPrecision) {
  Rng rng(0xF16B);
  const std::size_t n = 1037;
  const auto src = codec_input(n, rng);
  std::vector<Scalar> rt = src;
  tensor::codec_roundtrip(tensor::Codec::kFp16, rt.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(std::isfinite(rt[i])) << "i=" << i;
    const double abs_err = std::abs(src[i] - rt[i]);
    // Normal halves: rel error <= 2^-11 (RNE); subnormals: abs <= 2^-25.
    // f64 -> f32 narrowing adds a negligible extra half-ulp.
    ASSERT_LE(abs_err, std::max(std::abs(src[i]) * 0x1.0p-10, 0x1.0p-24))
        << "i=" << i << " x=" << src[i];
  }
}

TEST(QuantizeFp16, HalfRoundTripIsExactForEveryFinitePattern) {
  // Widening then re-narrowing must reproduce every finite binary16 bit
  // pattern (including subnormals and both zeros) exactly.
  for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    if ((h & 0x7C00) == 0x7C00) continue;  // Inf/NaN: clamped by design
    const float f = tensor::half_to_float(h);
    ASSERT_EQ(tensor::float_to_half(f), h) << "pattern " << bits;
    // And the f64 codec path agrees with the scalar helpers.
    const Scalar wide = static_cast<Scalar>(f);
    std::uint16_t back;
    tensor::quantize_fp16_reference(&wide, 1, &back);
    ASSERT_EQ(back, h) << "pattern " << bits;
  }
  // The codec (unlike the raw scalar helper) clamps, so an Inf input
  // narrows to the max finite half rather than the Inf encoding.
  const Scalar inf = std::numeric_limits<double>::infinity();
  std::uint16_t clamped;
  tensor::quantize_fp16_reference(&inf, 1, &clamped);
  EXPECT_EQ(clamped, 0x7BFF);
}

TEST(CodecMeta, WireBytesAndNames) {
  using tensor::Codec;
  EXPECT_EQ(tensor::codec_wire_bytes(Codec::kNone, 100), 800u);
  EXPECT_EQ(tensor::codec_wire_bytes(Codec::kFp16, 100), 200u);
  EXPECT_EQ(tensor::codec_wire_bytes(Codec::kInt8, 100), 104u);   // 1 block
  EXPECT_EQ(tensor::codec_wire_bytes(Codec::kInt8, 257), 265u);   // 2 blocks
  EXPECT_STREQ(tensor::to_string(Codec::kInt8), "int8");
  Codec c;
  EXPECT_TRUE(tensor::codec_from_string("fp16", &c));
  EXPECT_EQ(c, Codec::kFp16);
  EXPECT_FALSE(tensor::codec_from_string("gzip", &c));
  // kNone round trip is the identity.
  std::vector<Scalar> v = {1.0, -2.5, 3.25};
  const std::vector<Scalar> orig = v;
  tensor::codec_roundtrip(Codec::kNone, v.data(), v.size());
  EXPECT_EQ(v, orig);
}

TEST(AffinityTest, PinningIsBestEffortAndPreservesResults) {
  // kNone never pins; an oversubscribed layout never pins. A 1-slot layout
  // pins on any machine with pthread affinity — run it in a helper thread
  // (the mask dies with the thread) and check GEMM results are unaffected.
  EXPECT_FALSE(pin_current_thread(PinPolicy::kNone, 0, 1));
  EXPECT_FALSE(
      pin_current_thread(PinPolicy::kCompact, 0, num_cores() + 1));
  Rng rng(55);
  const std::size_t m = 64, n = 48, k = 32;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<Scalar> unpinned(m * n, 0.0);
  tensor::gemm_blocked(a.data(), b.data(), unpinned.data(), m, n, k, false,
                       false, false);
  std::vector<Scalar> pinned(m * n, 0.0);
  bool did_pin = false;
  std::thread worker([&] {
    did_pin = pin_current_thread(PinPolicy::kCompact, 0, 1);
    tensor::gemm_blocked(a.data(), b.data(), pinned.data(), m, n, k, false,
                         false, false);
  });
  worker.join();
#if defined(__linux__)
  EXPECT_TRUE(did_pin);
#endif
  EXPECT_EQ(pinned, unpinned);
}

}  // namespace
}  // namespace avgpipe
