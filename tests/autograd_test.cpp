#include "tensor/autograd.hpp"

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace avgpipe::tensor {
namespace {

using testutil::max_grad_error;

Variable leaf(std::initializer_list<Scalar> values) {
  return Variable(Tensor::from(values), /*requires_grad=*/true);
}

TEST(AutogradTest, ScalarChainRule) {
  // y = (2x)^2 summed; dy/dx = 8x.
  Variable x = leaf({3.0});
  Variable y = sum_all(mul(scale(x, 2.0), scale(x, 2.0)));
  y.backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 24.0);
}

TEST(AutogradTest, GradAccumulatesAcrossUses) {
  // y = x + x; dy/dx = 2.
  Variable x = leaf({5.0});
  Variable y = sum_all(add(x, x));
  y.backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 2.0);
}

TEST(AutogradTest, BackwardOnNonScalarThrows) {
  Variable x = leaf({1.0, 2.0});
  Variable y = add(x, x);
  EXPECT_THROW(y.backward(), Error);
}

TEST(AutogradTest, BackwardWithSeed) {
  Variable x = leaf({1.0, 2.0});
  Variable y = scale(x, 3.0);
  y.backward(Tensor::from({1.0, 10.0}));
  EXPECT_DOUBLE_EQ(x.grad()[0], 3.0);
  EXPECT_DOUBLE_EQ(x.grad()[1], 30.0);
}

TEST(AutogradTest, NoGradWhenNotRequired) {
  Variable x(Tensor::from({1.0}), /*requires_grad=*/false);
  Variable y = scale(x, 2.0);
  EXPECT_FALSE(y.requires_grad());
}

TEST(AutogradTest, DetachCutsHistory) {
  Variable x = leaf({2.0});
  Variable d = scale(x, 3.0).detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_DOUBLE_EQ(d.value()[0], 6.0);
}

TEST(AutogradTest, ZeroGradClears) {
  Variable x = leaf({1.0});
  sum_all(mul(x, x)).backward();
  EXPECT_NE(x.grad()[0], 0.0);
  x.zero_grad();
  EXPECT_DOUBLE_EQ(x.grad()[0], 0.0);
}

TEST(AutogradTest, DiamondGraph) {
  // y = x*x + x*x through two separate paths.
  Variable x = leaf({3.0});
  Variable a = mul(x, x);
  Variable b = mul(x, x);
  sum_all(add(a, b)).backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 12.0);
}

TEST(AutogradTest, SecondBackwardAccumulates) {
  Variable x = leaf({1.0});
  Variable y = sum_all(scale(x, 4.0));
  y.backward();
  y.backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 8.0);
}

// -- numeric gradient checks for every op -------------------------------------------

class GradCheckTest : public ::testing::Test {
 protected:
  Rng rng_{7};
};

TEST_F(GradCheckTest, Add) {
  Variable a(Tensor::randn({3, 4}, rng_), true);
  Variable b(Tensor::randn({3, 4}, rng_), true);
  EXPECT_LT(max_grad_error([&] { return sum_all(add(a, b)); }, {a, b}), 1e-6);
}

TEST_F(GradCheckTest, Sub) {
  Variable a(Tensor::randn({5}, rng_), true);
  Variable b(Tensor::randn({5}, rng_), true);
  EXPECT_LT(max_grad_error([&] { return sum_all(sub(a, b)); }, {a, b}), 1e-6);
}

TEST_F(GradCheckTest, Mul) {
  Variable a(Tensor::randn({4}, rng_), true);
  Variable b(Tensor::randn({4}, rng_), true);
  EXPECT_LT(max_grad_error([&] { return sum_all(mul(a, b)); }, {a, b}), 1e-6);
}

TEST_F(GradCheckTest, AddBias) {
  Variable x(Tensor::randn({3, 4}, rng_), true);
  Variable b(Tensor::randn({4}, rng_), true);
  EXPECT_LT(
      max_grad_error([&] { return sum_all(mul(add_bias(x, b),
                                              add_bias(x, b))); },
                     {x, b}),
      1e-5);
}

TEST_F(GradCheckTest, Matmul) {
  Variable a(Tensor::randn({3, 4}, rng_), true);
  Variable b(Tensor::randn({4, 2}, rng_), true);
  EXPECT_LT(max_grad_error(
                [&] { return sum_all(mul(matmul(a, b), matmul(a, b))); },
                {a, b}),
            1e-4);
}

TEST_F(GradCheckTest, Bmm) {
  Variable a(Tensor::randn({2, 3, 4}, rng_), true);
  Variable b(Tensor::randn({2, 4, 2}, rng_), true);
  EXPECT_LT(max_grad_error([&] { return sum_all(bmm(a, b)); }, {a, b}), 1e-5);
}

TEST_F(GradCheckTest, TransposeLast2) {
  Variable a(Tensor::randn({2, 3, 4}, rng_), true);
  EXPECT_LT(max_grad_error(
                [&] {
                  Variable t = transpose_last2(a);
                  return sum_all(mul(t, t));
                },
                {a}),
            1e-5);
}

TEST_F(GradCheckTest, Permute0213) {
  Variable a(Tensor::randn({2, 3, 4, 5}, rng_), true);
  EXPECT_LT(max_grad_error(
                [&] {
                  Variable t = permute_0213(a);
                  return sum_all(mul(t, t));
                },
                {a}),
            1e-5);
}

TEST_F(GradCheckTest, ReluTanhSigmoidGelu) {
  Variable a(Tensor::randn({16}, rng_), true);
  EXPECT_LT(max_grad_error([&] { return sum_all(relu(a)); }, {a}), 1e-5);
  EXPECT_LT(max_grad_error([&] { return sum_all(tanh_op(a)); }, {a}), 1e-5);
  EXPECT_LT(max_grad_error([&] { return sum_all(sigmoid(a)); }, {a}), 1e-5);
  EXPECT_LT(max_grad_error([&] { return sum_all(gelu(a)); }, {a}), 1e-5);
}

TEST_F(GradCheckTest, SoftmaxRows) {
  Variable a(Tensor::randn({3, 5}, rng_), true);
  Variable w(Tensor::randn({3, 5}, rng_), false);
  EXPECT_LT(max_grad_error(
                [&] { return sum_all(mul(softmax_rows(a), w)); }, {a}),
            1e-5);
}

TEST_F(GradCheckTest, LayerNorm) {
  Variable x(Tensor::randn({4, 6}, rng_), true);
  Variable g(Tensor::randn({6}, rng_), true);
  Variable b(Tensor::randn({6}, rng_), true);
  Variable w(Tensor::randn({4, 6}, rng_), false);
  EXPECT_LT(max_grad_error(
                [&] { return sum_all(mul(layer_norm(x, g, b), w)); },
                {x, g, b}),
            1e-4);
}

TEST_F(GradCheckTest, SliceCols) {
  Variable a(Tensor::randn({3, 6}, rng_), true);
  EXPECT_LT(max_grad_error(
                [&] {
                  Variable s = slice_cols(a, 1, 4);
                  return sum_all(mul(s, s));
                },
                {a}),
            1e-5);
}

TEST_F(GradCheckTest, SliceRows) {
  Variable a(Tensor::randn({5, 3}, rng_), true);
  EXPECT_LT(max_grad_error(
                [&] {
                  Variable s = slice_rows(a, 1, 4);
                  return sum_all(mul(s, s));
                },
                {a}),
            1e-5);
}

TEST_F(GradCheckTest, ConcatRows) {
  Variable a(Tensor::randn({2, 3}, rng_), true);
  Variable b(Tensor::randn({4, 3}, rng_), true);
  EXPECT_LT(max_grad_error(
                [&] {
                  Variable c = concat_rows({a, b});
                  return sum_all(mul(c, c));
                },
                {a, b}),
            1e-5);
}

TEST_F(GradCheckTest, Embedding) {
  Variable w(Tensor::randn({7, 4}, rng_), true);
  std::vector<int> idx{0, 3, 3, 6};
  EXPECT_LT(max_grad_error(
                [&] {
                  Variable e = embedding(w, idx);
                  return sum_all(mul(e, e));
                },
                {w}),
            1e-5);
}

TEST_F(GradCheckTest, SoftmaxCrossEntropy) {
  Variable logits(Tensor::randn({4, 5}, rng_), true);
  std::vector<int> targets{0, 2, 4, 1};
  EXPECT_LT(max_grad_error(
                [&] { return softmax_cross_entropy(logits, targets); },
                {logits}),
            1e-5);
}

TEST_F(GradCheckTest, MseLoss) {
  Variable pred(Tensor::randn({6}, rng_), true);
  Tensor target = Tensor::randn({6}, rng_);
  EXPECT_LT(max_grad_error([&] { return mse_loss(pred, target); }, {pred}),
            1e-5);
}

TEST_F(GradCheckTest, Reshape) {
  Variable a(Tensor::randn({2, 6}, rng_), true);
  EXPECT_LT(max_grad_error(
                [&] {
                  Variable r = reshape(a, {3, 4});
                  return sum_all(mul(r, r));
                },
                {a}),
            1e-5);
}

TEST_F(GradCheckTest, MeanAll) {
  Variable a(Tensor::randn({3, 3}, rng_), true);
  EXPECT_LT(max_grad_error([&] { return mean_all(mul(a, a)); }, {a}), 1e-5);
}

// -- op forward semantics -------------------------------------------------------------

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Variable x(Tensor::randn({4, 7}, rng), false);
  Tensor y = softmax_rows(x).value();
  for (std::size_t r = 0; r < 4; ++r) {
    double s = 0;
    for (std::size_t c = 0; c < 7; ++c) s += y.at(r, c);
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(OpsTest, MatmulValues) {
  Variable a(Tensor::from2d({{1, 2}, {3, 4}}), false);
  Variable b(Tensor::from2d({{5, 6}, {7, 8}}), false);
  Tensor c = matmul(a, b).value();
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(OpsTest, MatmulShapeMismatchThrows) {
  Variable a(Tensor({2, 3}), false);
  Variable b(Tensor({4, 2}), false);
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(OpsTest, CrossEntropyOfPerfectPredictionIsSmall) {
  Tensor logits({2, 3});
  logits.at(0, 1) = 100.0;
  logits.at(1, 2) = 100.0;
  Variable v(std::move(logits), false);
  EXPECT_LT(softmax_cross_entropy(v, {1, 2}).value()[0], 1e-6);
}

TEST(OpsTest, ArgmaxAndAccuracy) {
  Tensor logits = Tensor::from2d({{0, 1, 0}, {2, 0, 0}, {0, 0, 3}});
  auto am = argmax_rows(logits);
  EXPECT_EQ(am, (std::vector<int>{1, 0, 2}));
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0, 0}), 2.0 / 3.0);
}

TEST(OpsTest, DropoutTrainingScalesAndEvalIsIdentity) {
  Rng rng(11);
  Variable x(Tensor::ones({10000}), true);
  Tensor y = dropout(x, 0.5, rng, /*training=*/true).value();
  // Kept units are scaled by 1/keep = 2.
  std::size_t kept = 0;
  for (auto v : y.data()) {
    EXPECT_TRUE(v == 0.0 || v == 2.0);
    if (v != 0.0) ++kept;
  }
  EXPECT_NEAR(static_cast<double>(kept) / 10000.0, 0.5, 0.05);
  Tensor z = dropout(x, 0.5, rng, /*training=*/false).value();
  EXPECT_EQ(z.max_abs_diff(Tensor::ones({10000})), 0.0);
}

TEST(OpsTest, EmbeddingOutOfRangeThrows) {
  Rng rng(1);
  Variable w(Tensor::randn({4, 2}, rng), true);
  EXPECT_THROW(embedding(w, {4}), Error);
  EXPECT_THROW(embedding(w, {-1}), Error);
}

TEST(OpsTest, GemmTransposeVariants) {
  // C = A^T * B with A 3x2, B 3x2 -> C 2x2.
  const Scalar a[] = {1, 2, 3, 4, 5, 6};  // 3x2
  const Scalar b[] = {1, 0, 0, 1, 1, 1};  // 3x2
  Scalar c[4] = {};
  gemm(a, b, c, 2, 2, 3, /*trans_a=*/true, /*trans_b=*/false, false);
  // A^T = [[1,3,5],[2,4,6]]; C = A^T B = [[6,8],[8,10]]... compute:
  // row0: 1*1+3*0+5*1=6 ; 1*0+3*1+5*1=8
  EXPECT_DOUBLE_EQ(c[0], 6.0);
  EXPECT_DOUBLE_EQ(c[1], 8.0);
  EXPECT_DOUBLE_EQ(c[2], 8.0);
  EXPECT_DOUBLE_EQ(c[3], 10.0);
}

}  // namespace
}  // namespace avgpipe::tensor
