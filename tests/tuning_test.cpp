#include <gtest/gtest.h>

#include "tuning/tuner.hpp"

namespace avgpipe::tuning {
namespace {

sim::SimJob base_job(const workloads::WorkloadProfile& w,
                     std::size_t num_gpus) {
  auto cluster = workloads::v100_cluster(num_gpus);
  auto part = partition::pipedream_partition(w, cluster, num_gpus);
  sim::SystemConfig sys;
  sys.kind = schedule::Kind::kAdvanceForward;
  sys.micro_batches = 1;
  return sim::build_job(w, cluster, part, sys, w.batch_size, 4);
}

class PredictorTest : public ::testing::Test {
 protected:
  PredictorTest()
      : workload_(workloads::toy_two_stage_profile()),
        job_(base_job(workload_, 2)),
        profile_(run_profile(job_, /*m=*/4, /*n=*/1, /*batches=*/8)) {}

  workloads::WorkloadProfile workload_;
  sim::SimJob job_;
  Profile profile_;
};

TEST_F(PredictorTest, ProfileCollectsPerBatchQuantities) {
  ASSERT_EQ(profile_.gpus.size(), 2u);
  for (const auto& g : profile_.gpus) {
    EXPECT_GT(g.t_gpu, 0.0);
    EXPECT_GT(g.t_comm, 0.0);
    EXPECT_GT(g.f_mod, 0.0);
    EXPECT_GT(g.f_dat, 0.0);
    EXPECT_FALSE(g.phi.empty());
  }
  EXPECT_GT(profile_.profiling_cost, 0.0);
}

TEST_F(PredictorTest, IdentityPredictionRecoversProfiledSetting) {
  // Predicting the profiled setting itself should land near the measured
  // per-batch time (Eq. 1 decomposition of the same run).
  const Prediction p = predict(profile_, profile_.m, profile_.n,
                               job_.batch_size, 0.0);
  EXPECT_GT(p.t_batch, 0.0);
  EXPECT_NEAR(p.t_batch, profile_.time_per_batch,
              0.5 * profile_.time_per_batch);
}

TEST_F(PredictorTest, ComputeTimeScalesInverselyWithPipelines) {
  // Eq. 2: below saturation, T_gpu* halves when n* doubles... per batch of
  // one pipeline the computation is constant; the m*n/(mn*) prefactor
  // reflects per-batch normalisation. Check monotonicity in m*.
  const Prediction m4 = predict(profile_, 4, 1, job_.batch_size, 0.0);
  const Prediction m8 = predict(profile_, 8, 1, job_.batch_size, 0.0);
  // More micro-batches -> lower arithmetic intensity -> more total GPU time.
  EXPECT_GE(m8.t_gpu[0], m4.t_gpu[0] * 0.99);
}

TEST_F(PredictorTest, OverflowTermKicksInWhenSaturated) {
  // Scaling pipelines up multiplies φ; once the scaled curve exceeds 100 %
  // the prediction must add overflow time rather than keep shrinking.
  const Prediction n1 = predict(profile_, 4, 1, job_.batch_size, 0.0);
  const Prediction n8 = predict(profile_, 4, 8, job_.batch_size, 0.0);
  // With 8 pipelines the per-iteration batch count is 8x; per-sample time
  // cannot be 8x better than n=1 if the GPU saturates.
  EXPECT_GT(n8.t_per_sample, n1.t_per_sample / 8.0);
}

TEST_F(PredictorTest, MemoryFollowsEquationEight) {
  const Prediction base = predict(profile_, profile_.m, profile_.n,
                                  job_.batch_size, 0.0);
  const Prediction more_pipes = predict(profile_, profile_.m, 2,
                                        job_.batch_size, 0.0);
  const Prediction more_micro = predict(profile_, 2 * profile_.m, 1,
                                        job_.batch_size, 0.0);
  // n* doubling doubles everything; m* doubling halves only the data part.
  EXPECT_NEAR(more_pipes.peak_memory, 2.0 * base.peak_memory,
              1e-6 * base.peak_memory);
  EXPECT_LT(more_micro.peak_memory, base.peak_memory);
  EXPECT_GT(more_micro.peak_memory, 0.4 * base.peak_memory);
}

TEST_F(PredictorTest, InfeasibleWhenOverLimit) {
  const Prediction p = predict(profile_, 4, 4, job_.batch_size, /*limit=*/1.0);
  EXPECT_FALSE(p.feasible);
}

TEST_F(PredictorTest, BubbleVanishesWithManyMicroBatches) {
  // Eqs. 6-7 divide by m*: bubbles shrink as micro-batch count grows.
  const Prediction few = predict(profile_, 2, 1, job_.batch_size, 0.0);
  const Prediction many = predict(profile_, 16, 1, job_.batch_size, 0.0);
  EXPECT_LT(many.t_bub[0], few.t_bub[0]);
}

/// Property sweep: predictions must rank settings consistently with the
/// simulator (Spearman-ish check on a small grid).
TEST_F(PredictorTest, PredictionOrdersSettingsLikeTheSimulator) {
  struct Setting {
    std::size_t m, n;
  };
  const std::vector<Setting> settings{{1, 1}, {2, 1}, {4, 1}, {8, 1},
                                      {2, 2}, {4, 2}, {8, 2}};
  std::vector<double> predicted, measured;
  for (const auto& s : settings) {
    predicted.push_back(
        predict(profile_, s.m, s.n, job_.batch_size, 0.0).t_per_sample);
    bool oom = false;
    measured.push_back(measure_setting(job_, job_.batch_size, s.m, s.n, 0.0,
                                       &oom));
  }
  // Count concordant pairs.
  int concordant = 0, total = 0;
  for (std::size_t i = 0; i < settings.size(); ++i) {
    for (std::size_t j = i + 1; j < settings.size(); ++j) {
      ++total;
      if ((predicted[i] < predicted[j]) == (measured[i] < measured[j])) {
        ++concordant;
      }
    }
  }
  EXPECT_GE(static_cast<double>(concordant) / total, 0.65);
}

// -- tuner strategies ----------------------------------------------------------------------

TEST(GridTest, PowersOfTwoDividingBatch) {
  auto grid = default_grid(24, 3);
  EXPECT_EQ(grid.micro_batches, (std::vector<std::size_t>{1, 2, 4, 8}));
  EXPECT_EQ(grid.pipelines, (std::vector<std::size_t>{1, 2, 3}));
}

class TunerTest : public ::testing::Test {
 protected:
  TunerTest()
      : workload_(workloads::toy_two_stage_profile()),
        job_(base_job(workload_, 2)),
        grid_(default_grid(workload_.batch_size, 4)),
        limit_(workloads::v100_cluster(2).gpu.memory) {}

  workloads::WorkloadProfile workload_;
  sim::SimJob job_;
  CandidateGrid grid_;
  Bytes limit_;
};

TEST_F(TunerTest, ProfilingTunerIsNearTraversalOptimum) {
  const TuneResult traversal =
      traversal_tuner(job_, workload_.batch_size, grid_, limit_);
  const TuneResult profiling =
      profiling_tuner(job_, workload_.batch_size, grid_, limit_);
  ASSERT_TRUE(traversal.feasible);
  ASSERT_TRUE(profiling.feasible);
  // Paper §7.3: "nearly shortest training time".
  EXPECT_LE(profiling.time_per_sample, traversal.time_per_sample * 1.5);
}

TEST_F(TunerTest, ProfilingTunerIsMuchCheaperThanTraversal) {
  const TuneResult traversal =
      traversal_tuner(job_, workload_.batch_size, grid_, limit_);
  const TuneResult profiling =
      profiling_tuner(job_, workload_.batch_size, grid_, limit_);
  EXPECT_LT(profiling.tuning_cost, traversal.tuning_cost / 5.0);
}

TEST_F(TunerTest, GuidelinesPickTheirDefiningM) {
  const TuneResult mn = max_num_guideline(job_, workload_.batch_size, grid_,
                                          limit_);
  const TuneResult ms = max_size_guideline(job_, workload_.batch_size, grid_,
                                           limit_);
  EXPECT_EQ(mn.m, workload_.batch_size);  // micro-batch size one
  EXPECT_EQ(ms.m, 1u);                    // a single micro-batch
}

TEST_F(TunerTest, TraversalNeverLosesToGuidelines) {
  const TuneResult traversal =
      traversal_tuner(job_, workload_.batch_size, grid_, limit_);
  const TuneResult mn = max_num_guideline(job_, workload_.batch_size, grid_,
                                          limit_);
  const TuneResult ms = max_size_guideline(job_, workload_.batch_size, grid_,
                                           limit_);
  EXPECT_LE(traversal.time_per_sample, mn.time_per_sample * 1.0001);
  EXPECT_LE(traversal.time_per_sample, ms.time_per_sample * 1.0001);
}

TEST_F(TunerTest, MemoryLimitRestrictsChoice) {
  // A tight limit should force fewer pipelines (or fail feasibility).
  const TuneResult loose =
      profiling_tuner(job_, workload_.batch_size, grid_, limit_);
  const TuneResult tight = profiling_tuner(job_, workload_.batch_size, grid_,
                                           1.2 * workload_.total_param_bytes());
  if (tight.feasible) {
    EXPECT_LE(tight.n, loose.n);
  }
}

}  // namespace
}  // namespace avgpipe::tuning
