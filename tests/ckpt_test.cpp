#include "ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/state.hpp"
#include "core/avgpipe.hpp"
#include "core/sync_policy.hpp"
#include "data/synthetic.hpp"
#include "fault/fault_plan.hpp"
#include "nn/models.hpp"
#include "trace/trace.hpp"

namespace avgpipe {
namespace {

using core::AvgPipe;
using core::AvgPipeConfig;
using core::AvgPipeTrainer;
using core::clone_values;
using core::max_abs_diff;
using core::ParamSet;
using core::SyncPolicyConfig;
using core::SyncPolicyKind;
using data::Batch;
using data::DataLoader;
using data::SyntheticFeatures;
using tensor::Tensor;
using tensor::Variable;

runtime::OptimizerFactory sgd_factory(double lr) {
  return [lr](std::vector<Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), lr);
  };
}

nn::ModelFactory mlp_factory(std::size_t in, std::size_t hidden,
                             std::size_t depth, std::size_t classes) {
  return [=](std::uint64_t seed) {
    return nn::make_mlp(in, hidden, depth, classes, seed);
  };
}

/// Fresh temp directory, removed when the fixture object dies. mkdtemp keeps
/// parallel ctest shards from colliding on a shared name.
struct TempDir {
  TempDir() {
    std::string tmpl = "/tmp/avgpipe_ckpt_test_XXXXXX";
    const char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

std::vector<Tensor> clone_list(const std::vector<Tensor>& ts) {
  std::vector<Tensor> out;
  out.reserve(ts.size());
  for (const auto& t : ts) out.push_back(t.clone());
  return out;
}

/// A small but fully-populated TrainState (dead pipeline, XPipe-style
/// predictor deltas, RNG streams) for the codec and directory tests.
ckpt::TrainState tiny_state(long step) {
  Rng rng(static_cast<std::uint64_t>(step) + 7);
  ckpt::TrainState s;
  s.step = step;
  s.policy_kind = 3;
  s.alpha = 0.375;
  s.reference = {Tensor::randn({3, 2}, rng), Tensor::randn({2}, rng)};
  s.policy_state = {Tensor::randn({3, 2}, rng)};
  s.broadcast = clone_list(s.reference);

  ckpt::PipelineState alive;
  alive.params = clone_list(s.reference);
  runtime::StageState stage;
  stage.optimizer.name = "sgd";
  stage.optimizer.steps = static_cast<std::size_t>(step);
  stage.optimizer.scalars = {0.9, -3.25e-7};
  stage.optimizer.slots = {Tensor::randn({3, 2}, rng)};
  stage.pred_delta = {Tensor::randn({3, 2}, rng)};
  stage.pred_have_delta = true;
  alive.stages = {stage};

  ckpt::PipelineState dead;
  dead.alive = false;

  s.pipelines = {alive, dead};
  s.rng_streams = {{"data", Rng(11).save_state()},
                   {"chaos", Rng(13).save_state()}};
  return s;
}

void expect_states_equal(const ckpt::TrainState& a, const ckpt::TrainState& b) {
  EXPECT_EQ(a.step, b.step);
  EXPECT_EQ(a.policy_kind, b.policy_kind);
  EXPECT_EQ(a.alpha, b.alpha);  // bit-exact, not approximate
  EXPECT_EQ(max_abs_diff(a.reference, b.reference), 0.0);
  EXPECT_EQ(max_abs_diff(a.policy_state, b.policy_state), 0.0);
  EXPECT_EQ(max_abs_diff(a.broadcast, b.broadcast), 0.0);
  ASSERT_EQ(a.pipelines.size(), b.pipelines.size());
  for (std::size_t i = 0; i < a.pipelines.size(); ++i) {
    const auto& pa = a.pipelines[i];
    const auto& pb = b.pipelines[i];
    EXPECT_EQ(pa.alive, pb.alive) << "pipeline " << i;
    EXPECT_EQ(max_abs_diff(pa.params, pb.params), 0.0);
    ASSERT_EQ(pa.stages.size(), pb.stages.size());
    for (std::size_t k = 0; k < pa.stages.size(); ++k) {
      const auto& sa = pa.stages[k];
      const auto& sb = pb.stages[k];
      EXPECT_EQ(sa.optimizer.name, sb.optimizer.name);
      EXPECT_EQ(sa.optimizer.steps, sb.optimizer.steps);
      EXPECT_EQ(sa.optimizer.scalars, sb.optimizer.scalars);
      EXPECT_EQ(max_abs_diff(sa.optimizer.slots, sb.optimizer.slots), 0.0);
      EXPECT_EQ(max_abs_diff(sa.pred_delta, sb.pred_delta), 0.0);
      EXPECT_EQ(sa.pred_have_delta, sb.pred_have_delta);
    }
  }
  EXPECT_EQ(a.rng_streams, b.rng_streams);
  EXPECT_EQ(a.sync_codec, b.sync_codec);
  EXPECT_EQ(max_abs_diff(a.broadcast_residual, b.broadcast_residual), 0.0);
  for (std::size_t i = 0; i < a.pipelines.size(); ++i) {
    EXPECT_EQ(max_abs_diff(a.pipelines[i].residuals,
                           b.pipelines[i].residuals),
              0.0)
        << "pipeline " << i << " residuals";
  }
}

/// tiny_state plus an active sync codec and error-feedback residuals.
ckpt::TrainState tiny_state_compressed(long step) {
  Rng rng(static_cast<std::uint64_t>(step) + 31);
  ckpt::TrainState s = tiny_state(step);
  s.sync_codec = static_cast<std::uint8_t>(tensor::Codec::kInt8);
  s.broadcast_residual = {Tensor::randn({3, 2}, rng), Tensor::randn({2}, rng)};
  s.pipelines[0].residuals = {Tensor::randn({3, 2}, rng),
                              Tensor::randn({2}, rng)};
  return s;
}

// -- format primitives -------------------------------------------------------------------

TEST(CkptFormatTest, ByteWriterReaderRoundTripsEveryScalarKind) {
  ckpt::ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());
  w.str("checkpoint");

  ckpt::ByteReader r(w.buffer());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(std::signbit(r.f64()));  // -0.0 survives (raw IEEE bytes)
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(r.str(), "checkpoint");
  EXPECT_NO_THROW(r.expect_done("scalars"));
}

TEST(CkptFormatTest, ByteReaderRefusesTruncationAndTrailingJunk) {
  ckpt::ByteWriter w;
  w.u64(7);
  // Truncated: only half the bytes present.
  ckpt::ByteReader truncated(w.buffer().data(), 4);
  EXPECT_THROW(truncated.u64(), Error);
  // Trailing junk after a complete decode is corruption, not success.
  w.u8(0);
  ckpt::ByteReader trailing(w.buffer());
  trailing.u64();
  EXPECT_THROW(trailing.expect_done("trailing"), Error);
}

TEST(CkptFormatTest, TensorRoundTripIsBitExact) {
  // Compare re-serialized images, not values: byte equality is bit-exactness
  // even for -0.0 and NaN payloads that defeat arithmetic comparison.
  Tensor t = Tensor::from({0.1, -0.0, 1e-300, -3.25,
                           std::numeric_limits<double>::quiet_NaN()});
  ckpt::ByteWriter w;
  ckpt::write_tensor(w, t);

  ckpt::ByteReader r(w.buffer());
  const Tensor back = ckpt::read_tensor(r);
  r.expect_done("tensor");
  EXPECT_EQ(back.shape(), t.shape());

  ckpt::ByteWriter again;
  ckpt::write_tensor(again, back);
  EXPECT_EQ(again.buffer(), w.buffer());
}

TEST(CkptFormatTest, OptimizerStateRoundTrips) {
  Rng rng(5);
  optim::OptimizerState s;
  s.name = "adam";
  s.steps = 17;
  s.scalars = {0.9, 0.999, 1e-8};
  s.slots = {Tensor::randn({4, 3}, rng), Tensor::randn({3}, rng)};

  ckpt::ByteWriter w;
  ckpt::write_optimizer_state(w, s);
  ckpt::ByteReader r(w.buffer());
  const optim::OptimizerState back = ckpt::read_optimizer_state(r);
  r.expect_done("optimizer");

  EXPECT_EQ(back.name, s.name);
  EXPECT_EQ(back.steps, s.steps);
  EXPECT_EQ(back.scalars, s.scalars);
  EXPECT_EQ(max_abs_diff(back.slots, s.slots), 0.0);
}

// -- checkpoint files --------------------------------------------------------------------

TEST(CkptFileTest, WriterCommitsAtomicallyAndReaderValidatesRecords) {
  TempDir tmp;
  const std::string path = tmp.path + "/ckpt.bin";
  ckpt::CheckpointWriter w;
  w.add_record("meta", {1, 2, 3});
  w.add_record("payload", std::vector<std::uint8_t>(257, 0x5A));
  EXPECT_THROW(w.add_record("meta", {}), Error);  // names unique per file

  const auto committed = w.commit(path);
  EXPECT_EQ(committed.bytes, ckpt::file_size(path));
  EXPECT_EQ(w.serialize().size(), committed.bytes);

  const auto reader = ckpt::CheckpointReader::open(path);
  ASSERT_TRUE(reader.has("meta"));
  ASSERT_TRUE(reader.has("payload"));
  EXPECT_EQ(reader.payload("meta"), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(reader.payload("payload").size(), 257u);
  for (const auto& rec : reader.records()) EXPECT_TRUE(rec.crc_ok);
  EXPECT_THROW(reader.payload("absent"), Error);
  // No .tmp residue after a clean commit.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(CkptFileTest, FlippedBitIsCaughtByRecordCrc) {
  TempDir tmp;
  const std::string path = tmp.path + "/ckpt.bin";
  ckpt::CheckpointWriter w;
  w.add_record("payload", std::vector<std::uint8_t>(64, 0x00));
  w.commit(path);

  ckpt::flip_bit(path, /*bit_index=*/8 * 40);  // inside the payload
  EXPECT_THROW(ckpt::CheckpointReader::open(path), Error);

  // The lenient parse survives to report which record is bad.
  const auto info = ckpt::CheckpointReader::inspect(path);
  bool any_bad = !info.ok;
  for (const auto& rec : info.records) any_bad = any_bad || !rec.crc_ok;
  EXPECT_TRUE(any_bad);
}

TEST(CkptFileTest, TornWriteFailsStrictOpenButNotInspect) {
  TempDir tmp;
  const std::string path = tmp.path + "/ckpt.bin";
  ckpt::CheckpointWriter w;
  w.add_record("payload", std::vector<std::uint8_t>(512, 0x77));
  w.commit(path);

  ckpt::truncate_file(path, ckpt::file_size(path) / 2);
  EXPECT_THROW(ckpt::CheckpointReader::open(path), Error);
  const auto info = ckpt::CheckpointReader::inspect(path);
  EXPECT_FALSE(info.ok);
  EXPECT_FALSE(info.error.empty());
}

// -- TrainState codec --------------------------------------------------------------------

TEST(CkptStateTest, TrainStateRoundTripsThroughAFile) {
  TempDir tmp;
  const std::string path = tmp.path + "/state.bin";
  const ckpt::TrainState state = tiny_state(12);

  ckpt::CheckpointWriter w;
  ckpt::encode(state, w);
  w.commit(path);

  const ckpt::TrainState back =
      ckpt::decode(ckpt::CheckpointReader::open(path));
  expect_states_equal(state, back);
}

TEST(CkptStateTest, OffModeWritesNoResidualRecordsAndStaysByteCompatible) {
  // An uncompressed run's checkpoint must be byte-identical to the
  // pre-compression format: no residual.* records at all, and the decoded
  // state carries codec 0 with empty residual lists.
  const ckpt::TrainState state = tiny_state(3);
  ASSERT_EQ(state.sync_codec, 0);
  ckpt::CheckpointWriter w;
  ckpt::encode(state, w);
  TempDir tmp;
  const std::string path = tmp.path + "/state.bin";
  w.commit(path);

  const auto reader = ckpt::CheckpointReader::open(path);
  EXPECT_FALSE(reader.has("residual.broadcast"));
  EXPECT_FALSE(reader.has("residual.0"));
  const ckpt::TrainState back = ckpt::decode(reader);
  EXPECT_EQ(back.sync_codec, 0);
  EXPECT_TRUE(back.broadcast_residual.empty());
  for (const auto& p : back.pipelines) EXPECT_TRUE(p.residuals.empty());
}

TEST(CkptStateTest, CompressedStateRoundTripsResidualsExactly) {
  // Residuals are f64 state like everything else: the round trip must be
  // bit-exact, and a dead pipeline's empty residual list must survive too.
  TempDir tmp;
  const std::string path = tmp.path + "/state.bin";
  const ckpt::TrainState state = tiny_state_compressed(9);

  ckpt::CheckpointWriter w;
  ckpt::encode(state, w);
  w.commit(path);

  const auto reader = ckpt::CheckpointReader::open(path);
  EXPECT_TRUE(reader.has("residual.broadcast"));
  EXPECT_TRUE(reader.has("residual.0"));
  const ckpt::TrainState back = ckpt::decode(reader);
  expect_states_equal(state, back);
  EXPECT_EQ(back.sync_codec, static_cast<std::uint8_t>(tensor::Codec::kInt8));
}

// -- checkpoint directory (manifest protocol) --------------------------------------------

TEST(CkptDirTest, ManifestIsMonotonicInStep) {
  TempDir tmp;
  ckpt::CheckpointDir dir(tmp.path);
  dir.write(tiny_state(5));
  EXPECT_THROW(dir.write(tiny_state(5)), Error);  // must strictly advance
  EXPECT_THROW(dir.write(tiny_state(4)), Error);
  dir.write(tiny_state(6));
  const auto entries = dir.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.front().step, 5);
  EXPECT_EQ(entries.back().step, 6);
}

TEST(CkptDirTest, RetentionPrunesOldestFilesButKeepsManifestConsistent) {
  TempDir tmp;
  ckpt::CheckpointDir dir(tmp.path, /*retain=*/2);
  for (long step = 1; step <= 4; ++step) dir.write(tiny_state(step));

  const auto entries = dir.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].step, 3);
  EXPECT_EQ(entries[1].step, 4);
  // Every manifest entry resolves to a real file, and the pruned ones are
  // actually gone from disk.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(tmp.path)) {
    if (e.path().filename() != "MANIFEST.json") ++files;
  }
  EXPECT_EQ(files, 2u);
  for (const auto& e : entries) {
    EXPECT_TRUE(std::filesystem::exists(tmp.path + "/" + e.file));
  }
}

TEST(CkptDirTest, LoadLatestFallsBackOverACorruptedNewestEntry) {
  TempDir tmp;
  ckpt::CheckpointDir dir(tmp.path);
  dir.write(tiny_state(1));
  dir.write(tiny_state(2));
  ckpt::flip_bit(tmp.path + "/" + dir.entries().back().file, 12345);

  ckpt::TrainState state;
  const auto res = dir.load_latest(&state);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.step, 1);
  EXPECT_EQ(res.fallbacks, 1);
  expect_states_equal(state, tiny_state(1));
}

TEST(CkptDirTest, LoadLatestFallsBackOverATornNewestEntry) {
  TempDir tmp;
  ckpt::CheckpointDir dir(tmp.path);
  dir.write(tiny_state(1));
  dir.write(tiny_state(2));
  const std::string newest = tmp.path + "/" + dir.entries().back().file;
  ckpt::truncate_file(newest, ckpt::file_size(newest) / 3);

  ckpt::TrainState state;
  const auto res = dir.load_latest(&state);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.step, 1);
  EXPECT_EQ(res.fallbacks, 1);
}

TEST(CkptDirTest, LoadLatestReportsFailureWhenEverythingIsCorrupted) {
  TempDir tmp;
  ckpt::CheckpointDir dir(tmp.path);
  dir.write(tiny_state(1));
  dir.write(tiny_state(2));
  for (const auto& e : dir.entries()) {
    ckpt::flip_bit(tmp.path + "/" + e.file, 999);
  }
  ckpt::TrainState state;
  const auto res = dir.load_latest(&state);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.fallbacks, 2);
  EXPECT_FALSE(res.error.empty());
}

TEST(CkptDirTest, EmptyDirectoryLoadsNothing) {
  TempDir tmp;
  ckpt::CheckpointDir dir(tmp.path);
  ckpt::TrainState state;
  const auto res = dir.load_latest(&state);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(dir.entries().empty());
}

// -- RNG streams -------------------------------------------------------------------------

TEST(CkptRngTest, RngSaveRestoreResumesTheDrawSequenceExactly) {
  Rng a(99);
  for (int i = 0; i < 100; ++i) a.uniform();
  const std::string snapshot = a.save_state();

  std::vector<double> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(a.uniform());

  Rng b(1);  // different seed: state must come wholly from the snapshot
  b.restore_state(snapshot);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(b.uniform(), expected[static_cast<std::size_t>(i)]) << i;
  }
  EXPECT_THROW(b.restore_state("not an engine snapshot"), Error);
}

// -- serial resume bit-parity (one test per policy kind) ---------------------------------

class CkptResumeParityTest : public ::testing::TestWithParam<SyncPolicyKind> {};

std::string kind_name(const ::testing::TestParamInfo<SyncPolicyKind>& info) {
  return to_string(info.param);
}

TEST_P(CkptResumeParityTest, SerialResumeIsBitIdenticalToUninterruptedRun) {
  // Train 10 rounds straight vs 5 rounds + durable checkpoint + restore into
  // a *fresh* trainer + 5 more rounds: losses EXPECT_DOUBLE_EQ per round and
  // every parameter set exactly equal (0.0 max-abs delta). This is the
  // paper-level recovery contract: a crash costs wall-clock, never the
  // trajectory.
  const SyncPolicyKind kind = GetParam();
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);
  SyncPolicyConfig sync;
  sync.kind = kind;
  const std::size_t kHalf = 5, kTotal = 10;

  AvgPipeTrainer uninterrupted(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), 2,
                               sync);
  std::vector<double> losses;
  for (std::size_t iter = 0; iter < kTotal; ++iter) {
    losses.push_back(uninterrupted.train_iteration(
        {loader.batch(iter, 0), loader.batch(iter, 1)}));
  }

  TempDir tmp;
  ckpt::CheckpointDir ckpts(tmp.path);
  {
    AvgPipeTrainer first(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), 2, sync);
    for (std::size_t iter = 0; iter < kHalf; ++iter) {
      first.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
    }
    const auto entry = ckpts.write(first.capture_state());
    EXPECT_EQ(entry.step, static_cast<long>(kHalf));
  }  // trainer destroyed: the "process" died

  AvgPipeTrainer resumed(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), 2, sync);
  ckpt::TrainState state;
  const auto res = ckpts.load_latest(&state);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.fallbacks, 0);
  resumed.restore_state(state);
  EXPECT_EQ(resumed.iterations(), static_cast<long>(kHalf));

  for (std::size_t iter = kHalf; iter < kTotal; ++iter) {
    const double loss = resumed.train_iteration(
        {loader.batch(iter, 0), loader.batch(iter, 1)});
    EXPECT_DOUBLE_EQ(loss, losses[iter]) << "iter " << iter;
  }
  EXPECT_EQ(max_abs_diff(resumed.reference().params(),
                         uninterrupted.reference().params()),
            0.0);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(max_abs_diff(clone_values(resumed.replica(i).parameters()),
                           clone_values(uninterrupted.replica(i).parameters())),
              0.0)
        << "replica " << i;
  }
}

TEST_P(CkptResumeParityTest, ThreadedResumeIsBitIdenticalToUninterruptedRun) {
  // Same contract on the full threaded system (sync mode is deterministic).
  // XPipe makes this the deep test: its per-stage EMA predictor state rides
  // in StageState and a missed delta would silently fork the trajectory.
  const SyncPolicyKind kind = GetParam();
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 3;
  cfg.boundaries = {2};
  cfg.sync.kind = kind;
  const std::size_t kHalf = 4, kTotal = 8;

  AvgPipe uninterrupted(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg);
  std::vector<double> losses;
  for (std::size_t iter = 0; iter < kTotal; ++iter) {
    losses.push_back(uninterrupted.train_iteration(
        {loader.batch(iter, 0), loader.batch(iter, 1)}));
  }

  TempDir tmp;
  ckpt::CheckpointDir ckpts(tmp.path);
  AvgPipeConfig cfg_ck = cfg;
  cfg_ck.checkpoints = &ckpts;
  {
    AvgPipe first(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg_ck);
    for (std::size_t iter = 0; iter < kHalf; ++iter) {
      first.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
    }
    const auto entry = first.save_checkpoint();
    EXPECT_EQ(entry.step, static_cast<long>(kHalf));
    EXPECT_GT(entry.bytes, 0u);
  }

  AvgPipe resumed(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg_ck);
  const auto res = resumed.restore_latest_checkpoint();
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.step, static_cast<long>(kHalf));

  for (std::size_t iter = kHalf; iter < kTotal; ++iter) {
    const double loss = resumed.train_iteration(
        {loader.batch(iter, 0), loader.batch(iter, 1)});
    EXPECT_DOUBLE_EQ(loss, losses[iter]) << "iter " << iter;
  }
  EXPECT_EQ(max_abs_diff(resumed.reference_snapshot(),
                         uninterrupted.reference_snapshot()),
            0.0);
  EXPECT_EQ(max_abs_diff(resumed.broadcast_snapshot(),
                         uninterrupted.broadcast_snapshot()),
            0.0);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(max_abs_diff(resumed.replica_snapshot(i),
                           uninterrupted.replica_snapshot(i)),
              0.0)
        << "replica " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CkptResumeParityTest,
                         ::testing::ValuesIn(core::all_sync_policies()),
                         kind_name);

// -- resume bit-parity under a lossy sync codec ------------------------------------------

class CkptCompressedResumeTest
    : public ::testing::TestWithParam<SyncPolicyKind> {};

TEST_P(CkptCompressedResumeTest, Int8ResumeIsBitIdenticalToUninterruptedRun) {
  // The recovery contract must survive compression: the EF residuals are
  // part of TrainState, so a restore lands on the exact lossy trajectory the
  // uninterrupted compressed run follows — same quantization decisions, same
  // compensation, 0.0 delta.
  const SyncPolicyKind kind = GetParam();
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);
  SyncPolicyConfig sync;
  sync.kind = kind;
  core::SyncCompression int8;
  int8.codec = tensor::Codec::kInt8;
  const std::size_t kHalf = 5, kTotal = 10;

  AvgPipeTrainer uninterrupted(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), 2,
                               sync);
  uninterrupted.set_sync_compression(int8);
  std::vector<double> losses;
  for (std::size_t iter = 0; iter < kTotal; ++iter) {
    losses.push_back(uninterrupted.train_iteration(
        {loader.batch(iter, 0), loader.batch(iter, 1)}));
  }

  TempDir tmp;
  ckpt::CheckpointDir ckpts(tmp.path);
  {
    AvgPipeTrainer first(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), 2, sync);
    first.set_sync_compression(int8);
    for (std::size_t iter = 0; iter < kHalf; ++iter) {
      first.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
    }
    const ckpt::TrainState state = first.capture_state();
    EXPECT_EQ(state.sync_codec,
              static_cast<std::uint8_t>(tensor::Codec::kInt8));
    ckpts.write(state);
  }

  AvgPipeTrainer resumed(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), 2, sync);
  resumed.set_sync_compression(int8);
  ckpt::TrainState state;
  const auto res = ckpts.load_latest(&state);
  ASSERT_TRUE(res.ok) << res.error;
  resumed.restore_state(state);

  for (std::size_t iter = kHalf; iter < kTotal; ++iter) {
    const double loss = resumed.train_iteration(
        {loader.batch(iter, 0), loader.batch(iter, 1)});
    EXPECT_DOUBLE_EQ(loss, losses[iter]) << "iter " << iter;
  }
  EXPECT_EQ(max_abs_diff(resumed.reference().params(),
                         uninterrupted.reference().params()),
            0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CkptCompressedResumeTest,
                         ::testing::ValuesIn(core::all_sync_policies()),
                         kind_name);

TEST(CkptCompressedSystemTest, ThreadedInt8ResumeIsBitIdentical) {
  // Same contract on the threaded system with the codec pinned in config.
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 3;
  cfg.boundaries = {2};
  core::SyncCompression int8;
  int8.codec = tensor::Codec::kInt8;
  cfg.sync_compression = int8;
  const std::size_t kHalf = 4, kTotal = 8;

  AvgPipe uninterrupted(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg);
  std::vector<double> losses;
  for (std::size_t iter = 0; iter < kTotal; ++iter) {
    losses.push_back(uninterrupted.train_iteration(
        {loader.batch(iter, 0), loader.batch(iter, 1)}));
  }

  TempDir tmp;
  ckpt::CheckpointDir ckpts(tmp.path);
  AvgPipeConfig cfg_ck = cfg;
  cfg_ck.checkpoints = &ckpts;
  {
    AvgPipe first(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg_ck);
    for (std::size_t iter = 0; iter < kHalf; ++iter) {
      first.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
    }
    first.save_checkpoint();
  }

  AvgPipe resumed(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg_ck);
  const auto res = resumed.restore_latest_checkpoint();
  ASSERT_TRUE(res.ok) << res.error;

  for (std::size_t iter = kHalf; iter < kTotal; ++iter) {
    const double loss = resumed.train_iteration(
        {loader.batch(iter, 0), loader.batch(iter, 1)});
    EXPECT_DOUBLE_EQ(loss, losses[iter]) << "iter " << iter;
  }
  EXPECT_EQ(max_abs_diff(resumed.reference_snapshot(),
                         uninterrupted.reference_snapshot()),
            0.0);
}

TEST(CkptCompressedSystemTest, CodecMismatchResetsResidualsButRestores) {
  // A checkpoint written under one codec must still restore into a system
  // running another (or none): parameters land exactly, residuals reset.
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 3;
  cfg.boundaries = {2};
  core::SyncCompression int8;
  int8.codec = tensor::Codec::kInt8;
  cfg.sync_compression = int8;
  AvgPipe compressed(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg);
  for (std::size_t iter = 0; iter < 3; ++iter) {
    compressed.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
  }
  const ckpt::TrainState state = compressed.capture_state();

  AvgPipeConfig off_cfg = cfg;
  off_cfg.sync_compression = core::SyncCompression{};
  AvgPipe plain(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), off_cfg);
  plain.restore_state(state);  // must not throw
  EXPECT_EQ(max_abs_diff(plain.reference_snapshot(),
                         compressed.reference_snapshot()),
            0.0);
  const double loss =
      plain.train_iteration({loader.batch(3, 0), loader.batch(3, 1)});
  EXPECT_TRUE(std::isfinite(loss));
}

// -- registered RNG streams in system checkpoints ----------------------------------------

TEST(CkptSystemTest, RegisteredRngStreamsRideAlongCaptureAndRestore) {
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 3;
  cfg.boundaries = {2};
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg);

  Rng data_order(7);
  system.register_rng("data-order", &data_order);
  EXPECT_THROW(system.register_rng("data-order", &data_order), Error);

  system.train_iteration({loader.batch(0, 0), loader.batch(0, 1)});
  const ckpt::TrainState state = system.capture_state();
  ASSERT_EQ(state.rng_streams.size(), 1u);
  EXPECT_EQ(state.rng_streams[0].first, "data-order");

  std::vector<double> expected;
  for (int i = 0; i < 16; ++i) expected.push_back(data_order.uniform());

  system.restore_state(state);  // rewinds the stream to the capture point
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(data_order.uniform(), expected[static_cast<std::size_t>(i)]);
  }
}

// -- dead-pipeline membership across restore ---------------------------------------------

TEST(CkptSystemTest, DeadPipelineStaysDetachedAcrossRestore) {
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 3;
  cfg.boundaries = {2};
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg);

  system.train_iteration({loader.batch(0, 0), loader.batch(0, 1)});
  system.detach_pipeline(1, "operator drain");
  system.train_iteration({loader.batch(1, 0), loader.batch(1, 1)});
  const ckpt::TrainState state = system.capture_state();
  EXPECT_TRUE(state.pipelines[0].alive);
  EXPECT_FALSE(state.pipelines[1].alive);

  AvgPipe other(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg);
  other.restore_state(state);
  EXPECT_TRUE(other.pipeline_alive(0));
  EXPECT_FALSE(other.pipeline_alive(1));
  EXPECT_EQ(other.alpha(), state.alpha);

  // And the membership machinery still works on the restored system.
  other.rejoin_pipeline(1);
  const double loss =
      other.train_iteration({loader.batch(2, 0), loader.batch(2, 1)});
  EXPECT_TRUE(std::isfinite(loss));
}

// -- failure escalation: mid-batch kill -> detach -> restore-from-checkpoint -------------

TEST(CkptEscalationTest, WorkerKillEscalatesToDurableRestore) {
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);
  TempDir tmp;
  ckpt::CheckpointDir ckpts(tmp.path);

  fault::FaultPlan plan;
  fault::WorkerKill kill;
  kill.pipeline = 1;
  kill.step = 2;  // dies mid-batch on the third iteration
  kill.micro_batch = 1;
  plan.kills.push_back(kill);

  trace::Tracer tracer;
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 3;
  cfg.boundaries = {2};
  cfg.checkpoints = &ckpts;
  cfg.restore_on_failure = true;
  cfg.faults = &plan;
  cfg.tracer = &tracer;
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg);

  for (std::size_t iter = 0; iter < 2; ++iter) {
    system.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
  }
  system.save_checkpoint();

  // The kill iteration: pipeline 1 dies mid-batch, is detached, and comes
  // back within the same train_iteration with its durable state.
  const double loss =
      system.train_iteration({loader.batch(2, 0), loader.batch(2, 1)});
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_TRUE(system.pipeline_alive(1));
  EXPECT_EQ(system.alive_pipelines(), 2u);
  EXPECT_GE(system.health(1).failures, 1u);

  // Two more healthy rounds. (Only two: the restored pipeline's fresh
  // runtime restarts its train_batch counter, so the exact-step kill record
  // would legitimately re-fire once the counter reaches 2 again.)
  for (std::size_t iter = 3; iter < 5; ++iter) {
    const double l =
        system.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
    EXPECT_TRUE(std::isfinite(l)) << "iter " << iter;
  }

  std::size_t crashes = 0, rejoins = 0, checkpoints = 0;
  bool durable_restore = false;
  for (const auto& ev : tracer.collect()) {
    if (ev.kind == trace::EventKind::kPipelineCrash) ++crashes;
    if (ev.kind == trace::EventKind::kPipelineRejoin) ++rejoins;
    if (ev.kind == trace::EventKind::kCheckpoint) ++checkpoints;
    if (ev.kind == trace::EventKind::kRestore && ev.batch == 2) {
      durable_restore = true;  // restored the step-2 checkpoint, no fallback
    }
  }
  EXPECT_EQ(crashes, 1u);
  EXPECT_GE(rejoins, 1u);
  EXPECT_EQ(checkpoints, 1u);
  EXPECT_TRUE(durable_restore);
}

TEST(CkptEscalationTest, KillWithoutLoadableCheckpointFallsBackToBroadcast) {
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);
  TempDir tmp;
  ckpt::CheckpointDir ckpts(tmp.path);  // stays empty: nothing to load

  fault::FaultPlan plan;
  fault::WorkerKill kill;
  kill.pipeline = 0;
  kill.step = 1;
  plan.kills.push_back(kill);

  trace::Tracer tracer;
  AvgPipeConfig cfg;
  cfg.num_pipelines = 2;
  cfg.micro_batches = 3;
  cfg.boundaries = {2};
  cfg.checkpoints = &ckpts;
  cfg.restore_on_failure = true;
  cfg.faults = &plan;
  cfg.tracer = &tracer;
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), cfg);

  system.train_iteration({loader.batch(0, 0), loader.batch(0, 1)});
  const double loss =
      system.train_iteration({loader.batch(1, 0), loader.batch(1, 1)});
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_TRUE(system.pipeline_alive(0));  // degraded to the broadcast rejoin

  bool fallback_restore = false;
  for (const auto& ev : tracer.collect()) {
    if (ev.kind == trace::EventKind::kRestore && ev.batch == -1) {
      fallback_restore = true;  // batch == -1 marks "no durable state used"
    }
  }
  EXPECT_TRUE(fallback_restore);

  const double next =
      system.train_iteration({loader.batch(2, 0), loader.batch(2, 1)});
  EXPECT_TRUE(std::isfinite(next));
}

}  // namespace
}  // namespace avgpipe
