#include "schedule/schedule.hpp"

#include <gtest/gtest.h>

namespace avgpipe::schedule {
namespace {

ScheduleParams params(Kind kind, std::size_t k, std::size_t m,
                      std::size_t batches = 1, std::size_t advance = 0) {
  ScheduleParams p;
  p.kind = kind;
  p.num_stages = k;
  p.micro_batches = m;
  p.num_batches = batches;
  p.advance_num = advance;
  return p;
}

// -- validity across the whole (kind, K, M) grid --------------------------------------

struct GridCase {
  Kind kind;
  std::size_t k;
  std::size_t m;
};

class ScheduleGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(ScheduleGridTest, GeneratedScheduleIsValid) {
  const auto& c = GetParam();
  const std::size_t advance =
      c.kind == Kind::kAdvanceForward ? c.k : 0;  // K-1 minimum satisfied
  auto sched = make_schedule(params(c.kind, c.k, c.m, 2, advance));
  auto result = check_schedule(sched, c.m, 2);
  EXPECT_TRUE(result.ok) << to_string(c.kind) << " K=" << c.k << " M=" << c.m
                         << ": " << result.error;
}

std::vector<GridCase> grid_cases() {
  std::vector<GridCase> cases;
  for (Kind kind : {Kind::kAfab, Kind::kOneFOneB, Kind::kAdvanceForward,
                    Kind::kPipeDream, Kind::kPipeDream2BW}) {
    for (std::size_t k : {1u, 2u, 4u, 6u}) {
      for (std::size_t m : {1u, 2u, 4u, 8u, 16u}) {
        cases.push_back({kind, k, m});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ScheduleGridTest, ::testing::ValuesIn(grid_cases()),
    [](const auto& info) {
      std::string name = to_string(info.param.kind) + "_K" +
                         std::to_string(info.param.k) + "_M" +
                         std::to_string(info.param.m);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// -- warmup / stash bounds ---------------------------------------------------------------

TEST(WarmupTest, OneFOneBWarmupIsKMinus1MinusStage) {
  // advance = K-1 (the 1F1B identity).
  EXPECT_EQ(warmup_for_stage(5, 0, 100), 5u);
  EXPECT_EQ(warmup_for_stage(5, 3, 100), 2u);
  EXPECT_EQ(warmup_for_stage(5, 5, 100), 0u);
  EXPECT_EQ(warmup_for_stage(5, 9, 100), 0u);
}

TEST(WarmupTest, ClampsToMicroBatches) {
  EXPECT_EQ(warmup_for_stage(100, 0, 8), 8u);
}

TEST(StashBoundTest, OneFOneBMatchesPaperBound) {
  // Paper §4.1: with K GPUs the k-th GPU (1-indexed) stashes at most
  // K - k + 1 micro-batches under 1F1B.
  const std::size_t k = 4, m = 12;
  auto sched = make_schedule(params(Kind::kOneFOneB, k, m));
  auto result = check_schedule(sched, m, 1);
  ASSERT_TRUE(result.ok);
  for (std::size_t stage = 0; stage < k; ++stage) {
    EXPECT_EQ(result.max_in_flight[stage], k - stage)
        << "stage " << stage;
  }
}

TEST(StashBoundTest, AfabStashesEverything) {
  auto sched = make_schedule(params(Kind::kAfab, 3, 8));
  auto result = check_schedule(sched, 8, 1);
  ASSERT_TRUE(result.ok);
  for (std::size_t stage = 0; stage < 3; ++stage) {
    EXPECT_EQ(result.max_in_flight[stage], 8u);
  }
}

TEST(StashBoundTest, AdvanceForwardInterpolates) {
  // advance = K (one beyond 1F1B): stage 0 stashes one extra micro-batch.
  const std::size_t k = 4, m = 12;
  auto afp = make_schedule(params(Kind::kAdvanceForward, k, m, 1, k));
  auto result = check_schedule(afp, m, 1);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.max_in_flight[0], k + 1);  // one more than 1F1B's K
  EXPECT_EQ(result.max_in_flight[k - 1], 2u);
}

TEST(StashBoundTest, PaperFigure7Example) {
  // K=2, M=4: the paper's walkthrough has AFP stash 3 on GPU 1 (advance=2)
  // vs 2 for 1F1B and 4 for AFAB.
  auto f1b = check_schedule(make_schedule(params(Kind::kOneFOneB, 2, 4)), 4, 1);
  auto afp = check_schedule(
      make_schedule(params(Kind::kAdvanceForward, 2, 4, 1, 2)), 4, 1);
  auto afab = check_schedule(make_schedule(params(Kind::kAfab, 2, 4)), 4, 1);
  EXPECT_EQ(f1b.max_in_flight[0], 2u);
  EXPECT_EQ(afp.max_in_flight[0], 3u);
  EXPECT_EQ(afab.max_in_flight[0], 4u);
}

// -- degeneracies (paper §4.2 "Pros and Cons") ---------------------------------------------

TEST(DegeneracyTest, AdvanceKMinus1EqualsOneFOneB) {
  const std::size_t k = 4, m = 8;
  auto f1b = make_schedule(params(Kind::kOneFOneB, k, m, 2));
  auto afp = make_schedule(params(Kind::kAdvanceForward, k, m, 2, k - 1));
  for (std::size_t stage = 0; stage < k; ++stage) {
    EXPECT_EQ(format_stream(f1b.stages[stage]),
              format_stream(afp.stages[stage]));
  }
}

TEST(DegeneracyTest, LargeAdvanceEqualsAfabOnStage0) {
  const std::size_t k = 3, m = 6;
  auto afab = make_schedule(params(Kind::kAfab, k, m));
  auto afp = make_schedule(params(Kind::kAdvanceForward, k, m, 1, m + k));
  EXPECT_EQ(format_stream(afab.stages[0]), format_stream(afp.stages[0]));
}

TEST(DegeneracyTest, SingleMicroBatchAllFlushedKindsAgree) {
  // Paper §7.2 (AWD): with M = 1 AFAB and 1F1B act the same way.
  const std::size_t k = 4;
  auto afab = make_schedule(params(Kind::kAfab, k, 1));
  auto f1b = make_schedule(params(Kind::kOneFOneB, k, 1));
  for (std::size_t stage = 0; stage < k; ++stage) {
    EXPECT_EQ(format_stream(afab.stages[stage]),
              format_stream(f1b.stages[stage]));
  }
}

// -- golden streams (paper Figure 7, K=2, M=4) ------------------------------------------------

TEST(GoldenTest, AfabStreams) {
  auto sched = make_schedule(params(Kind::kAfab, 2, 4));
  EXPECT_EQ(format_stream(sched.stages[0]), "F0 F1 F2 F3 B0 B1 B2 B3 U");
  EXPECT_EQ(format_stream(sched.stages[1]), "F0 F1 F2 F3 B0 B1 B2 B3 U");
}

TEST(GoldenTest, OneFOneBStreams) {
  auto sched = make_schedule(params(Kind::kOneFOneB, 2, 4));
  EXPECT_EQ(format_stream(sched.stages[0]), "F0 F1 B0 F2 B1 F3 B2 B3 U");
  EXPECT_EQ(format_stream(sched.stages[1]), "F0 B0 F1 B1 F2 B2 F3 B3 U");
}

TEST(GoldenTest, AdvanceForwardStreams) {
  // Figure 7(c): GPU 1 forwards micro-batch 3 in advance.
  auto sched = make_schedule(params(Kind::kAdvanceForward, 2, 4, 1, 2));
  EXPECT_EQ(format_stream(sched.stages[0]), "F0 F1 F2 B0 F3 B1 B2 B3 U");
  EXPECT_EQ(format_stream(sched.stages[1]), "F0 F1 B0 F2 B1 F3 B2 B3 U");
}

TEST(GoldenTest, DataParallelStream) {
  auto sched = make_schedule(params(Kind::kDataParallel, 3, 1, 2));
  EXPECT_EQ(format_stream(sched.stages[0]), "F0 B0 AR U F1.0 B1.0 AR U");
}

// -- weight versions (memory model, paper §2) -------------------------------------------------

TEST(WeightVersionsTest, PipeDreamKeepsStageDependentVersions) {
  // "PipeDream has to maintain four (equal to the number of GPUs) versions"
  // on the first GPU.
  EXPECT_EQ(weight_versions(Kind::kPipeDream, 0, 4), 4u);
  EXPECT_EQ(weight_versions(Kind::kPipeDream, 3, 4), 1u);
}

TEST(WeightVersionsTest, TwoBWKeepsTwoEverywhere) {
  for (std::size_t stage = 0; stage < 4; ++stage) {
    EXPECT_EQ(weight_versions(Kind::kPipeDream2BW, stage, 4), 2u);
  }
}

TEST(WeightVersionsTest, FlushedKindsKeepOne) {
  EXPECT_EQ(weight_versions(Kind::kAfab, 0, 4), 1u);
  EXPECT_EQ(weight_versions(Kind::kOneFOneB, 0, 4), 1u);
  EXPECT_EQ(weight_versions(Kind::kAdvanceForward, 0, 4), 1u);
}

// -- flush-free continuity ---------------------------------------------------------------------

TEST(FlushFreeTest, PipeDreamCrossesBatchBoundaries) {
  // The first stage of a 2-stage PipeDream should forward batch 1's first
  // micro-batch before finishing batch 0's backwards (no flush).
  auto sched = make_schedule(params(Kind::kPipeDream, 2, 2, 2));
  const std::string s = format_stream(sched.stages[0]);
  const auto fwd_b1 = s.find("F1.0");
  const auto last_bwd_b0 = s.rfind("B1");
  ASSERT_NE(fwd_b1, std::string::npos);
  EXPECT_LT(fwd_b1, last_bwd_b0);
}

TEST(FlushFreeTest, PipeDreamUpdatesPerMicroBatch) {
  auto sched = make_schedule(params(Kind::kPipeDream, 2, 4, 1));
  std::size_t updates = 0;
  for (const auto& instr : sched.stages[0].instrs) {
    if (instr.kind == OpKind::kUpdate) ++updates;
  }
  EXPECT_EQ(updates, 4u);
}

TEST(FlushFreeTest, TwoBWUpdatesPerBatch) {
  auto sched = make_schedule(params(Kind::kPipeDream2BW, 2, 4, 2));
  std::size_t updates = 0;
  for (const auto& instr : sched.stages[0].instrs) {
    if (instr.kind == OpKind::kUpdate) ++updates;
  }
  EXPECT_EQ(updates, 2u);
}

TEST(InvalidParamsTest, AdvanceBelow1F1BThrows) {
  EXPECT_THROW(make_schedule(params(Kind::kAdvanceForward, 4, 8, 1, 1)),
               Error);
}

TEST(NamesTest, ToStringCoversAllKinds) {
  EXPECT_EQ(to_string(Kind::kAfab), "AFAB");
  EXPECT_EQ(to_string(Kind::kAdvanceForward), "AFP");
  EXPECT_EQ(to_string(OpKind::kForward), "F");
}

}  // namespace
}  // namespace avgpipe::schedule
