#include <gtest/gtest.h>

#include "core/avgpipe.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "sim/simulator.hpp"
#include "tuning/tuner.hpp"

namespace avgpipe {
namespace {

using data::DataLoader;

/// End-to-end check across both halves of the reproduction: the simulator
/// side (partition -> schedule -> timing/memory) and the real-training side
/// (pipelines + elastic averaging reach a target metric).

TEST(IntegrationTest, SimPipelineEndToEndOnPaperWorkloads) {
  for (const auto& w : workloads::paper_workloads()) {
    auto cluster = workloads::v100_cluster(w.num_gpus);
    auto part = partition::pipedream_partition(w, cluster, w.num_gpus);

    sim::SystemConfig sys;
    sys.kind = schedule::Kind::kAdvanceForward;
    sys.num_pipelines = 2;
    sys.elastic_averaging = true;
    sys.micro_batches = std::max<std::size_t>(1, w.batch_size / 8);
    auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 3);
    job.advance_num = sim::adaptive_advance(job);
    const auto r = sim::simulate(job);

    EXPECT_GT(r.time_per_batch, 0.0) << w.name;
    EXPECT_FALSE(r.oom) << w.name;
    EXPECT_GT(r.mean_utilization, 0.0) << w.name;
    EXPECT_LE(r.peak_utilization, 1.0 + 1e-9) << w.name;
    // Tied output layers own no parameters, so a stage may carry zero
    // static memory; at least one stage must carry weights though.
    Bytes max_static = 0;
    for (const auto& g : r.gpus) {
      EXPECT_GE(g.peak_memory, g.static_memory) << w.name;
      max_static = std::max(max_static, g.static_memory);
    }
    EXPECT_GT(max_static, 0.0) << w.name;
  }
}

TEST(IntegrationTest, TuningPicksRunnableSettingOnPaperWorkloads) {
  for (const auto& w : workloads::paper_workloads()) {
    auto cluster = workloads::v100_cluster(w.num_gpus);
    auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
    sim::SystemConfig sys;
    sys.kind = schedule::Kind::kAdvanceForward;
    sys.micro_batches = 1;
    auto job = sim::build_job(w, cluster, part, sys, w.batch_size, 3);

    auto grid = tuning::default_grid(w.batch_size, 4);
    const auto choice = tuning::profiling_tuner(job, w.batch_size, grid,
                                                cluster.gpu.memory);
    ASSERT_TRUE(choice.feasible) << w.name;
    EXPECT_GE(choice.m, 1u);
    EXPECT_GE(choice.n, 1u);
    EXPECT_GT(choice.time_per_sample, 0.0);
  }
}

TEST(IntegrationTest, AvgPipeSystemTrainsLstmClassifier) {
  // Full stack on a recurrent model: embedding + LSTM partitioned across
  // two stages, two elastic pipelines, AFP schedule.
  data::SyntheticSeqClassification ds(96, 16, 6, 2, 5, /*signal=*/0.95);
  DataLoader loader(ds, 12, 3);

  core::AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 3;
  config.boundaries = {2};  // embed+lstm | classifier head
  config.kind = schedule::Kind::kAdvanceForward;
  core::AvgPipe system(
      [](std::uint64_t seed) {
        return nn::make_gnmt_like(16, 8, 12, 1, 2, seed);
      },
      [](std::vector<tensor::Variable> params) {
        return std::make_unique<optim::Adam>(std::move(params), 0.01);
      },
      config);

  for (std::size_t epoch = 0; epoch < 12; ++epoch) {
    for (std::size_t i = 0; i + 1 < loader.batches_per_epoch(); i += 2) {
      system.train_iteration(
          {loader.batch(epoch, i), loader.batch(epoch, i + 1)});
    }
  }
  EXPECT_GT(runtime::evaluate_accuracy(system.eval_model(), loader, 0, 4),
            0.85);
}

TEST(IntegrationTest, StatisticalEfficiencyOrderingOnTinyTask) {
  // Miniature Figure 14: sync and AvgPipe reach the target in a similar
  // number of epochs; heavily stale PipeDream-style training needs at least
  // as many.
  data::SyntheticFeatures ds(192, 6, 2, 13, /*noise=*/0.35);
  const std::size_t batch = 16;
  const double target = 0.9;
  const std::size_t max_epochs = 30;

  auto run_epochs = [&](runtime::TrainerBase& trainer) -> std::size_t {
    DataLoader loader(ds, batch, 17);
    for (std::size_t epoch = 0; epoch < max_epochs; ++epoch) {
      const std::size_t per_iter = trainer.batches_per_iteration();
      std::size_t i = 0;
      while (i + per_iter <= loader.batches_per_epoch()) {
        std::vector<data::Batch> batches;
        for (std::size_t p = 0; p < per_iter; ++p) {
          batches.push_back(loader.batch(epoch, i++));
        }
        trainer.train_iteration(batches);
      }
      if (runtime::evaluate_accuracy(trainer.eval_model(), loader, 0, 6) >=
          target) {
        return epoch + 1;
      }
    }
    return max_epochs + 1;
  };

  auto factory = [](std::uint64_t seed) {
    return nn::make_mlp(6, 10, 2, 2, seed);
  };
  auto sgd = [](std::vector<tensor::Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), 0.15);
  };

  nn::Sequential sync_model = factory(1234);
  runtime::SyncTrainer sync(sync_model, sgd(sync_model.parameters()));
  const std::size_t sync_epochs = run_epochs(sync);

  core::AvgPipeTrainer avg(factory, sgd, 2);
  const std::size_t avg_epochs = run_epochs(avg);

  nn::Sequential stale_model = factory(1234);
  runtime::StalenessTrainer stale(stale_model, sgd(stale_model.parameters()),
                                  /*delay=*/5, /*micro_batches=*/8,
                                  /*per_micro=*/true, "PipeDream");
  const std::size_t stale_epochs = run_epochs(stale);

  EXPECT_LE(sync_epochs, max_epochs);
  EXPECT_LE(avg_epochs, max_epochs);
  // AvgPipe must stay in the same league as sync (the paper's headline
  // statistical-efficiency claim) ...
  EXPECT_LE(avg_epochs, sync_epochs * 2 + 2);
  // ... and per-micro-batch stale training must not be *better* than sync.
  EXPECT_GE(stale_epochs + 1, sync_epochs);
}

}  // namespace
}  // namespace avgpipe
