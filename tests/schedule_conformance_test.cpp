#include <gtest/gtest.h>

#include <sstream>

#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "runtime/pipeline_runtime.hpp"
#include "sim/simulator.hpp"
#include "trace/analysis.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"

/// Schedule-conformance suite: both executors claim to honour each stage's
/// instruction stream verbatim (the property that makes 1F1B's stalls and
/// AFP's overlap *emergent*). Here we replay their execution traces and hold
/// them against schedule::make_schedule — order, in-flight bounds and the
/// AFP-overlaps-communication acceptance claim.

namespace avgpipe {
namespace {

using schedule::Instr;
using schedule::OpKind;

std::string print_ops(const std::vector<Instr>& ops) {
  schedule::StageStream s;
  s.instrs = ops;
  return schedule::format_stream(s);
}

/// The compute instructions (F/B/U) of one stage's generated stream.
std::vector<Instr> expected_ops(const schedule::ScheduleParams& params,
                                std::size_t stage) {
  const schedule::PipelineSchedule sched = schedule::make_schedule(params);
  std::vector<Instr> ops;
  for (const auto& instr : sched.stages[stage].instrs) {
    if (instr.kind != OpKind::kAllReduce) ops.push_back(instr);
  }
  return ops;
}

/// Walk a replayed stream and return the max number of stashed micro-batches
/// observed at any forward's begin (forwards already executed minus
/// backwards already executed) — the trace-side activation-stash bound.
std::size_t max_stash_at_forward(const std::vector<Instr>& ops) {
  std::size_t forwards = 0, backwards = 0, peak = 0;
  for (const auto& op : ops) {
    switch (op.kind) {
      case OpKind::kForward:
        peak = std::max(peak, forwards - backwards);
        ++forwards;
        break;
      case OpKind::kBackward: ++backwards; break;
      default: break;
    }
  }
  return peak;
}

// -- simulator conformance --------------------------------------------------------

struct SimCase {
  const char* name;
  schedule::Kind kind;
  std::size_t advance;  ///< AFP only
};

trace::TraceAnalysis run_sim_traced(const workloads::WorkloadProfile& w,
                                    schedule::Kind kind, std::size_t m,
                                    std::size_t advance,
                                    std::size_t num_batches,
                                    std::size_t pipelines = 1) {
  const auto cluster = workloads::v100_cluster(w.num_gpus);
  const auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
  sim::SystemConfig sys;
  sys.kind = kind;
  sys.micro_batches = m;
  sys.num_pipelines = pipelines;
  sys.elastic_averaging = pipelines > 1;
  sys.advance_num = advance;
  auto job = sim::build_job(w, cluster, part, sys, w.batch_size, num_batches);
  job.memory_limit = 1e18;
  trace::Tracer tracer;
  job.tracer = &tracer;
  sim::simulate(job);
  return trace::TraceAnalysis(tracer.collect());
}

class SimConformanceTest : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimConformanceTest, TraceReplaysScheduleVerbatim) {
  const auto& c = GetParam();
  const auto w = workloads::awd_profile();  // K = 4
  const std::size_t m = 8, batches = 2;
  const auto analysis = run_sim_traced(w, c.kind, m, c.advance, batches);
  ASSERT_EQ(analysis.num_stages(), w.num_gpus);

  schedule::ScheduleParams params;
  params.kind = c.kind;
  params.num_stages = w.num_gpus;
  params.micro_batches = m;
  params.num_batches = batches;
  params.advance_num = c.advance;
  for (std::size_t k = 0; k < w.num_gpus; ++k) {
    const auto replayed = analysis.stage_ops(0, k);
    const auto expected = expected_ops(params, k);
    EXPECT_EQ(replayed, expected)
        << "stage " << k << "\n  replayed: " << print_ops(replayed)
        << "\n  expected: " << print_ops(expected);
  }
}

TEST_P(SimConformanceTest, BothPipelinesReplayTheSchedule) {
  const auto& c = GetParam();
  const auto w = workloads::toy_two_stage_profile();
  const std::size_t m = 4, batches = 2;
  const auto analysis =
      run_sim_traced(w, c.kind, m, c.advance, batches, /*pipelines=*/2);
  ASSERT_EQ(analysis.num_pipelines(), 2u);

  schedule::ScheduleParams params;
  params.kind = c.kind;
  params.num_stages = w.num_gpus;
  params.micro_batches = m;
  params.num_batches = batches;
  params.advance_num = c.advance;
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t k = 0; k < w.num_gpus; ++k) {
      EXPECT_EQ(analysis.stage_ops(p, k), expected_ops(params, k))
          << "pipeline " << p << " stage " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SimConformanceTest,
    ::testing::Values(SimCase{"AFAB", schedule::Kind::kAfab, 0},
                      SimCase{"OneFOneB", schedule::Kind::kOneFOneB, 0},
                      SimCase{"AFP", schedule::Kind::kAdvanceForward, 5}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(SimConformanceTest, OneFOneBNeverExceedsKMinus1InFlight) {
  // 1F1B's contract (paper §2): at most K-1 = advance_num forwards are
  // stashed when any forward starts, on every stage.
  const auto w = workloads::awd_profile();
  const std::size_t k_stages = w.num_gpus;
  const auto analysis =
      run_sim_traced(w, schedule::Kind::kOneFOneB, 8, 0, 2);
  for (std::size_t k = 0; k < k_stages; ++k) {
    const auto ops = analysis.stage_ops(0, k);
    ASSERT_FALSE(ops.empty());
    EXPECT_LE(max_stash_at_forward(ops), k_stages - 1) << "stage " << k;
  }
}

TEST(SimConformanceTest, AfpInFlightBoundedByAdvanceNum) {
  const auto w = workloads::awd_profile();
  for (std::size_t advance : {3u, 5u, 8u}) {
    const auto analysis = run_sim_traced(
        w, schedule::Kind::kAdvanceForward, 8, advance, 2);
    for (std::size_t k = 0; k < w.num_gpus; ++k) {
      const auto ops = analysis.stage_ops(0, k);
      ASSERT_FALSE(ops.empty());
      EXPECT_LE(max_stash_at_forward(ops), advance)
          << "advance " << advance << " stage " << k;
      // The stage-0 warmup must actually use the advance budget, or AFP
      // degenerates to 1F1B silently.
      if (k == 0) {
        EXPECT_EQ(max_stash_at_forward(ops), std::min<std::size_t>(advance, 7))
            << "advance " << advance;
      }
    }
  }
}

TEST(SimConformanceTest, AfabBackwardOnlyAfterAllForwards) {
  const auto w = workloads::awd_profile();
  const std::size_t m = 8, batches = 2;
  const auto analysis = run_sim_traced(w, schedule::Kind::kAfab, m, 0, batches);
  for (std::size_t k = 0; k < w.num_gpus; ++k) {
    std::vector<std::size_t> forwards_seen(batches, 0);
    for (const auto& op : analysis.stage_ops(0, k)) {
      const auto b = static_cast<std::size_t>(op.batch);
      if (op.kind == OpKind::kForward) ++forwards_seen[b];
      if (op.kind == OpKind::kBackward) {
        EXPECT_EQ(forwards_seen[b], m)
            << "stage " << k << " batch " << b
            << ": backward before all forwards";
      }
    }
  }
}

// -- threaded-runtime conformance -------------------------------------------------

runtime::OptimizerFactory sgd_factory(double lr) {
  return [lr](std::vector<tensor::Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), lr);
  };
}

class RuntimeConformanceTest
    : public ::testing::TestWithParam<schedule::Kind> {};

TEST_P(RuntimeConformanceTest, TraceReplaysScheduleVerbatim) {
  const schedule::Kind kind = GetParam();
  const std::size_t micro = 4, num_batches = 2;
  const std::size_t advance =
      kind == schedule::Kind::kAdvanceForward ? 3 : 0;
  data::SyntheticFeatures ds(24, 6, 3, 21);
  data::DataLoader loader(ds, 12, 5);

  trace::Tracer tracer;
  nn::Sequential model = nn::make_mlp(6, 8, 3, 3, /*seed=*/77);
  runtime::PipelineRuntime rt(model, {2, 4}, sgd_factory(0.1),
                              runtime::cross_entropy_loss(), kind, advance);
  rt.set_tracer(&tracer);
  for (std::size_t b = 0; b < num_batches; ++b) {
    rt.train_batch(loader.batch(0, b), micro);
  }
  const trace::TraceAnalysis analysis(tracer.collect());

  // The runtime regenerates the schedule per batch with num_batches = 1, so
  // the expected replay is the one-batch stream repeated.
  schedule::ScheduleParams params;
  params.kind = kind;
  params.num_stages = rt.num_stages();
  params.micro_batches = micro;
  params.num_batches = 1;
  params.advance_num = advance == 0 ? rt.num_stages() - 1 : advance;
  for (std::size_t k = 0; k < rt.num_stages(); ++k) {
    const auto one_batch = expected_ops(params, k);
    std::vector<Instr> expected;
    for (std::size_t b = 0; b < num_batches; ++b) {
      expected.insert(expected.end(), one_batch.begin(), one_batch.end());
    }
    const auto replayed = analysis.stage_ops(0, k);
    EXPECT_EQ(replayed, expected)
        << "stage " << k << "\n  replayed: " << print_ops(replayed)
        << "\n  expected: " << print_ops(expected);
  }
}

TEST_P(RuntimeConformanceTest, InFlightBoundsHold) {
  const schedule::Kind kind = GetParam();
  const std::size_t micro = 6;
  const std::size_t advance =
      kind == schedule::Kind::kAdvanceForward ? 4 : 0;
  data::SyntheticFeatures ds(24, 6, 3, 21);
  data::DataLoader loader(ds, 12, 5);

  trace::Tracer tracer;
  nn::Sequential model = nn::make_mlp(6, 8, 3, 3, 77);
  runtime::PipelineRuntime rt(model, {2, 4}, sgd_factory(0.1),
                              runtime::cross_entropy_loss(), kind, advance);
  rt.set_tracer(&tracer);
  rt.train_batch(loader.batch(0, 0), micro);
  const trace::TraceAnalysis analysis(tracer.collect());

  const std::size_t k_stages = rt.num_stages();
  for (std::size_t k = 0; k < k_stages; ++k) {
    const auto ops = analysis.stage_ops(0, k);
    ASSERT_FALSE(ops.empty());
    const std::size_t stash = max_stash_at_forward(ops);
    switch (kind) {
      case schedule::Kind::kAfab:
        EXPECT_LE(stash, micro);
        break;
      case schedule::Kind::kOneFOneB:
        EXPECT_LE(stash, k_stages - 1) << "stage " << k;
        break;
      default:
        EXPECT_LE(stash, advance) << "stage " << k;
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, RuntimeConformanceTest,
                         ::testing::Values(schedule::Kind::kAfab,
                                           schedule::Kind::kOneFOneB,
                                           schedule::Kind::kAdvanceForward),
                         [](const auto& info) {
                           std::string n = schedule::to_string(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// -- acceptance: AFP overlaps communication where 1F1B stalls ---------------------

TEST(OverlapAcceptanceTest, AfpOverlapsStrictlyMoreCommThan1F1B) {
  // The PR's acceptance claim, on a 4-stage / 8-micro-batch job: the AFP run
  // must overlap a strictly larger fraction of its communication with
  // compute than the 1F1B run of the same job (paper §4: advance forwards
  // fill the stalls 1F1B spends waiting for gradients).
  const auto w = workloads::awd_profile();
  ASSERT_EQ(w.num_gpus, 4u);
  const std::size_t m = 8;
  const auto f1b = run_sim_traced(w, schedule::Kind::kOneFOneB, m, 0, 2);
  const auto afp =
      run_sim_traced(w, schedule::Kind::kAdvanceForward, m, m, 2);

  const double f1b_overlap = f1b.comm_overlap_fraction();
  const double afp_overlap = afp.comm_overlap_fraction();
  EXPECT_GT(f1b.comm_time(1), 0.0);
  EXPECT_GT(afp_overlap, f1b_overlap)
      << "AFP overlap " << afp_overlap << " vs 1F1B " << f1b_overlap;
}

TEST(OverlapAcceptanceTest, AcceptanceTraceSurvivesChromeRoundTrip) {
  // The same 4-stage/8-micro-batch AFP trace must export to Chrome JSON and
  // parse back to the identical span list (what a human loads in Perfetto is
  // what the analysis saw).
  const auto w = workloads::awd_profile();
  const auto afp =
      run_sim_traced(w, schedule::Kind::kAdvanceForward, 8, 8, 2);
  ASSERT_FALSE(afp.events().empty());

  std::ostringstream os;
  trace::write_chrome_trace(os, afp.events());
  std::istringstream is(os.str());
  const auto parsed = trace::parse_chrome_trace(is);
  ASSERT_EQ(parsed.size(), afp.events().size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    ASSERT_EQ(parsed[i], afp.events()[i]) << "event " << i;
  }
}

}  // namespace
}  // namespace avgpipe
