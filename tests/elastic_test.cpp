#include "core/avgpipe.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/env.hpp"
#include "data/synthetic.hpp"
#include "nn/models.hpp"
#include "trace/analysis.hpp"

namespace avgpipe::core {
namespace {

using data::Batch;
using data::DataLoader;
using data::SyntheticFeatures;
using tensor::Tensor;
using tensor::Variable;

runtime::OptimizerFactory sgd_factory(double lr) {
  return [lr](std::vector<Variable> params) {
    return std::make_unique<optim::Sgd>(std::move(params), lr);
  };
}

nn::ModelFactory mlp_factory(std::size_t in, std::size_t hidden,
                             std::size_t depth, std::size_t classes) {
  return [=](std::uint64_t seed) {
    return nn::make_mlp(in, hidden, depth, classes, seed);
  };
}

// -- primitives -----------------------------------------------------------------------

TEST(ElasticMathTest, DefaultAlphaIsOneOverN) {
  EXPECT_DOUBLE_EQ(default_alpha(2), 0.5);
  EXPECT_DOUBLE_EQ(default_alpha(4), 0.25);
  // A single pipeline needs no elastic pull.
  EXPECT_DOUBLE_EQ(default_alpha(1), 0.0);
}

TEST(ElasticMathTest, PullMovesTowardReference) {
  Variable p(Tensor::from({0.0, 8.0}), true);
  std::vector<Variable> params{p};
  ParamSet ref{Tensor::from({4.0, 4.0})};
  elastic_pull(params, ref, 0.5);
  EXPECT_DOUBLE_EQ(p.value()[0], 2.0);
  EXPECT_DOUBLE_EQ(p.value()[1], 6.0);
}

TEST(ElasticMathTest, PullWithZeroAlphaIsIdentity) {
  Variable p(Tensor::from({3.0}), true);
  std::vector<Variable> params{p};
  ParamSet ref{Tensor::from({100.0})};
  elastic_pull(params, ref, 0.0);
  EXPECT_DOUBLE_EQ(p.value()[0], 3.0);
}

TEST(ElasticMathTest, DifferenceAndAddScaledRoundTrip) {
  Variable p(Tensor::from({5.0, 7.0}), true);
  ParamSet ref{Tensor::from({1.0, 2.0})};
  ParamSet diff = difference({p}, ref);
  EXPECT_DOUBLE_EQ(diff[0][0], 4.0);
  add_scaled(ref, diff, 1.0);
  EXPECT_DOUBLE_EQ(ref[0][0], 5.0);
  EXPECT_DOUBLE_EQ(ref[0][1], 7.0);
}

TEST(ReferenceModelTest, StaysAtMeanOfParallelModels) {
  // The paper's invariant: after steps ❷-❺, ref == mean of parallel models.
  Rng rng(5);
  const std::size_t n = 3;
  ParamSet init{Tensor::randn({6}, rng)};
  ReferenceModel ref(init);

  std::vector<std::vector<Variable>> replicas;
  for (std::size_t i = 0; i < n; ++i) {
    replicas.push_back({Variable(init[0].clone(), true)});
  }

  const double alpha = default_alpha(n);
  for (int iter = 0; iter < 5; ++iter) {
    // Simulate divergent local updates.
    for (std::size_t i = 0; i < n; ++i) {
      Tensor noise = Tensor::randn({6}, rng, 0.1 * (1.0 + double(i)));
      replicas[i][0].value().axpy_(1.0, noise);
    }
    const ParamSet snapshot = ref.snapshot();
    for (std::size_t i = 0; i < n; ++i) {
      elastic_pull(replicas[i], snapshot, alpha);
      ref.accumulate(difference(replicas[i], snapshot));
    }
    ref.apply_accumulated(n);

    // ref must equal the mean of the replicas.
    Tensor mean({6});
    for (std::size_t i = 0; i < n; ++i) {
      mean.axpy_(1.0 / static_cast<double>(n), replicas[i][0].value());
    }
    EXPECT_LT(mean.max_abs_diff(ref.params()[0]), 1e-12) << "iter " << iter;
  }
}

TEST(ReferenceModelTest, PendingCountsAndReset) {
  ReferenceModel ref({Tensor::from({0.0})});
  ref.accumulate({Tensor::from({2.0})});
  ref.accumulate({Tensor::from({4.0})});
  EXPECT_EQ(ref.pending(), 2u);
  EXPECT_EQ(ref.apply_accumulated(2), 2u);
  EXPECT_EQ(ref.pending(), 0u);
  EXPECT_DOUBLE_EQ(ref.params()[0][0], 3.0);
}

TEST(ReferenceModelTest, BatchedRoundApplyMatchesSequentialBitExact) {
  // The fused batch sweep replays the exact FP ops of the sequential
  // accumulate…apply loop (`acc += 1*u; p += (1/n)*acc` per round, oldest
  // first), so the trajectories must be bit-identical — not just close.
  Rng rng(21);
  auto deep_clone = [](const ParamSet& s) {
    ParamSet c;
    for (const auto& t : s) c.push_back(t.clone());
    return c;
  };
  const ParamSet init{Tensor::randn({8}, rng), Tensor::randn({3}, rng)};
  ReferenceModel seq(deep_clone(init));
  ReferenceModel batched(deep_clone(init));

  std::vector<std::vector<ParamSet>> rounds;
  for (const std::size_t round_size : {2u, 3u, 1u}) {
    std::vector<ParamSet> round;
    for (std::size_t u = 0; u < round_size; ++u) {
      round.push_back({Tensor::randn({8}, rng), Tensor::randn({3}, rng)});
    }
    rounds.push_back(std::move(round));
  }

  for (const auto& round : rounds) {
    for (const auto& update : round) seq.accumulate(update);
    seq.apply_accumulated(round.size());
  }
  batched.apply_round_batch(rounds);

  EXPECT_EQ(max_abs_diff(seq.params(), batched.params()), 0.0);
  EXPECT_EQ(batched.pending(), 0u);
}

TEST(SyncPolicyBatching, ApplyRoundsMatchesSequentialLoopForEveryPolicy) {
  // `apply_rounds` (the reference process's drained-queue path) must fold a
  // batch exactly like per-round `apply_round` calls — bit-exact for the
  // elastic policies (fused sweep) and by construction for the default.
  Rng rng(42);
  auto deep_clone = [](const ParamSet& s) {
    ParamSet c;
    for (const auto& t : s) c.push_back(t.clone());
    return c;
  };
  const ParamSet init{Tensor::randn({6}, rng), Tensor::randn({2}, rng)};
  std::vector<std::vector<ParamSet>> rounds;
  for (const std::size_t round_size : {3u, 1u, 2u}) {
    std::vector<ParamSet> round;
    for (std::size_t u = 0; u < round_size; ++u) {
      round.push_back({Tensor::randn({6}, rng), Tensor::randn({2}, rng)});
    }
    rounds.push_back(std::move(round));
  }
  // The test body is single-threaded and owns both reference models — it is
  // the reference process for the policies it drives directly.
  common::RoleGuard ref_role(reference_capability());
  for (const SyncPolicyKind kind : all_sync_policies()) {
    auto loop_policy = make_sync_policy(degenerate_config(kind));
    auto batch_policy = make_sync_policy(degenerate_config(kind));
    ReferenceModel loop_ref(deep_clone(init));
    ReferenceModel batch_ref(deep_clone(init));
    for (const auto& round : rounds) {
      loop_policy->apply_round(loop_ref, round);
    }
    batch_policy->apply_rounds(batch_ref, rounds);
    EXPECT_EQ(max_abs_diff(loop_ref.params(), batch_ref.params()), 0.0)
        << to_string(kind);
  }
}

// -- AvgPipeTrainer (semantics) ----------------------------------------------------------

TEST(AvgPipeTrainerTest, SinglePipelineMatchesSync) {
  // With N=1, alpha=1: pull makes x == ref trivially and the update keeps
  // ref == x, so training degenerates to plain SGD.
  SyntheticFeatures ds(32, 4, 2, 3);
  DataLoader loader(ds, 8, 1);

  nn::Sequential sync_model = nn::make_mlp(4, 6, 2, 2, 7);
  auto opt = std::make_unique<optim::Sgd>(sync_model.parameters(), 0.1);
  runtime::SyncTrainer sync(sync_model, std::move(opt));

  AvgPipeTrainer avg(mlp_factory(4, 6, 2, 2), sgd_factory(0.1), 1);
  // This test asserts the exact uncompressed invariant (ref == replica to
  // 1e-12); pin compression off so a CI-forced AVGPIPE_SYNC_COMPRESS doesn't
  // quantize the pushed update.
  avg.set_sync_compression(SyncCompression{});

  for (int i = 0; i < 3; ++i) {
    const Batch b = loader.batch(0, static_cast<std::size_t>(i));
    sync.train_batch(b);
    avg.train_iteration({b});
  }
  // Same trajectory? Initial weights differ (seed 7 vs 1234), so compare
  // behaviourally: both must have a consistent reference==weights invariant.
  auto replica = avg.replica(0).parameters();
  const auto& ref = avg.reference().params();
  for (std::size_t i = 0; i < replica.size(); ++i) {
    EXPECT_LT(replica[i].value().max_abs_diff(ref[i]), 1e-12);
  }
}

TEST(AvgPipeTrainerTest, ReferenceIsMeanAfterEveryIteration) {
  SyntheticFeatures ds(64, 4, 2, 3);
  DataLoader loader(ds, 8, 1);
  AvgPipeTrainer avg(mlp_factory(4, 8, 2, 2), sgd_factory(0.1), 3);
  // The exact-mean invariant only holds for lossless pushes; pin off so the
  // test is immune to an env-forced codec.
  avg.set_sync_compression(SyncCompression{});

  for (std::size_t iter = 0; iter < 3; ++iter) {
    std::vector<Batch> batches;
    for (std::size_t p = 0; p < 3; ++p) {
      batches.push_back(loader.batch(iter, 3 * 0 + p));
    }
    avg.train_iteration(batches);

    const auto& ref = avg.reference().params();
    for (std::size_t t = 0; t < ref.size(); ++t) {
      Tensor mean(ref[t].shape());
      for (std::size_t p = 0; p < 3; ++p) {
        mean.axpy_(1.0 / 3.0, avg.replica(p).parameters()[t].value());
      }
      EXPECT_LT(mean.max_abs_diff(ref[t]), 1e-10);
    }
  }
}

TEST(AvgPipeTrainerTest, ReplicasStayClose) {
  // The elastic pull must prevent divergence (paper §3.1, Figure 5).
  SyntheticFeatures ds(64, 4, 2, 3);
  DataLoader loader(ds, 8, 1);
  AvgPipeTrainer avg(mlp_factory(4, 8, 2, 2), sgd_factory(0.1), 2);
  for (std::size_t iter = 0; iter < 10; ++iter) {
    avg.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
  }
  auto p0 = avg.replica(0).parameters();
  auto p1 = avg.replica(1).parameters();
  double diff = 0, scale = 0;
  for (std::size_t i = 0; i < p0.size(); ++i) {
    diff = std::max(diff, p0[i].value().max_abs_diff(p1[i].value()));
    scale = std::max(scale, p0[i].value().abs_max());
  }
  EXPECT_LT(diff, scale);  // same order of magnitude, not divergent
}

TEST(AvgPipeTrainerTest, ConvergesOnSeparableData) {
  SyntheticFeatures ds(128, 6, 2, 3, /*noise=*/0.15);
  DataLoader loader(ds, 16, 7);
  AvgPipeTrainer avg(mlp_factory(6, 12, 2, 2), sgd_factory(0.3), 2);
  for (std::size_t epoch = 0; epoch < 10; ++epoch) {
    for (std::size_t i = 0; i + 1 < loader.batches_per_epoch(); i += 2) {
      avg.train_iteration({loader.batch(epoch, i), loader.batch(epoch, i + 1)});
    }
  }
  EXPECT_GT(runtime::evaluate_accuracy(avg.eval_model(), loader, 0, 4), 0.9);
}

TEST(AvgPipeTrainerTest, WrongBatchCountThrows) {
  AvgPipeTrainer avg(mlp_factory(4, 6, 1, 2), sgd_factory(0.1), 2);
  Batch b{Tensor({4, 4}), {0, 1, 0, 1}};
  EXPECT_THROW(avg.train_iteration({b}), Error);
}

TEST(AvgPipeTrainerTest, WorksWithAdam) {
  // §3.1: the framework must be optimizer-agnostic.
  SyntheticFeatures ds(64, 4, 2, 3, 0.15);
  DataLoader loader(ds, 8, 1);
  AvgPipeTrainer avg(
      mlp_factory(4, 8, 2, 2),
      [](std::vector<Variable> params) {
        return std::make_unique<optim::Adam>(std::move(params), 0.01);
      },
      2, 0.0, "AvgPipe-Adam");
  for (std::size_t iter = 0; iter < 20; ++iter) {
    avg.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
  }
  EXPECT_GT(runtime::evaluate_accuracy(avg.eval_model(), loader, 0, 4), 0.8);
}

// -- AvgPipe (full threaded system) -----------------------------------------------------

TEST(AvgPipeSystemTest, MatchesSemanticTrainerTrajectory) {
  // The threaded system (N pipeline runtimes + async reference process) must
  // produce the same parameters as the single-threaded semantic trainer.
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);

  AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 3;
  config.boundaries = {2};
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), config);
  AvgPipeTrainer semantic(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), 2);

  for (std::size_t iter = 0; iter < 3; ++iter) {
    std::vector<Batch> batches{loader.batch(iter, 0), loader.batch(iter, 1)};
    system.train_iteration(batches);
    semantic.train_iteration(batches);
  }
  const ParamSet sys_ref = system.reference_snapshot();
  const auto& sem_ref = semantic.reference().params();
  ASSERT_EQ(sys_ref.size(), sem_ref.size());
  for (std::size_t i = 0; i < sys_ref.size(); ++i) {
    EXPECT_LT(sys_ref[i].max_abs_diff(sem_ref[i]), 1e-9) << "tensor " << i;
  }
}

TEST(AvgPipeSystemTest, TrainsToHighAccuracy) {
  SyntheticFeatures ds(128, 6, 2, 5, /*noise=*/0.15);
  DataLoader loader(ds, 16, 3);

  AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 4;
  config.boundaries = {3};
  config.kind = schedule::Kind::kAdvanceForward;
  AvgPipe system(mlp_factory(6, 12, 2, 2), sgd_factory(0.3), config);

  for (std::size_t epoch = 0; epoch < 10; ++epoch) {
    for (std::size_t i = 0; i + 1 < loader.batches_per_epoch(); i += 2) {
      system.train_iteration(
          {loader.batch(epoch, i), loader.batch(epoch, i + 1)});
    }
  }
  EXPECT_GT(runtime::evaluate_accuracy(system.eval_model(), loader, 0, 4),
            0.9);
}

TEST(AvgPipeSystemTest, AlphaDefaultsToOneOverN) {
  AvgPipeConfig config;
  config.num_pipelines = 4;
  config.boundaries = {};
  AvgPipe system(mlp_factory(4, 6, 1, 2), sgd_factory(0.1), config);
  EXPECT_DOUBLE_EQ(system.alpha(), 0.25);
}

// -- async elastic sync -----------------------------------------------------------------

TEST(AvgPipeAsyncTest, LagZeroMatchesSyncBitExact) {
  // sync_lag = 0 means the driver waits for every reference apply before the
  // next iteration — the async machinery (worker-thread pulls, round-batched
  // apply queue) must then reproduce the synchronous trajectory exactly.
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);

  AvgPipeConfig sync_cfg;
  sync_cfg.num_pipelines = 2;
  sync_cfg.micro_batches = 3;
  sync_cfg.boundaries = {2};
  AvgPipeConfig async_cfg = sync_cfg;
  async_cfg.async_sync = true;
  async_cfg.sync_lag = 0;

  AvgPipe sync_sys(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), sync_cfg);
  AvgPipe async_sys(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), async_cfg);

  for (std::size_t iter = 0; iter < 4; ++iter) {
    std::vector<Batch> batches{loader.batch(iter, 0), loader.batch(iter, 1)};
    const double sync_loss = sync_sys.train_iteration(batches);
    const double async_loss = async_sys.train_iteration(batches);
    EXPECT_DOUBLE_EQ(sync_loss, async_loss) << "iter " << iter;
  }
  const ParamSet a = sync_sys.reference_snapshot();
  const ParamSet b = async_sys.reference_snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(a[i].max_abs_diff(b[i]), 1e-12) << "tensor " << i;
  }
}

TEST(AvgPipeAsyncTest, LagOneStaysOnSyncTrajectory) {
  // With sync_lag = 1 the replicas may pull a one-round-stale reference; the
  // trajectories are no longer bit-identical but must stay within EASGD's
  // staleness tolerance and converge to the same quality.
  SyntheticFeatures ds(128, 6, 2, 5, /*noise=*/0.15);
  DataLoader loader(ds, 16, 3);

  AvgPipeConfig sync_cfg;
  sync_cfg.num_pipelines = 2;
  sync_cfg.micro_batches = 4;
  sync_cfg.boundaries = {3};
  sync_cfg.kind = schedule::Kind::kAdvanceForward;
  AvgPipeConfig async_cfg = sync_cfg;
  async_cfg.async_sync = true;
  async_cfg.sync_lag = 1;

  AvgPipe sync_sys(mlp_factory(6, 12, 2, 2), sgd_factory(0.3), sync_cfg);
  AvgPipe async_sys(mlp_factory(6, 12, 2, 2), sgd_factory(0.3), async_cfg);

  double sync_loss = 0, async_loss = 0;
  for (std::size_t epoch = 0; epoch < 10; ++epoch) {
    for (std::size_t i = 0; i + 1 < loader.batches_per_epoch(); i += 2) {
      std::vector<Batch> batches{loader.batch(epoch, i),
                                 loader.batch(epoch, i + 1)};
      sync_loss = sync_sys.train_iteration(batches);
      async_loss = async_sys.train_iteration(batches);
    }
  }
  EXPECT_TRUE(std::isfinite(async_loss));
  EXPECT_NEAR(sync_loss, async_loss, 0.02);
  // eval_model() must synchronize (drain outstanding applies) first, so the
  // evaluated model reflects every dispatched round.
  EXPECT_GT(runtime::evaluate_accuracy(async_sys.eval_model(), loader, 0, 4),
            0.9);
}

TEST(AvgPipeAsyncTest, TracesSyncLagCounterAndOffCriticalPathPulls) {
  SyntheticFeatures ds(64, 4, 2, 3);
  DataLoader loader(ds, 8, 1);

  trace::Tracer tracer;
  AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 2;
  config.boundaries = {2};
  config.async_sync = true;
  config.sync_lag = 2;
  config.tracer = &tracer;
  AvgPipe system(mlp_factory(4, 8, 2, 2), sgd_factory(0.1), config);

  const std::size_t iters = 5;
  for (std::size_t iter = 0; iter < iters; ++iter) {
    system.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
  }
  system.synchronize();  // idempotent: a second call must be a no-op
  system.synchronize();

  std::size_t lag_samples = 0, pulls = 0, applies = 0;
  for (const auto& ev : tracer.collect()) {
    if (ev.kind == trace::EventKind::kCounter &&
        ev.counter == trace::CounterId::kSyncLag) {
      ++lag_samples;
      EXPECT_LE(ev.value, static_cast<double>(config.sync_lag));
      EXPECT_GE(ev.value, 0.0);
    }
    if (ev.kind == trace::EventKind::kElasticPull) ++pulls;
    if (ev.kind == trace::EventKind::kReferenceApply) ++applies;
  }
  // One lag sample per iteration; one pull per alive replica per iteration
  // (recorded by the replica worker threads, not the driver); one reference
  // apply per dispatched round.
  EXPECT_EQ(lag_samples, iters);
  EXPECT_EQ(pulls, 2 * iters);
  EXPECT_EQ(applies, iters);
}

// -- elastic membership (fault tolerance) -----------------------------------------------

TEST(AvgPipeElasticTest, DetachRebalancesAlphaAndTrainingConverges) {
  // Drop one of three pipelines mid-training: α must rebalance to 1/(N-1)
  // and the survivors must still converge (the graceful-degradation claim).
  SyntheticFeatures ds(128, 6, 2, 5, /*noise=*/0.15);
  DataLoader loader(ds, 16, 3);

  AvgPipeConfig config;
  config.num_pipelines = 3;
  config.micro_batches = 2;
  config.boundaries = {2};
  AvgPipe system(mlp_factory(6, 12, 2, 2), sgd_factory(0.3), config);
  EXPECT_DOUBLE_EQ(system.alpha(), 1.0 / 3.0);

  auto batches_at = [&](std::size_t epoch, std::size_t i) {
    return std::vector<Batch>{loader.batch(epoch, i),
                              loader.batch(epoch, i + 1),
                              loader.batch(epoch, i + 2)};
  };
  system.train_iteration(batches_at(0, 0));

  system.detach_pipeline(2, "operator-killed for the test");
  EXPECT_EQ(system.alive_pipelines(), 2u);
  EXPECT_FALSE(system.pipeline_alive(2));
  EXPECT_EQ(system.health(2).failures, 1u);
  EXPECT_EQ(system.health(2).last_error, "operator-killed for the test");
  EXPECT_DOUBLE_EQ(system.alpha(), 0.5);  // 1 / N_alive

  // Training continues over the survivors; the dead pipeline's batch slot is
  // simply ignored.
  for (std::size_t epoch = 0; epoch < 10; ++epoch) {
    for (std::size_t i = 0; i + 2 < loader.batches_per_epoch(); i += 3) {
      const double loss = system.train_iteration(batches_at(epoch, i));
      EXPECT_TRUE(std::isfinite(loss));
    }
  }
  EXPECT_GT(runtime::evaluate_accuracy(system.eval_model(), loader, 0, 4),
            0.9);
}

TEST(AvgPipeElasticTest, LoneSurvivorMatchesSinglePipelineTrainer) {
  // After every peer dies, normalising by N_alive must leave the reference
  // exactly on the lone survivor's trajectory — i.e. the degraded system IS
  // a single-pipeline AvgPipe, not a wounded N-pipeline one.
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);

  AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 3;
  config.boundaries = {2};
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), config);
  system.detach_pipeline(1, "dead before the first batch");
  EXPECT_DOUBLE_EQ(system.alpha(), default_alpha(1));

  AvgPipeTrainer lone(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), 1);
  for (std::size_t iter = 0; iter < 3; ++iter) {
    const Batch b = loader.batch(iter, 0);
    system.train_iteration({b, loader.batch(iter, 1)});  // slot 1 ignored
    lone.train_iteration({b});
  }
  const ParamSet sys_ref = system.reference_snapshot();
  const auto& lone_ref = lone.reference().params();
  ASSERT_EQ(sys_ref.size(), lone_ref.size());
  for (std::size_t i = 0; i < sys_ref.size(); ++i) {
    EXPECT_LT(sys_ref[i].max_abs_diff(lone_ref[i]), 1e-9) << "tensor " << i;
  }
}

// -- quantized sync transport -----------------------------------------------------------

namespace {

bool env_forces_codec() {
  const std::string env = common::env_string("AVGPIPE_SYNC_COMPRESS", "");
  if (env.empty()) return false;
  SyncCompression forced;
  return parse_sync_compression(env, &forced) && forced.enabled();
}

SyncCompression int8_compression() {
  SyncCompression c;
  c.codec = tensor::Codec::kInt8;
  return c;
}

}  // namespace

TEST(SyncCompressionTest, OffModeIsBitIdenticalToDefaultPath) {
  // The parity anchor: a config that explicitly pins compression off must
  // follow the default (env-unset) config byte for byte — proving the codec
  // layer is absent from the sync path, not merely "small". Skipped when CI
  // forces a codec via env, because then the default config IS compressed.
  if (env_forces_codec()) {
    GTEST_SKIP() << "AVGPIPE_SYNC_COMPRESS forces a codec";
  }
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);

  AvgPipeConfig default_cfg;
  default_cfg.num_pipelines = 2;
  default_cfg.micro_batches = 3;
  default_cfg.boundaries = {2};
  AvgPipeConfig off_cfg = default_cfg;
  off_cfg.sync_compression = SyncCompression{};  // pinned off, env ignored

  AvgPipe default_sys(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), default_cfg);
  AvgPipe off_sys(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), off_cfg);

  for (std::size_t iter = 0; iter < 4; ++iter) {
    std::vector<Batch> batches{loader.batch(iter, 0), loader.batch(iter, 1)};
    const double default_loss = default_sys.train_iteration(batches);
    const double off_loss = off_sys.train_iteration(batches);
    EXPECT_DOUBLE_EQ(default_loss, off_loss) << "iter " << iter;
  }
  const ParamSet a = default_sys.reference_snapshot();
  const ParamSet b = off_sys.reference_snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].max_abs_diff(b[i]), 0.0) << "tensor " << i;
  }
}

TEST(SyncCompressionTest, CompressedThreadedMatchesSemanticTrainer) {
  // The serial trainer's generic compressed round must stay the semantic
  // model of the threaded system when both pin the same codec: same
  // transmission points (initial broadcast, per-replica push, re-publish),
  // same replica order.
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);

  AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 3;
  config.boundaries = {2};
  config.sync_compression = int8_compression();
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), config);
  AvgPipeTrainer semantic(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), 2);
  semantic.set_sync_compression(int8_compression());

  for (std::size_t iter = 0; iter < 3; ++iter) {
    std::vector<Batch> batches{loader.batch(iter, 0), loader.batch(iter, 1)};
    system.train_iteration(batches);
    semantic.train_iteration(batches);
  }
  const ParamSet sys_ref = system.reference_snapshot();
  const auto& sem_ref = semantic.reference().params();
  ASSERT_EQ(sys_ref.size(), sem_ref.size());
  for (std::size_t i = 0; i < sys_ref.size(); ++i) {
    EXPECT_LT(sys_ref[i].max_abs_diff(sem_ref[i]), 1e-9) << "tensor " << i;
  }
}

TEST(SyncCompressionTest, Int8ErrorFeedbackConverges) {
  // The lossy trajectory must reach the same accuracy target as the exact
  // path (the ConvergesOnSeparableData gate): error feedback keeps the
  // quantization noise from accumulating into a bias.
  SyntheticFeatures ds(128, 6, 2, 3, /*noise=*/0.15);
  DataLoader loader(ds, 16, 7);
  AvgPipeTrainer avg(mlp_factory(6, 12, 2, 2), sgd_factory(0.3), 2);
  avg.set_sync_compression(int8_compression());
  double loss = 0.0;
  for (std::size_t epoch = 0; epoch < 10; ++epoch) {
    for (std::size_t i = 0; i + 1 < loader.batches_per_epoch(); i += 2) {
      loss = avg.train_iteration(
          {loader.batch(epoch, i), loader.batch(epoch, i + 1)});
      ASSERT_TRUE(std::isfinite(loss));
    }
  }
  EXPECT_GT(runtime::evaluate_accuracy(avg.eval_model(), loader, 0, 4), 0.9);
}

TEST(SyncCompressionTest, Fp16ConvergesOnThreadedSystem) {
  SyntheticFeatures ds(128, 6, 2, 5, /*noise=*/0.15);
  DataLoader loader(ds, 16, 3);

  AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 4;
  config.boundaries = {3};
  config.kind = schedule::Kind::kAdvanceForward;
  SyncCompression c;
  c.codec = tensor::Codec::kFp16;
  config.sync_compression = c;
  AvgPipe system(mlp_factory(6, 12, 2, 2), sgd_factory(0.3), config);

  for (std::size_t epoch = 0; epoch < 10; ++epoch) {
    for (std::size_t i = 0; i + 1 < loader.batches_per_epoch(); i += 2) {
      system.train_iteration(
          {loader.batch(epoch, i), loader.batch(epoch, i + 1)});
    }
  }
  EXPECT_GT(runtime::evaluate_accuracy(system.eval_model(), loader, 0, 4),
            0.9);
}

TEST(SyncCompressionTest, Int8TracesBytesMovedAndRatio) {
  // Every push and broadcast must record wire/raw byte counters, and the
  // derived ratio must clear the int8 design floor (1 byte + amortized
  // per-block scale vs 8-byte doubles => ~7.9x, gated at 3x).
  trace::Tracer tracer;
  AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 2;
  config.boundaries = {2};
  config.tracer = &tracer;
  config.sync_compression = int8_compression();
  AvgPipe system(mlp_factory(4, 8, 2, 2), sgd_factory(0.1), config);

  SyntheticFeatures ds(64, 4, 2, 3);
  DataLoader loader(ds, 8, 1);
  const std::size_t iters = 3;
  for (std::size_t iter = 0; iter < iters; ++iter) {
    system.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
  }
  system.synchronize();

  trace::TraceAnalysis analysis(tracer.collect());
  EXPECT_GT(analysis.sync_bytes(), 0u);
  EXPECT_GT(analysis.sync_bytes_raw(), analysis.sync_bytes());
  EXPECT_GE(analysis.compression_ratio(), 3.0);
  EXPECT_LT(analysis.compression_ratio(), 8.0);  // can't beat 8 B -> 1 B
}

TEST(SyncCompressionTest, OffModeRecordsNoSyncByteCounters) {
  trace::Tracer tracer;
  AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 2;
  config.boundaries = {2};
  config.tracer = &tracer;
  config.sync_compression = SyncCompression{};
  AvgPipe system(mlp_factory(4, 8, 2, 2), sgd_factory(0.1), config);

  SyntheticFeatures ds(64, 4, 2, 3);
  DataLoader loader(ds, 8, 1);
  system.train_iteration({loader.batch(0, 0), loader.batch(0, 1)});
  system.synchronize();

  trace::TraceAnalysis analysis(tracer.collect());
  EXPECT_EQ(analysis.sync_bytes(), 0u);
  EXPECT_EQ(analysis.sync_bytes_raw(), 0u);
  EXPECT_DOUBLE_EQ(analysis.compression_ratio(), 1.0);
}

TEST(SyncCompressionTest, EnvParsingAndPrecedence) {
  SyncCompression c;
  EXPECT_TRUE(parse_sync_compression("off", &c));
  EXPECT_FALSE(c.enabled());
  EXPECT_TRUE(parse_sync_compression("none", &c));
  EXPECT_FALSE(c.enabled());
  EXPECT_TRUE(parse_sync_compression("fp16", &c));
  EXPECT_EQ(c.codec, tensor::Codec::kFp16);
  EXPECT_TRUE(parse_sync_compression("int8", &c));
  EXPECT_EQ(c.codec, tensor::Codec::kInt8);
  EXPECT_FALSE(parse_sync_compression("zstd", &c));
}

TEST(AvgPipeElasticTest, RejoinRestoresAlphaAndEmitsTraceEvents) {
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);

  trace::Tracer tracer;
  AvgPipeConfig config;
  config.num_pipelines = 3;
  config.micro_batches = 2;
  config.boundaries = {2};
  config.tracer = &tracer;
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), config);

  auto iter_batches = [&](std::size_t iter) {
    return std::vector<Batch>{loader.batch(iter, 0), loader.batch(iter, 1),
                              loader.batch(iter, 2)};
  };
  system.train_iteration(iter_batches(0));
  system.detach_pipeline(1, "transient node failure");
  EXPECT_DOUBLE_EQ(system.alpha(), 0.5);
  system.train_iteration(iter_batches(1));

  system.rejoin_pipeline(1);
  EXPECT_TRUE(system.pipeline_alive(1));
  EXPECT_EQ(system.alive_pipelines(), 3u);
  EXPECT_DOUBLE_EQ(system.alpha(), 1.0 / 3.0);
  EXPECT_TRUE(system.health(1).last_error.empty());
  system.train_iteration(iter_batches(2));

  trace::TraceAnalysis analysis(tracer.collect());
  const auto recoveries = analysis.recoveries();
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_EQ(recoveries[0].pipeline, 1u);
  EXPECT_TRUE(recoveries[0].rejoined);

  // The alive-pipelines counter must sample 2 at the crash and 3 again at
  // the rejoin.
  std::vector<double> alive_samples;
  for (const auto& ev : analysis.events()) {
    if (ev.kind == trace::EventKind::kCounter &&
        ev.counter == trace::CounterId::kAlivePipelines) {
      alive_samples.push_back(ev.value);
    }
  }
  ASSERT_EQ(alive_samples.size(), 2u);
  EXPECT_DOUBLE_EQ(alive_samples[0], 2.0);
  EXPECT_DOUBLE_EQ(alive_samples[1], 3.0);
}

TEST(AvgPipeElasticTest, FaultPlanDrivesCrashAndRejoinBySteps) {
  SyntheticFeatures ds(64, 6, 2, 3);
  DataLoader loader(ds, 12, 1);

  fault::FaultPlan plan;
  fault::PipelineCrash crash;
  crash.pipeline = 1;
  crash.crash_at_step = 1;   // detach before iteration 1
  crash.rejoin_at_step = 3;  // rejoin before iteration 3
  plan.crashes.push_back(crash);

  trace::Tracer tracer;
  AvgPipeConfig config;
  config.num_pipelines = 2;
  config.micro_batches = 3;
  config.boundaries = {2};
  config.tracer = &tracer;
  config.faults = &plan;
  AvgPipe system(mlp_factory(6, 8, 2, 2), sgd_factory(0.1), config);

  for (std::size_t iter = 0; iter < 5; ++iter) {
    system.train_iteration({loader.batch(iter, 0), loader.batch(iter, 1)});
    if (iter >= 1 && iter < 3) {
      EXPECT_EQ(system.alive_pipelines(), 1u) << "iter " << iter;
    } else {
      EXPECT_EQ(system.alive_pipelines(), 2u) << "iter " << iter;
    }
  }
  EXPECT_DOUBLE_EQ(system.alpha(), 0.5);
  EXPECT_EQ(system.health(1).failures, 1u);

  trace::TraceAnalysis analysis(tracer.collect());
  const auto recoveries = analysis.recoveries();
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_TRUE(recoveries[0].rejoined);
}

TEST(AvgPipeElasticTest, DetachingEveryPipelineMakesTrainingThrow) {
  AvgPipeConfig config;
  config.num_pipelines = 2;
  config.boundaries = {};
  AvgPipe system(mlp_factory(4, 6, 1, 2), sgd_factory(0.1), config);
  system.detach_pipeline(0, "gone");
  system.detach_pipeline(1, "also gone");
  EXPECT_EQ(system.alive_pipelines(), 0u);
  Batch b{Tensor({4, 4}), {0, 1, 0, 1}};
  EXPECT_THROW(system.train_iteration({b, b}), Error);
}

TEST(AvgPipeElasticTest, DetachAndRejoinAreIdempotent) {
  AvgPipeConfig config;
  config.num_pipelines = 2;
  config.boundaries = {};
  AvgPipe system(mlp_factory(4, 6, 1, 2), sgd_factory(0.1), config);
  system.rejoin_pipeline(0);  // already alive: no-op
  EXPECT_EQ(system.alive_pipelines(), 2u);
  system.detach_pipeline(0, "x");
  system.detach_pipeline(0, "x again");  // already dead: no-op
  EXPECT_EQ(system.health(0).failures, 1u);
  EXPECT_EQ(system.alive_pipelines(), 1u);
}

}  // namespace
}  // namespace avgpipe::core
