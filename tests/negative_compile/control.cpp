// Positive control for the negative-compile suite: correct use of every
// construct the violation files abuse. Must compile cleanly under
// -Wthread-safety -Werror=thread-safety — otherwise the violations would
// "fail" for reasons unrelated to the analysis gate.
#include "common/annotations.hpp"
#include "common/queue.hpp"

namespace {

class Counter {
 public:
  void bump() {
    avgpipe::common::MutexLock lock(mutex_);
    ++value_;
  }
  long read() {
    avgpipe::common::MutexLock lock(mutex_);
    return value_;
  }

 private:
  avgpipe::common::Mutex mutex_;
  long value_ GUARDED_BY(mutex_) = 0;
};

long spsc_roundtrip() {
  avgpipe::SpscChannel<long> ch(2);
  {
    avgpipe::common::RoleGuard producer(ch.producer_role());
    ch.send(41);
  }
  avgpipe::common::RoleGuard consumer(ch.consumer_role());
  const auto v = ch.recv();
  return v.has_value() ? *v : 0;
}

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.read() + spsc_roundtrip() == 42 ? 0 : 1;
}
