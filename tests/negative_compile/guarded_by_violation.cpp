// Must NOT compile under -Wthread-safety -Werror=thread-safety: reads a
// GUARDED_BY member without holding its mutex. If this file ever compiles
// under the clang gate, the annotation layer has stopped guarding anything.
#include "common/annotations.hpp"

namespace {

class Counter {
 public:
  long read_unlocked() { return value_; }  // racy read — the gate must fire

 private:
  avgpipe::common::Mutex mutex_;
  long value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return static_cast<int>(c.read_unlocked());
}
