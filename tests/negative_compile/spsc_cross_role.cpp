// Must NOT compile under -Wthread-safety -Werror=thread-safety: sends on an
// SPSC link while holding only the *consumer* role. The producer/consumer
// split is the channel's whole correctness argument (the Dekker handshake
// assumes one thread per side); cross-role access must be a compile error.
#include "common/queue.hpp"

int main() {
  avgpipe::SpscChannel<int> ch(2);
  avgpipe::common::RoleGuard consumer(ch.consumer_role());
  ch.send(1);  // requires producer_role() — cross-role access, gate must fire
  return 0;
}
