#!/usr/bin/env bash
# Negative-compile gate for the thread-safety annotation layer.
#
#   tests/negative_compile/run_negative_compile.sh [repo-root]
#
# Proves the clang -Wthread-safety gate actually fires: the control file must
# compile cleanly, every *_violation/cross_role file must FAIL to compile and
# the failure must be a thread-safety diagnostic (not a stray syntax error).
# Needs clang++ (set CLANG_CXX to override); exits 77 — ctest's skip code —
# when none is available, e.g. in the gcc-only sanitizer containers.
set -u

root="${1:-$(cd "$(dirname "$0")/../.." && pwd)}"
here="${root}/tests/negative_compile"

clang_bin="${CLANG_CXX:-clang++}"
if ! command -v "${clang_bin}" >/dev/null 2>&1; then
  echo "SKIP: ${clang_bin} not found (set CLANG_CXX to override)"
  exit 77
fi

flags=(-std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety
       "-I${root}/src")

fail() { echo "FAIL: $*"; exit 1; }

echo "== control.cpp must compile =="
if ! "${clang_bin}" "${flags[@]}" "${here}/control.cpp"; then
  fail "control.cpp does not compile — the suite cannot prove anything"
fi

for bad in guarded_by_violation.cpp spsc_cross_role.cpp; do
  echo "== ${bad} must fail with a thread-safety diagnostic =="
  if out=$("${clang_bin}" "${flags[@]}" "${here}/${bad}" 2>&1); then
    fail "${bad} compiled — the thread-safety gate is not firing"
  fi
  if ! grep -q "thread-safety" <<<"${out}"; then
    printf '%s\n' "${out}"
    fail "${bad} failed for a reason other than -Wthread-safety"
  fi
  grep "error:" <<<"${out}" | head -3
done

echo "negative-compile gate: OK"
