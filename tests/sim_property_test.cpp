#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"

namespace avgpipe::sim {
namespace {

/// Parameterized property sweeps over the full (workload, kind, M, N) grid:
/// the invariants every simulation must satisfy regardless of configuration.

struct GridCase {
  std::string workload;
  schedule::Kind kind;
  std::size_t m;
  std::size_t n;
};

workloads::WorkloadProfile profile_of(const std::string& name) {
  if (name == "GNMT") return workloads::gnmt_profile();
  if (name == "BERT") return workloads::bert_profile();
  if (name == "AWD") return workloads::awd_profile();
  return workloads::toy_two_stage_profile();
}

SimResult run_case(const GridCase& c, std::size_t batches = 3) {
  const auto w = profile_of(c.workload);
  const auto cluster = workloads::v100_cluster(w.num_gpus);
  const auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
  SystemConfig sys;
  sys.kind = c.kind;
  sys.micro_batches = c.m;
  sys.num_pipelines = c.n;
  sys.elastic_averaging = c.n > 1;
  auto job = build_job(w, cluster, part, sys, w.batch_size, batches);
  job.memory_limit = 1e18;  // invariants, not OOM, are under test
  return simulate(job);
}

class SimGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(SimGridTest, UniversalInvariants) {
  const auto& c = GetParam();
  const SimResult r = run_case(c);

  EXPECT_GT(r.makespan, 0.0);
  EXPECT_NEAR(r.time_per_batch, r.makespan / 3.0, 1e-9);
  EXPECT_GE(r.mean_utilization, 0.0);
  EXPECT_LE(r.mean_utilization, 1.0 + 1e-9);
  EXPECT_LE(r.peak_utilization, 1.0 + 1e-9);

  for (const auto& g : r.gpus) {
    EXPECT_GE(g.busy, 0.0);
    EXPECT_LE(g.busy, r.makespan + 1e-9);
    EXPECT_GE(g.peak_memory, g.static_memory);
    EXPECT_GE(g.comm_block, 0.0);
    EXPECT_GE(g.bubble, 0.0);
    if (!g.utilization.empty()) {
      EXPECT_LE(g.utilization.max_value(), 1.0 + 1e-9);
      EXPECT_GE(g.utilization.integral(), 0.0);
    }
  }
}

TEST_P(SimGridTest, Deterministic) {
  const auto& c = GetParam();
  const SimResult a = run_case(c);
  const SimResult b = run_case(c);
  EXPECT_EQ(a.makespan, b.makespan);
  for (std::size_t k = 0; k < a.gpus.size(); ++k) {
    EXPECT_EQ(a.gpus[k].busy, b.gpus[k].busy);
    EXPECT_EQ(a.gpus[k].peak_memory, b.gpus[k].peak_memory);
    EXPECT_EQ(a.gpus[k].total_comm, b.gpus[k].total_comm);
  }
}

SimResult run_case_traced(const GridCase& c, trace::Tracer& tracer,
                          std::size_t batches = 3) {
  const auto w = profile_of(c.workload);
  const auto cluster = workloads::v100_cluster(w.num_gpus);
  const auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
  SystemConfig sys;
  sys.kind = c.kind;
  sys.micro_batches = c.m;
  sys.num_pipelines = c.n;
  sys.elastic_averaging = c.n > 1;
  auto job = build_job(w, cluster, part, sys, w.batch_size, batches);
  job.memory_limit = 1e18;
  job.tracer = &tracer;
  return simulate(job);
}

TEST_P(SimGridTest, TraceIsBitIdenticalAcrossRuns) {
  // The simulator is deterministic, and so must its trace be: two identical
  // runs collect to the exact same span sequence (field-for-field), which is
  // what lets traces serve as golden artifacts.
  const auto& c = GetParam();
  trace::Tracer tracer_a, tracer_b;
  run_case_traced(c, tracer_a);
  run_case_traced(c, tracer_b);
  const auto a = tracer_a.collect();
  const auto b = tracer_b.collect();
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "event " << i;
  }
}

TEST_P(SimGridTest, TraceUtilizationMatchesSimulator) {
  // The φ(t) segments the simulator emits as counter events must rebuild to
  // the very numbers it reports itself — the guarantee that let the figure
  // benches switch from private simulator state to TraceAnalysis.
  const auto& c = GetParam();
  trace::Tracer tracer;
  const SimResult r = run_case_traced(c, tracer);
  const trace::TraceAnalysis analysis(tracer.collect());

  ASSERT_EQ(analysis.num_stages(), r.gpus.size());
  EXPECT_NEAR(analysis.mean_utilization(), r.mean_utilization, 1e-9);
  EXPECT_NEAR(analysis.peak_utilization(), r.peak_utilization, 1e-9);
  EXPECT_NEAR(analysis.span_end(), r.makespan, 1e-9);
  for (std::size_t k = 0; k < r.gpus.size(); ++k) {
    const StepFunction phi = analysis.utilization(k);
    EXPECT_NEAR(phi.integral(), r.gpus[k].utilization.integral(), 1e-9)
        << "gpu " << k;
    EXPECT_NEAR(phi.max_value(), r.gpus[k].utilization.max_value(), 1e-9)
        << "gpu " << k;
  }
}

std::vector<GridCase> grid() {
  std::vector<GridCase> cases;
  for (const char* w : {"GNMT", "BERT", "AWD"}) {
    for (auto kind : {schedule::Kind::kAfab, schedule::Kind::kOneFOneB,
                      schedule::Kind::kAdvanceForward,
                      schedule::Kind::kPipeDream,
                      schedule::Kind::kPipeDream2BW}) {
      for (std::size_t m : {1u, 4u}) {
        for (std::size_t n : {1u, 2u}) {
          cases.push_back({w, kind, m, n});
        }
      }
    }
    cases.push_back({w, schedule::Kind::kDataParallel, 1, 1});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    PaperWorkloads, SimGridTest, ::testing::ValuesIn(grid()),
    [](const auto& info) {
      std::string name = info.param.workload + "_" +
                         schedule::to_string(info.param.kind) + "_M" +
                         std::to_string(info.param.m) + "_N" +
                         std::to_string(info.param.n);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// -- monotonicity properties ----------------------------------------------------------

class AdvanceSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AdvanceSweepTest, TimeNonIncreasingMemoryNonDecreasingInAdvance) {
  // The AFP trade-off (paper §4.2): more advance does not slow the pipeline
  // (up to a small tolerance — near the AFAB end, bunching all forward
  // transfers can contend on the half-duplex links) and never shrinks the
  // footprint.
  const auto w = profile_of(GetParam());
  const auto cluster = workloads::v100_cluster(w.num_gpus);
  const auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
  const std::size_t k = w.num_gpus;
  const std::size_t m = 16;

  Seconds prev_time = 1e300;
  Bytes prev_mem = 0;
  for (std::size_t advance : {k - 1, k + 1, k + 4, m + k}) {
    SystemConfig sys;
    sys.kind = schedule::Kind::kAdvanceForward;
    sys.micro_batches = m;
    sys.advance_num = advance;
    auto job = build_job(w, cluster, part, sys, w.batch_size, 3);
    job.memory_limit = 1e18;
    const SimResult r = simulate(job);
    Bytes peak = 0;
    for (const auto& g : r.gpus) peak = std::max(peak, g.peak_memory);
    EXPECT_LE(r.time_per_batch, prev_time * 1.05)
        << "advance " << advance << " slowed the pipeline";
    EXPECT_GE(peak, prev_mem - 1.0) << "advance " << advance;
    prev_time = r.time_per_batch;
    prev_mem = peak;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, AdvanceSweepTest,
                         ::testing::Values("GNMT", "BERT", "AWD"));

TEST(MicroBatchSweepTest, MoreMicroBatchesShrinkActivationPeaks) {
  // Under 1F1B the stash is ~K micro-batches; smaller micro-batches mean a
  // smaller stash (the mechanism AvgPipe uses to pay for its replicas).
  const auto w = workloads::bert_profile();
  const auto cluster = workloads::v100_cluster(w.num_gpus);
  const auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
  Bytes prev = 1e30;
  for (std::size_t m : {2u, 4u, 8u, 16u, 32u}) {
    SystemConfig sys;
    sys.kind = schedule::Kind::kOneFOneB;
    sys.micro_batches = m;
    auto job = build_job(w, cluster, part, sys, w.batch_size, 2);
    job.memory_limit = 1e18;
    const SimResult r = simulate(job);
    Bytes act = 0;
    for (const auto& g : r.gpus) act = std::max(act, g.peak_activations);
    EXPECT_LE(act, prev * 1.001) << "M=" << m;
    prev = act;
  }
}

TEST(PipelineSweepTest, EpochThroughputNeverDegradesWithSecondPipeline) {
  // Adding the second elastic pipeline must improve (or at least match)
  // per-sample throughput on every paper workload — the core AvgPipe claim.
  for (const char* name : {"GNMT", "BERT", "AWD"}) {
    const auto w = profile_of(name);
    const auto cluster = workloads::v100_cluster(w.num_gpus);
    const auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
    double prev_per_sample = 1e300;
    for (std::size_t n : {1u, 2u}) {
      SystemConfig sys;
      sys.kind = schedule::Kind::kAdvanceForward;
      sys.micro_batches = std::max<std::size_t>(1, w.batch_size / 8);
      sys.num_pipelines = n;
      sys.elastic_averaging = n > 1;
      auto job = build_job(w, cluster, part, sys, w.batch_size, 3);
      job.memory_limit = 1e18;
      const SimResult r = simulate(job);
      const double per_sample =
          r.time_per_batch /
          (static_cast<double>(n) * static_cast<double>(w.batch_size));
      EXPECT_LE(per_sample, prev_per_sample * 1.02) << name << " N=" << n;
      prev_per_sample = per_sample;
    }
  }
}

TEST(RecomputeTest, TradesMemoryForBackwardCompute) {
  // Activation recomputation: far smaller stash, measurably slower batch.
  const auto w = workloads::bert_profile();
  const auto cluster = workloads::v100_cluster(w.num_gpus);
  const auto part = partition::pipedream_partition(w, cluster, w.num_gpus);
  SystemConfig sys;
  sys.kind = schedule::Kind::kAfab;
  sys.micro_batches = 8;
  auto job = build_job(w, cluster, part, sys, w.batch_size, 3);
  job.memory_limit = 1e18;

  const SimResult plain = simulate(job);
  job.activation_recompute = true;
  const SimResult recompute = simulate(job);

  Bytes plain_act = 0, rec_act = 0;
  for (const auto& g : plain.gpus) plain_act = std::max(plain_act, g.peak_activations);
  for (const auto& g : recompute.gpus) rec_act = std::max(rec_act, g.peak_activations);
  EXPECT_LT(rec_act, 0.25 * plain_act);
  EXPECT_GT(recompute.time_per_batch, plain.time_per_batch);
}

}  // namespace
}  // namespace avgpipe::sim
