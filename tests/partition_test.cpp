#include "partition/partitioner.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace avgpipe::partition {
namespace {

using workloads::ClusterSpec;
using workloads::WorkloadProfile;

WorkloadProfile random_profile(Rng& rng, std::size_t layers) {
  WorkloadProfile w;
  w.name = "random";
  for (std::size_t i = 0; i < layers; ++i) {
    workloads::LayerProfile l;
    l.name = "l" + std::to_string(i);
    l.fwd_flops_per_sample = rng.uniform(0.1, 10.0) * 1e9;
    l.activation_bytes_per_sample = rng.uniform(1.0, 500.0) * 1e3;
    l.stash_bytes_per_sample = 2.0 * l.activation_bytes_per_sample;
    l.param_bytes = rng.uniform(1.0, 50.0) * 1e6;
    w.layers.push_back(l);
  }
  w.batch_size = 32;
  return w;
}

/// All ways to cut `layers` into `stages` contiguous ranges.
void enumerate(std::size_t layers, std::size_t stages,
               std::vector<std::size_t>& cuts,
               const std::function<void(const std::vector<std::size_t>&)>& fn,
               std::size_t next = 1) {
  if (cuts.size() == stages - 1) {
    fn(cuts);
    return;
  }
  for (std::size_t c = next; c < layers; ++c) {
    cuts.push_back(c);
    enumerate(layers, stages, cuts, fn, c + 1);
    cuts.pop_back();
  }
}

double brute_force_best(const WorkloadProfile& w, const ClusterSpec& cluster,
                        std::size_t stages) {
  double best = 1e300;
  std::vector<std::size_t> cuts;
  enumerate(w.layers.size(), stages, cuts, [&](const auto& c) {
    Partition p;
    p.num_layers = w.layers.size();
    p.stage_begin.push_back(0);
    for (auto x : c) p.stage_begin.push_back(x);
    best = std::min(best, bottleneck_cost(w, cluster, p));
  });
  return best;
}

TEST(UniformPartitionTest, EqualLayerCounts) {
  Partition p = uniform_partition(12, 4);
  EXPECT_EQ(p.num_stages(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(p.end_of(k) - p.begin_of(k), 3u);
  }
}

TEST(UniformPartitionTest, UnevenCountsAreContiguous) {
  Partition p = uniform_partition(10, 4);
  EXPECT_EQ(p.begin_of(0), 0u);
  std::size_t total = 0;
  for (std::size_t k = 0; k < 4; ++k) total += p.end_of(k) - p.begin_of(k);
  EXPECT_EQ(total, 10u);
}

TEST(UniformPartitionTest, TooManyStagesThrows) {
  EXPECT_THROW(uniform_partition(3, 4), Error);
}

class PipedreamPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PipedreamPropertyTest, DpMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t layers = 6 + static_cast<std::size_t>(GetParam()) % 5;
  WorkloadProfile w = random_profile(rng, layers);
  ClusterSpec cluster = workloads::v100_cluster(4);
  for (std::size_t stages : {2u, 3u, 4u}) {
    Partition dp = pipedream_partition(w, cluster, stages);
    const double dp_cost = bottleneck_cost(w, cluster, dp);
    const double best = brute_force_best(w, cluster, stages);
    EXPECT_NEAR(dp_cost, best, best * 1e-9)
        << "layers=" << layers << " stages=" << stages;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipedreamPropertyTest,
                         ::testing::Range(0, 12));

TEST(PipedreamPartitionTest, CoversAllLayersInOrder) {
  auto w = workloads::gnmt_profile();
  auto cluster = workloads::v100_cluster(6);
  Partition p = pipedream_partition(w, cluster, 6);
  EXPECT_EQ(p.num_stages(), 6u);
  EXPECT_EQ(p.begin_of(0), 0u);
  for (std::size_t k = 1; k < 6; ++k) {
    EXPECT_GT(p.begin_of(k), p.begin_of(k - 1));
  }
  EXPECT_EQ(p.end_of(5), w.layers.size());
}

TEST(PipedreamPartitionTest, BalancesComputeOnPaperWorkloads) {
  // No stage should carry more than ~3x the mean compute.
  for (const auto& w : workloads::paper_workloads()) {
    auto cluster = workloads::v100_cluster(w.num_gpus);
    Partition p = pipedream_partition(w, cluster, w.num_gpus);
    auto costs = stage_costs(w, p);
    Flops total = 0;
    for (const auto& c : costs) total += c.fwd_flops_per_sample;
    const Flops mean = total / static_cast<double>(costs.size());
    for (const auto& c : costs) {
      EXPECT_LT(c.fwd_flops_per_sample, 3.0 * mean) << w.name;
    }
  }
}

TEST(PipedreamPartitionTest, SingleStageTakesEverything) {
  auto w = workloads::awd_profile();
  auto cluster = workloads::v100_cluster(4);
  Partition p = pipedream_partition(w, cluster, 1);
  EXPECT_EQ(p.num_stages(), 1u);
  EXPECT_EQ(p.end_of(0), w.layers.size());
}

TEST(StageCostsTest, SumsMatchProfileTotals) {
  auto w = workloads::bert_profile();
  auto cluster = workloads::v100_cluster(6);
  Partition p = pipedream_partition(w, cluster, 6);
  auto costs = stage_costs(w, p);
  Flops flops = 0;
  Bytes params = 0;
  for (const auto& c : costs) {
    flops += c.fwd_flops_per_sample;
    params += c.param_bytes;
  }
  EXPECT_NEAR(flops, w.total_fwd_flops_per_sample(), 1.0);
  EXPECT_NEAR(params, w.total_param_bytes(), 1.0);
}

TEST(StageCostsTest, BoundaryIsLastLayerActivation) {
  auto w = workloads::awd_profile();
  Partition p = uniform_partition(w.layers.size(), 2);
  auto costs = stage_costs(w, p);
  const std::size_t last_of_stage0 = p.end_of(0) - 1;
  EXPECT_EQ(costs[0].boundary_act_bytes_per_sample,
            w.layers[last_of_stage0].activation_bytes_per_sample);
}

TEST(ProfileTest, PaperWorkloadsAreWellFormed) {
  for (const auto& w : workloads::paper_workloads()) {
    EXPECT_GE(w.layers.size(), 5u) << w.name;
    EXPECT_GT(w.total_fwd_flops_per_sample(), 0.0) << w.name;
    EXPECT_GT(w.total_param_bytes(), 0.0) << w.name;
    EXPECT_GT(w.batch_size, 0u) << w.name;
    EXPECT_GT(w.efficiency(1.0), 0.0);
    EXPECT_LT(w.efficiency(1.0), 1.0);
    EXPECT_GT(w.efficiency(1e9), 0.99);
  }
}

TEST(ClusterTest, LinkSelection) {
  auto c = workloads::v100_cluster(6);
  EXPECT_EQ(c.num_gpus(), 6u);
  // GPUs 0,1 share a node; 1,2 do not.
  EXPECT_GT(c.link_between(0, 1).bandwidth_bytes_per_s,
            c.link_between(1, 2).bandwidth_bytes_per_s);
  EXPECT_EQ(c.node_of(2), 1u);
}

TEST(ClusterTest, TransferTime) {
  workloads::LinkSpec link{1e6, 1e-3};
  EXPECT_DOUBLE_EQ(link.transfer_time(1e6), 1.0 + 1e-3);
}

}  // namespace
}  // namespace avgpipe::partition
