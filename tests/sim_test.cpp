#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/resources.hpp"
#include "sim/simulator.hpp"

namespace avgpipe::sim {
namespace {

// -- Engine -------------------------------------------------------------------------

TEST(EngineTest, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(3.0, [&] { order.push_back(3); });
  EXPECT_DOUBLE_EQ(e.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineTest, TiesBreakByScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(1.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EngineTest, EventsCanScheduleEvents) {
  Engine e;
  int fired = 0;
  e.schedule_at(1.0, [&] {
    ++fired;
    e.schedule_after(1.0, [&] { ++fired; });
  });
  EXPECT_DOUBLE_EQ(e.run(), 2.0);
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, SchedulingIntoThePastThrows) {
  Engine e;
  e.schedule_at(5.0, [&] {
    EXPECT_THROW(e.schedule_at(1.0, [] {}), Error);
  });
  e.run();
}

// -- ComputeResource (processor sharing) ------------------------------------------------

TEST(ComputeResourceTest, SingleOpRunsAtDemandedRate) {
  Engine e;
  ComputeResource gpu(e, 100.0);
  Seconds done_at = -1;
  gpu.submit(50.0, 0.5, [&] { done_at = e.now(); });
  e.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);  // 50 work at rate 100*0.5
}

TEST(ComputeResourceTest, UndersubscribedOpsDoNotSlowEachOther) {
  Engine e;
  ComputeResource gpu(e, 100.0);
  Seconds t1 = -1, t2 = -1;
  gpu.submit(40.0, 0.4, [&] { t1 = e.now(); });
  gpu.submit(40.0, 0.4, [&] { t2 = e.now(); });
  e.run();
  EXPECT_NEAR(t1, 1.0, 1e-9);
  EXPECT_NEAR(t2, 1.0, 1e-9);
}

TEST(ComputeResourceTest, OversubscriptionScalesProportionally) {
  Engine e;
  ComputeResource gpu(e, 100.0);
  Seconds t1 = -1;
  gpu.submit(60.0, 0.6, [&] { t1 = e.now(); });
  gpu.submit(60.0, 0.6, [&] {});
  e.run();
  // Total demand 1.2 -> each op runs at 100*0.6/1.2 = 50 -> 60/50 = 1.2s.
  EXPECT_NEAR(t1, 1.2, 1e-9);
}

TEST(ComputeResourceTest, LateArrivalSharesRemainingWork) {
  Engine e;
  ComputeResource gpu(e, 100.0);
  Seconds t1 = -1, t2 = -1;
  gpu.submit(80.0, 0.8, [&] { t1 = e.now(); });
  e.schedule_at(0.5, [&] { gpu.submit(40.0, 0.8, [&] { t2 = e.now(); }); });
  e.run();
  // [0,0.5): op1 at 80/s -> 40 left. Then demand 1.6 -> each at 50/s.
  // op2 (40 work) and op1 (40 left) both finish at 0.5 + 0.8 = 1.3.
  EXPECT_NEAR(t1, 1.3, 1e-9);
  EXPECT_NEAR(t2, 1.3, 1e-9);
}

TEST(ComputeResourceTest, UtilizationCurveTracksDemand) {
  Engine e;
  ComputeResource gpu(e, 100.0);
  gpu.submit(50.0, 0.5, [] {});
  e.run();
  const StepFunction& phi = gpu.utilization();
  EXPECT_NEAR(phi.integral(), 0.5 * 1.0, 1e-9);
  EXPECT_NEAR(gpu.busy_time(), 1.0, 1e-9);
}

TEST(ComputeResourceTest, UtilizationCapsAtOne) {
  Engine e;
  ComputeResource gpu(e, 100.0);
  gpu.submit(60.0, 0.9, [] {});
  gpu.submit(60.0, 0.9, [] {});
  e.run();
  EXPECT_NEAR(gpu.utilization().max_value(), 1.0, 1e-9);
}

TEST(ComputeResourceTest, ZeroWorkCompletesImmediately) {
  Engine e;
  ComputeResource gpu(e, 1e12);
  bool done = false;
  gpu.submit(0.0, 1.0, [&] { done = true; });
  e.run();
  EXPECT_TRUE(done);
}

TEST(ComputeResourceTest, InvalidDemandThrows) {
  Engine e;
  ComputeResource gpu(e, 100.0);
  EXPECT_THROW(gpu.submit(1.0, 0.0, [] {}), Error);
  EXPECT_THROW(gpu.submit(1.0, 1.5, [] {}), Error);
}

// -- LinkResource -----------------------------------------------------------------------

TEST(LinkResourceTest, TransferTimeIsBytesOverBandwidthPlusLatency) {
  Engine e;
  LinkResource link(e, 1000.0, 0.1);
  Seconds delivered = -1;
  link.transfer(500.0, [&] { delivered = e.now(); });
  e.run();
  EXPECT_NEAR(delivered, 0.5 + 0.1, 1e-9);
}

TEST(LinkResourceTest, TransfersSerialise) {
  Engine e;
  LinkResource link(e, 1000.0, 0.0);
  Seconds t1 = -1, t2 = -1;
  link.transfer(1000.0, [&] { t1 = e.now(); });
  link.transfer(1000.0, [&] { t2 = e.now(); });
  e.run();
  EXPECT_NEAR(t1, 1.0, 1e-9);
  EXPECT_NEAR(t2, 2.0, 1e-9);  // second waits for the wire
  EXPECT_NEAR(link.busy_time(), 2.0, 1e-9);
}

TEST(LinkResourceTest, LatencyDoesNotOccupyWire) {
  Engine e;
  LinkResource link(e, 1000.0, 1.0);
  Seconds t1 = -1, t2 = -1;
  link.transfer(1000.0, [&] { t1 = e.now(); });
  link.transfer(1000.0, [&] { t2 = e.now(); });
  e.run();
  // Wire times back-to-back (1s each); each delivery lands +1s latency.
  EXPECT_NEAR(t1, 2.0, 1e-9);
  EXPECT_NEAR(t2, 3.0, 1e-9);
}

// -- MemoryTracker -------------------------------------------------------------------------

TEST(MemoryTrackerTest, TracksPeakAndCategories) {
  MemoryTracker mem(1000.0);
  mem.alloc(400.0, MemCategory::kWeights);
  mem.alloc(300.0, MemCategory::kActivations);
  mem.free(300.0, MemCategory::kActivations);
  mem.alloc(100.0, MemCategory::kActivations);
  EXPECT_DOUBLE_EQ(mem.current(), 500.0);
  EXPECT_DOUBLE_EQ(mem.peak(), 700.0);
  EXPECT_DOUBLE_EQ(mem.peak_by(MemCategory::kActivations), 300.0);
  EXPECT_FALSE(mem.oom());
}

TEST(MemoryTrackerTest, OomIsSticky) {
  MemoryTracker mem(100.0);
  mem.alloc(150.0, MemCategory::kWeights);
  mem.free(150.0, MemCategory::kWeights);
  EXPECT_TRUE(mem.oom());
}

TEST(MemoryTrackerTest, OverFreeThrows) {
  MemoryTracker mem(100.0);
  mem.alloc(10.0, MemCategory::kBuffers);
  EXPECT_THROW(mem.free(20.0, MemCategory::kBuffers), Error);
}

TEST(MemoryTrackerTest, ModelVsDataSplit) {
  MemoryTracker mem(0.0);  // no cap
  mem.alloc(100.0, MemCategory::kWeights);
  mem.alloc(50.0, MemCategory::kOptimizer);
  mem.alloc(25.0, MemCategory::kReference);
  mem.alloc(10.0, MemCategory::kActivations);
  EXPECT_DOUBLE_EQ(mem.model_bytes(), 175.0);
  EXPECT_DOUBLE_EQ(mem.data_bytes_peak(), 10.0);
}

// -- full simulator invariants -----------------------------------------------------------------

SimJob toy_job(schedule::Kind kind, std::size_t m, std::size_t n = 1,
               std::size_t advance = 0) {
  auto w = workloads::toy_two_stage_profile();
  auto cluster = workloads::v100_cluster(2);
  auto part = partition::uniform_partition(w.layers.size(), 2);
  SystemConfig sys;
  sys.kind = kind;
  sys.micro_batches = m;
  sys.num_pipelines = n;
  sys.elastic_averaging = n > 1;
  sys.advance_num = advance;
  return build_job(w, cluster, part, sys, w.batch_size, 4);
}

TEST(SimulatorTest, Deterministic) {
  auto job = toy_job(schedule::Kind::kOneFOneB, 4);
  const SimResult a = simulate(job);
  const SimResult b = simulate(job);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.gpus[0].busy, b.gpus[0].busy);
  EXPECT_EQ(a.gpus[1].peak_memory, b.gpus[1].peak_memory);
}

TEST(SimulatorTest, AdvanceKMinus1MatchesOneFOneBExactly) {
  const SimResult f1b = simulate(toy_job(schedule::Kind::kOneFOneB, 4));
  const SimResult afp =
      simulate(toy_job(schedule::Kind::kAdvanceForward, 4, 1, 1));
  EXPECT_DOUBLE_EQ(f1b.makespan, afp.makespan);
  EXPECT_DOUBLE_EQ(f1b.gpus[0].peak_memory, afp.gpus[0].peak_memory);
}

TEST(SimulatorTest, AfabIsNoSlowerThanOneFOneBOnCommBoundJob) {
  // The toy profile has visible comm; 1F1B must not beat AFAB (paper §4.1).
  const SimResult afab = simulate(toy_job(schedule::Kind::kAfab, 8));
  const SimResult f1b = simulate(toy_job(schedule::Kind::kOneFOneB, 8));
  EXPECT_LE(afab.time_per_batch, f1b.time_per_batch * 1.0001);
}

TEST(SimulatorTest, AfpTimeBetween1F1BAndAfabMemoryToo) {
  const SimResult afab = simulate(toy_job(schedule::Kind::kAfab, 8));
  const SimResult f1b = simulate(toy_job(schedule::Kind::kOneFOneB, 8));
  const SimResult afp =
      simulate(toy_job(schedule::Kind::kAdvanceForward, 8, 1, 3));
  EXPECT_LE(afab.time_per_batch, afp.time_per_batch * 1.0001);
  EXPECT_LE(afp.time_per_batch, f1b.time_per_batch * 1.0001);
  EXPECT_LE(f1b.gpus[0].peak_memory, afp.gpus[0].peak_memory);
  EXPECT_LE(afp.gpus[0].peak_memory, afab.gpus[0].peak_memory);
}

TEST(SimulatorTest, MorePipelinesRaiseUtilizationAndMemory) {
  const SimResult one = simulate(toy_job(schedule::Kind::kAdvanceForward, 8,
                                         1, 2));
  const SimResult two = simulate(toy_job(schedule::Kind::kAdvanceForward, 8,
                                         2, 2));
  EXPECT_GT(two.mean_utilization, one.mean_utilization);
  EXPECT_GT(two.gpus[0].peak_memory, one.gpus[0].peak_memory);
}

TEST(SimulatorTest, ParallelPipelinesImprovePerSampleTime) {
  const SimResult one = simulate(toy_job(schedule::Kind::kAdvanceForward, 8,
                                         1, 2));
  const SimResult two = simulate(toy_job(schedule::Kind::kAdvanceForward, 8,
                                         2, 2));
  // Two pipelines process twice the samples; per-sample time must improve
  // (that is the whole point of elastic averaging on underutilised GPUs).
  EXPECT_LT(two.time_per_batch / 2.0, one.time_per_batch);
}

TEST(SimulatorTest, PipeDreamUsesMoreMemoryThan2BW) {
  // With K=2 PipeDream's stage-0 version count (K) ties 2BW's two versions;
  // use a deeper pipeline where the difference shows (paper §2: K versions
  // on GPU 1 vs two for 2BW).
  auto w = workloads::gnmt_profile();
  auto cluster = workloads::v100_cluster(6);
  auto part = partition::pipedream_partition(w, cluster, 6);
  SystemConfig pd_sys{schedule::Kind::kPipeDream, 1, false, 8, 0};
  SystemConfig bw_sys{schedule::Kind::kPipeDream2BW, 1, false, 8, 0};
  const SimResult pd = simulate(build_job(w, cluster, part, pd_sys, 128, 2));
  const SimResult bw = simulate(build_job(w, cluster, part, bw_sys, 128, 2));
  EXPECT_GT(pd.gpus[0].static_memory, bw.gpus[0].static_memory);
}

TEST(SimulatorTest, MemoryLimitTriggersOom) {
  auto job = toy_job(schedule::Kind::kAfab, 8);
  job.memory_limit = 1.0;  // absurdly small
  const SimResult r = simulate(job);
  EXPECT_TRUE(r.oom);
}

TEST(SimulatorTest, DataParallelIsSlowerThanPipelineOnBigModel) {
  auto w = workloads::gnmt_profile();
  auto cluster = workloads::v100_cluster(6);
  auto part = partition::pipedream_partition(w, cluster, 6);
  SystemConfig pipe{schedule::Kind::kAfab, 1, false, 16, 0};
  SystemConfig dp{schedule::Kind::kDataParallel, 1, false, 1, 0};
  const SimResult rp = simulate(build_job(w, cluster, part, pipe, 128, 2));
  const SimResult rd = simulate(build_job(w, cluster, part, dp, 128, 2));
  // Per-sample: DP processes 128 per iteration too (split across GPUs).
  EXPECT_GT(rd.time_per_batch, 2.0 * rp.time_per_batch);
}

TEST(SimulatorTest, BusyPlusIdleEqualsMakespan) {
  const SimResult r = simulate(toy_job(schedule::Kind::kOneFOneB, 8));
  for (const auto& g : r.gpus) {
    EXPECT_LE(g.busy, r.makespan + 1e-9);
    EXPECT_GE(g.busy, 0.0);
  }
}

TEST(SimulatorTest, CommStatsPositiveWhenStagesCommunicate) {
  const SimResult r = simulate(toy_job(schedule::Kind::kAfab, 4));
  EXPECT_GT(r.gpus[0].total_comm, 0.0);
  EXPECT_GT(r.gpus[1].total_comm, 0.0);
}

TEST(AdaptiveAdvanceTest, StaysInValidRange) {
  auto job = toy_job(schedule::Kind::kAdvanceForward, 8);
  const std::size_t advance = adaptive_advance(job);
  EXPECT_GE(advance, job.stages.size() - 1);
  EXPECT_LE(advance, job.micro_batches + job.stages.size());
}

TEST(AdaptiveAdvanceTest, StopsAtMemoryLimit) {
  auto job = toy_job(schedule::Kind::kAdvanceForward, 8);
  // Find the 1F1B peak and set the limit just above it: no room to advance.
  job.advance_num = job.stages.size() - 1;
  job.kind = schedule::Kind::kOneFOneB;
  const SimResult base = simulate(job);
  Bytes peak = 0;
  for (const auto& g : base.gpus) peak = std::max(peak, g.peak_memory);
  job.memory_limit = peak * 1.001;
  const std::size_t advance = adaptive_advance(job);
  EXPECT_EQ(advance, job.stages.size() - 1);
}

TEST(EpochTimeTest, ScalesWithDatasetAndPipelines) {
  auto job = toy_job(schedule::Kind::kAdvanceForward, 4, 2, 2);
  const SimResult r = simulate(job);
  const Seconds t1 = epoch_time(r, job, 1024);
  const Seconds t2 = epoch_time(r, job, 2048);
  EXPECT_NEAR(t2, 2.0 * t1, 1e-9);
}

}  // namespace
}  // namespace avgpipe::sim
