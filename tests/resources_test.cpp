#include "sim/resources.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace avgpipe::sim {
namespace {

/// The concurrency-gain cap: co-scheduled small kernels raise utilization,
/// but only up to gain x the largest single-kernel demand. This is the
/// mechanism behind the paper's "diminishing marginal utility of GPU
/// utilization when increasing the parallel pipeline number" (§5.1).

TEST(ConcurrencyCapTest, SingleOpUnaffectedByGain) {
  Engine e;
  ComputeResource gpu(e, 100.0, /*gain=*/2.0);
  Seconds done = -1;
  gpu.submit(50.0, 0.5, [&] { done = e.now(); });
  e.run();
  EXPECT_NEAR(done, 1.0, 1e-9);
}

TEST(ConcurrencyCapTest, UnderCapOpsRunAtFullDemand) {
  Engine e;
  ComputeResource gpu(e, 100.0, /*gain=*/2.5);
  Seconds t1 = -1, t2 = -1;
  // cap = 2.5 * 0.2 = 0.5; total demand 0.4 < cap.
  gpu.submit(20.0, 0.2, [&] { t1 = e.now(); });
  gpu.submit(20.0, 0.2, [&] { t2 = e.now(); });
  e.run();
  EXPECT_NEAR(t1, 1.0, 1e-9);
  EXPECT_NEAR(t2, 1.0, 1e-9);
}

TEST(ConcurrencyCapTest, OverCapScalesProportionally) {
  Engine e;
  ComputeResource gpu(e, 100.0, /*gain=*/2.0);
  // cap = 2.0 * 0.2 = 0.4; total demand 0.8 -> scale 0.5.
  Seconds t = -1;
  for (int i = 0; i < 4; ++i) {
    gpu.submit(20.0, 0.2, [&] { t = e.now(); });
  }
  e.run();
  // Each op rate = 100 * 0.2 * 0.5 = 10 -> 2 s.
  EXPECT_NEAR(t, 2.0, 1e-9);
}

TEST(ConcurrencyCapTest, UtilizationCurveReflectsCap) {
  Engine e;
  ComputeResource gpu(e, 100.0, /*gain=*/2.0);
  for (int i = 0; i < 4; ++i) gpu.submit(20.0, 0.2, [] {});
  e.run();
  EXPECT_NEAR(gpu.utilization().max_value(), 0.4, 1e-12);
}

TEST(ConcurrencyCapTest, LargeKernelLiftsTheCap) {
  Engine e;
  ComputeResource gpu(e, 100.0, /*gain=*/2.0);
  // A demand-0.5 kernel raises the cap to min(1, 1.0) = 1.0, so the small
  // kernels temporarily co-run at full rate.
  Seconds small_done = -1;
  gpu.submit(200.0, 0.5, [] {});
  gpu.submit(20.0, 0.2, [&] { small_done = e.now(); });
  e.run();
  // D = 0.7 <= cap 1.0 -> small kernel runs at 20/s -> 1 s.
  EXPECT_NEAR(small_done, 1.0, 1e-9);
}

TEST(ConcurrencyCapTest, ThroughputNeverExceedsPeak) {
  Engine e;
  ComputeResource gpu(e, 100.0, /*gain=*/1e9);
  Seconds t = -1;
  for (int i = 0; i < 4; ++i) {
    gpu.submit(50.0, 0.5, [&] { t = e.now(); });
  }
  e.run();
  // Total 200 units at peak 100/s -> exactly 2 s.
  EXPECT_NEAR(t, 2.0, 1e-9);
  EXPECT_NEAR(gpu.utilization().max_value(), 1.0, 1e-12);
}

TEST(ConcurrencyCapTest, InvalidGainThrows) {
  Engine e;
  EXPECT_THROW(ComputeResource(e, 100.0, 0.0), Error);
}

// -- link stress ----------------------------------------------------------------

TEST(LinkStressTest, ManyQueuedTransfersPreserveFifoAndTotals) {
  Engine e;
  LinkResource link(e, 1000.0, 0.01);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    link.transfer(100.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_NEAR(link.busy_time(), 50 * 0.1, 1e-9);
}

TEST(LinkStressTest, InterleavedSubmissionKeepsWireConservation) {
  Engine e;
  LinkResource link(e, 1000.0, 0.0);
  double delivered_bytes = 0;
  // Schedule bursts at several times; total wire time must equal volume/bw.
  for (int burst = 0; burst < 5; ++burst) {
    e.schedule_at(burst * 0.5, [&] {
      for (int i = 0; i < 3; ++i) {
        link.transfer(200.0, [&] { delivered_bytes += 200.0; });
      }
    });
  }
  e.run();
  EXPECT_DOUBLE_EQ(delivered_bytes, 3000.0);
  EXPECT_NEAR(link.busy_time(), 3000.0 / 1000.0, 1e-9);
}

// -- memory categories under churn -------------------------------------------------

TEST(MemoryChurnTest, PeaksAreMonotoneAndConsistent) {
  MemoryTracker mem(0.0);
  Rng rng(3);
  double current = 0, peak = 0;
  std::vector<double> live;
  for (int i = 0; i < 1000; ++i) {
    if (!live.empty() && rng.bernoulli(0.5)) {
      mem.free(live.back(), MemCategory::kActivations);
      current -= live.back();
      live.pop_back();
    } else {
      const double b = rng.uniform(1.0, 100.0);
      mem.alloc(b, MemCategory::kActivations);
      current += b;
      live.push_back(b);
      peak = std::max(peak, current);
    }
    EXPECT_NEAR(mem.current(), current, 1e-6);
    EXPECT_NEAR(mem.peak(), peak, 1e-6);
  }
}

}  // namespace
}  // namespace avgpipe::sim
