#include "verify/verifier.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "nn/models.hpp"
#include "runtime/pipeline_runtime.hpp"
#include "schedule/schedule.hpp"

namespace avgpipe::verify {
namespace {

/// The model checker against its own acceptance grid: every flushed
/// schedule at the runtime's derived capacity is deadlock-free with a peak
/// link occupancy of exactly capacity - 1, removing the slack produces a
/// reported counterexample instead of a hang, and the exact peaks agree
/// with the schedule checker and the threaded runtime's derivations.

ModelConfig make_config(schedule::Kind kind, std::size_t k, std::size_t m,
                        std::size_t advance = 0) {
  ModelConfig cfg;
  cfg.kind = kind;
  cfg.num_stages = k;
  cfg.micro_batches = m;
  cfg.advance_num = advance;
  return cfg;
}

TEST(VerifierGridTest, DerivedCapacityIsDeadlockFreeWithExactPeak) {
  const schedule::Kind kinds[] = {schedule::Kind::kAfab,
                                  schedule::Kind::kOneFOneB,
                                  schedule::Kind::kAdvanceForward};
  for (const auto kind : kinds) {
    for (std::size_t k = 2; k <= 4; ++k) {
      for (std::size_t m = 2; m <= 8; ++m) {
        std::vector<std::size_t> advances{0};
        if (kind == schedule::Kind::kAdvanceForward) {
          advances = {k - 1, k, std::max(m, k - 1)};
          std::sort(advances.begin(), advances.end());
          advances.erase(std::unique(advances.begin(), advances.end()),
                         advances.end());
        }
        for (const auto adv : advances) {
          const ModelConfig cfg = make_config(kind, k, m, adv);
          const Report r = verify(cfg);
          SCOPED_TRACE(::testing::Message()
                       << schedule::to_string(kind) << " K=" << k
                       << " M=" << m << " advance=" << adv);
          EXPECT_EQ(r.verdict, Verdict::kOk) << r.diagnosis;
          EXPECT_TRUE(r.complete);
          EXPECT_TRUE(r.counterexample.empty());
          EXPECT_EQ(r.link_capacity_used, r.derived_link_capacity);
          EXPECT_EQ(r.peak_link_occupancy, r.derived_link_capacity - 1);
          EXPECT_EQ(r.peak_link_occupancy,
                    schedule::max_send_run_ahead(kind, k, m,
                                                 adv == 0 ? k - 1 : adv));
        }
      }
    }
  }
}

TEST(VerifierGridTest, NoSlackReportsParkedSendWithCounterexample) {
  // capacity = run-ahead (the "+1 slack" removed): the link fills, and the
  // verifier must report the shortest filling trace — not hang, not pass.
  for (std::size_t k = 2; k <= 4; ++k) {
    ModelConfig cfg = make_config(schedule::Kind::kOneFOneB, k, 4);
    cfg.link_capacity =
        schedule::max_send_run_ahead(cfg.kind, k, cfg.micro_batches, k - 1);
    const Report r = verify(cfg);
    SCOPED_TRACE(::testing::Message() << "K=" << k);
    EXPECT_EQ(r.verdict, Verdict::kSendParked);
    EXPECT_FALSE(r.ok());
    ASSERT_FALSE(r.counterexample.empty());
    EXPECT_NE(r.diagnosis.find("parks"), std::string::npos) << r.diagnosis;
    EXPECT_NE(r.counterexample.back().action.find("LINK FULL"),
              std::string::npos);
    EXPECT_EQ(r.link_capacity_used, r.derived_link_capacity - 1);
  }
}

TEST(VerifierGridTest, AnyPositiveCapacityIsDeadlockFreeUnderBlocking) {
  // The deeper theorem the slack check rides on: with blocking sends, the
  // flushed schedules cannot classically deadlock at ANY capacity >= 1 —
  // under-provisioning costs stalls, never progress.
  const ModelConfig base[] = {
      make_config(schedule::Kind::kAfab, 2, 4),
      make_config(schedule::Kind::kOneFOneB, 3, 4),
      make_config(schedule::Kind::kAdvanceForward, 3, 5, 3),
  };
  for (const auto& b : base) {
    for (std::size_t cap = 1; cap <= 2; ++cap) {
      ModelConfig cfg = b;
      cfg.link_capacity = cap;
      cfg.check_send_parking = false;
      const Report r = verify(cfg);
      SCOPED_TRACE(::testing::Message() << schedule::to_string(cfg.kind)
                                        << " cap=" << cap);
      EXPECT_EQ(r.verdict, Verdict::kOk) << r.diagnosis;
      EXPECT_TRUE(r.complete);
      EXPECT_LE(r.peak_link_occupancy, cap);
    }
  }
}

TEST(VerifierTest, PeakStashMatchesScheduleChecker) {
  const ModelConfig cases[] = {
      make_config(schedule::Kind::kAfab, 2, 3),
      make_config(schedule::Kind::kOneFOneB, 3, 4),
      make_config(schedule::Kind::kAdvanceForward, 3, 6, 4),
  };
  for (const auto& cfg : cases) {
    const Report r = verify(cfg);
    ASSERT_EQ(r.verdict, Verdict::kOk) << r.diagnosis;

    schedule::ScheduleParams params;
    params.kind = cfg.kind;
    params.num_stages = cfg.num_stages;
    params.micro_batches = cfg.micro_batches;
    params.num_batches = cfg.num_batches;
    params.advance_num =
        cfg.advance_num == 0 ? cfg.num_stages - 1 : cfg.advance_num;
    const auto check = schedule::check_schedule(
        schedule::make_schedule(params), params.micro_batches,
        params.num_batches);
    ASSERT_TRUE(check.ok) << check.error;
    ASSERT_EQ(r.peak_stash.size(), check.max_in_flight.size());
    for (std::size_t s = 0; s < r.peak_stash.size(); ++s) {
      EXPECT_EQ(r.peak_stash[s], check.max_in_flight[s])
          << schedule::to_string(cfg.kind) << " stage " << s;
    }
  }
}

TEST(VerifierTest, PartialOrderReductionPreservesStatesAndPeaks) {
  // Sleep sets prune redundant *transitions*, never states, so the full
  // and the reduced exploration must agree on every reported number except
  // the transition/skip counters.
  ModelConfig cfg = make_config(schedule::Kind::kOneFOneB, 3, 3);
  ModelConfig full = cfg;
  full.partial_order_reduction = false;
  const Report a = verify(cfg);
  const Report b = verify(full);
  ASSERT_EQ(a.verdict, Verdict::kOk) << a.diagnosis;
  ASSERT_EQ(b.verdict, Verdict::kOk) << b.diagnosis;
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.peak_link_occupancy, b.peak_link_occupancy);
  EXPECT_EQ(a.peak_in_flight, b.peak_in_flight);
  EXPECT_EQ(a.peak_stash, b.peak_stash);
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (std::size_t c = 0; c < a.channels.size(); ++c) {
    EXPECT_EQ(a.channels[c].peak, b.channels[c].peak) << a.channels[c].name;
  }
  // The reduction must actually prune interleavings, not just match them.
  EXPECT_LT(a.transitions, b.transitions);
}

TEST(VerifierTest, ElasticModesVerifyCleanly) {
  for (const auto mode : {ElasticMode::kSync, ElasticMode::kAsync}) {
    ModelConfig cfg = make_config(schedule::Kind::kOneFOneB, 2, 2);
    cfg.num_batches = 3;
    cfg.elastic = mode;
    cfg.sync_lag = 2;
    const Report r = verify(cfg);
    SCOPED_TRACE(to_string(mode));
    EXPECT_EQ(r.verdict, Verdict::kOk) << r.diagnosis;
    EXPECT_TRUE(r.complete);
  }
}

TEST(VerifierTest, InvalidConfigurationsAreRejectedNotExplored) {
  ModelConfig unflushed = make_config(schedule::Kind::kPipeDream, 2, 2);
  EXPECT_EQ(verify(unflushed).verdict, Verdict::kInvalidSchedule);

  // AFP advance below the 1F1B minimum K-1.
  ModelConfig low_advance =
      make_config(schedule::Kind::kAdvanceForward, 4, 8, 2);
  EXPECT_EQ(verify(low_advance).verdict, Verdict::kInvalidSchedule);

  ModelConfig no_micro = make_config(schedule::Kind::kOneFOneB, 2, 0);
  EXPECT_EQ(verify(no_micro).verdict, Verdict::kInvalidSchedule);
}

TEST(VerifierTest, StateLimitReportsIncompleteInsteadOfRunningAway) {
  ModelConfig cfg = make_config(schedule::Kind::kAfab, 4, 8);
  cfg.max_states = 64;
  const Report r = verify(cfg);
  EXPECT_EQ(r.verdict, Verdict::kStateLimit);
  EXPECT_FALSE(r.complete);
  EXPECT_LE(r.states, 64u + 16u);  // bounded overshoot of one BFS layer
}

TEST(VerifierTest, FormatReportMentionsVerdictAndPeaks) {
  const ModelConfig cfg = make_config(schedule::Kind::kOneFOneB, 3, 4);
  const Report r = verify(cfg);
  const std::string text = format_report(cfg, r);
  EXPECT_NE(text.find("deadlock-free"), std::string::npos) << text;
  EXPECT_NE(text.find("peak link occupancy"), std::string::npos);
}

TEST(VerifierRuntimeCrossCheckTest, DerivedCapacityMatchesRuntime) {
  // The verifier's capacity derivation and the threaded runtime's
  // link_capacity() must be the same function of (kind, K, M, advance) —
  // both sit on schedule::max_send_run_ahead.
  struct Case {
    schedule::Kind kind;
    std::size_t advance;
  };
  const Case cases[] = {{schedule::Kind::kAfab, 0},
                        {schedule::Kind::kOneFOneB, 0},
                        {schedule::Kind::kAdvanceForward, 4}};
  for (const auto& c : cases) {
    nn::Sequential model = nn::make_mlp(5, 8, 3, 3, 42);
    runtime::PipelineRuntime rt(
        model, {2, 4},
        [](std::vector<tensor::Variable> params) {
          return std::make_unique<optim::Sgd>(std::move(params), 0.1);
        },
        runtime::cross_entropy_loss(), c.kind, c.advance);
    for (const std::size_t m : {std::size_t{2}, std::size_t{6}}) {
      ModelConfig cfg = make_config(c.kind, 3, m, c.advance);
      const Report r = verify(cfg);
      EXPECT_EQ(rt.link_capacity(m), r.derived_link_capacity)
          << schedule::to_string(c.kind) << " M=" << m;
    }
  }
}

}  // namespace
}  // namespace avgpipe::verify
